// Benchmarks regenerating the FACTOR paper's evaluation (Tables 1-6)
// plus ablation benches for the design decisions called out in
// DESIGN.md. Each table bench runs the same code path as
// cmd/benchtables with a reduced ATPG budget so the whole suite stays
// tractable; run cmd/benchtables with a larger -budget for the numbers
// recorded in EXPERIMENTS.md.
//
// The heavy benches take seconds per iteration; run with
// -benchtime=1x for a single pass.
package factor_test

import (
	"sync"
	"testing"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/bench"
	"factor/internal/core"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
)

// benchBudget keeps a full -bench=. run tractable.
const benchBudget = 3 * time.Second

var (
	ctxOnce sync.Once
	ctxVal  *bench.Context
	ctxErr  error
)

func benchContext(b *testing.B) *bench.Context {
	b.Helper()
	ctxOnce.Do(func() {
		ctxVal, ctxErr = bench.NewContext(bench.Config{ATPGBudget: benchBudget})
	})
	if ctxErr != nil {
		b.Fatal(ctxErr)
	}
	return ctxVal
}

// ---------------------------------------------------------------------------
// Paper tables

func BenchmarkTable1Characteristics(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table1()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable1(rows))
			for _, r := range rows {
				if r.Module == "regfile_struct" {
					b.ReportMetric(float64(r.GatesInModule), "regfile-gates")
				}
			}
		}
	}
}

func BenchmarkTable2FlatExtraction(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table2()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable23("Table 2 (flat)", rows))
			b.ReportMetric(avgReduction(rows), "avg-reduction-%")
		}
	}
}

func BenchmarkTable3ComposedExtraction(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table3()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable23("Table 3 (composed)", rows))
			b.ReportMetric(avgReduction(rows), "avg-reduction-%")
		}
	}
}

func avgReduction(rows []bench.Row23) float64 {
	sum := 0.0
	for _, r := range rows {
		sum += r.GateReductionPct
	}
	return sum / float64(len(rows))
}

func BenchmarkTable4RawATPG(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table4()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable4(rows))
			for _, r := range rows {
				if r.Module == "regfile_struct" {
					b.ReportMetric(r.ProcLevelCov, "regfile-proc-cov-%")
					b.ReportMetric(r.StandAloneCov, "regfile-standalone-cov-%")
				}
			}
		}
	}
}

func BenchmarkTable5TransformedFlat(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table5()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable56("Table 5 (flat)", rows))
			b.ReportMetric(covOf(rows, "regfile_struct"), "regfile-cov-%")
		}
	}
}

func BenchmarkTable6TransformedComposed(b *testing.B) {
	ctx := benchContext(b)
	for i := 0; i < b.N; i++ {
		rows, err := ctx.Table6()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Log("\n" + bench.FormatTable56("Table 6 (composed)", rows))
			b.ReportMetric(covOf(rows, "regfile_struct"), "regfile-cov-%")
		}
	}
}

func covOf(rows []bench.Row56, module string) float64 {
	for _, r := range rows {
		if r.Module == module {
			return r.FaultCov
		}
	}
	return 0
}

// ---------------------------------------------------------------------------
// Ablations

// BenchmarkAblationFaultSimParallel measures the 63-fault-per-pass
// packed full-evaluation simulator, one sub-benchmark per ablation
// design (two stand-alone modules plus the full SoC). Together with
// the Serial and EventDriven variants below this is the engine
// ablation exported to BENCH_faultsim.json by `benchtables -faultsim`
// (same designs and workload via bench.FaultSimWorkload).
func BenchmarkAblationFaultSimParallel(b *testing.B) {
	for _, module := range bench.FaultSimModules {
		b.Run(module, func(b *testing.B) {
			nl, faults, seqs := faultSimWorkload(b, module)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := fault.NewResult(faults)
				ps := fault.NewParallel(nl)
				for _, seq := range seqs {
					ps.RunSequence(res, seq)
				}
			}
		})
	}
}

// BenchmarkAblationFaultSimEventDriven measures the event-driven
// cone-restricted engine on the identical workload; speedup over the
// Parallel variant is the gain from good-trace sharing plus active-cone
// pruning alone (same packing, same batching arithmetic). The gain
// grows with design size — cone restriction matters most at chip level,
// where a fault's cone is a tiny slice of the netlist.
func BenchmarkAblationFaultSimEventDriven(b *testing.B) {
	for _, module := range bench.FaultSimModules {
		b.Run(module, func(b *testing.B) {
			nl, faults, seqs := faultSimWorkload(b, module)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				res := fault.NewResult(faults)
				es := fault.NewEvent(nl)
				for _, seq := range seqs {
					es.RunSequence(res, seq)
				}
			}
		})
	}
}

func BenchmarkAblationFaultSimSerial(b *testing.B) {
	for _, module := range bench.FaultSimModules {
		b.Run(module, func(b *testing.B) {
			nl, faults, seqs := faultSimWorkload(b, module)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				detected := 0
				for _, f := range faults {
					for _, seq := range seqs {
						if fault.SerialDetect(nl, f, seq) {
							detected++
							break
						}
					}
				}
			}
		})
	}
}

type fsWorkload struct {
	nl     *netlist.Netlist
	faults []fault.Fault
	seqs   []fault.Sequence
}

var (
	fsWorkloadMu    sync.Mutex
	fsWorkloadCache = map[string]*fsWorkload{}
)

// faultSimWorkload memoizes the per-module ablation workload so the
// full-SoC synthesis runs once across the three engine benchmarks.
func faultSimWorkload(b *testing.B, module string) (*netlist.Netlist, []fault.Fault, []fault.Sequence) {
	b.Helper()
	fsWorkloadMu.Lock()
	defer fsWorkloadMu.Unlock()
	w, ok := fsWorkloadCache[module]
	if !ok {
		nl, faults, seqs, err := bench.FaultSimWorkload(module, 16, 512, 16, 8)
		if err != nil {
			b.Fatal(err)
		}
		w = &fsWorkload{nl: nl, faults: faults, seqs: seqs}
		fsWorkloadCache[module] = w
	}
	return w.nl, w.faults, w.seqs
}

// BenchmarkAblationSynthOpt measures what the optimization passes buy:
// the paper leans on synthesis to remove redundant extracted
// constraints.
func BenchmarkAblationSynthOpt(b *testing.B) {
	src, err := arm.Parse()
	if err != nil {
		b.Fatal(err)
	}
	params := map[string]int64{"W": 16}
	for i := 0; i < b.N; i++ {
		opt, err := synth.Synthesize(src, arm.Top, synth.Options{TopParams: params})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			raw, err := synth.Synthesize(src, arm.Top, synth.Options{TopParams: params, NoOptimize: true})
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(raw.Netlist.NumGates()), "gates-unoptimized")
			b.ReportMetric(float64(opt.Netlist.NumGates()), "gates-optimized")
		}
	}
}

// BenchmarkAblationPIER compares transformed-module ATPG coverage with
// and without PIER exposure (composed extraction in both arms).
func BenchmarkAblationPIER(b *testing.B) {
	for _, piered := range []bool{false, true} {
		name := "without"
		if piered {
			name = "with"
		}
		b.Run(name, func(b *testing.B) {
			ctx := benchContext(b)
			for i := 0; i < b.N; i++ {
				ext := core.NewExtractor(ctx.Design, core.ModeComposed)
				tr, err := core.Transform(ext, "u_core.u_alu", ctx.Full, core.TransformOptions{
					TopParams:   map[string]int64{"W": 16},
					EnablePIERs: piered,
				})
				if err != nil {
					b.Fatal(err)
				}
				faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
				res := atpg.New(tr.Netlist, atpg.Options{
					Seed: 1, TimeBudget: benchBudget, MaxFrames: 8, BacktrackLimit: 200,
				}).Run(faults)
				if i == 0 {
					b.ReportMetric(res.Coverage(), "coverage-%")
				}
			}
		})
	}
}

// BenchmarkAblationCompositionReuse isolates the constraint cache: the
// same four extractions with and without reuse.
func BenchmarkAblationCompositionReuse(b *testing.B) {
	ctx := benchContext(b)
	b.Run("shared-cache", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			ext := core.NewExtractor(ctx.Design, core.ModeComposed)
			for _, mut := range arm.MUTs() {
				if _, err := ext.Extract(mut.Path); err != nil {
					b.Fatal(err)
				}
			}
			if i == 0 {
				b.ReportMetric(float64(ext.CacheHits), "cache-hits")
			}
		}
	})
	b.Run("no-reuse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, mut := range arm.MUTs() {
				ext := core.NewExtractor(ctx.Design, core.ModeFlat)
				if _, err := ext.Extract(mut.Path); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}

// BenchmarkParallelScaling runs the full ATPG flow (random phase +
// deterministic PODEM) on the stand-alone ALU at several worker counts.
// The engine is deterministic by construction, so the sub-benchmarks
// must report identical coverage; the interesting metric is wall-clock
// per op as -j grows. On a multi-core host -j 4 should be well over 2x
// faster than -j 1; on a single-core host (GOMAXPROCS=1) the times
// collapse to parity, which is itself a useful sanity check that the
// parallel scaffolding adds little overhead.
func BenchmarkParallelScaling(b *testing.B) {
	res, err := arm.SynthesizeModule("arm_alu", 16)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(res.Netlist)
	var refCov float64
	for _, j := range []int{1, 2, 4, 8} {
		b.Run("j-"+itoa(j), func(b *testing.B) {
			var cov float64
			var events, backtracks uint64
			for i := 0; i < b.N; i++ {
				r := atpg.New(res.Netlist, atpg.Options{
					Seed: 1, MaxFrames: 4, BacktrackLimit: 150,
					RandomSequences: 32, Workers: j,
				}).Run(faults)
				cov = r.Coverage()
				events += r.Stats.Sim.Events
				backtracks += r.Stats.Backtracks
			}
			b.ReportMetric(cov, "coverage-%")
			// Throughput of the deterministic work counters: events/s
			// should scale with -j while events per op stays constant.
			if sec := b.Elapsed().Seconds(); sec > 0 {
				b.ReportMetric(float64(events)/sec, "simevents/s")
				b.ReportMetric(float64(backtracks)/sec, "backtracks/s")
			}
			b.ReportMetric(float64(events)/float64(b.N), "simevents/op")
			if j == 1 {
				refCov = cov
			} else if cov != refCov {
				b.Fatalf("coverage at -j %d (%v%%) differs from -j 1 (%v%%): determinism broken", j, cov, refCov)
			}
		})
	}
}

// BenchmarkAblationCompaction measures reverse-order static compaction
// of a full ATPG test set for the stand-alone ALU.
func BenchmarkAblationCompaction(b *testing.B) {
	res, err := arm.SynthesizeModule("arm_alu", 16)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(res.Netlist)
	run := atpg.New(res.Netlist, atpg.Options{Seed: 1, TimeBudget: benchBudget}).Run(faults)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compacted, cr := atpg.Compact(res.Netlist, faults, run.Tests)
		if i == 0 {
			b.ReportMetric(float64(cr.Before), "seqs-before")
			b.ReportMetric(float64(cr.After), "seqs-after")
			if got := atpg.Validate(res.Netlist, faults, compacted); got != run.Result.NumDetected() {
				b.Fatalf("compaction lost coverage: %d != %d", got, run.Result.NumDetected())
			}
		}
	}
}

// BenchmarkAblationFrameDepth sweeps the time-frame budget: the
// sequential-depth knob that the PIERs relieve.
func BenchmarkAblationFrameDepth(b *testing.B) {
	res, err := arm.SynthesizeModule("regfile_struct", 16)
	if err != nil {
		b.Fatal(err)
	}
	faults := fault.Universe(res.Netlist)
	for _, frames := range []int{1, 2, 4, 8} {
		b.Run(frameName(frames), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				r := atpg.New(res.Netlist, atpg.Options{
					Seed: 1, TimeBudget: benchBudget, MaxFrames: frames, BacktrackLimit: 100,
				}).Run(faults)
				if i == 0 {
					b.ReportMetric(r.Coverage(), "coverage-%")
				}
			}
		})
	}
}

func frameName(n int) string {
	return "frames-" + itoa(n)
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [8]byte
	p := len(buf)
	for n > 0 {
		p--
		buf[p] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[p:])
}
