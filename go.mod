module factor

go 1.22
