// Register-file test generation with PIERs and chip-level translation —
// the paper's deepest, hardest module end to end.
//
// The register file sits three levels down the hierarchy with no reset:
// raw chip-level ATPG barely scratches it. The FACTOR flow extracts its
// environment, exposes the load/store-reachable registers as PIERs,
// generates tests on the transformed module, and finally translates the
// PIER operations back into LOAD instructions and validates the
// translated suite on the full chip by fault simulation (paper §2.1:
// "The patterns obtained are later translated back to the chip level").
//
// Run with: go run ./examples/regfile_translation
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/translate"
)

const mutPath = "u_core.u_regbank.u_rf"

func main() {
	src, err := arm.Parse()
	if err != nil {
		log.Fatal(err)
	}
	d, err := design.Analyze(src, arm.Top)
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]int64{"W": 16}
	full, err := synth.Synthesize(src, arm.Top, synth.Options{TopParams: params})
	if err != nil {
		log.Fatal(err)
	}

	// FACTOR flow: composed extraction with PIERs.
	ext := core.NewExtractor(d, core.ModeComposed)
	tr, err := core.Transform(ext, mutPath, full.Netlist, core.TransformOptions{
		TopParams:   params,
		EnablePIERs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("regfile_struct: %d MUT gates, %d env gates, %d PIERs\n",
		tr.MUTGates, tr.EnvGates, len(tr.PIERs))

	faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
	opts := atpg.Options{Seed: 1, TimeBudget: 10 * time.Second, MaxFrames: 8, BacktrackLimit: 200}
	res := atpg.New(tr.Netlist, opts).Run(faults)
	fmt.Printf("transformed-module ATPG: %.1f%% coverage of %d faults in %v (%d test sequences)\n",
		res.Coverage(), len(faults), res.TotalTime().Round(time.Millisecond), len(res.Tests))

	// Translate the module-level tests back to chip level and confirm
	// by fault simulation on the full netlist.
	prefix := mutPath + "."
	chipFaults := fault.UniverseRestrictedTo(full.Netlist, func(g *netlist.Gate) bool {
		return strings.HasPrefix(g.Scope, prefix)
	})
	tl := translate.NewTranslator(16, tr)
	v := tl.TranslateAndValidate(full.Netlist, chipFaults, res.Result.NumDetected(), res.Tests)
	fmt.Printf("chip-level translation: %d sequences -> %d cycles; %d/%d module detections confirmed (%.1f%% retention)\n",
		v.Sequences, v.TotalCycles, v.ChipDetected, v.ModuleDetected, v.RetentionPct())

	// The baseline this replaces.
	raw := atpg.New(full.Netlist, opts).Run(chipFaults)
	fmt.Printf("raw chip-level ATPG baseline: %.1f%% coverage in %v\n",
		raw.Coverage(), raw.TotalTime().Round(time.Millisecond))
	fmt.Printf("\ntranslated functional tests cover %.1fx more regfile faults than raw chip-level ATPG\n",
		float64(v.ChipDetected)/maxf(1, float64(raw.Result.NumDetected())))
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
