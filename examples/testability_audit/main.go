// Testability audit: FACTOR's pre-ATPG design analysis (paper §4.2).
//
// The tool examines every module under test of the benchmark SoC and
// reports (a) control inputs constrained to hard-coded values — the
// arm_alu case the paper describes, where 10 of 13 control inputs are
// decodes of a single alu_op field — and (b) signals with empty def-use
// or use-def chains, including a deliberately broken design that shows
// the dead-end traces.
//
// Run with: go run ./examples/testability_audit
package main

import (
	"fmt"
	"log"

	"factor/internal/arm"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/verilog"
)

func main() {
	src, err := arm.Parse()
	if err != nil {
		log.Fatal(err)
	}
	d, err := design.Analyze(src, arm.Top)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== benchmark SoC: per-module testability ===")
	for _, mut := range arm.MUTs() {
		ext := core.NewExtractor(d, core.ModeComposed)
		ex, err := ext.Extract(mut.Path)
		if err != nil {
			log.Fatal(err)
		}
		rep, err := core.AnalyzeTestability(d, mut.Path, ex.Diags)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Print(rep.Summary())
		if len(rep.Constraints) == 0 && len(rep.EmptyChains) == 0 {
			fmt.Println("  clean: all inputs controllable, all chains complete")
		}
		fmt.Println()
	}

	// A broken design: an undriven select and an unread status output.
	// FACTOR flags both before any test generation is attempted.
	fmt.Println("=== deliberately broken design ===")
	broken := `
module chip(input clk, input [3:0] in, output [3:0] out);
  wire sel_floating;
  wire [3:0] status_unread;
  filter u_filt (.clk(clk), .din(in), .sel(sel_floating),
                 .dout(out), .status(status_unread));
endmodule
module filter(input clk, input [3:0] din, input sel,
              output reg [3:0] dout, output [3:0] status);
  always @(posedge clk) begin
    if (sel) dout <= din;
    else dout <= ~din;
  end
  assign status = dout ^ din;
endmodule`
	bsrc, err := verilog.Parse("broken.v", broken)
	if err != nil {
		log.Fatal(err)
	}
	bd, err := design.Analyze(bsrc, "chip")
	if err != nil {
		log.Fatal(err)
	}
	ext := core.NewExtractor(bd, core.ModeComposed)
	ex, err := ext.Extract("u_filt")
	if err != nil {
		log.Fatal(err)
	}
	rep, err := core.AnalyzeTestability(bd, "u_filt", ex.Diags)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Summary())
	fmt.Println("\nthe traces above point the designer at the exact nets to fix",
		"\n(the paper: 'minor alterations to the design to remove the testability bottlenecks')")
}
