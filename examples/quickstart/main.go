// Quickstart: the complete FACTOR flow on one module in five steps.
//
//  1. Parse the benchmark SoC and build the analysis data structure
//     (def-use / use-def chains, instance tree).
//  2. Extract the functional constraints around the ALU (composed mode).
//  3. Synthesize the transformed module (ALU + virtual environment).
//  4. Run the sequential ATPG on the ALU's faults.
//  5. Compare against the raw chip-level run the methodology replaces.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
)

func main() {
	// Step 1: parse and analyze.
	src, err := arm.Parse()
	if err != nil {
		log.Fatal(err)
	}
	d, err := design.Analyze(src, arm.Top)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("analyzed %d modules; hierarchy:\n", len(d.Modules))
	d.Root.Walk(func(n *design.InstanceNode) {
		if n.Level <= 2 {
			fmt.Printf("  %s%s (%s)\n", strings.Repeat("  ", n.Level), pathOrTop(n.Path), n.Module)
		}
	})

	// Step 2+3: extract constraints and build the transformed module.
	params := map[string]int64{"W": 16}
	full, err := synth.Synthesize(src, arm.Top, synth.Options{TopParams: params})
	if err != nil {
		log.Fatal(err)
	}
	ext := core.NewExtractor(d, core.ModeComposed)
	tr, err := core.Transform(ext, "u_core.u_alu", full.Netlist, core.TransformOptions{
		TopParams:   params,
		EnablePIERs: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransformed module %s:\n", tr.TopName)
	fmt.Printf("  MUT gates %d, environment gates %d (was %d at chip level: %.1f%% reduction)\n",
		tr.MUTGates, tr.EnvGates, tr.FullSurrounding, tr.GateReductionPct)
	fmt.Printf("  %d PIERs exposed; extraction %v, synthesis %v\n",
		len(tr.PIERs), tr.ExtractTime.Round(time.Microsecond), tr.SynthTime.Round(time.Microsecond))

	// Step 4: ATPG on the transformed module.
	faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
	opts := atpg.Options{Seed: 1, TimeBudget: 5 * time.Second, MaxFrames: 8, BacktrackLimit: 200}
	res := atpg.New(tr.Netlist, opts).Run(faults)
	fmt.Printf("\nATPG on the transformed module: %.1f%% coverage of %d faults in %v\n",
		res.Coverage(), len(faults), res.TotalTime().Round(time.Millisecond))

	// Step 5: the raw chip-level alternative.
	prefix := "u_core.u_alu."
	rawFaults := fault.UniverseRestrictedTo(full.Netlist, func(g *netlist.Gate) bool {
		return strings.HasPrefix(g.Scope, prefix)
	})
	rawRes := atpg.New(full.Netlist, opts).Run(rawFaults)
	fmt.Printf("raw chip-level ATPG:            %.1f%% coverage of %d faults in %v\n",
		rawRes.Coverage(), len(rawFaults), rawRes.TotalTime().Round(time.Millisecond))
	fmt.Printf("\nthe transformed module reached %.1fx the raw coverage\n",
		res.Coverage()/max1(rawRes.Coverage()))
}

func pathOrTop(p string) string {
	if p == "" {
		return "<top>"
	}
	return p
}

func max1(v float64) float64 {
	if v < 1 {
		return 1
	}
	return v
}
