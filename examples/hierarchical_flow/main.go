// Hierarchical flow: constraint composition and reuse across several
// modules under test — the paper's improvement over flat extraction.
//
// One composed extractor processes all four MUTs of the benchmark SoC;
// module-local constraint slices computed for earlier MUTs are reused
// for later ones (watch the cache hit rate climb), exactly the reuse
// the paper credits for the lower extraction times of Table 3. The
// same four extractions are repeated with a flat extractor for
// contrast.
//
// Run with: go run ./examples/hierarchical_flow
package main

import (
	"fmt"
	"log"
	"time"

	"factor/internal/arm"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/synth"
)

func main() {
	src, err := arm.Parse()
	if err != nil {
		log.Fatal(err)
	}
	d, err := design.Analyze(src, arm.Top)
	if err != nil {
		log.Fatal(err)
	}
	params := map[string]int64{"W": 16}
	full, err := synth.Synthesize(src, arm.Top, synth.Options{TopParams: params})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== composed extraction (one extractor, constraints reused) ===")
	composed := core.NewExtractor(d, core.ModeComposed)
	var composedTotal time.Duration
	for _, mut := range arm.MUTs() {
		tr, err := core.Transform(composed, mut.Path, full.Netlist, core.TransformOptions{TopParams: params})
		if err != nil {
			log.Fatal(err)
		}
		composedTotal += tr.ExtractTime
		fmt.Printf("%-16s extract %-10v env %4d gates (%.1f%% reduction)  cache: %d hits / %d misses\n",
			mut.Module, tr.ExtractTime.Round(time.Microsecond), tr.EnvGates, tr.GateReductionPct,
			composed.CacheHits, composed.CacheMisses)
	}

	fmt.Println("\n=== flat extraction (no composition, no reuse) ===")
	var flatTotal time.Duration
	for _, mut := range arm.MUTs() {
		flat := core.NewExtractor(d, core.ModeFlat)
		tr, err := core.Transform(flat, mut.Path, full.Netlist, core.TransformOptions{TopParams: params})
		if err != nil {
			log.Fatal(err)
		}
		flatTotal += tr.ExtractTime
		fmt.Printf("%-16s extract %-10v env %4d gates (%.1f%% reduction)  work items: %d\n",
			mut.Module, tr.ExtractTime.Round(time.Microsecond), tr.EnvGates, tr.GateReductionPct, tr.WorkItems)
	}

	fmt.Printf("\ntotal extraction time: composed %v vs flat %v\n",
		composedTotal.Round(time.Microsecond), flatTotal.Round(time.Microsecond))
	fmt.Println("(the composed extractor also produces tighter environments:",
		"statement-level slices instead of whole processes)")

	// The emitted constraints are plain synthesizable Verilog; show a
	// sample of the specialized module roster for the deepest MUT.
	ex, err := composed.Extract("u_core.u_regbank.u_rf")
	if err != nil {
		log.Fatal(err)
	}
	out, topName, err := ex.Emit(d)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ntransformed source for regfile_struct (top %s) contains %d modules:\n", topName, len(out.Modules))
	for _, m := range out.Modules {
		fmt.Printf("  module %s (%d ports)\n", m.Name, len(m.Ports))
	}
}
