// Command testability runs FACTOR's testability analysis for a module
// under test: constrained (hard-coded) control inputs and empty
// def-use / use-def chains with signal traces (paper §4.2).
//
// Usage:
//
//	testability -mut <instance.path> [-design file.v] [-top name]
package main

import (
	"flag"
	"fmt"
	"os"

	"factor/internal/arm"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "top module (default: first module, or 'arm')")
	mut := flag.String("mut", "", "hierarchical instance path of the module under test (required)")
	flag.Parse()

	if *mut == "" {
		fmt.Fprintln(os.Stderr, "testability: -mut is required (e.g. -mut u_core.u_alu)")
		os.Exit(2)
	}
	src, topName, err := loadDesign(*designFile, *top)
	if err != nil {
		fatal(err)
	}
	d, err := design.Analyze(src, topName)
	if err != nil {
		fatal(err)
	}
	// Extraction supplies the empty-chain diagnostics.
	ext := core.NewExtractor(d, core.ModeComposed)
	ex, err := ext.Extract(*mut)
	if err != nil {
		fatal(err)
	}
	rep, err := core.AnalyzeTestability(d, *mut, ex.Diags)
	if err != nil {
		fatal(err)
	}
	fmt.Print(rep.Summary())
	if len(rep.Constraints) == 0 && len(rep.EmptyChains) == 0 {
		fmt.Println("  no testability bottlenecks found")
	}
}

func loadDesign(file, top string) (*verilog.SourceFile, string, error) {
	if file == "" {
		src, err := arm.Parse()
		if err != nil {
			return nil, "", err
		}
		if top == "" {
			top = arm.Top
		}
		return src, top, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, "", err
	}
	src, err := verilog.Parse(file, string(data))
	if err != nil {
		return nil, "", err
	}
	if top == "" {
		if len(src.Modules) == 0 {
			return nil, "", fmt.Errorf("%s: no modules", file)
		}
		top = src.Modules[0].Name
	}
	return src, top, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "testability:", err)
	os.Exit(1)
}
