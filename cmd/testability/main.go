// Command testability runs FACTOR's testability analysis for a module
// under test: constrained (hard-coded) control inputs and empty
// def-use / use-def chains with signal traces (paper §4.2), plus —
// with -scoap — gate-level SCOAP metrics (CC0/CC1/CO and sequential
// SC0/SC1/SO) of the synthesized MUT, hardest-K net summaries and
// reconvergent-fanout diagnostics.
//
// Usage:
//
//	testability -mut <instance.path> [-design file.v] [-top name]
//	            [-scoap] [-json file] [-k N] [-width W]
//	            [-timeout d] [-stats] [-trace out.json]
//	            [-progress auto|on|off] [-cpuprofile f] [-memprofile f]
//
// -json writes a machine-readable report combining the def-use
// analysis with the full per-net SCOAP table ("-" for stdout); -k
// bounds the hardest-to-control/observe lists (default 10).
//
// Exit codes follow the suite-wide taxonomy: 0 success, 1 error,
// 2 usage, 3 canceled/timed out.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"factor/internal/arm"
	"factor/internal/cli"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/synth"
	"factor/internal/telemetry"
	"factor/internal/testability"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "top module (default: first module, or 'arm')")
	mut := flag.String("mut", "", "hierarchical instance path of the module under test (required)")
	scoapFlag := flag.Bool("scoap", false, "compute SCOAP testability metrics for the synthesized MUT")
	jsonOut := flag.String("json", "", "write the combined report as JSON to this file ('-' for stdout; implies -scoap)")
	topK := flag.Int("k", 10, "number of nets in the hardest-to-control/observe summaries")
	width := flag.Int("width", 16, "datapath width parameter W for SCOAP synthesis (built-in design)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the analysis (0 = none)")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	if *mut == "" {
		cli.Usagef("testability", "-mut is required (e.g. -mut u_core.u_alu)")
	}
	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("testability")
	if err != nil {
		cli.Fatal("testability", err)
	}
	failpoint.SetCanceler(stop)
	ctx = telemetry.NewContext(ctx, tel)

	src, topName, err := loadDesign(ctx, *designFile, *top)
	if err != nil {
		cli.Fatal("testability", err)
	}
	span := tel.StartSpan("analyze")
	d, err := design.Analyze(src, topName)
	span.End()
	if err != nil {
		cli.Fatal("testability", factorerr.Wrap(factorerr.StageAnalyze, factorerr.CodeAnalysis, err))
	}
	// Extraction supplies the empty-chain diagnostics.
	ext := core.NewExtractor(d, core.ModeComposed)
	span = tel.StartSpan("extract").WithArg("mut", *mut)
	ex, err := ext.ExtractContext(ctx, *mut)
	span.End()
	if err != nil {
		cli.Fatal("testability", err)
	}
	tel.AddCounter("extract.work_items", uint64(ex.WorkItems))
	tel.AddCounter("extract.diags", uint64(len(ex.Diags)))
	rep, err := core.AnalyzeTestability(d, *mut, ex.Diags)
	if err != nil {
		cli.Fatal("testability", err)
	}
	var scoapRep *testability.Report
	if *scoapFlag || *jsonOut != "" {
		span = tel.StartSpan("scoap").WithArg("module", rep.MUTModule)
		scoapRep, err = scoapReport(ctx, src, rep.MUTModule, *width, *topK, *jsonOut != "")
		span.End()
		if err != nil {
			cli.Fatal("testability", err)
		}
		tel.AddCounter("scoap.forward_sweeps", uint64(scoapRep.ForwardSweeps))
		tel.AddCounter("scoap.backward_sweeps", uint64(scoapRep.BackwardSweeps))
		tel.AddCounter("scoap.gate_visits", scoapRep.GateVisits)
	}
	if err := finishTel(); err != nil {
		cli.Warn("testability", err)
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	// With -json - the JSON document owns stdout; the human-readable
	// report moves to stderr so the output stays machine-parseable.
	out := os.Stdout
	if *jsonOut == "-" {
		out = os.Stderr
	}
	fmt.Fprint(out, rep.Summary())
	if len(rep.Constraints) == 0 && len(rep.EmptyChains) == 0 {
		fmt.Fprintln(out, "  no testability bottlenecks found")
	}
	if scoapRep != nil && *scoapFlag {
		fmt.Fprint(out, scoapRep.Format())
	}
	if *jsonOut != "" {
		if err := writeJSON(*jsonOut, rep, scoapRep); err != nil {
			cli.Fatal("testability", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
		}
	}
}

// scoapReport synthesizes the MUT module stand-alone and runs the
// SCOAP engine over its compiled netlist. full additionally includes
// the complete per-net table (for -json).
func scoapReport(ctx context.Context, src *verilog.SourceFile, module string, width, k int, full bool) (*testability.Report, error) {
	params := map[string]int64{}
	if hasWidthParam(src, module) {
		params["W"] = int64(width)
	}
	res, err := synth.SynthesizeContext(ctx, src, module, synth.Options{TopParams: params})
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageSynth, factorerr.CodeAnalysis, err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "testability:", w)
	}
	c := res.Netlist.Compile()
	m := testability.Compute(c)
	stems := testability.ReconvergentStems(c)
	return testability.BuildReport(res.Netlist, m, stems, k, full), nil
}

func hasWidthParam(src *verilog.SourceFile, module string) bool {
	m := src.Module(module)
	if m == nil {
		return false
	}
	for _, pd := range m.Params() {
		for _, n := range pd.Names {
			if n == "W" {
				return true
			}
		}
	}
	return false
}

// combinedReport is the -json document: the def-use analysis next to
// the SCOAP metrics.
type combinedReport struct {
	Testability *core.TestabilityReport `json:"testability"`
	SCOAP       *testability.Report     `json:"scoap"`
}

func writeJSON(path string, rep *core.TestabilityReport, scoapRep *testability.Report) error {
	doc, err := json.MarshalIndent(combinedReport{Testability: rep, SCOAP: scoapRep}, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	if path == "-" {
		_, err = os.Stdout.Write(doc)
		return err
	}
	return os.WriteFile(path, doc, 0o644)
}

func loadDesign(ctx context.Context, file, top string) (*verilog.SourceFile, string, error) {
	if file == "" {
		src, err := arm.ParseContext(ctx)
		if err != nil {
			return nil, "", factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			top = arm.Top
		}
		return src, top, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, "", factorerr.Wrap(factorerr.StageIO, factorerr.CodeInput, err)
	}
	src, err := verilog.ParseContext(ctx, file, string(data))
	if err != nil {
		return nil, "", factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
	}
	if top == "" {
		if len(src.Modules) == 0 {
			return nil, "", factorerr.New(factorerr.StageParse, factorerr.CodeInput, "%s: no modules", file)
		}
		top = src.Modules[0].Name
	}
	return src, top, nil
}
