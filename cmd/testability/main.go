// Command testability runs FACTOR's testability analysis for a module
// under test: constrained (hard-coded) control inputs and empty
// def-use / use-def chains with signal traces (paper §4.2).
//
// Usage:
//
//	testability -mut <instance.path> [-design file.v] [-top name]
//	            [-timeout d] [-stats] [-trace out.json]
//	            [-progress auto|on|off] [-cpuprofile f] [-memprofile f]
//
// Exit codes follow the suite-wide taxonomy: 0 success, 1 error,
// 2 usage, 3 canceled/timed out.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"

	"factor/internal/arm"
	"factor/internal/cli"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/factorerr"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "top module (default: first module, or 'arm')")
	mut := flag.String("mut", "", "hierarchical instance path of the module under test (required)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the analysis (0 = none)")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	if *mut == "" {
		cli.Usagef("testability", "-mut is required (e.g. -mut u_core.u_alu)")
	}
	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("testability")
	if err != nil {
		cli.Fatal("testability", err)
	}
	ctx = telemetry.NewContext(ctx, tel)

	src, topName, err := loadDesign(ctx, *designFile, *top)
	if err != nil {
		cli.Fatal("testability", err)
	}
	span := tel.StartSpan("analyze")
	d, err := design.Analyze(src, topName)
	span.End()
	if err != nil {
		cli.Fatal("testability", factorerr.Wrap(factorerr.StageAnalyze, factorerr.CodeAnalysis, err))
	}
	// Extraction supplies the empty-chain diagnostics.
	ext := core.NewExtractor(d, core.ModeComposed)
	span = tel.StartSpan("extract").WithArg("mut", *mut)
	ex, err := ext.ExtractContext(ctx, *mut)
	span.End()
	if err != nil {
		cli.Fatal("testability", err)
	}
	tel.AddCounter("extract.work_items", uint64(ex.WorkItems))
	tel.AddCounter("extract.diags", uint64(len(ex.Diags)))
	rep, err := core.AnalyzeTestability(d, *mut, ex.Diags)
	if err != nil {
		cli.Fatal("testability", err)
	}
	if err := finishTel(); err != nil {
		cli.Warn("testability", err)
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	fmt.Print(rep.Summary())
	if len(rep.Constraints) == 0 && len(rep.EmptyChains) == 0 {
		fmt.Println("  no testability bottlenecks found")
	}
}

func loadDesign(ctx context.Context, file, top string) (*verilog.SourceFile, string, error) {
	if file == "" {
		src, err := arm.ParseContext(ctx)
		if err != nil {
			return nil, "", factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			top = arm.Top
		}
		return src, top, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, "", factorerr.Wrap(factorerr.StageIO, factorerr.CodeInput, err)
	}
	src, err := verilog.ParseContext(ctx, file, string(data))
	if err != nil {
		return nil, "", factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
	}
	if top == "" {
		if len(src.Modules) == 0 {
			return nil, "", factorerr.New(factorerr.StageParse, factorerr.CodeInput, "%s: no modules", file)
		}
		top = src.Modules[0].Name
	}
	return src, top, nil
}
