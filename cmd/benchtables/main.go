// Command benchtables regenerates the evaluation tables of the FACTOR
// paper (DATE 2002) on the built-in ARM2-class benchmark SoC.
//
// Usage:
//
//	benchtables [-table N] [-width W] [-budget D] [-seed S] [-j N] [-faultsim PATH]
//	            [-scoap PATH] [-stats] [-trace out.json] [-progress auto|on|off]
//	            [-cpuprofile f] [-memprofile f]
//
// -j sets the worker count for parallel constraint extraction and
// ATPG (0 = all CPU cores); table contents are identical for every
// worker count. With no -table flag all six tables are produced in
// order. Table 4
// (raw chip-level ATPG) is the slowest by design: it demonstrates the
// problem the methodology solves.
//
// -faultsim runs the single-core fault-simulation engine ablation
// (serial vs packed full-evaluation vs event-driven) instead of the
// tables and writes the rows as JSON to PATH (use - for stdout only).
//
// -scoap runs the guided-PODEM ablation (default vs SCOAP backtrace
// costs, random phase disabled) instead of the tables and writes the
// rows as JSON to PATH (use - for stdout only). The work counters in
// the rows are deterministic: reruns reproduce them bit for bit.
//
// -shard runs the multi-process sharded fault-simulation scaling
// ablation (shard counts 1/2/4 over the same seed-design corpus,
// re-exec'd through this binary) and writes the rows as JSON to PATH
// (use - for stdout only). Detected counts and first-detection digests
// are asserted identical across shard counts.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"factor/internal/bench"
	"factor/internal/cli"
	"factor/internal/shard"
)

func main() {
	// A -shard ablation re-execs this binary as shard children; the env
	// marker routes those straight into the child body (never returns).
	shard.ChildMain()
	table := flag.Int("table", 0, "table to regenerate (1-6, 0 = all)")
	width := flag.Int("width", 16, "datapath width of the benchmark SoC")
	budget := flag.Duration("budget", 10*time.Second, "ATPG time budget per module")
	seed := flag.Int64("seed", 1, "ATPG random seed")
	frames := flag.Int("frames", 8, "time-frame budget for sequential ATPG")
	workers := flag.Int("j", 0, "worker goroutines for extraction and ATPG (0 = all CPU cores)")
	faultsim := flag.String("faultsim", "", "run the fault-simulation engine ablation and write JSON to this path (- for stdout only)")
	scoap := flag.String("scoap", "", "run the guided-PODEM (default vs SCOAP) ablation and write JSON to this path (- for stdout only)")
	shardFlag := flag.String("shard", "", "run the sharded fault-simulation scaling ablation and write JSON to this path (- for stdout only)")
	reps := flag.Int("reps", 3, "repetitions per engine for the -faultsim ablation (fastest pass wins)")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	tel, finishTel, err := rf.Start("benchtables")
	if err != nil {
		fatal(err)
	}
	finish := func() {
		if err := finishTel(); err != nil {
			fmt.Fprintln(os.Stderr, "benchtables:", err)
		}
		if *statsFlag {
			fmt.Fprint(os.Stderr, tel.Summary())
		}
	}

	if *faultsim != "" {
		sp := tel.StartSpan("faultsim-ablation")
		rows, err := bench.FaultSimAblation(*width, *reps)
		sp.End()
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			tel.AddCounter("faultsim.packed_evals."+r.Module, r.PackedEvals)
			tel.AddCounter("faultsim.event_evals."+r.Module, r.EventEvals)
		}
		fmt.Print(bench.FormatFaultSim(rows))
		if *faultsim != "-" {
			if err := bench.WriteFaultSimJSON(*faultsim, rows); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *faultsim)
		}
		finish()
		return
	}

	if *shardFlag != "" {
		spawn, err := shard.SelfExecSpawner()
		if err != nil {
			fatal(err)
		}
		sp := tel.StartSpan("shard-ablation")
		rows, err := bench.ShardAblation(*width, *reps, nil, nil, spawn)
		sp.End()
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			tel.AddCounter(fmt.Sprintf("shard.sim_events.%d", r.Shards), r.SimEvents)
		}
		fmt.Print(bench.FormatShard(rows))
		if *shardFlag != "-" {
			if err := bench.WriteShardJSON(*shardFlag, rows); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *shardFlag)
		}
		finish()
		return
	}

	if *scoap != "" {
		sp := tel.StartSpan("scoap-ablation")
		rows, err := bench.ScoapAblation(*width, *workers)
		sp.End()
		if err != nil {
			fatal(err)
		}
		for _, r := range rows {
			tel.AddCounter("scoap.default_backtracks."+r.Module, r.DefaultBacktracks)
			tel.AddCounter("scoap.guided_backtracks."+r.Module, r.ScoapBacktracks)
		}
		fmt.Print(bench.FormatScoap(rows))
		if *scoap != "-" {
			if err := bench.WriteScoapJSON(*scoap, rows); err != nil {
				fatal(err)
			}
			fmt.Printf("\nwrote %s\n", *scoap)
		}
		finish()
		return
	}

	cfg := bench.Config{
		Width:      *width,
		ATPGBudget: *budget,
		Seed:       *seed,
		MaxFrames:  *frames,
		Workers:    *workers,
	}
	sp := tel.StartSpan("setup")
	ctx, err := bench.NewContext(cfg)
	sp.End()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("benchmark design: %d gates, %d DFFs (W=%d); full synthesis %v\n\n",
		ctx.Full.NumGates(), len(ctx.Full.DFFs), *width, ctx.FullSynthTime.Round(time.Millisecond))

	run := func(n int) {
		sp := tel.StartSpan(fmt.Sprintf("table%d", n))
		defer sp.End()
		switch n {
		case 1:
			rows, err := ctx.Table1()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable1(rows))
		case 2:
			rows, err := ctx.Table2()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable23("Table 2. Transformed Module Without Composition", rows))
		case 3:
			rows, err := ctx.Table3()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable23("Table 3. Transformed Module With Composition", rows))
		case 4:
			rows, err := ctx.Table4()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable4(rows))
		case 5:
			rows, err := ctx.Table5()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable56("Table 5. Test Gen. Without Composition", rows))
		case 6:
			rows, err := ctx.Table6()
			if err != nil {
				fatal(err)
			}
			fmt.Println(bench.FormatTable56("Table 6. Test Gen. With Composition", rows))
		default:
			fatal(fmt.Errorf("unknown table %d", n))
		}
	}

	if *table != 0 {
		run(*table)
		finish()
		return
	}
	for n := 1; n <= 6; n++ {
		run(n)
	}
	finish()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchtables:", err)
	os.Exit(1)
}
