// Command corpus batches fault simulation over many generated designs,
// sharded across worker processes: each design is synthesized once,
// snapshotted (netlist.Snapshot) into a read-only compiled-netlist
// file, partitioned into batch-aligned fault ranges, and simulated by
// re-exec'd shard children whose results merge deterministically — the
// per-design rows, the -report JSON (minus its self-describing .shard
// topology section) and the exit code are byte-identical for any
// -shards × -j × -maxprocs combination, and across -checkpoint/-resume
// splits.
//
// Usage:
//
//	corpus [-n N] [-seed S] [-shards K] [-j W] [-seqs Q] [-cycles C]
//	       [-maxprocs P] [-report file] [-checkpoint file] [-resume]
//	       [-timeout d] [-stats] [-failpoints spec] [-trace out.json]
//	       [-progress auto|on|off] [-cpuprofile f] [-memprofile f]
//
// Scheduling is fair across designs: the (design, shard) task list is
// interleaved round-robin so early designs do not monopolize the
// process budget, and output is assembled in design order regardless of
// completion order. A shard process that dies degrades its fault range
// (reported undetected, counted quarantined, exit 3) instead of
// failing the corpus; -failpoints specs propagate into shard children
// via the environment, so chaos testing covers the whole process tree.
//
// Exit codes follow the suite-wide taxonomy: 0 success, 1 error,
// 2 usage, 3 partial (degraded shards, quarantined batches, timeout).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"factor/internal/cli"
	"factor/internal/designgen"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/shard"
	"factor/internal/synth"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

func main() {
	// Shard-child hook: when spawned as a worker this never returns.
	shard.ChildMain()

	n := flag.Int("n", 4, "number of generated designs in the corpus")
	seed := flag.Int64("seed", 1, "base seed; design i uses seed+i")
	shards := flag.Int("shards", 1, "shard processes per design")
	workers := flag.Int("j", 1, "simulation workers inside each shard")
	seqs := flag.Int("seqs", 16, "random sequences per design")
	cycles := flag.Int("cycles", 8, "cycles per sequence")
	maxprocs := flag.Int("maxprocs", 0, "concurrently running shard processes across the corpus (0 = shards)")
	reportPath := flag.String("report", "", "write the machine-readable run report as JSON to this file")
	emitDir := flag.String("emit", "", "also write each generated design's Verilog to this directory (design_<i>.v)")
	ckptPath := flag.String("checkpoint", "", "journal completed designs to this file")
	resume := flag.Bool("resume", false, "serve designs already in the -checkpoint journal instead of re-simulating")
	timeout := flag.Duration("timeout", 0, "wall-clock budget (0 = none)")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	// A stray positional argument usually means a boolean flag (e.g.
	// -resume) was given a value; Go's flag parser would silently drop
	// every flag after it.
	if flag.NArg() > 0 {
		cli.Usagef("corpus", "unexpected argument %q", flag.Arg(0))
	}
	if *n < 1 {
		cli.Usagef("corpus", "-n must be >= 1")
	}
	if *shards < 1 {
		cli.Usagef("corpus", "-shards must be >= 1")
	}
	if *resume && *ckptPath == "" {
		cli.Usagef("corpus", "-resume requires -checkpoint")
	}
	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("corpus")
	if err != nil {
		cli.Fatal("corpus", err)
	}
	failpoint.SetCanceler(stop)
	ctx = telemetry.NewContext(ctx, tel)

	runErr := run(ctx, tel, rf, config{
		N: *n, Seed: *seed, Shards: *shards, Workers: *workers,
		Seqs: *seqs, Cycles: *cycles, Procs: *maxprocs,
		Report: *reportPath, Checkpoint: *ckptPath, Resume: *resume,
		Emit: *emitDir, Trace: rf.Trace != "",
	})
	if err := finishTel(); err != nil && runErr == nil {
		runErr = err
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	if runErr != nil {
		if factorerr.ExitCode(runErr) == factorerr.ExitPartial {
			cli.Warn("corpus", runErr)
			os.Exit(factorerr.ExitPartial)
		}
		cli.Fatal("corpus", runErr)
	}
}

type config struct {
	N          int
	Seed       int64
	Shards     int
	Workers    int
	Seqs       int
	Cycles     int
	Procs      int
	Report     string
	Checkpoint string
	Resume     bool
	Emit       string
	// Trace asks shard children to ship their span buffers back so the
	// parent can assemble one corpus-wide Chrome trace (-trace).
	Trace bool
}

// designState is one corpus entry mid-flight.
type designState struct {
	index   int
	seed    int64
	module  string
	nl      *netlist.Netlist
	faults  int
	specs   []shard.Spec
	slots   []shard.ShardOutcome
	// offsets[s] is the parent-clock microsecond at which shard s was
	// spawned — the rebase applied to that child's spans when merging
	// them into the parent trace.
	offsets []int64
	outcome shard.Outcome
	ranges  [][2]int
	died    []int
	journal bool // already served from the resume journal
	errs    []error
}

func run(ctx context.Context, tel *telemetry.Telemetry, rf *cli.RunFlags, cfg config) error {
	logger := rf.Logger()
	logger.Info("corpus run", "designs", cfg.N, "shards", cfg.Shards,
		"workers", cfg.Workers, "seqs", cfg.Seqs, "cycles", cfg.Cycles)
	fp := shard.Fingerprint{Seed: cfg.Seed, Seqs: cfg.Seqs, Cycles: cfg.Cycles}
	var journaled map[int]shard.Outcome
	if cfg.Resume {
		var err error
		journaled, err = shard.LoadOutcomes(cfg.Checkpoint, fp)
		if errors.Is(err, os.ErrNotExist) {
			journaled = nil // nothing flushed yet; fresh start
		} else if err != nil {
			return err
		}
	}
	if cfg.Checkpoint != "" && journaled == nil {
		if err := shard.CreateJournal(cfg.Checkpoint, fp); err != nil {
			return err
		}
	}

	workDir, err := os.MkdirTemp("", "factor-corpus-*")
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	defer os.RemoveAll(workDir)

	spawn, err := shard.SelfExecSpawner()
	if err != nil {
		return err
	}
	env := cli.ChildEnv(rf, nil)

	// Phase 1: synthesize and snapshot every design (cheap relative to
	// simulation; done serially for deterministic telemetry).
	span := tel.StartSpan("corpus.synthesize")
	designs := make([]*designState, cfg.N)
	for i := range designs {
		d, err := buildDesign(i, cfg, workDir)
		if err != nil {
			span.End()
			return err
		}
		designs[i] = d
		if o, ok := journaled[i]; ok && o.Seed == d.seed && o.Faults == d.faults {
			d.journal = true
			d.outcome = o
		}
	}
	span.End()

	// Phase 2: fair round-robin schedule over every (design, shard)
	// task — shard s of every design before shard s+1 of any — bounded
	// by the process budget. Results land in per-design slots; order of
	// completion is irrelevant to the merge.
	type task struct {
		d, s int
	}
	var tasks []task
	for s := 0; s < cfg.Shards; s++ {
		for d, ds := range designs {
			if ds.journal || ds.faults == 0 || s >= len(ds.specs) {
				continue
			}
			if sp := ds.specs[s]; sp.FaultLo < sp.FaultHi {
				tasks = append(tasks, task{d, s})
			}
		}
	}
	procs := cfg.Procs
	if procs <= 0 {
		procs = cfg.Shards
	}
	span = tel.StartSpan("corpus.simulate")
	sem := make(chan struct{}, procs)
	done := make(chan struct{})
	for _, tk := range tasks {
		go func(tk task) {
			sem <- struct{}{}
			defer func() { <-sem; done <- struct{}{} }()
			ds := designs[tk.d]
			ds.offsets[tk.s] = tel.Elapsed().Microseconds()
			res, err := spawn(ctx, ds.specs[tk.s], env)
			ds.slots[tk.s] = shard.ShardOutcome{Res: res, Err: err}
		}(tk)
	}
	for range tasks {
		<-done
	}
	span.End()
	if ctx.Err() != nil {
		return factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeCanceled, ctx.Err())
	}

	// Phase 3: merge, journal and render in design order.
	var all []error
	var corpusRows []cli.CorpusDesign
	topo := &cli.ShardReport{Shards: cfg.Shards, WorkersPerShard: cfg.Workers, Procs: cfg.Procs}
	var work shard.WorkCounters
	quarantined := 0
	degraded := 0
	for _, ds := range designs {
		if !ds.journal && ds.faults > 0 {
			rr := shard.Merge(ds.module, ds.faults, ds.slots)
			ds.outcome = shard.Outcome{
				Design: ds.index, Seed: ds.seed, Module: ds.module,
				Gates: ds.nl.NumGates(), Faults: ds.faults,
				Detected: rr.Detected(), Digest: shard.DigestFirst(rr.First),
				Work: rr.Work, Quarantined: rr.Quarantined, DiedShards: len(rr.Died),
			}
			ds.died = rr.Died
			ds.errs = rr.Errors
			// Cross-process trace assembly: each shard child becomes its
			// own Perfetto process lane. pid 0 is this orchestrator; shard
			// s of design d gets pid 1 + d*Shards + s — unique across the
			// corpus and stable across runs.
			for s, spans := range rr.Spans {
				if len(spans) == 0 {
					continue
				}
				pid := int64(1 + ds.index*cfg.Shards + s)
				tel.MergeProcess(pid, fmt.Sprintf("shard %d %s", s, ds.module), ds.offsets[s], spans)
			}
			logger.Info("design merged",
				"design", ds.index, "module", ds.module,
				"faults", ds.faults, "detected", rr.Detected(),
				"quarantined", rr.Quarantined, "died_shards", len(rr.Died))
			fmt.Fprintf(os.Stderr, "corpus: design %d trace_cycles=%d ranges=%s\n",
				ds.index, rr.TraceCycles, shard.FormatRanges(rr.Ranges))
		} else if !ds.journal {
			ds.outcome = shard.Outcome{Design: ds.index, Seed: ds.seed, Module: ds.module,
				Gates: ds.nl.NumGates(), Vacuous: true, Digest: shard.DigestFirst(nil)}
		}
		if cfg.Checkpoint != "" && !ds.journal {
			if err := shard.AppendOutcome(cfg.Checkpoint, ds.outcome); err != nil {
				return err
			}
		}

		o := ds.outcome
		coverage := 0.0
		if o.Faults > 0 {
			coverage = 100 * float64(o.Detected) / float64(o.Faults)
		}
		fmt.Printf("design=%d seed=%d module=%s gates=%d faults=%d detected=%d coverage=%.2f digest=%s quarantined=%d degraded=%v\n",
			o.Design, o.Seed, o.Module, o.Gates, o.Faults, o.Detected, coverage, o.Digest, o.Quarantined, o.DiedShards > 0)

		corpusRows = append(corpusRows, cli.CorpusDesign{
			Design: o.Design, Seed: o.Seed, Module: o.Module, Gates: o.Gates,
			Faults: o.Faults, Detected: o.Detected, Coverage: coverage,
			FirstDigest: o.Digest, Quarantined: o.Quarantined,
			Degraded: o.DiedShards > 0, Vacuous: o.Vacuous,
		})
		topo.Designs = append(topo.Designs, cli.ShardDesignTopology{
			Module: o.Module, FaultRanges: ds.ranges, DiedShards: ds.died,
		})
		work.Add(o.Work)
		quarantined += o.Quarantined
		if o.DiedShards > 0 {
			degraded++
		}
		all = append(all, ds.errs...)
	}

	// Aggregate counters: cross-process totals folded into this
	// process's telemetry so the report's counter section carries the
	// merged, topology-invariant values.
	tel.AddCounter("corpus.designs", uint64(len(designs)))
	tel.AddCounter("faultsim.batches", work.Batches)
	tel.AddCounter("faultsim.cycles", work.Cycles)
	tel.AddCounter("faultsim.events", work.Events)
	tel.AddCounter("faultsim.flop_heals", work.FlopHeals)

	var runErr error
	if err := factorerr.Collect(all); err != nil {
		runErr = err
	}
	finalReport := cli.NewReport("corpus", runErr)
	finalReport.Corpus = corpusRows
	finalReport.Shard = topo
	finalReport.AttachTelemetry(tel)
	finalReport.AttachDegraded(quarantined, degraded)
	if cfg.Report != "" {
		if err := finalReport.Write(cfg.Report); err != nil {
			return err
		}
	}
	return runErr
}

// buildDesign generates, synthesizes and snapshots corpus design i.
func buildDesign(i int, cfg config, workDir string) (*designState, error) {
	dseed := cfg.Seed + int64(i)
	text := designgen.Generate(dseed, designgen.DefaultConfig()).Text()
	if cfg.Emit != "" {
		// The emitted file is the exact text the corpus simulates, so
		// it can be resubmitted to factord or factor -atpg verbatim.
		if err := os.MkdirAll(cfg.Emit, 0o755); err != nil {
			return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
		}
		path := filepath.Join(cfg.Emit, fmt.Sprintf("design_%d.v", i))
		if err := os.WriteFile(path, []byte(text), 0o644); err != nil {
			return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
		}
	}
	src, err := verilog.Parse(fmt.Sprintf("corpus-%d.v", i), text)
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
	}
	top := "top"
	if src.Module(top) == nil && len(src.Modules) > 0 {
		top = src.Modules[len(src.Modules)-1].Name
	}
	res, err := synth.Synthesize(src, top, synth.Options{})
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageSynth, factorerr.CodeAnalysis, err)
	}
	nl := res.Netlist
	faults := fault.Universe(nl)

	ds := &designState{
		index:  i,
		seed:   dseed,
		module: fmt.Sprintf("%s@%d", top, dseed),
		nl:     nl,
		faults: len(faults),
	}
	ds.ranges = shard.Partition(ds.faults, cfg.Shards)
	if ds.faults == 0 {
		return ds, nil
	}
	snap := filepath.Join(workDir, fmt.Sprintf("design_%d.snap", i))
	if err := nl.WriteSnapshotFile(snap); err != nil {
		return nil, err
	}
	opts := shard.Options{
		Shards: cfg.Shards, Workers: cfg.Workers,
		Seqs: cfg.Seqs, Cycles: cfg.Cycles,
		Seed:      stimulusSeed(dseed),
		Module:    ds.module,
		Snapshot:  snap,
		ChaosSalt: uint64(dseed),
		Trace:     cfg.Trace,
	}
	ds.specs = opts.Specs(ds.faults)
	ds.slots = make([]shard.ShardOutcome, len(ds.specs))
	ds.offsets = make([]int64, len(ds.specs))
	return ds, nil
}

// stimulusSeed derives the sequence-generator seed from the design
// seed (splitmix64 step) so stimulus and structure vary independently.
func stimulusSeed(dseed int64) uint64 {
	z := uint64(dseed) + 0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}
