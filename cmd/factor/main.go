// Command factor is the FACTOR constraint extractor: it reads a
// Verilog design, extracts the functional constraints surrounding a
// module under test, and writes the transformed module (MUT + virtual
// environment) as synthesizable Verilog.
//
// Usage:
//
//	factor -mut <instance.path>[,<instance.path>...] [-design file.v]
//	       [-top name] [-mode flat|composed] [-piers] [-o out.v]
//	       [-dir outdir] [-j N] [-stats] [-timeout d] [-report file.json]
//	       [-trace out.json] [-progress auto|on|off]
//	       [-cpuprofile f] [-memprofile f]
//
// Without -design the built-in ARM2-class benchmark SoC is used.
// Several comma-separated MUT paths are extracted concurrently over -j
// workers (0 = all CPU cores) with a shared constraint cache, so
// intermediate modules common to several MUTs are analyzed once;
// multi-MUT mode requires -dir and writes one subdirectory per MUT.
//
// In multi-MUT mode a failing MUT does not abort its siblings: the
// healthy MUTs are written normally, the failure is reported on stderr
// (and in the -report JSON), and the process exits 3. Exit codes:
// 0 success, 1 error (nothing produced), 2 usage, 3 partial.
//
// With -atpg the command runs the full pipeline instead — extract (if
// -mut is given) → synth → ATPG → first-detection replay — through the
// same internal/service.RunPipeline the factord job server uses, so
// the -report bytes are byte-identical to the report the server
// stores for an equivalent job submission (conformance invariant I8).
// In -atpg mode -mut is optional (empty targets the whole top) and the
// ATPG knobs -seed/-seqs/-seqlen/-frames/-backtracks/-guide apply.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/cli"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/service"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "top module (default: first module, or 'arm' for the built-in design)")
	mut := flag.String("mut", "", "hierarchical instance path(s) of the module(s) under test, comma-separated (required)")
	mode := flag.String("mode", "composed", "extraction mode: flat | composed")
	piers := flag.Bool("piers", false, "identify PIERs and add load/observe points to the netlist view")
	out := flag.String("o", "", "write the transformed Verilog here (default stdout)")
	outDir := flag.String("dir", "", "write one file per module into this directory (the paper's \"retains the original directory structure\")")
	stats := flag.Bool("stats", true, "print extraction statistics to stderr")
	width := flag.Int("width", 16, "datapath width parameter W (built-in design)")
	workers := flag.Int("j", 0, "worker goroutines for multi-MUT extraction (0 = all CPU cores)")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for extraction + synthesis (0 = none)")
	report := flag.String("report", "", "write a machine-readable run report (JSON) to this file")
	atpgMode := flag.Bool("atpg", false, "run the full pipeline (extract, synth, ATPG, fault-sim replay) via the service code path")
	seed := flag.Int64("seed", 1, "ATPG random-phase seed (-atpg mode)")
	seqs := flag.Int("seqs", 0, "random sequences (-atpg mode, 0 = default)")
	seqLen := flag.Int("seqlen", 0, "cycles per random sequence (-atpg mode, 0 = derive)")
	frames := flag.Int("frames", 0, "time-frame budget (-atpg mode, 0 = derive)")
	backtracks := flag.Int("backtracks", 0, "PODEM backtrack limit (-atpg mode, 0 = default)")
	guide := flag.String("guide", "default", "PODEM backtrace cost model (-atpg mode): default or scoap")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	if *atpgMode {
		runATPGPipeline(atpgArgs{
			designFile: *designFile, top: *top, width: *width, mut: *mut,
			mode: *mode, seed: *seed, seqs: *seqs, seqLen: *seqLen,
			frames: *frames, backtracks: *backtracks, guide: *guide,
			workers: *workers, timeout: *timeout, report: *report, rf: rf,
		})
		return
	}
	if *mut == "" {
		cli.Usagef("factor", "-mut is required (e.g. -mut u_core.u_alu)")
	}
	muts := strings.Split(*mut, ",")
	for i := range muts {
		muts[i] = strings.TrimSpace(muts[i])
	}
	if len(muts) > 1 && *outDir == "" {
		cli.Usagef("factor", "multiple -mut paths require -dir (one subdirectory per MUT)")
	}
	m := core.ModeComposed
	if *mode == "flat" {
		m = core.ModeFlat
	} else if *mode != "composed" {
		cli.Usagef("factor", "unknown mode %q", *mode)
	}

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("factor")
	if err != nil {
		cli.Fatal("factor", err)
	}
	failpoint.SetCanceler(stop)
	ctx = telemetry.NewContext(ctx, tel)

	src, topName, params, err := loadDesign(ctx, *designFile, *top, *width)
	if err != nil {
		cli.Fatal("factor", err)
	}
	span := tel.StartSpan("analyze")
	d, err := design.Analyze(src, topName)
	span.End()
	if err != nil {
		cli.Fatal("factor", factorerr.Wrap(factorerr.StageAnalyze, factorerr.CodeAnalysis, err))
	}

	ext := core.NewExtractor(d, m)
	start := time.Now()
	span = tel.StartSpan("transform")
	trs, runErr := core.TransformAll(ctx, ext, muts, nil, core.TransformOptions{
		TopParams:   params,
		EnablePIERs: *piers,
	}, *workers)
	span.End()
	elapsed := time.Since(start)
	if err := finishTel(); err != nil {
		fmt.Fprintf(os.Stderr, "factor: %s\n", factorerr.FormatChain(err))
	}

	// Write outputs for every MUT that made it; failed MUTs left nil
	// entries and are reported below.
	multi := len(muts) > 1
	for _, tr := range trs {
		if tr == nil {
			continue
		}
		if *outDir != "" {
			// Each MUT gets its own subdirectory in multi-MUT mode so
			// specialized modules of different MUTs cannot collide.
			dir := *outDir
			if multi {
				dir = filepath.Join(dir, strings.ReplaceAll(tr.MUTPath, ".", "_"))
			}
			if err := os.MkdirAll(dir, 0o755); err != nil {
				cli.Fatal("factor", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
			}
			for _, m := range tr.Source.Modules {
				path := filepath.Join(dir, m.Name+".v")
				if err := os.WriteFile(path, []byte(verilog.Print(m)), 0o644); err != nil {
					cli.Fatal("factor", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
				}
			}
			fmt.Fprintf(os.Stderr, "factor: wrote %d module files to %s\n", len(tr.Source.Modules), dir)
		} else {
			text := verilog.PrintFile(tr.Source)
			if *out == "" {
				fmt.Print(text)
			} else if err := os.WriteFile(*out, []byte(text), 0o644); err != nil {
				cli.Fatal("factor", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
			}
		}
	}

	if *stats {
		for _, tr := range trs {
			if tr == nil {
				continue
			}
			fmt.Fprintf(os.Stderr, "factor: MUT %s (%s), mode %s\n", tr.MUTModule, tr.MUTPath, tr.Mode)
			fmt.Fprintf(os.Stderr, "  transformed top: %s\n", tr.TopName)
			fmt.Fprintf(os.Stderr, "  MUT gates: %d, environment gates: %d\n", tr.MUTGates, tr.EnvGates)
			fmt.Fprintf(os.Stderr, "  interface: %d PIs, %d POs\n", tr.PIs, tr.POs)
			fmt.Fprintf(os.Stderr, "  PIERs: %d\n", len(tr.PIERs))
			fmt.Fprintf(os.Stderr, "  extraction %v (%d work items), synthesis %v\n",
				tr.ExtractTime.Round(time.Microsecond), tr.WorkItems,
				tr.SynthTime.Round(time.Microsecond))
			for _, dg := range tr.Diags {
				fmt.Fprintf(os.Stderr, "  testability: %s\n", dg)
			}
			for _, w := range tr.Warnings {
				fmt.Fprintf(os.Stderr, "  synth: %s\n", w)
			}
		}
		fmt.Fprintf(os.Stderr, "factor: %d MUT(s) in %v; cache hits %d, misses %d\n",
			len(trs), elapsed.Round(time.Microsecond), ext.CacheHits, ext.CacheMisses)
		fmt.Fprint(os.Stderr, tel.Summary())
	}

	if *report != "" {
		rep := cli.NewReport("factor", runErr)
		rep.AttachTelemetry(tel)
		degraded := 0
		for _, tr := range trs {
			if tr == nil {
				degraded++
			}
		}
		rep.AttachDegraded(0, degraded)
		for i, tr := range trs {
			mr := cli.MUTReport{Path: muts[i], OK: tr != nil}
			if tr != nil {
				mr.Gates = tr.MUTGates + tr.EnvGates
				mr.PIs = tr.PIs
				mr.POs = tr.POs
				mr.PIERs = len(tr.PIERs)
			}
			rep.MUTs = append(rep.MUTs, mr)
		}
		if err := rep.Write(*report); err != nil {
			cli.Fatal("factor", err)
		}
	}

	if runErr != nil {
		fmt.Fprintf(os.Stderr, "factor: %s\n", factorerr.FormatChain(runErr))
		os.Exit(factorerr.ExitCode(runErr))
	}
}

// atpgArgs carries the -atpg mode flag values.
type atpgArgs struct {
	designFile, top, mut, mode, guide string
	width                             int
	seed                              int64
	seqs, seqLen, frames, backtracks  int
	workers                           int
	timeout                           time.Duration
	report                            string
	rf                                *cli.RunFlags
}

// runATPGPipeline is the -atpg mode body: the same
// service.RunPipeline the factord job server runs, so the -report
// bytes are byte-identical to the server's stored report for an
// equivalent submission.
func runATPGPipeline(a atpgArgs) {
	ctx, stop := cli.SignalContext(a.timeout)
	defer stop()
	tel, finishTel, err := a.rf.Start("factor")
	if err != nil {
		cli.Fatal("factor", err)
	}
	failpoint.SetCanceler(stop)

	spec := service.JobSpec{
		Top:             a.top,
		Width:           a.width,
		MUT:             a.mut,
		Mode:            a.mode,
		Seed:            a.seed,
		RandomSequences: a.seqs,
		RandomSeqLen:    a.seqLen,
		BacktrackLimit:  a.backtracks,
		MaxFrames:       a.frames,
		Guide:           a.guide,
		Workers:         a.workers,
	}
	if a.designFile != "" {
		data, err := os.ReadFile(a.designFile)
		if err != nil {
			cli.Fatal("factor", factorerr.Wrap(factorerr.StageIO, factorerr.CodeInput, err))
		}
		spec.Design = string(data)
	}

	rep, _, runErr := service.RunPipeline(ctx, spec, service.RunConfig{Tel: tel})
	if err := finishTel(); err != nil {
		cli.Warn("factor", err)
	}
	if runErr != nil {
		cli.Fatal("factor", runErr)
	}

	fmt.Fprintf(os.Stderr, "factor: %d faults, %.2f%% coverage, %.2f%% efficiency, %d tests (replay detected %d)\n",
		rep.ATPG.TotalFaults, rep.ATPG.Coverage, rep.ATPG.Efficiency, rep.ATPG.Tests, rep.FaultSim.Detected)
	if a.report != "" {
		if err := rep.Write(a.report); err != nil {
			cli.Fatal("factor", err)
		}
	} else if _, err := rep.WriteTo(os.Stdout); err != nil {
		cli.Fatal("factor", err)
	}
	if rep.ExitCode != 0 {
		os.Exit(rep.ExitCode)
	}
}

func loadDesign(ctx context.Context, file, top string, width int) (*verilog.SourceFile, string, map[string]int64, error) {
	if file == "" {
		src, err := arm.ParseContext(ctx)
		if err != nil {
			return nil, "", nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			top = arm.Top
		}
		return src, top, map[string]int64{"W": int64(width)}, nil
	}
	data, err := os.ReadFile(file)
	if err != nil {
		return nil, "", nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeInput, err)
	}
	src, err := verilog.ParseContext(ctx, file, string(data))
	if err != nil {
		return nil, "", nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
	}
	if top == "" {
		if len(src.Modules) == 0 {
			return nil, "", nil, factorerr.New(factorerr.StageParse, factorerr.CodeInput, "%s: no modules", file)
		}
		top = src.Modules[0].Name
	}
	return src, top, nil, nil
}
