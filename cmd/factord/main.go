// Command factord is the FACTOR job server: a long-running HTTP/JSON
// API that accepts Verilog design uploads and runs the full
// extract→synth→ATPG→fault-sim pipeline as queued jobs.
//
// Usage:
//
//	factord [-addr :8080] [-admin addr] [-data dir] [-queue N]
//	        [-runners N] [-budget d] [-checkpoint-every N] [-drain d]
//	        [-sse-progress] [-job-traces] [-stats] [-log json|text|off]
//	        [-trace out.json] [-progress auto|on|off]
//	        [-failpoints spec] [-cpuprofile f] [-memprofile f]
//
// API (see DESIGN.md §15 and the README "Serving" section):
//
//	POST   /api/v1/jobs                 submit a job (JSON JobRequest)
//	GET    /api/v1/jobs                 list jobs
//	GET    /api/v1/jobs/{id}            job status
//	DELETE /api/v1/jobs/{id}            cancel a job
//	GET    /api/v1/jobs/{id}/report     the canonical report bytes
//	GET    /api/v1/jobs/{id}/trace      per-job Chrome-trace JSON
//	GET    /api/v1/jobs/{id}/events     SSE progress stream
//	GET    /api/v1/designs/{hash}/report  content-addressed result fetch
//	GET    /api/v1/healthz, /api/v1/stats
//	GET    /metrics                     Prometheus text exposition
//
// Observability (DESIGN.md §16): /metrics serves the operational
// metrics plane (queue depth and wait, job transitions, CAS hit/miss,
// per-stage latency, HTTP timings); -admin opens a second, private
// listener with net/http/pprof and expvar under /debug/; -log emits
// structured request/job logs on stderr. None of these planes change
// report bytes.
//
// Results are persisted in a content-addressed store under -data and
// keyed by the structural design hash: resubmitting the same
// design/options is a cache hit served without re-running the
// pipeline, and the report bytes are byte-identical to what
// `factor -atpg ... -report` writes for the same spec. In-flight jobs
// journal ATPG checkpoints; on restart the server re-enqueues and
// resumes them, finishing bit-identical to an uninterrupted run.
//
// On SIGINT/SIGTERM the server stops accepting, drains the queue for
// -drain, then interrupts what is left (resumable on next start).
package main

import (
	"context"
	"errors"
	"expvar"
	"flag"
	"fmt"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"factor/internal/cli"
	"factor/internal/service"
	"factor/internal/telemetry/metrics"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	adminAddr := flag.String("admin", "", "optional private admin listen address serving /debug/pprof/ and /debug/vars (off when empty)")
	dataDir := flag.String("data", "factord-data", "data directory (content-addressed store + job ledger)")
	queueCap := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	runners := flag.Int("runners", 2, "concurrent job runners")
	budget := flag.Duration("budget", 0, "soft per-job time budget (0 = none; budget-cut runs lose byte identity)")
	ckEvery := flag.Int("checkpoint-every", 64, "ATPG journal flush cadence (merged deterministic-phase faults)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	sseProgress := flag.Bool("sse-progress", true, "stream progress events and heartbeats over SSE")
	jobTraces := flag.Bool("job-traces", true, "capture a per-job Chrome trace served at /api/v1/jobs/{id}/trace")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr on shutdown")
	rf := cli.RegisterRunFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("factord", "unexpected argument %q", flag.Arg(0))
	}

	tel, finishTel, err := rf.Start("factord")
	if err != nil {
		cli.Fatal("factord", err)
	}
	// die finalizes observability before exiting: without it an early
	// fatal would drop the CPU profile and trace buffers on the floor.
	die := func(err error) {
		if ferr := finishTel(); ferr != nil {
			cli.Warn("factord", ferr)
		}
		cli.Fatal("factord", err)
	}

	srv, err := service.New(service.Config{
		DataDir:         *dataDir,
		QueueCap:        *queueCap,
		Runners:         *runners,
		JobBudget:       *budget,
		CheckpointEvery: *ckEvery,
		Progress:        *sseProgress,
		Tel:             tel,
		Metrics:         metrics.NewRegistry(),
		TraceJobs:       *jobTraces,
		Logger:          rf.Logger(),
	})
	if err != nil {
		die(err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "factord: serving on %s (data %s, %d runners, queue %d)\n",
			*addr, *dataDir, *runners, *queueCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	// The admin plane is a separate listener so pprof and expvar are
	// never exposed on the public API address.
	var adminSrv *http.Server
	if *adminAddr != "" {
		adminSrv = &http.Server{Addr: *adminAddr, Handler: adminMux()}
		go func() {
			fmt.Fprintf(os.Stderr, "factord: admin plane on %s (/debug/pprof/, /debug/vars)\n", *adminAddr)
			if err := adminSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				errCh <- err
			}
		}()
	}

	ctx, stop := cli.SignalContextFrom(context.Background(), 0)
	defer stop()
	select {
	case err := <-errCh:
		srv.Close()
		die(err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "factord: shutting down (drain %v)\n", *drain)
	shutdowns := []func(context.Context) error{
		srv.Shutdown,     // stop intake, drain the queue, interrupt leftovers
		httpSrv.Shutdown, // then close the listener and idle connections
	}
	if adminSrv != nil {
		shutdowns = append(shutdowns, adminSrv.Shutdown)
	}
	err = cli.RunShutdown(*drain, shutdowns...)
	if ferr := finishTel(); ferr != nil {
		cli.Warn("factord", ferr)
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Warn("factord", err)
	}
	fmt.Fprintln(os.Stderr, "factord: bye")
}

// adminMux assembles the private debug mux: the standard pprof
// handlers plus expvar, mirroring what net/http/pprof and expvar
// register on http.DefaultServeMux (which factord never serves).
func adminMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.Handle("/debug/vars", expvar.Handler())
	return mux
}
