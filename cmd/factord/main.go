// Command factord is the FACTOR job server: a long-running HTTP/JSON
// API that accepts Verilog design uploads and runs the full
// extract→synth→ATPG→fault-sim pipeline as queued jobs.
//
// Usage:
//
//	factord [-addr :8080] [-data dir] [-queue N] [-runners N]
//	        [-budget d] [-checkpoint-every N] [-drain d]
//	        [-sse-progress] [-trace out.json] [-progress auto|on|off]
//	        [-failpoints spec] [-cpuprofile f] [-memprofile f]
//
// API (see DESIGN.md §15 and the README "Serving" section):
//
//	POST   /api/v1/jobs                 submit a job (JSON JobRequest)
//	GET    /api/v1/jobs                 list jobs
//	GET    /api/v1/jobs/{id}            job status
//	DELETE /api/v1/jobs/{id}            cancel a job
//	GET    /api/v1/jobs/{id}/report     the canonical report bytes
//	GET    /api/v1/jobs/{id}/events     SSE progress stream
//	GET    /api/v1/designs/{hash}/report  content-addressed result fetch
//	GET    /api/v1/healthz, /api/v1/stats
//
// Results are persisted in a content-addressed store under -data and
// keyed by the structural design hash: resubmitting the same
// design/options is a cache hit served without re-running the
// pipeline, and the report bytes are byte-identical to what
// `factor -atpg ... -report` writes for the same spec. In-flight jobs
// journal ATPG checkpoints; on restart the server re-enqueues and
// resumes them, finishing bit-identical to an uninterrupted run.
//
// On SIGINT/SIGTERM the server stops accepting, drains the queue for
// -drain, then interrupts what is left (resumable on next start).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"factor/internal/cli"
	"factor/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "factord-data", "data directory (content-addressed store + job ledger)")
	queueCap := flag.Int("queue", 64, "job queue capacity (submissions beyond it get 429)")
	runners := flag.Int("runners", 2, "concurrent job runners")
	budget := flag.Duration("budget", 0, "soft per-job time budget (0 = none; budget-cut runs lose byte identity)")
	ckEvery := flag.Int("checkpoint-every", 64, "ATPG journal flush cadence (merged deterministic-phase faults)")
	drain := flag.Duration("drain", 30*time.Second, "graceful-shutdown drain deadline")
	sseProgress := flag.Bool("sse-progress", true, "stream progress events and heartbeats over SSE")
	rf := cli.RegisterRunFlags()
	flag.Parse()
	if flag.NArg() > 0 {
		cli.Usagef("factord", "unexpected argument %q", flag.Arg(0))
	}

	tel, finishTel, err := rf.Start("factord")
	if err != nil {
		cli.Fatal("factord", err)
	}

	srv, err := service.New(service.Config{
		DataDir:         *dataDir,
		QueueCap:        *queueCap,
		Runners:         *runners,
		JobBudget:       *budget,
		CheckpointEvery: *ckEvery,
		Progress:        *sseProgress,
		Tel:             tel,
	})
	if err != nil {
		cli.Fatal("factord", err)
	}
	srv.Start()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errCh := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "factord: serving on %s (data %s, %d runners, queue %d)\n",
			*addr, *dataDir, *runners, *queueCap)
		errCh <- httpSrv.ListenAndServe()
	}()

	ctx, stop := cli.SignalContextFrom(context.Background(), 0)
	defer stop()
	select {
	case err := <-errCh:
		srv.Close()
		cli.Fatal("factord", err)
	case <-ctx.Done():
	}
	stop()

	fmt.Fprintf(os.Stderr, "factord: shutting down (drain %v)\n", *drain)
	err = cli.RunShutdown(*drain,
		srv.Shutdown,     // stop intake, drain the queue, interrupt leftovers
		httpSrv.Shutdown, // then close the listener and idle connections
	)
	if ferr := finishTel(); ferr != nil {
		cli.Warn("factord", ferr)
	}
	if err != nil && !errors.Is(err, http.ErrServerClosed) {
		cli.Warn("factord", err)
	}
	fmt.Fprintln(os.Stderr, "factord: bye")
}
