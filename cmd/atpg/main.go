// Command atpg runs the sequential test generator on a Verilog module:
// random-phase fault simulation followed by PODEM with time-frame
// expansion, reporting fault coverage, ATPG efficiency and run time —
// the role the commercial ATPG tool plays in the FACTOR flow.
//
// Usage:
//
//	atpg [-design file.v] [-top module] [-budget 10s] [-frames N]
//	     [-guide default|scoap] [-scope prefix] [-j N] [-compact]
//	     [-dump file] [-v] [-timeout d] [-checkpoint file]
//	     [-checkpoint-every N] [-resume file] [-report file.json]
//	     [-stats] [-trace out.json] [-progress auto|on|off]
//	     [-cpuprofile f] [-memprofile f]
//
// Without -design the built-in ARM benchmark SoC is used (-top selects
// any of its modules; default is the full chip). -scope restricts the
// fault list to gates of one instance subtree (e.g. -scope u_core.u_alu).
// -j sets the worker count for the parallel random-phase fault
// simulation and deterministic PODEM searches (0 = all CPU cores);
// results are identical for every worker count.
//
// Interruption and resume: -timeout is a hard wall-clock deadline
// (unlike the soft -budget, which finishes the run and counts unreached
// faults as not attempted). On SIGINT or deadline expiry the workers
// drain, partial results are printed and dumped, and — when -checkpoint
// is set — a journal of detected faults and generated tests is flushed.
// A later run with -resume <journal> (same design, same options, any -j)
// continues from the journal and finishes bit-identical to an
// uninterrupted run. Exit codes: 0 success, 1 error, 2 usage, 3 partial
// (interrupted or quarantined faults).
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/cli"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "module to test (default: arm, the full chip)")
	width := flag.Int("width", 16, "datapath width parameter W (built-in design)")
	budget := flag.Duration("budget", 10*time.Second, "soft time budget (run completes, unreached faults -> not attempted)")
	frames := flag.Int("frames", 0, "time-frame budget (0 = derive from sequential depth)")
	backtracks := flag.Int("backtracks", 0, "PODEM backtrack limit (0 = default)")
	guideFlag := flag.String("guide", "default", "PODEM backtrace cost model: default or scoap")
	seed := flag.Int64("seed", 1, "random-phase seed")
	scope := flag.String("scope", "", "restrict faults to this instance subtree")
	verbose := flag.Bool("v", false, "list undetected faults")
	dump := flag.String("dump", "", "write the generated test sequences to this file")
	compact := flag.Bool("compact", false, "statically compact the test set (reverse-order fault simulation)")
	workers := flag.Int("j", 0, "worker goroutines for ATPG and fault simulation (0 = all CPU cores)")
	timeout := flag.Duration("timeout", 0, "hard wall-clock deadline; cancels the run, flushes partial results (0 = none)")
	checkpoint := flag.String("checkpoint", "", "journal progress to this file (flushed periodically and on interruption)")
	ckEvery := flag.Int("checkpoint-every", 256, "checkpoint after this many deterministic-phase faults")
	resume := flag.String("resume", "", "resume from a checkpoint journal written by -checkpoint")
	report := flag.String("report", "", "write a machine-readable run report (JSON) to this file")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	guide, err := atpg.ParseGuide(*guideFlag)
	if err != nil {
		cli.Usagef("atpg", "%v", err)
	}

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("atpg")
	if err != nil {
		cli.Fatal("atpg", err)
	}
	// An injected "cancel" action behaves like SIGINT: the run drains,
	// flushes its checkpoint and exits partial.
	failpoint.SetCanceler(stop)
	ctx = telemetry.NewContext(ctx, tel)

	// Load the journal before the (expensive) netlist build so a bad
	// -resume path fails fast. LoadLatest implements the recovery
	// policy: a torn or corrupt head journal falls back one generation
	// to the previous-good backup.
	var resumeCk *atpg.Checkpoint
	if *resume != "" {
		ck, fellBack, err := atpg.LoadLatest(*resume)
		if err != nil {
			cli.Fatal("atpg", err)
		}
		if fellBack {
			fmt.Fprintf(os.Stderr, "atpg: journal %s unreadable; recovered previous generation %d from %s%s\n",
				*resume, ck.Generation, *resume, atpg.BackupSuffix)
		}
		resumeCk = ck
	}

	nl, err := loadNetlist(ctx, *designFile, *top, *width)
	if err != nil {
		cli.Fatal("atpg", err)
	}
	stats := nl.ComputeStats()
	fmt.Printf("circuit %s: %d gates, %d DFFs, %d PIs, %d POs, seq depth %d\n",
		stats.Name, stats.Gates, stats.DFFs, stats.PIs, stats.POs, stats.SeqDeep)

	var faults []fault.Fault
	if *scope != "" {
		prefix := *scope + "."
		faults = fault.UniverseRestrictedTo(nl, func(g *netlist.Gate) bool {
			return strings.HasPrefix(g.Scope, prefix)
		})
	} else {
		faults = fault.Universe(nl)
	}
	fmt.Printf("targeting %d collapsed stuck-at faults\n", len(faults))

	fmt.Printf("workers: %d\n", fault.ResolveWorkers(*workers))

	opts := atpg.Options{
		Seed:           *seed,
		TimeBudget:     *budget,
		MaxFrames:      *frames,
		BacktrackLimit: *backtracks,
		Workers:        *workers,
		Guide:          guide,
	}
	if *checkpoint != "" {
		opts.Checkpoint = atpg.NewJournal(*checkpoint).Flush
		opts.CheckpointEvery = *ckEvery
	}
	opts.Resume = resumeCk

	eng := atpg.New(nl, opts)
	start := time.Now()
	res, runErr := eng.RunContext(ctx, faults)
	elapsed := time.Since(start)
	if err := finishTel(); err != nil {
		cli.Warn("atpg", err)
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}

	for _, e := range res.Errors {
		cli.Warn("atpg", e)
	}

	fmt.Printf("fault coverage:   %6.2f%% (%d/%d)\n", res.Coverage(), res.Result.NumDetected(), len(faults))
	fmt.Printf("ATPG efficiency:  %6.2f%%\n", res.Efficiency())
	fmt.Printf("random detected:  %d, deterministic: %d, untestable: %d, aborted: %d, not attempted: %d, quarantined: %d\n",
		res.DetectedRandom, res.DetectedDet, res.UntestableNum, res.AbortedNum, res.NotAttempted, res.QuarantinedNum)
	fmt.Printf("tests: %d sequences; time: random %v + deterministic %v = %v\n",
		len(res.Tests), res.RandomTime.Round(time.Millisecond),
		res.DetTime.Round(time.Millisecond), elapsed.Round(time.Millisecond))

	tests := res.Tests
	if *compact && runErr == nil {
		var cr atpg.CompactResult
		tests, cr = atpg.Compact(nl, faults, tests)
		fmt.Printf("compaction: %d -> %d sequences (%d -> %d cycles), coverage retained at %d faults\n",
			cr.Before, cr.After, cr.CyclesIn, cr.CyclesOut, cr.Coverage)
	} else if *compact {
		fmt.Fprintln(os.Stderr, "atpg: run interrupted, skipping compaction")
	}
	if *dump != "" && len(tests) > 0 {
		f, err := os.Create(*dump)
		if err != nil {
			cli.Fatal("atpg", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
		}
		header := fmt.Sprintf("circuit %s: %d sequences, %.2f%% fault coverage", stats.Name, len(tests), res.Coverage())
		if err := fault.WriteSequences(f, tests, header); err != nil {
			cli.Fatal("atpg", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
		}
		if err := f.Close(); err != nil {
			cli.Fatal("atpg", factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err))
		}
		fmt.Printf("wrote %d sequences to %s\n", len(tests), *dump)
	}

	if *verbose {
		for i, det := range res.Result.Detected {
			if !det {
				f := faults[i]
				g := nl.Gates[f.Gate]
				fmt.Printf("undetected: %v (%s %s%s)\n", f, g.Kind, g.Scope, g.Name)
			}
		}
	}

	// Exit-code shaping: an interruption (canceled/timeout) maps to the
	// partial exit on its own; a completed run with quarantined faults
	// is also partial — the coverage number is missing their searches.
	var exitErr error
	switch {
	case runErr != nil && len(res.Errors) > 0:
		exitErr = factorerr.Collect(append([]error{runErr}, res.Errors...))
	case runErr != nil:
		exitErr = runErr
	case len(res.Errors) > 0:
		pe := factorerr.New(factorerr.StageATPG, factorerr.CodePartial,
			"%d fault(s) quarantined after worker panics", res.QuarantinedNum)
		pe.Err = factorerr.Collect(res.Errors)
		exitErr = pe
	}

	if *report != "" {
		rep := cli.NewReport("atpg", exitErr)
		rep.AttachTelemetry(tel)
		rep.AttachDegraded(res.QuarantinedNum, 0)
		rep.ATPG = &cli.ATPGReport{
			TotalFaults:    len(faults),
			Detected:       res.Result.NumDetected(),
			DetectedRandom: res.DetectedRandom,
			DetectedDet:    res.DetectedDet,
			Untestable:     res.UntestableNum,
			Aborted:        res.AbortedNum,
			NotAttempted:   res.NotAttempted,
			Quarantined:    res.QuarantinedNum,
			Tests:          len(tests),
			Coverage:       res.Coverage(),
			Efficiency:     res.Efficiency(),
			Interrupted:    runErr != nil,
			Resumed:        *resume != "",
		}
		if err := rep.Write(*report); err != nil {
			cli.Fatal("atpg", err)
		}
	}

	if runErr != nil {
		fmt.Fprintf(os.Stderr, "atpg: %s\n", factorerr.FormatChain(runErr))
		if *checkpoint != "" {
			fmt.Fprintf(os.Stderr, "atpg: progress journaled to %s — continue with -resume %s\n", *checkpoint, *checkpoint)
		}
	}
	if exitErr != nil {
		os.Exit(factorerr.ExitCode(exitErr))
	}
}

func loadNetlist(ctx context.Context, file, top string, width int) (*netlist.Netlist, error) {
	var src *verilog.SourceFile
	var err error
	params := map[string]int64{}
	if file == "" {
		src, err = arm.ParseContext(ctx)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			top = arm.Top
		}
		if hasWidthParam(src, top) {
			params["W"] = int64(width)
		}
	} else {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeInput, err)
		}
		src, err = verilog.ParseContext(ctx, file, string(data))
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			if len(src.Modules) == 0 {
				return nil, factorerr.New(factorerr.StageParse, factorerr.CodeInput, "%s: no modules", file)
			}
			top = src.Modules[0].Name
		}
	}
	res, err := synth.SynthesizeContext(ctx, src, top, synth.Options{TopParams: params})
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageSynth, factorerr.CodeAnalysis, err)
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "atpg:", w)
	}
	return res.Netlist, nil
}

func hasWidthParam(src *verilog.SourceFile, top string) bool {
	m := src.Module(top)
	if m == nil {
		return false
	}
	for _, pd := range m.Params() {
		for _, n := range pd.Names {
			if n == "W" {
				return true
			}
		}
	}
	return false
}
