// Command atpg runs the sequential test generator on a Verilog module:
// random-phase fault simulation followed by PODEM with time-frame
// expansion, reporting fault coverage, ATPG efficiency and run time —
// the role the commercial ATPG tool plays in the FACTOR flow.
//
// Usage:
//
//	atpg [-design file.v] [-top module] [-budget 10s] [-frames N]
//	     [-scope prefix] [-j N] [-compact] [-dump file] [-v]
//
// Without -design the built-in ARM benchmark SoC is used (-top selects
// any of its modules; default is the full chip). -scope restricts the
// fault list to gates of one instance subtree (e.g. -scope u_core.u_alu).
// -j sets the worker count for the parallel random-phase fault
// simulation and deterministic PODEM searches (0 = all CPU cores);
// results are identical for every worker count.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/verilog"
)

func main() {
	designFile := flag.String("design", "", "Verilog design file (default: built-in ARM benchmark)")
	top := flag.String("top", "", "module to test (default: arm, the full chip)")
	width := flag.Int("width", 16, "datapath width parameter W (built-in design)")
	budget := flag.Duration("budget", 10*time.Second, "time budget")
	frames := flag.Int("frames", 0, "time-frame budget (0 = derive from sequential depth)")
	backtracks := flag.Int("backtracks", 0, "PODEM backtrack limit (0 = default)")
	seed := flag.Int64("seed", 1, "random-phase seed")
	scope := flag.String("scope", "", "restrict faults to this instance subtree")
	verbose := flag.Bool("v", false, "list undetected faults")
	dump := flag.String("dump", "", "write the generated test sequences to this file")
	compact := flag.Bool("compact", false, "statically compact the test set (reverse-order fault simulation)")
	workers := flag.Int("j", 0, "worker goroutines for ATPG and fault simulation (0 = all CPU cores)")
	flag.Parse()

	nl, err := loadNetlist(*designFile, *top, *width)
	if err != nil {
		fatal(err)
	}
	stats := nl.ComputeStats()
	fmt.Printf("circuit %s: %d gates, %d DFFs, %d PIs, %d POs, seq depth %d\n",
		stats.Name, stats.Gates, stats.DFFs, stats.PIs, stats.POs, stats.SeqDeep)

	var faults []fault.Fault
	if *scope != "" {
		prefix := *scope + "."
		faults = fault.UniverseRestrictedTo(nl, func(g *netlist.Gate) bool {
			return strings.HasPrefix(g.Scope, prefix)
		})
	} else {
		faults = fault.Universe(nl)
	}
	fmt.Printf("targeting %d collapsed stuck-at faults\n", len(faults))

	fmt.Printf("workers: %d\n", fault.ResolveWorkers(*workers))

	eng := atpg.New(nl, atpg.Options{
		Seed:           *seed,
		TimeBudget:     *budget,
		MaxFrames:      *frames,
		BacktrackLimit: *backtracks,
		Workers:        *workers,
	})
	start := time.Now()
	res := eng.Run(faults)
	elapsed := time.Since(start)

	fmt.Printf("fault coverage:   %6.2f%% (%d/%d)\n", res.Coverage(), res.Result.NumDetected(), len(faults))
	fmt.Printf("ATPG efficiency:  %6.2f%%\n", res.Efficiency())
	fmt.Printf("random detected:  %d, deterministic: %d, untestable: %d, aborted: %d, not attempted: %d\n",
		res.DetectedRandom, res.DetectedDet, res.UntestableNum, res.AbortedNum, res.NotAttempted)
	fmt.Printf("tests: %d sequences; time: random %v + deterministic %v = %v\n",
		len(res.Tests), res.RandomTime.Round(time.Millisecond),
		res.DetTime.Round(time.Millisecond), elapsed.Round(time.Millisecond))

	tests := res.Tests
	if *compact {
		var cr atpg.CompactResult
		tests, cr = atpg.Compact(nl, faults, tests)
		fmt.Printf("compaction: %d -> %d sequences (%d -> %d cycles), coverage retained at %d faults\n",
			cr.Before, cr.After, cr.CyclesIn, cr.CyclesOut, cr.Coverage)
	}
	if *dump != "" {
		f, err := os.Create(*dump)
		if err != nil {
			fatal(err)
		}
		header := fmt.Sprintf("circuit %s: %d sequences, %.2f%% fault coverage", stats.Name, len(tests), res.Coverage())
		if err := fault.WriteSequences(f, tests, header); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %d sequences to %s\n", len(tests), *dump)
	}

	if *verbose {
		for i, det := range res.Result.Detected {
			if !det {
				f := faults[i]
				g := nl.Gates[f.Gate]
				fmt.Printf("undetected: %v (%s %s%s)\n", f, g.Kind, g.Scope, g.Name)
			}
		}
	}
}

func loadNetlist(file, top string, width int) (*netlist.Netlist, error) {
	var src *verilog.SourceFile
	var err error
	params := map[string]int64{}
	if file == "" {
		src, err = arm.Parse()
		if err != nil {
			return nil, err
		}
		if top == "" {
			top = arm.Top
		}
		if hasWidthParam(src, top) {
			params["W"] = int64(width)
		}
	} else {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		src, err = verilog.Parse(file, string(data))
		if err != nil {
			return nil, err
		}
		if top == "" {
			if len(src.Modules) == 0 {
				return nil, fmt.Errorf("%s: no modules", file)
			}
			top = src.Modules[0].Name
		}
	}
	res, err := synth.Synthesize(src, top, synth.Options{TopParams: params})
	if err != nil {
		return nil, err
	}
	for _, w := range res.Warnings {
		fmt.Fprintln(os.Stderr, "atpg:", w)
	}
	return res.Netlist, nil
}

func hasWidthParam(src *verilog.SourceFile, top string) bool {
	m := src.Module(top)
	if m == nil {
		return false
	}
	for _, pd := range m.Params() {
		for _, n := range pd.Names {
			if n == "W" {
				return true
			}
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atpg:", err)
	os.Exit(1)
}
