// Command conformance runs the metamorphic conformance harness over a
// corpus of freshly generated hierarchical designs: each seed is
// expanded into a random Verilog design, pushed through the full
// FACTOR pipeline (parse -> analyze -> synthesize -> extract/transform
// -> ATPG -> dual-engine fault-sim replay), and checked against the
// five conformance invariants (RTL/netlist co-simulation, extraction
// soundness, detection replay with engine agreement, worker-count and
// checkpoint/resume determinism, and SCOAP-guided search soundness).
//
// Usage:
//
//	conformance [-n count] [-seed start] [-j N] [-shrink]
//	            [-shrink-budget N] [-repro-dir dir] [-timeout d] [-q]
//	            [-report file.json] [-stats] [-trace out.json]
//	            [-progress auto|on|off] [-cpuprofile f] [-memprofile f]
//
// Seeds [start, start+count) are checked and one summary line is
// printed per seed, in seed order, followed by a totals line. The
// report is deterministic: the same seed range always produces a
// byte-identical report, regardless of -j.
//
// With -shrink, every failing design is minimized (preserving its
// violation class) and the reproducer is written to -repro-dir as
// seed_<seed>.v; commit reproducers for fixed bugs so they become
// regression tests (internal/conformance reruns everything under its
// testdata/repro). Exit codes: 0 all seeds pass, 1 violations or
// error, 2 usage.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/cli"
	"factor/internal/conformance"
	"factor/internal/designgen"
	"factor/internal/failpoint"
)

func main() {
	n := flag.Int("n", 200, "number of seeds to check")
	seed := flag.Int64("seed", 1, "first generator seed; seeds [seed, seed+n) are checked")
	workers := flag.Int("j", 0, "worker goroutines (0 = all CPU cores); output order is unaffected")
	shrink := flag.Bool("shrink", false, "minimize failing designs and write reproducers to -repro-dir")
	shrinkBudget := flag.Int("shrink-budget", 4000, "max candidate evaluations per shrink")
	reproDir := flag.String("repro-dir", "internal/conformance/testdata/repro", "directory for shrunk reproducers")
	timeout := flag.Duration("timeout", 0, "wall-clock budget for the whole run (0 = none)")
	quiet := flag.Bool("q", false, "print only failing seeds and the totals line")
	report := flag.String("report", "", "write a machine-readable run report (JSON) to this file")
	statsFlag := flag.Bool("stats", false, "print the telemetry summary (spans + counters) to stderr")
	rf := cli.RegisterRunFlags()
	flag.Parse()

	if *n <= 0 {
		cli.Usagef("conformance", "-n must be positive (got %d)", *n)
	}
	if flag.NArg() > 0 {
		cli.Usagef("conformance", "unexpected argument %q", flag.Arg(0))
	}

	ctx, stop := cli.SignalContext(*timeout)
	defer stop()
	tel, finishTel, err := rf.Start("conformance")
	if err != nil {
		cli.Fatal("conformance", err)
	}
	failpoint.SetCanceler(stop)

	opts := conformance.DefaultOptions()
	reports := make([]*conformance.Report, *n)

	jobs := make(chan int)
	var wg sync.WaitGroup
	var done int64
	nw := *workers
	if nw <= 0 {
		nw = defaultWorkers()
	}
	if nw > *n {
		nw = *n
	}
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			for i := range jobs {
				sp := tel.StartSpan("check").WithTID(lane).WithArg("seed", fmt.Sprint(*seed+int64(i)))
				reports[i] = conformance.Check(*seed+int64(i), opts)
				sp.End()
				d := atomic.AddInt64(&done, 1)
				if tel.ProgressEnabled() {
					tel.Progressf("conformance: %d/%d seeds checked", d, *n)
				}
			}
		}(w + 1)
	}
feed:
	for i := 0; i < *n; i++ {
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		cli.Fatal("conformance", fmt.Errorf("interrupted: %w", err))
	}

	fail := 0
	for _, rep := range reports {
		if !rep.OK() {
			fail++
		}
		if !*quiet || !rep.OK() {
			fmt.Println(rep.Line())
		}
	}
	tel.AddCounter("conformance.seeds", uint64(*n))
	tel.AddCounter("conformance.pass", uint64(*n-fail))
	tel.AddCounter("conformance.fail", uint64(fail))
	if err := finishTel(); err != nil {
		cli.Warn("conformance", err)
	}
	if *statsFlag {
		fmt.Fprint(os.Stderr, tel.Summary())
	}
	fmt.Printf("conformance: n=%d pass=%d fail=%d\n", *n, *n-fail, fail)

	var exitErr error
	if fail > 0 {
		exitErr = fmt.Errorf("%d of %d seeds failed", fail, *n)
	}
	if *report != "" {
		rep := cli.NewReport("conformance", exitErr)
		rep.AttachTelemetry(tel)
		if err := rep.Write(*report); err != nil {
			cli.Fatal("conformance", err)
		}
	}

	if fail > 0 && *shrink {
		if err := writeReproducers(reports, opts, *shrinkBudget, *reproDir); err != nil {
			cli.Fatal("conformance", err)
		}
	}
	if fail > 0 {
		os.Exit(1)
	}
}

func defaultWorkers() int {
	if n := runtime.NumCPU(); n > 1 {
		return n
	}
	return 1
}

// writeReproducers minimizes each failing design (preserving the first
// violation's class) and writes the result under dir.
func writeReproducers(reports []*conformance.Report, opts conformance.Options, budget int, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, rep := range reports {
		if rep.OK() {
			continue
		}
		v := rep.Violations[0]
		text := designgen.Generate(rep.Seed, opts.Gen).Text()
		start := time.Now()
		small := conformance.ShrinkReport(text, rep.Seed, v, opts, budget)
		var b strings.Builder
		fmt.Fprintf(&b, "// Reproducer shrunk from designgen seed %d (%d -> %d lines).\n",
			rep.Seed, strings.Count(text, "\n"), strings.Count(small, "\n"))
		fmt.Fprintf(&b, "// Violation: %s\n", v)
		fmt.Fprintf(&b, "// Replay: go run ./cmd/conformance -seed %d -n 1\n", rep.Seed)
		b.WriteString(small)
		path := filepath.Join(dir, fmt.Sprintf("seed_%d.v", rep.Seed))
		if err := os.WriteFile(path, []byte(b.String()), 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "conformance: seed %d shrunk to %d lines in %v -> %s\n",
			rep.Seed, strings.Count(small, "\n"), time.Since(start).Round(time.Millisecond), path)
	}
	return nil
}
