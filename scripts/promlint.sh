#!/usr/bin/env bash
# promlint.sh — line-format lint for Prometheus text exposition 0.0.4.
#
# Usage: promlint.sh <exposition-file>
#
# Validates the subset of the format the factord /metrics endpoint
# emits, without needing promtool:
#   - every line is a comment (# HELP / # TYPE), blank, or a sample
#   - sample lines are  name{labels} value  or  name value
#   - metric names match [a-zA-Z_:][a-zA-Z0-9_:]*
#   - every sample's family has a preceding # TYPE line
#   - TYPE is one of counter/gauge/histogram
#   - histogram families expose _bucket/_sum/_count samples and an
#     le="+Inf" bucket per child
# Exits non-zero with a message on the first violation.
set -euo pipefail

file="${1:?usage: promlint.sh <exposition-file>}"

awk '
function fail(msg) { printf "promlint: line %d: %s: %s\n", NR, msg, $0; bad = 1; exit 1 }
# family(): strip histogram suffixes to the declared family name.
function family(name) {
    sub(/_bucket$/, "", name) || sub(/_sum$/, "", name) || sub(/_count$/, "", name)
    return name
}
/^$/ { next }
/^# HELP / { next }
/^# TYPE / {
    if (NF != 4) fail("malformed TYPE line")
    if ($4 != "counter" && $4 != "gauge" && $4 != "histogram") fail("unknown type \"" $4 "\"")
    type[$3] = $4
    next
}
/^#/ { fail("comment is neither HELP nor TYPE") }
{
    # Sample: name or name{labels}, one space, value.
    if (!match($0, /^[a-zA-Z_:][a-zA-Z0-9_:]*(\{[^}]*\})? -?[0-9]/)) fail("not a valid sample line")
    name = $0
    sub(/[{ ].*/, "", name)
    fam = name
    if (!(fam in type)) fam = family(name)
    if (!(fam in type)) fail("sample has no preceding # TYPE for its family")
    if (type[fam] == "histogram") {
        if (name == fam "_bucket") {
            if ($0 !~ /le="/) fail("histogram bucket without an le label")
            if ($0 ~ /le="\+Inf"/) inf[fam]++
            bucket[fam]++
        } else if (name == fam "_sum") { sum[fam]++ }
        else if (name == fam "_count") { cnt[fam]++ }
        else fail("histogram sample is not _bucket/_sum/_count")
    }
    samples++
    next
}
END {
    if (bad) exit 1
    for (f in type) {
        if (type[f] != "histogram") continue
        if (!bucket[f] && !sum[f] && !cnt[f]) continue  # declared but never observed: legal
        if (!inf[f]) { printf "promlint: histogram %s has no +Inf bucket\n", f; exit 1 }
        if (!sum[f] || !cnt[f]) { printf "promlint: histogram %s missing _sum or _count\n", f; exit 1 }
    }
    printf "promlint: ok (%d samples, %d families)\n", samples, length(type)
}
' "$file"
