package core

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

// TransformOptions configures transformed-module construction.
type TransformOptions struct {
	// TopParams forwards parameter overrides (e.g. the datapath width)
	// to synthesis of both the transformed module and the references.
	TopParams map[string]int64
	// EnablePIERs exposes Primary Input/output accessible Registers as
	// pseudo load/observe points (paper §2.1).
	EnablePIERs bool
	// PIERMaxDepth bounds how deep in the hierarchy PIERs are
	// identified (0 = unlimited). The conventional flow, which lacks
	// FACTOR's per-level analysis, only finds registers close to the
	// chip interface; the composed flow finds them at every level.
	PIERMaxDepth int
}

// Transformed is the ATPG view of one module under test: the MUT
// combined with its synthesized virtual environment (paper Fig. 1).
type Transformed struct {
	MUTPath   string
	MUTModule string
	Mode      Mode

	// Source is the emitted constraint Verilog; TopName its top module.
	Source  *verilog.SourceFile
	TopName string

	// Netlist is the synthesized transformed module (optimized).
	Netlist *netlist.Netlist

	// PIERs lists the pseudo-scanned flip-flops (gate IDs in Netlist),
	// empty unless EnablePIERs.
	PIERs []int

	// Gate accounting.
	MUTGates         int // gates attributed to the MUT instance
	EnvGates         int // gates in the surrounding virtual logic
	FullDesignGates  int // gates in the full synthesized design
	FullSurrounding  int // FullDesignGates - MUT gates in the full design
	GateReductionPct float64

	// Interface of the transformed module.
	PIs int
	POs int

	// Timing.
	ExtractTime time.Duration
	SynthTime   time.Duration

	// Extraction telemetry and diagnostics.
	WorkItems int
	Diags     []Diag
	Warnings  []synth.Warning
}

// Transform runs the full FACTOR flow for the MUT at mutPath: extract
// constraints (in the extractor's mode), emit them as Verilog,
// synthesize the transformed module, and gather the Table 2/3 metrics.
// The full-design synthesis used for the reduction baseline is supplied
// by the caller (it is MUT-independent and expensive, so it is computed
// once and shared).
func Transform(e *Extractor, mutPath string, full *netlist.Netlist, opts TransformOptions) (*Transformed, error) {
	return TransformContext(context.Background(), e, mutPath, full, opts)
}

// TransformContext is Transform under a context: the extraction
// traversal polls it (see ExtractContext), and it is checked again
// between the extract and synthesis steps.
func TransformContext(ctx context.Context, e *Extractor, mutPath string, full *netlist.Netlist, opts TransformOptions) (*Transformed, error) {
	tel := telemetry.FromContext(ctx)
	span := tel.StartSpan("extract").WithTID(telemetry.WorkerIDFromContext(ctx)).WithArg("mut", mutPath)
	start := time.Now()
	ex, err := e.ExtractContext(ctx, mutPath)
	if err != nil {
		span.End()
		return nil, err
	}
	src, topName, err := ex.Emit(e.D)
	span.End()
	if err != nil {
		return nil, err
	}
	extractTime := time.Since(start)
	tel.AddCounter("extract.work_items", uint64(ex.WorkItems))
	tel.AddCounter("extract.diags", uint64(len(ex.Diags)))

	if ctx != nil {
		if cerr := ctx.Err(); cerr != nil {
			return nil, factorerr.FromContext(factorerr.StageSynth, cerr)
		}
	}
	start = time.Now()
	res, err := synth.SynthesizeContext(ctx, src, topName, synth.Options{TopParams: opts.TopParams})
	if err != nil {
		return nil, fmt.Errorf("core: synthesizing transformed module for %s: %w", mutPath, err)
	}
	synthTime := time.Since(start)

	t := &Transformed{
		MUTPath:     mutPath,
		MUTModule:   ex.MUTModule,
		Mode:        e.Mode,
		Source:      src,
		TopName:     topName,
		Netlist:     res.Netlist,
		ExtractTime: extractTime,
		SynthTime:   synthTime,
		WorkItems:   ex.WorkItems,
		Diags:       ex.Diags,
		Warnings:    res.Warnings,
	}

	if opts.EnablePIERs {
		piers := IdentifyPIERs(t.Netlist, opts.PIERMaxDepth)
		t.Netlist = PIERify(t.Netlist, piers)
		t.PIERs = piers
		tel.AddCounter("extract.piers", uint64(len(piers)))
	}

	prefix := mutPath + "."
	t.MUTGates, t.EnvGates = splitGates(t.Netlist, prefix)
	t.PIs = len(t.Netlist.PIs)
	t.POs = len(t.Netlist.POs)

	if full != nil {
		fullMUT, fullEnv := splitGates(full, prefix)
		t.FullDesignGates = fullMUT + fullEnv
		t.FullSurrounding = fullEnv
		if fullEnv > 0 {
			t.GateReductionPct = 100 * float64(fullEnv-t.EnvGates) / float64(fullEnv)
		}
	}
	return t, nil
}

// transformPanicHook, when non-nil, runs at the top of every pooled
// transform — the test-only injection point for the worker
// panic-isolation boundary.
var transformPanicHook func(mutPath string)

// safeTransform runs one MUT's transform behind the worker pool's
// panic-isolation boundary.
func safeTransform(ctx context.Context, e *Extractor, mutPath string, full *netlist.Netlist, opts TransformOptions) (t *Transformed, err error) {
	defer func() {
		if r := recover(); r != nil {
			t = nil
			err = factorerr.FromPanic(factorerr.StageSynth, r).WithMUT(mutPath)
		}
	}()
	if transformPanicHook != nil {
		transformPanicHook(mutPath)
	}
	// Failpoint core.transform.mut: same keying discipline as
	// core.extract.mut.
	if ferr := failpoint.HitKey("core.transform.mut", failpoint.StringKey(mutPath)); ferr != nil {
		return nil, factorerr.Wrap(factorerr.StageSynth, factorerr.CodePanic, ferr).WithMUT(mutPath)
	}
	return TransformContext(ctx, e, mutPath, full, opts)
}

// TransformAll runs Transform for several MUTs concurrently over the
// given number of workers (<= 0 selects runtime.NumCPU()). Results are
// returned in input order. The extractor's single-flight chain cache is
// shared across workers, so intermediate modules common to several MUTs
// are extracted once. The parsed design AST is read-only after
// analysis, and each Transform synthesizes its own emitted source, so
// workers share no mutable synthesis state.
//
// Degradation policy: as ExtractAll — one failing or panicking MUT is
// quarantined (nil entry, structured error tagged with the MUT path)
// while its siblings complete; the aggregate error carries CodePartial
// when at least one MUT succeeded.
func TransformAll(ctx context.Context, e *Extractor, mutPaths []string, full *netlist.Netlist, opts TransformOptions, workers int) ([]*Transformed, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(mutPaths) {
		workers = len(mutPaths)
	}
	out := make([]*Transformed, len(mutPaths))
	errs := make([]error, len(mutPaths))
	tel := telemetry.FromContext(ctx)
	// Cache effectiveness is an extractor-lifetime quantity, published as
	// the delta this batch contributed. Both components are deterministic
	// for any worker count: misses equal the number of distinct chain
	// steps (each inserted exactly once regardless of which worker gets
	// there first) and hits equal total lookups minus that.
	hits0, misses0 := e.CacheHits, e.CacheMisses
	var next, done int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(lane int) {
			defer wg.Done()
			wctx := telemetry.WithWorkerID(ctx, lane)
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(mutPaths) {
					return
				}
				if cerr := ctx.Err(); cerr != nil {
					errs[i] = factorerr.FromContext(factorerr.StageSynth, cerr).WithMUT(mutPaths[i])
					continue
				}
				t, err := safeTransform(wctx, e, mutPaths[i], full, opts)
				out[i], errs[i] = t, wrapMUT(err, factorerr.StageSynth, mutPaths[i])
				n := atomic.AddInt64(&done, 1)
				if tel.ProgressEnabled() {
					tel.Progressf("transform: %d/%d modules done (last: %s)", n, len(mutPaths), mutPaths[i])
				}
			}
		}(w + 1)
	}
	wg.Wait()
	tel.AddCounter("extract.cache_hits", uint64(e.CacheHits-hits0))
	tel.AddCounter("extract.cache_misses", uint64(e.CacheMisses-misses0))
	return out, collectMUT(factorerr.StageSynth, errs, len(mutPaths))
}

// splitGates counts gates inside vs outside a hierarchical scope
// prefix. Inputs and constants are not counted (matching
// Netlist.NumGates).
func splitGates(n *netlist.Netlist, prefix string) (in, out int) {
	for _, g := range n.Gates {
		switch g.Kind {
		case netlist.Input, netlist.Const0, netlist.Const1:
			continue
		}
		if strings.HasPrefix(g.Scope, prefix) {
			in++
		} else {
			out++
		}
	}
	return in, out
}

// MUTFaultFilter returns a predicate selecting gates that belong to the
// module under test within the transformed netlist — the fault target
// set handed to the ATPG tool.
func (t *Transformed) MUTFaultFilter() func(g *netlist.Gate) bool {
	prefix := t.MUTPath + "."
	return func(g *netlist.Gate) bool {
		return strings.HasPrefix(g.Scope, prefix)
	}
}

// IdentifyPIERs finds Primary Input/output accessible Registers: flip-
// flops whose D input is reachable combinationally from a *data-bus*
// primary input (loadable, e.g. through a load instruction's data
// path) and whose output reaches a primary output combinationally
// (observable, e.g. through a store path). These are the registers the
// paper exposes to cut sequential depth during test generation.
//
// Loadability deliberately requires a bus bit (a PI named "name[i]"):
// scalar control pins such as reset or interrupt lines reach almost
// every flop's D logic but cannot carry load data, and treating them as
// load paths would misclassify, for example, the program counter.
//
// maxDepth bounds the hierarchy depth of candidate registers (0 =
// unlimited): the conventional flow's chip-level view only recognizes
// registers near the interface, while FACTOR's per-level analysis
// identifies them at any depth.
func IdentifyPIERs(n *netlist.Netlist, maxDepth int) []int {
	if len(n.DFFs) == 0 {
		return nil
	}
	busPI := make(map[int]bool)
	for i, pi := range n.PIs {
		if strings.Contains(n.PINames[i], "[") {
			busPI[pi] = true
		}
	}
	loadable := func(dff int) bool {
		seen := make(map[int]bool)
		stack := []int{n.Gates[dff].Fanin[0]}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] {
				continue
			}
			seen[id] = true
			g := n.Gates[id]
			if g.Kind == netlist.Input {
				if busPI[id] {
					return true
				}
				continue
			}
			if !g.Kind.Combinational() {
				continue // stop at flops/constants
			}
			stack = append(stack, g.Fanin...)
		}
		return false
	}
	// Forward reachability from Q to POs through combinational logic.
	fanouts := n.Fanouts()
	poSet := map[int]bool{}
	for _, po := range n.POs {
		poSet[po] = true
	}
	observable := func(dff int) bool {
		seen := map[int]bool{}
		stack := []int{dff}
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			if seen[id] {
				continue
			}
			seen[id] = true
			if poSet[id] {
				return true
			}
			for _, fo := range fanouts[id] {
				if n.Gates[fo].Kind.Combinational() {
					stack = append(stack, fo)
				}
			}
		}
		return false
	}
	var piers []int
	for _, dff := range n.DFFs {
		if maxDepth > 0 && scopeDepth(n.Gates[dff].Scope) > maxDepth {
			continue
		}
		if loadable(dff) && observable(dff) {
			piers = append(piers, dff)
		}
	}
	return piers
}

// scopeDepth counts hierarchy levels in a gate scope prefix
// ("u_core.u_regbank.u_rf." has depth 3; "" is the top, depth 0).
func scopeDepth(scope string) int {
	return strings.Count(scope, ".")
}

// PIERify returns a copy of the netlist where each listed flip-flop
// gains a load path and an observation point, modeling chip-level
// load/store access: D' = pier_load ? pier_in_<k> : D, and Q is
// exported as a pseudo-PO. The flip-flop and its faults remain in the
// circuit; sequential depth collapses because its state is justified in
// one cycle. A single shared pier_load control plus one data input per
// register are added, exactly the access discipline a load instruction
// provides.
func PIERify(n *netlist.Netlist, piers []int) *netlist.Netlist {
	if len(piers) == 0 {
		return n
	}
	c := n.Clone()
	loadPI := c.AddInput("pier_load")
	for k, dff := range piers {
		din := c.AddInput(fmt.Sprintf("pier_in_%d", k))
		d := c.Gates[dff].Fanin[0]
		mux := c.AddGate(netlist.Mux, loadPI, d, din)
		// The load mux is DfT logic, not part of any design module:
		// leave its scope empty so it never enters a MUT fault list.
		c.SetFanin(dff, 0, mux)
		c.AddOutput(fmt.Sprintf("pier_out_%d", k), dff)
	}
	return c
}
