package core

import (
	"strings"
	"testing"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// smallSrc is a compact hierarchical design with a clearly separable
// MUT (leaf) plus logic that is relevant and logic that is not.
const smallSrc = `
module top(input clk, input [3:0] a, b, input sel, unrelated,
           output [3:0] y, output unrelated_out);
  wire [3:0] mid, junk;
  mid u_mid (.clk(clk), .in(a), .other(b), .sel(sel), .out(mid));
  assign y = mid;
  assign junk = {4{unrelated}};
  assign unrelated_out = &junk;
endmodule

module mid(input clk, input [3:0] in, other, input sel, output [3:0] out);
  wire [3:0] t;
  reg [3:0] held;
  leaf u_leaf (.a(t), .y(out));
  assign t = sel ? in : held;
  always @(posedge clk) begin
    held <= other;
  end
endmodule

module leaf(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule
`

func analyzeSmall(t *testing.T) *design.Design {
	t.Helper()
	sf, err := verilog.Parse("small.v", smallSrc)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, "top")
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestExtractReachesChipInterface(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	ex, err := e.Extract("u_mid.u_leaf")
	if err != nil {
		t.Fatal(err)
	}
	for _, pi := range []string{"a", "b", "sel", "clk"} {
		if !ex.ChipPIs[pi] {
			t.Errorf("chip PI %s not reached; got %v", pi, ex.ChipPIs)
		}
	}
	if ex.ChipPIs["unrelated"] {
		t.Error("unrelated input pulled into constraints")
	}
	if !ex.ChipPOs["y"] {
		t.Errorf("chip PO y not reached; got %v", ex.ChipPOs)
	}
	if ex.ChipPOs["unrelated_out"] {
		t.Error("unrelated output pulled into constraints")
	}
}

func TestEmitSynthesizesAndBehaves(t *testing.T) {
	d := analyzeSmall(t)
	for _, mode := range []Mode{ModeFlat, ModeComposed} {
		e := NewExtractor(d, mode)
		ex, err := e.Extract("u_mid.u_leaf")
		if err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		src, topName, err := ex.Emit(d)
		if err != nil {
			t.Fatalf("%v: emit: %v", mode, err)
		}
		// The emitted source must re-parse (printer round trip).
		printed := verilog.PrintFile(src)
		if _, err := verilog.Parse("xf.v", printed); err != nil {
			t.Fatalf("%v: emitted source does not re-parse: %v\n%s", mode, err, printed)
		}
		res, err := synth.Synthesize(src, topName, synth.Options{})
		if err != nil {
			t.Fatalf("%v: transformed module does not synthesize: %v\n%s", mode, err, printed)
		}
		// Behavior: y = (sel ? a : held) + 1, held <= b.
		s := sim.New(res.Netlist)
		set := func(name string, v uint64, w int) {
			for i := 0; i < w; i++ {
				pi := res.Netlist.PI(name + "[" + string(rune('0'+i)) + "]")
				if pi < 0 && w == 1 {
					pi = res.Netlist.PI(name)
				}
				if pi < 0 {
					t.Fatalf("%v: transformed module lacks PI %s bit %d (PIs: %v)", mode, name, i, res.Netlist.PINames)
				}
				s.SetInputScalar(pi, sim.Logic((v>>uint(i))&1))
			}
		}
		get := func(name string, w int) (uint64, bool) {
			var out uint64
			for i := 0; i < w; i++ {
				po := res.Netlist.PO(name + "[" + string(rune('0'+i)) + "]")
				if po < 0 && w == 1 {
					po = res.Netlist.PO(name)
				}
				v := s.Value(po).Lane(0)
				if v == sim.LX {
					return 0, false
				}
				out |= uint64(v) << uint(i)
			}
			return out, true
		}
		set("a", 5, 4)
		set("b", 9, 4)
		set("sel", 1, 1)
		s.Eval()
		if y, ok := get("y", 4); !ok || y != 6 {
			t.Errorf("%v: sel=1 a=5: y=%d (ok=%v), want 6", mode, y, ok)
		}
		// Clock b into held, then select it.
		s.Step()
		set("sel", 0, 1)
		s.Eval()
		if y, ok := get("y", 4); !ok || y != 10 {
			t.Errorf("%v: sel=0 held=9: y=%d (ok=%v), want 10", mode, y, ok)
		}
	}
}

func TestFlatKeepsWholeBlocksComposedSlices(t *testing.T) {
	src := `
module top(input clk, input [3:0] a, output [3:0] y, output [3:0] z);
  wire [3:0] inner;
  sub u_sub (.a(inner), .y(y));
  mixer u_mix (.clk(clk), .a(a), .relevant(inner), .irrelevant(z));
endmodule
module mixer(input clk, input [3:0] a, output reg [3:0] relevant, output reg [3:0] irrelevant);
  always @(posedge clk) begin
    relevant <= a + 4'd1;
    irrelevant <= a - 4'd1;
  end
endmodule
module sub(input [3:0] a, output [3:0] y);
  assign y = ~a;
endmodule`
	sf, err := verilog.Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, "top")
	if err != nil {
		t.Fatal(err)
	}

	gateCount := func(mode Mode) int {
		e := NewExtractor(d, mode)
		ex, err := e.Extract("u_sub")
		if err != nil {
			t.Fatal(err)
		}
		src, top, err := ex.Emit(d)
		if err != nil {
			t.Fatal(err)
		}
		res, err := synth.Synthesize(src, top, synth.Options{})
		if err != nil {
			t.Fatalf("%v: %v\n%s", mode, err, verilog.PrintFile(src))
		}
		return res.Netlist.NumGates()
	}
	flat := gateCount(ModeFlat)
	composed := gateCount(ModeComposed)
	if composed >= flat {
		t.Errorf("composed env (%d gates) not smaller than flat (%d): whole-block retention should cost gates", composed, flat)
	}
}

func TestComposedCacheReuse(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	if _, err := e.Extract("u_mid.u_leaf"); err != nil {
		t.Fatal(err)
	}
	missesAfterFirst := e.CacheMisses
	if _, err := e.Extract("u_mid.u_leaf"); err != nil {
		t.Fatal(err)
	}
	if e.CacheMisses != missesAfterFirst {
		t.Errorf("second extraction recomputed steps: misses %d -> %d", missesAfterFirst, e.CacheMisses)
	}
	if e.CacheHits == 0 {
		t.Error("no cache hits on repeated extraction")
	}
	// Flat mode never caches.
	ef := NewExtractor(d, ModeFlat)
	if _, err := ef.Extract("u_mid.u_leaf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ef.Extract("u_mid.u_leaf"); err != nil {
		t.Fatal(err)
	}
	if ef.CacheHits != 0 {
		t.Error("flat mode used the cache")
	}
}

func TestEmptyChainDiagnostics(t *testing.T) {
	src := `
module top(input a, output y);
  wire floating;
  sub u_sub (.p(floating), .y(y));
  assign ignored = a;
  wire ignored;
endmodule
module sub(input p, output y);
  assign y = ~p;
endmodule`
	sf, err := verilog.Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, "top")
	if err != nil {
		t.Fatal(err)
	}
	e := NewExtractor(d, ModeComposed)
	ex, err := e.Extract("u_sub")
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, dg := range ex.Diags {
		if dg.Signal == "floating" && dg.Dir == dirSource {
			found = true
			if len(dg.Trace) == 0 {
				t.Error("diagnostic has no trace")
			}
		}
	}
	if !found {
		t.Errorf("floating net not diagnosed: %v", ex.Diags)
	}
}

// --- ARM integration ---

func armDesign(t *testing.T) *design.Design {
	t.Helper()
	sf, err := arm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, arm.Top)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestTransformARMModules(t *testing.T) {
	d := armDesign(t)
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"W": 16}
	for _, mode := range []Mode{ModeFlat, ModeComposed} {
		e := NewExtractor(d, mode)
		for _, mut := range arm.MUTs() {
			tr, err := Transform(e, mut.Path, full.Netlist, TransformOptions{TopParams: params})
			if err != nil {
				t.Errorf("%v/%s: %v", mode, mut.Module, err)
				continue
			}
			if tr.MUTGates == 0 {
				t.Errorf("%v/%s: no gates attributed to the MUT", mode, mut.Module)
			}
			if tr.EnvGates <= 0 {
				t.Errorf("%v/%s: empty environment", mode, mut.Module)
			}
			if tr.GateReductionPct <= 0 {
				t.Errorf("%v/%s: no gate reduction (env %d vs full %d)",
					mode, mut.Module, tr.EnvGates, tr.FullSurrounding)
			}
			t.Logf("%v/%s: MUT %d gates, env %d gates (full surrounding %d, reduction %.1f%%), PIs %d POs %d",
				mode, mut.Module, tr.MUTGates, tr.EnvGates, tr.FullSurrounding, tr.GateReductionPct, tr.PIs, tr.POs)
		}
	}
}

func TestComposedEnvNotLargerThanFlatOnARM(t *testing.T) {
	d := armDesign(t)
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"W": 16}
	for _, mut := range arm.MUTs() {
		ef := NewExtractor(d, ModeFlat)
		ec := NewExtractor(d, ModeComposed)
		trF, err := Transform(ef, mut.Path, full.Netlist, TransformOptions{TopParams: params})
		if err != nil {
			t.Fatal(err)
		}
		trC, err := Transform(ec, mut.Path, full.Netlist, TransformOptions{TopParams: params})
		if err != nil {
			t.Fatal(err)
		}
		if trC.EnvGates > trF.EnvGates {
			t.Errorf("%s: composed env %d gates > flat env %d gates", mut.Module, trC.EnvGates, trF.EnvGates)
		}
	}
}

func TestTestabilityFlagsALUControls(t *testing.T) {
	d := armDesign(t)
	rep, err := AnalyzeTestability(d, "u_core.u_alu", nil)
	if err != nil {
		t.Fatal(err)
	}
	decoded := rep.Decoded()
	if len(decoded) != 10 {
		var got []string
		for _, c := range decoded {
			got = append(got, c.Port)
		}
		t.Fatalf("flagged %d decoded controls %v, want 10 (the alu_op decodes)", len(decoded), got)
	}
	for _, c := range decoded {
		if len(c.ControllingSignals) != 1 || c.ControllingSignals[0] != "aluop" {
			t.Errorf("control %s: controlling signals %v, want [aluop]", c.Port, c.ControllingSignals)
		}
		if !strings.HasPrefix(c.Port, "op_") {
			t.Errorf("unexpected constrained port %s", c.Port)
		}
	}
	tied := rep.ConstantTied()
	if len(tied) != 1 || tied[0].Port != "pass_zero" {
		t.Errorf("constant-tied controls = %v, want [pass_zero]", tied)
	}
	if rep.InputPorts != 15 { // a, b, 13 controls
		t.Errorf("input ports examined = %d, want 15", rep.InputPorts)
	}
	if !strings.Contains(rep.Summary(), "10 of 15") {
		t.Errorf("summary: %s", rep.Summary())
	}
}

func TestPIERIdentificationOnARM(t *testing.T) {
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	piers := IdentifyPIERs(full.Netlist, 0)
	if len(piers) == 0 {
		t.Fatal("no PIERs identified on the processor")
	}
	regfilePiers := 0
	for _, p := range piers {
		if strings.HasPrefix(full.Netlist.Gates[p].Scope, "u_core.u_regbank.u_rf.") {
			regfilePiers++
		}
	}
	// All 16 x 16 register file bits are load/store reachable.
	if regfilePiers != 256 {
		t.Errorf("regfile PIER bits = %d, want 256", regfilePiers)
	}
	// The PC must not be a PIER (no combinational path from the pins).
	for _, p := range piers {
		if strings.Contains(full.Netlist.Gates[p].Name, "pc_r") {
			t.Errorf("PC flagged as PIER: %s", full.Netlist.Gates[p].Name)
		}
	}
}

func TestPIERifyAddsAccessPoints(t *testing.T) {
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	piers := IdentifyPIERs(full.Netlist, 0)
	mod := PIERify(full.Netlist, piers)
	if err := mod.Validate(); err != nil {
		t.Fatal(err)
	}
	// One shared load control + one data PI and one observe PO per PIER.
	if len(mod.PIs) != len(full.Netlist.PIs)+1+len(piers) {
		t.Errorf("PIs = %d, want %d", len(mod.PIs), len(full.Netlist.PIs)+1+len(piers))
	}
	if len(mod.POs) != len(full.Netlist.POs)+len(piers) {
		t.Errorf("POs = %d, want %d", len(mod.POs), len(full.Netlist.POs)+len(piers))
	}
}

func TestPIERifyMakesUnknownStateTestable(t *testing.T) {
	// A toggle flop with unknown power-up state: q/sa1 is undetectable
	// (the good machine never leaves X), but with the flop exposed as a
	// PIER the state becomes justifiable and the fault detectable.
	n := netlist.New("tff")
	en := n.AddInput("en")
	q := n.AddGate(netlist.DFF, en)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)

	f := fault.Fault{Site: fault.Site{Gate: q, Pin: -1}, SAOne: true}
	engBefore := atpg.New(n, atpg.Options{DisableRandomPhase: true})
	resBefore := engBefore.Run([]fault.Fault{f})
	if resBefore.Coverage() != 0 {
		t.Fatalf("q/sa1 unexpectedly detectable without PIER access")
	}

	mod := PIERify(n, []int{q})
	// The fault site keeps its gate ID (Clone preserves IDs).
	engAfter := atpg.New(mod, atpg.Options{DisableRandomPhase: true})
	resAfter := engAfter.Run([]fault.Fault{f})
	if resAfter.Coverage() != 100 {
		t.Errorf("q/sa1 still undetected with PIER access (coverage %.0f%%, untestable %d, aborted %d)",
			resAfter.Coverage(), resAfter.UntestableNum, resAfter.AbortedNum)
	}
}

func TestMUTFaultFilter(t *testing.T) {
	d := armDesign(t)
	e := NewExtractor(d, ModeComposed)
	tr, err := Transform(e, "u_core.u_alu", nil, TransformOptions{TopParams: map[string]int64{"W": 16}})
	if err != nil {
		t.Fatal(err)
	}
	filter := tr.MUTFaultFilter()
	inMUT := 0
	for _, g := range tr.Netlist.Gates {
		if filter(g) {
			inMUT++
		}
	}
	if inMUT == 0 {
		t.Error("fault filter selects nothing")
	}
	if inMUT != tr.MUTGates {
		t.Errorf("filter selects %d gates, MUTGates reports %d", inMUT, tr.MUTGates)
	}
}

func TestExtractErrors(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	if _, err := e.Extract("nope.nothere"); err == nil {
		t.Error("expected error for unknown path")
	}
	if _, err := e.Extract(""); err == nil {
		t.Error("expected error for top-as-MUT")
	}
}

func TestModeString(t *testing.T) {
	if ModeFlat.String() != "flat" || ModeComposed.String() != "composed" {
		t.Error("Mode.String broken")
	}
}
