package core

import (
	"context"
	"reflect"
	"sort"
	"sync"
	"testing"

	"factor/internal/telemetry"
)

// extractionFingerprint reduces an Extraction to comparable facts.
type extractionFingerprint struct {
	Paths     []string
	ChipPIs   []string
	ChipPOs   []string
	WorkItems int
	Diags     int
}

func fingerprint(ex *Extraction) extractionFingerprint {
	fp := extractionFingerprint{
		Paths:     ex.Paths(),
		WorkItems: ex.WorkItems,
		Diags:     len(ex.Diags),
	}
	for pi := range ex.ChipPIs {
		fp.ChipPIs = append(fp.ChipPIs, pi)
	}
	for po := range ex.ChipPOs {
		fp.ChipPOs = append(fp.ChipPOs, po)
	}
	sort.Strings(fp.ChipPIs)
	sort.Strings(fp.ChipPOs)
	return fp
}

// TestExtractAllMatchesSerial runs the same MUT list serially and via
// ExtractAll with 8 workers and compares each extraction plus the
// shared cache statistics, which must not depend on scheduling.
func TestExtractAllMatchesSerial(t *testing.T) {
	d := analyzeSmall(t)
	muts := []string{"u_mid.u_leaf", "u_mid", "u_mid.u_leaf", "u_mid"}

	serialExt := NewExtractor(d, ModeComposed)
	var want []extractionFingerprint
	for _, m := range muts {
		ex, err := serialExt.Extract(m)
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fingerprint(ex))
	}

	parExt := NewExtractor(analyzeSmall(t), ModeComposed)
	exs, err := parExt.ExtractAll(context.Background(), muts, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, ex := range exs {
		if got := fingerprint(ex); !reflect.DeepEqual(got, want[i]) {
			t.Errorf("MUT %q: extraction diverges under ExtractAll:\ngot  %+v\nwant %+v", muts[i], got, want[i])
		}
	}
	if parExt.Steps != serialExt.Steps {
		t.Errorf("Steps: parallel %d vs serial %d", parExt.Steps, serialExt.Steps)
	}
	if parExt.CacheMisses != serialExt.CacheMisses {
		t.Errorf("CacheMisses: parallel %d vs serial %d (misses = distinct views, must not depend on scheduling)",
			parExt.CacheMisses, serialExt.CacheMisses)
	}
	if parExt.CacheHits != serialExt.CacheHits {
		t.Errorf("CacheHits: parallel %d vs serial %d", parExt.CacheHits, serialExt.CacheHits)
	}
}

// TestExtractAllError: a bad MUT path fails, is tagged, and does not
// take its healthy sibling down with it (the degradation policy).
func TestExtractAllError(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	exs, err := e.ExtractAll(context.Background(), []string{"u_mid", "no.such.path"}, 4)
	if err == nil {
		t.Fatal("expected error for unknown MUT path")
	}
	if exs[0] == nil || exs[1] != nil {
		t.Fatalf("degradation: results = [%v, %v], want [ok, nil]", exs[0] != nil, exs[1] != nil)
	}
}

// TestConstraintCacheHammer hits the single-flight cache from many
// goroutines at once (run under -race in CI): every goroutine extracts
// MUTs that share intermediate modules, so the same (module, signal,
// direction) views race constantly.
func TestConstraintCacheHammer(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 4; iter++ {
				mut := "u_mid.u_leaf"
				if (g+iter)%2 == 1 {
					mut = "u_mid"
				}
				if _, err := e.Extract(mut); err != nil {
					errs[g] = err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Misses must equal the number of distinct views even after the
	// stampede: compare against a fresh serial extractor.
	ref := NewExtractor(analyzeSmall(t), ModeComposed)
	if _, err := ref.Extract("u_mid.u_leaf"); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Extract("u_mid"); err != nil {
		t.Fatal(err)
	}
	if e.CacheMisses != ref.CacheMisses {
		t.Errorf("hammered CacheMisses = %d, want %d (distinct views only)", e.CacheMisses, ref.CacheMisses)
	}
}

// TestTransformAllMatchesSerial compares full Transform outputs (the
// synthesized netlist sizes and interfaces) between serial and
// concurrent runs.
func TestTransformAllMatchesSerial(t *testing.T) {
	d := analyzeSmall(t)
	muts := []string{"u_mid.u_leaf", "u_mid"}

	serialExt := NewExtractor(d, ModeComposed)
	type fp struct{ gates, pis, pos, work int }
	var want []fp
	for _, m := range muts {
		tr, err := Transform(serialExt, m, nil, TransformOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, fp{tr.Netlist.NumGates(), tr.PIs, tr.POs, tr.WorkItems})
	}

	parExt := NewExtractor(analyzeSmall(t), ModeComposed)
	trs, err := TransformAll(context.Background(), parExt, muts, nil, TransformOptions{}, 8)
	if err != nil {
		t.Fatal(err)
	}
	for i, tr := range trs {
		got := fp{tr.Netlist.NumGates(), tr.PIs, tr.POs, tr.WorkItems}
		if got != want[i] {
			t.Errorf("MUT %q: transform diverges: got %+v want %+v", muts[i], got, want[i])
		}
	}
}

// TestTransformAllTelemetryWorkerInvariance: the deterministic extract
// and synth counters published during TransformAll are bit-identical
// for any worker count, including the cache hit/miss split (misses are
// the distinct-chain-step count, independent of which worker computes
// a step first).
func TestTransformAllTelemetryWorkerInvariance(t *testing.T) {
	muts := []string{"u_mid.u_leaf", "u_mid", "u_mid.u_leaf", "u_mid"}
	counters := func(workers int) map[string]uint64 {
		tel := telemetry.New()
		ctx := telemetry.NewContext(context.Background(), tel)
		e := NewExtractor(analyzeSmall(t), ModeComposed)
		if _, err := TransformAll(ctx, e, muts, nil, TransformOptions{EnablePIERs: true}, workers); err != nil {
			t.Fatal(err)
		}
		return tel.Counters()
	}
	want := counters(1)
	if want["extract.work_items"] == 0 || want["synth.gates_after"] == 0 {
		t.Fatalf("counters not populated: %v", want)
	}
	if want["extract.cache_hits"]+want["extract.cache_misses"] == 0 {
		t.Fatalf("cache counters not populated: %v", want)
	}
	for _, w := range []int{2, 8} {
		if got := counters(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: counters diverge:\n got %v\nwant %v", w, got, want)
		}
	}
}
