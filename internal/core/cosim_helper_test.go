package core

import (
	"fmt"
	"math/rand"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// coSimulate drives the full design and a transformed module with
// identical stimulus on the shared inputs and verifies every output
// the transformed module exposes matches the full design cycle by
// cycle (including X).
func coSimulate(full, tr *netlist.Netlist, cycles int, seed int64) error {
	for _, name := range tr.PINames {
		if full.PI(name) < 0 {
			return fmt.Errorf("transformed PI %q is not a chip pin", name)
		}
	}
	for _, name := range tr.PONames {
		if full.PO(name) < 0 {
			return fmt.Errorf("transformed PO %q is not a chip pin", name)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	sFull := sim.New(full)
	sTr := sim.New(tr)
	for cycle := 0; cycle < cycles; cycle++ {
		for i, pi := range full.PIs {
			v := sim.Logic(rng.Intn(2))
			sFull.SetInputScalar(pi, v)
			if tpi := tr.PI(full.PINames[i]); tpi >= 0 {
				sTr.SetInputScalar(tpi, v)
			}
		}
		sFull.Eval()
		sTr.Eval()
		for i, po := range tr.POs {
			name := tr.PONames[i]
			want := sFull.Value(full.PO(name)).Lane(0)
			got := sTr.Value(po).Lane(0)
			if got != want {
				return fmt.Errorf("cycle %d: output %s = %v, full design has %v", cycle, name, got, want)
			}
		}
		sFull.Step()
		sTr.Step()
	}
	return nil
}
