package core

import (
	"fmt"
	"sort"
	"strings"

	"factor/internal/design"
	"factor/internal/verilog"
)

// Emit converts an extraction into a synthesizable Verilog source file:
// one specialized (sliced) module per touched hierarchy path — shared
// between paths whose slices are identical, the composition reuse — the
// MUT subtree included whole, and a transformed top module whose ports
// are the chip-level PIs/POs the constraints reach. The returned top
// module name is "xf_<mut module>".
func (ex *Extraction) Emit(d *design.Design) (*verilog.SourceFile, string, error) {
	em := &emitter{d: d, ex: ex, emitted: map[string]*verilog.Module{}, bySig: map[string]string{}}
	return em.run()
}

type emitter struct {
	d  *design.Design
	ex *Extraction
	// emitted maps specialized module name to its definition.
	emitted map[string]*verilog.Module
	// bySig maps a slice signature to an already-emitted module name.
	bySig map[string]string
	// nameSeq disambiguates specialized names.
	nameSeq map[string]int
	out     *verilog.SourceFile
}

func (em *emitter) run() (*verilog.SourceFile, string, error) {
	em.out = &verilog.SourceFile{}
	em.nameSeq = map[string]int{}

	// The MUT subtree is included whole: its module plus every module
	// reachable from it, with original names.
	if err := em.includeWholeModule(em.ex.MUTModule, map[string]bool{}); err != nil {
		return nil, "", err
	}

	topName, err := em.emitPath("")
	if err != nil {
		return nil, "", err
	}
	// Deterministic module order: transformed top first, then sorted.
	var names []string
	for name := range em.emitted {
		if name != topName {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	ordered := &verilog.SourceFile{}
	ordered.Modules = append(ordered.Modules, em.emitted[topName])
	for _, n := range names {
		ordered.Modules = append(ordered.Modules, em.emitted[n])
	}
	return ordered, topName, nil
}

// includeWholeModule copies an original module (and its submodules)
// verbatim into the output.
func (em *emitter) includeWholeModule(name string, seen map[string]bool) error {
	if seen[name] {
		return nil
	}
	seen[name] = true
	mod := em.d.Source.Module(name)
	if mod == nil {
		return fmt.Errorf("core: module %q not found", name)
	}
	if _, ok := em.emitted[name]; !ok {
		em.emitted[name] = mod
	}
	for _, inst := range mod.Instances() {
		if err := em.includeWholeModule(inst.ModuleName, seen); err != nil {
			return err
		}
	}
	return nil
}

// emitPath emits the specialized module for one instance path and
// returns its emitted name. Identical slices of the same module share
// one emitted definition (constraint reuse).
func (em *emitter) emitPath(path string) (string, error) {
	sl, ok := em.ex.slices[path]
	if !ok {
		return "", fmt.Errorf("core: internal: no slice for path %q", path)
	}
	if path == em.ex.MUTPath {
		return sl.module, nil // MUT included whole under its own name
	}
	mod := em.d.Source.Module(sl.module)
	if mod == nil {
		return "", fmt.Errorf("core: module %q not found", sl.module)
	}

	// Children must be emitted first so instance items can be rewritten
	// to reference the specialized names; child emitted names become
	// part of this slice's signature. Iterate in declaration order for
	// deterministic specialized-module naming.
	childNames := map[*verilog.Instance]string{}
	for _, item := range mod.Items {
		if !sl.items[item] {
			continue
		}
		inst, ok := item.(*verilog.Instance)
		if !ok {
			continue
		}
		childPath := inst.Name
		if path != "" {
			childPath = path + "." + inst.Name
		}
		if _, touched := em.ex.slices[childPath]; !touched {
			// Instance kept but never crossed (connection-only keeps);
			// drop it from the emitted module.
			continue
		}
		name, err := em.emitPath(childPath)
		if err != nil {
			return "", err
		}
		childNames[inst] = name
	}

	sig := em.signature(sl, childNames)
	if path != "" { // the top specialization is always unique
		if name, ok := em.bySig[sig]; ok {
			return name, nil
		}
	}

	name := em.freshName(sl, path)
	spec, err := em.buildModule(name, mod, sl, childNames, path)
	if err != nil {
		return "", err
	}
	em.emitted[name] = spec
	if path != "" {
		em.bySig[sig] = name
	}
	return name, nil
}

func (em *emitter) freshName(sl *pathSlice, path string) string {
	base := "f_" + sl.module
	if path == "" {
		base = "xf_" + em.ex.MUTModule
	}
	n := em.nameSeq[base]
	em.nameSeq[base] = n + 1
	if n == 0 {
		return base
	}
	return fmt.Sprintf("%s_%d", base, n)
}

// signature canonically describes a slice so identical slices share an
// emitted module.
func (em *emitter) signature(sl *pathSlice, childNames map[*verilog.Instance]string) string {
	mod := em.d.Source.Module(sl.module)
	var parts []string
	parts = append(parts, sl.module)
	for idx, item := range mod.Items {
		if !sl.items[item] {
			continue
		}
		part := fmt.Sprintf("i%d", idx)
		if blk, ok := item.(*verilog.AlwaysBlock); ok {
			if sl.wholeBlk[blk] {
				part += ":whole"
			} else {
				var ts []string
				for t := range sl.targets[blk] {
					ts = append(ts, t)
				}
				sort.Strings(ts)
				part += ":" + strings.Join(ts, ",")
			}
		}
		if inst, ok := item.(*verilog.Instance); ok {
			part += ":" + childNames[inst]
		}
		parts = append(parts, part)
	}
	var ports []string
	for p := range sl.portsUsed {
		ports = append(ports, p)
	}
	sort.Strings(ports)
	parts = append(parts, "p:"+strings.Join(ports, ","))
	return strings.Join(parts, ";")
}

// buildModule constructs the specialized module AST.
func (em *emitter) buildModule(name string, mod *verilog.Module, sl *pathSlice, childNames map[*verilog.Instance]string, path string) (*verilog.Module, error) {
	spec := &verilog.Module{Name: name, Pos: mod.Pos}

	// Collect the kept items in original order, slicing always blocks
	// and rewriting instances.
	var items []verilog.Item
	referenced := map[string]bool{}
	funcsNeeded := map[string]bool{}

	noteExprs := func(exprs ...verilog.Expr) {
		for _, e := range exprs {
			if e == nil {
				continue
			}
			for _, s := range design.ExprSignals(e) {
				referenced[s] = true
			}
			for _, fn := range callNames(e) {
				funcsNeeded[fn] = true
			}
		}
	}

	for _, item := range mod.Items {
		if !sl.items[item] {
			continue
		}
		switch it := item.(type) {
		case *verilog.AssignItem:
			items = append(items, it)
			noteExprs(it.LHS, it.RHS)
		case *verilog.GateInst:
			items = append(items, it)
			noteExprs(it.Args...)
		case *verilog.AlwaysBlock:
			var body verilog.Stmt
			if sl.wholeBlk[it] {
				body = it.Body
			} else {
				body = sliceStmt(it.Body, sl.targets[it])
			}
			if body == nil {
				continue
			}
			sliced := &verilog.AlwaysBlock{Sens: it.Sens, Body: body, Pos: it.Pos}
			items = append(items, sliced)
			collectStmtRefs(body, referenced, funcsNeeded)
			for _, si := range it.Sens.Items {
				noteExprs(si.Signal)
			}
		case *verilog.Instance:
			newName, ok := childNames[it]
			if !ok {
				continue
			}
			childPath := it.Name
			if path != "" {
				childPath = path + "." + it.Name
			}
			childSlice := em.ex.slices[childPath]
			ni := &verilog.Instance{ModuleName: newName, Name: it.Name, Params: it.Params, Pos: it.Pos}
			childMod := em.d.Source.Module(it.ModuleName)
			conns, err := design.NormalizeConns(childMod, it)
			if err != nil {
				return nil, err
			}
			// Keep connections for ports the specialized child exposes;
			// the whole-module MUT keeps everything connected.
			for _, p := range childMod.Ports {
				expr := conns[p.Name]
				if expr == nil {
					continue
				}
				if childPath != em.ex.MUTPath && !childSlice.portsUsed[p.Name] {
					continue
				}
				ni.Conns = append(ni.Conns, verilog.PortConn{Port: p.Name, Expr: expr})
				noteExprs(expr)
			}
			items = append(items, ni)
		}
	}

	// Ports: the used subset, in original order. The MUT path keeps all.
	for _, p := range mod.Ports {
		if !sl.portsUsed[p.Name] {
			continue
		}
		spec.Ports = append(spec.Ports, p)
		referenced[p.Name] = true
	}

	// Parameters always carried (they size declarations).
	for _, item := range mod.Items {
		if pd, ok := item.(*verilog.ParamDecl); ok {
			spec.Items = append(spec.Items, pd)
			for _, v := range pd.Values {
				noteExprs(v)
			}
		}
	}
	// Functions needed by kept expressions.
	for _, item := range mod.Items {
		if fd, ok := item.(*verilog.FunctionDecl); ok && funcsNeeded[fd.Name] {
			spec.Items = append(spec.Items, fd)
		}
	}
	// Declarations for referenced non-port signals.
	declared := map[string]bool{}
	for _, p := range spec.Ports {
		declared[p.Name] = true
	}
	// Ports pruned from the specialized interface may still be written
	// or read by kept logic: they degrade to internal nets.
	for _, p := range mod.Ports {
		if referenced[p.Name] && !declared[p.Name] {
			kind := verilog.NetWire
			if p.IsReg {
				kind = verilog.NetReg
			}
			spec.Items = append(spec.Items, &verilog.NetDecl{Kind: kind, Width: p.Width, Names: []string{p.Name}, Pos: p.Pos})
			declared[p.Name] = true
		}
	}
	for _, item := range mod.Items {
		nd, ok := item.(*verilog.NetDecl)
		if !ok {
			continue
		}
		var names []string
		for _, n := range nd.Names {
			if referenced[n] && !declared[n] {
				names = append(names, n)
				declared[n] = true
			}
		}
		if len(names) > 0 {
			spec.Items = append(spec.Items, &verilog.NetDecl{Kind: nd.Kind, Width: nd.Width, Names: names, Pos: nd.Pos})
		}
	}
	spec.Items = append(spec.Items, items...)
	return spec, nil
}

// sliceStmt keeps the control skeleton around assignments to target
// signals; control statements whose subtree contains no kept
// assignment vanish, and non-kept branches of kept control statements
// become null statements so case/if priority is preserved exactly.
func sliceStmt(s verilog.Stmt, targets map[string]bool) verilog.Stmt {
	switch v := s.(type) {
	case *verilog.Block:
		nb := &verilog.Block{Label: v.Label, Pos: v.Pos}
		for _, st := range v.Stmts {
			if k := sliceStmt(st, targets); k != nil {
				nb.Stmts = append(nb.Stmts, k)
			}
		}
		if len(nb.Stmts) == 0 {
			return nil
		}
		return nb
	case *verilog.IfStmt:
		thenK := sliceStmt(v.Then, targets)
		var elseK verilog.Stmt
		if v.Else != nil {
			elseK = sliceStmt(v.Else, targets)
		}
		if thenK == nil && elseK == nil {
			return nil
		}
		if thenK == nil {
			thenK = &verilog.NullStmt{Pos: v.Pos}
		}
		if v.Else != nil && elseK == nil {
			elseK = &verilog.NullStmt{Pos: v.Pos}
		}
		return &verilog.IfStmt{Cond: v.Cond, Then: thenK, Else: elseK, Pos: v.Pos}
	case *verilog.CaseStmt:
		any := false
		nc := &verilog.CaseStmt{Kind: v.Kind, Subject: v.Subject, Pos: v.Pos}
		for _, item := range v.Items {
			body := sliceStmt(item.Body, targets)
			if body == nil {
				body = &verilog.NullStmt{Pos: v.Pos}
			} else {
				any = true
			}
			nc.Items = append(nc.Items, verilog.CaseItem{Exprs: item.Exprs, Body: body})
		}
		if !any {
			return nil
		}
		return nc
	case *verilog.ForStmt:
		body := sliceStmt(v.Body, targets)
		if body == nil {
			return nil
		}
		return &verilog.ForStmt{Init: v.Init, Cond: v.Cond, Step: v.Step, Body: body, Pos: v.Pos}
	case *verilog.WhileStmt:
		body := sliceStmt(v.Body, targets)
		if body == nil {
			return nil
		}
		return &verilog.WhileStmt{Cond: v.Cond, Body: body, Pos: v.Pos}
	case *verilog.AssignStmt:
		for _, l := range lvalueSignalsOf(v.LHS) {
			if targets[l] {
				return v
			}
		}
		return nil
	case *verilog.NullStmt, *verilog.SysCallStmt:
		return nil
	}
	return nil
}

// collectStmtRefs gathers signal and function references of a
// statement subtree.
func collectStmtRefs(s verilog.Stmt, referenced, funcs map[string]bool) {
	note := func(exprs ...verilog.Expr) {
		for _, e := range exprs {
			if e == nil {
				continue
			}
			for _, n := range design.ExprSignals(e) {
				referenced[n] = true
			}
			for _, fn := range callNames(e) {
				funcs[fn] = true
			}
		}
	}
	var walk func(st verilog.Stmt)
	walk = func(st verilog.Stmt) {
		switch v := st.(type) {
		case *verilog.Block:
			for _, c := range v.Stmts {
				walk(c)
			}
		case *verilog.IfStmt:
			note(v.Cond)
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *verilog.CaseStmt:
			note(v.Subject)
			for _, item := range v.Items {
				note(item.Exprs...)
				walk(item.Body)
			}
		case *verilog.ForStmt:
			note(v.Cond)
			walk(v.Init)
			walk(v.Step)
			walk(v.Body)
		case *verilog.WhileStmt:
			note(v.Cond)
			walk(v.Body)
		case *verilog.AssignStmt:
			note(v.LHS, v.RHS)
			for _, l := range lvalueSignalsOf(v.LHS) {
				referenced[l] = true
			}
		}
	}
	if s != nil {
		walk(s)
	}
}

// callNames returns the function names invoked in an expression.
func callNames(e verilog.Expr) []string {
	var out []string
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case nil:
		case *verilog.UnaryExpr:
			walk(v.X)
		case *verilog.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *verilog.CondExpr:
			walk(v.Cond)
			walk(v.Then)
			walk(v.Else)
		case *verilog.IndexExpr:
			walk(v.X)
			walk(v.Index)
		case *verilog.RangeExpr:
			walk(v.X)
			walk(v.MSB)
			walk(v.LSB)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		case *verilog.ReplExpr:
			walk(v.Count)
			walk(v.X)
		case *verilog.CallExpr:
			out = append(out, v.Name)
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}
