package core

import (
	"fmt"
	"sort"
	"strings"

	"factor/internal/design"
	"factor/internal/verilog"
)

// ControlConstraint flags a MUT input that is driven only from
// hard-coded constant values selected by a (typically single) control
// signal — the situation the paper reports for arm_alu, where 10 of 13
// control inputs are hard-coded decodes of the alu_operation field.
// Such inputs can never take arbitrary value combinations at the module
// boundary, capping the achievable fault coverage below the
// stand-alone figure.
type ControlConstraint struct {
	Port string
	// Drivers is the signal in the parent that feeds the port (empty
	// when the port is tied directly to a constant).
	Driver string
	// ControllingSignals are the condition signals selecting among the
	// hard-coded values.
	ControllingSignals []string
}

func (c ControlConstraint) String() string {
	if len(c.ControllingSignals) == 0 {
		return fmt.Sprintf("input %s is tied to a constant", c.Port)
	}
	return fmt.Sprintf("input %s is driven from hard-coded values selected by %s",
		c.Port, strings.Join(c.ControllingSignals, ", "))
}

// TestabilityReport aggregates FACTOR's testability findings for one
// MUT (paper §4.2).
type TestabilityReport struct {
	MUTPath   string
	MUTModule string
	// Constraints lists the hard-coded control inputs.
	Constraints []ControlConstraint
	// InputPorts is the number of scalar input ports examined (vector
	// ports count once).
	InputPorts int
	// EmptyChains are dead-end signals discovered during extraction.
	EmptyChains []Diag
}

// Decoded returns the constraints whose hard-coded values are selected
// by control signals (the paper's "driven from a set of hard-coded
// values depending on a single input signal" case).
func (r *TestabilityReport) Decoded() []ControlConstraint {
	var out []ControlConstraint
	for _, c := range r.Constraints {
		if len(c.ControllingSignals) > 0 {
			out = append(out, c)
		}
	}
	return out
}

// ConstantTied returns the constraints that are outright constants.
func (r *TestabilityReport) ConstantTied() []ControlConstraint {
	var out []ControlConstraint
	for _, c := range r.Constraints {
		if len(c.ControllingSignals) == 0 {
			out = append(out, c)
		}
	}
	return out
}

// Summary renders the report in the paper's terms.
func (r *TestabilityReport) Summary() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "testability report for %s (%s):\n", r.MUTModule, r.MUTPath)
	fmt.Fprintf(&sb, "  %d of %d input signals driven from hard-coded decoded values, %d tied to constants\n",
		len(r.Decoded()), r.InputPorts, len(r.ConstantTied()))
	for _, c := range r.Constraints {
		fmt.Fprintf(&sb, "    warning: %s\n", c)
	}
	for _, dgn := range r.EmptyChains {
		fmt.Fprintf(&sb, "    warning: %s\n", dgn)
	}
	return sb.String()
}

// AnalyzeTestability inspects the immediate environment of a MUT and
// reports constrained control inputs plus any empty-chain diagnostics
// from a prior extraction (pass nil diags to analyze controls only).
func AnalyzeTestability(d *design.Design, mutPath string, diags []Diag) (*TestabilityReport, error) {
	node := d.Root.Find(mutPath)
	if node == nil {
		return nil, fmt.Errorf("core: MUT instance path %q not found", mutPath)
	}
	if node.Parent == nil {
		return nil, fmt.Errorf("core: the top module cannot be a MUT")
	}
	mutMod := d.Source.Module(node.Module)
	parent := d.Module(node.Parent.Module)
	conns, err := design.NormalizeConns(mutMod, node.Inst)
	if err != nil {
		return nil, err
	}
	rep := &TestabilityReport{MUTPath: mutPath, MUTModule: node.Module, EmptyChains: diags}
	for _, port := range mutMod.Ports {
		if port.Dir != verilog.PortInput {
			continue
		}
		rep.InputPorts++
		expr, ok := conns[port.Name]
		if !ok || expr == nil {
			continue
		}
		if cc, constrained := analyzeConn(parent, port.Name, expr); constrained {
			rep.Constraints = append(rep.Constraints, cc)
		}
	}
	return rep, nil
}

// analyzeConn decides whether a port connection is hard-coded: either a
// literal constant, or a signal whose every definition assigns a
// constant (with the selecting condition signals reported).
func analyzeConn(parent *design.ModuleInfo, port string, expr verilog.Expr) (ControlConstraint, bool) {
	switch v := expr.(type) {
	case *verilog.Number:
		return ControlConstraint{Port: port}, true
	case *verilog.Ident:
		return analyzeDriver(parent, port, v.Name)
	case *verilog.IndexExpr:
		if id, ok := v.X.(*verilog.Ident); ok {
			return analyzeDriver(parent, port, id.Name)
		}
	}
	return ControlConstraint{}, false
}

// analyzeDriver reports a signal constrained when its every definition
// writes a literal constant; the governing condition signals are the
// "selectors" of the hard-coded values.
func analyzeDriver(parent *design.ModuleInfo, port, sig string) (ControlConstraint, bool) {
	si := parent.Signal(sig)
	if len(si.Defs) == 0 {
		return ControlConstraint{}, false
	}
	condSet := map[string]bool{}
	for _, def := range si.Defs {
		var rhs verilog.Expr
		switch def.Kind {
		case design.DefAssign:
			rhs = def.Item.(*verilog.AssignItem).RHS
		case design.DefProc:
			as, ok := def.Stmt.(*verilog.AssignStmt)
			if !ok {
				return ControlConstraint{}, false
			}
			rhs = as.RHS
			for _, cs := range def.CondSignals {
				condSet[cs] = true
			}
		default:
			return ControlConstraint{}, false
		}
		if _, isConst := rhs.(*verilog.Number); !isConst {
			return ControlConstraint{}, false
		}
	}
	var conds []string
	for cs := range condSet {
		conds = append(conds, cs)
	}
	sort.Strings(conds)
	return ControlConstraint{Port: port, Driver: sig, ControllingSignals: conds}, true
}
