package core_test

import (
	"context"
	"fmt"

	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/verilog"
)

// ExampleExtractor_ExtractAll extracts constraints for two MUTs
// concurrently. Both MUTs are instances of the same module, so the
// single-flight constraint-view cache computes each (module, signal,
// direction) view exactly once no matter how the workers interleave —
// which is why the cache-miss count printed here is stable.
func ExampleExtractor_ExtractAll() {
	src := `
module top(input clk, input [3:0] a, b, output [3:0] p, q);
  wire [3:0] ya, yb;
  unit u_a (.clk(clk), .in(a), .out(ya));
  unit u_b (.clk(clk), .in(b), .out(yb));
  assign p = ya;
  assign q = yb;
endmodule

module unit(input clk, input [3:0] in, output [3:0] out);
  reg [3:0] r;
  always @(posedge clk) r <= in;
  assign out = r ^ in;
endmodule
`
	sf, err := verilog.Parse("example.v", src)
	if err != nil {
		panic(err)
	}
	d, err := design.Analyze(sf, "top")
	if err != nil {
		panic(err)
	}

	e := core.NewExtractor(d, core.ModeComposed)
	exs, err := e.ExtractAll(context.Background(), []string{"u_a", "u_b"}, 8)
	if err != nil {
		panic(err)
	}
	for _, ex := range exs {
		fmt.Printf("%s: %d work items, reaches %d chip inputs\n",
			ex.MUTPath, ex.WorkItems, len(ex.ChipPIs))
	}
	fmt.Printf("same work for both MUTs: %v\n", exs[0].WorkItems == exs[1].WorkItems)
	// Output:
	// u_a: 4 work items, reaches 2 chip inputs
	// u_b: 4 work items, reaches 2 chip inputs
	// same work for both MUTs: true
}
