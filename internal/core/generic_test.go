package core

import (
	"strings"
	"testing"
	"time"

	"factor/internal/atpg"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// uartSoC is a second, non-CPU benchmark: a UART transceiver chip with
// a FIFO buffer, baud generator and a parity unit — a different design
// style (handshakes and counters rather than a fetch/execute loop).
// It demonstrates the flow is not specialized to the ARM benchmark.
const uartSoC = `
module uart_soc(
  input clk, rst,
  input [7:0] tx_data,
  input tx_we,
  input rx_line,
  input [3:0] baud_div,
  output tx_line,
  output tx_busy,
  output [7:0] rx_data,
  output rx_valid,
  output fifo_full,
  output parity_err
);
  wire tick;
  baudgen u_baud (.clk(clk), .rst(rst), .div(baud_div), .tick(tick));

  wire [7:0] fifo_out;
  wire fifo_empty, fifo_rd;
  fifo4 u_fifo (
    .clk(clk), .rst(rst),
    .wdata(tx_data), .we(tx_we),
    .rdata(fifo_out), .re(fifo_rd),
    .full(fifo_full), .empty(fifo_empty)
  );

  txunit u_tx (
    .clk(clk), .rst(rst), .tick(tick),
    .data(fifo_out), .start(!fifo_empty),
    .line(tx_line), .busy(tx_busy), .taken(fifo_rd)
  );

  rxunit u_rx (
    .clk(clk), .rst(rst), .tick(tick),
    .line(rx_line),
    .data(rx_data), .valid(rx_valid)
  );

  parity u_par (.data(rx_data), .strobe(rx_valid), .clk(clk), .rst(rst), .err(parity_err));
endmodule

module baudgen(input clk, rst, input [3:0] div, output reg tick);
  reg [3:0] cnt;
  always @(posedge clk) begin
    if (rst) begin
      cnt <= 4'd0;
      tick <= 1'b0;
    end
    else if (cnt == div) begin
      cnt <= 4'd0;
      tick <= 1'b1;
    end
    else begin
      cnt <= cnt + 4'd1;
      tick <= 1'b0;
    end
  end
endmodule

module fifo4(
  input clk, rst,
  input [7:0] wdata,
  input we,
  output reg [7:0] rdata,
  input re,
  output full,
  output empty
);
  wire [7:0] q0, q1, q2, q3;
  reg [1:0] wp, rp;
  reg [2:0] count;
  wire [3:0] wen;
  fifodec u_dec (.en(we & !full), .sel(wp), .oh(wen));
  cell8 u_c0 (.clk(clk), .en(wen[0]), .d(wdata), .q(q0));
  cell8 u_c1 (.clk(clk), .en(wen[1]), .d(wdata), .q(q1));
  cell8 u_c2 (.clk(clk), .en(wen[2]), .d(wdata), .q(q2));
  cell8 u_c3 (.clk(clk), .en(wen[3]), .d(wdata), .q(q3));
  always @(*) begin
    case (rp)
      2'd0: rdata = q0;
      2'd1: rdata = q1;
      2'd2: rdata = q2;
      default: rdata = q3;
    endcase
  end
  always @(posedge clk) begin
    if (rst) begin
      wp <= 2'd0;
      rp <= 2'd0;
      count <= 3'd0;
    end
    else begin
      if (we & !full)
        wp <= wp + 2'd1;
      if (re & !empty)
        rp <= rp + 2'd1;
      if ((we & !full) & !(re & !empty))
        count <= count + 3'd1;
      else if (!(we & !full) & (re & !empty))
        count <= count - 3'd1;
    end
  end
  assign full = count == 3'd4;
  assign empty = count == 3'd0;
endmodule

module fifodec(input en, input [1:0] sel, output reg [3:0] oh);
  always @(*) begin
    oh = 4'd0;
    if (en) begin
      case (sel)
        2'd0: oh[0] = 1'b1;
        2'd1: oh[1] = 1'b1;
        2'd2: oh[2] = 1'b1;
        default: oh[3] = 1'b1;
      endcase
    end
  end
endmodule

module cell8(input clk, en, input [7:0] d, output [7:0] q);
  reg [7:0] r;
  always @(posedge clk) begin
    if (en)
      r <= d;
  end
  assign q = r;
endmodule

module txunit(
  input clk, rst, tick,
  input [7:0] data,
  input start,
  output line,
  output busy,
  output taken
);
  reg [3:0] state; // 0 idle, 1 start bit, 2-9 data bits, 10 stop
  reg [7:0] shifter;
  always @(posedge clk) begin
    if (rst) begin
      state <= 4'd0;
      shifter <= 8'd0;
    end
    else if (tick) begin
      if (state == 4'd0) begin
        if (start) begin
          state <= 4'd1;
          shifter <= data;
        end
      end
      else if (state == 4'd10)
        state <= 4'd0;
      else begin
        state <= state + 4'd1;
        if (state != 4'd1)
          shifter <= {1'b0, shifter[7:1]};
      end
    end
  end
  assign busy = state != 4'd0;
  assign taken = tick & (state == 4'd0) & start;
  assign line = (state == 4'd0) ? 1'b1
              : ((state == 4'd1) ? 1'b0
              : ((state == 4'd10) ? 1'b1 : shifter[0]));
endmodule

module rxunit(
  input clk, rst, tick,
  input line,
  output reg [7:0] data,
  output reg valid
);
  reg [3:0] state;
  reg [7:0] shifter;
  always @(posedge clk) begin
    if (rst) begin
      state <= 4'd0;
      shifter <= 8'd0;
      data <= 8'd0;
      valid <= 1'b0;
    end
    else begin
      valid <= 1'b0;
      if (tick) begin
        if (state == 4'd0) begin
          if (!line)
            state <= 4'd1;
        end
        else if (state == 4'd9) begin
          data <= shifter;
          valid <= 1'b1;
          state <= 4'd0;
        end
        else begin
          shifter <= {line, shifter[7:1]};
          state <= state + 4'd1;
        end
      end
    end
  end
endmodule

module parity(input [7:0] data, input strobe, clk, rst, output reg err);
  always @(posedge clk) begin
    if (rst)
      err <= 1'b0;
    else if (strobe)
      err <= ^data;
  end
endmodule
`

func uartDesign(t *testing.T) (*design.Design, *netlist.Netlist) {
	t.Helper()
	sf, err := verilog.Parse("uart.v", uartSoC)
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, "uart_soc")
	if err != nil {
		t.Fatal(err)
	}
	full, err := synth.Synthesize(sf, "uart_soc", synth.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return d, full.Netlist
}

func TestGenericDesignFullFlow(t *testing.T) {
	d, full := uartDesign(t)
	// Minimum coverage expectations differ by module: the FIFO's only
	// observation path serializes through the transmitter over ~20+
	// clock cycles, far beyond the 6-frame budget used here, so only
	// its shallow faults are reachable.
	minCov := map[string]float64{
		"u_fifo": 5,
		"u_tx":   20,
		// A single FIFO cell needs ~30 frames (fill the FIFO, rotate
		// the pointers, serialize through the transmitter) — nothing
		// is detectable at this budget; the assertion is only that the
		// flow completes and targets its faults.
		"u_fifo.u_c2": 0,
		"u_baud":      40,
	}
	for _, mutPath := range []string{"u_fifo", "u_tx", "u_fifo.u_c2", "u_baud"} {
		for _, mode := range []Mode{ModeFlat, ModeComposed} {
			ext := NewExtractor(d, mode)
			tr, err := Transform(ext, mutPath, full, TransformOptions{EnablePIERs: true})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, mutPath, err)
			}
			if tr.MUTGates == 0 {
				t.Errorf("%v/%s: no MUT gates", mode, mutPath)
			}
			faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
			if len(faults) == 0 {
				t.Errorf("%v/%s: no faults", mode, mutPath)
				continue
			}
			res := atpg.New(tr.Netlist, atpg.Options{
				Seed: 2, TimeBudget: 2 * time.Second, MaxFrames: 6, BacktrackLimit: 100,
			}).Run(faults)
			if res.Coverage() < minCov[mutPath] {
				t.Errorf("%v/%s: coverage %.1f%% below %1.f%% (%d faults)",
					mode, mutPath, res.Coverage(), minCov[mutPath], len(faults))
			}
		}
	}
}

func TestGenericDesignEquivalence(t *testing.T) {
	d, full := uartDesign(t)
	for _, mutPath := range []string{"u_fifo", "u_rx"} {
		ext := NewExtractor(d, ModeComposed)
		tr, err := Transform(ext, mutPath, full, TransformOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if err := coSimulate(full, tr.Netlist, 40, 7); err != nil {
			t.Errorf("%s: %v", mutPath, err)
		}
	}
}

func TestGenericDesignPIERSelectivity(t *testing.T) {
	// The UART FIFO cells are loadable from the tx_data bus but NOT
	// combinationally observable — their read path goes through the
	// transmit shift register before reaching a pin. Unlike the ARM
	// register file (which has a store path straight to the data pins),
	// they must NOT be classified as PIERs: the heuristic requires both
	// a load and a store path.
	d, full := uartDesign(t)
	ext := NewExtractor(d, ModeComposed)
	tr, err := Transform(ext, "u_fifo.u_c3", full, TransformOptions{EnablePIERs: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tr.PIERs {
		if strings.Contains(tr.Netlist.Gates[p].Scope, "u_fifo.u_c") {
			t.Errorf("FIFO cell %s%s misclassified as PIER (no combinational store path exists)",
				tr.Netlist.Gates[p].Scope, tr.Netlist.Gates[p].Name)
		}
	}
}
