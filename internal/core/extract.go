// Package core implements the FACTOR methodology itself: hierarchical
// functional constraint extraction (the find_source_logic and
// find_prop_paths subroutines of the paper's Fig. 3), constraint
// composition with reuse, transformed-module construction (paper
// Fig. 1), PIER identification, and testability analysis.
//
// Two extraction modes reproduce the paper's comparison:
//
//   - ModeFlat ("without composition", the earlier Tupuri-style flow):
//     constraints are chased across the hierarchy but module processes
//     are taken whole (item granularity) — without per-level
//     composition the extractor cannot prune inside submodule
//     processes — and nothing is reused between queries.
//   - ModeComposed (the paper's contribution): statement-level slices
//     are extracted per hierarchy level and composed; module-local
//     chain traversals are cached and reused across instances and
//     MUTs, which both shrinks the extracted environment and cuts
//     extraction time.
package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"factor/internal/design"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/verilog"
)

// Mode selects the extraction strategy.
type Mode int

// Extraction modes.
const (
	// ModeFlat is the conventional methodology without constraint
	// composition (paper Table 2/5).
	ModeFlat Mode = iota
	// ModeComposed is the hierarchical composition methodology (paper
	// Table 3/6).
	ModeComposed
)

func (m Mode) String() string {
	if m == ModeComposed {
		return "composed"
	}
	return "flat"
}

// dir distinguishes backward (source) from forward (propagation)
// traversal.
type dir int

const (
	dirSource dir = iota
	dirProp
)

func (d dir) String() string {
	if d == dirProp {
		return "prop"
	}
	return "source"
}

// Diag is a testability diagnostic produced during extraction: a
// signal whose def-use or use-def chain is empty, meaning no path
// between the chip interface and the MUT exists through it.
type Diag struct {
	Path   string // instance path of the module
	Module string
	Signal string
	Dir    dir
	Trace  []string // signal trail from the MUT boundary to the dead end
}

func (d Diag) String() string {
	kind := "use-def (no driver)"
	if d.Dir == dirProp {
		kind = "def-use (no reader)"
	}
	return fmt.Sprintf("%s.%s: empty %s chain; trace: %s",
		pathOr(d.Path, "<top>"), d.Signal, kind, strings.Join(d.Trace, " -> "))
}

func pathOr(p, alt string) string {
	if p == "" {
		return alt
	}
	return p
}

// Extractor runs constraint extraction over an analyzed design. It can
// be reused across MUTs; in ModeComposed the module-local chain cache
// persists across calls (the paper's constraint reuse).
//
// Extract is safe to call from multiple goroutines (see ExtractAll):
// the chain cache is single-flight — when two MUTs sharing an
// intermediate module race on the same (module, signal, direction)
// view, one goroutine computes it and the other blocks and reuses it —
// and the stats counters are guarded. Counter totals stay deterministic
// under concurrency: misses equal the number of distinct views touched
// and hits equal lookups minus misses, neither of which depends on
// scheduling.
type Extractor struct {
	D    *design.Design
	Mode Mode

	mu    sync.Mutex // guards cache map and stats counters
	cache map[stepKey]*cacheEntry

	// Stats accumulate over the extractor's lifetime. Read them only
	// when no Extract call is in flight.
	CacheHits   int
	CacheMisses int
	Steps       int // processed work items
}

// cacheEntry is a single-flight slot: the creator runs once.Do to fill
// step; latecomers block on the same once and then read it.
type cacheEntry struct {
	once sync.Once
	step *moduleStep
}

// NewExtractor creates an extractor over the analyzed design.
func NewExtractor(d *design.Design, mode Mode) *Extractor {
	return &Extractor{D: d, Mode: mode, cache: map[stepKey]*cacheEntry{}}
}

type stepKey struct {
	module string
	signal string
	d      dir
}

// childCross describes traversal descending into a child instance.
type childCross struct {
	inst *verilog.Instance
	port string
	d    dir
}

// moduleStep is the module-local consequence of chasing one signal in
// one direction: which items to keep, which block slice targets to
// add, and where the traversal continues. It is independent of the
// instance path, which is what makes it reusable (composition).
type moduleStep struct {
	keepItems []verilog.Item
	// sliceTargets: per always block, the signals whose assignments
	// must be kept. A nil signal list means "whole block".
	sliceTargets map[*verilog.AlwaysBlock][]string
	localNext    []sigDir
	children     []childCross
	emptyDef     bool
	emptyUse     bool
}

type sigDir struct {
	sig string
	d   dir
}

// Extraction is the result of extracting constraints for one MUT.
type Extraction struct {
	MUTPath   string
	MUTModule string
	Mode      Mode

	// slices per instance path (the top module is path "").
	slices map[string]*pathSlice

	// ChipPIs/ChipPOs are the top-level ports the constraints reach.
	ChipPIs map[string]bool
	ChipPOs map[string]bool

	Diags []Diag

	// WorkItems counts processed traversal steps (extraction effort).
	WorkItems int
}

type pathSlice struct {
	path   string
	module string
	items  map[verilog.Item]bool
	// targets[blk] == nil means whole block.
	targets   map[*verilog.AlwaysBlock]map[string]bool
	wholeBlk  map[*verilog.AlwaysBlock]bool
	portsUsed map[string]bool
}

func newPathSlice(path, module string) *pathSlice {
	return &pathSlice{
		path:      path,
		module:    module,
		items:     map[verilog.Item]bool{},
		targets:   map[*verilog.AlwaysBlock]map[string]bool{},
		wholeBlk:  map[*verilog.AlwaysBlock]bool{},
		portsUsed: map[string]bool{},
	}
}

// workItem is one pending traversal step.
type workItem struct {
	path  string
	sig   string
	d     dir
	trace []string
}

const maxTrace = 24

// Extract runs constraint extraction for the module instance at
// mutPath (paper: "Once the MUT and the top module are identified,
// FACTOR calls appropriate subroutines"). It is ExtractContext without
// cancellation.
func (e *Extractor) Extract(mutPath string) (*Extraction, error) {
	return e.ExtractContext(context.Background(), mutPath)
}

// ExtractContext is Extract under a context: the traversal polls ctx
// every 64 work items and returns a structured canceled/timeout error
// when it is interrupted (extractions can walk very large hierarchies,
// so the loop itself must be interruptible, not just the callers).
func (e *Extractor) ExtractContext(ctx context.Context, mutPath string) (*Extraction, error) {
	node := e.D.Root.Find(mutPath)
	if node == nil {
		return nil, fmt.Errorf("core: MUT instance path %q not found", mutPath)
	}
	if node.Parent == nil {
		return nil, fmt.Errorf("core: the top module cannot be a MUT")
	}
	ex := &Extraction{
		MUTPath:   mutPath,
		MUTModule: node.Module,
		Mode:      e.Mode,
		slices:    map[string]*pathSlice{},
		ChipPIs:   map[string]bool{},
		ChipPOs:   map[string]bool{},
	}

	// The spine of instances from the top module down to the MUT is
	// always part of the transformed module, even if no constraint
	// crosses a particular level.
	for n := node; n.Parent != nil; n = n.Parent {
		ps := ex.slice(n.Parent.Path, n.Parent.Module)
		ps.items[n.Inst] = true
		if n != node {
			ex.slice(n.Path, n.Module)
		}
	}
	parentPath := node.Parent.Path

	mutMod := e.D.Source.Module(node.Module)
	if mutMod == nil {
		return nil, fmt.Errorf("core: MUT module %q not found", node.Module)
	}
	conns, err := design.NormalizeConns(mutMod, node.Inst)
	if err != nil {
		return nil, err
	}

	var work []workItem
	mutSlicePorts := ex.slice(mutPath, node.Module)
	for _, port := range mutMod.Ports {
		expr, ok := conns[port.Name]
		if !ok || expr == nil {
			continue
		}
		mutSlicePorts.portsUsed[port.Name] = true
		switch port.Dir {
		case verilog.PortInput:
			for _, sig := range design.ExprSignals(expr) {
				work = append(work, workItem{path: parentPath, sig: sig, d: dirSource,
					trace: []string{mutPath + "." + port.Name}})
			}
		case verilog.PortOutput:
			for _, sig := range lvalueSignalsOf(expr) {
				work = append(work, workItem{path: parentPath, sig: sig, d: dirProp,
					trace: []string{mutPath + "." + port.Name}})
			}
		}
	}

	visited := map[string]bool{}
	for len(work) > 0 {
		w := work[len(work)-1]
		work = work[:len(work)-1]
		key := w.path + "\x00" + w.sig + "\x00" + w.d.String()
		if visited[key] {
			continue
		}
		visited[key] = true
		ex.WorkItems++
		if ex.WorkItems&63 == 0 && ctx != nil {
			if cerr := ctx.Err(); cerr != nil {
				return nil, factorerr.FromContext(factorerr.StageExtract, cerr)
			}
		}

		next, err := e.process(ex, w)
		if err != nil {
			return nil, err
		}
		work = append(work, next...)
	}
	e.mu.Lock()
	e.Steps += ex.WorkItems
	e.mu.Unlock()
	return ex, nil
}

// extractPanicHook, when non-nil, runs at the top of every pooled
// extraction — the test-only injection point for the worker
// panic-isolation boundary.
var extractPanicHook func(mutPath string)

// safeExtract runs one MUT's extraction behind the worker pool's
// panic-isolation boundary: a panic quarantines that MUT (nil result,
// structured error) and the sibling MUTs continue.
func (e *Extractor) safeExtract(ctx context.Context, mutPath string) (ex *Extraction, err error) {
	defer func() {
		if r := recover(); r != nil {
			ex = nil
			err = factorerr.FromPanic(factorerr.StageExtract, r).WithMUT(mutPath)
		}
	}()
	if extractPanicHook != nil {
		extractPanicHook(mutPath)
	}
	// Failpoint core.extract.mut: keyed by the MUT path, so which MUTs
	// degrade is invariant under worker count. An injected error
	// quarantines the MUT exactly like a caught panic.
	if ferr := failpoint.HitKey("core.extract.mut", failpoint.StringKey(mutPath)); ferr != nil {
		return nil, factorerr.Wrap(factorerr.StageExtract, factorerr.CodePanic, ferr).WithMUT(mutPath)
	}
	return e.ExtractContext(ctx, mutPath)
}

// wrapMUT tags a per-MUT failure with the MUT's instance path.
// Structured errors keep their stage and code; anything else becomes
// an analysis error at the given stage.
func wrapMUT(err error, stage factorerr.Stage, mut string) error {
	if err == nil {
		return nil
	}
	var fe *factorerr.Error
	if errors.As(err, &fe) {
		if fe.MUT == "" {
			fe.MUT = mut
		}
		return err
	}
	return factorerr.Wrap(stage, factorerr.CodeAnalysis, err).WithMUT(mut)
}

// collectMUT aggregates per-MUT failures into the degradation policy's
// error shape: nil when every MUT succeeded; a partial-code error
// wrapping the individual failures when only some failed (CLI exit 3);
// the plain aggregate when all failed (exit 1).
func collectMUT(stage factorerr.Stage, errs []error, total int) error {
	agg := factorerr.Collect(errs)
	if agg == nil {
		return nil
	}
	nfail := len(factorerr.Flatten(agg))
	if nfail < total {
		pe := factorerr.New(stage, factorerr.CodePartial, "%d of %d MUTs failed", nfail, total)
		pe.Err = agg
		return pe
	}
	return agg
}

// ExtractAll extracts constraints for several MUTs concurrently over
// the given number of workers (<= 0 selects runtime.NumCPU()). Results
// are returned in input order. Each individual Extraction is identical
// to a serial Extract call for the same path, and the shared chain
// cache computes each (module, signal, direction) view exactly once
// across all workers.
//
// Degradation policy: one failing (or panicking) MUT does not abort its
// siblings. The returned slice always has len(mutPaths) entries — nil
// at the failed indices — and the error aggregates every per-MUT
// failure, tagged with its MUT path; it carries CodePartial when at
// least one MUT succeeded. Cancellation marks the not-yet-started MUTs
// with canceled errors and returns once in-flight extractions notice
// the context.
func (e *Extractor) ExtractAll(ctx context.Context, mutPaths []string, workers int) ([]*Extraction, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > len(mutPaths) {
		workers = len(mutPaths)
	}
	out := make([]*Extraction, len(mutPaths))
	errs := make([]error, len(mutPaths))
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(atomic.AddInt64(&next, 1)) - 1
				if i >= len(mutPaths) {
					return
				}
				if cerr := ctx.Err(); cerr != nil {
					errs[i] = factorerr.FromContext(factorerr.StageExtract, cerr).WithMUT(mutPaths[i])
					continue
				}
				ex, err := e.safeExtract(ctx, mutPaths[i])
				out[i], errs[i] = ex, wrapMUT(err, factorerr.StageExtract, mutPaths[i])
			}
		}()
	}
	wg.Wait()
	return out, collectMUT(factorerr.StageExtract, errs, len(mutPaths))
}

func (ex *Extraction) slice(path, module string) *pathSlice {
	if s, ok := ex.slices[path]; ok {
		return s
	}
	s := newPathSlice(path, module)
	ex.slices[path] = s
	return s
}

// process handles one work item: port crossings first, then the
// module-local chain step.
func (e *Extractor) process(ex *Extraction, w workItem) ([]workItem, error) {
	node := e.D.Root.Find(w.path)
	if node == nil {
		return nil, fmt.Errorf("core: internal: path %q vanished", w.path)
	}
	mi := e.D.Module(node.Module)
	if mi.IsParam(w.sig) {
		// Parameters read like signals but are compile-time constants:
		// nothing to extract and no chain to diagnose.
		return nil, nil
	}
	sl := ex.slice(w.path, node.Module)
	var out []workItem

	trace := w.trace
	if len(trace) < maxTrace {
		trace = append(append([]string(nil), trace...), pathOr(w.path, "<top>")+"."+w.sig)
	}

	// Port crossings to the parent / chip interface.
	si := mi.Signal(w.sig)
	if si.IsPort {
		switch {
		case w.d == dirSource && si.Dir == verilog.PortInput:
			sl.portsUsed[w.sig] = true
			if w.path == "" {
				ex.ChipPIs[w.sig] = true
				return out, nil
			}
			items, err := e.crossUp(ex, node, w, trace)
			if err != nil {
				return nil, err
			}
			return append(out, items...), nil
		case w.d == dirProp && si.Dir == verilog.PortOutput:
			sl.portsUsed[w.sig] = true
			if w.path == "" {
				ex.ChipPOs[w.sig] = true
				// The chip boundary is reached, but local readers of
				// the signal may still fan out; fall through.
			} else {
				items, err := e.crossUp(ex, node, w, trace)
				if err != nil {
					return nil, err
				}
				out = append(out, items...)
				// Also fall through to local uses.
			}
		}
	}

	step := e.moduleStepFor(node.Module, mi, w.sig, w.d)
	for _, it := range step.keepItems {
		sl.items[it] = true
	}
	for blk, targets := range step.sliceTargets {
		sl.items[blk] = true
		if targets == nil {
			sl.wholeBlk[blk] = true
			continue
		}
		set := sl.targets[blk]
		if set == nil {
			set = map[string]bool{}
			sl.targets[blk] = set
		}
		for _, t := range targets {
			set[t] = true
		}
	}
	for _, n := range step.localNext {
		out = append(out, workItem{path: w.path, sig: n.sig, d: n.d, trace: trace})
	}
	for _, cc := range step.children {
		childPath := cc.inst.Name
		if w.path != "" {
			childPath = w.path + "." + cc.inst.Name
		}
		childNode := e.D.Root.Find(childPath)
		if childNode == nil {
			return nil, fmt.Errorf("core: instance path %q not in hierarchy", childPath)
		}
		cs := ex.slice(childPath, childNode.Module)
		cs.portsUsed[cc.port] = true
		sl.items[cc.inst] = true
		out = append(out, workItem{path: childPath, sig: cc.port, d: cc.d, trace: trace})
	}

	// Empty-chain diagnostics (paper §3: "the tool also provides a
	// trace for any signals ... for which a def-use or use-def chain is
	// empty").
	if step.emptyDef && w.d == dirSource && !(si.IsPort && si.Dir == verilog.PortInput) {
		ex.Diags = append(ex.Diags, Diag{Path: w.path, Module: node.Module, Signal: w.sig, Dir: dirSource, Trace: trace})
	}
	if step.emptyUse && w.d == dirProp && !(si.IsPort && si.Dir == verilog.PortOutput) {
		ex.Diags = append(ex.Diags, Diag{Path: w.path, Module: node.Module, Signal: w.sig, Dir: dirProp, Trace: trace})
	}
	return out, nil
}

// crossUp continues the traversal in the parent module through the
// instance connection of the given port signal.
func (e *Extractor) crossUp(ex *Extraction, node *design.InstanceNode, w workItem, trace []string) ([]workItem, error) {
	parent := node.Parent
	child := e.D.Source.Module(node.Module)
	conns, err := design.NormalizeConns(child, node.Inst)
	if err != nil {
		return nil, err
	}
	ps := ex.slice(parent.Path, parent.Module)
	ps.items[node.Inst] = true
	expr, ok := conns[w.sig]
	if !ok || expr == nil {
		// Unconnected port: dead end — report as an empty chain at the
		// parent boundary.
		ex.Diags = append(ex.Diags, Diag{Path: node.Path, Module: node.Module, Signal: w.sig, Dir: w.d, Trace: trace})
		return nil, nil
	}
	var out []workItem
	if w.d == dirSource {
		for _, sig := range design.ExprSignals(expr) {
			out = append(out, workItem{path: parent.Path, sig: sig, d: dirSource, trace: trace})
		}
	} else {
		for _, sig := range lvalueSignalsOf(expr) {
			out = append(out, workItem{path: parent.Path, sig: sig, d: dirProp, trace: trace})
		}
	}
	return out, nil
}

// moduleStepFor computes (or recalls) the module-local traversal step.
// In ModeComposed the result is cached per (module, signal, direction)
// — this is the constraint reuse that makes composition cheaper. The
// cache is single-flight: the goroutine that creates the entry computes
// the step; concurrent lookups of the same key block on the entry's
// sync.Once and share the result instead of computing it twice.
func (e *Extractor) moduleStepFor(module string, mi *design.ModuleInfo, sig string, d dir) *moduleStep {
	if e.Mode != ModeComposed {
		return e.computeStep(mi, sig, d)
	}
	key := stepKey{module: module, signal: sig, d: d}
	e.mu.Lock()
	ent, ok := e.cache[key]
	if ok {
		e.CacheHits++
	} else {
		ent = &cacheEntry{}
		e.cache[key] = ent
		e.CacheMisses++
	}
	e.mu.Unlock()
	ent.once.Do(func() { ent.step = e.computeStep(mi, sig, d) })
	return ent.step
}

func (e *Extractor) computeStep(mi *design.ModuleInfo, sig string, d dir) *moduleStep {
	s := &moduleStep{sliceTargets: map[*verilog.AlwaysBlock][]string{}}
	si := mi.Signal(sig)
	if d == dirSource {
		e.stepSource(mi, si, s)
	} else {
		e.stepProp(mi, si, s)
	}
	return s
}

// addSliceTarget records that assignments to target inside blk must be
// kept. In flat mode the whole block is kept instead (nil target list).
func (e *Extractor) addSliceTarget(s *moduleStep, mi *design.ModuleInfo, blk *verilog.AlwaysBlock, target string) {
	if e.Mode == ModeFlat {
		if _, ok := s.sliceTargets[blk]; !ok {
			s.sliceTargets[blk] = nil
			// Keeping the whole block pulls in everything it reads
			// (the values feeding every retained assignment) and makes
			// every signal it assigns a live constraint whose fanout
			// must also be extracted — without per-level composition
			// the extractor cannot tell which of the block's outputs
			// matter, so it conservatively takes all of them. This is
			// the conservatism that bloats the Tupuri-style
			// environments on hierarchical designs.
			reads, writes := blockSignals(blk)
			for _, r := range reads {
				s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
			}
			for _, w := range writes {
				s.localNext = append(s.localNext, sigDir{sig: w, d: dirProp})
			}
			for _, cs := range sensSignals(blk) {
				s.localNext = append(s.localNext, sigDir{sig: cs, d: dirSource})
			}
		}
		return
	}
	s.sliceTargets[blk] = append(s.sliceTargets[blk], target)
	// The emitter keeps EVERY assignment to target inside blk (the
	// slicer matches by target name, and dropping a reconvergent
	// assignment would break case/if priority), so the support of every
	// such assignment must be extracted too. Re-tracing the target as a
	// source visits all of its defs — including assignments other than
	// the one that put it on the propagation path — and pulls their RHS
	// and enclosing conditions into the environment. Without this, a
	// kept assignment can read a signal that was never traced and ends
	// up as an undriven wire in the transformed module (unsound S').
	s.localNext = append(s.localNext, sigDir{sig: target, d: dirSource})
	for _, cs := range sensSignals(blk) {
		s.localNext = append(s.localNext, sigDir{sig: cs, d: dirSource})
	}
}

func (e *Extractor) stepSource(mi *design.ModuleInfo, si *design.SignalInfo, s *moduleStep) {
	realDefs := 0
	for _, def := range si.Defs {
		switch def.Kind {
		case design.DefPortIn:
			// Handled by the caller's port-crossing logic.
			continue
		case design.DefAssign:
			realDefs++
			item := def.Item.(*verilog.AssignItem)
			s.keepItems = append(s.keepItems, item)
			for _, r := range design.ExprSignals(item.RHS) {
				s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
			}
			for _, r := range indexSignalsOf(item.LHS) {
				s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
			}
		case design.DefProc:
			realDefs++
			blk := def.Item.(*verilog.AlwaysBlock)
			e.addSliceTarget(s, mi, blk, si.Name)
			if e.Mode == ModeComposed {
				as := def.Stmt.(*verilog.AssignStmt)
				for _, r := range design.ExprSignals(as.RHS) {
					s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
				}
				for _, r := range indexSignalsOf(as.LHS) {
					s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
				}
				for _, r := range def.CondSignals {
					s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
				}
			}
		case design.DefInstOut:
			realDefs++
			s.keepItems = append(s.keepItems, def.Item)
			s.children = append(s.children, childCross{inst: def.Instance, port: def.Port, d: dirSource})
		case design.DefGateOut:
			realDefs++
			g := def.Item.(*verilog.GateInst)
			s.keepItems = append(s.keepItems, g)
			for _, arg := range gateInputs(g) {
				for _, r := range design.ExprSignals(arg) {
					s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
				}
			}
		}
	}
	if realDefs == 0 {
		s.emptyDef = true
	}
}

func (e *Extractor) stepProp(mi *design.ModuleInfo, si *design.SignalInfo, s *moduleStep) {
	realUses := 0
	for _, use := range si.Uses {
		switch use.Kind {
		case design.UsePortOut:
			// Handled by the caller's port-crossing logic.
			continue
		case design.UseAssignRHS:
			realUses++
			item := use.Item.(*verilog.AssignItem)
			s.keepItems = append(s.keepItems, item)
			for _, l := range lvalueSignalsOf(item.LHS) {
				s.localNext = append(s.localNext, sigDir{sig: l, d: dirProp})
			}
			for _, r := range design.ExprSignals(item.RHS) {
				if r != si.Name {
					s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
				}
			}
		case design.UseProcRHS:
			realUses++
			blk := use.Item.(*verilog.AlwaysBlock)
			as, ok := use.Stmt.(*verilog.AssignStmt)
			if !ok {
				continue
			}
			for _, l := range lvalueSignalsOf(as.LHS) {
				e.addSliceTarget(s, mi, blk, l)
				s.localNext = append(s.localNext, sigDir{sig: l, d: dirProp})
			}
			if e.Mode == ModeComposed {
				for _, r := range design.ExprSignals(as.RHS) {
					if r != si.Name {
						s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
					}
				}
				for _, enc := range use.Enclosing {
					for _, r := range condSignalsOf(enc) {
						s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
					}
				}
			}
		case design.UseCond:
			realUses++
			blk := use.Item.(*verilog.AlwaysBlock)
			// The signal gates every assignment under the conditional:
			// propagate to all of them (paper Fig. 3, steps 4-7 of
			// find_prop_paths).
			for _, as := range assignmentsUnder(use.Stmt) {
				for _, l := range lvalueSignalsOf(as.LHS) {
					e.addSliceTarget(s, mi, blk, l)
					s.localNext = append(s.localNext, sigDir{sig: l, d: dirProp})
				}
				if e.Mode == ModeComposed {
					for _, r := range design.ExprSignals(as.RHS) {
						if r != si.Name {
							s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
						}
					}
				}
			}
			if e.Mode == ModeComposed {
				for _, r := range condSignalsOf(use.Stmt) {
					if r != si.Name {
						s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
					}
				}
			}
		case design.UseInstIn:
			realUses++
			s.keepItems = append(s.keepItems, use.Item)
			s.children = append(s.children, childCross{inst: use.Instance, port: use.Port, d: dirProp})
		case design.UseGateIn:
			realUses++
			g := use.Item.(*verilog.GateInst)
			s.keepItems = append(s.keepItems, g)
			for _, outArg := range gateOutputs(g) {
				for _, l := range lvalueSignalsOf(outArg) {
					s.localNext = append(s.localNext, sigDir{sig: l, d: dirProp})
				}
			}
			for _, inArg := range gateInputs(g) {
				for _, r := range design.ExprSignals(inArg) {
					if r != si.Name {
						s.localNext = append(s.localNext, sigDir{sig: r, d: dirSource})
					}
				}
			}
		}
	}
	if realUses == 0 {
		s.emptyUse = true
	}
}

// ---------------------------------------------------------------------------
// helpers

func gateInputs(g *verilog.GateInst) []verilog.Expr {
	if g.Kind == "buf" || g.Kind == "not" {
		return g.Args[len(g.Args)-1:]
	}
	return g.Args[1:]
}

func gateOutputs(g *verilog.GateInst) []verilog.Expr {
	if g.Kind == "buf" || g.Kind == "not" {
		return g.Args[:len(g.Args)-1]
	}
	return g.Args[:1]
}

func lvalueSignalsOf(e verilog.Expr) []string {
	var out []string
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case *verilog.Ident:
			out = append(out, v.Name)
		case *verilog.IndexExpr:
			walk(v.X)
		case *verilog.RangeExpr:
			walk(v.X)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return out
}

func indexSignalsOf(e verilog.Expr) []string {
	var out []string
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case *verilog.IndexExpr:
			out = append(out, design.ExprSignals(v.Index)...)
			walk(v.X)
		case *verilog.RangeExpr:
			walk(v.X)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return out
}

// condSignalsOf returns the signals read by the condition of a control
// statement.
func condSignalsOf(s verilog.Stmt) []string {
	switch v := s.(type) {
	case *verilog.IfStmt:
		return design.ExprSignals(v.Cond)
	case *verilog.CaseStmt:
		out := design.ExprSignals(v.Subject)
		for _, item := range v.Items {
			for _, le := range item.Exprs {
				out = append(out, design.ExprSignals(le)...)
			}
		}
		return out
	case *verilog.ForStmt:
		return design.ExprSignals(v.Cond)
	case *verilog.WhileStmt:
		return design.ExprSignals(v.Cond)
	}
	return nil
}

// assignmentsUnder collects all assignment statements in a subtree.
func assignmentsUnder(s verilog.Stmt) []*verilog.AssignStmt {
	var out []*verilog.AssignStmt
	var walk func(st verilog.Stmt)
	walk = func(st verilog.Stmt) {
		switch v := st.(type) {
		case *verilog.Block:
			for _, c := range v.Stmts {
				walk(c)
			}
		case *verilog.IfStmt:
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *verilog.CaseStmt:
			for _, item := range v.Items {
				walk(item.Body)
			}
		case *verilog.ForStmt:
			walk(v.Init)
			walk(v.Step)
			walk(v.Body)
		case *verilog.WhileStmt:
			walk(v.Body)
		case *verilog.AssignStmt:
			out = append(out, v)
		}
	}
	if s != nil {
		walk(s)
	}
	return out
}

// blockSignals returns (reads, writes) of a whole always block.
func blockSignals(blk *verilog.AlwaysBlock) (reads, writes []string) {
	seenR := map[string]bool{}
	seenW := map[string]bool{}
	var walk func(st verilog.Stmt)
	addR := func(names []string) {
		for _, n := range names {
			if !seenR[n] {
				seenR[n] = true
				reads = append(reads, n)
			}
		}
	}
	walk = func(st verilog.Stmt) {
		switch v := st.(type) {
		case *verilog.Block:
			for _, c := range v.Stmts {
				walk(c)
			}
		case *verilog.IfStmt:
			addR(design.ExprSignals(v.Cond))
			walk(v.Then)
			if v.Else != nil {
				walk(v.Else)
			}
		case *verilog.CaseStmt:
			addR(condSignalsOf(v))
			for _, item := range v.Items {
				walk(item.Body)
			}
		case *verilog.ForStmt:
			addR(design.ExprSignals(v.Cond))
			walk(v.Init)
			walk(v.Step)
			walk(v.Body)
		case *verilog.WhileStmt:
			addR(design.ExprSignals(v.Cond))
			walk(v.Body)
		case *verilog.AssignStmt:
			addR(design.ExprSignals(v.RHS))
			addR(indexSignalsOf(v.LHS))
			for _, w := range lvalueSignalsOf(v.LHS) {
				if !seenW[w] {
					seenW[w] = true
					writes = append(writes, w)
				}
			}
		}
	}
	walk(blk.Body)
	return reads, writes
}

// sensSignals returns the signals in the sensitivity list of a clocked
// block (the clock/reset tree is part of the environment).
func sensSignals(blk *verilog.AlwaysBlock) []string {
	var out []string
	for _, it := range blk.Sens.Items {
		out = append(out, design.ExprSignals(it.Signal)...)
	}
	return out
}

// Paths returns the touched instance paths in deterministic order.
func (ex *Extraction) Paths() []string {
	out := make([]string, 0, len(ex.slices))
	for p := range ex.slices {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}
