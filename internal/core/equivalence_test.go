package core

import (
	"testing"

	"factor/internal/arm"
)

// TestTransformedEquivalentOnKeptOutputs verifies the heart of the
// methodology: the extracted environment preserves the exact behavior
// of the surrounding logic. For every MUT and both extraction modes,
// the transformed module is co-simulated against the full chip with
// identical stimulus on the shared primary inputs; every primary
// output the extraction kept must match the full design cycle by
// cycle (including X). Any slicing bug — a dropped branch, a missing
// side input, broken case priority — breaks this.
func TestTransformedEquivalentOnKeptOutputs(t *testing.T) {
	d := armDesign(t)
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	params := map[string]int64{"W": 16}

	for _, mode := range []Mode{ModeFlat, ModeComposed} {
		for _, mut := range arm.MUTs() {
			ext := NewExtractor(d, mode)
			tr, err := Transform(ext, mut.Path, full.Netlist, TransformOptions{TopParams: params})
			if err != nil {
				t.Fatalf("%v/%s: %v", mode, mut.Module, err)
			}
			if err := coSimulate(full.Netlist, tr.Netlist, 30, 42); err != nil {
				t.Errorf("%v/%s: %v", mode, mut.Module, err)
			}
		}
	}
}
