package core

import (
	"context"
	"errors"
	"testing"

	"factor/internal/factorerr"
)

// TestExtractAllQuarantinesPanic injects a panic into one MUT's pooled
// extraction (test hook) and checks the degradation policy: the
// sibling MUT completes, the panicking MUT is quarantined with a
// structured, MUT-tagged error, and the aggregate maps to the partial
// exit code.
func TestExtractAllQuarantinesPanic(t *testing.T) {
	d := analyzeSmall(t)
	extractPanicHook = func(mutPath string) {
		if mutPath == "u_mid.u_leaf" {
			panic("injected extraction panic")
		}
	}
	defer func() { extractPanicHook = nil }()

	e := NewExtractor(d, ModeComposed)
	exs, err := e.ExtractAll(context.Background(), []string{"u_mid", "u_mid.u_leaf"}, 4)
	if err == nil {
		t.Fatal("expected an aggregate error")
	}
	if exs[0] == nil {
		t.Fatal("healthy sibling MUT was lost")
	}
	if exs[1] != nil {
		t.Fatal("panicking MUT produced a result")
	}
	if !errors.Is(err, &factorerr.Error{Stage: factorerr.StageExtract, Code: factorerr.CodePanic}) {
		t.Fatalf("aggregate %v does not contain a structured extract panic", err)
	}
	fe := factorerr.Find(err, &factorerr.Error{Code: factorerr.CodePanic})
	if fe == nil || fe.MUT != "u_mid.u_leaf" || len(fe.Stack) == 0 {
		t.Fatalf("panic error lacks MUT tag or stack: %+v", fe)
	}
	if got := factorerr.ExitCode(err); got != factorerr.ExitPartial {
		t.Fatalf("exit code = %d, want %d (one MUT succeeded)", got, factorerr.ExitPartial)
	}
}

// TestTransformAllQuarantinesPanic: same contract at the transform
// (extract + synthesize) pool.
func TestTransformAllQuarantinesPanic(t *testing.T) {
	d := analyzeSmall(t)
	transformPanicHook = func(mutPath string) {
		if mutPath == "u_mid" {
			panic("injected transform panic")
		}
	}
	defer func() { transformPanicHook = nil }()

	e := NewExtractor(d, ModeComposed)
	trs, err := TransformAll(context.Background(), e, []string{"u_mid.u_leaf", "u_mid"}, nil, TransformOptions{}, 4)
	if err == nil {
		t.Fatal("expected an aggregate error")
	}
	if trs[0] == nil || trs[1] != nil {
		t.Fatalf("degradation: results = [%v, %v], want [ok, nil]", trs[0] != nil, trs[1] != nil)
	}
	if !errors.Is(err, &factorerr.Error{Stage: factorerr.StageSynth, Code: factorerr.CodePanic}) {
		t.Fatalf("aggregate %v does not contain a structured synth-stage panic", err)
	}
	if got := factorerr.ExitCode(err); got != factorerr.ExitPartial {
		t.Fatalf("exit code = %d, want %d", got, factorerr.ExitPartial)
	}
}

// TestAllMUTsFailingIsNotPartial: when every MUT fails there is nothing
// partial about the outcome — the aggregate maps to a plain error exit.
func TestAllMUTsFailingIsNotPartial(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	exs, err := e.ExtractAll(context.Background(), []string{"no.such.a", "no.such.b"}, 2)
	if err == nil {
		t.Fatal("expected an aggregate error")
	}
	if exs[0] != nil || exs[1] != nil {
		t.Fatal("failed MUTs produced results")
	}
	if got := factorerr.ExitCode(err); got != factorerr.ExitError {
		t.Fatalf("exit code = %d, want %d (no MUT succeeded)", got, factorerr.ExitError)
	}
}

// TestExtractAllCancellation: a canceled context marks the MUTs with
// structured canceled errors and maps to the partial exit code.
func TestExtractAllCancellation(t *testing.T) {
	d := analyzeSmall(t)
	e := NewExtractor(d, ModeComposed)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := e.ExtractAll(ctx, []string{"u_mid", "u_mid.u_leaf"}, 2)
	if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCanceled}) {
		t.Fatalf("error = %v, want structured canceled error", err)
	}
	if got := factorerr.ExitCode(err); got != factorerr.ExitPartial {
		t.Fatalf("exit code = %d, want %d", got, factorerr.ExitPartial)
	}
}
