package netlist

// Compiled-netlist snapshots: a versioned, CRC-framed binary encoding
// of the Compiled CSR view plus the interface names a simulator needs
// (PI/PO names, in order). The codec exists so a fleet of shard worker
// processes can share one immutable compiled design with zero per-shard
// build cost: the parent compiles once and writes the snapshot, every
// worker loads it and gets a Netlist whose Compile() returns the
// decoded view directly — no parsing, no synthesis, no topological
// sort, no level computation.
//
// Wire format (version 1), all integers little-endian:
//
//	[0:4]   magic "FCSN"
//	[4:8]   version  uint32
//	[8:16]  payload length uint64
//	[16:20] CRC32 (IEEE) of payload uint32
//	[20:24] reserved (zero)
//	[24:]   payload
//
// The payload is a count header (numGates, numLevels, lenFaninList,
// lenFanoutList, numPIs, numPOs, numDFFs, nameLen as uint64) followed
// by the flat arrays of the Compiled view — Kind, FaninStart/FaninList,
// FanoutStart/FanoutList, FanoutRefs, Order, Pos, Level, LevelStart,
// PIs, POs, DFFs — each padded to 4-byte alignment, then a name blob
// (uint32-length-prefixed strings: netlist name, PI names, PO names).
//
// On little-endian hosts the decoder does not copy the arrays: each
// int32 section is aliased directly onto the snapshot buffer
// (unsafe.Slice), so loading a design is O(validation) and the mapped
// bytes can be shared read-only between processes. Big-endian hosts
// (and unaligned buffers) fall back to a portable copying decode. In
// both cases the decoded view — like every Compiled — must be treated
// as immutable, and the caller must not mutate the snapshot buffer
// while the view is live.
//
// Decoding rejects damage with distinct factorerr codes: a truncated
// or bit-flipped frame (bad magic, short buffer, CRC mismatch, shape
// validation failure) is CodeSnapshotCorrupt; a well-formed frame from
// a different codec version is CodeSnapshotVersion.

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"unsafe"

	"factor/internal/factorerr"
)

// SnapshotVersion is the current snapshot codec version.
const SnapshotVersion = 1

const (
	snapMagic      = "FCSN"
	snapHeaderSize = 24
	snapCountWords = 8
)

var hostLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

func snapCorrupt(format string, args ...interface{}) error {
	return factorerr.New(factorerr.StageIO, factorerr.CodeSnapshotCorrupt, "snapshot: "+format, args...)
}

// Snapshot encodes the netlist's compiled view and interface names as
// a self-contained binary frame. The encoding is a pure function of
// the compiled view and the PI/PO/name slices, so two structurally
// identical netlists produce byte-identical snapshots. Diagnostic
// per-gate names and scopes are not captured: a snapshot carries the
// simulation view, not the full IR.
func (n *Netlist) Snapshot() []byte {
	c := n.Compile()
	ng := c.NumGates

	nameLen := 4 + len(n.Name)
	for _, s := range n.PINames {
		nameLen += 4 + len(s)
	}
	for _, s := range n.PONames {
		nameLen += 4 + len(s)
	}

	payload := 8 * snapCountWords
	payload += pad4(ng)              // Kind
	payload += 4 * (ng + 1)          // FaninStart
	payload += 4 * len(c.FaninList)  // FaninList
	payload += 4 * (ng + 1)          // FanoutStart
	payload += 4 * len(c.FanoutList) // FanoutList
	payload += 8 * len(c.FanoutRefs) // FanoutRefs
	payload += 4 * ng * 3            // Order, Pos, Level
	payload += 4 * (c.NumLevels + 1) // LevelStart
	payload += 4 * (len(c.PIs) + len(c.POs) + len(c.DFFs))
	payload += nameLen

	buf := make([]byte, snapHeaderSize+payload)
	copy(buf, snapMagic)
	binary.LittleEndian.PutUint32(buf[4:], SnapshotVersion)
	binary.LittleEndian.PutUint64(buf[8:], uint64(payload))

	p := buf[snapHeaderSize:]
	off := 0
	putU64 := func(v uint64) {
		binary.LittleEndian.PutUint64(p[off:], v)
		off += 8
	}
	putU64(uint64(ng))
	putU64(uint64(c.NumLevels))
	putU64(uint64(len(c.FaninList)))
	putU64(uint64(len(c.FanoutList)))
	putU64(uint64(len(c.PIs)))
	putU64(uint64(len(c.POs)))
	putU64(uint64(len(c.DFFs)))
	putU64(uint64(nameLen))

	copy(p[off:], c.Kind)
	off += pad4(ng)
	putI32 := func(xs []int32) {
		for _, x := range xs {
			binary.LittleEndian.PutUint32(p[off:], uint32(x))
			off += 4
		}
	}
	putI32(c.FaninStart)
	putI32(c.FaninList)
	putI32(c.FanoutStart)
	putI32(c.FanoutList)
	for _, fr := range c.FanoutRefs {
		binary.LittleEndian.PutUint32(p[off:], uint32(fr.ID))
		binary.LittleEndian.PutUint32(p[off+4:], uint32(fr.Level))
		off += 8
	}
	putI32(c.Order)
	putI32(c.Pos)
	putI32(c.Level)
	putI32(c.LevelStart)
	putI32(c.PIs)
	putI32(c.POs)
	putI32(c.DFFs)
	putStr := func(s string) {
		binary.LittleEndian.PutUint32(p[off:], uint32(len(s)))
		off += 4
		copy(p[off:], s)
		off += len(s)
	}
	putStr(n.Name)
	for _, s := range n.PINames {
		putStr(s)
	}
	for _, s := range n.PONames {
		putStr(s)
	}
	if off != payload {
		invariantf("netlist: snapshot encoder wrote %d of %d payload bytes", off, payload)
	}
	binary.LittleEndian.PutUint32(buf[16:], crc32.ChecksumIEEE(p))
	return buf
}

// WriteSnapshotFile writes the netlist's snapshot to path.
func (n *Netlist) WriteSnapshotFile(path string) error {
	if err := os.WriteFile(path, n.Snapshot(), 0o644); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return nil
}

// ReadSnapshotFile loads a snapshot file written by WriteSnapshotFile.
func ReadSnapshotFile(path string) (*Netlist, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return LoadSnapshot(data)
}

// LoadSnapshot decodes a snapshot frame into a ready-to-simulate
// Netlist: gate kinds and fanins are reconstructed from the CSR
// arrays, PI/PO/DFF lists and names are restored, and the decoded
// Compiled view (plus the topological order) is pre-seeded into the
// netlist's caches — a subsequent Compile() returns the decoded view
// without building anything. The frame is CRC-checked and the arrays
// are shape-validated before anything aliases them, so a truncated or
// bit-flipped snapshot fails with a structured error instead of
// corrupting a simulation.
//
// data is retained: on little-endian hosts the compiled arrays alias
// it. Treat the buffer as immutable for the lifetime of the netlist.
func LoadSnapshot(data []byte) (*Netlist, error) {
	if len(data) < snapHeaderSize {
		return nil, snapCorrupt("frame too short: %d bytes", len(data))
	}
	if string(data[:4]) != snapMagic {
		return nil, snapCorrupt("bad magic %q", data[:4])
	}
	if v := binary.LittleEndian.Uint32(data[4:]); v != SnapshotVersion {
		return nil, factorerr.New(factorerr.StageIO, factorerr.CodeSnapshotVersion,
			"snapshot: version %d, this build reads version %d", v, SnapshotVersion)
	}
	plen := binary.LittleEndian.Uint64(data[8:])
	if plen != uint64(len(data)-snapHeaderSize) {
		return nil, snapCorrupt("payload length %d does not match frame (%d bytes after header)",
			plen, len(data)-snapHeaderSize)
	}
	if r := binary.LittleEndian.Uint32(data[20:]); r != 0 {
		return nil, snapCorrupt("reserved header field is %#x, want 0", r)
	}
	p := data[snapHeaderSize:]
	if got := crc32.ChecksumIEEE(p); got != binary.LittleEndian.Uint32(data[16:]) {
		return nil, snapCorrupt("CRC mismatch")
	}

	d := &snapDecoder{p: p}
	ng := d.count()
	numLevels := d.count()
	nFanin := d.count()
	nFanout := d.count()
	nPIs := d.count()
	nPOs := d.count()
	nDFFs := d.count()
	nameLen := d.count()
	if d.err != nil {
		return nil, d.err
	}

	c := &Compiled{NumGates: ng, NumLevels: numLevels}
	c.Kind = d.bytes(ng)
	d.align4()
	c.FaninStart = d.int32s(ng + 1)
	c.FaninList = d.int32s(nFanin)
	c.FanoutStart = d.int32s(ng + 1)
	c.FanoutList = d.int32s(nFanout)
	c.FanoutRefs = d.fanoutRefs(nFanout)
	c.Order = d.int32s(ng)
	c.Pos = d.int32s(ng)
	c.Level = d.int32s(ng)
	c.LevelStart = d.int32s(numLevels + 1)
	c.PIs = d.int32s(nPIs)
	c.POs = d.int32s(nPOs)
	c.DFFs = d.int32s(nDFFs)

	nameStart := d.off
	name := d.str()
	piNames := make([]string, 0, nPIs)
	for i := 0; i < nPIs; i++ {
		piNames = append(piNames, d.str())
	}
	poNames := make([]string, 0, nPOs)
	for i := 0; i < nPOs; i++ {
		poNames = append(poNames, d.str())
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off-nameStart != nameLen || d.off != len(p) {
		return nil, snapCorrupt("trailing bytes: consumed %d of %d payload bytes", d.off, len(p))
	}

	if err := validateCompiled(c); err != nil {
		return nil, err
	}
	c.IsPO = make([]bool, ng)
	for _, po := range c.POs {
		c.IsPO[po] = true
	}

	// Reconstruct the Netlist view over the validated arrays. This is
	// plain struct assembly — no topological sort, no level or fanout
	// computation — and the derived-view caches are seeded with the
	// decoded artifacts, so nothing is ever recompiled.
	n := &Netlist{Name: name, PINames: piNames, PONames: poNames}
	n.Gates = make([]*Gate, ng)
	faninInts := make([]int, nFanin)
	for i, f := range c.FaninList {
		faninInts[i] = int(f)
	}
	for id := 0; id < ng; id++ {
		n.Gates[id] = &Gate{
			ID:    id,
			Kind:  GateKind(c.Kind[id]),
			Fanin: faninInts[c.FaninStart[id]:c.FaninStart[id+1]:c.FaninStart[id+1]],
		}
	}
	n.PIs = toInt(c.PIs)
	n.POs = toInt(c.POs)
	n.DFFs = toInt(c.DFFs)
	for i, pi := range n.PIs {
		n.Gates[pi].Name = piNames[i]
	}
	n.topoCache = toInt(c.Order)
	n.compiledCache = c
	return n, nil
}

// snapDecoder walks the payload, aliasing sections zero-copy where the
// host byte order and buffer alignment allow and copying otherwise.
type snapDecoder struct {
	p   []byte
	off int
	err error
}

func (d *snapDecoder) fail(format string, args ...interface{}) {
	if d.err == nil {
		d.err = snapCorrupt(format, args...)
	}
}

// count reads one uint64 count and bounds it to a sane int.
func (d *snapDecoder) count() int {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.p) {
		d.fail("truncated count header")
		return 0
	}
	v := binary.LittleEndian.Uint64(d.p[d.off:])
	d.off += 8
	if v > uint64(len(d.p)) {
		d.fail("count %d exceeds payload size %d", v, len(d.p))
		return 0
	}
	return int(v)
}

func (d *snapDecoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if n < 0 || d.off+n > len(d.p) {
		d.fail("truncated section at offset %d (need %d bytes, have %d)", d.off, n, len(d.p)-d.off)
		return nil
	}
	s := d.p[d.off : d.off+n : d.off+n]
	d.off += n
	return s
}

func (d *snapDecoder) bytes(n int) []byte { return d.take(n) }

func (d *snapDecoder) align4() {
	d.take(pad4(d.off) - d.off)
}

func (d *snapDecoder) int32s(n int) []int32 {
	raw := d.take(4 * n)
	if raw == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*int32)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(binary.LittleEndian.Uint32(raw[4*i:]))
	}
	return out
}

func (d *snapDecoder) fanoutRefs(n int) []FanoutRef {
	raw := d.take(8 * n)
	if raw == nil || n == 0 {
		return nil
	}
	if hostLittleEndian && uintptr(unsafe.Pointer(&raw[0]))%4 == 0 {
		return unsafe.Slice((*FanoutRef)(unsafe.Pointer(&raw[0])), n)
	}
	out := make([]FanoutRef, n)
	for i := range out {
		out[i].ID = int32(binary.LittleEndian.Uint32(raw[8*i:]))
		out[i].Level = int32(binary.LittleEndian.Uint32(raw[8*i+4:]))
	}
	return out
}

func (d *snapDecoder) str() string {
	if d.err != nil {
		return ""
	}
	if d.off+4 > len(d.p) {
		d.fail("truncated string length at offset %d", d.off)
		return ""
	}
	n := int(binary.LittleEndian.Uint32(d.p[d.off:]))
	d.off += 4
	raw := d.take(n)
	return string(raw)
}

// validateCompiled shape-checks a decoded view so that every index a
// simulator will chase is in range and the precomputed order/levels are
// internally consistent. A snapshot that passes cannot make the sweep
// engines read out of bounds or loop: the checks imply the order is a
// permutation that is topological over combinational edges and that the
// level partition matches it.
func validateCompiled(c *Compiled) error {
	ng := c.NumGates
	if ng == 0 {
		if c.NumLevels != 0 || len(c.FaninList) != 0 || len(c.FanoutList) != 0 {
			return snapCorrupt("empty netlist with non-empty arrays")
		}
	} else if c.NumLevels < 1 || c.NumLevels > ng {
		return snapCorrupt("NumLevels %d out of range for %d gates", c.NumLevels, ng)
	}

	checkCSR := func(what string, start []int32, listLen int) error {
		if start[0] != 0 || int(start[ng]) != listLen {
			return snapCorrupt("%s CSR does not span its list (start %d, end %d, len %d)",
				what, start[0], start[ng], listLen)
		}
		for i := 0; i < ng; i++ {
			if start[i] > start[i+1] {
				return snapCorrupt("%s CSR decreases at gate %d", what, i)
			}
		}
		return nil
	}
	if err := checkCSR("fanin", c.FaninStart, len(c.FaninList)); err != nil {
		return err
	}
	if err := checkCSR("fanout", c.FanoutStart, len(c.FanoutList)); err != nil {
		return err
	}
	for i, f := range c.FaninList {
		if f < 0 || int(f) >= ng {
			return snapCorrupt("fanin %d at index %d out of range", f, i)
		}
	}
	for i, f := range c.FanoutList {
		if f < 0 || int(f) >= ng {
			return snapCorrupt("fanout %d at index %d out of range", f, i)
		}
	}

	for id := 0; id < ng; id++ {
		kind := GateKind(c.Kind[id])
		if kind < Const0 || kind > DFF {
			return snapCorrupt("gate %d has unknown kind %d", id, c.Kind[id])
		}
		if arity := kind.Arity(); int(c.FaninStart[id+1]-c.FaninStart[id]) != arity {
			return snapCorrupt("gate %d (%s) has %d fanins, want %d",
				id, kind, c.FaninStart[id+1]-c.FaninStart[id], arity)
		}
	}

	// Order must be a permutation with Pos as its inverse, and
	// topological over combinational edges: every combinational gate
	// appears after all of its fanins.
	if len(c.Order) != ng || len(c.Pos) != ng || len(c.Level) != ng {
		return snapCorrupt("order/pos/level length mismatch")
	}
	for i, id := range c.Order {
		if id < 0 || int(id) >= ng || c.Pos[id] != int32(i) {
			return snapCorrupt("order is not a permutation at position %d", i)
		}
	}
	for id := 0; id < ng; id++ {
		kind := GateKind(c.Kind[id])
		if !kind.Combinational() {
			if c.Level[id] != 0 {
				return snapCorrupt("non-combinational gate %d has level %d", id, c.Level[id])
			}
			continue
		}
		max := int32(-1)
		for _, f := range c.Fanins(id) {
			if c.Pos[f] >= c.Pos[id] {
				return snapCorrupt("order is not topological: gate %d before its fanin %d", id, f)
			}
			if c.Level[f] > max {
				max = c.Level[f]
			}
		}
		if c.Level[id] != max+1 {
			return snapCorrupt("gate %d level %d inconsistent with fanins (want %d)", id, c.Level[id], max+1)
		}
		if int(c.Level[id]) >= c.NumLevels {
			return snapCorrupt("gate %d level %d exceeds NumLevels %d", id, c.Level[id], c.NumLevels)
		}
	}

	// LevelStart must be the CSR partition of the Level histogram.
	if len(c.LevelStart) != c.NumLevels+1 {
		return snapCorrupt("LevelStart has %d entries, want %d", len(c.LevelStart), c.NumLevels+1)
	}
	if ng > 0 {
		counts := make([]int32, c.NumLevels+1)
		for _, l := range c.Level {
			counts[l+1]++
		}
		for l := 0; l < c.NumLevels; l++ {
			counts[l+1] += counts[l]
		}
		for l := 0; l <= c.NumLevels; l++ {
			if c.LevelStart[l] != counts[l] {
				return snapCorrupt("LevelStart[%d] = %d, want %d", l, c.LevelStart[l], counts[l])
			}
		}
	}

	// FanoutRefs must mirror FanoutList with the reader's level (or -1
	// for DFF readers).
	if len(c.FanoutRefs) != len(c.FanoutList) {
		return snapCorrupt("FanoutRefs length %d does not match FanoutList %d", len(c.FanoutRefs), len(c.FanoutList))
	}
	for i, fo := range c.FanoutList {
		want := c.Level[fo]
		if GateKind(c.Kind[fo]) == DFF {
			want = -1
		}
		if c.FanoutRefs[i].ID != fo || c.FanoutRefs[i].Level != want {
			return snapCorrupt("FanoutRefs[%d] = {%d,%d}, want {%d,%d}",
				i, c.FanoutRefs[i].ID, c.FanoutRefs[i].Level, fo, want)
		}
	}

	// Interface lists: PIs are exactly the Input gates in ascending
	// order, DFFs exactly the DFF gates; POs may name any gate.
	if err := checkKindList("PI", c.PIs, c.Kind, uint8(Input), ng); err != nil {
		return err
	}
	if err := checkKindList("DFF", c.DFFs, c.Kind, uint8(DFF), ng); err != nil {
		return err
	}
	for _, po := range c.POs {
		if po < 0 || int(po) >= ng {
			return snapCorrupt("PO %d out of range", po)
		}
	}
	return nil
}

func checkKindList(what string, list []int32, kinds []uint8, kind uint8, ng int) error {
	total := 0
	for _, k := range kinds {
		if k == kind {
			total++
		}
	}
	if len(list) != total {
		return snapCorrupt("%d %s entries for %d gates of that kind", len(list), what, total)
	}
	prev := int32(-1)
	for _, id := range list {
		if id <= prev || int(id) >= ng {
			return snapCorrupt("%s list not ascending in range at %d", what, id)
		}
		if kinds[id] != kind {
			return snapCorrupt("%s list entry %d has wrong kind", what, id)
		}
		prev = id
	}
	return nil
}

func toInt(xs []int32) []int {
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}

// pad4 rounds n up to the next multiple of 4.
func pad4(n int) int { return (n + 3) &^ 3 }
