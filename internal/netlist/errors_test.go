package netlist

import (
	"errors"
	"testing"
)

// TestTopoOrderErrReturnsCycleError checks the non-panicking cycle
// path returns a typed *CycleError naming a gate on the cycle.
func TestTopoOrderErrReturnsCycleError(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.SetFanin(g1, 1, g2)
	_, err := n.TopoOrderErr()
	var ce *CycleError
	if !errors.As(err, &ce) {
		t.Fatalf("TopoOrderErr = %v, want *CycleError", err)
	}
	if ce.Netlist != "cyc" {
		t.Errorf("CycleError.Netlist = %q, want cyc", ce.Netlist)
	}
	if ce.Gate != g1 && ce.Gate != g2 {
		t.Errorf("CycleError.Gate = %d, want a gate on the cycle (%d or %d)", ce.Gate, g1, g2)
	}
}

// TestTopoOrderPanicsWithCycleError: the panicking variant must carry
// the same typed value so RecoverInvariant can convert it.
func TestTopoOrderPanicsWithCycleError(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.SetFanin(g1, 1, g2)
	defer func() {
		r := recover()
		if _, ok := r.(*CycleError); !ok {
			t.Fatalf("TopoOrder panicked with %T, want *CycleError", r)
		}
	}()
	n.TopoOrder()
	t.Fatal("TopoOrder should have panicked on a cyclic netlist")
}

// TestRecoverInvariant converts construction panics into errors at a
// simulated API boundary and re-raises unrelated panics.
func TestRecoverInvariant(t *testing.T) {
	build := func(fn func(n *Netlist)) (err error) {
		defer RecoverInvariant(&err)
		n := New("x")
		fn(n)
		return nil
	}
	if err := build(func(n *Netlist) { n.AddGate(And, 0, 1) }); err == nil {
		t.Error("out-of-range fanin should surface as an error")
	} else if _, ok := err.(*InvariantError); !ok {
		t.Errorf("got %T, want *InvariantError", err)
	}
	if err := build(func(n *Netlist) { n.AddGate(Not) }); err == nil {
		t.Error("wrong arity should surface as an error")
	}
	if err := build(func(n *Netlist) { n.AddOutput("o", 7) }); err == nil {
		t.Error("bad output driver should surface as an error")
	}
	if err := build(func(n *Netlist) {
		a := n.AddInput("a")
		g1 := n.AddGate(And, a, a)
		g2 := n.AddGate(Or, g1, a)
		n.SetFanin(g1, 1, g2)
		n.TopoOrder()
	}); err == nil {
		t.Error("cycle panic should surface as an error")
	}

	// Unrelated panics must propagate.
	didPanic := false
	func() {
		defer func() {
			if recover() != nil {
				didPanic = true
			}
		}()
		_ = build(func(n *Netlist) { panic("unrelated") })
	}()
	if !didPanic {
		t.Error("RecoverInvariant swallowed an unrelated panic")
	}
}

// TestTopoOrderErrNotCachedAcrossFix: after fixing the cycle the order
// must be recomputed successfully.
func TestTopoOrderErrNotCachedAcrossFix(t *testing.T) {
	n := New("fix")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.SetFanin(g1, 1, g2)
	if _, err := n.TopoOrderErr(); err == nil {
		t.Fatal("expected cycle error")
	}
	n.SetFanin(g1, 1, a) // break the cycle
	order, err := n.TopoOrderErr()
	if err != nil {
		t.Fatalf("after fix: %v", err)
	}
	if len(order) != len(n.Gates) {
		t.Errorf("order has %d entries, want %d", len(order), len(n.Gates))
	}
}
