package netlist

import (
	"fmt"
	"strings"
)

// DotOptions controls Graphviz emission.
type DotOptions struct {
	// HighlightScope draws gates whose Scope has this prefix in a
	// distinct color (e.g. the module under test inside a transformed
	// netlist).
	HighlightScope string
	// MaxGates truncates huge graphs (0 = no limit); a truncated graph
	// carries a "truncated" note node.
	MaxGates int
}

// EmitDot renders the netlist as a Graphviz digraph for inspection of
// extracted environments and transformed modules.
func (n *Netlist) EmitDot(opts DotOptions) string {
	var sb strings.Builder
	sb.WriteString("digraph ")
	sb.WriteString(sanitizeName(n.Name))
	sb.WriteString(" {\n  rankdir=LR;\n  node [fontsize=9];\n")

	limit := len(n.Gates)
	if opts.MaxGates > 0 && opts.MaxGates < limit {
		limit = opts.MaxGates
		sb.WriteString("  truncated [shape=plaintext, label=\"(truncated)\"];\n")
	}

	shape := func(k GateKind) string {
		switch k {
		case Input:
			return "invtriangle"
		case DFF:
			return "box"
		case Const0, Const1:
			return "plaintext"
		case Mux:
			return "trapezium"
		default:
			return "ellipse"
		}
	}
	for id := 0; id < limit; id++ {
		g := n.Gates[id]
		label := g.Kind.String()
		if g.Name != "" {
			label += "\\n" + g.Name
		}
		attrs := fmt.Sprintf("shape=%s, label=\"%s\"", shape(g.Kind), label)
		if opts.HighlightScope != "" && strings.HasPrefix(g.Scope, opts.HighlightScope) {
			attrs += ", style=filled, fillcolor=lightblue"
		}
		fmt.Fprintf(&sb, "  g%d [%s];\n", id, attrs)
		for pin, f := range g.Fanin {
			if f >= limit {
				continue
			}
			style := ""
			if g.Kind == Mux && pin == 0 {
				style = " [style=dashed]" // select input
			}
			fmt.Fprintf(&sb, "  g%d -> g%d%s;\n", f, id, style)
		}
	}
	for i, po := range n.POs {
		if po >= limit {
			continue
		}
		fmt.Fprintf(&sb, "  po%d [shape=triangle, label=\"%s\"];\n", i, n.PONames[i])
		fmt.Fprintf(&sb, "  g%d -> po%d;\n", po, i)
	}
	sb.WriteString("}\n")
	return sb.String()
}
