package netlist

import (
	"strings"
	"testing"
	"testing/quick"
)

// buildAdder returns a 1-bit full adder netlist: sum = a^b^cin,
// cout = ab | cin(a^b).
func buildAdder() *Netlist {
	n := New("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	cin := n.AddInput("cin")
	axb := n.AddGate(Xor, a, b)
	sum := n.AddGate(Xor, axb, cin)
	ab := n.AddGate(And, a, b)
	cab := n.AddGate(And, cin, axb)
	cout := n.AddGate(Or, ab, cab)
	n.AddOutput("sum", sum)
	n.AddOutput("cout", cout)
	return n
}

// buildCounter returns a 2-bit counter: q0 toggles, q1 = q1 ^ q0.
func buildCounter() *Netlist {
	n := New("cnt2")
	en := n.AddInput("en")
	q0 := n.AddGate(DFF, en) // placeholder fanin, fixed below
	q1 := n.AddGate(DFF, en)
	d0 := n.AddGate(Xor, q0, en)
	carry := n.AddGate(And, q0, en)
	d1 := n.AddGate(Xor, q1, carry)
	n.SetFanin(q0, 0, d0)
	n.SetFanin(q1, 0, d1)
	n.AddOutput("q0", q0)
	n.AddOutput("q1", q1)
	return n
}

func TestAdderStructure(t *testing.T) {
	n := buildAdder()
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 5 {
		t.Errorf("NumGates = %d, want 5", n.NumGates())
	}
	if len(n.PIs) != 3 || len(n.POs) != 2 {
		t.Errorf("PIs=%d POs=%d", len(n.PIs), len(n.POs))
	}
	if n.PI("cin") != 2 || n.PI("nope") != -1 {
		t.Errorf("PI lookup broken")
	}
	if n.PO("sum") < 0 || n.PO("nope") != -1 {
		t.Errorf("PO lookup broken")
	}
}

func TestLevelize(t *testing.T) {
	n := buildAdder()
	lv := n.Levelize()
	if lv[n.PI("a")] != 0 {
		t.Errorf("input level = %d, want 0", lv[n.PI("a")])
	}
	if lv[n.PO("sum")] != 2 {
		t.Errorf("sum level = %d, want 2", lv[n.PO("sum")])
	}
	if lv[n.PO("cout")] != 3 {
		t.Errorf("cout level = %d, want 3", lv[n.PO("cout")])
	}
}

func TestTopoOrderProperty(t *testing.T) {
	n := buildCounter()
	order := n.TopoOrder()
	if len(order) != len(n.Gates) {
		t.Fatalf("topo order has %d entries, want %d", len(order), len(n.Gates))
	}
	pos := make([]int, len(n.Gates))
	for i, id := range order {
		pos[id] = i
	}
	for _, g := range n.Gates {
		if !g.Kind.Combinational() {
			continue
		}
		for _, f := range g.Fanin {
			if pos[f] > pos[g.ID] {
				t.Errorf("gate %d appears before its fanin %d", g.ID, f)
			}
		}
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	n := New("cyc")
	a := n.AddInput("a")
	g1 := n.AddGate(And, a, a)
	g2 := n.AddGate(Or, g1, a)
	n.SetFanin(g1, 1, g2) // cycle g1 -> g2 -> g1
	if err := n.Validate(); err == nil {
		t.Fatal("expected cycle error")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error %q does not mention cycle", err)
	}
}

func TestDFFFeedbackIsNotACycle(t *testing.T) {
	n := buildCounter()
	if err := n.Validate(); err != nil {
		t.Fatalf("DFF feedback flagged as cycle: %v", err)
	}
}

func TestSequentialDepth(t *testing.T) {
	// Chain of 3 flops: d -> f1 -> f2 -> f3 -> out
	n := New("chain")
	d := n.AddInput("d")
	f1 := n.AddGate(DFF, d)
	f2 := n.AddGate(DFF, f1)
	f3 := n.AddGate(DFF, f2)
	n.AddOutput("q", f3)
	if got := n.SequentialDepth(); got != 3 {
		t.Errorf("chain depth = %d, want 3", got)
	}

	if got := buildAdder().SequentialDepth(); got != 0 {
		t.Errorf("combinational depth = %d, want 0", got)
	}

	// Self-loop flop counts once.
	n2 := New("loop")
	in := n2.AddInput("in")
	f := n2.AddGate(DFF, in)
	x := n2.AddGate(Xor, f, in)
	n2.SetFanin(f, 0, x)
	n2.AddOutput("q", f)
	if got := n2.SequentialDepth(); got != 1 {
		t.Errorf("self-loop depth = %d, want 1", got)
	}
}

func TestStats(t *testing.T) {
	n := buildCounter()
	s := n.ComputeStats()
	if s.DFFs != 2 || s.PIs != 1 || s.POs != 2 {
		t.Errorf("stats: %+v", s)
	}
	if s.Gates != 5 {
		t.Errorf("Gates = %d, want 5 (3 comb + 2 dff)", s.Gates)
	}
	if s.ByKind[Xor] != 2 || s.ByKind[DFF] != 2 {
		t.Errorf("ByKind: %v", s.ByKind)
	}
	if !strings.Contains(s.KindCounts(), "dff=2") {
		t.Errorf("KindCounts: %s", s.KindCounts())
	}
}

func TestClone(t *testing.T) {
	n := buildCounter()
	c := n.Clone()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Mutating the clone must not affect the original.
	c.Gates[2].Fanin[0] = 0
	c.PINames[0] = "changed"
	if n.Gates[2].Fanin[0] == 0 && n.Gates[2].ID == 2 && len(n.Gates[2].Fanin) > 0 {
		// Original d0 fanin was q0 (gate 1); ensure unchanged.
		if n.Gates[3].Fanin[0] == 0 {
			t.Error("clone shares fanin storage with original")
		}
	}
	if n.PINames[0] == "changed" {
		t.Error("clone shares name storage with original")
	}
}

func TestValidateCatchesNameDuplicates(t *testing.T) {
	n := New("dup")
	n.AddInput("a")
	n.AddInput("a")
	if err := n.Validate(); err == nil {
		t.Error("duplicate PI names not caught")
	}
	n2 := New("dup2")
	a := n2.AddInput("a")
	n2.AddOutput("y", a)
	n2.AddOutput("y", a)
	if err := n2.Validate(); err == nil {
		t.Error("duplicate PO names not caught")
	}
}

func TestAddGatePanics(t *testing.T) {
	n := New("p")
	mustPanic := func(name string, f func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		f()
	}
	mustPanic("bad arity", func() { n.AddGate(And, 0) })
	mustPanic("bad fanin", func() { n.AddGate(Not, 42) })
	mustPanic("bad output", func() { n.AddOutput("y", 42) })
}

func TestFanouts(t *testing.T) {
	n := buildAdder()
	fo := n.Fanouts()
	a := n.PI("a")
	if len(fo[a]) != 2 { // a feeds axb and ab
		t.Errorf("fanout of a = %v, want 2 readers", fo[a])
	}
}

func TestEmitVerilogParsesBack(t *testing.T) {
	// The emitted structural Verilog must be self-consistent enough to
	// contain each net exactly once as a wire/reg and reference module
	// ports.
	n := buildCounter()
	v := n.EmitVerilog()
	for _, want := range []string{"module cnt2", "input en;", "output q0;", "always @(posedge clk)", "endmodule"} {
		if !strings.Contains(v, want) {
			t.Errorf("emitted Verilog missing %q:\n%s", want, v)
		}
	}
}

func TestSanitizeName(t *testing.T) {
	cases := map[string]string{
		"a.b[3]": "a_b_3_",
		"3x":     "_3x",
		"":       "unnamed",
		"ok_1":   "ok_1",
	}
	for in, want := range cases {
		if got := sanitizeName(in); got != want {
			t.Errorf("sanitizeName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Property: for random DAG construction, TopoOrder is a permutation and
// respects edges.
func TestTopoOrderQuick(t *testing.T) {
	f := func(seed []byte) bool {
		n := New("rand")
		n.AddInput("i0")
		n.AddInput("i1")
		for _, b := range seed {
			sz := len(n.Gates)
			f1 := int(b) % sz
			f2 := int(b>>3) % sz
			switch b % 5 {
			case 0:
				n.AddGate(And, f1, f2)
			case 1:
				n.AddGate(Or, f1, f2)
			case 2:
				n.AddGate(Not, f1)
			case 3:
				n.AddGate(Xor, f1, f2)
			case 4:
				n.AddGate(DFF, f1)
			}
		}
		order := n.TopoOrder()
		if len(order) != len(n.Gates) {
			return false
		}
		pos := make([]int, len(n.Gates))
		seen := make([]bool, len(n.Gates))
		for i, id := range order {
			if seen[id] {
				return false
			}
			seen[id] = true
			pos[id] = i
		}
		for _, g := range n.Gates {
			if !g.Kind.Combinational() {
				continue
			}
			for _, fi := range g.Fanin {
				if pos[fi] > pos[g.ID] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestGateKindStrings(t *testing.T) {
	if And.String() != "and" || DFF.String() != "dff" || Mux.String() != "mux" {
		t.Error("GateKind.String broken")
	}
	if GateKind(99).String() == "" {
		t.Error("unknown kind should still render")
	}
}
