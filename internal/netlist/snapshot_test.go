package netlist

import (
	"bytes"
	"errors"
	"hash/crc32"
	"slices"
	"testing"
	"unsafe"

	"factor/internal/factorerr"
)

// snapTestNetlist builds a small sequential circuit exercising every
// gate kind, multi-fanout stems and a DFF feedback loop.
func snapTestNetlist() *Netlist {
	n := New("snap_test")
	a := n.AddInput("a")
	b := n.AddInput("b")
	sel := n.AddInput("sel")
	c0 := n.AddGate(Const0)
	c1 := n.AddGate(Const1)
	and := n.AddGate(And, a, b)
	or := n.AddGate(Or, and, c1)
	x := n.AddGate(Xor, or, b)
	inv := n.AddGate(Not, x)
	nand := n.AddGate(Nand, inv, a)
	nor := n.AddGate(Nor, nand, c0)
	xn := n.AddGate(Xnor, nor, and)
	buf := n.AddGate(Buf, xn)
	ff := n.AddGate(DFF, buf)
	mux := n.AddGate(Mux, sel, ff, buf)
	ff2 := n.AddGate(DFF, a)
	n.SetFanin(ff2, 0, mux) // feedback through the mux
	n.AddOutput("q", mux)
	n.AddOutput("r", ff2)
	n.AddOutput("q2", mux) // repeated PO driver
	return n
}

func compiledEqual(t *testing.T, a, b *Compiled) {
	t.Helper()
	if a.NumGates != b.NumGates || a.NumLevels != b.NumLevels {
		t.Fatalf("shape mismatch: gates %d/%d levels %d/%d", a.NumGates, b.NumGates, a.NumLevels, b.NumLevels)
	}
	check := func(what string, ok bool) {
		if !ok {
			t.Errorf("%s differs after snapshot round-trip", what)
		}
	}
	check("Kind", slices.Equal(a.Kind, b.Kind))
	check("FaninStart", slices.Equal(a.FaninStart, b.FaninStart))
	check("FaninList", slices.Equal(a.FaninList, b.FaninList))
	check("FanoutStart", slices.Equal(a.FanoutStart, b.FanoutStart))
	check("FanoutList", slices.Equal(a.FanoutList, b.FanoutList))
	check("FanoutRefs", slices.Equal(a.FanoutRefs, b.FanoutRefs))
	check("Order", slices.Equal(a.Order, b.Order))
	check("Pos", slices.Equal(a.Pos, b.Pos))
	check("Level", slices.Equal(a.Level, b.Level))
	check("LevelStart", slices.Equal(a.LevelStart, b.LevelStart))
	check("PIs", slices.Equal(a.PIs, b.PIs))
	check("POs", slices.Equal(a.POs, b.POs))
	check("DFFs", slices.Equal(a.DFFs, b.DFFs))
	check("IsPO", slices.Equal(a.IsPO, b.IsPO))
}

func TestSnapshotRoundTrip(t *testing.T) {
	n := snapTestNetlist()
	data := n.Snapshot()
	n2, err := LoadSnapshot(data)
	if err != nil {
		t.Fatalf("LoadSnapshot: %v", err)
	}
	compiledEqual(t, n.Compile(), n2.Compile())
	if n2.Name != n.Name {
		t.Errorf("name %q, want %q", n2.Name, n.Name)
	}
	if !slices.Equal(n2.PINames, n.PINames) || !slices.Equal(n2.PONames, n.PONames) {
		t.Errorf("interface names differ: %v/%v vs %v/%v", n2.PINames, n2.PONames, n.PINames, n.PONames)
	}
	if !slices.Equal(n2.PIs, n.PIs) || !slices.Equal(n2.POs, n.POs) || !slices.Equal(n2.DFFs, n.DFFs) {
		t.Errorf("interface gate lists differ")
	}
	for id, g := range n.Gates {
		g2 := n2.Gates[id]
		if g2.Kind != g.Kind || !slices.Equal(g2.Fanin, g.Fanin) {
			t.Errorf("gate %d: kind/fanin differ: %v(%v) vs %v(%v)", id, g2.Kind, g2.Fanin, g.Kind, g.Fanin)
		}
	}
	if err := n2.Validate(); err != nil {
		t.Errorf("reconstructed netlist fails Validate: %v", err)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	n := snapTestNetlist()
	a := n.Snapshot()
	if !bytes.Equal(a, n.Snapshot()) {
		t.Fatal("two snapshots of the same netlist differ")
	}
	n2, err := LoadSnapshot(a)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, n2.Snapshot()) {
		t.Fatal("re-encoding a loaded snapshot is not byte-identical")
	}
}

func TestSnapshotEmpty(t *testing.T) {
	n := New("empty")
	n2, err := LoadSnapshot(n.Snapshot())
	if err != nil {
		t.Fatalf("empty netlist round-trip: %v", err)
	}
	if len(n2.Gates) != 0 || n2.Name != "empty" {
		t.Fatalf("empty netlist decoded as %d gates name %q", len(n2.Gates), n2.Name)
	}
}

// TestSnapshotLoadDoesNotRecompile is the satellite guard: a
// snapshot-loaded netlist must serve Compile() from the decoded view —
// zero allocations, same pointer — instead of rebuilding the CSR view.
func TestSnapshotLoadDoesNotRecompile(t *testing.T) {
	n2, err := LoadSnapshot(snapTestNetlist().Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	seeded := n2.compiledCache
	if seeded == nil {
		t.Fatal("LoadSnapshot did not seed the compiled cache")
	}
	if got := n2.Compile(); got != seeded {
		t.Fatal("Compile() rebuilt the view instead of returning the decoded snapshot")
	}
	if allocs := testing.AllocsPerRun(100, func() { _ = n2.Compile() }); allocs != 0 {
		t.Fatalf("Compile() on a snapshot-loaded netlist allocates (%v allocs/run)", allocs)
	}
	// The topological order is seeded too: TopoOrder must not re-sort.
	if allocs := testing.AllocsPerRun(100, func() { _ = n2.TopoOrder() }); allocs != 0 {
		t.Fatalf("TopoOrder() on a snapshot-loaded netlist allocates (%v allocs/run)", allocs)
	}
}

// TestSnapshotZeroCopy pins the aliasing contract on little-endian
// hosts: the decoded CSR arrays point into the snapshot buffer.
func TestSnapshotZeroCopy(t *testing.T) {
	if !hostLittleEndian {
		t.Skip("copying decode on big-endian hosts")
	}
	data := snapTestNetlist().Snapshot()
	if uintptr(unsafe.Pointer(&data[0]))%4 != 0 {
		t.Skip("buffer landed unaligned; decoder falls back to copying")
	}
	n2, err := LoadSnapshot(data)
	if err != nil {
		t.Fatal(err)
	}
	c := n2.compiledCache
	start := uintptr(unsafe.Pointer(&data[0]))
	end := start + uintptr(len(data))
	for _, sec := range []struct {
		name string
		p    unsafe.Pointer
	}{
		{"Kind", unsafe.Pointer(unsafe.SliceData(c.Kind))},
		{"FaninList", unsafe.Pointer(unsafe.SliceData(c.FaninList))},
		{"FanoutRefs", unsafe.Pointer(unsafe.SliceData(c.FanoutRefs))},
		{"Order", unsafe.Pointer(unsafe.SliceData(c.Order))},
	} {
		if p := uintptr(sec.p); p < start || p >= end {
			t.Errorf("%s was copied, not aliased onto the snapshot buffer", sec.name)
		}
	}
}

func TestSnapshotRejectsDamage(t *testing.T) {
	good := snapTestNetlist().Snapshot()
	wantCode := func(t *testing.T, data []byte, code factorerr.Code) {
		t.Helper()
		_, err := LoadSnapshot(data)
		if err == nil {
			t.Fatal("damaged snapshot loaded without error")
		}
		if !errors.Is(err, &factorerr.Error{Code: code}) {
			t.Fatalf("got %v, want code %v", err, code)
		}
	}

	t.Run("truncated", func(t *testing.T) {
		for _, cut := range []int{0, 3, snapHeaderSize - 1, snapHeaderSize + 5, len(good) / 2, len(good) - 1} {
			wantCode(t, good[:cut], factorerr.CodeSnapshotCorrupt)
		}
	})
	t.Run("bad-magic", func(t *testing.T) {
		data := slices.Clone(good)
		data[0] ^= 0xff
		wantCode(t, data, factorerr.CodeSnapshotCorrupt)
	})
	t.Run("version", func(t *testing.T) {
		data := slices.Clone(good)
		data[4] = 99
		wantCode(t, data, factorerr.CodeSnapshotVersion)
	})
	t.Run("payload-bitflips", func(t *testing.T) {
		// Every payload bit is covered by the CRC, so any single flip
		// must be rejected.
		for _, off := range []int{snapHeaderSize, snapHeaderSize + 8, len(good) - 1, (snapHeaderSize + len(good)) / 2} {
			data := slices.Clone(good)
			data[off] ^= 0x10
			wantCode(t, data, factorerr.CodeSnapshotCorrupt)
		}
	})
	t.Run("crc-field-flip", func(t *testing.T) {
		data := slices.Clone(good)
		data[17] ^= 0x01
		wantCode(t, data, factorerr.CodeSnapshotCorrupt)
	})
	t.Run("forged-crc-bad-shape", func(t *testing.T) {
		// Re-stamping the CRC after a payload mutation defeats the
		// frame check; shape validation must still reject the arrays.
		data := slices.Clone(good)
		// Clobber the count header's numGates.
		data[snapHeaderSize] ^= 0x01
		restampSnapshotCRC(data)
		wantCode(t, data, factorerr.CodeSnapshotCorrupt)
	})
}

func TestSnapshotFile(t *testing.T) {
	n := snapTestNetlist()
	path := t.TempDir() + "/nl.snap"
	if err := n.WriteSnapshotFile(path); err != nil {
		t.Fatal(err)
	}
	n2, err := ReadSnapshotFile(path)
	if err != nil {
		t.Fatal(err)
	}
	compiledEqual(t, n.Compile(), n2.Compile())
	if _, err := ReadSnapshotFile(path + ".missing"); err == nil {
		t.Fatal("missing file loaded without error")
	}
}

// buildScriptNetlist deterministically grows a netlist from a byte
// script: acyclic by construction (fanins always reference existing
// gates; SetFanin only rewires DFF D-inputs, which may legally form
// sequential loops).
func buildScriptNetlist(script []byte) *Netlist {
	n := New("fuzz")
	kinds := []GateKind{Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Mux, DFF, Const0, Const1}
	n.AddInput("i0")
	for i, b := range script {
		switch {
		case b < 16:
			n.AddInput(string(rune('a' + int(b))))
		default:
			kind := kinds[int(b)%len(kinds)]
			fanin := make([]int, kind.Arity())
			for j := range fanin {
				fanin[j] = (i*7 + j*13 + int(b)) % len(n.Gates)
			}
			n.AddGate(kind, fanin...)
		}
	}
	// Rewire every DFF's D-input to a late gate: sequential feedback.
	for _, ff := range n.DFFs {
		n.SetFanin(ff, 0, (ff*31+len(n.Gates)-1)%len(n.Gates))
	}
	for i, g := range n.Gates {
		if i%5 == 0 {
			n.AddOutput("o"+string(rune('0'+i%10))+string(rune('a'+(i/10)%26)), g.ID)
		}
	}
	return n
}

// restampSnapshotCRC recomputes the frame CRC over a (possibly
// mutated) payload — test-only, for reaching the shape validators
// behind the CRC check.
func restampSnapshotCRC(data []byte) {
	if len(data) < snapHeaderSize {
		return
	}
	crc := crc32.ChecksumIEEE(data[snapHeaderSize:])
	data[16] = byte(crc)
	data[17] = byte(crc >> 8)
	data[18] = byte(crc >> 16)
	data[19] = byte(crc >> 24)
}

// FuzzCompiledSnapshot fuzzes the codec from both ends: a netlist
// grown from the input script must round-trip to a deeply equal
// compiled view, every input-derived truncation or bit flip of its
// frame must be rejected with a snapshot-corrupt or snapshot-version
// error (never a panic), and the raw input bytes themselves must never
// crash the decoder.
func FuzzCompiledSnapshot(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{3, 40, 41, 42, 100, 200, 9, 18, 27, 5})
	f.Add(snapTestNetlist().Snapshot())
	f.Fuzz(func(t *testing.T, script []byte) {
		// Leg 1: raw bytes into the decoder — error or success, no panic.
		if n, err := LoadSnapshot(script); err == nil {
			// Accidental valid frame: it must re-encode byte-identically.
			if !bytes.Equal(n.Snapshot(), script) {
				t.Fatal("decoder accepted a frame the encoder would not produce")
			}
		}

		if len(script) > 4096 {
			script = script[:4096]
		}
		n := buildScriptNetlist(script)
		data := n.Snapshot()
		n2, err := LoadSnapshot(data)
		if err != nil {
			t.Fatalf("round-trip failed: %v", err)
		}
		compiledEqual(t, n.Compile(), n2.Compile())

		if len(script) == 0 {
			return
		}
		seed := int(script[0]) + len(script)

		// Leg 2: truncation at a script-derived point.
		cut := seed % len(data)
		if _, err := LoadSnapshot(data[:cut]); err == nil {
			t.Fatalf("truncation to %d of %d bytes accepted", cut, len(data))
		} else if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeSnapshotCorrupt}) &&
			!errors.Is(err, &factorerr.Error{Code: factorerr.CodeSnapshotVersion}) {
			t.Fatalf("truncation rejected with unstructured error: %v", err)
		}

		// Leg 3: single bit flip at a script-derived offset.
		flipped := slices.Clone(data)
		off := (seed * 31) % len(flipped)
		flipped[off] ^= 1 << (seed % 8)
		if n3, err := LoadSnapshot(flipped); err == nil {
			// The only undetectable flips are those that cancel out —
			// impossible for a single bit — so acceptance means the flip
			// hit a byte the codec provably ignores. There are none:
			// every header byte is checked and every payload byte is
			// CRC-covered.
			_ = n3
			t.Fatalf("single bit flip at offset %d accepted", off)
		} else if !errors.Is(err, &factorerr.Error{Code: factorerr.CodeSnapshotCorrupt}) &&
			!errors.Is(err, &factorerr.Error{Code: factorerr.CodeSnapshotVersion}) {
			t.Fatalf("bit flip rejected with unstructured error: %v", err)
		}
	})
}
