package netlist

// Compiled is a flattened, read-only view of a Netlist in compressed
// sparse row (CSR) form: gate kinds, fanins and fanouts live in
// contiguous int32 arrays instead of per-gate structs, with the
// topological order, its inverse permutation and combinational levels
// precomputed. Simulators iterate these arrays directly, so the hot
// evaluation loops touch a handful of cache lines per gate and never
// chase a *Gate pointer or hash a map key.
//
// A Compiled view is built once per netlist by Compile, memoized
// alongside the TopoOrder cache, and shared read-only by every
// simulator clone and worker goroutine; mutating the netlist (AddGate,
// SetFanin) invalidates it. All slices must be treated as immutable by
// callers.
type Compiled struct {
	// NumGates is len(Netlist.Gates).
	NumGates int

	// Kind[id] is the GateKind of gate id, stored as uint8 for density.
	Kind []uint8

	// FaninStart/FaninList are the CSR fanin adjacency: the fanins of
	// gate id are FaninList[FaninStart[id]:FaninStart[id+1]], in pin
	// order. FaninStart has NumGates+1 entries.
	FaninStart []int32
	FaninList  []int32

	// FanoutStart/FanoutList are the CSR fanout adjacency: the readers
	// of gate id are FanoutList[FanoutStart[id]:FanoutStart[id+1]].
	// A gate wired to the same driver on two pins appears twice.
	FanoutStart []int32
	FanoutList  []int32

	// FanoutRefs mirrors FanoutList with the reader's combinational
	// level precomputed (Level == -1 flags a DFF reader, i.e. a
	// clock-boundary edge). The event-driven sweep dispatches fanout
	// edges from this array with a single contiguous load instead of
	// separate Kind and Level lookups per edge.
	FanoutRefs []FanoutRef

	// Order is the memoized topological order (see TopoOrder); Pos is
	// its inverse permutation (Pos[Order[i]] == i). Pos doubles as a
	// cone-locality key: faults whose sites are close in Pos have
	// overlapping fanout cones far more often than not.
	Order []int32
	Pos   []int32

	// Level[id] is the combinational level of gate id (see Levelize);
	// NumLevels is max(Level)+1. Event-driven evaluation sweeps gates
	// level by level, so a gate is visited only after all its fanins
	// have settled.
	Level     []int32
	NumLevels int

	// LevelStart is a CSR partition of capacity by level: the gates
	// with Level == l number LevelStart[l+1]-LevelStart[l], so a flat
	// NumGates-sized buffer indexed by these offsets can hold every
	// level's worklist segment without per-level slices. LevelStart has
	// NumLevels+1 entries.
	LevelStart []int32

	// PIs, POs and DFFs mirror the Netlist slices as int32.
	PIs, POs, DFFs []int32

	// IsPO[id] reports whether gate id drives at least one primary
	// output — the only gates whose divergence can detect a fault.
	IsPO []bool
}

// FanoutRef is one precomputed fanout edge: the reader gate and its
// combinational level, or Level == -1 for DFF readers.
type FanoutRef struct {
	ID    int32
	Level int32
}

// Fanins returns the fanin gate IDs of gate id in pin order.
func (c *Compiled) Fanins(id int) []int32 {
	return c.FaninList[c.FaninStart[id]:c.FaninStart[id+1]]
}

// Fanouts returns the reader gate IDs of gate id.
func (c *Compiled) Fanouts(id int) []int32 {
	return c.FanoutList[c.FanoutStart[id]:c.FanoutStart[id+1]]
}

// Compile returns the memoized CSR view of the netlist, building it on
// first use. Like TopoOrder it panics with a *CycleError if the
// combinational logic is cyclic; callers holding untrusted netlists
// should Validate first. Concurrent first use is safe, and the result
// is shared: treat every slice as read-only.
func (n *Netlist) Compile() *Compiled {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	if n.compiledCache != nil {
		return n.compiledCache
	}
	order, err := n.topoOrderLocked()
	if err != nil {
		panic(err)
	}
	n.compiledCache = n.buildCompiled(order, n.fanoutsLocked())
	return n.compiledCache
}

func (n *Netlist) buildCompiled(order []int, fanouts [][]int) *Compiled {
	ng := len(n.Gates)
	c := &Compiled{
		NumGates:    ng,
		Kind:        make([]uint8, ng),
		FaninStart:  make([]int32, ng+1),
		FanoutStart: make([]int32, ng+1),
		Order:       make([]int32, ng),
		Pos:         make([]int32, ng),
		Level:       make([]int32, ng),
		IsPO:        make([]bool, ng),
	}
	nFanin, nFanout := 0, 0
	for id, g := range n.Gates {
		c.Kind[id] = uint8(g.Kind)
		nFanin += len(g.Fanin)
		nFanout += len(fanouts[id])
	}
	c.FaninList = make([]int32, 0, nFanin)
	c.FanoutList = make([]int32, 0, nFanout)
	for id, g := range n.Gates {
		c.FaninStart[id] = int32(len(c.FaninList))
		for _, f := range g.Fanin {
			c.FaninList = append(c.FaninList, int32(f))
		}
		c.FanoutStart[id] = int32(len(c.FanoutList))
		for _, fo := range fanouts[id] {
			c.FanoutList = append(c.FanoutList, int32(fo))
		}
	}
	c.FaninStart[ng] = int32(len(c.FaninList))
	c.FanoutStart[ng] = int32(len(c.FanoutList))

	for i, id := range order {
		c.Order[i] = int32(id)
		c.Pos[id] = int32(i)
	}
	// Combinational levels, computed over the supplied order so this
	// runs under the same lock that memoizes it (Levelize would
	// re-enter TopoOrder).
	for _, id := range order {
		g := n.Gates[id]
		if !g.Kind.Combinational() {
			c.Level[id] = 0
			continue
		}
		max := int32(-1)
		for _, f := range g.Fanin {
			if c.Level[f] > max {
				max = c.Level[f]
			}
		}
		c.Level[id] = max + 1
		if int(c.Level[id])+1 > c.NumLevels {
			c.NumLevels = int(c.Level[id]) + 1
		}
	}
	if ng > 0 && c.NumLevels == 0 {
		c.NumLevels = 1
	}

	c.LevelStart = make([]int32, c.NumLevels+1)
	for _, l := range c.Level {
		c.LevelStart[l+1]++
	}
	for l := 0; l < c.NumLevels; l++ {
		c.LevelStart[l+1] += c.LevelStart[l]
	}

	c.FanoutRefs = make([]FanoutRef, len(c.FanoutList))
	for i, fo := range c.FanoutList {
		lvl := c.Level[fo]
		if GateKind(c.Kind[fo]) == DFF {
			lvl = -1
		}
		c.FanoutRefs[i] = FanoutRef{ID: fo, Level: lvl}
	}

	c.PIs = toInt32(n.PIs)
	c.POs = toInt32(n.POs)
	c.DFFs = toInt32(n.DFFs)
	for _, po := range n.POs {
		c.IsPO[po] = true
	}
	return c
}

func toInt32(xs []int) []int32 {
	out := make([]int32, len(xs))
	for i, x := range xs {
		out[i] = int32(x)
	}
	return out
}
