// Package netlist_test: black-box determinism check through the real
// front end. The service's content-addressed store keys on snapshot
// bytes, which is only sound if parse + synth + snapshot is a pure
// function of the source text — an in-memory re-snapshot (covered by
// TestSnapshotDeterministic) is a weaker claim than a full re-build.
package netlist_test

import (
	"bytes"
	"testing"

	"factor/internal/designgen"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/verilog"
)

func buildSnapshot(t *testing.T, text string) []byte {
	t.Helper()
	src, err := verilog.Parse("design.v", text)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	res, err := synth.Synthesize(src, "top", synth.Options{})
	if err != nil {
		t.Fatalf("synth: %v", err)
	}
	return res.Netlist.Snapshot()
}

func TestSnapshotStableAcrossRebuilds(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		text := designgen.Generate(seed, designgen.DefaultConfig()).Text()
		base := buildSnapshot(t, text)
		for i := 0; i < 3; i++ {
			if got := buildSnapshot(t, text); !bytes.Equal(got, base) {
				t.Fatalf("seed %d rebuild %d: snapshot bytes differ", seed, i)
			}
		}
		// And the loaded form re-snapshots to the same bytes.
		nl, err := netlist.LoadSnapshot(base)
		if err != nil {
			t.Fatalf("seed %d: load: %v", seed, err)
		}
		if !bytes.Equal(nl.Snapshot(), base) {
			t.Fatalf("seed %d: load+resnapshot differs", seed)
		}
	}
}
