package netlist

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// randomNetlist builds a random sequential DAG for structural checks.
func randomNetlist(rng *rand.Rand, nIn, nGates int) *Netlist {
	n := New("rnd")
	var ids []int
	for i := 0; i < nIn; i++ {
		ids = append(ids, n.AddInput(string(rune('a'+i))))
	}
	pick := func() int { return ids[rng.Intn(len(ids))] }
	kinds := []GateKind{Buf, Not, And, Or, Nand, Nor, Xor, Xnor, Mux}
	for i := 0; i < nGates; i++ {
		k := kinds[rng.Intn(len(kinds))]
		var id int
		switch k.Arity() {
		case 1:
			id = n.AddGate(k, pick())
		case 2:
			id = n.AddGate(k, pick(), pick())
		default:
			id = n.AddGate(k, pick(), pick(), pick())
		}
		ids = append(ids, id)
		if rng.Intn(6) == 0 {
			ids = append(ids, n.AddGate(DFF, id))
		}
	}
	n.AddOutput("y", ids[len(ids)-1])
	n.AddOutput("z", pick())
	return n
}

// TestCompiledMatchesNetlist checks the CSR view against the per-gate
// representation: kinds, fanins, fanouts, topological order, inverse
// permutation, levels and the PI/PO/DFF mirrors.
func TestCompiledMatchesNetlist(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 8; trial++ {
		n := randomNetlist(rng, 1+rng.Intn(5), 20+rng.Intn(120))
		c := n.Compile()

		if c.NumGates != len(n.Gates) {
			t.Fatalf("NumGates = %d, want %d", c.NumGates, len(n.Gates))
		}
		fanouts := n.Fanouts()
		levels := n.Levelize()
		order := n.TopoOrder()
		for id, g := range n.Gates {
			if GateKind(c.Kind[id]) != g.Kind {
				t.Fatalf("gate %d: kind %v, want %v", id, GateKind(c.Kind[id]), g.Kind)
			}
			fi := c.Fanins(id)
			if len(fi) != len(g.Fanin) {
				t.Fatalf("gate %d: %d fanins, want %d", id, len(fi), len(g.Fanin))
			}
			for p, f := range g.Fanin {
				if int(fi[p]) != f {
					t.Fatalf("gate %d pin %d: fanin %d, want %d", id, p, fi[p], f)
				}
			}
			fo := c.Fanouts(id)
			if len(fo) != len(fanouts[id]) {
				t.Fatalf("gate %d: %d fanouts, want %d", id, len(fo), len(fanouts[id]))
			}
			for j, r := range fanouts[id] {
				if int(fo[j]) != r {
					t.Fatalf("gate %d fanout %d: %d, want %d", id, j, fo[j], r)
				}
			}
			if int(c.Level[id]) != levels[id] {
				t.Fatalf("gate %d: level %d, want %d", id, c.Level[id], levels[id])
			}
		}
		for i, id := range order {
			if int(c.Order[i]) != id {
				t.Fatalf("Order[%d] = %d, want %d", i, c.Order[i], id)
			}
			if int(c.Pos[id]) != i {
				t.Fatalf("Pos[%d] = %d, want %d (not the inverse of Order)", id, c.Pos[id], i)
			}
		}
		maxLevel := 0
		for _, l := range levels {
			if l > maxLevel {
				maxLevel = l
			}
		}
		if c.NumLevels != maxLevel+1 {
			t.Fatalf("NumLevels = %d, want %d", c.NumLevels, maxLevel+1)
		}
		for i, pi := range n.PIs {
			if int(c.PIs[i]) != pi {
				t.Fatalf("PIs[%d] = %d, want %d", i, c.PIs[i], pi)
			}
		}
		for i, po := range n.POs {
			if int(c.POs[i]) != po {
				t.Fatalf("POs[%d] = %d, want %d", i, c.POs[i], po)
			}
			if !c.IsPO[po] {
				t.Fatalf("IsPO[%d] false for PO driver", po)
			}
		}
		for i, f := range n.DFFs {
			if int(c.DFFs[i]) != f {
				t.Fatalf("DFFs[%d] = %d, want %d", i, c.DFFs[i], f)
			}
		}
		nPO := 0
		for _, b := range c.IsPO {
			if b {
				nPO++
			}
		}
		distinct := map[int]bool{}
		for _, po := range n.POs {
			distinct[po] = true
		}
		if nPO != len(distinct) {
			t.Fatalf("IsPO marks %d gates, want %d", nPO, len(distinct))
		}
	}
}

// TestCompileMemoized checks that Compile returns the same view on
// repeat calls and rebuilds after mutation, like the TopoOrder cache.
func TestCompileMemoized(t *testing.T) {
	n := buildSmallDag()
	c1 := n.Compile()
	if c2 := n.Compile(); c1 != c2 {
		t.Error("Compile should return the memoized view on repeat calls")
	}

	g := n.AddGate(Not, 0)
	c3 := n.Compile()
	if c3 == c1 {
		t.Fatal("stale compiled view after AddGate")
	}
	if c3.NumGates != c1.NumGates+1 {
		t.Fatalf("rebuilt view has %d gates, want %d", c3.NumGates, c1.NumGates+1)
	}

	n.SetFanin(g, 0, 1)
	c4 := n.Compile()
	if c4 == c3 {
		t.Fatal("stale compiled view after SetFanin")
	}
	if got := c4.Fanins(g); len(got) != 1 || got[0] != 1 {
		t.Fatalf("rebuilt fanins of gate %d = %v, want [1]", g, got)
	}
}

// TestCompileConcurrentFirstUse races the first Compile call across
// goroutines (run under -race in CI) — the simulator-clone startup
// pattern.
func TestCompileConcurrentFirstUse(t *testing.T) {
	n := buildSmallDag()
	const goroutines = 16
	views := make([]*Compiled, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			views[g] = n.Compile()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if views[g] != views[0] {
			t.Fatalf("goroutine %d saw a different compiled view", g)
		}
	}
}

// TestFanoutsMemoized checks that repeated Fanouts calls share the
// cached slice-of-slices and that mutation invalidates it.
func TestFanoutsMemoized(t *testing.T) {
	n := buildSmallDag()
	f1 := n.Fanouts()
	f2 := n.Fanouts()
	if &f1[0] != &f2[0] {
		t.Error("Fanouts should return the memoized slice on repeat calls")
	}

	// AddGate invalidates: the new reader must appear.
	g := n.AddGate(Not, 0)
	f3 := n.Fanouts()
	if len(f3) != len(f1)+1 {
		t.Fatalf("stale fanouts after AddGate: len %d, want %d", len(f3), len(f1)+1)
	}
	found := false
	for _, r := range f3[0] {
		if r == g {
			found = true
		}
	}
	if !found {
		t.Error("new gate missing from recomputed fanouts of its driver")
	}

	// SetFanin invalidates: the reader moves from gate 0 to gate 1.
	n.SetFanin(g, 0, 1)
	f4 := n.Fanouts()
	for _, r := range f4[0] {
		if r == g {
			t.Error("stale fanout on old driver after SetFanin")
		}
	}
	found = false
	for _, r := range f4[1] {
		if r == g {
			found = true
		}
	}
	if !found {
		t.Error("fanout missing on new driver after SetFanin")
	}
}

// TestFanoutsConsistentWithCompiled pins the two fanout representations
// to each other on a random netlist.
func TestFanoutsConsistentWithCompiled(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	n := randomNetlist(rng, 4, 80)
	c := n.Compile()
	fanouts := n.Fanouts()
	if !reflect.DeepEqual(len(fanouts), c.NumGates) {
		t.Fatalf("fanout table has %d rows, want %d", len(fanouts), c.NumGates)
	}
	for id := range fanouts {
		fo := c.Fanouts(id)
		if len(fo) != len(fanouts[id]) {
			t.Fatalf("gate %d: CSR has %d fanouts, slice form has %d", id, len(fo), len(fanouts[id]))
		}
	}
}
