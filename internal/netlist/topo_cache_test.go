package netlist

import (
	"reflect"
	"sync"
	"testing"
)

func buildSmallDag() *Netlist {
	n := New("t")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(And, a, b)
	g2 := n.AddGate(Not, g1)
	n.AddOutput("y", g2)
	return n
}

// TestTopoOrderMemoized checks that repeated calls share the cached
// slice and that mutation invalidates it.
func TestTopoOrderMemoized(t *testing.T) {
	n := buildSmallDag()
	o1 := n.TopoOrder()
	o2 := n.TopoOrder()
	if &o1[0] != &o2[0] {
		t.Error("TopoOrder should return the memoized slice on repeat calls")
	}

	// AddGate invalidates: the new gate must appear in the fresh order.
	g := n.AddGate(Not, 0)
	o3 := n.TopoOrder()
	if len(o3) != len(o1)+1 {
		t.Fatalf("stale topo order after AddGate: len %d, want %d", len(o3), len(o1)+1)
	}
	found := false
	for _, id := range o3 {
		if id == g {
			found = true
		}
	}
	if !found {
		t.Error("new gate missing from recomputed topo order")
	}

	// SetFanin invalidates too (order constraints may change).
	before := append([]int(nil), n.TopoOrder()...)
	n.SetFanin(g, 0, 1)
	after := n.TopoOrder()
	if len(before) != len(after) {
		t.Error("SetFanin changed topo length")
	}
}

// TestTopoOrderConcurrentFirstUse races many goroutines on the first
// TopoOrder call of a shared netlist (run under -race in CI): this is
// the cloned-worker startup pattern the ATPG pool relies on.
func TestTopoOrderConcurrentFirstUse(t *testing.T) {
	n := buildSmallDag()
	const goroutines = 16
	orders := make([][]int, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			orders[g] = n.TopoOrder()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if !reflect.DeepEqual(orders[0], orders[g]) {
			t.Fatalf("goroutine %d saw a different topo order", g)
		}
	}
}
