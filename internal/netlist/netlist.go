// Package netlist defines the gate-level intermediate representation
// shared by the synthesizer, the logic/fault simulators and the ATPG
// engine. A Netlist is a directed graph of single-output gates over a
// small cell library (constants, inverters, 2-input logic, multiplexers
// and D flip-flops), with named primary inputs and outputs.
//
// All sequential elements are positive-edge D flip-flops of a single
// implicit clock domain; synchronous resets and clock enables are
// synthesized into the D-input logic cone. This matches the class of
// netlists the FACTOR flow hands to its gate-level ATPG tool.
package netlist

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// GateKind enumerates the cell library.
type GateKind int

// Gate kinds. NInputs documents the fanin arity; And/Or/Nand/Nor/Xor/
// Xnor are strictly 2-input (wider operations are built as trees).
const (
	Const0 GateKind = iota // no fanin
	Const1                 // no fanin
	Input                  // primary input, no fanin
	Buf                    // 1 fanin
	Not                    // 1 fanin
	And                    // 2 fanin
	Or                     // 2 fanin
	Nand                   // 2 fanin
	Nor                    // 2 fanin
	Xor                    // 2 fanin
	Xnor                   // 2 fanin
	Mux                    // 3 fanin: sel, d0 (sel=0), d1 (sel=1)
	DFF                    // 1 fanin: D; Q is the gate output
)

var gateKindNames = [...]string{
	Const0: "const0", Const1: "const1", Input: "input",
	Buf: "buf", Not: "not", And: "and", Or: "or",
	Nand: "nand", Nor: "nor", Xor: "xor", Xnor: "xnor",
	Mux: "mux", DFF: "dff",
}

func (k GateKind) String() string {
	if int(k) < len(gateKindNames) {
		return gateKindNames[k]
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// Arity returns the number of fanins a gate of this kind must have.
func (k GateKind) Arity() int {
	switch k {
	case Const0, Const1, Input:
		return 0
	case Buf, Not, DFF:
		return 1
	case Mux:
		return 3
	default:
		return 2
	}
}

// Combinational reports whether the kind computes a combinational
// function of its fanins (false for Input, constants and DFF).
func (k GateKind) Combinational() bool {
	switch k {
	case Const0, Const1, Input, DFF:
		return false
	}
	return true
}

// Gate is one node of the netlist. ID is its index in Netlist.Gates.
type Gate struct {
	ID    int
	Kind  GateKind
	Fanin []int
	Name  string // diagnostic net name (hierarchical), may be empty
	// Scope is the hierarchical instance path ("u_core.u_alu.") of the
	// module whose elaboration created this gate; it lets the ATPG flow
	// target only the faults inside a module under test after
	// flattening. Empty means the top module (or unknown provenance).
	Scope string
}

// InvariantError is the panic value raised when a construction-time
// invariant is violated (wrong fanin arity, out-of-range gate ID).
// Construction calls are hot paths used by the synthesizer on
// internally-generated IDs, so they panic rather than return errors;
// public API boundaries that construct netlists from less-trusted input
// convert the panic back into an error with RecoverInvariant.
type InvariantError struct {
	Msg string
}

func (e *InvariantError) Error() string { return e.Msg }

func invariantf(format string, args ...interface{}) {
	panic(&InvariantError{Msg: fmt.Sprintf(format, args...)})
}

// CycleError reports a combinational cycle found during topological
// ordering, naming one gate on the cycle.
type CycleError struct {
	Netlist string
	Gate    int
	Kind    GateKind
	Name    string
}

func (e *CycleError) Error() string {
	return fmt.Sprintf("netlist %s: combinational cycle through gate %d (%s %s)",
		e.Netlist, e.Gate, e.Kind, e.Name)
}

// RecoverInvariant is a deferred boundary that converts a netlist
// invariant or cycle panic into an error assigned to *errp; any other
// panic propagates. It lets public constructors (synth.Synthesize,
// core.Transform) return structured errors on malformed logic while the
// construction primitives stay panic-based for provably-internal
// invariants.
func RecoverInvariant(errp *error) {
	r := recover()
	if r == nil {
		return
	}
	switch e := r.(type) {
	case *InvariantError:
		*errp = e
	case *CycleError:
		*errp = e
	default:
		panic(r)
	}
}

// Netlist is a gate-level circuit.
type Netlist struct {
	Name  string
	Gates []*Gate

	// PIs lists primary input gate IDs in declaration order; PINames
	// holds the corresponding names (parallel slice).
	PIs     []int
	PINames []string

	// POs lists the driver gate ID of each primary output, with names
	// in PONames (parallel slice).
	POs     []int
	PONames []string

	// DFFs lists the IDs of all DFF gates, in creation order.
	DFFs []int

	// topoMu guards the derived-view caches below. TopoOrder, Fanouts
	// and Compile are all on the construction path of every simulator
	// and every per-fault PODEM search, so their results are memoized;
	// the mutex makes first use safe when workers sharing the netlist
	// race to compute them. AddGate and SetFanin invalidate all three.
	topoMu        sync.Mutex
	topoCache     []int
	fanoutCache   [][]int
	compiledCache *Compiled
}

// New returns an empty netlist with the given name.
func New(name string) *Netlist {
	return &Netlist{Name: name}
}

// AddGate appends a gate and returns its ID. Fanin arity is validated;
// fanin IDs must already exist (the graph is constructed in topological
// order except for DFF feedback, see SetFanin).
func (n *Netlist) AddGate(kind GateKind, fanin ...int) int {
	if len(fanin) != kind.Arity() {
		invariantf("netlist: %s gate requires %d fanins, got %d", kind, kind.Arity(), len(fanin))
	}
	for _, f := range fanin {
		if f < 0 || f >= len(n.Gates) {
			invariantf("netlist: fanin %d out of range (have %d gates)", f, len(n.Gates))
		}
	}
	id := len(n.Gates)
	n.Gates = append(n.Gates, &Gate{ID: id, Kind: kind, Fanin: append([]int(nil), fanin...)})
	if kind == DFF {
		n.DFFs = append(n.DFFs, id)
	}
	n.invalidateTopo()
	return id
}

// AddInput appends a primary input gate.
func (n *Netlist) AddInput(name string) int {
	id := n.AddGate(Input)
	n.Gates[id].Name = name
	n.PIs = append(n.PIs, id)
	n.PINames = append(n.PINames, name)
	return id
}

// AddOutput marks driver as a primary output with the given name.
func (n *Netlist) AddOutput(name string, driver int) {
	if driver < 0 || driver >= len(n.Gates) {
		invariantf("netlist: output %s driver %d out of range", name, driver)
	}
	n.POs = append(n.POs, driver)
	n.PONames = append(n.PONames, name)
}

// SetFanin rewires one fanin of a gate. Used to close DFF feedback
// loops (the D input may be created after the flop) and by optimizer
// rewrites.
func (n *Netlist) SetFanin(gate, idx, driver int) {
	g := n.Gates[gate]
	if idx < 0 || idx >= len(g.Fanin) {
		invariantf("netlist: fanin index %d out of range for %s gate %d", idx, g.Kind, gate)
	}
	if driver < 0 || driver >= len(n.Gates) {
		invariantf("netlist: driver %d out of range", driver)
	}
	g.Fanin[idx] = driver
	n.invalidateTopo()
}

// NumGates returns the number of logic gates — combinational cells plus
// flip-flops — excluding primary inputs and constants. This is the
// "gate count" reported in the paper's tables.
func (n *Netlist) NumGates() int {
	c := 0
	for _, g := range n.Gates {
		switch g.Kind {
		case Input, Const0, Const1:
		default:
			c++
		}
	}
	return c
}

// NumCombinational returns the number of combinational cells.
func (n *Netlist) NumCombinational() int {
	c := 0
	for _, g := range n.Gates {
		if g.Kind.Combinational() {
			c++
		}
	}
	return c
}

// Stats summarizes a netlist for reports.
type Stats struct {
	Name    string
	PIs     int
	POs     int
	Gates   int // combinational + DFF
	DFFs    int
	Levels  int // combinational depth
	ByKind  map[GateKind]int
	SeqDeep int // sequential depth estimate (longest flop-to-flop chain length through flops)
}

// ComputeStats gathers summary statistics.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{
		Name:   n.Name,
		PIs:    len(n.PIs),
		POs:    len(n.POs),
		Gates:  n.NumGates(),
		DFFs:   len(n.DFFs),
		ByKind: map[GateKind]int{},
	}
	for _, g := range n.Gates {
		s.ByKind[g.Kind]++
	}
	levels := n.Levelize()
	for _, l := range levels {
		if l+1 > s.Levels {
			s.Levels = l + 1
		}
	}
	s.SeqDeep = n.SequentialDepth()
	return s
}

// Levelize assigns a combinational level to every gate: inputs,
// constants and DFF outputs are level 0; every combinational gate is
// 1 + max(level of fanins). The returned slice is indexed by gate ID.
func (n *Netlist) Levelize() []int {
	level := make([]int, len(n.Gates))
	order := n.TopoOrder()
	for _, id := range order {
		g := n.Gates[id]
		if !g.Kind.Combinational() {
			level[id] = 0
			continue
		}
		max := -1
		for _, f := range g.Fanin {
			if level[f] > max {
				max = level[f]
			}
		}
		level[id] = max + 1
	}
	return level
}

// TopoOrder returns all gate IDs in a topological order of the
// combinational graph: a combinational gate appears after all its
// fanins; DFFs, inputs and constants appear before any gate that reads
// them. Panics with a *CycleError if the combinational logic is cyclic
// — callers that construct netlists from untrusted RTL should check
// TopoOrderErr (or Validate) once at their API boundary, after which
// TopoOrder cannot panic.
//
// The order is computed once and memoized (mutating the netlist via
// AddGate or SetFanin invalidates it); concurrent callers share one
// computation. The returned slice is shared: callers must treat it as
// read-only.
func (n *Netlist) TopoOrder() []int {
	order, err := n.TopoOrderErr()
	if err != nil {
		panic(err)
	}
	return order
}

// TopoOrderErr is TopoOrder returning a *CycleError instead of
// panicking when the combinational logic is cyclic.
func (n *Netlist) TopoOrderErr() ([]int, error) {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	return n.topoOrderLocked()
}

// topoOrderLocked memoizes the topological order; topoMu must be held.
func (n *Netlist) topoOrderLocked() ([]int, error) {
	if n.topoCache == nil {
		order, err := n.computeTopoOrder()
		if err != nil {
			return nil, err
		}
		n.topoCache = order
	}
	return n.topoCache, nil
}

func (n *Netlist) invalidateTopo() {
	n.topoMu.Lock()
	n.topoCache = nil
	n.fanoutCache = nil
	n.compiledCache = nil
	n.topoMu.Unlock()
}

func (n *Netlist) computeTopoOrder() ([]int, error) {
	order := make([]int, 0, len(n.Gates))
	// 0 = unvisited, 1 = on stack, 2 = done.
	state := make([]byte, len(n.Gates))
	// Non-combinational gates are sources.
	for id, g := range n.Gates {
		if !g.Kind.Combinational() {
			order = append(order, id)
			state[id] = 2
		}
	}
	var stack []int
	for start := range n.Gates {
		if state[start] != 0 {
			continue
		}
		stack = append(stack[:0], start)
		for len(stack) > 0 {
			id := stack[len(stack)-1]
			if state[id] == 0 {
				state[id] = 1
				for _, f := range n.Gates[id].Fanin {
					switch state[f] {
					case 0:
						stack = append(stack, f)
					case 1:
						return nil, &CycleError{Netlist: n.Name, Gate: f,
							Kind: n.Gates[f].Kind, Name: n.Gates[f].Name}
					}
				}
				continue
			}
			stack = stack[:len(stack)-1]
			if state[id] == 1 {
				state[id] = 2
				order = append(order, id)
			}
		}
	}
	return order, nil
}

// Fanouts returns, for each gate ID, the list of gates that read it.
// The result is computed once and memoized alongside the TopoOrder
// cache (mutating the netlist via AddGate or SetFanin invalidates it);
// concurrent first use shares one computation. The returned slices are
// shared: callers must treat them as read-only.
func (n *Netlist) Fanouts() [][]int {
	n.topoMu.Lock()
	defer n.topoMu.Unlock()
	return n.fanoutsLocked()
}

// fanoutsLocked memoizes the fanout lists; topoMu must be held.
func (n *Netlist) fanoutsLocked() [][]int {
	if n.fanoutCache == nil {
		out := make([][]int, len(n.Gates))
		for id, g := range n.Gates {
			for _, f := range g.Fanin {
				out[f] = append(out[f], id)
			}
		}
		n.fanoutCache = out
	}
	return n.fanoutCache
}

// SequentialDepth estimates the sequential depth of the circuit: the
// longest acyclic chain of flip-flops (number of flops on the longest
// PI-to-PO register path). Cycles (state-holding loops) contribute
// their acyclic unrolling only once. This drives the time-frame budget
// heuristic in the ATPG engine.
func (n *Netlist) SequentialDepth() int {
	if len(n.DFFs) == 0 {
		return 0
	}
	// Build flop-to-flop adjacency: flop A feeds flop B if A's output
	// reaches B's D input through combinational logic.
	reach := n.flopAdjacency()
	depth := make(map[int]int, len(n.DFFs))
	visiting := make(map[int]bool, len(n.DFFs))
	var dfs func(f int) int
	dfs = func(f int) int {
		if d, ok := depth[f]; ok {
			return d
		}
		if visiting[f] {
			return 0 // cycle: count each flop once
		}
		visiting[f] = true
		best := 0
		for _, succ := range reach[f] {
			if d := dfs(succ); d > best {
				best = d
			}
		}
		visiting[f] = false
		depth[f] = best + 1
		return best + 1
	}
	max := 0
	for _, f := range n.DFFs {
		if d := dfs(f); d > max {
			max = d
		}
	}
	return max
}

// flopAdjacency returns for each DFF the set of DFFs reachable through
// combinational logic from its output to their D inputs.
func (n *Netlist) flopAdjacency() map[int][]int {
	// For each gate, the set of source flops feeding it through
	// combinational logic, computed in topological order.
	order := n.TopoOrder()
	sources := make(map[int]map[int]bool, len(n.Gates))
	for _, id := range order {
		g := n.Gates[id]
		switch {
		case g.Kind == DFF:
			sources[id] = map[int]bool{id: true}
		case g.Kind.Combinational():
			set := map[int]bool{}
			for _, f := range g.Fanin {
				for s := range sources[f] {
					set[s] = true
				}
			}
			sources[id] = set
		}
	}
	adj := make(map[int][]int, len(n.DFFs))
	for _, f := range n.DFFs {
		d := n.Gates[f].Fanin[0]
		seen := map[int]bool{}
		for s := range sources[d] {
			if s != f && !seen[s] {
				seen[s] = true
			}
		}
		for _, src := range n.DFFs {
			if seen[src] {
				adj[src] = append(adj[src], f)
			}
		}
	}
	return adj
}

// Validate checks structural invariants: fanin arity and range, PO
// drivers valid, PI/PO name uniqueness, acyclic combinational logic.
func (n *Netlist) Validate() error {
	for id, g := range n.Gates {
		if g.ID != id {
			return fmt.Errorf("netlist %s: gate %d has ID %d", n.Name, id, g.ID)
		}
		if len(g.Fanin) != g.Kind.Arity() {
			return fmt.Errorf("netlist %s: gate %d (%s) has %d fanins, want %d",
				n.Name, id, g.Kind, len(g.Fanin), g.Kind.Arity())
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("netlist %s: gate %d fanin %d out of range", n.Name, id, f)
			}
		}
	}
	if len(n.PIs) != len(n.PINames) || len(n.POs) != len(n.PONames) {
		return fmt.Errorf("netlist %s: PI/PO name slices out of sync", n.Name)
	}
	seen := map[string]bool{}
	for _, name := range n.PINames {
		if seen[name] {
			return fmt.Errorf("netlist %s: duplicate PI name %q", n.Name, name)
		}
		seen[name] = true
	}
	seen = map[string]bool{}
	for _, name := range n.PONames {
		if seen[name] {
			return fmt.Errorf("netlist %s: duplicate PO name %q", n.Name, name)
		}
		seen[name] = true
	}
	for i, po := range n.POs {
		if po < 0 || po >= len(n.Gates) {
			return fmt.Errorf("netlist %s: PO %s driver out of range", n.Name, n.PONames[i])
		}
	}
	_, err := n.TopoOrderErr()
	return err
}

// PI returns the gate ID of the named primary input, or -1.
func (n *Netlist) PI(name string) int {
	for i, pn := range n.PINames {
		if pn == name {
			return n.PIs[i]
		}
	}
	return -1
}

// PO returns the driver gate ID of the named primary output, or -1.
func (n *Netlist) PO(name string) int {
	for i, pn := range n.PONames {
		if pn == name {
			return n.POs[i]
		}
	}
	return -1
}

// Clone returns a deep copy of the netlist.
func (n *Netlist) Clone() *Netlist {
	c := &Netlist{
		Name:    n.Name,
		Gates:   make([]*Gate, len(n.Gates)),
		PIs:     append([]int(nil), n.PIs...),
		PINames: append([]string(nil), n.PINames...),
		POs:     append([]int(nil), n.POs...),
		PONames: append([]string(nil), n.PONames...),
		DFFs:    append([]int(nil), n.DFFs...),
	}
	for i, g := range n.Gates {
		c.Gates[i] = &Gate{ID: g.ID, Kind: g.Kind, Fanin: append([]int(nil), g.Fanin...), Name: g.Name, Scope: g.Scope}
	}
	return c
}

// EmitVerilog renders the netlist as a structural Verilog module using
// only gate primitives and simple DFF always blocks — the form in which
// FACTOR writes transformed modules to disk.
func (n *Netlist) EmitVerilog() string {
	var sb strings.Builder
	net := func(id int) string { return fmt.Sprintf("n%d", id) }

	// Flip-flops need a clock pin; add one unless a primary input
	// already carries the name.
	needsClk := len(n.DFFs) > 0 && n.PI("clk") < 0
	clkName := "clk"
	for needsClk {
		collides := false
		for _, name := range n.PINames {
			if sanitizeName(name) == clkName {
				collides = true
			}
		}
		for _, name := range n.PONames {
			if sanitizeName(name) == clkName {
				collides = true
			}
		}
		if !collides {
			break
		}
		clkName += "_"
	}
	if !needsClk && len(n.DFFs) > 0 {
		clkName = sanitizeName(n.PINames[indexOf(n, "clk")])
	}

	fmt.Fprintf(&sb, "module %s (", sanitizeName(n.Name))
	first := true
	for _, name := range n.PINames {
		if !first {
			sb.WriteString(", ")
		}
		sb.WriteString(sanitizeName(name))
		first = false
	}
	for _, name := range n.PONames {
		if !first {
			sb.WriteString(", ")
		}
		sb.WriteString(sanitizeName(name))
		first = false
	}
	if needsClk {
		if !first {
			sb.WriteString(", ")
		}
		sb.WriteString(clkName)
	}
	sb.WriteString(");\n")
	for _, name := range n.PINames {
		fmt.Fprintf(&sb, "  input %s;\n", sanitizeName(name))
	}
	for _, name := range n.PONames {
		fmt.Fprintf(&sb, "  output %s;\n", sanitizeName(name))
	}
	if needsClk {
		fmt.Fprintf(&sb, "  input %s;\n", clkName)
	}
	for _, g := range n.Gates {
		switch g.Kind {
		case DFF:
			fmt.Fprintf(&sb, "  reg %s;\n", net(g.ID))
		default:
			// Input gates also get an internal alias wire: the buf
			// below drives it from the port.
			fmt.Fprintf(&sb, "  wire %s;\n", net(g.ID))
		}
	}
	for _, g := range n.Gates {
		switch g.Kind {
		case Input:
			fmt.Fprintf(&sb, "  buf (%s, %s);\n", net(g.ID), sanitizeName(g.Name))
		case Const0:
			fmt.Fprintf(&sb, "  assign %s = 1'b0;\n", net(g.ID))
		case Const1:
			fmt.Fprintf(&sb, "  assign %s = 1'b1;\n", net(g.ID))
		case Buf:
			fmt.Fprintf(&sb, "  buf (%s, %s);\n", net(g.ID), net(g.Fanin[0]))
		case Not:
			fmt.Fprintf(&sb, "  not (%s, %s);\n", net(g.ID), net(g.Fanin[0]))
		case And, Or, Nand, Nor, Xor, Xnor:
			fmt.Fprintf(&sb, "  %s (%s, %s, %s);\n", g.Kind, net(g.ID), net(g.Fanin[0]), net(g.Fanin[1]))
		case Mux:
			fmt.Fprintf(&sb, "  assign %s = %s ? %s : %s;\n",
				net(g.ID), net(g.Fanin[0]), net(g.Fanin[2]), net(g.Fanin[1]))
		case DFF:
			fmt.Fprintf(&sb, "  always @(posedge %s) %s <= %s;\n", clkName, net(g.ID), net(g.Fanin[0]))
		}
	}
	for i, po := range n.POs {
		fmt.Fprintf(&sb, "  buf (%s, %s);\n", sanitizeName(n.PONames[i]), net(po))
	}
	sb.WriteString("endmodule\n")
	return sb.String()
}

func indexOf(n *Netlist, name string) int {
	for i, pn := range n.PINames {
		if pn == name {
			return i
		}
	}
	return 0
}

func sanitizeName(s string) string {
	if s == "" {
		return "unnamed"
	}
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// KindCounts renders the per-kind gate counts sorted by kind for
// deterministic reports.
func (s Stats) KindCounts() string {
	var kinds []GateKind
	for k := range s.ByKind {
		kinds = append(kinds, k)
	}
	sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
	parts := make([]string, 0, len(kinds))
	for _, k := range kinds {
		parts = append(parts, fmt.Sprintf("%s=%d", k, s.ByKind[k]))
	}
	return strings.Join(parts, " ")
}
