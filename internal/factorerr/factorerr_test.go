package factorerr

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestErrorString(t *testing.T) {
	e := New(StageExtract, CodePanic, "boom").WithMUT("u_core.u_alu")
	s := e.Error()
	for _, want := range []string{"extract", "panic", "u_core.u_alu", "boom"} {
		if !strings.Contains(s, want) {
			t.Errorf("Error() = %q, missing %q", s, want)
		}
	}
}

func TestIsWildcards(t *testing.T) {
	e := New(StageATPG, CodePanic, "x").WithMUT("u_a").WithFault("g3/sa1")
	cases := []struct {
		target *Error
		want   bool
	}{
		{&Error{Code: CodePanic}, true},
		{&Error{Stage: StageATPG}, true},
		{&Error{Stage: StageATPG, Code: CodePanic}, true},
		{&Error{MUT: "u_a"}, true},
		{&Error{Fault: "g3/sa1"}, true},
		{&Error{Code: CodeTimeout}, false},
		{&Error{Stage: StageParse}, false},
		{&Error{MUT: "u_b"}, false},
	}
	for i, c := range cases {
		if got := errors.Is(e, c.target); got != c.want {
			t.Errorf("case %d: errors.Is = %v, want %v", i, got, c.want)
		}
	}
}

func TestUnwrapAndAs(t *testing.T) {
	cause := context.Canceled
	e := Wrap(StageATPG, CodeCanceled, cause)
	if !errors.Is(e, context.Canceled) {
		t.Error("wrapped context.Canceled not found by errors.Is")
	}
	var fe *Error
	if !errors.As(fmt.Errorf("outer: %w", e), &fe) || fe.Code != CodeCanceled {
		t.Error("errors.As failed to recover *Error through wrapping")
	}
}

func TestCollect(t *testing.T) {
	if Collect([]error{nil, nil}) != nil {
		t.Error("Collect of all-nil should be nil")
	}
	one := New(StageSynth, CodeAnalysis, "bad")
	if got := Collect([]error{nil, one, nil}); got != one {
		t.Errorf("Collect of one error should return it directly, got %v", got)
	}
	two := Collect([]error{one, New(StageSynth, CodeInput, "worse")})
	l, ok := two.(*List)
	if !ok || len(l.Errs) != 2 {
		t.Fatalf("Collect of two errors should return a *List, got %T", two)
	}
	if !errors.Is(two, &Error{Code: CodeInput}) {
		t.Error("errors.Is should search List members")
	}
	if n := len(Flatten(two)); n != 2 {
		t.Errorf("Flatten returned %d leaves, want 2", n)
	}
}

func TestExitCode(t *testing.T) {
	cases := []struct {
		err  error
		want int
	}{
		{nil, ExitOK},
		{New(StageParse, CodeInput, "x"), ExitError},
		{New("", CodeUsage, "x"), ExitUsage},
		{New(StageATPG, CodeCanceled, "x"), ExitPartial},
		{Collect([]error{New(StageExtract, CodePartial, "x"), New(StageExtract, CodeInput, "y")}), ExitPartial},
		{errors.New("plain"), ExitError},
	}
	for i, c := range cases {
		if got := ExitCode(c.err); got != c.want {
			t.Errorf("case %d: ExitCode = %d, want %d", i, got, c.want)
		}
	}
}

func TestFromPanicCapturesStack(t *testing.T) {
	var e *Error
	func() {
		defer func() { e = FromPanic(StageATPG, recover()) }()
		panic("injected")
	}()
	if e.Code != CodePanic || !strings.Contains(e.Msg, "injected") {
		t.Errorf("FromPanic = %v", e)
	}
	if len(e.Stack) == 0 {
		t.Error("FromPanic should capture a stack trace")
	}
}

func TestFormatChain(t *testing.T) {
	err := Collect([]error{
		Wrap(StageSynth, CodeAnalysis, errors.New("width mismatch")).WithMUT("u_a"),
		New(StageExtract, CodePanic, "boom").WithFault("g1/sa0"),
	})
	s := FormatChain(err)
	for _, want := range []string{"2 error(s)", "width mismatch", "mut=u_a", "fault=g1/sa0"} {
		if !strings.Contains(s, want) {
			t.Errorf("FormatChain missing %q in:\n%s", want, s)
		}
	}
}

func TestFindDigsThroughAggregates(t *testing.T) {
	inner := New(StageExtract, CodePanic, "boom").WithMUT("u_leaf")
	partial := New(StageExtract, CodePartial, "1 of 2 MUTs failed")
	partial.Err = Collect([]error{
		Wrap(StageSynth, CodeAnalysis, errors.New("bad width")).WithMUT("u_mid"),
		inner,
	})
	if got := Find(partial, &Error{Code: CodePanic}); got != inner {
		t.Errorf("Find(CodePanic) = %v, want the inner panic error", got)
	}
	if got := Find(partial, &Error{MUT: "u_mid"}); got == nil || got.MUT != "u_mid" {
		t.Errorf("Find(MUT=u_mid) = %v", got)
	}
	if got := Find(partial, &Error{Code: CodeCheckpoint}); got != nil {
		t.Errorf("Find(no match) = %v, want nil", got)
	}
	if got := Find(nil, &Error{}); got != nil {
		t.Errorf("Find(nil) = %v, want nil", got)
	}
}

func TestFromContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if e := FromContext(StageATPG, ctx.Err()); e.Code != CodeCanceled {
		t.Errorf("canceled ctx -> %v", e)
	}
	dctx, dcancel := context.WithDeadline(context.Background(), time.Now().Add(-time.Second))
	defer dcancel()
	if e := FromContext(StageATPG, dctx.Err()); e.Code != CodeTimeout {
		t.Errorf("expired ctx -> %v", e)
	}
	if e := FromContext(StageATPG, nil); e.Code != CodeCanceled {
		t.Errorf("nil ctx err -> %v", e)
	}
}
