// Package factorerr defines the structured error vocabulary of the
// FACTOR pipeline: every failure carries the pipeline stage it occurred
// in, a machine-readable code, and — where applicable — the MUT
// instance path and fault it belongs to. The CLIs map these errors to a
// documented exit-code taxonomy and a machine-readable failure report,
// and the worker pools use them to quarantine a panicking work item
// instead of killing the whole run (see DESIGN.md, "Failure model &
// degradation policy").
package factorerr

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
)

// Stage names the pipeline phase an error belongs to (paper Fig. 1:
// parse -> analyze -> extract -> synthesize -> ATPG).
type Stage string

// Pipeline stages.
const (
	StageParse    Stage = "parse"
	StageAnalyze  Stage = "analyze"
	StageExtract  Stage = "extract"
	StageSynth    Stage = "synth"
	StageATPG     Stage = "atpg"
	StageFaultSim Stage = "faultsim"
	StageIO       Stage = "io"
)

// Code classifies an error for exit-code mapping and reports.
type Code int

// Error codes.
const (
	CodeUnknown Code = iota
	// CodeUsage is a command-line usage error (exit 2).
	CodeUsage
	// CodeInput is a malformed or missing input (bad RTL, unknown MUT
	// path, unreadable file).
	CodeInput
	// CodeAnalysis is a semantic failure on well-formed input
	// (unsupported construct, unsynthesizable logic, combinational
	// cycle).
	CodeAnalysis
	// CodePanic is a worker panic converted into an error by a pool's
	// isolation boundary; the offending item was quarantined.
	CodePanic
	// CodeCanceled reports a run interrupted by SIGINT or an explicit
	// context cancellation; partial results were flushed.
	CodeCanceled
	// CodeTimeout reports a phase exceeding its wall-clock budget.
	CodeTimeout
	// CodePartial aggregates a multi-MUT run where some MUTs succeeded
	// and some failed (exit 3).
	CodePartial
	// CodeCheckpoint is a checkpoint I/O or journaling failure not
	// classified by one of the specific codes below.
	CodeCheckpoint
	// CodeCheckpointCorrupt is a torn or corrupt checkpoint frame:
	// truncated file, bad header, CRC mismatch, or undecodable
	// payload. The journal is unusable — delete it (or fall back to
	// the previous generation) and restart; the design is fine.
	CodeCheckpointCorrupt
	// CodeCheckpointVersion is a checkpoint written by a different
	// journal format version. Re-run without -resume; the journal
	// cannot be interpreted by this build.
	CodeCheckpointVersion
	// CodeCheckpointMismatch is a well-formed checkpoint that does not
	// belong to this run: fingerprint (design/options/fault list) or
	// bitmap-shape mismatch. The journal is for a different design —
	// point -resume at the right file instead of deleting anything.
	CodeCheckpointMismatch
	// CodeInternal is a violated internal invariant.
	CodeInternal
	// CodeIO is a filesystem read/write failure.
	CodeIO
	// CodeSnapshotCorrupt is a truncated or bit-flipped compiled-netlist
	// snapshot: short frame, bad magic, CRC mismatch, or a payload whose
	// arrays fail shape validation. The snapshot is unusable — rebuild it
	// from the design; the design itself is fine.
	CodeSnapshotCorrupt
	// CodeSnapshotVersion is a compiled-netlist snapshot written by a
	// different codec version; re-encode with this build.
	CodeSnapshotVersion
	// CodeShardDied is a shard worker process that terminated without
	// streaming back a result (killed, crashed, or produced garbage); the
	// parent degraded its fault range to all-undetected and continued.
	// Classified as a partial failure in the exit taxonomy.
	CodeShardDied
)

var codeNames = map[Code]string{
	CodeUnknown:            "unknown",
	CodeUsage:              "usage",
	CodeInput:              "input",
	CodeAnalysis:           "analysis",
	CodePanic:              "panic",
	CodeCanceled:           "canceled",
	CodeTimeout:            "timeout",
	CodePartial:            "partial",
	CodeCheckpoint:         "checkpoint",
	CodeCheckpointCorrupt:  "checkpoint-corrupt",
	CodeCheckpointVersion:  "checkpoint-version",
	CodeCheckpointMismatch: "checkpoint-mismatch",
	CodeInternal:           "internal",
	CodeIO:                 "io",
	CodeSnapshotCorrupt:    "snapshot-corrupt",
	CodeSnapshotVersion:    "snapshot-version",
	CodeShardDied:          "shard-died",
}

func (c Code) String() string {
	if s, ok := codeNames[c]; ok {
		return s
	}
	return fmt.Sprintf("Code(%d)", int(c))
}

// Exit codes of the unified CLI taxonomy.
const (
	ExitOK      = 0 // success
	ExitError   = 1 // input or analysis error (nothing usable produced)
	ExitUsage   = 2 // command-line usage error
	ExitPartial = 3 // partial failure: some results produced, some lost
)

// Error is a structured pipeline error.
type Error struct {
	Stage Stage
	Code  Code
	// MUT is the instance path of the module under test this error
	// belongs to, when the failure is MUT-scoped.
	MUT string
	// Fault identifies the quarantined fault (String form), when the
	// failure is fault-scoped.
	Fault string
	// Msg describes the failure; Err is the wrapped cause (either may
	// be empty/nil, not both).
	Msg string
	Err error
	// Stack is the goroutine stack captured by FromPanic.
	Stack []byte
}

// New builds an error with a formatted message.
func New(stage Stage, code Code, format string, args ...interface{}) *Error {
	return &Error{Stage: stage, Code: code, Msg: fmt.Sprintf(format, args...)}
}

// Wrap attaches stage and code to a cause. A cause that is already an
// *Error keeps its own code when code is CodeUnknown.
func Wrap(stage Stage, code Code, err error) *Error {
	if err == nil {
		return nil
	}
	return &Error{Stage: stage, Code: code, Err: err}
}

// FromContext classifies a context interruption at the given stage:
// deadline expiry becomes a timeout error, everything else a
// cancellation. A nil ctxErr yields a bare cancellation (defensive).
func FromContext(stage Stage, ctxErr error) *Error {
	if ctxErr == nil {
		return New(stage, CodeCanceled, "canceled")
	}
	if errors.Is(ctxErr, context.DeadlineExceeded) {
		return Wrap(stage, CodeTimeout, ctxErr)
	}
	return Wrap(stage, CodeCanceled, ctxErr)
}

// FromPanic converts a recovered panic value into a structured error
// with the current goroutine stack. Called from the recover() boundary
// of every worker pool.
func FromPanic(stage Stage, r interface{}) *Error {
	return &Error{
		Stage: stage,
		Code:  CodePanic,
		Msg:   fmt.Sprintf("worker panic: %v", r),
		Stack: debug.Stack(),
	}
}

// WithMUT returns a copy scoped to the given MUT instance path.
func (e *Error) WithMUT(mut string) *Error {
	c := *e
	c.MUT = mut
	return &c
}

// WithFault returns a copy scoped to the given fault.
func (e *Error) WithFault(f string) *Error {
	c := *e
	c.Fault = f
	return &c
}

func (e *Error) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "[%s/%s]", e.Stage, e.Code)
	if e.MUT != "" {
		fmt.Fprintf(&sb, " mut=%s", e.MUT)
	}
	if e.Fault != "" {
		fmt.Fprintf(&sb, " fault=%s", e.Fault)
	}
	if e.Msg != "" {
		sb.WriteString(": ")
		sb.WriteString(e.Msg)
	}
	if e.Err != nil {
		sb.WriteString(": ")
		sb.WriteString(e.Err.Error())
	}
	return sb.String()
}

// Unwrap exposes the cause for errors.Is/As.
func (e *Error) Unwrap() error { return e.Err }

// Is matches another *Error treating zero-valued fields of the target
// as wildcards: errors.Is(err, &Error{Code: CodePanic}) asks "was there
// a panic anywhere in the chain, whatever the stage or MUT". A target
// code of CodeCheckpoint additionally matches the specific checkpoint
// codes (corrupt/version/mismatch) — it names the failure family;
// match a specific code to tell "delete and restart" from "wrong
// design".
func (e *Error) Is(target error) bool {
	t, ok := target.(*Error)
	if !ok {
		return false
	}
	if t.Stage != "" && t.Stage != e.Stage {
		return false
	}
	if t.Code != CodeUnknown && t.Code != e.Code && !(t.Code == CodeCheckpoint && isCheckpointCode(e.Code)) {
		return false
	}
	if t.MUT != "" && t.MUT != e.MUT {
		return false
	}
	if t.Fault != "" && t.Fault != e.Fault {
		return false
	}
	return true
}

// isCheckpointCode reports whether c belongs to the checkpoint failure
// family.
func isCheckpointCode(c Code) bool {
	switch c {
	case CodeCheckpoint, CodeCheckpointCorrupt, CodeCheckpointVersion, CodeCheckpointMismatch:
		return true
	}
	return false
}

// List aggregates several errors (per-MUT failures of a multi-MUT run,
// per-batch quarantines of a fault-simulation pass). It unwraps to its
// members, so errors.Is/As search the whole set.
type List struct {
	Errs []error
}

func (l *List) Error() string {
	switch len(l.Errs) {
	case 0:
		return "no errors"
	case 1:
		return l.Errs[0].Error()
	}
	return fmt.Sprintf("%s (and %d more errors)", l.Errs[0], len(l.Errs)-1)
}

// Unwrap supports multi-error matching (Go 1.20 semantics).
func (l *List) Unwrap() []error { return l.Errs }

// Collect drops nil entries and returns nil (none), the lone error
// (one), or a *List (several). Entry order is preserved, so workers
// that store errs[i] by input index yield a deterministic aggregate.
func Collect(errs []error) error {
	var kept []error
	for _, err := range errs {
		if err != nil {
			kept = append(kept, err)
		}
	}
	switch len(kept) {
	case 0:
		return nil
	case 1:
		return kept[0]
	}
	return &List{Errs: kept}
}

// Flatten returns the leaf errors of err: members of nested Lists in
// order, or err itself when it is not a List.
func Flatten(err error) []error {
	if err == nil {
		return nil
	}
	if l, ok := err.(*List); ok {
		var out []error
		for _, e := range l.Errs {
			out = append(out, Flatten(e)...)
		}
		return out
	}
	// An aggregate header (an Error that directly wraps a List, or a
	// partial-failure summary wrapping a single cause) dissolves into
	// its leaves — the header is presentation, the leaves carry the
	// MUT/fault tags a report needs.
	if e, ok := err.(*Error); ok {
		if l, ok := e.Err.(*List); ok {
			return Flatten(l)
		}
		if e.Code == CodePartial && e.Err != nil {
			return Flatten(e.Err)
		}
	}
	return []error{err}
}

// Find returns the first *Error in err's tree matching the non-zero
// fields of target (the same wildcard semantics as Is), walking both
// wrapped chains and multi-error lists depth-first. It returns nil
// when nothing matches — use it to pull a specific failure (say, the
// panic that quarantined a MUT) out of an aggregate.
func Find(err error, target *Error) *Error {
	if err == nil || target == nil {
		return nil
	}
	if e, ok := err.(*Error); ok && e.Is(target) {
		return e
	}
	switch u := err.(type) {
	case interface{ Unwrap() []error }:
		for _, c := range u.Unwrap() {
			if found := Find(c, target); found != nil {
				return found
			}
		}
	case interface{ Unwrap() error }:
		return Find(u.Unwrap(), target)
	}
	return nil
}

// ExitCode maps an error to the unified CLI exit-code taxonomy:
// 0 success, 2 usage, 3 partial failure or interruption with flushed
// partial results, 1 everything else.
func ExitCode(err error) int {
	if err == nil {
		return ExitOK
	}
	if errors.Is(err, &Error{Code: CodeUsage}) {
		return ExitUsage
	}
	if errors.Is(err, &Error{Code: CodePartial}) || errors.Is(err, &Error{Code: CodeCanceled}) ||
		errors.Is(err, &Error{Code: CodeTimeout}) || errors.Is(err, &Error{Code: CodeShardDied}) {
		return ExitPartial
	}
	return ExitError
}

// FormatChain renders err as an indented multi-line report: Lists are
// enumerated, wrapped causes are expanded one per line. Stacks are
// omitted (they belong in the JSON report, not on stderr).
func FormatChain(err error) string {
	var sb strings.Builder
	formatChain(&sb, err, 0)
	return strings.TrimRight(sb.String(), "\n")
}

func formatChain(sb *strings.Builder, err error, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v := err.(type) {
	case *List:
		fmt.Fprintf(sb, "%s%d error(s):\n", indent, len(v.Errs))
		for _, e := range v.Errs {
			formatChain(sb, e, depth+1)
		}
	case *Error:
		head := fmt.Sprintf("[%s/%s]", v.Stage, v.Code)
		if v.MUT != "" {
			head += " mut=" + v.MUT
		}
		if v.Fault != "" {
			head += " fault=" + v.Fault
		}
		if v.Msg != "" {
			head += ": " + v.Msg
		}
		fmt.Fprintf(sb, "%s%s\n", indent, head)
		if v.Err != nil {
			formatChain(sb, v.Err, depth+1)
		}
	default:
		fmt.Fprintf(sb, "%s%s\n", indent, err.Error())
	}
}
