package fault

import (
	"math/rand"
	"testing"
)

// FuzzEventDrivenEquivalence fuzzes the event-driven fault-simulation
// engine against the full-evaluation reference and the two-machine
// serial oracle. The fuzzer chooses the circuit shape, the fault-batch
// composition and the stimulus (including explicit and implicit X
// inputs) from the raw corpus bytes; any divergence in detection marks,
// newly-detected counts or lane masks is a bug in one of the engines.
func FuzzEventDrivenEquivalence(f *testing.F) {
	f.Add(int64(1), uint8(4), uint8(40), uint8(3), uint8(4))
	f.Add(int64(7), uint8(1), uint8(5), uint8(1), uint8(1))
	f.Add(int64(99), uint8(6), uint8(120), uint8(4), uint8(6))
	f.Add(int64(-12345), uint8(3), uint8(70), uint8(2), uint8(8))
	f.Fuzz(func(t *testing.T, seed int64, nIn, nGates, nSeqs, cycles uint8) {
		rng := rand.New(rand.NewSource(seed))
		in := 1 + int(nIn)%6
		gates := 1 + int(nGates)%150
		seqCount := 1 + int(nSeqs)%4
		cyc := 1 + int(cycles)%8

		nl := randomCircuit(rng, in, gates, true)
		faults := Universe(nl)
		if len(faults) == 0 {
			return
		}

		seqs := make([]Sequence, seqCount)
		for i := range seqs {
			seqs[i] = randSeqWithX(nl, rng, cyc)
		}

		// Pass 1: full detection marks with fault dropping, per sequence.
		ref := NewResult(faults)
		got := NewResult(faults)
		ps := NewParallel(nl)
		es := NewEvent(nl)
		for si, seq := range seqs {
			nRef := ps.RunSequence(ref, seq)
			nGot := es.RunSequence(got, seq)
			if nRef != nGot {
				t.Fatalf("seq %d: newly-detected mismatch: reference %d, event %d", si, nRef, nGot)
			}
		}
		for i := range faults {
			if ref.Detected[i] != got.Detected[i] {
				t.Fatalf("fault %v: reference=%v event=%v", faults[i], ref.Detected[i], got.Detected[i])
			}
		}

		// Pass 2: lane-exact batch masks on the first batch.
		batch := faults
		if len(batch) > 63 {
			batch = batch[:63]
		}
		tr := newGoodTrace(nl, nl.Compile(), seqs[0])
		if want, have := ps.runBatch(batch, seqs[0]), es.runBatch(batch, seqs[0], tr); want != have {
			t.Fatalf("lane mask mismatch: reference %064b, event %064b", want, have)
		}

		// Pass 3: serial oracle on a few random faults against seqs[0].
		for k := 0; k < 3 && k < len(batch); k++ {
			fi := rng.Intn(len(batch))
			fl := batch[fi]
			want := SerialDetect(nl, fl, seqs[0])
			res := NewResult([]Fault{fl})
			es.RunSequence(res, seqs[0])
			if res.Detected[0] != want {
				t.Fatalf("fault %v: serial=%v event=%v", fl, want, res.Detected[0])
			}
		}

		// X-lane sanity: lane 0 (the good machine) must never be reported
		// as a detection by either engine.
		if det := es.runBatch(batch, seqs[0], tr); det&1 != 0 {
			t.Fatal("event engine reported the good-machine lane as detected")
		}
	})
}
