// Package fault implements the single-stuck-at fault model over the
// gate-level netlist IR: fault universe construction, structural
// equivalence collapsing, and sequential fault simulation — a serial
// reference implementation, a 63-fault-per-pass parallel machine
// built on the packed 3-valued simulator, and an event-driven engine
// on the compiled CSR netlist view that simulates the good machine
// once and re-evaluates only the diverged cone of each fault batch.
package fault

import (
	"fmt"
	"sort"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// Site identifies a fault location: the output stem of a gate
// (Pin == -1) or one input pin of a gate (Pin >= 0).
type Site struct {
	Gate int
	Pin  int
}

// Fault is a single stuck-at fault.
type Fault struct {
	Site
	SAOne bool // true: stuck-at-1, false: stuck-at-0
}

func (f Fault) String() string {
	v := 0
	if f.SAOne {
		v = 1
	}
	if f.Pin < 0 {
		return fmt.Sprintf("g%d/sa%d", f.Gate, v)
	}
	return fmt.Sprintf("g%d.in%d/sa%d", f.Gate, f.Pin, v)
}

// Key packs the fault's identity into a uint64 suitable as a
// deterministic draw key (failpoint injection, per-fault RNG streams):
// a pure function of the fault, independent of list position or
// scheduling. Pin is biased by 1 so the stem sentinel (-1) stays
// non-negative.
func (f Fault) Key() uint64 {
	v := uint64(0)
	if f.SAOne {
		v = 1
	}
	return uint64(f.Gate)<<21 | uint64(f.Pin+1)<<1 | v
}

// Universe builds the collapsed single-stuck-at fault list for a
// netlist:
//
//   - every gate output (stem) except constants carries sa0 and sa1;
//   - every input pin whose driver has fanout > 1 (a branch of a
//     multi-fanout stem) carries sa0 and sa1;
//   - structural equivalence collapsing then keeps one representative
//     per equivalence class (e.g. an AND input sa0 is equivalent to the
//     AND output sa0; a NOT input sa-v to its output sa-~v; BUF and DFF
//     pins to their stems).
//
// The returned faults are sorted deterministically.
func Universe(n *netlist.Netlist) []Fault {
	fanouts := n.Fanouts()
	type key struct {
		site Site
		sa1  bool
	}
	// Union-find over candidate faults.
	parent := map[key]key{}
	var find func(k key) key
	find = func(k key) key {
		p, ok := parent[k]
		if !ok || p == k {
			return k
		}
		root := find(p)
		parent[k] = root
		return root
	}
	union := func(a, b key) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	var all []key
	addSite := func(s Site) {
		all = append(all, key{s, false}, key{s, true})
	}
	for _, g := range n.Gates {
		switch g.Kind {
		case netlist.Const0, netlist.Const1:
			continue
		}
		addSite(Site{Gate: g.ID, Pin: -1})
		for pin, drv := range g.Fanin {
			if len(fanouts[drv]) > 1 {
				addSite(Site{Gate: g.ID, Pin: pin})
			}
		}
	}

	// Equivalence rules. For single-fanout connections the input pin
	// fault was never generated, so we additionally union pin faults
	// with their driver stems when the driver has fanout 1 — not
	// needed, as those were skipped. Here we collapse within gates.
	for _, g := range n.Gates {
		out := func(sa1 bool) key { return key{Site{g.ID, -1}, sa1} }
		in := func(pin int, sa1 bool) (key, bool) {
			drv := g.Fanin[pin]
			if len(fanouts[drv]) > 1 {
				return key{Site{g.ID, pin}, sa1}, true
			}
			// Single fanout: the pin fault is represented by the
			// driver's stem fault.
			return key{Site{drv, -1}, sa1}, isFaultSite(n, drv)
		}
		switch g.Kind {
		case netlist.Buf, netlist.DFF:
			for _, sa1 := range []bool{false, true} {
				if k, ok := in(0, sa1); ok {
					union(k, out(sa1))
				}
			}
		case netlist.Not:
			for _, sa1 := range []bool{false, true} {
				if k, ok := in(0, sa1); ok {
					union(k, out(!sa1))
				}
			}
		case netlist.And:
			for pin := 0; pin < 2; pin++ {
				if k, ok := in(pin, false); ok {
					union(k, out(false))
				}
			}
		case netlist.Nand:
			for pin := 0; pin < 2; pin++ {
				if k, ok := in(pin, false); ok {
					union(k, out(true))
				}
			}
		case netlist.Or:
			for pin := 0; pin < 2; pin++ {
				if k, ok := in(pin, true); ok {
					union(k, out(true))
				}
			}
		case netlist.Nor:
			for pin := 0; pin < 2; pin++ {
				if k, ok := in(pin, true); ok {
					union(k, out(false))
				}
			}
		}
	}

	// One representative per class, preferring stems over branches and
	// lower gate IDs (deterministic).
	classes := map[key][]key{}
	for _, k := range all {
		root := find(k)
		classes[root] = append(classes[root], k)
	}
	var out []Fault
	for _, members := range classes {
		rep := members[0]
		for _, m := range members[1:] {
			if better(m, rep) {
				rep = m
			}
		}
		out = append(out, Fault{Site: rep.site, SAOne: rep.sa1})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Gate != b.Gate {
			return a.Gate < b.Gate
		}
		if a.Pin != b.Pin {
			return a.Pin < b.Pin
		}
		return !a.SAOne && b.SAOne
	})
	return out
}

func isFaultSite(n *netlist.Netlist, gate int) bool {
	switch n.Gates[gate].Kind {
	case netlist.Const0, netlist.Const1:
		return false
	}
	return true
}

func better(a, b struct {
	site Site
	sa1  bool
}) bool {
	// Prefer stems (Pin==-1), then lower gate ID, then sa0.
	if (a.site.Pin < 0) != (b.site.Pin < 0) {
		return a.site.Pin < 0
	}
	if a.site.Gate != b.site.Gate {
		return a.site.Gate < b.site.Gate
	}
	if a.site.Pin != b.site.Pin {
		return a.site.Pin < b.site.Pin
	}
	return !a.sa1 && b.sa1
}

// UniverseRestrictedTo returns the subset of the collapsed universe
// whose fault sites lie on gates for which keep returns true. This is
// how the FACTOR flow targets only the faults inside the module under
// test of a transformed module.
func UniverseRestrictedTo(n *netlist.Netlist, keep func(g *netlist.Gate) bool) []Fault {
	var out []Fault
	for _, f := range Universe(n) {
		if keep(n.Gates[f.Gate]) {
			out = append(out, f)
		}
	}
	return out
}

// Vector assigns a scalar logic value to every primary input by name.
// Missing PIs default to X.
type Vector map[string]sim.Logic

// Sequence is an ordered list of input vectors applied on consecutive
// clock cycles.
type Sequence []Vector

// Result accumulates detection status over a fault list.
type Result struct {
	Faults   []Fault
	Detected []bool
}

// NewResult initializes an undetected result set.
func NewResult(faults []Fault) *Result {
	return &Result{Faults: faults, Detected: make([]bool, len(faults))}
}

// Coverage returns detected/total as a percentage (0 when empty).
func (r *Result) Coverage() float64 {
	if len(r.Faults) == 0 {
		return 0
	}
	return 100 * float64(r.NumDetected()) / float64(len(r.Faults))
}

// NumDetected counts detected faults.
func (r *Result) NumDetected() int {
	c := 0
	for _, d := range r.Detected {
		if d {
			c++
		}
	}
	return c
}

// Remaining returns the indices of undetected faults.
func (r *Result) Remaining() []int {
	var out []int
	for i, d := range r.Detected {
		if !d {
			out = append(out, i)
		}
	}
	return out
}
