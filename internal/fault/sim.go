package fault

import (
	"factor/internal/netlist"
	"factor/internal/sim"
)

// ParallelSim is a parallel-fault sequential simulator: each pass packs
// up to 63 faulty machines plus the fault-free machine (lane 0) into
// the 64 lanes of the packed simulator. All lanes receive the same
// input sequence; lane k has fault k injected persistently. A fault is
// detected when, on some cycle, a primary output is binary in both the
// good and the faulty lane and the values differ.
type ParallelSim struct {
	nl    *netlist.Netlist
	order []int
	vals  []sim.Word
	state []sim.Word

	// Injection tables for the current pass, keyed by gate ID.
	stemMask  map[int]uint64 // lanes where this gate's output is stuck
	stemOne   map[int]uint64 // of those, lanes stuck at 1
	pinInject map[int][]pinInjection
}

type pinInjection struct {
	pin   int
	mask  uint64
	saOne uint64 // lanes (within mask) stuck at 1
}

// NewParallel builds a parallel fault simulator for n.
func NewParallel(n *netlist.Netlist) *ParallelSim {
	return &ParallelSim{
		nl:    n,
		order: n.TopoOrder(),
		vals:  make([]sim.Word, len(n.Gates)),
		state: make([]sim.Word, len(n.Gates)),
	}
}

// load prepares injection tables for a batch of faults occupying lanes
// 1..len(batch).
func (p *ParallelSim) load(batch []Fault) {
	p.stemMask = map[int]uint64{}
	p.stemOne = map[int]uint64{}
	p.pinInject = map[int][]pinInjection{}
	for i, f := range batch {
		lane := uint64(1) << uint(i+1)
		if f.Pin < 0 {
			p.stemMask[f.Gate] |= lane
			if f.SAOne {
				p.stemOne[f.Gate] |= lane
			}
		} else {
			var sa uint64
			if f.SAOne {
				sa = lane
			}
			p.pinInject[f.Gate] = append(p.pinInject[f.Gate], pinInjection{pin: f.Pin, mask: lane, saOne: sa})
		}
	}
}

// inject forces the stuck lanes of w according to mask/ones.
func inject(w sim.Word, mask, ones uint64) sim.Word {
	w.Ones = (w.Ones &^ mask) | (ones & mask)
	w.Xs &^= mask
	return w
}

// eval runs one combinational evaluation with injections applied.
func (p *ParallelSim) eval() {
	var faninBuf [3]sim.Word
	for _, id := range p.order {
		g := p.nl.Gates[id]
		var out sim.Word
		switch g.Kind {
		case netlist.Input:
			out = p.vals[id] // set by applyVector
		case netlist.Const0:
			out = sim.Splat(sim.L0)
		case netlist.Const1:
			out = sim.Splat(sim.L1)
		case netlist.DFF:
			out = p.state[id]
		default:
			in := faninBuf[:len(g.Fanin)]
			for i, f := range g.Fanin {
				in[i] = p.vals[f]
			}
			for _, pi := range p.pinInject[id] {
				in[pi.pin] = inject(in[pi.pin], pi.mask, pi.saOne)
			}
			out = sim.EvalGate(g.Kind, in)
		}
		if m := p.stemMask[id]; m != 0 {
			out = inject(out, m, p.stemOne[id])
		}
		p.vals[id] = out
	}
}

// step clocks the flip-flops, applying D-pin injections.
func (p *ParallelSim) step() {
	p.eval()
	for _, f := range p.nl.DFFs {
		d := p.vals[p.nl.Gates[f].Fanin[0]]
		for _, pi := range p.pinInject[f] {
			d = inject(d, pi.mask, pi.saOne)
		}
		p.state[f] = d
	}
}

func (p *ParallelSim) applyVector(v Vector) {
	for i, pi := range p.nl.PIs {
		val, ok := v[p.nl.PINames[i]]
		if !ok {
			val = sim.LX
		}
		p.vals[pi] = sim.Splat(val)
	}
}

// resetAllX returns every flip-flop to the unknown power-up state.
func (p *ParallelSim) resetAllX() {
	for _, f := range p.nl.DFFs {
		p.state[f] = sim.Splat(sim.LX)
	}
}

// RunSequence simulates seq against the given faults and marks newly
// detected faults in res (indices parallel to res.Faults). Faults
// already detected are skipped. It returns the number of faults newly
// detected.
func (p *ParallelSim) RunSequence(res *Result, seq Sequence) int {
	newly := 0
	pending := res.Remaining()
	for start := 0; start < len(pending); start += 63 {
		end := start + 63
		if end > len(pending) {
			end = len(pending)
		}
		idxs := pending[start:end]
		batch := make([]Fault, len(idxs))
		for i, fi := range idxs {
			batch[i] = res.Faults[fi]
		}
		detectedLanes := p.runBatch(batch, seq)
		for i, fi := range idxs {
			if detectedLanes&(1<<uint(i+1)) != 0 && !res.Detected[fi] {
				res.Detected[fi] = true
				newly++
			}
		}
	}
	return newly
}

// runBatch loads one batch of faults, simulates seq from the all-X
// power-up state and returns the set of detected lanes. Detection is
// an intrinsic property of (fault, sequence): it does not depend on
// which other faults share the pass, which is what makes both fault
// dropping and the batch-parallel pool pure optimizations.
func (p *ParallelSim) runBatch(batch []Fault, seq Sequence) uint64 {
	p.load(batch)
	p.resetAllX()
	detectedLanes := uint64(0)
	for _, vec := range seq {
		p.applyVector(vec)
		p.eval()
		detectedLanes |= p.detectLanes()
		p.stepFromCurrent()
	}
	return detectedLanes
}

// stepFromCurrent clocks the flops using the values already computed by
// the preceding eval (avoids re-evaluating).
func (p *ParallelSim) stepFromCurrent() {
	for _, f := range p.nl.DFFs {
		d := p.vals[p.nl.Gates[f].Fanin[0]]
		for _, pi := range p.pinInject[f] {
			d = inject(d, pi.mask, pi.saOne)
		}
		// A stem fault on the DFF output overrides the captured state
		// permanently; handled at eval time via stemMask, but keeping
		// the state consistent here too.
		p.state[f] = d
	}
}

// detectLanes returns the lanes whose POs provably differ from lane 0.
func (p *ParallelSim) detectLanes() uint64 {
	var det uint64
	for _, po := range p.nl.POs {
		w := p.vals[po]
		switch w.Lane(0) {
		case sim.L0:
			det |= w.Ones &^ w.Xs
		case sim.L1:
			det |= ^w.Ones &^ w.Xs
		default:
			// Good value unknown: no detection credit from this PO.
			continue
		}
	}
	return det &^ 1
}

// SerialDetect is a reference implementation: it simulates the good
// machine and one faulty machine and reports whether the sequence
// detects the fault. Used to cross-check the parallel simulator.
func SerialDetect(n *netlist.Netlist, f Fault, seq Sequence) bool {
	good := NewParallel(n)
	bad := NewParallel(n)
	bad.load([]Fault{f}) // occupies lane 1
	good.load(nil)
	good.resetAllX()
	bad.resetAllX()
	for _, vec := range seq {
		good.applyVector(vec)
		bad.applyVector(vec)
		good.eval()
		bad.eval()
		for _, po := range n.POs {
			gv := good.vals[po].Lane(0)
			bv := bad.vals[po].Lane(1)
			if gv != sim.LX && bv != sim.LX && gv != bv {
				return true
			}
		}
		good.stepFromCurrent()
		bad.stepFromCurrent()
	}
	return false
}
