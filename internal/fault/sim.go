package fault

import (
	"factor/internal/netlist"
	"factor/internal/sim"
)

// ParallelSim is a parallel-fault sequential simulator: each pass packs
// up to 63 faulty machines plus the fault-free machine (lane 0) into
// the 64 lanes of the packed simulator. All lanes receive the same
// input sequence; lane k has fault k injected persistently. A fault is
// detected when, on some cycle, a primary output is binary in both the
// good and the faulty lane and the values differ.
//
// ParallelSim evaluates the full netlist every cycle and is kept as the
// reference implementation the event-driven engine (EventSim) is
// differentially verified against. Its hot loop runs over the compiled
// CSR netlist view, and the injection tables are dense slices indexed
// by gate ID — load reuses their backing arrays across batches instead
// of allocating maps.
type ParallelSim struct {
	nl    *netlist.Netlist
	c     *netlist.Compiled
	vals  []sim.Word
	state []sim.Word

	// Injection tables for the current pass, indexed by gate ID.
	// touched lists the gate IDs with any entry so load can clear in
	// O(batch) without reallocating.
	stemMask []uint64         // lanes where this gate's output is stuck
	stemOne  []uint64         // of those, lanes stuck at 1
	pinInj   [][]pinInjection // per-gate input-pin injections
	touched  []int32

	// stats counts simulation work (plain fields, no atomics: a
	// ParallelSim is single-goroutine). Events counts gate evaluations —
	// the full netlist per eval, which is exactly what the event-driven
	// engine's active-cone pruning avoids.
	stats SimStats
}

// DrainStats returns the work counters accumulated since the last drain
// and resets them.
func (p *ParallelSim) DrainStats() SimStats {
	s := p.stats
	p.stats = SimStats{}
	return s
}

type pinInjection struct {
	pin   int32
	mask  uint64
	saOne uint64 // lanes (within mask) stuck at 1
}

// NewParallel builds a parallel fault simulator for n.
func NewParallel(n *netlist.Netlist) *ParallelSim {
	c := n.Compile()
	return &ParallelSim{
		nl:       n,
		c:        c,
		vals:     make([]sim.Word, c.NumGates),
		state:    make([]sim.Word, c.NumGates),
		stemMask: make([]uint64, c.NumGates),
		stemOne:  make([]uint64, c.NumGates),
		pinInj:   make([][]pinInjection, c.NumGates),
	}
}

// load prepares injection tables for a batch of faults occupying lanes
// 1..len(batch). Tables from the previous batch are cleared in place;
// steady-state loads allocate nothing.
func (p *ParallelSim) load(batch []Fault) {
	for _, g := range p.touched {
		p.stemMask[g] = 0
		p.stemOne[g] = 0
		p.pinInj[g] = p.pinInj[g][:0]
	}
	p.touched = p.touched[:0]
	for i, f := range batch {
		lane := uint64(1) << uint(i+1)
		if p.stemMask[f.Gate] == 0 && len(p.pinInj[f.Gate]) == 0 {
			p.touched = append(p.touched, int32(f.Gate))
		}
		if f.Pin < 0 {
			p.stemMask[f.Gate] |= lane
			if f.SAOne {
				p.stemOne[f.Gate] |= lane
			}
		} else {
			var sa uint64
			if f.SAOne {
				sa = lane
			}
			p.pinInj[f.Gate] = append(p.pinInj[f.Gate], pinInjection{pin: int32(f.Pin), mask: lane, saOne: sa})
		}
	}
}

// inject forces the stuck lanes of w according to mask/ones.
func inject(w sim.Word, mask, ones uint64) sim.Word {
	w.Ones = (w.Ones &^ mask) | (ones & mask)
	w.Xs &^= mask
	return w
}

// eval runs one combinational evaluation with injections applied.
func (p *ParallelSim) eval() {
	c := p.c
	var faninBuf [3]sim.Word
	for _, id32 := range c.Order {
		id := int(id32)
		var out sim.Word
		switch netlist.GateKind(c.Kind[id]) {
		case netlist.Input:
			out = p.vals[id] // set by applyVector
		case netlist.Const0:
			out = sim.Splat(sim.L0)
		case netlist.Const1:
			out = sim.Splat(sim.L1)
		case netlist.DFF:
			out = p.state[id]
		default:
			fan := c.Fanins(id)
			in := faninBuf[:len(fan)]
			for i, f := range fan {
				in[i] = p.vals[f]
			}
			for _, pi := range p.pinInj[id] {
				in[pi.pin] = inject(in[pi.pin], pi.mask, pi.saOne)
			}
			out = sim.EvalGate(netlist.GateKind(c.Kind[id]), in)
		}
		if m := p.stemMask[id]; m != 0 {
			out = inject(out, m, p.stemOne[id])
		}
		p.vals[id] = out
	}
	p.stats.Events += uint64(len(c.Order))
	p.stats.Cycles++
}

func (p *ParallelSim) applyVector(v Vector) {
	for i, pi := range p.nl.PIs {
		val, ok := v[p.nl.PINames[i]]
		if !ok {
			val = sim.LX
		}
		p.vals[pi] = sim.Splat(val)
	}
}

// resetAllX returns every flip-flop to the unknown power-up state.
func (p *ParallelSim) resetAllX() {
	for _, f := range p.nl.DFFs {
		p.state[f] = sim.Splat(sim.LX)
	}
}

// RunSequence simulates seq against the given faults and marks newly
// detected faults in res (indices parallel to res.Faults). Faults
// already detected are skipped. It returns the number of faults newly
// detected.
func (p *ParallelSim) RunSequence(res *Result, seq Sequence) int {
	newly := 0
	pending := res.Remaining()
	for start := 0; start < len(pending); start += 63 {
		end := start + 63
		if end > len(pending) {
			end = len(pending)
		}
		idxs := pending[start:end]
		batch := make([]Fault, len(idxs))
		for i, fi := range idxs {
			batch[i] = res.Faults[fi]
		}
		detectedLanes := p.runBatch(batch, seq)
		for i, fi := range idxs {
			if detectedLanes&(1<<uint(i+1)) != 0 && !res.Detected[fi] {
				res.Detected[fi] = true
				newly++
			}
		}
	}
	return newly
}

// runBatch loads one batch of faults, simulates seq from the all-X
// power-up state and returns the set of detected lanes. Detection is
// an intrinsic property of (fault, sequence): it does not depend on
// which other faults share the pass, which is what makes fault
// dropping, the batch-parallel pool and cone-grouped batch assembly
// all pure optimizations.
func (p *ParallelSim) runBatch(batch []Fault, seq Sequence) uint64 {
	p.stats.Batches++
	p.load(batch)
	p.resetAllX()
	detectedLanes := uint64(0)
	for _, vec := range seq {
		p.applyVector(vec)
		p.eval()
		detectedLanes |= p.detectLanes()
		p.stepFromCurrent()
	}
	return detectedLanes
}

// stepFromCurrent clocks the flops using the values already computed by
// the preceding eval (avoids re-evaluating).
func (p *ParallelSim) stepFromCurrent() {
	for _, f := range p.nl.DFFs {
		d := p.vals[p.c.Fanins(f)[0]]
		for _, pi := range p.pinInj[f] {
			d = inject(d, pi.mask, pi.saOne)
		}
		// A stem fault on the DFF output overrides the captured state
		// permanently; handled at eval time via stemMask, but keeping
		// the state consistent here too.
		p.state[f] = d
	}
}

// detectLanes returns the lanes whose POs provably differ from lane 0.
func (p *ParallelSim) detectLanes() uint64 {
	var det uint64
	for _, po := range p.nl.POs {
		w := p.vals[po]
		switch w.Lane(0) {
		case sim.L0:
			det |= w.Ones &^ w.Xs
		case sim.L1:
			det |= ^w.Ones &^ w.Xs
		default:
			// Good value unknown: no detection credit from this PO.
			continue
		}
	}
	return det &^ 1
}

// SerialDetect is a reference implementation: it simulates the good
// machine and one faulty machine and reports whether the sequence
// detects the fault. Used to cross-check the parallel simulator.
func SerialDetect(n *netlist.Netlist, f Fault, seq Sequence) bool {
	good := NewParallel(n)
	bad := NewParallel(n)
	bad.load([]Fault{f}) // occupies lane 1
	good.load(nil)
	good.resetAllX()
	bad.resetAllX()
	for _, vec := range seq {
		good.applyVector(vec)
		bad.applyVector(vec)
		good.eval()
		bad.eval()
		for _, po := range n.POs {
			gv := good.vals[po].Lane(0)
			bv := bad.vals[po].Lane(1)
			if gv != sim.LX && bv != sim.LX && gv != bv {
				return true
			}
		}
		good.stepFromCurrent()
		bad.stepFromCurrent()
	}
	return false
}
