package fault

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"factor/internal/factorerr"
)

// hookPanicOnGate installs a batch hook that panics whenever the batch
// contains a fault on the given gate, and returns a restore func.
func hookPanicOnGate(gate int) func() {
	batchPanicHook = func(batch []Fault) {
		for _, f := range batch {
			if f.Gate == gate {
				panic("injected fault-sim panic")
			}
		}
	}
	return func() { batchPanicHook = nil }
}

// TestPoolQuarantinesPanic injects a panic into one batch of a pool
// pass and checks: the process survives, a structured error is
// recorded, the other batches' detections are unaffected, and the
// outcome is bit-identical for every worker count.
func TestPoolQuarantinesPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	nl := randomCircuit(rng, 5, 160, true)
	faults := Universe(nl)
	if len(faults) <= 63 {
		t.Skip("need a multi-batch fault list")
	}
	seq := randSeqFor(nl, rng, 6)

	// Clean reference.
	clean := NewResult(faults)
	NewPool(nl, 1).RunSequence(clean, seq)

	// Panic on the last fault's gate: exactly the batches containing
	// that gate are quarantined.
	poison := faults[len(faults)-1].Gate
	defer hookPanicOnGate(poison)()

	var ref *Result
	for _, workers := range []int{1, 2, 4, 8} {
		res := NewResult(faults)
		pool := NewPool(nl, workers)
		pool.RunSequence(res, seq)
		errs := pool.DrainErrors()
		if len(errs) == 0 {
			t.Fatalf("workers=%d: expected quarantine errors, got none", workers)
		}
		for _, err := range errs {
			if !errors.Is(err, &factorerr.Error{Stage: factorerr.StageFaultSim, Code: factorerr.CodePanic}) {
				t.Fatalf("workers=%d: error %v is not a structured faultsim panic", workers, err)
			}
			var fe *factorerr.Error
			if !errors.As(err, &fe) || fe.Fault == "" {
				t.Fatalf("workers=%d: quarantine error lacks a fault identity: %v", workers, err)
			}
			if len(fe.Stack) == 0 {
				t.Fatalf("workers=%d: quarantine error lacks a stack trace", workers)
			}
		}
		if ref == nil {
			ref = res
		} else if !reflect.DeepEqual(res.Detected, ref.Detected) {
			t.Fatalf("workers=%d: quarantined detection marks diverge from workers=1", workers)
		}
	}

	// The quarantined run detects a subset of the clean run, and a
	// strict subset only within the poisoned batches.
	extra := 0
	for i := range faults {
		if ref.Detected[i] && !clean.Detected[i] {
			t.Fatalf("quarantined run detected fault %v the clean run did not", faults[i])
		}
		if clean.Detected[i] && !ref.Detected[i] {
			extra++
		}
	}
	if extra == 0 {
		t.Log("note: poisoned batch happened to contain no clean detections")
	}
}

// TestFirstDetectionsQuarantinesPanic: same contract for the random
// phase's first-detection pass.
func TestFirstDetectionsQuarantinesPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	nl := randomCircuit(rng, 5, 160, true)
	faults := Universe(nl)
	if len(faults) <= 63 {
		t.Skip("need a multi-batch fault list")
	}
	seqs := make([]Sequence, 5)
	for i := range seqs {
		seqs[i] = randSeqFor(nl, rng, 4)
	}

	poison := faults[0].Gate
	defer hookPanicOnGate(poison)()

	ref, refStats, refErrs := FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	if len(refErrs) == 0 {
		t.Fatal("expected quarantine errors")
	}
	// The poisoned batch must be fully reset to -1 (deterministic
	// quarantine, no partial results).
	for i := 0; i < min(63, len(faults)); i++ {
		if ref[i] != -1 {
			t.Fatalf("fault %d of the poisoned batch has first-detection %d, want -1", i, ref[i])
		}
	}
	for _, w := range []int{2, 4, 8} {
		got, gotStats, errs := FirstDetections(context.Background(), nl, faults, seqs, w, time.Time{})
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: quarantined first-detections diverge from workers=1", w)
		}
		if gotStats != refStats {
			t.Fatalf("workers=%d: stats %+v diverge from workers=1 %+v (quarantine must stay deterministic)", w, gotStats, refStats)
		}
		if len(errs) != len(refErrs) {
			t.Fatalf("workers=%d: %d errors, want %d", w, len(errs), len(refErrs))
		}
	}
}

// TestFirstDetectionsCancellation: a canceled context stops the pass
// early without deadlock; the caller is expected to discard the result.
func TestFirstDetectionsCancellation(t *testing.T) {
	rng := rand.New(rand.NewSource(25))
	nl := randomCircuit(rng, 5, 120, true)
	faults := Universe(nl)
	seqs := make([]Sequence, 8)
	for i := range seqs {
		seqs[i] = randSeqFor(nl, rng, 4)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel() // already canceled: the pass must return promptly
	done := make(chan struct{})
	go func() {
		defer close(done)
		FirstDetections(ctx, nl, faults, seqs, 4, time.Time{})
	}()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("FirstDetections did not return after cancellation")
	}
}
