package fault

import (
	"factor/internal/netlist"
	"factor/internal/sim"
)

// RandomSequences generates nSeqs input sequences of cycles vectors
// each, drawn from a single LCG stream seeded with seed and assigned to
// the netlist's primary inputs in PINames order. The stream persists
// across sequences, so the result is a pure function of (seed, PI name
// list, nSeqs, cycles) — byte-identical across processes, worker counts
// and shard boundaries, which is what lets a re-exec'd shard regenerate
// the exact stimulus its parent planned without shipping vectors over
// the wire.
func RandomSequences(nl *netlist.Netlist, seed uint64, nSeqs, cycles int) []Sequence {
	seqs := make([]Sequence, nSeqs)
	rng := seed
	for s := range seqs {
		seq := make(Sequence, cycles)
		for t := range seq {
			vec := Vector{}
			for _, name := range nl.PINames {
				rng = rng*6364136223846793005 + 1442695040888963407
				vec[name] = sim.Logic((rng >> 33) & 1)
			}
			seq[t] = vec
		}
		seqs[s] = seq
	}
	return seqs
}
