package fault

import (
	"math/rand"
	"testing"
)

// TestPoolDrainStatsWorkerInvariance: the pool's work counters are
// bit-identical for any worker count, and drain-resets to zero.
func TestPoolDrainStatsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	nl := randomCircuit(rng, 5, 150, true)
	faults := Universe(nl)
	seqs := make([]Sequence, 4)
	for i := range seqs {
		seqs[i] = randSeqFor(nl, rng, 5)
	}

	run := func(workers int) SimStats {
		res := NewResult(faults)
		p := NewPool(nl, workers)
		for _, seq := range seqs {
			p.RunSequence(res, seq)
		}
		return p.DrainStats()
	}

	ref := run(1)
	if ref.Events == 0 || ref.Batches == 0 || ref.Cycles == 0 || ref.TraceCycles == 0 {
		t.Fatalf("work counters not populated: %+v", ref)
	}
	for _, w := range []int{2, 4, 8} {
		if got := run(w); got != ref {
			t.Fatalf("workers=%d: stats %+v diverge from workers=1 %+v", w, got, ref)
		}
	}

	// Drain must reset: an immediate second drain reads zero.
	p := NewPool(nl, 2)
	res := NewResult(faults)
	p.RunSequence(res, seqs[0])
	if s := p.DrainStats(); s == (SimStats{}) {
		t.Fatal("first drain returned zero stats")
	}
	if s := p.DrainStats(); s != (SimStats{}) {
		t.Fatalf("second drain returned non-zero stats: %+v", s)
	}
}

// TestEventSimStatsMatchSerial: a single-sim run and the serial
// EventSim.RunSequence count the same work for the same inputs.
func TestEventSimStatsMatchSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	nl := randomCircuit(rng, 4, 80, true)
	faults := Universe(nl)
	seq := randSeqFor(nl, rng, 6)

	es := NewEvent(nl)
	res := NewResult(faults)
	es.RunSequence(res, seq)
	serial := es.DrainStats()

	p := NewPool(nl, 1)
	res2 := NewResult(faults)
	p.RunSequence(res2, seq)
	pooled := p.DrainStats()

	if serial != pooled {
		t.Fatalf("serial stats %+v != pooled stats %+v", serial, pooled)
	}
}
