package fault

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strings"

	"factor/internal/sim"
)

// WriteSequences serializes test sequences in a simple line format that
// external simulators (or a tester) can replay:
//
//	# header comment lines
//	seq 0
//	clk=0 rst=1 a=1 b=X
//	clk=0 rst=0 a=0
//	seq 1
//	...
//
// Within a vector, inputs are sorted by name; unassigned inputs are
// omitted (X).
func WriteSequences(w io.Writer, tests []Sequence, header string) error {
	bw := bufio.NewWriter(w)
	if header != "" {
		for _, line := range strings.Split(strings.TrimRight(header, "\n"), "\n") {
			if _, err := fmt.Fprintf(bw, "# %s\n", line); err != nil {
				return err
			}
		}
	}
	for i, seq := range tests {
		if _, err := fmt.Fprintf(bw, "seq %d\n", i); err != nil {
			return err
		}
		for _, vec := range seq {
			names := make([]string, 0, len(vec))
			for n := range vec {
				names = append(names, n)
			}
			sort.Strings(names)
			parts := make([]string, 0, len(names))
			for _, n := range names {
				parts = append(parts, fmt.Sprintf("%s=%s", n, vec[n]))
			}
			if _, err := fmt.Fprintln(bw, strings.Join(parts, " ")); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// ReadSequences parses the format written by WriteSequences.
func ReadSequences(r io.Reader) ([]Sequence, error) {
	var tests []Sequence
	var cur Sequence
	inSeq := false
	flush := func() {
		if inSeq {
			tests = append(tests, cur)
			cur = nil
		}
	}
	sc := bufio.NewScanner(r)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if strings.HasPrefix(line, "seq ") || line == "seq" {
			flush()
			inSeq = true
			continue
		}
		if !inSeq {
			return nil, fmt.Errorf("line %d: vector before any 'seq' marker", lineNo)
		}
		vec := Vector{}
		for _, part := range strings.Fields(line) {
			eq := strings.IndexByte(part, '=')
			if eq <= 0 {
				return nil, fmt.Errorf("line %d: malformed assignment %q", lineNo, part)
			}
			name, val := part[:eq], part[eq+1:]
			switch val {
			case "0":
				vec[name] = sim.L0
			case "1":
				vec[name] = sim.L1
			case "X", "x":
				vec[name] = sim.LX
			default:
				return nil, fmt.Errorf("line %d: bad value %q for %s", lineNo, val, name)
			}
		}
		cur = append(cur, vec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	flush()
	return tests, nil
}
