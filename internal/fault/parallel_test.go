package fault

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"factor/internal/netlist"
	"factor/internal/sim"
)

func TestResolveWorkers(t *testing.T) {
	if got := ResolveWorkers(0); got < 1 {
		t.Errorf("ResolveWorkers(0) = %d, want >= 1", got)
	}
	if got := ResolveWorkers(-3); got < 1 {
		t.Errorf("ResolveWorkers(-3) = %d, want >= 1", got)
	}
	if got := ResolveWorkers(7); got != 7 {
		t.Errorf("ResolveWorkers(7) = %d, want 7", got)
	}
}

// randSeqFor builds a fully specified random sequence over the PIs of n.
func randSeqFor(n *netlist.Netlist, rng *rand.Rand, cycles int) Sequence {
	seq := make(Sequence, cycles)
	for t := range seq {
		vec := Vector{}
		for _, name := range n.PINames {
			vec[name] = sim.Logic(rng.Intn(2))
		}
		seq[t] = vec
	}
	return seq
}

// TestPoolMatchesParallelSim checks that the worker pool produces
// bit-identical detection marks and counts to the single simulator on
// randomized sequential circuits with more than 63 pending faults.
func TestPoolMatchesParallelSim(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(rng, 5, 120, true)
		faults := Universe(nl)
		if len(faults) <= 63 {
			continue // want multi-batch coverage
		}
		seqs := make([]Sequence, 4)
		for i := range seqs {
			seqs[i] = randSeqFor(nl, rng, 5)
		}

		serial := NewResult(faults)
		ps := NewParallel(nl)
		pooled := NewResult(faults)
		pool := NewPool(nl, 8)
		for _, seq := range seqs {
			nSerial := ps.RunSequence(serial, seq)
			nPool := pool.RunSequence(pooled, seq)
			if nSerial != nPool {
				t.Fatalf("trial %d: newly-detected mismatch: serial %d, pool %d", trial, nSerial, nPool)
			}
		}
		if !reflect.DeepEqual(serial.Detected, pooled.Detected) {
			t.Fatalf("trial %d: detection marks diverge between serial and pool", trial)
		}
	}
}

// TestFirstDetectionsMatchesDroppedSim verifies the theorem the random
// ATPG phase relies on: the first detecting sequence index of each
// fault (an intrinsic, order-independent property) coincides with which
// sequence detects the fault in a serial fault-dropping pass.
func TestFirstDetectionsMatchesDroppedSim(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 8; trial++ {
		nl := randomCircuit(rng, 5, 90, true)
		faults := Universe(nl)
		seqs := make([]Sequence, 6)
		for i := range seqs {
			seqs[i] = randSeqFor(nl, rng, 4)
		}

		// Reference: serial dropped simulation, recording which sequence
		// newly detects each fault.
		want := make([]int, len(faults))
		for i := range want {
			want[i] = -1
		}
		res := NewResult(faults)
		ps := NewParallel(nl)
		for si, seq := range seqs {
			before := append([]bool(nil), res.Detected...)
			ps.RunSequence(res, seq)
			for fi := range faults {
				if res.Detected[fi] && !before[fi] {
					want[fi] = si
				}
			}
		}

		got, _, errs := FirstDetections(context.Background(), nl, faults, seqs, 8, time.Time{})
		if len(errs) != 0 {
			t.Fatalf("trial %d: unexpected quarantine errors: %v", trial, errs)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: FirstDetections diverges from dropped simulation\ngot  %v\nwant %v", trial, got, want)
		}
	}
}

// TestFirstDetectionsWorkerInvariance checks bit-identical results
// across worker counts.
func TestFirstDetectionsWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	nl := randomCircuit(rng, 5, 150, true)
	faults := Universe(nl)
	seqs := make([]Sequence, 5)
	for i := range seqs {
		seqs[i] = randSeqFor(nl, rng, 4)
	}
	ref, refStats, _ := FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	for _, w := range []int{2, 4, 8} {
		got, stats, _ := FirstDetections(context.Background(), nl, faults, seqs, w, time.Time{})
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d diverges from workers=1", w)
		}
		if stats != refStats {
			t.Fatalf("workers=%d: work counters %+v diverge from workers=1 %+v", w, stats, refStats)
		}
	}
	if refStats.Events == 0 || refStats.Batches == 0 || refStats.TraceCycles == 0 {
		t.Fatalf("work counters not populated: %+v", refStats)
	}
}

func TestParallelSimClone(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	nl := randomCircuit(rng, 4, 40, true)
	faults := Universe(nl)
	seq := randSeqFor(nl, rng, 4)

	orig := NewParallel(nl)
	clone := orig.Clone()
	r1 := NewResult(faults)
	r2 := NewResult(faults)
	orig.RunSequence(r1, seq)
	clone.RunSequence(r2, seq)
	if !reflect.DeepEqual(r1.Detected, r2.Detected) {
		t.Fatal("clone detection differs from original")
	}
}
