package fault

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/netlist"
)

// ResolveWorkers maps a user-facing worker count to an effective one:
// values <= 0 select runtime.NumCPU(), anything else is used as given.
// This is the single place the "-j 0 means all cores" convention is
// implemented, shared by every CLI and by the ATPG engine.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Clone returns a fresh simulator over the same netlist. The netlist
// and its compiled view are shared read-only; the value/state arrays
// and injection tables are private, so each clone can run on its own
// goroutine without synchronization. The clone starts empty (no faults
// loaded, state unset) — callers always load and reset before a pass,
// so current values are deliberately not copied.
func (p *ParallelSim) Clone() *ParallelSim {
	return NewParallel(p.nl)
}

// batchPanicHook, when non-nil, is invoked with every simulation batch
// before it runs — the test-only injection point for exercising the
// worker panic-isolation boundaries (see TestPoolQuarantinesPanic).
var batchPanicHook func(batch []Fault)

// quarantineError converts a recovered batch panic into a structured
// error identifying the quarantined faults by their representative.
func quarantineError(r interface{}, batch []Fault) error {
	e := factorerr.FromPanic(factorerr.StageFaultSim, r)
	if len(batch) > 0 {
		e = e.WithFault(batch[0].String())
		e.Msg = fmt.Sprintf("%s (quarantined batch of %d faults)", e.Msg, len(batch))
	}
	return e
}

// Pool is a worker pool of event-driven fault simulators over one
// netlist. A sequence run against N pending faults assembles
// ceil(N/63) single-pass batches by cone locality (see coneOrder); the
// pool computes the good-machine trace once on the calling goroutine
// and fans the batches out over its workers.
//
// Determinism: each batch's detected-lane mask depends only on (batch,
// sequence) — workers share nothing but the read-only netlist and
// trace, each batch writes a distinct slot of the result slice, and
// the merge into Result happens on the calling goroutine in batch
// order. Batch assembly is a deterministic function of the pending
// list, so the outcome is bit-identical to ParallelSim.RunSequence for
// any worker count.
//
// Panic isolation: a panic inside one batch quarantines that batch (its
// faults are reported undetected for the pass) and is recorded as a
// structured error retrievable via DrainErrors; sibling batches and the
// process survive. Because batch boundaries depend only on the pending
// list, quarantine behavior is also identical for every worker count.
type Pool struct {
	nl   *netlist.Netlist
	sims []*EventSim
	tr   goodTrace // good-machine trace scratch, reused across calls

	// stats holds pool-level work counters (shared good-trace cycles);
	// per-worker engine counters stay on the sims until DrainStats.
	stats SimStats

	mu   sync.Mutex
	errs []error
}

// NewPool builds a pool with the given worker count (<= 0 selects
// runtime.NumCPU()). Each worker owns a private simulator.
func NewPool(nl *netlist.Netlist, workers int) *Pool {
	w := ResolveWorkers(workers)
	sims := make([]*EventSim, w)
	sims[0] = NewEvent(nl)
	for i := 1; i < w; i++ {
		sims[i] = sims[0].Clone()
	}
	return &Pool{nl: nl, sims: sims}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return len(p.sims) }

// DrainStats returns the work counters accumulated by the pool and its
// simulators since the last drain, and resets them. Totals are
// bit-identical for any pool size: every counted unit of work is a
// deterministic function of the pending list and sequence, independent
// of which worker performed it. Call between runs, from the same
// goroutine that calls RunSequence (whose wg.Wait orders the workers'
// counter writes before this read).
func (p *Pool) DrainStats() SimStats {
	s := p.stats
	p.stats = SimStats{}
	for _, es := range p.sims {
		s.Accumulate(es.DrainStats())
	}
	return s
}

// DrainErrors returns the structured errors recorded by quarantined
// batches since the last drain, in batch order, and clears them.
func (p *Pool) DrainErrors() []error {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := p.errs
	p.errs = nil
	return out
}

// safeRunBatch is runBatch behind the pool's panic-isolation boundary:
// a panicking batch yields zero detections and a structured error.
func safeRunBatch(es *EventSim, batch []Fault, seq Sequence, tr *goodTrace) (lanes uint64, err error) {
	defer func() {
		if r := recover(); r != nil {
			lanes = 0
			err = quarantineError(r, batch)
		}
	}()
	if batchPanicHook != nil {
		batchPanicHook(batch)
	}
	// Failpoint fault.pool.batch: keyed by the batch's lead fault —
	// batch composition is deterministic (coneOrder over the pending
	// list), so which batches fail is invariant under worker count. An
	// injected error quarantines the batch exactly like a caught panic.
	if ferr := failpoint.HitKey("fault.pool.batch", batchKey(batch)); ferr != nil {
		return 0, quarantineError(ferr, batch)
	}
	return es.runBatch(batch, seq, tr), nil
}

// batchKey is the deterministic failpoint draw key for a simulation
// batch: the lead fault's identity.
func batchKey(batch []Fault) uint64 {
	if len(batch) == 0 {
		return 0
	}
	return batch[0].Key()
}

// RunSequence simulates seq against the pending faults of res across
// the pool and marks newly detected faults, returning how many were
// newly detected. Results are identical to ParallelSim.RunSequence for
// any worker count.
func (p *Pool) RunSequence(res *Result, seq Sequence) int {
	pending := coneOrder(p.sims[0].c, res.Faults, res.Remaining())
	nbatches := (len(pending) + 62) / 63
	if nbatches == 0 {
		return 0
	}
	p.tr.compute(p.nl, p.sims[0].c, seq)
	p.stats.TraceCycles += uint64(len(seq))

	detected := make([]uint64, nbatches)
	batchErrs := make([]error, nbatches)
	runOne := func(es *EventSim, b int) {
		start := b * 63
		end := min(start+63, len(pending))
		batch := make([]Fault, end-start)
		for i, fi := range pending[start:end] {
			batch[i] = res.Faults[fi]
		}
		detected[b], batchErrs[b] = safeRunBatch(es, batch, seq, &p.tr)
	}

	if len(p.sims) == 1 || nbatches == 1 {
		for b := 0; b < nbatches; b++ {
			runOne(p.sims[0], b)
		}
	} else {
		var next int64
		var wg sync.WaitGroup
		nw := min(len(p.sims), nbatches)
		for w := 0; w < nw; w++ {
			wg.Add(1)
			go func(es *EventSim) {
				defer wg.Done()
				for {
					b := int(atomic.AddInt64(&next, 1)) - 1
					if b >= nbatches {
						return
					}
					runOne(es, b)
				}
			}(p.sims[w])
		}
		wg.Wait()
	}

	newly := 0
	for b := 0; b < nbatches; b++ {
		start := b * 63
		end := min(start+63, len(pending))
		for i, fi := range pending[start:end] {
			if detected[b]&(1<<uint(i+1)) != 0 && !res.Detected[fi] {
				res.Detected[fi] = true
				newly++
			}
		}
	}
	if err := factorerr.Collect(batchErrs); err != nil {
		p.mu.Lock()
		p.errs = append(p.errs, factorerr.Flatten(err)...)
		p.mu.Unlock()
	}
	return newly
}

// FirstDetections computes, for every fault, the index of the first
// sequence in seqs that detects it (-1 if none does). First detection
// is an intrinsic property of (fault, sequence list): it does not
// depend on fault dropping or on how faults are batched, so the result
// is identical for any worker count. It is exactly the information the
// random ATPG phase needs — a serial dropped-simulation pass over seqs
// detects fault f with sequence i iff FirstDetections reports i for f.
//
// The pass runs on the event-driven engine: each sequence's good-
// machine trace is computed once (lazily, by whichever worker reaches
// the sequence first) and shared read-only across all batches. Batches
// are contiguous slices of the fault list, which Universe emits in
// gate order — already cone-local.
//
// A non-zero deadline and the context are checked between sequences
// inside each batch; sequences not reached in time are treated as
// non-detecting (this and cancellation are the code paths where results
// may legitimately differ run to run, matching the serial engine's
// behavior under a time budget — a canceled pass is abandoned by the
// caller, never merged).
//
// A panic inside one batch quarantines the whole batch: its faults
// report -1 (no random detection — they remain eligible for the
// deterministic phase) and a structured error is returned. Errors are
// returned in batch order, so the aggregate is deterministic.
//
// The returned SimStats aggregate the pass's committed work. On a run
// that completes (no deadline/cancellation cut) they are bit-identical
// for any worker count: batch contents and the set of traces computed
// are functions of (faults, seqs) alone.
func FirstDetections(ctx context.Context, nl *netlist.Netlist, faults []Fault, seqs []Sequence, workers int, deadline time.Time) ([]int, SimStats, []error) {
	first := make([]int, len(faults))
	for i := range first {
		first[i] = -1
	}
	nbatches := (len(faults) + 62) / 63
	if nbatches == 0 || len(seqs) == 0 {
		return first, SimStats{}, nil
	}
	c := nl.Compile()
	w := min(ResolveWorkers(workers), nbatches)
	batchErrs := make([]error, nbatches)

	// Lazily shared good traces: one per sequence, computed by the
	// first worker that needs it, never recomputed per batch.
	var traceCycles atomic.Uint64
	traces := make([]*goodTrace, len(seqs))
	onces := make([]sync.Once, len(seqs))
	getTrace := func(si int) *goodTrace {
		onces[si].Do(func() {
			traces[si] = newGoodTrace(nl, c, seqs[si])
			traceCycles.Add(uint64(len(seqs[si])))
		})
		return traces[si]
	}

	workerStats := make([]SimStats, w)
	var next int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func(wi int) {
			defer wg.Done()
			es := NewEvent(nl)
			defer func() { workerStats[wi] = es.DrainStats() }()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nbatches {
					return
				}
				if ctx != nil && ctx.Err() != nil {
					return
				}
				start := b * 63
				end := min(start+63, len(faults))
				batchErrs[b] = safeFirstDetections(ctx, es, faults[start:end], seqs, getTrace, deadline, first[start:end])
			}
		}(i)
	}
	wg.Wait()

	var stats SimStats
	for _, ws := range workerStats {
		stats.Accumulate(ws)
	}
	stats.TraceCycles += traceCycles.Load()

	var errs []error
	for _, err := range batchErrs {
		if err != nil {
			errs = append(errs, err)
		}
	}
	return first, stats, errs
}

// safeFirstDetections wraps one batch in the panic-isolation boundary:
// on panic the batch's outputs are reset to -1 (deterministic
// quarantine regardless of how far the batch got).
func safeFirstDetections(ctx context.Context, es *EventSim, batch []Fault, seqs []Sequence, getTrace func(int) *goodTrace, deadline time.Time, out []int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			for i := range out {
				out[i] = -1
			}
			err = quarantineError(r, batch)
		}
	}()
	if batchPanicHook != nil {
		batchPanicHook(batch)
	}
	// Failpoint fault.firstdet.batch: same keying discipline as
	// fault.pool.batch — quarantine is a pure function of the batch.
	if ferr := failpoint.HitKey("fault.firstdet.batch", batchKey(batch)); ferr != nil {
		for i := range out {
			out[i] = -1
		}
		return quarantineError(ferr, batch)
	}
	es.firstDetections(ctx, batch, seqs, getTrace, deadline, out)
	return nil
}

// firstDetections runs all sequences against one batch of faults and
// records, per fault, the first detecting sequence index into out
// (pre-initialized to -1 by the caller). Stops early once every lane is
// detected, the deadline passes, or the context is canceled.
func (e *EventSim) firstDetections(ctx context.Context, batch []Fault, seqs []Sequence, getTrace func(int) *goodTrace, deadline time.Time, out []int) {
	e.load(batch)
	e.stats.Batches++
	var remaining uint64
	for i := range batch {
		remaining |= 1 << uint(i+1)
	}
	for si := range seqs {
		if remaining == 0 {
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		if ctx != nil && ctx.Err() != nil {
			return
		}
		det := e.runLoaded(seqs[si], getTrace(si))
		newly := det & remaining
		for i := range batch {
			if newly&(1<<uint(i+1)) != 0 {
				out[i] = si
			}
		}
		remaining &^= newly
	}
}

// firstDetections is the reference-engine counterpart used by the
// differential tests: same contract as EventSim.firstDetections, full
// re-evaluation per cycle.
func (p *ParallelSim) firstDetections(ctx context.Context, batch []Fault, seqs []Sequence, deadline time.Time, out []int) {
	p.load(batch)
	var remaining uint64
	for i := range batch {
		remaining |= 1 << uint(i+1)
	}
	for si, seq := range seqs {
		if remaining == 0 {
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		if ctx != nil && ctx.Err() != nil {
			return
		}
		p.resetAllX()
		det := uint64(0)
		for _, vec := range seq {
			p.applyVector(vec)
			p.eval()
			det |= p.detectLanes()
			p.stepFromCurrent()
		}
		newly := det & remaining
		for i := range batch {
			if newly&(1<<uint(i+1)) != 0 {
				out[i] = si
			}
		}
		remaining &^= newly
	}
}
