package fault

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// ResolveWorkers maps a user-facing worker count to an effective one:
// values <= 0 select runtime.NumCPU(), anything else is used as given.
// This is the single place the "-j 0 means all cores" convention is
// implemented, shared by every CLI and by the ATPG engine.
func ResolveWorkers(n int) int {
	if n <= 0 {
		return runtime.NumCPU()
	}
	return n
}

// Clone returns a fresh simulator over the same netlist. The netlist
// and memoized evaluation order are shared read-only; the value/state
// arrays and injection tables are private, so each clone can run on its
// own goroutine without synchronization. The clone starts empty (no
// faults loaded, state unset) — callers always load and reset before a
// pass, so current values are deliberately not copied.
func (p *ParallelSim) Clone() *ParallelSim {
	return &ParallelSim{
		nl:    p.nl,
		order: p.order,
		vals:  make([]sim.Word, len(p.vals)),
		state: make([]sim.Word, len(p.state)),
	}
}

// Pool is a worker pool of fault simulators over one netlist. A
// sequence run against N pending faults splits into ceil(N/63)
// single-pass batches; the pool fans the batches out over its workers.
//
// Determinism: each batch's detected-lane mask depends only on (batch,
// sequence) — workers share nothing but the read-only netlist, each
// batch writes a distinct slot of the result slice, and the merge into
// Result happens on the calling goroutine in batch order. The outcome
// is therefore bit-identical to ParallelSim.RunSequence for any worker
// count.
type Pool struct {
	nl   *netlist.Netlist
	sims []*ParallelSim
}

// NewPool builds a pool with the given worker count (<= 0 selects
// runtime.NumCPU()). Each worker owns a private simulator.
func NewPool(nl *netlist.Netlist, workers int) *Pool {
	w := ResolveWorkers(workers)
	sims := make([]*ParallelSim, w)
	sims[0] = NewParallel(nl)
	for i := 1; i < w; i++ {
		sims[i] = sims[0].Clone()
	}
	return &Pool{nl: nl, sims: sims}
}

// Workers reports the pool size.
func (p *Pool) Workers() int { return len(p.sims) }

// RunSequence simulates seq against the pending faults of res across
// the pool and marks newly detected faults, returning how many were
// newly detected. Results are identical to ParallelSim.RunSequence.
func (p *Pool) RunSequence(res *Result, seq Sequence) int {
	pending := res.Remaining()
	nbatches := (len(pending) + 62) / 63
	if nbatches == 0 {
		return 0
	}
	if len(p.sims) == 1 || nbatches == 1 {
		return p.sims[0].RunSequence(res, seq)
	}

	detected := make([]uint64, nbatches)
	var next int64
	var wg sync.WaitGroup
	nw := min(len(p.sims), nbatches)
	for w := 0; w < nw; w++ {
		wg.Add(1)
		go func(ps *ParallelSim) {
			defer wg.Done()
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nbatches {
					return
				}
				start := b * 63
				end := min(start+63, len(pending))
				batch := make([]Fault, end-start)
				for i, fi := range pending[start:end] {
					batch[i] = res.Faults[fi]
				}
				detected[b] = ps.runBatch(batch, seq)
			}
		}(p.sims[w])
	}
	wg.Wait()

	newly := 0
	for b := 0; b < nbatches; b++ {
		start := b * 63
		end := min(start+63, len(pending))
		for i, fi := range pending[start:end] {
			if detected[b]&(1<<uint(i+1)) != 0 && !res.Detected[fi] {
				res.Detected[fi] = true
				newly++
			}
		}
	}
	return newly
}

// FirstDetections computes, for every fault, the index of the first
// sequence in seqs that detects it (-1 if none does). First detection
// is an intrinsic property of (fault, sequence list): it does not
// depend on fault dropping or on how faults are batched, so the result
// is identical for any worker count. It is exactly the information the
// random ATPG phase needs — a serial dropped-simulation pass over seqs
// detects fault f with sequence i iff FirstDetections reports i for f.
//
// A non-zero deadline is checked between sequences inside each batch;
// sequences not reached in time are treated as non-detecting (this is
// the one code path where results may legitimately differ run to run,
// matching the serial engine's behavior under a time budget).
func FirstDetections(nl *netlist.Netlist, faults []Fault, seqs []Sequence, workers int, deadline time.Time) []int {
	first := make([]int, len(faults))
	for i := range first {
		first[i] = -1
	}
	nbatches := (len(faults) + 62) / 63
	if nbatches == 0 || len(seqs) == 0 {
		return first
	}
	w := min(ResolveWorkers(workers), nbatches)

	var next int64
	var wg sync.WaitGroup
	for i := 0; i < w; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			ps := NewParallel(nl)
			for {
				b := int(atomic.AddInt64(&next, 1)) - 1
				if b >= nbatches {
					return
				}
				start := b * 63
				end := min(start+63, len(faults))
				ps.firstDetections(faults[start:end], seqs, deadline, first[start:end])
			}
		}()
	}
	wg.Wait()
	return first
}

// firstDetections runs all sequences against one batch of faults and
// records, per fault, the first detecting sequence index into out
// (pre-initialized to -1 by the caller). Stops early once every lane is
// detected or the deadline passes.
func (p *ParallelSim) firstDetections(batch []Fault, seqs []Sequence, deadline time.Time, out []int) {
	p.load(batch)
	var remaining uint64
	for i := range batch {
		remaining |= 1 << uint(i+1)
	}
	for si, seq := range seqs {
		if remaining == 0 {
			return
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			return
		}
		p.resetAllX()
		det := uint64(0)
		for _, vec := range seq {
			p.applyVector(vec)
			p.eval()
			det |= p.detectLanes()
			p.stepFromCurrent()
		}
		newly := det & remaining
		for i := range batch {
			if newly&(1<<uint(i+1)) != 0 {
				out[i] = si
			}
		}
		remaining &^= newly
	}
}
