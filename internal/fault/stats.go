package fault

// SimStats are the deterministic work counters of the event-driven
// engine. They count committed simulation work — batches assembled,
// clock cycles swept, gate evaluations performed, diverged flops
// healed, and good-trace cycles computed — all of which are functions
// of (netlist, fault set, sequence set) only, so totals are
// bit-identical for any worker count.
//
// The fields live as plain integers on each EventSim and are summed at
// drain points; the hot sweep never touches an atomic or allocates.
type SimStats struct {
	// Batches is the number of ≤63-lane fault batches simulated.
	Batches uint64 `json:"batches"`
	// Cycles is the number of clock cycles swept across all batches.
	Cycles uint64 `json:"cycles"`
	// Events is the number of event-driven gate evaluations (worklist
	// pops) across all sweeps.
	Events uint64 `json:"events"`
	// FlopHeals counts diverged flip-flops whose re-captured state
	// matched the good machine again (the divergence was dropped).
	FlopHeals uint64 `json:"flop_heals"`
	// TraceCycles is the number of good-machine cycles simulated for
	// shared fault-free traces.
	TraceCycles uint64 `json:"trace_cycles"`
}

// Accumulate folds o into s.
func (s *SimStats) Accumulate(o SimStats) {
	s.Batches += o.Batches
	s.Cycles += o.Cycles
	s.Events += o.Events
	s.FlopHeals += o.FlopHeals
	s.TraceCycles += o.TraceCycles
}

// DrainStats returns the counters accumulated since the last drain and
// resets them. Call only between runs (the engine is single-goroutine;
// RunSequence/runBatch must not be in flight).
func (e *EventSim) DrainStats() SimStats {
	s := e.stats
	e.stats = SimStats{}
	return s
}
