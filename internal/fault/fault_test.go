package fault

import (
	"math/rand"
	"testing"

	"factor/internal/netlist"
	"factor/internal/sim"
)

func buildAnd2() *netlist.Netlist {
	n := netlist.New("and2")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.AddGate(netlist.And, a, b)
	n.AddOutput("y", y)
	return n
}

func TestUniverseCollapsedAnd2(t *testing.T) {
	n := buildAnd2()
	faults := Universe(n)
	// Classic result: a 2-input AND with fanout-free inputs collapses
	// from 6 faults to 4 (sa0 shared by both inputs and the output).
	if len(faults) != 4 {
		t.Fatalf("collapsed universe = %d faults %v, want 4", len(faults), faults)
	}
	sa0 := 0
	for _, f := range faults {
		if !f.SAOne {
			sa0++
		}
	}
	if sa0 != 1 {
		t.Errorf("sa0 classes = %d, want 1", sa0)
	}
}

func TestUniverseBranchFaults(t *testing.T) {
	// a feeds two gates: branch faults appear on both pins.
	n := netlist.New("fan")
	a := n.AddInput("a")
	b := n.AddInput("b")
	g1 := n.AddGate(netlist.And, a, b)
	g2 := n.AddGate(netlist.Or, a, b)
	n.AddOutput("y1", g1)
	n.AddOutput("y2", g2)
	faults := Universe(n)
	branch := 0
	for _, f := range faults {
		if f.Pin >= 0 {
			branch++
		}
	}
	if branch == 0 {
		t.Fatalf("no branch faults on multi-fanout stem: %v", faults)
	}
	// Stem a sa0 is NOT equivalent to either branch sa0 here (the
	// branches diverge), so both must be present.
	has := func(g, pin int, sa1 bool) bool {
		for _, f := range faults {
			if f.Gate == g && f.Pin == pin && f.SAOne == sa1 {
				return true
			}
		}
		return false
	}
	// Branch a->g1 pin0 sa0 collapses into g1 output sa0 (AND rule);
	// branch a->g2 pin0 sa1 collapses into g2 output sa1 (OR rule).
	if has(g1, 0, false) {
		t.Errorf("AND branch sa0 should have collapsed into the AND output sa0")
	}
	if has(g2, 0, true) {
		t.Errorf("OR branch sa1 should have collapsed into the OR output sa1")
	}
	if !has(g1, 0, true) || !has(g2, 0, false) {
		t.Errorf("non-collapsible branch faults missing: %v", faults)
	}
}

func TestUniverseSkipsConstants(t *testing.T) {
	n := netlist.New("c")
	a := n.AddInput("a")
	c0 := n.AddGate(netlist.Const0)
	y := n.AddGate(netlist.Or, a, c0)
	n.AddOutput("y", y)
	for _, f := range Universe(n) {
		if f.Gate == c0 && f.Pin == -1 {
			t.Errorf("constant gate has a stem fault: %v", f)
		}
	}
}

func exhaustiveVectors(names []string) Sequence {
	var seq Sequence
	n := len(names)
	for v := 0; v < 1<<uint(n); v++ {
		vec := Vector{}
		for i, name := range names {
			vec[name] = sim.Logic((v >> uint(i)) & 1)
		}
		seq = append(seq, vec)
	}
	return seq
}

func TestAnd2FullCoverage(t *testing.T) {
	n := buildAnd2()
	faults := Universe(n)
	res := NewResult(faults)
	ps := NewParallel(n)
	// Each single-cycle vector is its own sequence for combinational
	// logic; the exhaustive set detects everything.
	for _, vec := range exhaustiveVectors([]string{"a", "b"}) {
		ps.RunSequence(res, Sequence{vec})
	}
	if res.Coverage() != 100 {
		t.Errorf("coverage = %.1f%%, want 100%%", res.Coverage())
	}
}

func TestDetectionMatchesManualAnalysis(t *testing.T) {
	n := buildAnd2()
	y := n.PO("y")
	// y sa0 is detected only by a=b=1.
	saf := Fault{Site: Site{Gate: y, Pin: -1}, SAOne: false}
	if SerialDetect(n, saf, Sequence{Vector{"a": sim.L1, "b": sim.L0}}) {
		t.Error("y/sa0 detected by a=1,b=0")
	}
	if !SerialDetect(n, saf, Sequence{Vector{"a": sim.L1, "b": sim.L1}}) {
		t.Error("y/sa0 not detected by a=1,b=1")
	}
	// y sa1 is detected by any vector with output 0.
	sa1 := Fault{Site: Site{Gate: y, Pin: -1}, SAOne: true}
	if !SerialDetect(n, sa1, Sequence{Vector{"a": sim.L0, "b": sim.L0}}) {
		t.Error("y/sa1 not detected by a=0,b=0")
	}
}

func buildCounter() *netlist.Netlist {
	n := netlist.New("cnt")
	en := n.AddInput("en")
	q := n.AddGate(netlist.DFF, en)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)
	return n
}

func TestSequentialFaultNeedsSequence(t *testing.T) {
	n := buildCounter()
	q := n.DFFs[0]
	f := Fault{Site: Site{Gate: q, Pin: -1}, SAOne: false} // q stuck at 0
	// With unknown initial state, a single vector cannot detect q/sa0:
	// the good machine's output is X.
	if SerialDetect(n, f, Sequence{Vector{"en": sim.L1}}) {
		t.Error("q/sa0 detected in one cycle despite X initial state")
	}
	// en=1, en=0...: after first clock the good q is X^1 = X... use a
	// synchronizing prefix: en=1 XOR X stays X, so q/sa0 in this
	// circuit is detectable only via the XOR self-synchronizing: it is
	// not; verify a longer sequence also fails (state never leaves X
	// in the good machine).
	long := Sequence{}
	for i := 0; i < 8; i++ {
		long = append(long, Vector{"en": sim.Logic(i % 2)})
	}
	if SerialDetect(n, f, long) {
		t.Error("q/sa0 detected although good machine state is unknowable")
	}
}

func buildResettableCounter() *netlist.Netlist {
	// d = rst ? 0 : q^en  -> mux(rst, q^en, 0)
	n := netlist.New("rcnt")
	rst := n.AddInput("rst")
	en := n.AddInput("en")
	q := n.AddGate(netlist.DFF, en)
	x := n.AddGate(netlist.Xor, q, en)
	zero := n.AddGate(netlist.Const0)
	d := n.AddGate(netlist.Mux, rst, x, zero)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)
	return n
}

func TestSequentialDetectionWithReset(t *testing.T) {
	n := buildResettableCounter()
	q := n.DFFs[0]
	f := Fault{Site: Site{Gate: q, Pin: -1}, SAOne: true} // q stuck at 1
	seq := Sequence{
		Vector{"rst": sim.L1, "en": sim.L0}, // synchronize to 0
		Vector{"rst": sim.L0, "en": sim.L0}, // observe q: good 0, faulty 1
	}
	if !SerialDetect(n, f, seq) {
		t.Error("q/sa1 not detected by reset-then-observe sequence")
	}
	res := NewResult([]Fault{f})
	NewParallel(n).RunSequence(res, seq)
	if !res.Detected[0] {
		t.Error("parallel sim misses q/sa1")
	}
}

func TestParallelMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 10; trial++ {
		n := randomCircuit(rng, 4, 40, true)
		faults := Universe(n)
		var seqs []Sequence
		for s := 0; s < 4; s++ {
			var seq Sequence
			for c := 0; c < 5; c++ {
				vec := Vector{}
				for _, name := range n.PINames {
					vec[name] = sim.Logic(rng.Intn(2))
				}
				seq = append(seq, vec)
			}
			seqs = append(seqs, seq)
		}
		res := NewResult(faults)
		ps := NewParallel(n)
		for _, seq := range seqs {
			ps.RunSequence(res, seq)
		}
		// Serial reference: a fault is detected iff some sequence
		// detects it.
		for i, f := range faults {
			want := false
			for _, seq := range seqs {
				if SerialDetect(n, f, seq) {
					want = true
					break
				}
			}
			if want != res.Detected[i] {
				t.Errorf("trial %d fault %v: parallel=%v serial=%v", trial, f, res.Detected[i], want)
			}
		}
	}
}

func randomCircuit(rng *rand.Rand, nIn, nGates int, seq bool) *netlist.Netlist {
	n := netlist.New("rand")
	for i := 0; i < nIn; i++ {
		n.AddInput(string(rune('a' + i)))
	}
	for i := 0; i < nGates; i++ {
		sz := len(n.Gates)
		f1, f2, f3 := rng.Intn(sz), rng.Intn(sz), rng.Intn(sz)
		switch rng.Intn(7) {
		case 0:
			n.AddGate(netlist.And, f1, f2)
		case 1:
			n.AddGate(netlist.Or, f1, f2)
		case 2:
			n.AddGate(netlist.Xor, f1, f2)
		case 3:
			n.AddGate(netlist.Nand, f1, f2)
		case 4:
			n.AddGate(netlist.Not, f1)
		case 5:
			n.AddGate(netlist.Mux, f1, f2, f3)
		case 6:
			if seq {
				n.AddGate(netlist.DFF, f1)
			} else {
				n.AddGate(netlist.Nor, f1, f2)
			}
		}
	}
	// Random subset of gates become outputs.
	for i := 0; i < 3; i++ {
		n.AddOutput("y"+string(rune('0'+i)), rng.Intn(len(n.Gates)))
	}
	return n
}

func TestResultAccounting(t *testing.T) {
	faults := []Fault{{Site: Site{1, -1}}, {Site: Site{2, -1}}, {Site: Site{3, -1}}}
	r := NewResult(faults)
	if r.Coverage() != 0 || r.NumDetected() != 0 {
		t.Error("fresh result should be empty")
	}
	r.Detected[1] = true
	if r.NumDetected() != 1 {
		t.Error("NumDetected broken")
	}
	if got := r.Remaining(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Remaining = %v", got)
	}
	if r.Coverage() < 33.2 || r.Coverage() > 33.4 {
		t.Errorf("Coverage = %f", r.Coverage())
	}
	empty := NewResult(nil)
	if empty.Coverage() != 0 {
		t.Error("empty result coverage should be 0")
	}
}

func TestLargeBatchOver63Faults(t *testing.T) {
	// A wide XOR tree has > 63 faults; exercise multi-pass batching.
	n := netlist.New("wide")
	var ins []int
	for i := 0; i < 24; i++ {
		ins = append(ins, n.AddInput("i"+itoa(i)))
	}
	cur := ins
	for len(cur) > 1 {
		var next []int
		for i := 0; i+1 < len(cur); i += 2 {
			next = append(next, n.AddGate(netlist.Xor, cur[i], cur[i+1]))
		}
		if len(cur)%2 == 1 {
			next = append(next, cur[len(cur)-1])
		}
		cur = next
	}
	n.AddOutput("y", cur[0])
	faults := Universe(n)
	if len(faults) <= 63 {
		t.Fatalf("want >63 faults to test batching, got %d", len(faults))
	}
	res := NewResult(faults)
	ps := NewParallel(n)
	rng := rand.New(rand.NewSource(1))
	for k := 0; k < 40; k++ {
		vec := Vector{}
		for _, name := range n.PINames {
			vec[name] = sim.Logic(rng.Intn(2))
		}
		ps.RunSequence(res, Sequence{vec})
	}
	// XOR trees are highly testable: random vectors should detect
	// everything (every fault is observable through XORs).
	if res.Coverage() != 100 {
		t.Errorf("coverage = %.1f%% after 40 random vectors on XOR tree", res.Coverage())
	}
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	p := len(b)
	for i > 0 {
		p--
		b[p] = byte('0' + i%10)
		i /= 10
	}
	return string(b[p:])
}

func TestFaultString(t *testing.T) {
	f := Fault{Site: Site{Gate: 5, Pin: -1}, SAOne: true}
	if f.String() != "g5/sa1" {
		t.Errorf("String = %q", f.String())
	}
	f2 := Fault{Site: Site{Gate: 7, Pin: 1}, SAOne: false}
	if f2.String() != "g7.in1/sa0" {
		t.Errorf("String = %q", f2.String())
	}
}

func TestUniverseRestrictedTo(t *testing.T) {
	n := buildAnd2()
	named := UniverseRestrictedTo(n, func(g *netlist.Gate) bool { return g.Kind == netlist.And })
	for _, f := range named {
		if n.Gates[f.Gate].Kind != netlist.And {
			t.Errorf("restriction leaked fault %v", f)
		}
	}
	if len(named) == 0 {
		t.Error("restriction dropped everything")
	}
}
