package fault

import (
	"context"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// randSeqWithX builds a random sequence that exercises the X lanes:
// some PIs are assigned X explicitly and some are omitted entirely
// (which the simulators must also treat as X).
func randSeqWithX(n *netlist.Netlist, rng *rand.Rand, cycles int) Sequence {
	seq := make(Sequence, cycles)
	for t := range seq {
		vec := Vector{}
		for _, name := range n.PINames {
			switch rng.Intn(8) {
			case 0:
				vec[name] = sim.LX
			case 1:
				// omitted: defaults to X
			default:
				vec[name] = sim.Logic(rng.Intn(2))
			}
		}
		seq[t] = vec
	}
	return seq
}

// TestEventMatchesParallelRunSequence differentially verifies the
// event-driven engine against the full-evaluation reference on
// randomized sequential circuits: identical detection marks and
// identical newly-detected counts per sequence, including X-heavy
// stimuli.
func TestEventMatchesParallelRunSequence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 12; trial++ {
		nl := randomCircuit(rng, 5, 120, true)
		faults := Universe(nl)
		seqs := make([]Sequence, 5)
		for i := range seqs {
			if i%2 == 0 {
				seqs[i] = randSeqFor(nl, rng, 5)
			} else {
				seqs[i] = randSeqWithX(nl, rng, 5)
			}
		}

		ref := NewResult(faults)
		ps := NewParallel(nl)
		got := NewResult(faults)
		es := NewEvent(nl)
		for si, seq := range seqs {
			nRef := ps.RunSequence(ref, seq)
			nGot := es.RunSequence(got, seq)
			if nRef != nGot {
				t.Fatalf("trial %d seq %d: newly-detected mismatch: reference %d, event-driven %d", trial, si, nRef, nGot)
			}
		}
		if !reflect.DeepEqual(ref.Detected, got.Detected) {
			for i := range faults {
				if ref.Detected[i] != got.Detected[i] {
					t.Errorf("trial %d: fault %v: reference=%v event=%v", trial, faults[i], ref.Detected[i], got.Detected[i])
				}
			}
			t.Fatalf("trial %d: detection marks diverge", trial)
		}
	}
}

// TestEventBatchBitIdentical checks lane-exact equality of single
// batches: the event engine's detected-lane mask must match the
// reference engine's bit for bit, not just per-fault detection.
func TestEventBatchBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 10; trial++ {
		nl := randomCircuit(rng, 4, 80, true)
		faults := Universe(nl)
		if len(faults) > 63 {
			faults = faults[:63]
		}
		seq := randSeqWithX(nl, rng, 6)

		ps := NewParallel(nl)
		want := ps.runBatch(faults, seq)
		es := NewEvent(nl)
		tr := newGoodTrace(nl, nl.Compile(), seq)
		got := es.runBatch(faults, seq, tr)
		if want != got {
			t.Fatalf("trial %d: detected-lane masks differ: reference %064b, event %064b", trial, want, got)
		}
	}
}

// TestEventFirstDetectionsMatchesReference compares the engine-level
// first-detection pass of the event engine against the reference
// engine's, batch by batch.
func TestEventFirstDetectionsMatchesReference(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 6; trial++ {
		nl := randomCircuit(rng, 5, 100, true)
		faults := Universe(nl)
		if len(faults) > 63 {
			faults = faults[:63]
		}
		seqs := make([]Sequence, 5)
		for i := range seqs {
			seqs[i] = randSeqWithX(nl, rng, 4)
		}
		c := nl.Compile()
		traces := make([]*goodTrace, len(seqs))
		getTrace := func(si int) *goodTrace {
			if traces[si] == nil {
				traces[si] = newGoodTrace(nl, c, seqs[si])
			}
			return traces[si]
		}

		want := make([]int, len(faults))
		got := make([]int, len(faults))
		for i := range want {
			want[i], got[i] = -1, -1
		}
		NewParallel(nl).firstDetections(context.Background(), faults, seqs, time.Time{}, want)
		NewEvent(nl).firstDetections(context.Background(), faults, seqs, getTrace, time.Time{}, got)
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("trial %d: first detections diverge\nreference %v\nevent     %v", trial, want, got)
		}
	}
}

// TestEventSerialCrossCheck spot-checks the event engine against the
// two-machine serial reference on individual faults.
func TestEventSerialCrossCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	nl := randomCircuit(rng, 4, 60, true)
	faults := Universe(nl)
	seqs := make([]Sequence, 4)
	for i := range seqs {
		seqs[i] = randSeqWithX(nl, rng, 5)
	}
	res := NewResult(faults)
	es := NewEvent(nl)
	// Without dropping: run each sequence against all faults.
	perSeq := make([]*Result, len(seqs))
	for i, seq := range seqs {
		perSeq[i] = NewResult(faults)
		es.RunSequence(perSeq[i], seq)
		es.RunSequence(res, seq)
	}
	for fi, f := range faults {
		for si, seq := range seqs {
			if want := SerialDetect(nl, f, seq); want != perSeq[si].Detected[fi] {
				t.Errorf("fault %v seq %d: serial=%v event=%v", f, si, want, perSeq[si].Detected[fi])
			}
		}
	}
}

// TestEventGoodTraceMatchesSimulator pins the good-machine trace to
// the packed logic simulator: lane 0 of a full simulation must equal
// the scalar trace on every gate and cycle.
func TestEventGoodTraceMatchesSimulator(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	nl := randomCircuit(rng, 5, 90, true)
	seq := randSeqWithX(nl, rng, 6)
	tr := newGoodTrace(nl, nl.Compile(), seq)

	s := sim.New(nl)
	for t2, vec := range seq {
		s.ApplyVector(map[string]sim.Logic(vec))
		s.Eval()
		good := tr.cycle(t2)
		for id := range nl.Gates {
			if got := s.Value(id).Lane(0); got != good[id] {
				t.Fatalf("cycle %d gate %d: trace %v, simulator %v", t2, id, good[id], got)
			}
		}
		s.Step()
	}
}

// TestConeOrderDeterministicAndComplete checks that cone-grouped batch
// assembly is a permutation of the pending list and deterministic.
func TestConeOrderDeterministicAndComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	nl := randomCircuit(rng, 5, 100, true)
	faults := Universe(nl)
	res := NewResult(faults)
	c := nl.Compile()
	a := coneOrder(c, faults, res.Remaining())
	b := coneOrder(c, faults, res.Remaining())
	if !reflect.DeepEqual(a, b) {
		t.Fatal("coneOrder is not deterministic")
	}
	seen := make([]bool, len(faults))
	for _, fi := range a {
		if seen[fi] {
			t.Fatalf("coneOrder duplicates fault %d", fi)
		}
		seen[fi] = true
	}
	for i, s := range seen {
		if !s {
			t.Fatalf("coneOrder drops fault %d", i)
		}
	}
	// Cone key is the topological position: verify monotonicity.
	for i := 1; i < len(a); i++ {
		if c.Pos[faults[a[i-1]].Gate] > c.Pos[faults[a[i]].Gate] {
			t.Fatal("coneOrder not sorted by topological position")
		}
	}
}
