package fault

import (
	"context"
	"errors"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
)

// TestPoolInjectedPanicDeterministic drives the pool's quarantine
// boundary through the failpoint registry instead of the test hook: a
// probabilistic panic action keyed by batch identity must quarantine
// the same batches — same detections, same error count — for every
// worker count.
func TestPoolInjectedPanicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	nl := randomCircuit(rng, 5, 200, true)
	faults := Universe(nl)
	if len(faults) <= 63*2 {
		t.Skip("need several batches")
	}
	seq := randSeqFor(nl, rng, 6)

	reg, err := failpoint.Parse("fault.pool.batch=panic:0.5:11")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(reg)
	defer failpoint.Deactivate()

	var ref *Result
	var refErrs int
	for _, workers := range []int{1, 2, 4, 8} {
		res := NewResult(faults)
		pool := NewPool(nl, workers)
		pool.RunSequence(res, seq)
		errs := pool.DrainErrors()
		for _, err := range errs {
			if !errors.Is(err, &factorerr.Error{Stage: factorerr.StageFaultSim, Code: factorerr.CodePanic}) {
				t.Fatalf("workers=%d: error %v is not a structured faultsim panic", workers, err)
			}
		}
		if ref == nil {
			ref, refErrs = res, len(errs)
			if refErrs == 0 {
				t.Fatal("probability 0.5 quarantined no batch; seed is degenerate")
			}
			continue
		}
		if !reflect.DeepEqual(res.Detected, ref.Detected) {
			t.Fatalf("workers=%d: detections diverge from workers=1 under injected panics", workers)
		}
		if len(errs) != refErrs {
			t.Fatalf("workers=%d: %d quarantine errors, want %d", workers, len(errs), refErrs)
		}
	}
}

// TestPoolInjectedErrorMatchesPanic: the error action takes the same
// quarantine path as a panic — batch dropped, structured error, no
// partial detections — so chaos runs can use the cheaper action.
func TestPoolInjectedErrorMatchesPanic(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	nl := randomCircuit(rng, 5, 160, true)
	faults := Universe(nl)
	if len(faults) <= 63 {
		t.Skip("need a multi-batch fault list")
	}
	seq := randSeqFor(nl, rng, 6)

	run := func(action string) (*Result, int) {
		reg, err := failpoint.Parse("fault.pool.batch=" + action + ":0.5:11")
		if err != nil {
			t.Fatal(err)
		}
		failpoint.Activate(reg)
		defer failpoint.Deactivate()
		res := NewResult(faults)
		pool := NewPool(nl, 3)
		pool.RunSequence(res, seq)
		return res, len(pool.DrainErrors())
	}
	pres, perrs := run("panic")
	eres, eerrs := run("error")
	if !reflect.DeepEqual(pres.Detected, eres.Detected) {
		t.Fatal("panic and error actions quarantine different detections for the same draw")
	}
	if perrs != eerrs || perrs == 0 {
		t.Fatalf("panic action produced %d errors, error action %d; want equal and nonzero", perrs, eerrs)
	}
}

// TestFirstDetectionsInjectedPanicDeterministic: same contract for the
// first-detection pass, including the work-counter stats.
func TestFirstDetectionsInjectedPanicDeterministic(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	nl := randomCircuit(rng, 5, 200, true)
	faults := Universe(nl)
	if len(faults) <= 63*2 {
		t.Skip("need several batches")
	}
	seqs := make([]Sequence, 5)
	for i := range seqs {
		seqs[i] = randSeqFor(nl, rng, 4)
	}

	reg, err := failpoint.Parse("fault.firstdet.batch=panic:0.5:13")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(reg)
	defer failpoint.Deactivate()

	ref, refStats, refErrs := FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	if len(refErrs) == 0 {
		t.Fatal("probability 0.5 quarantined no batch; seed is degenerate")
	}
	for _, w := range []int{2, 4, 8} {
		got, gotStats, errs := FirstDetections(context.Background(), nl, faults, seqs, w, time.Time{})
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("workers=%d: first-detections diverge from workers=1 under injected panics", w)
		}
		if gotStats != refStats {
			t.Fatalf("workers=%d: stats diverge from workers=1: %+v vs %+v", w, gotStats, refStats)
		}
		if len(errs) != len(refErrs) {
			t.Fatalf("workers=%d: %d errors, want %d", w, len(errs), len(refErrs))
		}
	}
}
