package fault

import (
	"math/rand"
	"testing"
)

// allocFixture builds a moderately sized sequential circuit, a fault
// batch, and a sequence with its precomputed good trace, for the
// steady-state allocation regressions below.
func allocFixture(t *testing.T) (es *EventSim, ps *ParallelSim, batch []Fault, seq Sequence, tr *goodTrace) {
	t.Helper()
	rng := rand.New(rand.NewSource(61))
	nl := randomCircuit(rng, 5, 200, true)
	faults := Universe(nl)
	if len(faults) > 63 {
		faults = faults[:63]
	}
	seq = randSeqFor(nl, rng, 10)
	es = NewEvent(nl)
	ps = NewParallel(nl)
	tr = newGoodTrace(nl, nl.Compile(), seq)
	return es, ps, faults, seq, tr
}

// TestEventSimZeroAllocSteadyState asserts that, once warmed up, the
// event-driven engine's hot loop — load, per-cycle sweep, clocking,
// detection — performs zero heap allocations per batch (and therefore
// per simulated cycle).
func TestEventSimZeroAllocSteadyState(t *testing.T) {
	es, _, batch, seq, tr := allocFixture(t)
	// Warm up: grow the worklist buckets and injection lists to their
	// steady-state capacity.
	for i := 0; i < 3; i++ {
		es.runBatch(batch, seq, tr)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		es.runBatch(batch, seq, tr)
	}); allocs != 0 {
		t.Fatalf("EventSim.runBatch allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// TestParallelSimZeroAllocSteadyState asserts the reference engine's
// batch loop also runs allocation-free: load reuses the dense injection
// tables' backing arrays instead of building fresh maps per batch.
func TestParallelSimZeroAllocSteadyState(t *testing.T) {
	_, ps, batch, seq, _ := allocFixture(t)
	for i := 0; i < 3; i++ {
		ps.runBatch(batch, seq)
	}
	if allocs := testing.AllocsPerRun(50, func() {
		ps.runBatch(batch, seq)
	}); allocs != 0 {
		t.Fatalf("ParallelSim.runBatch allocates %.1f objects per run in steady state, want 0", allocs)
	}
}

// TestGoodTraceComputeReusesStorage asserts the trace scratch is reused
// across compute calls on same-size sequences.
func TestGoodTraceComputeReusesStorage(t *testing.T) {
	es, _, _, seq, _ := allocFixture(t)
	var tr goodTrace
	tr.compute(es.nl, es.c, seq)
	if allocs := testing.AllocsPerRun(20, func() {
		tr.compute(es.nl, es.c, seq)
	}); allocs != 0 {
		t.Fatalf("goodTrace.compute allocates %.1f objects per run with warm storage, want 0", allocs)
	}
}
