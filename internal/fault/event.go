package fault

import (
	"slices"

	"factor/internal/netlist"
	"factor/internal/sim"
)

// goodTrace holds the fault-free machine's scalar value of every gate
// on every cycle of one input sequence. The good machine depends only
// on the sequence — never on which faults share a pass — so one trace
// is computed per sequence and shared read-only across every fault
// batch, instead of re-simulating lane 0 per batch as ParallelSim does.
//
// Values are stored as one sim.Logic byte per gate per cycle; the
// event-driven engine splats them into packed words on demand.
type goodTrace struct {
	gates  int
	cycles int
	vals   []sim.Logic // vals[t*gates+g], post-eval value of gate g on cycle t

	// scratch for compute, reused across calls.
	cur, state []sim.Logic
}

// cycle returns the per-gate good values of cycle t.
func (tr *goodTrace) cycle(t int) []sim.Logic {
	return tr.vals[t*tr.gates : (t+1)*tr.gates]
}

// splatTab[v] == sim.Splat(v) for the three scalar values; an array
// load is measurably cheaper than Splat's switch in the sweep's inner
// loop, where it runs several times per evaluated gate.
var splatTab = [3]sim.Word{
	{Ones: 0, Xs: 0},
	{Ones: ^uint64(0), Xs: 0},
	{Ones: 0, Xs: ^uint64(0)},
}

// compute simulates the fault-free machine over seq, reusing the
// trace's backing storage when capacity allows.
func (tr *goodTrace) compute(nl *netlist.Netlist, c *netlist.Compiled, seq Sequence) {
	ng := c.NumGates
	tr.gates = ng
	tr.cycles = len(seq)
	if cap(tr.vals) < ng*len(seq) {
		tr.vals = make([]sim.Logic, ng*len(seq))
	}
	tr.vals = tr.vals[:ng*len(seq)]
	if cap(tr.cur) < ng {
		tr.cur = make([]sim.Logic, ng)
		tr.state = make([]sim.Logic, ng)
	}
	cur, state := tr.cur[:ng], tr.state[:ng]
	for _, f := range c.DFFs {
		state[f] = sim.LX // unknown power-up state
	}
	for t, vec := range seq {
		for i, pi := range nl.PIs {
			val, ok := vec[nl.PINames[i]]
			if !ok {
				val = sim.LX
			}
			cur[pi] = val
		}
		for _, id32 := range c.Order {
			id := int(id32)
			switch kind := netlist.GateKind(c.Kind[id]); kind {
			case netlist.Input:
				// set above
			case netlist.Const0:
				cur[id] = sim.L0
			case netlist.Const1:
				cur[id] = sim.L1
			case netlist.DFF:
				cur[id] = state[id]
			case netlist.Mux:
				fan := c.Fanins(id)
				cur[id] = sim.MuxL(cur[fan[0]], cur[fan[1]], cur[fan[2]])
			default:
				// 1- and 2-input kinds via truth-table load: this loop
				// visits every gate once per cycle per sequence, so the
				// table beats EvalGateL's switch by a useful margin.
				fan := c.Fanins(id)
				if len(fan) == 1 {
					cur[id] = sim.Tab1[kind][cur[fan[0]]]
				} else {
					cur[id] = sim.Tab2[kind][cur[fan[0]]*3+cur[fan[1]]]
				}
			}
		}
		copy(tr.vals[t*ng:(t+1)*ng], cur)
		for _, f := range c.DFFs {
			state[f] = cur[c.Fanins(int(f))[0]]
		}
	}
}

// newGoodTrace computes the good-machine trace of seq.
func newGoodTrace(nl *netlist.Netlist, c *netlist.Compiled, seq Sequence) *goodTrace {
	tr := &goodTrace{}
	tr.compute(nl, c, seq)
	return tr
}

// EventSim is the event-driven, cone-restricted fault simulator: the
// production engine behind Pool and FirstDetections. Like ParallelSim
// it packs up to 63 faulty machines into lanes 1..63 of a packed word,
// but instead of re-evaluating the whole netlist per cycle it
// evaluates only the gates that can differ from the fault-free
// machine:
//
//   - the good machine is simulated once per sequence (shared across
//     batches via goodTrace) — lane values of any gate outside the
//     batch's divergence set are a splat of the good scalar;
//   - each cycle seeds a levelized worklist with the injection sites
//     and the flip-flops whose faulty state diverged on earlier
//     cycles, then sweeps level by level through the union of the
//     faults' fanout cones;
//   - propagation stops at any gate whose packed output word equals
//     the good word (the fault effects were masked), so the swept
//     region is the *active* cone, usually far smaller than the
//     structural one.
//
// Detection semantics are bit-identical to ParallelSim, which is kept
// as the reference implementation (see TestEventMatchesParallel* and
// FuzzEventDrivenEquivalence).
type EventSim struct {
	nl *netlist.Netlist
	c  *netlist.Compiled

	// Dense injection tables, indexed by gate ID (same layout as
	// ParallelSim). injTouched lists every gate with an entry;
	// injGates the gates seeded into the per-cycle sweep (stem
	// injections anywhere, pin injections on combinational gates);
	// injFlops the DFFs with a D-pin injection (applied at clocking).
	stemMask   []uint64
	stemOne    []uint64
	pinInj     [][]pinInjection
	injTouched []int32
	injGates   []int32
	injFlops   []int32

	// Per-cycle divergence overlay: faulty[g] is the packed word of
	// gate g on the current cycle iff divergedAt[g] == epoch;
	// otherwise the gate's value is Splat(good[g]).
	faulty     []sim.Word
	divergedAt []uint32
	queuedAt   []uint32
	epoch      uint32

	// Sparse faulty flip-flop state, persisting across cycles of one
	// sequence: fstate[f] is valid iff flopDiverged[f]; divFlops lists
	// the diverged flops.
	fstate       []sim.Word
	flopDiverged []bool
	divFlops     []int32

	// Levelized worklist: one flat buffer partitioned by c.LevelStart
	// (a gate queues at most once per cycle, so level l's segment never
	// overflows its gate count), plus per-level fill counts and the
	// per-cycle flop-candidate list. All reused across cycles (zero
	// steady-state allocations).
	bucketBuf  []int32
	bucketLen  []int32
	flopCand   []int32
	flopCandAt []uint32

	// Good-trace and batch scratch for RunSequence, reused across
	// calls.
	tr           goodTrace
	batchScratch []Fault

	// stats counts committed work; drained via DrainStats. Plain
	// fields: the sweep stays allocation- and atomic-free.
	stats SimStats
}

// NewEvent builds an event-driven fault simulator for n.
func NewEvent(n *netlist.Netlist) *EventSim {
	c := n.Compile()
	ng := c.NumGates
	return &EventSim{
		nl:           n,
		c:            c,
		stemMask:     make([]uint64, ng),
		stemOne:      make([]uint64, ng),
		pinInj:       make([][]pinInjection, ng),
		faulty:       make([]sim.Word, ng),
		divergedAt:   make([]uint32, ng),
		queuedAt:     make([]uint32, ng),
		fstate:       make([]sim.Word, ng),
		flopDiverged: make([]bool, ng),
		bucketBuf:    make([]int32, ng),
		bucketLen:    make([]int32, c.NumLevels),
		flopCandAt:   make([]uint32, ng),
	}
}

// Clone returns a fresh event simulator over the same netlist. The
// netlist and compiled view are shared read-only; everything else is
// private, so each clone can run on its own goroutine.
func (e *EventSim) Clone() *EventSim { return NewEvent(e.nl) }

// load prepares the dense injection tables for a batch occupying lanes
// 1..len(batch) and classifies the seed sets. Previous tables are
// cleared in place; steady-state loads allocate nothing.
func (e *EventSim) load(batch []Fault) {
	for _, g := range e.injTouched {
		e.stemMask[g] = 0
		e.stemOne[g] = 0
		e.pinInj[g] = e.pinInj[g][:0]
	}
	e.injTouched = e.injTouched[:0]
	e.injGates = e.injGates[:0]
	e.injFlops = e.injFlops[:0]
	for i, f := range batch {
		lane := uint64(1) << uint(i+1)
		if e.stemMask[f.Gate] == 0 && len(e.pinInj[f.Gate]) == 0 {
			e.injTouched = append(e.injTouched, int32(f.Gate))
		}
		if f.Pin < 0 {
			e.stemMask[f.Gate] |= lane
			if f.SAOne {
				e.stemOne[f.Gate] |= lane
			}
		} else {
			var sa uint64
			if f.SAOne {
				sa = lane
			}
			e.pinInj[f.Gate] = append(e.pinInj[f.Gate], pinInjection{pin: int32(f.Pin), mask: lane, saOne: sa})
		}
	}
	for _, g := range e.injTouched {
		kind := netlist.GateKind(e.c.Kind[g])
		// Stem injections override the output at eval time for every
		// kind; pin injections force inputs of combinational gates at
		// eval time but DFF D-pins only at clocking.
		if e.stemMask[g] != 0 || (kind.Combinational() && len(e.pinInj[g]) > 0) {
			e.injGates = append(e.injGates, g)
		}
		if kind == netlist.DFF && len(e.pinInj[g]) > 0 {
			e.injFlops = append(e.injFlops, g)
		}
	}
}

// push queues gate g for evaluation in the current cycle's sweep.
func (e *EventSim) push(g int32) {
	if e.queuedAt[g] == e.epoch {
		return
	}
	e.queuedAt[g] = e.epoch
	l := e.c.Level[g]
	e.bucketBuf[e.c.LevelStart[l]+e.bucketLen[l]] = g
	e.bucketLen[l]++
}

// addFlopCand queues DFF f for re-capture at the end of the cycle.
func (e *EventSim) addFlopCand(f int32) {
	if e.flopCandAt[f] == e.epoch {
		return
	}
	e.flopCandAt[f] = e.epoch
	e.flopCand = append(e.flopCand, f)
}

// value returns the packed word of gate g on the current cycle: the
// faulty overlay if g diverged this cycle, else a splat of its good
// value.
func (e *EventSim) value(g int32, good []sim.Logic) sim.Word {
	if e.divergedAt[g] == e.epoch {
		return e.faulty[g]
	}
	return splatTab[good[g]]
}

// evalGate computes gate g's packed output with injections applied.
func (e *EventSim) evalGate(g int32, good []sim.Logic) sim.Word {
	var out sim.Word
	switch netlist.GateKind(e.c.Kind[g]) {
	case netlist.Input, netlist.Const0, netlist.Const1:
		// These only ever diverge through a stem injection.
		out = splatTab[good[g]]
	case netlist.DFF:
		if e.flopDiverged[g] {
			out = e.fstate[g]
		} else {
			out = splatTab[good[g]]
		}
	default:
		fan := e.c.Fanins(int(g))
		if len(e.pinInj[g]) != 0 {
			var faninBuf [3]sim.Word
			in := faninBuf[:len(fan)]
			for i, f := range fan {
				in[i] = e.value(f, good)
			}
			for _, pi := range e.pinInj[g] {
				in[pi.pin] = inject(in[pi.pin], pi.mask, pi.saOne)
			}
			out = sim.EvalGate(netlist.GateKind(e.c.Kind[g]), in)
			break
		}
		// No pin injections (the common case): dispatch directly to the
		// word operations, skipping EvalGate's switch and the fanin
		// buffer copies. All stored words are canonical, so Buf needs no
		// renormalization.
		switch netlist.GateKind(e.c.Kind[g]) {
		case netlist.Buf:
			out = e.value(fan[0], good)
		case netlist.Not:
			out = sim.Not(e.value(fan[0], good))
		case netlist.And:
			out = sim.And(e.value(fan[0], good), e.value(fan[1], good))
		case netlist.Or:
			out = sim.Or(e.value(fan[0], good), e.value(fan[1], good))
		case netlist.Nand:
			out = sim.Not(sim.And(e.value(fan[0], good), e.value(fan[1], good)))
		case netlist.Nor:
			out = sim.Not(sim.Or(e.value(fan[0], good), e.value(fan[1], good)))
		case netlist.Xor:
			out = sim.Xor(e.value(fan[0], good), e.value(fan[1], good))
		case netlist.Xnor:
			out = sim.Not(sim.Xor(e.value(fan[0], good), e.value(fan[1], good)))
		case netlist.Mux:
			out = sim.MuxW(e.value(fan[0], good), e.value(fan[1], good), e.value(fan[2], good))
		default:
			out = splatTab[good[g]]
		}
	}
	if m := e.stemMask[g]; m != 0 {
		out = inject(out, m, e.stemOne[g])
	}
	return out
}

// detLanes returns the lanes of w that provably differ from the good
// scalar value gv (the per-PO detection rule of ParallelSim).
func detLanes(w sim.Word, gv sim.Logic) uint64 {
	switch gv {
	case sim.L0:
		return (w.Ones &^ w.Xs) &^ 1
	case sim.L1:
		return (^w.Ones &^ w.Xs) &^ 1
	}
	return 0 // good value unknown: no detection credit
}

// bumpEpoch advances the per-cycle stamp, re-zeroing the stamp arrays
// on the (effectively never taken) wraparound.
func (e *EventSim) bumpEpoch() {
	e.epoch++
	if e.epoch == 0 {
		clear(e.divergedAt)
		clear(e.queuedAt)
		clear(e.flopCandAt)
		e.epoch = 1
	}
}

// resetSequence clears the sequential divergence state between
// sequences (the all-X power-up state never diverges by itself).
func (e *EventSim) resetSequence() {
	for _, f := range e.divFlops {
		e.flopDiverged[f] = false
	}
	e.divFlops = e.divFlops[:0]
}

// cycle simulates one clock cycle of the loaded batch against the good
// values of trace cycle t and returns the newly detected lanes.
func (e *EventSim) cycle(good []sim.Logic) uint64 {
	e.bumpEpoch()
	// Seeds: every eval-time injection site, plus every flop whose
	// state diverged on an earlier cycle (it must propagate its stale
	// divergence and be re-captured — possibly healing).
	for _, g := range e.injGates {
		e.push(g)
	}
	for _, f := range e.divFlops {
		e.push(f)
		e.addFlopCand(f)
	}
	for _, f := range e.injFlops {
		e.addFlopCand(f)
	}

	var det uint64
	var evals uint64
	c := e.c
	for l := 0; l < len(e.bucketLen); l++ {
		base := c.LevelStart[l]
		// Fanouts of combinational gates sit at strictly higher levels
		// and DFF readers go to the flop-candidate list, so this
		// segment is complete before it is scanned.
		for i := int32(0); i < e.bucketLen[l]; i++ {
			g := e.bucketBuf[base+i]
			evals++
			out := e.evalGate(g, good)
			if out == splatTab[good[g]] {
				continue // masked: the cone is pruned here
			}
			e.faulty[g] = out
			e.divergedAt[g] = e.epoch
			if c.IsPO[g] {
				det |= detLanes(out, good[g])
			}
			for _, fr := range c.FanoutRefs[c.FanoutStart[g]:c.FanoutStart[g+1]] {
				if fr.Level < 0 {
					e.addFlopCand(fr.ID)
				} else if e.queuedAt[fr.ID] != e.epoch {
					e.queuedAt[fr.ID] = e.epoch
					e.bucketBuf[c.LevelStart[fr.Level]+e.bucketLen[fr.Level]] = fr.ID
					e.bucketLen[fr.Level]++
				}
			}
		}
		e.bucketLen[l] = 0
	}

	// Clock: re-capture every candidate flop. A flop heals when its
	// captured word matches the good next state.
	for _, f := range e.flopCand {
		d := e.value(c.Fanins(int(f))[0], good)
		for _, pi := range e.pinInj[f] {
			d = inject(d, pi.mask, pi.saOne)
		}
		goodNext := splatTab[good[c.Fanins(int(f))[0]]]
		if d != goodNext {
			e.fstate[f] = d
			if !e.flopDiverged[f] {
				e.flopDiverged[f] = true
				e.divFlops = append(e.divFlops, f)
			}
		} else if e.flopDiverged[f] {
			e.flopDiverged[f] = false
			e.stats.FlopHeals++
		}
	}
	e.flopCand = e.flopCand[:0]
	// Compact the diverged-flop list in place.
	k := 0
	for _, f := range e.divFlops {
		if e.flopDiverged[f] {
			e.divFlops[k] = f
			k++
		}
	}
	e.divFlops = e.divFlops[:k]
	e.stats.Events += evals
	e.stats.Cycles++
	return det
}

// runLoaded simulates seq against the already-loaded batch from the
// all-X power-up state and returns the detected lanes. tr must be the
// good trace of seq.
func (e *EventSim) runLoaded(seq Sequence, tr *goodTrace) uint64 {
	e.resetSequence()
	var detected uint64
	for t := range seq {
		detected |= e.cycle(tr.cycle(t))
	}
	return detected
}

// runBatch loads one batch and simulates seq against it.
func (e *EventSim) runBatch(batch []Fault, seq Sequence, tr *goodTrace) uint64 {
	e.load(batch)
	e.stats.Batches++
	return e.runLoaded(seq, tr)
}

// coneOrder returns the pending fault indices reordered by the
// topological position of their fault site. Detection is an intrinsic
// property of (fault, sequence), so regrouping batches never changes
// results — but faults that sit close together in topological order
// overlap heavily in their fanout cones, so slicing the reordered list
// into 63-lane batches keeps each batch's active cone tight. The order
// is a deterministic function of the pending list.
func coneOrder(c *netlist.Compiled, faults []Fault, pending []int) []int {
	out := append([]int(nil), pending...)
	if len(out) <= 63 {
		// A single batch: grouping cannot change the batch's cone union,
		// and detection is intrinsic per fault, so skip the sort.
		return out
	}
	// Sort (Pos, original index) packed into int64 keys: same order as a
	// two-key comparison sort, without interface dispatch per compare.
	keys := make([]int64, len(out))
	for i, fi := range out {
		keys[i] = int64(c.Pos[faults[fi].Gate])<<32 | int64(int32(fi))
	}
	slices.Sort(keys)
	for i, k := range keys {
		out[i] = int(int32(k))
	}
	return out
}

// RunSequence simulates seq against the pending faults of res and
// marks newly detected faults, returning how many were newly detected.
// Results are bit-identical to ParallelSim.RunSequence; the batches
// are assembled by cone locality and evaluated event-driven.
func (e *EventSim) RunSequence(res *Result, seq Sequence) int {
	pending := coneOrder(e.c, res.Faults, res.Remaining())
	if len(pending) == 0 {
		return 0
	}
	e.tr.compute(e.nl, e.c, seq)
	e.stats.TraceCycles += uint64(len(seq))
	tr := &e.tr
	newly := 0
	for start := 0; start < len(pending); start += 63 {
		end := min(start+63, len(pending))
		idxs := pending[start:end]
		batch := e.batchScratch[:0]
		for _, fi := range idxs {
			batch = append(batch, res.Faults[fi])
		}
		e.batchScratch = batch
		detectedLanes := e.runBatch(batch, seq, tr)
		for i, fi := range idxs {
			if detectedLanes&(1<<uint(i+1)) != 0 && !res.Detected[fi] {
				res.Detected[fi] = true
				newly++
			}
		}
	}
	return newly
}
