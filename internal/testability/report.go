package testability

import (
	"fmt"
	"sort"
	"strings"

	"factor/internal/netlist"
)

// Net is the full SCOAP row of one net (the net driven by gate ID).
// Inf-valued metrics render as "inf" in the text report and as the
// literal Inf constant in JSON.
type Net struct {
	ID   int    `json:"id"`
	Name string `json:"name,omitempty"`
	Kind string `json:"kind"`
	CC0  int32  `json:"cc0"`
	CC1  int32  `json:"cc1"`
	CO   int32  `json:"co"`
	SC0  int32  `json:"sc0"`
	SC1  int32  `json:"sc1"`
	SO   int32  `json:"so"`
}

// Report is the SCOAP summary of one netlist, shaped for both the
// text rendering (Format) and `cmd/testability -json`.
type Report struct {
	Design string `json:"design"`
	Gates  int    `json:"gates"`
	Levels int    `json:"levels"`

	ForwardSweeps  int    `json:"forward_sweeps"`
	BackwardSweeps int    `json:"backward_sweeps"`
	GateVisits     uint64 `json:"gate_visits"`

	// HardestControl ranks the K nets with the highest max(CC0, CC1)
	// (constants and primary inputs excluded — their difficulty is
	// definitional, not structural). HardestObserve ranks by CO.
	// Ties break by ascending net ID, so the lists are deterministic.
	HardestControl []Net `json:"hardest_control"`
	HardestObserve []Net `json:"hardest_observe"`

	// Stems lists the reconvergent fanout stems (see ReconvergentStems).
	Stems []Stem `json:"reconvergent_stems,omitempty"`

	// Nets is the full per-net dump, present only when requested.
	Nets []Net `json:"nets,omitempty"`
}

// netRow materializes the Net row for gate id, naming it when the
// netlist labels it (ports, named signals).
func netRow(nl *netlist.Netlist, m *Metrics, id int) Net {
	return Net{
		ID:   id,
		Name: nl.Gates[id].Name,
		Kind: netlist.GateKind(nl.Gates[id].Kind).String(),
		CC0:  m.CC0[id], CC1: m.CC1[id], CO: m.CO[id],
		SC0: m.SC0[id], SC1: m.SC1[id], SO: m.SO[id],
	}
}

// BuildReport assembles the SCOAP report for a netlist: metrics must
// come from Compute on nl.Compile(), stems from ReconvergentStems (nil
// to omit). k bounds the hardest-K lists; full additionally includes
// the complete per-net table.
func BuildReport(nl *netlist.Netlist, m *Metrics, stems []Stem, k int, full bool) *Report {
	n := len(nl.Gates)
	r := &Report{
		Design: nl.Name,
		Gates:  nl.NumGates(),
		Levels: nl.Compile().NumLevels,

		ForwardSweeps:  m.ForwardSweeps,
		BackwardSweeps: m.BackwardSweeps,
		GateVisits:     m.GateVisits,
		Stems:          stems,
	}
	ctrl := make([]int, 0, n)
	obs := make([]int, 0, n)
	for id := 0; id < n; id++ {
		switch netlist.GateKind(nl.Gates[id].Kind) {
		case netlist.Const0, netlist.Const1:
			continue
		case netlist.Input:
			// Inputs are free to control but still rank for observation.
			obs = append(obs, id)
			continue
		}
		ctrl = append(ctrl, id)
		obs = append(obs, id)
	}
	ctrlKey := func(id int) int32 {
		if m.CC0[id] > m.CC1[id] {
			return m.CC0[id]
		}
		return m.CC1[id]
	}
	sort.SliceStable(ctrl, func(i, j int) bool {
		a, b := ctrl[i], ctrl[j]
		ka, kb := ctrlKey(a), ctrlKey(b)
		if ka != kb {
			return ka > kb
		}
		return a < b
	})
	sort.SliceStable(obs, func(i, j int) bool {
		a, b := obs[i], obs[j]
		if m.CO[a] != m.CO[b] {
			return m.CO[a] > m.CO[b]
		}
		return a < b
	})
	if k > len(ctrl) {
		k = len(ctrl)
	}
	for _, id := range ctrl[:k] {
		r.HardestControl = append(r.HardestControl, netRow(nl, m, id))
	}
	ko := k
	if ko > len(obs) {
		ko = len(obs)
	}
	for _, id := range obs[:ko] {
		r.HardestObserve = append(r.HardestObserve, netRow(nl, m, id))
	}
	if full {
		for id := 0; id < n; id++ {
			r.Nets = append(r.Nets, netRow(nl, m, id))
		}
	}
	return r
}

// fmtCost renders a metric, abbreviating the saturated value.
func fmtCost(v int32) string {
	if v >= Inf {
		return "inf"
	}
	return fmt.Sprintf("%d", v)
}

func writeRows(sb *strings.Builder, rows []Net) {
	for _, n := range rows {
		label := n.Kind
		if n.Name != "" {
			label = fmt.Sprintf("%s %q", n.Kind, n.Name)
		}
		fmt.Fprintf(sb, "    net %d (%s): cc0=%s cc1=%s co=%s sc0=%s sc1=%s so=%s\n",
			n.ID, label,
			fmtCost(n.CC0), fmtCost(n.CC1), fmtCost(n.CO),
			fmtCost(n.SC0), fmtCost(n.SC1), fmtCost(n.SO))
	}
}

// Format renders the report as the human-readable block printed by
// `cmd/testability -scoap`.
func (r *Report) Format() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "SCOAP testability for %s: %d gates, %d levels (%d forward / %d backward sweeps, %d gate visits)\n",
		r.Design, r.Gates, r.Levels, r.ForwardSweeps, r.BackwardSweeps, r.GateVisits)
	if len(r.HardestControl) > 0 {
		fmt.Fprintf(&sb, "  hardest to control (by max(cc0,cc1)):\n")
		writeRows(&sb, r.HardestControl)
	}
	if len(r.HardestObserve) > 0 {
		fmt.Fprintf(&sb, "  hardest to observe (by co):\n")
		writeRows(&sb, r.HardestObserve)
	}
	if len(r.Stems) > 0 {
		fmt.Fprintf(&sb, "  reconvergent fanout: %d stems\n", len(r.Stems))
		for _, s := range r.Stems {
			fmt.Fprintf(&sb, "    stem %d: %d branches, %d meet points (first at net %d)\n",
				s.Stem, s.Branches, s.MeetPoints, s.First)
		}
	} else {
		fmt.Fprintf(&sb, "  reconvergent fanout: none\n")
	}
	return sb.String()
}
