package testability_test

import (
	"fmt"

	"factor/internal/netlist"
	"factor/internal/testability"
)

// ExampleCompute analyzes a 2-input AND driving a primary output: both
// inputs cost 1 to control, the output needs both set for a 1
// (CC1 = 3) and either cleared for a 0 (CC0 = 2), and observing an
// input means holding the sibling at its non-controlling value
// (CO = 2).
func ExampleCompute() {
	nl := netlist.New("and2")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.AddGate(netlist.And, a, b)
	nl.AddOutput("y", y)

	m := testability.Compute(nl.Compile())
	fmt.Printf("y: cc0=%d cc1=%d co=%d\n", m.CC0[y], m.CC1[y], m.CO[y])
	fmt.Printf("a: cc0=%d cc1=%d co=%d\n", m.CC0[a], m.CC1[a], m.CO[a])
	// Output:
	// y: cc0=2 cc1=3 co=0
	// a: cc0=1 cc1=1 co=2
}

// ExampleCompute_sequential shows the sequential plane on a loadable
// register: the flop costs one clock cycle (SC = 1) even though its
// combinational cost already includes the mux depth.
func ExampleCompute_sequential() {
	nl := netlist.New("hold")
	sel := nl.AddInput("sel")
	d := nl.AddInput("d")
	f := nl.AddGate(netlist.DFF, d) // placeholder D, rewired below
	mx := nl.AddGate(netlist.Mux, sel, f, d)
	nl.SetFanin(f, 0, mx)
	nl.AddOutput("q", f)

	m := testability.Compute(nl.Compile())
	fmt.Printf("q: cc1=%d sc1=%d\n", m.CC1[f], m.SC1[f])
	fmt.Printf("d: co=%d so=%d\n", m.CO[d], m.SO[d])
	// Output:
	// q: cc1=4 sc1=1
	// d: co=3 so=1
}

// ExampleReconvergentStems flags the classic reconvergence shape
// y = xor(a, not(a)): stem a fans out into two branches that meet at
// the xor.
func ExampleReconvergentStems() {
	nl := netlist.New("recon")
	a := nl.AddInput("a")
	inv := nl.AddGate(netlist.Not, a)
	x := nl.AddGate(netlist.Xor, a, inv)
	nl.AddOutput("y", x)

	for _, s := range testability.ReconvergentStems(nl.Compile()) {
		fmt.Printf("stem %d: %d branches meet at net %d\n", s.Stem, s.Branches, s.First)
	}
	// Output:
	// stem 0: 2 branches meet at net 2
}
