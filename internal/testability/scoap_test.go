package testability

import (
	"reflect"
	"testing"

	"factor/internal/netlist"
)

// TestScoapAndGate checks the canonical SCOAP values of a single AND
// gate, hand-computed: CC1 = CC1(a)+CC1(b)+1 = 3, CC0 = min+1 = 2,
// CO(a) = CO(y)+CC1(b)+1 = 2.
func TestScoapAndGate(t *testing.T) {
	nl := netlist.New("and2")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	y := nl.AddGate(netlist.And, a, b)
	nl.AddOutput("y", y)

	m := Compute(nl.Compile())
	wantCC := map[string][3]int32{ // id -> {cc0, cc1}
		"a": {1, 1}, "b": {1, 1}, "y": {2, 3},
	}
	for name, id := range map[string]int{"a": a, "b": b, "y": y} {
		if m.CC0[id] != wantCC[name][0] || m.CC1[id] != wantCC[name][1] {
			t.Errorf("%s: cc0/cc1 = %d/%d, want %d/%d", name, m.CC0[id], m.CC1[id], wantCC[name][0], wantCC[name][1])
		}
		if m.SC0[id] != 0 || m.SC1[id] != 0 {
			t.Errorf("%s: sequential controllability %d/%d, want 0/0 (combinational design)", name, m.SC0[id], m.SC1[id])
		}
	}
	if m.CO[y] != 0 || m.SO[y] != 0 {
		t.Errorf("y: co/so = %d/%d, want 0/0 (primary output)", m.CO[y], m.SO[y])
	}
	if m.CO[a] != 2 || m.CO[b] != 2 {
		t.Errorf("co(a)/co(b) = %d/%d, want 2/2", m.CO[a], m.CO[b])
	}
	if m.ForwardSweeps != 2 || m.BackwardSweeps != 2 {
		t.Errorf("sweeps = %d/%d, want 2/2 (one effective + one settling)", m.ForwardSweeps, m.BackwardSweeps)
	}
}

// TestScoapGateFormulas pins the per-kind formulas on one two-level
// netlist: y = or(nand(a,b), xor(b,c)).
func TestScoapGateFormulas(t *testing.T) {
	nl := netlist.New("mixed")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	nd := nl.AddGate(netlist.Nand, a, b) // CC0 = 1+1+1 = 3, CC1 = min+1 = 2
	x := nl.AddGate(netlist.Xor, b, c)   // CC0 = min(1+1,1+1)+1 = 3, CC1 = 3
	y := nl.AddGate(netlist.Or, nd, x)   // CC0 = 3+3+1 = 7, CC1 = min(2,3)+1 = 3
	nl.AddOutput("y", y)

	m := Compute(nl.Compile())
	checks := []struct {
		name     string
		id       int
		cc0, cc1 int32
	}{
		{"nand", nd, 3, 2},
		{"xor", x, 3, 3},
		{"or", y, 7, 3},
	}
	for _, ck := range checks {
		if m.CC0[ck.id] != ck.cc0 || m.CC1[ck.id] != ck.cc1 {
			t.Errorf("%s: cc0/cc1 = %d/%d, want %d/%d", ck.name, m.CC0[ck.id], m.CC1[ck.id], ck.cc0, ck.cc1)
		}
	}
	// Observability: CO(nand) = CO(y)+CC0(xor)+1 = 4;
	// CO(xor) = CO(y)+CC0(nand)+1 = 4;
	// CO(a) = CO(nand)+CC1(b)+1 = 6;
	// CO(c) = CO(xor)+min(CC0(b),CC1(b))+1 = 6;
	// CO(b) = min(through nand = 6, through xor = CO(xor)+min(cc(c))+1 = 6) = 6.
	for name, want := range map[int]int32{nd: 4, x: 4, a: 6, b: 6, c: 6} {
		if m.CO[name] != want {
			t.Errorf("co(net %d) = %d, want %d", name, m.CO[name], want)
		}
	}
}

// TestScoapConstants checks that constants are free to control at their
// value and saturated (Inf) at the other, and that saturation is
// absorbing through downstream gates.
func TestScoapConstants(t *testing.T) {
	nl := netlist.New("consts")
	c0 := nl.AddGate(netlist.Const0)
	a := nl.AddInput("a")
	y := nl.AddGate(netlist.And, c0, a) // stuck at 0: CC1 must saturate
	nl.AddOutput("y", y)

	m := Compute(nl.Compile())
	if m.CC0[c0] != 0 || m.CC1[c0] != Inf {
		t.Errorf("const0: cc0/cc1 = %d/%d, want 0/Inf", m.CC0[c0], m.CC1[c0])
	}
	if m.CC1[y] != Inf {
		t.Errorf("and(const0, a): cc1 = %d, want Inf (unjustifiable)", m.CC1[y])
	}
	if m.CC0[y] != 1 {
		t.Errorf("and(const0, a): cc0 = %d, want 1 (side pin already 0)", m.CC0[y])
	}
	// a is observable only through the blocked AND: CO(a) = CO(y)+CC1(c0)+1 = Inf.
	if m.CO[a] != Inf {
		t.Errorf("co(a) = %d, want Inf (path blocked by const0)", m.CO[a])
	}
}

// TestScoapMux pins the three-pin mux formulas: controllability steers
// the cheaper (select, data) pair and observability sensitizes each
// data pin by steering the select.
func TestScoapMux(t *testing.T) {
	nl := netlist.New("mux")
	s := nl.AddInput("s")
	d0 := nl.AddInput("d0")
	d1 := nl.AddInput("d1")
	y := nl.AddGate(netlist.Mux, s, d0, d1)
	nl.AddOutput("y", y)

	m := Compute(nl.Compile())
	// CC0(y) = min(CC0(s)+CC0(d0), CC1(s)+CC0(d1))+1 = min(2,2)+1 = 3.
	if m.CC0[y] != 3 || m.CC1[y] != 3 {
		t.Errorf("mux: cc0/cc1 = %d/%d, want 3/3", m.CC0[y], m.CC1[y])
	}
	// CO(d0) = CO(y)+CC0(s)+1 = 2; CO(d1) = CO(y)+CC1(s)+1 = 2;
	// CO(s) = CO(y)+min(CC0(d0)+CC1(d1), CC1(d0)+CC0(d1))+1 = 3.
	if m.CO[d0] != 2 || m.CO[d1] != 2 || m.CO[s] != 3 {
		t.Errorf("mux co(d0,d1,s) = %d/%d/%d, want 2/2/3", m.CO[d0], m.CO[d1], m.CO[s])
	}
}

// TestScoapSequential hand-computes a mux-hold register (q holds
// unless sel loads d): sequential metrics count only the flop
// crossing, and the flop feedback converges in a bounded number of
// sweeps.
func TestScoapSequential(t *testing.T) {
	nl := netlist.New("hold")
	sel := nl.AddInput("sel")
	d := nl.AddInput("d")
	f := nl.AddGate(netlist.DFF, d) // placeholder D, rewired below
	mx := nl.AddGate(netlist.Mux, sel, f, d)
	nl.SetFanin(f, 0, mx)
	nl.AddOutput("q", f)

	m := Compute(nl.Compile())
	// Load path: CC0(mux) = CC1(sel)+CC0(d)+1 = 3 (the hold path via
	// the uninitialized flop starts at Inf and never beats it).
	if m.CC0[mx] != 3 || m.CC1[mx] != 3 {
		t.Errorf("mux: cc0/cc1 = %d/%d, want 3/3", m.CC0[mx], m.CC1[mx])
	}
	if m.CC0[f] != 4 || m.CC1[f] != 4 {
		t.Errorf("flop: cc0/cc1 = %d/%d, want 4/4", m.CC0[f], m.CC1[f])
	}
	// Sequential plane: one cycle to load the flop, zero extra depth
	// for the combinational mux.
	if m.SC0[mx] != 0 || m.SC1[mx] != 0 {
		t.Errorf("mux: sc0/sc1 = %d/%d, want 0/0", m.SC0[mx], m.SC1[mx])
	}
	if m.SC0[f] != 1 || m.SC1[f] != 1 {
		t.Errorf("flop: sc0/sc1 = %d/%d, want 1/1", m.SC0[f], m.SC1[f])
	}
	// Observability: q is a PO; d observes by loading (CO = CO(mux
	// D-edge)+CC1(sel)+1 = 3, one cycle).
	if m.CO[f] != 0 || m.SO[f] != 0 {
		t.Errorf("flop: co/so = %d/%d, want 0/0", m.CO[f], m.SO[f])
	}
	if m.CO[mx] != 1 || m.SO[mx] != 1 {
		t.Errorf("mux: co/so = %d/%d, want 1/1", m.CO[mx], m.SO[mx])
	}
	if m.CO[d] != 3 || m.SO[d] != 1 {
		t.Errorf("d: co/so = %d/%d, want 3/1", m.CO[d], m.SO[d])
	}
	if m.CO[sel] != 7 || m.SO[sel] != 2 {
		t.Errorf("sel: co/so = %d/%d, want 7/2", m.CO[sel], m.SO[sel])
	}
	if m.ForwardSweeps != 3 || m.BackwardSweeps != 3 {
		t.Errorf("sweeps = %d/%d, want 3/3 (flop feedback takes one extra round)", m.ForwardSweeps, m.BackwardSweeps)
	}
}

// TestScoapFreeRunningToggle: a toggle flop with no load path has no
// justifiable state, and the fixed point must converge to Inf rather
// than oscillate or grow without bound.
func TestScoapFreeRunningToggle(t *testing.T) {
	nl := netlist.New("toggle")
	c0 := nl.AddGate(netlist.Const0)
	f := nl.AddGate(netlist.DFF, c0) // placeholder, rewired to the inverter
	inv := nl.AddGate(netlist.Not, f)
	nl.SetFanin(f, 0, inv)
	nl.AddOutput("q", f)

	m := Compute(nl.Compile())
	for _, id := range []int{f, inv} {
		if m.CC0[id] != Inf || m.CC1[id] != Inf {
			t.Errorf("net %d: cc0/cc1 = %d/%d, want Inf/Inf", id, m.CC0[id], m.CC1[id])
		}
	}
	if m.ForwardSweeps > 4 {
		t.Errorf("forward sweeps = %d, want bounded small count", m.ForwardSweeps)
	}
}

// TestReconvergentStems: y = xor(a, not(a)) reconverges at the xor;
// the stem is a with two branches meeting at one gate.
func TestReconvergentStems(t *testing.T) {
	nl := netlist.New("recon")
	a := nl.AddInput("a")
	inv := nl.AddGate(netlist.Not, a)
	x := nl.AddGate(netlist.Xor, a, inv)
	nl.AddOutput("y", x)

	stems := ReconvergentStems(nl.Compile())
	want := []Stem{{Stem: int32(a), Branches: 2, MeetPoints: 1, First: int32(x)}}
	if !reflect.DeepEqual(stems, want) {
		t.Errorf("stems = %+v, want %+v", stems, want)
	}
}

// TestReconvergentStemsFanoutFree: a fanout-free chain has no stems,
// and a stem whose branches stay disjoint does not reconverge.
func TestReconvergentStemsFanoutFree(t *testing.T) {
	nl := netlist.New("tree")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	n1 := nl.AddGate(netlist.Not, a)
	n2 := nl.AddGate(netlist.Not, b)
	nl.AddOutput("y1", n1)
	nl.AddOutput("y2", n2)
	if stems := ReconvergentStems(nl.Compile()); len(stems) != 0 {
		t.Errorf("fanout-free: stems = %+v, want none", stems)
	}

	// A 2-branch stem with disjoint cones.
	nl2 := netlist.New("disjoint")
	s := nl2.AddInput("s")
	u := nl2.AddGate(netlist.Not, s)
	v := nl2.AddGate(netlist.Buf, s)
	nl2.AddOutput("u", u)
	nl2.AddOutput("v", v)
	if stems := ReconvergentStems(nl2.Compile()); len(stems) != 0 {
		t.Errorf("disjoint branches: stems = %+v, want none", stems)
	}
}

// TestReconvergentStemsFlopBoundary: the cone walk must stop at DFFs —
// branches that only meet beyond a flop are not combinationally
// reconvergent.
func TestReconvergentStemsFlopBoundary(t *testing.T) {
	nl := netlist.New("seqrecon")
	a := nl.AddInput("a")
	inv := nl.AddGate(netlist.Not, a)
	f := nl.AddGate(netlist.DFF, inv)
	// a and the flopped not(a) meet at the and — but the stem walk for
	// a must not cross the flop, so only the direct double-pin use of a
	// via the flop branch is invisible.
	y := nl.AddGate(netlist.And, a, f)
	nl.AddOutput("y", y)

	stems := ReconvergentStems(nl.Compile())
	if len(stems) != 0 {
		t.Errorf("stems = %+v, want none (meet is behind a flop)", stems)
	}
}

// TestScoapDeterminism: two computations over the same compiled
// netlist are deeply equal — the sweeps have no iteration-order or
// allocation sensitivity.
func TestScoapDeterminism(t *testing.T) {
	nl := netlist.New("det")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	c := nl.AddInput("c")
	f := nl.AddGate(netlist.DFF, a)
	m1 := nl.AddGate(netlist.Mux, a, b, f)
	x := nl.AddGate(netlist.Xor, m1, c)
	nl.SetFanin(f, 0, x)
	nl.AddOutput("y", x)

	cc := nl.Compile()
	got1, got2 := Compute(cc), Compute(cc)
	if !reflect.DeepEqual(got1, got2) {
		t.Fatalf("repeated Compute differs:\n%+v\n%+v", got1, got2)
	}
	if !reflect.DeepEqual(ReconvergentStems(cc), ReconvergentStems(cc)) {
		t.Fatalf("repeated ReconvergentStems differs")
	}
}

// TestBuildReportRanking checks the hardest-K selection: deterministic
// ordering, constants excluded, inputs excluded from the control list
// but present in the observe list.
func TestBuildReportRanking(t *testing.T) {
	nl := netlist.New("rank")
	a := nl.AddInput("a")
	b := nl.AddInput("b")
	g1 := nl.AddGate(netlist.And, a, b)  // cc1 = 3
	g2 := nl.AddGate(netlist.And, g1, a) // cc1 = 5: hardest
	nl.AddOutput("y", g2)

	m := Compute(nl.Compile())
	r := BuildReport(nl, m, ReconvergentStems(nl.Compile()), 2, false)
	if len(r.HardestControl) != 2 || r.HardestControl[0].ID != g2 || r.HardestControl[1].ID != g1 {
		t.Errorf("hardest control = %+v, want [g2, g1]", r.HardestControl)
	}
	for _, n := range r.HardestControl {
		if n.Kind == "input" || n.Kind == "const0" || n.Kind == "const1" {
			t.Errorf("control ranking includes %s", n.Kind)
		}
	}
	// CO(a) and CO(b) are both 4 (two equal-cost paths), so the
	// deterministic tie-break ranks the lower ID first.
	if len(r.HardestObserve) != 2 || r.HardestObserve[0].ID != a || r.HardestObserve[1].ID != b {
		t.Fatalf("hardest observe = %+v, want [a, b] by ID tie-break", r.HardestObserve)
	}
	if r.Nets != nil {
		t.Errorf("full dump requested off, got %d rows", len(r.Nets))
	}
	full := BuildReport(nl, m, nil, 1, true)
	if len(full.Nets) != len(nl.Gates) {
		t.Errorf("full dump has %d rows, want %d", len(full.Nets), len(nl.Gates))
	}
	if full.Format() == "" {
		t.Error("Format returned empty string")
	}
}
