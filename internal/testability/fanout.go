package testability

import "factor/internal/netlist"

// Stem describes one reconvergent fanout stem: a net with two or more
// fanout branches whose combinational cones meet again downstream.
// Reconvergence is the structural condition under which SCOAP's
// independence assumption breaks (the same stem value feeds a gate
// along two paths, so the per-pin justification costs are correlated)
// and under which single-path sensitization in PODEM can require
// multiple-path reasoning. The detector reports stems so consumers can
// annotate suspicious metrics rather than silently trust them.
type Stem struct {
	// Stem is the gate ID of the fanout stem.
	Stem int32 `json:"stem"`
	// Branches is the stem's fanout degree (duplicate reader pins
	// count separately, matching FanoutList).
	Branches int `json:"branches"`
	// MeetPoints counts the gates where a later-explored branch cone
	// first touches an earlier branch's cone.
	MeetPoints int `json:"meet_points"`
	// First is the lowest gate ID among the meet points.
	First int32 `json:"first"`
}

// ReconvergentStems finds every reconvergent fanout stem in the
// combinational logic of a compiled netlist, using a stamp walk over
// FanoutRefs: for each stem with fanout degree >= 2, each branch's
// combinational fanout cone is traversed once (flop boundaries —
// FanoutRef.Level < 0 — end the cone), gates are stamped with the
// branch that first reached them, and a gate reached again from a
// different branch is a meet point. A gate fed twice by the same stem
// (e.g. both pins of an XOR) is reported as trivially reconvergent.
//
// Each stem's walk visits every cone edge at most once, so the total
// cost is O(sum of stem cone sizes). The walk order is fixed (stems by
// ascending ID, branches in FanoutList order, depth-first by pin
// order), so the output is deterministic for a given netlist.
func ReconvergentStems(c *netlist.Compiled) []Stem {
	const (
		unvisited = -1 // relative to the current stamp
		counted   = -2 // meet point already recorded for this stem
	)
	epoch := make([]int32, c.NumGates)
	branch := make([]int32, c.NumGates)
	for i := range epoch {
		epoch[i] = unvisited
	}
	var (
		out   []Stem
		stamp int32
		stack []int32
	)
	for id := 0; id < c.NumGates; id++ {
		deg := int(c.FanoutStart[id+1] - c.FanoutStart[id])
		if deg < 2 {
			continue
		}
		stamp++
		meets, first := 0, int32(-1)
		refs := c.FanoutRefs[c.FanoutStart[id]:c.FanoutStart[id+1]]
		for b, ref := range refs {
			if ref.Level < 0 {
				continue // DFF reader: the cone ends at the flop boundary
			}
			stack = append(stack[:0], ref.ID)
			for len(stack) > 0 {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if epoch[g] == stamp {
					// Already in some branch's cone: a different branch
					// means reconvergence; either way the cone beyond g
					// has been expanded, so stop here.
					if branch[g] != int32(b) && branch[g] != counted {
						meets++
						branch[g] = counted
						if first < 0 || g < first {
							first = g
						}
					}
					continue
				}
				epoch[g] = stamp
				branch[g] = int32(b)
				for _, fo := range c.FanoutRefs[c.FanoutStart[g]:c.FanoutStart[g+1]] {
					if fo.Level >= 0 {
						stack = append(stack, fo.ID)
					}
				}
			}
		}
		if meets > 0 {
			out = append(out, Stem{Stem: int32(id), Branches: deg, MeetPoints: meets, First: first})
		}
	}
	return out
}
