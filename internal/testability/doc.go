// Package testability implements SCOAP testability analysis over the
// gate-level netlist IR (Goldstein's Sandia Controllability /
// Observability Analysis Program, adapted to the FACTOR cell library).
//
// For every net the package computes six metrics:
//
//   - CC0/CC1 — combinational 0/1-controllability: a lower bound on
//     the number of line assignments needed to set the net to 0/1,
//     growing by 1 per logic level.
//   - CO — combinational observability: the assignments needed to
//     sensitize a path from the net to a primary output.
//   - SC0/SC1/SO — the sequential variants, which count only clock
//     cycles (flop crossings): a net that is cheap combinationally but
//     buried behind three flip-flops has SC ≈ 3.
//
// Compute evaluates all six planes with monotone fixed-point sweeps in
// combinational level order over the netlist.Compiled CSR view — one
// sweep settles purely combinational designs exactly, and sequential
// feedback through DFFs iterates to convergence. ReconvergentStems
// flags fanout stems whose branches meet again, the structural
// situation where SCOAP's independence assumption is optimistic.
// BuildReport shapes the results for cmd/testability's -scoap/-json
// output.
//
// The ATPG engine consumes the same metrics as a backtrace cost
// function: atpg.Options.Guide == atpg.GuideSCOAP replaces PODEM's
// ad-hoc distance costs with CC/CO (+SC/SO-weighted), steering
// justification toward cheaper inputs. All metrics are pure functions
// of netlist structure, so guided search remains bit-identical across
// worker counts and resume (see DESIGN.md §12).
package testability
