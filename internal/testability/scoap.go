package testability

import "factor/internal/netlist"

// Inf is the saturating "practically uncontrollable / unobservable"
// cost. It deliberately equals the ATPG engine's internal cost
// infinity, so SCOAP metrics can be handed to PODEM's backtrace
// without rescaling. Saturating adds keep every sum strictly below
// int32 overflow.
const Inf int32 = 1 << 28

// Metrics holds the SCOAP testability measures of one compiled
// netlist, indexed by gate ID (every gate drives exactly one net, so
// gate metrics and net metrics coincide):
//
//   - CC0/CC1: combinational 0/1-controllability — the number of
//     line assignments needed to justify the value, +1 per gate level
//     and per flop crossing (Inf when unjustifiable, e.g. CC1 of a
//     constant 0).
//   - CO: combinational observability — line assignments needed to
//     propagate the net to a primary output.
//   - SC0/SC1/SO: the sequential counterparts, counting only flop
//     crossings (time frames), +0 through combinational gates.
//
// All six planes are computed by Compute in one pass structure:
// value-monotone sweeps in combinational level order, iterated until
// the flop-boundary feedback converges. The work counters
// (ForwardSweeps, BackwardSweeps, GateVisits) are deterministic for a
// given netlist and are published as scoap.* telemetry counters by the
// consumers.
type Metrics struct {
	CC0, CC1 []int32
	CO       []int32
	SC0, SC1 []int32
	SO       []int32

	// ForwardSweeps and BackwardSweeps count the level-ordered
	// fixed-point sweeps the controllability and observability planes
	// needed to converge across flop boundaries (1 each for purely
	// combinational designs).
	ForwardSweeps  int
	BackwardSweeps int
	// GateVisits counts gate evaluations across all sweeps of both
	// directions — the sweep-work counter.
	GateVisits uint64
}

// sadd is a saturating add: any sum reaching Inf stays exactly Inf, so
// chained adds cannot overflow and "unreachable" stays absorbing.
func sadd(a, b int32) int32 {
	s := a + b
	if s >= Inf {
		return Inf
	}
	return s
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

// levelOrder returns the gate IDs sorted by (combinational level, gate
// ID): a counting sort against the LevelStart partition. Within a
// level the order is ascending by ID, which is what makes every sweep
// — and therefore every metric and every tie-break derived from them —
// deterministic.
func levelOrder(c *netlist.Compiled) []int32 {
	order := make([]int32, c.NumGates)
	next := append([]int32(nil), c.LevelStart[:c.NumLevels]...)
	for id := 0; id < c.NumGates; id++ {
		l := c.Level[id]
		order[next[l]] = int32(id)
		next[l]++
	}
	return order
}

// Compute derives the SCOAP metrics for a compiled netlist.
//
// Controllability is a forward fixed-point: one sweep over the gates
// in level order computes every combinational gate exactly once from
// finalized fanins; DFF outputs (level 0) read their D fanin from the
// previous sweep, so the sweep repeats until no flop output improves —
// state feedback (counters, FSMs) relaxes to its fixed point because
// costs start at Inf and only ever decrease. Observability mirrors the
// scheme backwards: POs start at 0, each reverse-level sweep pushes
// observation costs from readers into their fanin pins, and sweeps
// repeat until the flop D-input edges converge.
//
// The result depends only on the netlist structure. Compute performs
// no allocation besides the result and is safe for concurrent use on
// the shared read-only Compiled view.
func Compute(c *netlist.Compiled) *Metrics {
	n := c.NumGates
	m := &Metrics{
		CC0: make([]int32, n), CC1: make([]int32, n),
		SC0: make([]int32, n), SC1: make([]int32, n),
		CO: make([]int32, n), SO: make([]int32, n),
	}
	for i := 0; i < n; i++ {
		m.CC0[i], m.CC1[i] = Inf, Inf
		m.SC0[i], m.SC1[i] = Inf, Inf
	}
	order := levelOrder(c)

	// Forward plane: controllability.
	for {
		m.ForwardSweeps++
		changed := false
		for _, id := range order {
			m.GateVisits++
			v0, v1, s0, s1 := m.controllability(c, id)
			if v0 < m.CC0[id] {
				m.CC0[id] = v0
				changed = true
			}
			if v1 < m.CC1[id] {
				m.CC1[id] = v1
				changed = true
			}
			if s0 < m.SC0[id] {
				m.SC0[id] = s0
				changed = true
			}
			if s1 < m.SC1[id] {
				m.SC1[id] = s1
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Backward plane: observability. PO drivers are observed for free;
	// every other net must propagate through some reader.
	for i := 0; i < n; i++ {
		if c.IsPO[i] {
			m.CO[i], m.SO[i] = 0, 0
		} else {
			m.CO[i], m.SO[i] = Inf, Inf
		}
	}
	for {
		m.BackwardSweeps++
		changed := false
		for i := n - 1; i >= 0; i-- {
			r := order[i]
			m.GateVisits++
			if m.observeThrough(c, r) {
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return m
}

// controllability evaluates the SCOAP controllability of one gate from
// its fanins' current values. Combinational formulas add one level of
// depth (+1); sequential formulas count flop crossings only (+1 at the
// DFF, +0 through combinational gates).
func (m *Metrics) controllability(c *netlist.Compiled, id int32) (v0, v1, s0, s1 int32) {
	fi := c.Fanins(int(id))
	switch netlist.GateKind(c.Kind[id]) {
	case netlist.Input:
		return 1, 1, 0, 0
	case netlist.Const0:
		return 0, Inf, 0, Inf
	case netlist.Const1:
		return Inf, 0, Inf, 0
	case netlist.Buf:
		a := fi[0]
		return sadd(m.CC0[a], 1), sadd(m.CC1[a], 1), m.SC0[a], m.SC1[a]
	case netlist.Not:
		a := fi[0]
		return sadd(m.CC1[a], 1), sadd(m.CC0[a], 1), m.SC1[a], m.SC0[a]
	case netlist.And, netlist.Nand:
		a, b := fi[0], fi[1]
		v1 = sadd(sadd(m.CC1[a], m.CC1[b]), 1)
		v0 = sadd(min32(m.CC0[a], m.CC0[b]), 1)
		s1 = sadd(m.SC1[a], m.SC1[b])
		s0 = min32(m.SC0[a], m.SC0[b])
		if netlist.GateKind(c.Kind[id]) == netlist.Nand {
			v0, v1 = v1, v0
			s0, s1 = s1, s0
		}
		return v0, v1, s0, s1
	case netlist.Or, netlist.Nor:
		a, b := fi[0], fi[1]
		v0 = sadd(sadd(m.CC0[a], m.CC0[b]), 1)
		v1 = sadd(min32(m.CC1[a], m.CC1[b]), 1)
		s0 = sadd(m.SC0[a], m.SC0[b])
		s1 = min32(m.SC1[a], m.SC1[b])
		if netlist.GateKind(c.Kind[id]) == netlist.Nor {
			v0, v1 = v1, v0
			s0, s1 = s1, s0
		}
		return v0, v1, s0, s1
	case netlist.Xor, netlist.Xnor:
		a, b := fi[0], fi[1]
		same := min32(sadd(m.CC0[a], m.CC0[b]), sadd(m.CC1[a], m.CC1[b]))
		diff := min32(sadd(m.CC0[a], m.CC1[b]), sadd(m.CC1[a], m.CC0[b]))
		sSame := min32(sadd(m.SC0[a], m.SC0[b]), sadd(m.SC1[a], m.SC1[b]))
		sDiff := min32(sadd(m.SC0[a], m.SC1[b]), sadd(m.SC1[a], m.SC0[b]))
		v0, v1 = sadd(same, 1), sadd(diff, 1)
		s0, s1 = sSame, sDiff
		if netlist.GateKind(c.Kind[id]) == netlist.Xnor {
			v0, v1 = v1, v0
			s0, s1 = s1, s0
		}
		return v0, v1, s0, s1
	case netlist.Mux:
		s, d0, d1 := fi[0], fi[1], fi[2]
		v0 = sadd(min32(sadd(m.CC0[s], m.CC0[d0]), sadd(m.CC1[s], m.CC0[d1])), 1)
		v1 = sadd(min32(sadd(m.CC0[s], m.CC1[d0]), sadd(m.CC1[s], m.CC1[d1])), 1)
		s0 = min32(sadd(m.SC0[s], m.SC0[d0]), sadd(m.SC1[s], m.SC0[d1]))
		s1 = min32(sadd(m.SC0[s], m.SC1[d0]), sadd(m.SC1[s], m.SC1[d1]))
		return v0, v1, s0, s1
	case netlist.DFF:
		d := fi[0]
		return sadd(m.CC0[d], 1), sadd(m.CC1[d], 1), sadd(m.SC0[d], 1), sadd(m.SC1[d], 1)
	}
	return Inf, Inf, Inf, Inf
}

// observeThrough propagates reader r's observability into each of its
// fanin pins, min-assigning CO/SO of the driving nets. Returns whether
// anything improved. The side-input costs are the controllability of
// the non-controlling values needed to sensitize the pin (classic
// SCOAP), which is exactly what distinguishes CO from a plain
// distance-to-PO metric.
func (m *Metrics) observeThrough(c *netlist.Compiled, r int32) bool {
	fi := c.Fanins(int(r))
	improve := func(g, co, so int32) bool {
		ch := false
		if co < m.CO[g] {
			m.CO[g] = co
			ch = true
		}
		if so < m.SO[g] {
			m.SO[g] = so
			ch = true
		}
		return ch
	}
	switch netlist.GateKind(c.Kind[r]) {
	case netlist.Input, netlist.Const0, netlist.Const1:
		return false
	case netlist.Buf, netlist.Not:
		return improve(fi[0], sadd(m.CO[r], 1), m.SO[r])
	case netlist.DFF:
		return improve(fi[0], sadd(m.CO[r], 1), sadd(m.SO[r], 1))
	case netlist.And, netlist.Nand:
		a, b := fi[0], fi[1]
		ch := improve(a, sadd(sadd(m.CO[r], m.CC1[b]), 1), sadd(m.SO[r], m.SC1[b]))
		return improve(b, sadd(sadd(m.CO[r], m.CC1[a]), 1), sadd(m.SO[r], m.SC1[a])) || ch
	case netlist.Or, netlist.Nor:
		a, b := fi[0], fi[1]
		ch := improve(a, sadd(sadd(m.CO[r], m.CC0[b]), 1), sadd(m.SO[r], m.SC0[b]))
		return improve(b, sadd(sadd(m.CO[r], m.CC0[a]), 1), sadd(m.SO[r], m.SC0[a])) || ch
	case netlist.Xor, netlist.Xnor:
		a, b := fi[0], fi[1]
		ch := improve(a, sadd(sadd(m.CO[r], min32(m.CC0[b], m.CC1[b])), 1), sadd(m.SO[r], min32(m.SC0[b], m.SC1[b])))
		return improve(b, sadd(sadd(m.CO[r], min32(m.CC0[a], m.CC1[a])), 1), sadd(m.SO[r], min32(m.SC0[a], m.SC1[a]))) || ch
	case netlist.Mux:
		s, d0, d1 := fi[0], fi[1], fi[2]
		// Select: the data inputs must differ for the select to matter.
		selCC := min32(sadd(m.CC0[d0], m.CC1[d1]), sadd(m.CC1[d0], m.CC0[d1]))
		selSC := min32(sadd(m.SC0[d0], m.SC1[d1]), sadd(m.SC1[d0], m.SC0[d1]))
		ch := improve(s, sadd(sadd(m.CO[r], selCC), 1), sadd(m.SO[r], selSC))
		// Data pins: steer the select to the pin.
		ch = improve(d0, sadd(sadd(m.CO[r], m.CC0[s]), 1), sadd(m.SO[r], m.SC0[s])) || ch
		return improve(d1, sadd(sadd(m.CO[r], m.CC1[s]), 1), sadd(m.SO[r], m.SC1[s])) || ch
	}
	return false
}
