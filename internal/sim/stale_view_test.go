package sim

import (
	"testing"

	"factor/internal/netlist"
)

// TestSimulatorSeesRebuiltViewAfterMutation is a consumer-level
// regression for the netlist.Compiled memoization: a simulator built
// AFTER AddGate/SetFanin must evaluate the mutated structure, not a
// stale CSR view cached by an earlier consumer. (The identity-level
// invalidation is covered in netlist; this pins the behavior through
// the packed simulator, which is how the bug would actually bite.)
func TestSimulatorSeesRebuiltViewAfterMutation(t *testing.T) {
	n := netlist.New("stale_view")
	a := n.AddInput("a")
	b := n.AddInput("b")
	y := n.AddGate(netlist.And, a, b)
	n.AddOutput("y", y)

	eval := func(s *Simulator, va, vb Logic) Logic {
		s.SetInputScalar(a, va)
		s.SetInputScalar(b, vb)
		s.Eval()
		return s.Value(y).Lane(0)
	}

	before := New(n) // memoizes the compiled view
	if got := eval(before, L1, L1); got != L1 {
		t.Fatalf("and(1,1) = %v, want 1", got)
	}

	// Splice an inverter into the b leg: y becomes and(a, not b).
	inv := n.AddGate(netlist.Not, b)
	n.SetFanin(y, 1, inv)

	after := New(n)
	if got := eval(after, L1, L1); got != L0 {
		t.Errorf("post-mutation simulator: and(1,~1) = %v, want 0 (stale compiled view?)", got)
	}
	if got := eval(after, L1, L0); got != L1 {
		t.Errorf("post-mutation simulator: and(1,~0) = %v, want 1 (stale compiled view?)", got)
	}

	// The pre-mutation simulator keeps its snapshot: its view was built
	// before the splice and Clone shares it read-only, so both must
	// still compute the ORIGINAL function (documented contract — a
	// mutation never reaches into already-built simulators).
	if got := eval(before, L1, L1); got != L1 {
		t.Errorf("pre-mutation simulator changed behavior: and(1,1) = %v, want 1", got)
	}
	if got := eval(before.Clone(), L1, L1); got != L1 {
		t.Errorf("clone of pre-mutation simulator changed behavior: got %v, want 1", got)
	}
}
