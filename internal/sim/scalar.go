package sim

import (
	"fmt"

	"factor/internal/netlist"
)

// Scalar three-valued operations, shared by the ATPG engine (which
// simulates a good and a faulty machine as two scalar planes).

// NotL returns ~a.
func NotL(a Logic) Logic {
	switch a {
	case L0:
		return L1
	case L1:
		return L0
	}
	return LX
}

// AndL returns a & b (0 dominates X).
func AndL(a, b Logic) Logic {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return LX
}

// OrL returns a | b (1 dominates X).
func OrL(a, b Logic) Logic {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return LX
}

// XorL returns a ^ b (X-propagating).
func XorL(a, b Logic) Logic {
	if a == LX || b == LX {
		return LX
	}
	if a != b {
		return L1
	}
	return L0
}

// MuxL returns s ? d1 : d0; an X select yields the agreed binary value
// of the branches or X.
func MuxL(s, d0, d1 Logic) Logic {
	switch s {
	case L0:
		return d0
	case L1:
		return d1
	}
	if d0 == d1 && d0 != LX {
		return d0
	}
	return LX
}

// EvalGateL evaluates one combinational gate kind over scalar values.
func EvalGateL(kind netlist.GateKind, in []Logic) Logic {
	switch kind {
	case netlist.Buf:
		return in[0]
	case netlist.Not:
		return NotL(in[0])
	case netlist.And:
		return AndL(in[0], in[1])
	case netlist.Or:
		return OrL(in[0], in[1])
	case netlist.Nand:
		return NotL(AndL(in[0], in[1]))
	case netlist.Nor:
		return NotL(OrL(in[0], in[1]))
	case netlist.Xor:
		return XorL(in[0], in[1])
	case netlist.Xnor:
		return NotL(XorL(in[0], in[1]))
	case netlist.Mux:
		return MuxL(in[0], in[1], in[2])
	}
	panic(fmt.Sprintf("sim: EvalGateL on non-combinational kind %s", kind))
}

// ControllingValue returns the controlling input value of a gate kind
// and whether it has one (AND/NAND: 0, OR/NOR: 1).
func ControllingValue(kind netlist.GateKind) (Logic, bool) {
	switch kind {
	case netlist.And, netlist.Nand:
		return L0, true
	case netlist.Or, netlist.Nor:
		return L1, true
	}
	return LX, false
}

// Inverting reports whether the gate kind inverts (its output for the
// non-controlled case is the complement).
func Inverting(kind netlist.GateKind) bool {
	switch kind {
	case netlist.Not, netlist.Nand, netlist.Nor, netlist.Xnor:
		return true
	}
	return false
}

// Table-driven scalar evaluation. The good-machine trace of the
// event-driven fault simulator evaluates every gate of the netlist once
// per cycle per sequence; a truth-table load there is measurably faster
// than EvalGateL's switch plus per-kind branches. Tables are indexed by
// gate kind and the base-3 encoding of the scalar inputs.
var (
	// Tab1[kind][a] == EvalGateL(kind, [a]) for 1-input kinds.
	Tab1 [13][3]Logic
	// Tab2[kind][a*3+b] == EvalGateL(kind, [a, b]) for 2-input kinds.
	Tab2 [13][9]Logic
)

func init() {
	vals := [3]Logic{L0, L1, LX}
	for k := netlist.Buf; k <= netlist.Xnor; k++ {
		switch k.Arity() {
		case 1:
			for _, a := range vals {
				Tab1[k][a] = EvalGateL(k, []Logic{a})
			}
		case 2:
			for _, a := range vals {
				for _, b := range vals {
					Tab2[k][a*3+b] = EvalGateL(k, []Logic{a, b})
				}
			}
		}
	}
}
