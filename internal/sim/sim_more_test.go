package sim

import (
	"testing"

	"factor/internal/netlist"
)

func TestEvalGateAllKinds(t *testing.T) {
	one, zero, x := Splat(L1), Splat(L0), Splat(LX)
	cases := []struct {
		kind netlist.GateKind
		in   []Word
		want Logic
	}{
		{netlist.Buf, []Word{one}, L1},
		{netlist.Not, []Word{one}, L0},
		{netlist.And, []Word{one, zero}, L0},
		{netlist.Or, []Word{zero, one}, L1},
		{netlist.Nand, []Word{one, one}, L0},
		{netlist.Nor, []Word{zero, zero}, L1},
		{netlist.Xor, []Word{one, zero}, L1},
		{netlist.Xnor, []Word{one, zero}, L0},
		{netlist.Mux, []Word{zero, one, zero}, L1},
		{netlist.Mux, []Word{one, one, zero}, L0},
		{netlist.Mux, []Word{x, one, one}, L1},
	}
	for i, c := range cases {
		if got := EvalGate(c.kind, c.in).Lane(0); got != c.want {
			t.Errorf("case %d (%s): got %v, want %v", i, c.kind, got, c.want)
		}
	}
}

func TestEvalGatePanicsOnNonCombinational(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	EvalGate(netlist.DFF, []Word{Splat(L0)})
}

func TestScalarOpsMatchWordOps(t *testing.T) {
	vals := []Logic{L0, L1, LX}
	for _, a := range vals {
		for _, b := range vals {
			if got, want := AndL(a, b), And(Splat(a), Splat(b)).Lane(0); got != want {
				t.Errorf("AndL(%v,%v)=%v, Word=%v", a, b, got, want)
			}
			if got, want := OrL(a, b), Or(Splat(a), Splat(b)).Lane(0); got != want {
				t.Errorf("OrL(%v,%v)=%v, Word=%v", a, b, got, want)
			}
			if got, want := XorL(a, b), Xor(Splat(a), Splat(b)).Lane(0); got != want {
				t.Errorf("XorL(%v,%v)=%v, Word=%v", a, b, got, want)
			}
			if got, want := NotL(a), Not(Splat(a)).Lane(0); got != want {
				t.Errorf("NotL(%v)=%v, Word=%v", a, got, want)
			}
			for _, s := range vals {
				if got, want := MuxL(s, a, b), MuxW(Splat(s), Splat(a), Splat(b)).Lane(0); got != want {
					t.Errorf("MuxL(%v,%v,%v)=%v, Word=%v", s, a, b, got, want)
				}
			}
		}
	}
}

func TestEvalGateLAllKinds(t *testing.T) {
	kinds := []netlist.GateKind{
		netlist.Buf, netlist.Not, netlist.And, netlist.Or,
		netlist.Nand, netlist.Nor, netlist.Xor, netlist.Xnor, netlist.Mux,
	}
	for _, k := range kinds {
		in := make([]Logic, k.Arity())
		for i := range in {
			in[i] = L1
		}
		packed := make([]Word, k.Arity())
		for i := range packed {
			packed[i] = Splat(L1)
		}
		if got, want := EvalGateL(k, in), EvalGate(k, packed).Lane(0); got != want {
			t.Errorf("%s: scalar %v, packed %v", k, got, want)
		}
	}
}

func TestControllingValueAndInverting(t *testing.T) {
	if v, ok := ControllingValue(netlist.And); !ok || v != L0 {
		t.Error("And controlling value should be 0")
	}
	if v, ok := ControllingValue(netlist.Nor); !ok || v != L1 {
		t.Error("Nor controlling value should be 1")
	}
	if _, ok := ControllingValue(netlist.Xor); ok {
		t.Error("Xor has no controlling value")
	}
	if !Inverting(netlist.Nand) || Inverting(netlist.And) || !Inverting(netlist.Not) {
		t.Error("Inverting classification broken")
	}
}

func TestLogicString(t *testing.T) {
	if L0.String() != "0" || L1.String() != "1" || LX.String() != "X" {
		t.Error("Logic.String broken")
	}
}

func TestApplyVectorAndOutputs(t *testing.T) {
	n := netlist.New("m")
	a := n.AddInput("a")
	b := n.AddInput("b")
	n.AddOutput("y", n.AddGate(netlist.And, a, b))
	s := New(n)
	s.ApplyVector(map[string]Logic{"a": L1}) // b defaults to X
	s.Eval()
	out := s.Outputs()
	if out["y"] != LX {
		t.Errorf("y = %v, want X (b unset)", out["y"])
	}
	s.ApplyVector(map[string]Logic{"a": L1, "b": L1})
	s.Eval()
	if s.OutputLane("y", 0) != L1 {
		t.Error("y should be 1")
	}
}

func TestOutputLanePanicsOnUnknownName(t *testing.T) {
	n := netlist.New("m")
	n.AddInput("a")
	s := New(n)
	defer func() {
		if recover() == nil {
			t.Error("expected panic for unknown output")
		}
	}()
	s.OutputLane("ghost", 0)
}

func TestResetClearsState(t *testing.T) {
	n := netlist.New("m")
	d := n.AddInput("d")
	q := n.AddGate(netlist.DFF, d)
	n.AddOutput("q", q)
	s := New(n)
	s.SetInputScalar(d, L1)
	s.Step()
	s.Eval()
	if s.OutputLane("q", 0) != L1 {
		t.Fatal("setup failed")
	}
	s.Reset()
	s.Eval()
	if s.OutputLane("q", 0) != LX {
		t.Error("Reset should return flops to X")
	}
	s.ResetToZero()
	s.Eval()
	if s.OutputLane("q", 0) != L0 {
		t.Error("ResetToZero should zero flops")
	}
}
