// Package sim implements a gate-level logic simulator over the netlist
// IR. Values are three-state (0, 1, X); the simulator packs 64
// independent patterns per gate into two machine words, so one pass
// evaluates 64 vectors in parallel — the workhorse behind the fault
// simulator's parallel-pattern mode.
//
// Sequential circuits are simulated cycle-accurately: Eval computes the
// combinational fanout of the current inputs and flip-flop state, and
// Step additionally clocks every DFF with its D value. Flip-flops power
// up unknown (X), matching the pessimistic reset model used by
// gate-level ATPG tools.
package sim

import (
	"fmt"

	"factor/internal/netlist"
)

// Logic is a scalar three-state logic value.
type Logic int8

// Scalar logic values.
const (
	L0 Logic = iota
	L1
	LX
)

func (v Logic) String() string {
	switch v {
	case L0:
		return "0"
	case L1:
		return "1"
	default:
		return "X"
	}
}

// Word is a packed vector of 64 three-state values. Bit i of Ones is
// set when pattern i is 1; bit i of Xs marks pattern i unknown and
// overrides Ones.
type Word struct {
	Ones uint64
	Xs   uint64
}

// Splat returns a Word holding the same scalar value in all 64 lanes.
func Splat(v Logic) Word {
	switch v {
	case L0:
		return Word{}
	case L1:
		return Word{Ones: ^uint64(0)}
	default:
		return Word{Xs: ^uint64(0)}
	}
}

// Lane extracts the scalar value of pattern i.
func (w Word) Lane(i int) Logic {
	bit := uint64(1) << uint(i)
	if w.Xs&bit != 0 {
		return LX
	}
	if w.Ones&bit != 0 {
		return L1
	}
	return L0
}

// SetLane sets pattern i to v.
func (w *Word) SetLane(i int, v Logic) {
	bit := uint64(1) << uint(i)
	w.Ones &^= bit
	w.Xs &^= bit
	switch v {
	case L1:
		w.Ones |= bit
	case LX:
		w.Xs |= bit
	}
}

// norm clears Ones bits in X lanes so Words compare canonically.
func (w Word) norm() Word {
	w.Ones &^= w.Xs
	return w
}

// zeros returns the lanes that are definitely 0.
func (w Word) zeros() uint64 { return ^w.Ones & ^w.Xs }

// Not returns ~w in three-valued logic.
func Not(a Word) Word {
	return Word{Ones: a.zeros(), Xs: a.Xs}
}

// And returns a & b: 0 dominates X.
func And(a, b Word) Word {
	zero := a.zeros() | b.zeros()
	xs := (a.Xs | b.Xs) &^ zero
	return Word{Ones: ^(zero | xs), Xs: xs}
}

// Or returns a | b: 1 dominates X.
func Or(a, b Word) Word {
	one := (a.Ones &^ a.Xs) | (b.Ones &^ b.Xs)
	xs := (a.Xs | b.Xs) &^ one
	return Word{Ones: one, Xs: xs}
}

// Xor returns a ^ b: X if either operand is X.
func Xor(a, b Word) Word {
	xs := a.Xs | b.Xs
	return Word{Ones: (a.Ones ^ b.Ones) &^ xs, Xs: xs}
}

// MuxW returns sel ? d1 : d0 lane-wise. When sel is X the result is X
// unless d0 and d1 agree on a binary value.
func MuxW(sel, d0, d1 Word) Word {
	selOne := sel.Ones &^ sel.Xs
	selZero := sel.zeros()
	res := Word{}
	res.Ones = (selOne & d1.Ones) | (selZero & d0.Ones)
	res.Xs = (selOne & d1.Xs) | (selZero & d0.Xs)
	// X select: agree => value, else X.
	agreeOnes := d0.Ones & d1.Ones &^ d0.Xs &^ d1.Xs
	agreeZeros := d0.zeros() & d1.zeros()
	selX := sel.Xs
	res.Ones |= selX & agreeOnes
	res.Xs |= selX &^ (agreeOnes | agreeZeros)
	return res.norm()
}

// EvalGate computes the output Word of a gate kind from its fanin
// values. Input/Const/DFF kinds are handled by the simulator state, not
// here.
func EvalGate(kind netlist.GateKind, in []Word) Word {
	switch kind {
	case netlist.Buf:
		return in[0].norm()
	case netlist.Not:
		return Not(in[0])
	case netlist.And:
		return And(in[0], in[1])
	case netlist.Or:
		return Or(in[0], in[1])
	case netlist.Nand:
		return Not(And(in[0], in[1]))
	case netlist.Nor:
		return Not(Or(in[0], in[1]))
	case netlist.Xor:
		return Xor(in[0], in[1])
	case netlist.Xnor:
		return Not(Xor(in[0], in[1]))
	case netlist.Mux:
		return MuxW(in[0], in[1], in[2])
	}
	panic(fmt.Sprintf("sim: EvalGate on non-combinational kind %s", kind))
}

// Simulator evaluates a netlist over packed 64-pattern words. The
// evaluation loop runs over the netlist's compiled CSR view (see
// netlist.Compile): contiguous kind/fanin arrays in topological order,
// no per-gate pointer chasing.
type Simulator struct {
	N     *netlist.Netlist
	c     *netlist.Compiled
	vals  []Word // current value per gate
	state []Word // DFF state, indexed by gate ID (only DFF slots used)
}

// New builds a simulator for n. Flip-flops start at X.
func New(n *netlist.Netlist) *Simulator {
	s := &Simulator{
		N:     n,
		c:     n.Compile(),
		vals:  make([]Word, len(n.Gates)),
		state: make([]Word, len(n.Gates)),
	}
	s.Reset()
	return s
}

// Clone returns an independent simulator over the same netlist. The
// netlist and its compiled view are shared read-only; the value and
// state arrays are private copies, so a clone can run on its own
// goroutine without synchronization.
func (s *Simulator) Clone() *Simulator {
	return &Simulator{
		N:     s.N,
		c:     s.c,
		vals:  append([]Word(nil), s.vals...),
		state: append([]Word(nil), s.state...),
	}
}

// Reset sets every flip-flop to X and every input to X.
func (s *Simulator) Reset() {
	for i := range s.vals {
		s.vals[i] = Splat(LX)
	}
	for _, f := range s.N.DFFs {
		s.state[f] = Splat(LX)
	}
}

// ResetToZero sets every flip-flop to 0 (a hardware-reset assumption
// used by some experiments).
func (s *Simulator) ResetToZero() {
	for _, f := range s.N.DFFs {
		s.state[f] = Splat(L0)
	}
}

// SetInput sets the packed value of a primary input by gate ID.
func (s *Simulator) SetInput(gate int, w Word) {
	s.vals[gate] = w.norm()
}

// SetInputScalar sets all 64 lanes of an input to a scalar value.
func (s *Simulator) SetInputScalar(gate int, v Logic) {
	s.vals[gate] = Splat(v)
}

// SetState forces the state of a DFF (used by the pattern translator
// when PIER registers are loaded directly).
func (s *Simulator) SetState(dff int, w Word) {
	s.state[dff] = w.norm()
}

// Eval propagates the current inputs and flop state through the
// combinational logic. It does not clock the flops.
func (s *Simulator) Eval() {
	c := s.c
	var faninBuf [3]Word
	for _, id32 := range c.Order {
		id := int(id32)
		switch netlist.GateKind(c.Kind[id]) {
		case netlist.Input:
			// Value set via SetInput; leave as is.
		case netlist.Const0:
			s.vals[id] = Splat(L0)
		case netlist.Const1:
			s.vals[id] = Splat(L1)
		case netlist.DFF:
			s.vals[id] = s.state[id]
		default:
			fan := c.Fanins(id)
			in := faninBuf[:len(fan)]
			for i, f := range fan {
				in[i] = s.vals[f]
			}
			s.vals[id] = EvalGate(netlist.GateKind(c.Kind[id]), in)
		}
	}
}

// Step evaluates the combinational logic and then clocks every DFF.
func (s *Simulator) Step() {
	s.Eval()
	for _, f := range s.c.DFFs {
		d := s.c.Fanins(int(f))[0]
		s.state[f] = s.vals[d]
	}
}

// Value returns the current packed value of a gate.
func (s *Simulator) Value(gate int) Word { return s.vals[gate] }

// OutputLane returns the scalar value of the named PO in lane i.
func (s *Simulator) OutputLane(name string, lane int) Logic {
	po := s.N.PO(name)
	if po < 0 {
		panic(fmt.Sprintf("sim: unknown output %q", name))
	}
	return s.vals[po].Lane(lane)
}

// ApplyVector assigns scalar values to all PIs from a map of PI name to
// Logic; missing names default to X.
func (s *Simulator) ApplyVector(v map[string]Logic) {
	for i, pi := range s.N.PIs {
		val, ok := v[s.N.PINames[i]]
		if !ok {
			val = LX
		}
		s.SetInputScalar(pi, val)
	}
}

// Outputs captures the scalar values of all POs in lane 0.
func (s *Simulator) Outputs() map[string]Logic {
	out := make(map[string]Logic, len(s.N.POs))
	for i, po := range s.N.POs {
		out[s.N.PONames[i]] = s.vals[po].Lane(0)
	}
	return out
}
