package sim

import (
	"math/rand"
	"testing"
	"testing/quick"

	"factor/internal/netlist"
)

func TestWordLanes(t *testing.T) {
	var w Word
	w.SetLane(0, L1)
	w.SetLane(1, LX)
	w.SetLane(63, L1)
	if w.Lane(0) != L1 || w.Lane(1) != LX || w.Lane(2) != L0 || w.Lane(63) != L1 {
		t.Errorf("lanes: %v %v %v %v", w.Lane(0), w.Lane(1), w.Lane(2), w.Lane(63))
	}
	w.SetLane(0, L0)
	if w.Lane(0) != L0 {
		t.Error("SetLane overwrite failed")
	}
	w.SetLane(1, L1)
	if w.Lane(1) != L1 {
		t.Error("SetLane X->1 failed")
	}
}

// scalar three-valued reference functions.
func refNot(a Logic) Logic {
	switch a {
	case L0:
		return L1
	case L1:
		return L0
	}
	return LX
}

func refAnd(a, b Logic) Logic {
	if a == L0 || b == L0 {
		return L0
	}
	if a == L1 && b == L1 {
		return L1
	}
	return LX
}

func refOr(a, b Logic) Logic {
	if a == L1 || b == L1 {
		return L1
	}
	if a == L0 && b == L0 {
		return L0
	}
	return LX
}

func refXor(a, b Logic) Logic {
	if a == LX || b == LX {
		return LX
	}
	if a != b {
		return L1
	}
	return L0
}

func refMux(s, d0, d1 Logic) Logic {
	switch s {
	case L0:
		return d0
	case L1:
		return d1
	}
	if d0 == d1 && d0 != LX {
		return d0
	}
	return LX
}

var allLogic = []Logic{L0, L1, LX}

func TestWordOpsMatchScalarTruthTables(t *testing.T) {
	// Exhaustive over all 3x3 operand combinations, one per lane.
	var a, b Word
	lane := 0
	type pair struct{ x, y Logic }
	var pairs []pair
	for _, x := range allLogic {
		for _, y := range allLogic {
			a.SetLane(lane, x)
			b.SetLane(lane, y)
			pairs = append(pairs, pair{x, y})
			lane++
		}
	}
	check := func(name string, got Word, ref func(x, y Logic) Logic) {
		for i, p := range pairs {
			if got.Lane(i) != ref(p.x, p.y) {
				t.Errorf("%s(%v,%v) = %v, want %v", name, p.x, p.y, got.Lane(i), ref(p.x, p.y))
			}
		}
	}
	check("and", And(a, b), refAnd)
	check("or", Or(a, b), refOr)
	check("xor", Xor(a, b), refXor)
	check("nand", Not(And(a, b)), func(x, y Logic) Logic { return refNot(refAnd(x, y)) })
	for i, p := range pairs {
		if Not(a).Lane(i) != refNot(p.x) {
			t.Errorf("not(%v) = %v, want %v", p.x, Not(a).Lane(i), refNot(p.x))
		}
	}
}

func TestMuxTruthTable(t *testing.T) {
	var s, d0, d1 Word
	lane := 0
	type triple struct{ s, a, b Logic }
	var tr []triple
	for _, x := range allLogic {
		for _, y := range allLogic {
			for _, z := range allLogic {
				s.SetLane(lane, x)
				d0.SetLane(lane, y)
				d1.SetLane(lane, z)
				tr = append(tr, triple{x, y, z})
				lane++
			}
		}
	}
	got := MuxW(s, d0, d1)
	for i, p := range tr {
		if got.Lane(i) != refMux(p.s, p.a, p.b) {
			t.Errorf("mux(%v,%v,%v) = %v, want %v", p.s, p.a, p.b, got.Lane(i), refMux(p.s, p.a, p.b))
		}
	}
}

func buildAdder() *netlist.Netlist {
	n := netlist.New("fa")
	a := n.AddInput("a")
	b := n.AddInput("b")
	cin := n.AddInput("cin")
	axb := n.AddGate(netlist.Xor, a, b)
	sum := n.AddGate(netlist.Xor, axb, cin)
	ab := n.AddGate(netlist.And, a, b)
	cab := n.AddGate(netlist.And, cin, axb)
	cout := n.AddGate(netlist.Or, ab, cab)
	n.AddOutput("sum", sum)
	n.AddOutput("cout", cout)
	return n
}

func TestFullAdderExhaustive(t *testing.T) {
	s := New(buildAdder())
	for a := 0; a < 2; a++ {
		for b := 0; b < 2; b++ {
			for c := 0; c < 2; c++ {
				s.ApplyVector(map[string]Logic{"a": Logic(a), "b": Logic(b), "cin": Logic(c)})
				s.Eval()
				total := a + b + c
				wantSum := Logic(total & 1)
				wantCout := Logic(total >> 1)
				if got := s.OutputLane("sum", 0); got != wantSum {
					t.Errorf("a=%d b=%d c=%d: sum=%v want %v", a, b, c, got, wantSum)
				}
				if got := s.OutputLane("cout", 0); got != wantCout {
					t.Errorf("a=%d b=%d c=%d: cout=%v want %v", a, b, c, got, wantCout)
				}
			}
		}
	}
}

func TestParallelLanesIndependent(t *testing.T) {
	n := buildAdder()
	s := New(n)
	// Put all 8 input combinations in lanes 0..7.
	var wa, wb, wc Word
	for i := 0; i < 8; i++ {
		wa.SetLane(i, Logic(i&1))
		wb.SetLane(i, Logic((i>>1)&1))
		wc.SetLane(i, Logic((i>>2)&1))
	}
	s.SetInput(n.PI("a"), wa)
	s.SetInput(n.PI("b"), wb)
	s.SetInput(n.PI("cin"), wc)
	s.Eval()
	for i := 0; i < 8; i++ {
		total := (i & 1) + ((i >> 1) & 1) + ((i >> 2) & 1)
		if got := s.Value(n.PO("sum")).Lane(i); got != Logic(total&1) {
			t.Errorf("lane %d: sum=%v want %v", i, got, Logic(total&1))
		}
		if got := s.Value(n.PO("cout")).Lane(i); got != Logic(total>>1) {
			t.Errorf("lane %d: cout=%v want %v", i, got, Logic(total>>1))
		}
	}
}

func buildToggle() *netlist.Netlist {
	// q toggles when en=1.
	n := netlist.New("tff")
	en := n.AddInput("en")
	q := n.AddGate(netlist.DFF, en)
	d := n.AddGate(netlist.Xor, q, en)
	n.SetFanin(q, 0, d)
	n.AddOutput("q", q)
	return n
}

func TestSequentialToggle(t *testing.T) {
	n := buildToggle()
	s := New(n)
	s.ResetToZero()
	want := []Logic{L1, L0, L1, L0}
	for cyc, w := range want {
		s.ApplyVector(map[string]Logic{"en": L1})
		s.Step()
		s.Eval()
		if got := s.OutputLane("q", 0); got != w {
			t.Errorf("cycle %d: q=%v want %v", cyc, got, w)
		}
	}
	// en=0 holds state.
	s.ApplyVector(map[string]Logic{"en": L0})
	s.Step()
	s.Eval()
	if got := s.OutputLane("q", 0); got != L0 {
		t.Errorf("hold: q=%v want 0", got)
	}
}

func TestUnknownInitialStatePropagates(t *testing.T) {
	n := buildToggle()
	s := New(n) // DFFs at X
	s.ApplyVector(map[string]Logic{"en": L1})
	s.Step()
	s.Eval()
	if got := s.OutputLane("q", 0); got != LX {
		t.Errorf("q after toggling unknown state = %v, want X", got)
	}
	// en=0 and XOR with 0 keeps X.
	s.ApplyVector(map[string]Logic{"en": L0})
	s.Step()
	s.Eval()
	if got := s.OutputLane("q", 0); got != LX {
		t.Errorf("q = %v, want X", got)
	}
}

func TestSetStateOverridesX(t *testing.T) {
	n := buildToggle()
	s := New(n)
	q := n.DFFs[0]
	s.SetState(q, Splat(L1))
	s.ApplyVector(map[string]Logic{"en": L0})
	s.Eval()
	if got := s.OutputLane("q", 0); got != L1 {
		t.Errorf("q = %v, want 1 after SetState", got)
	}
}

// Property: X is a sound abstraction — lanes where inputs are binary
// never produce X at outputs of a purely combinational circuit built
// from And/Or/Not/Xor.
func TestNoSpuriousX(t *testing.T) {
	f := func(ops []byte, av, bv, cv bool) bool {
		n := netlist.New("rnd")
		a := n.AddInput("a")
		b := n.AddInput("b")
		c := n.AddInput("c")
		last := c
		for _, op := range ops {
			sz := len(n.Gates)
			f1 := int(op) % sz
			f2 := int(op>>2) % sz
			switch op % 4 {
			case 0:
				last = n.AddGate(netlist.And, f1, f2)
			case 1:
				last = n.AddGate(netlist.Or, f1, f2)
			case 2:
				last = n.AddGate(netlist.Xor, f1, f2)
			case 3:
				last = n.AddGate(netlist.Not, f1)
			}
		}
		n.AddOutput("y", last)
		s := New(n)
		toL := func(v bool) Logic {
			if v {
				return L1
			}
			return L0
		}
		s.SetInputScalar(a, toL(av))
		s.SetInputScalar(b, toL(bv))
		s.SetInputScalar(c, toL(cv))
		s.Eval()
		return s.OutputLane("y", 0) != LX
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: packed evaluation agrees with scalar lane-by-lane
// evaluation on random circuits and random inputs.
func TestParallelMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 20; trial++ {
		n := netlist.New("rnd")
		var pis []int
		for i := 0; i < 4; i++ {
			pis = append(pis, n.AddInput(string(rune('a'+i))))
		}
		for i := 0; i < 30; i++ {
			sz := len(n.Gates)
			f1 := rng.Intn(sz)
			f2 := rng.Intn(sz)
			f3 := rng.Intn(sz)
			switch rng.Intn(6) {
			case 0:
				n.AddGate(netlist.And, f1, f2)
			case 1:
				n.AddGate(netlist.Or, f1, f2)
			case 2:
				n.AddGate(netlist.Xor, f1, f2)
			case 3:
				n.AddGate(netlist.Nand, f1, f2)
			case 4:
				n.AddGate(netlist.Not, f1)
			case 5:
				n.AddGate(netlist.Mux, f1, f2, f3)
			}
		}
		n.AddOutput("y", len(n.Gates)-1)

		// Random packed input: 64 lanes of random 3-valued values.
		words := make([]Word, len(pis))
		for i := range words {
			for lane := 0; lane < 64; lane++ {
				words[i].SetLane(lane, Logic(rng.Intn(3)))
			}
		}
		sPar := New(n)
		for i, pi := range pis {
			sPar.SetInput(pi, words[i])
		}
		sPar.Eval()
		parallel := sPar.Value(n.PO("y"))

		for lane := 0; lane < 64; lane++ {
			sSer := New(n)
			for i, pi := range pis {
				sSer.SetInputScalar(pi, words[i].Lane(lane))
			}
			sSer.Eval()
			if got := sSer.OutputLane("y", 0); got != parallel.Lane(lane) {
				t.Fatalf("trial %d lane %d: scalar=%v parallel=%v", trial, lane, got, parallel.Lane(lane))
			}
		}
	}
}

func TestSplatAndNorm(t *testing.T) {
	w := Word{Ones: ^uint64(0), Xs: ^uint64(0)}
	if w.norm().Ones != 0 {
		t.Error("norm should clear Ones under Xs")
	}
	if Splat(L1).Lane(5) != L1 || Splat(LX).Lane(5) != LX || Splat(L0).Lane(5) != L0 {
		t.Error("Splat broken")
	}
}
