package conformance

import "testing"

// FuzzPipelineConformance fuzzes the whole FACTOR pipeline with the
// generator seed as the only input: every seed yields a hierarchical
// design that must survive parse -> analyze -> synthesize (optimized
// and not) -> extract/transform -> ATPG -> dual-engine fault-sim replay
// with all four conformance invariants intact. A failing seed is a bug
// somewhere in the pipeline; reproduce it with
//
//	go run ./cmd/conformance -seed <seed> -n 1 -shrink
//
// which minimizes the design to a small reproducer.
func FuzzPipelineConformance(f *testing.F) {
	for _, seed := range []int64{0, 1, 2, 15, 33, 34, 99, -7, 1 << 40} {
		f.Add(seed)
	}
	opts := DefaultOptions()
	// Keep per-input work small: the fuzzer's value is breadth of seeds,
	// not stimulus depth on one seed.
	opts.CosimCycles = 8
	opts.RandomSequences = 8
	opts.RandomSeqLen = 6
	opts.BacktrackLimit = 64
	f.Fuzz(func(t *testing.T, seed int64) {
		rep := Check(seed, opts)
		if !rep.OK() {
			t.Fatalf("conformance violation: %s", rep.Line())
		}
	})
}
