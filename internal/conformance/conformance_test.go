package conformance

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"factor/internal/verilog"
)

// TestPinnedCorpus is the go-test face of the conformance harness: a
// fixed seed range through the full pipeline, every invariant asserted.
// cmd/conformance runs the same check over larger corpora.
func TestPinnedCorpus(t *testing.T) {
	opts := DefaultOptions()
	for seed := int64(0); seed < 40; seed++ {
		rep := Check(seed, opts)
		if !rep.OK() {
			t.Errorf("%s", rep.Line())
		}
	}
}

// TestReportDeterministic checks the corpus report is byte-identical
// across runs of the same seed (the CLI's same-seed => same-report
// contract).
func TestReportDeterministic(t *testing.T) {
	opts := DefaultOptions()
	for _, seed := range []int64{1, 2, 15, 33} {
		a := Check(seed, opts).Line()
		b := Check(seed, opts).Line()
		if a != b {
			t.Fatalf("seed %d: report not deterministic:\n%s\n%s", seed, a, b)
		}
	}
}

// TestReproducers replays every shrunk reproducer under testdata/repro
// against the current pipeline: each one documents a fixed bug and must
// now pass all invariants, for several seeds so both extraction modes
// and MUT choices are covered.
func TestReproducers(t *testing.T) {
	matches, err := filepath.Glob(filepath.Join("testdata", "repro", "*.v"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) == 0 {
		t.Fatal("no reproducers found under testdata/repro")
	}
	opts := DefaultOptions()
	for _, path := range matches {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for _, seed := range []int64{1, 2, 15, 34} {
			rep := CheckSource(string(data), seed, opts)
			if !rep.OK() {
				t.Errorf("%s seed %d: %s", filepath.Base(path), seed, rep.Line())
			}
		}
	}
}

// TestShrinkMinimizes checks the shrinker machinery with a synthetic
// predicate: it must reach a small fixpoint while preserving the
// property, independent of the conformance checker.
func TestShrinkMinimizes(t *testing.T) {
	text := `module helper (a, b);
  input [3:0] a;
  output [3:0] b;
  assign b = (a + 4'd3);
endmodule

module top (clk, x, magic_sig, y);
  input clk;
  input [3:0] x;
  input magic_sig;
  output [3:0] y;
  wire [3:0] h;
  reg [3:0] q;
  helper u_h (.a(x), .b(h));
  always @(posedge clk)
    q <= (h ^ {4{magic_sig}});
  assign y = (q | x);
endmodule
`
	keep := func(cand string) bool {
		return strings.Contains(cand, "magic_sig") && parses(cand)
	}
	if !keep(text) {
		t.Fatal("original does not satisfy the predicate")
	}
	small := Shrink(text, keep, 4000)
	if !keep(small) {
		t.Fatalf("shrunk text lost the property:\n%s", small)
	}
	if len(small) >= len(text) {
		t.Fatalf("no reduction: %d -> %d bytes", len(text), len(small))
	}
	if lines := strings.Count(small, "\n"); lines > 8 {
		t.Errorf("expected a near-minimal module, got %d lines:\n%s", lines, small)
	}
	if strings.Contains(small, "helper") {
		t.Errorf("unused module not removed:\n%s", small)
	}
}

func parses(text string) bool {
	_, err := verilog.Parse("t.v", text)
	return err == nil
}

// TestShrinkRespectsBudget checks the candidate budget bounds the work.
func TestShrinkRespectsBudget(t *testing.T) {
	text := "module top (a, b);\n  input a;\n  output b;\n  assign b = (a ^ a);\nendmodule\n"
	calls := 0
	keep := func(string) bool { calls++; return false }
	out := Shrink(text, keep, 5)
	if out != text {
		t.Fatal("nothing should be accepted when keep always fails")
	}
	if calls > 5 {
		t.Fatalf("budget exceeded: %d evaluations", calls)
	}
}
