package conformance

// I8 pinned-seed sweep. Each seed spins five in-process servers (two
// worker counts, a cache-hit leg, and the two boots of the restart
// leg), so the list stays short; the service package's own tests cover
// the transport details.

import (
	"fmt"
	"testing"
)

var serviceSeeds = []int64{1, 3, 7}

func TestServiceInvariant(t *testing.T) {
	if testing.Short() {
		t.Skip("full service conformance sweep")
	}
	for _, seed := range serviceSeeds {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			rep := CheckService(seed, t.TempDir())
			t.Logf("I8 %s", rep.Line())
			if !rep.OK() {
				for _, v := range rep.Violations {
					t.Errorf("%s", v)
				}
			}
			if rep.Vacuous {
				return
			}
			if !rep.CacheHit {
				t.Error("resubmission was not a cache hit")
			}
			if !rep.Resumed {
				t.Error("restart leg did not resume")
			}
		})
	}
}
