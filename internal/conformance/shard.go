package conformance

// Invariant I7 (shard identity): first-detection fault simulation
// sharded across re-exec'd worker processes over a compiled-netlist
// snapshot must be byte-identical to the single-process in-process run
// — the full per-fault first-detection vector and the shard-invariant
// work counters — for every shards × workers combination, because
// shard ranges are aligned to the engine's 63-fault batch boundaries
// and first detection is intrinsic to (fault, sequence list).

import (
	"context"
	"fmt"
	"strings"
	"time"

	"factor/internal/designgen"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/shard"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// CodeShard classifies I7 violations.
const CodeShard = "shard"

// ShardTopologies is the shards × workers matrix I7 sweeps.
var ShardTopologies = []struct{ Shards, Workers int }{
	{1, 1}, {2, 1}, {2, 2}, {3, 2},
}

// ShardReport is the outcome of checking one seed.
type ShardReport struct {
	Seed   int64
	Faults int
	// Vacuous is set when the seed's design has no faults.
	Vacuous    bool
	Violations []Violation
}

// OK reports whether I7 held.
func (r *ShardReport) OK() bool { return len(r.Violations) == 0 }

func (r *ShardReport) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Invariant: 7,
		Code:      CodeShard,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Line renders the report as one deterministic summary line.
func (r *ShardReport) Line() string {
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d faults=%d vacuous=%v status=%s", r.Seed, r.Faults, r.Vacuous, status)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, " [%s]", v)
	}
	return b.String()
}

// shardLeg builds the fault-simulation leg for a seed: the generated
// design synthesized whole (no MUT extraction — sharding operates on
// the full universe) plus its stimulus.
func shardLeg(seed int64, opts Options) (*netlist.Netlist, []fault.Fault, []fault.Sequence, uint64, error) {
	opts = opts.withDefaults()
	text := designgen.Generate(seed, opts.Gen).Text()
	src, err := verilog.Parse("conformance.v", text)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	top := "top"
	if src.Module(top) == nil && len(src.Modules) > 0 {
		top = src.Modules[len(src.Modules)-1].Name
	}
	res, err := synth.Synthesize(src, top, synth.Options{})
	if err != nil {
		return nil, nil, nil, 0, err
	}
	nl := res.Netlist
	faults := fault.Universe(nl)
	stimSeed := uint64(mixSeed(seed, 0x53484152)) // "SHAR"
	seqs := fault.RandomSequences(nl, stimSeed, opts.RandomSequences, opts.RandomSeqLen)
	return nl, faults, seqs, stimSeed, nil
}

// renderShardRun is the canonical byte-comparable rendering of a
// first-detection pass: every fault's first detecting sequence and the
// invariant work counters. TraceCycles is deliberately absent — it is
// the one counter that scales with the shard count.
func renderShardRun(faults []fault.Fault, first []int, work shard.WorkCounters) string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults=%d digest=%s\n", len(faults), shard.DigestFirst(first))
	fmt.Fprintf(&b, "work batches=%d cycles=%d events=%d flop_heals=%d\n",
		work.Batches, work.Cycles, work.Events, work.FlopHeals)
	for i, f := range faults {
		fmt.Fprintf(&b, "%s first=%d\n", f, first[i])
	}
	return b.String()
}

// CheckShard verifies I7 for one seed: an in-process single-worker
// baseline, then a sharded run per topology in ShardTopologies, each
// spawned through spawn (which must run shard.ChildMain in a fresh
// process), byte-compared against the baseline. dir holds the snapshot
// file.
func CheckShard(seed int64, dir string, spawn shard.Spawner) *ShardReport {
	rep := &ShardReport{Seed: seed}
	opts := DefaultOptions()

	nl, faults, seqs, stimSeed, err := shardLeg(seed, opts)
	if err != nil {
		rep.violate("pipeline front failed: %v", err)
		return rep
	}
	rep.Faults = len(faults)
	if len(faults) == 0 {
		rep.Vacuous = true
		return rep
	}

	baseFirst, baseStats, errs := fault.FirstDetections(context.Background(), nl, faults, seqs, 1, time.Time{})
	if len(errs) != 0 {
		rep.violate("baseline run errored: %v", errs)
		return rep
	}
	baseline := renderShardRun(faults, baseFirst, shard.Invariant(baseStats))

	snap := dir + "/shard.snap"
	if err := nl.WriteSnapshotFile(snap); err != nil {
		rep.violate("snapshot write failed: %v", err)
		return rep
	}

	for _, topo := range ShardTopologies {
		res := shard.Run(context.Background(), shard.Options{
			Shards:   topo.Shards,
			Workers:  topo.Workers,
			Seqs:     opts.withDefaults().RandomSequences,
			Cycles:   opts.withDefaults().RandomSeqLen,
			Seed:     stimSeed,
			Module:   fmt.Sprintf("conformance@%d", seed),
			Snapshot: snap,
		}, len(faults), spawn)
		if len(res.Died) != 0 {
			rep.violate("shards=%d workers=%d: %d shard(s) died: %v",
				topo.Shards, topo.Workers, len(res.Died), res.Errors)
			continue
		}
		if got := renderShardRun(faults, res.First, res.Work); got != baseline {
			rep.violate("shards=%d workers=%d: sharded run differs from single-process run:\n%s",
				topo.Shards, topo.Workers, firstDiff(baseline, got))
		}
	}
	return rep
}
