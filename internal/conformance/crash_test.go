package conformance

import (
	"os"
	"os/exec"
	"testing"
)

// TestCrashChildExec is not a test: it is the body the crash hammer
// re-execs the test binary into (-test.run=^TestCrashChildExec$ with
// FACTOR_CRASH_CHILD=1). It runs one journaled ATPG leg and is
// expected to be SIGKILLed by an injected failpoint most of the time.
func TestCrashChildExec(t *testing.T) {
	if os.Getenv(EnvCrashChild) != "1" {
		t.Skip("crash-child body; spawned by TestCrashHammer")
	}
	if err := CrashChild(); err != nil {
		t.Fatalf("crash child: %v", err)
	}
}

// spawnSelf re-execs the running test binary into TestCrashChildExec
// with the scenario environment. A SIGKILLed child and a child that
// failed both return a non-nil error; CheckCrash distinguishes them by
// when they happen (kill rounds expect deaths, the failpoint-free
// round does not).
func spawnSelf(t *testing.T) func(env map[string]string) error {
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return func(env map[string]string) error {
		cmd := exec.Command(exe, "-test.run", "^TestCrashChildExec$", "-test.count=1")
		cmd.Env = os.Environ()
		for k, v := range env {
			cmd.Env = append(cmd.Env, k+"="+v)
		}
		out, err := cmd.CombinedOutput()
		if err != nil {
			return &childError{err: err, output: string(out)}
		}
		return nil
	}
}

type childError struct {
	err    error
	output string
}

func (e *childError) Error() string {
	return e.err.Error() + "\n" + e.output
}

// TestCrashHammer is invariant I6 over a pinned corpus: every seed's
// journaled ATPG run is SIGKILLed at injected sites across several
// kill-and-resume rounds, and the eventual result must be
// bit-identical to the uninterrupted run — including after the
// deliberate head-journal corruption leg inside CheckCrash. The seed
// range covers every entry of KillSites (site = seed mod len).
func TestCrashHammer(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	spawn := spawnSelf(t)
	crashes := 0
	for seed := int64(0); seed < 8; seed++ {
		rep := CheckCrash(seed, t.TempDir(), spawn)
		if !rep.OK() {
			t.Errorf("%s", rep.Line())
		}
		crashes += rep.Crashes
	}
	// The hammer is vacuous if no child ever actually died: the kill
	// probabilities and round count are tuned so the corpus always
	// produces real SIGKILL deaths.
	if crashes == 0 {
		t.Error("crash hammer produced zero crashes across the corpus; kill sites or probabilities are miswired")
	}
}
