// Reproducer shrunk from designgen seed 15 (89 lines -> 16) by the
// conformance shrinker. Composed-mode extraction made c2 a slice
// target when tracing the MUT output connected to c1, which keeps BOTH
// assignments to c2 in the emitted environment — but only the support
// of the on-path assignment (c1) was traced, so the kept "c2 = in0"
// read in0 as an undriven wire and the transformed module disagreed
// with the full design on out1 (invariant I2). Fixed by re-tracing
// every slice target as a source so all of its defs pull in their
// support (core/extract.go, addSliceTarget).
module m1_dp (out1);
  output out1;
endmodule

module top (in0, out1);
  input in0;
  output out1;
  wire c1;
  reg c2;
  m1_dp u_0 (.out1(c1));
  always @(*) begin
    c2 = c1;
    c2 = in0;
  end
  assign out1 = c2;
endmodule
