package conformance

import (
	"factor/internal/verilog"
)

// Shrink minimizes Verilog source text while keep(text) remains true.
// It greedily applies single AST-level reductions — removing modules,
// ports, items and statements, flattening if/case, replacing
// expressions with their operands or a constant — re-parsing the
// current text for every candidate so each mutation is independent.
// Every mutation strictly shrinks the AST, so accepting any keeping
// candidate is monotone and the loop reaches a 1-minimal fixpoint (no
// single reduction keeps the failure) or exhausts the budget of
// candidate evaluations.
func Shrink(text string, keep func(string) bool, budget int) string {
	cur := text
	for budget > 0 {
		improved := false
		for k := 0; budget > 0; k++ {
			cand, ok := mutateText(cur, k)
			if !ok {
				break
			}
			if cand == cur {
				continue
			}
			budget--
			if keep(cand) {
				cur = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return cur
}

// ShrinkReport minimizes a failing design such that CheckSource keeps
// reporting the same (invariant, code) violation class.
func ShrinkReport(text string, seed int64, v Violation, opts Options, budget int) string {
	keep := func(cand string) bool {
		return CheckSource(cand, seed, opts).Fails(v.Invariant, v.Code)
	}
	return Shrink(text, keep, budget)
}

// mutateText parses text, applies the k-th enumerated mutation, and
// prints the result. ok is false when k is past the enumeration (or the
// text no longer parses, which only happens when shrinking a parse
// failure — those are already minimal for this mutator).
func mutateText(text string, k int) (string, bool) {
	src, err := verilog.Parse("shrink.v", text)
	if err != nil {
		return "", false
	}
	m := &mutator{target: k}
	m.file(src)
	if !m.applied {
		return "", false
	}
	return verilog.PrintFile(src), true
}

// mutator enumerates mutation points in deterministic AST order and
// applies the target-th one in place.
type mutator struct {
	target, count int
	applied       bool
}

// hit reports whether the current mutation point is the target, and
// marks the mutator applied when it is. After a hit every later point
// reports false, so callers apply at most one mutation.
func (m *mutator) hit() bool {
	if m.applied {
		return false
	}
	m.count++
	if m.count-1 == m.target {
		m.applied = true
		return true
	}
	return false
}

func (m *mutator) file(src *verilog.SourceFile) {
	top := "top"
	if src.Module(top) == nil && len(src.Modules) > 0 {
		top = src.Modules[len(src.Modules)-1].Name
	}
	instantiated := map[string]bool{}
	for _, mod := range src.Modules {
		for _, inst := range mod.Instances() {
			instantiated[inst.ModuleName] = true
		}
	}
	// Remove an uninstantiated non-top module.
	for i, mod := range src.Modules {
		if mod.Name != top && !instantiated[mod.Name] && m.hit() {
			src.Modules = append(src.Modules[:i], src.Modules[i+1:]...)
			return
		}
	}
	for _, mod := range src.Modules {
		m.module(src, mod)
		if m.applied {
			return
		}
	}
}

func (m *mutator) module(src *verilog.SourceFile, mod *verilog.Module) {
	// Remove a port (and its connection at every instantiation site).
	for pi, p := range mod.Ports {
		if m.hit() {
			name := p.Name
			mod.Ports = append(mod.Ports[:pi], mod.Ports[pi+1:]...)
			for _, other := range src.Modules {
				for _, inst := range other.Instances() {
					if inst.ModuleName != mod.Name {
						continue
					}
					for ci, c := range inst.Conns {
						if c.Port == name {
							inst.Conns = append(inst.Conns[:ci], inst.Conns[ci+1:]...)
							break
						}
					}
				}
			}
			return
		}
	}
	// Narrow a port to a scalar.
	for _, p := range mod.Ports {
		if p.Width != nil && m.hit() {
			p.Width = nil
			return
		}
	}
	// Remove an item.
	for i := range mod.Items {
		if m.hit() {
			mod.Items = append(mod.Items[:i], mod.Items[i+1:]...)
			return
		}
	}
	// Descend into items.
	for _, item := range mod.Items {
		switch it := item.(type) {
		case *verilog.NetDecl:
			if it.Width != nil && m.hit() {
				it.Width = nil
				return
			}
		case *verilog.AssignItem:
			it.RHS = m.expr(it.RHS)
		case *verilog.AlwaysBlock:
			it.Body = m.stmt(it.Body)
		case *verilog.GateInst:
			for ai := 1; ai < len(it.Args); ai++ { // arg 0 is the output
				it.Args[ai] = m.expr(it.Args[ai])
			}
		case *verilog.Instance:
			for ci := range it.Conns {
				if it.Conns[ci].Expr != nil {
					it.Conns[ci].Expr = m.expr(it.Conns[ci].Expr)
				}
			}
		}
		if m.applied {
			return
		}
	}
}

func (m *mutator) stmt(s verilog.Stmt) verilog.Stmt {
	if s == nil || m.applied {
		return s
	}
	switch v := s.(type) {
	case *verilog.Block:
		for i := range v.Stmts {
			if m.hit() {
				v.Stmts = append(v.Stmts[:i], v.Stmts[i+1:]...)
				return v
			}
		}
		for i := range v.Stmts {
			v.Stmts[i] = m.stmt(v.Stmts[i])
			if m.applied {
				return v
			}
		}
	case *verilog.IfStmt:
		if m.hit() {
			return v.Then
		}
		if v.Else != nil && m.hit() {
			return v.Else
		}
		v.Cond = m.expr(v.Cond)
		v.Then = m.stmt(v.Then)
		if v.Else != nil {
			v.Else = m.stmt(v.Else)
		}
	case *verilog.CaseStmt:
		for _, item := range v.Items {
			if m.hit() {
				return item.Body
			}
		}
		if len(v.Items) > 1 {
			for i := range v.Items {
				if m.hit() {
					v.Items = append(v.Items[:i], v.Items[i+1:]...)
					return v
				}
			}
		}
		v.Subject = m.expr(v.Subject)
		for i := range v.Items {
			v.Items[i].Body = m.stmt(v.Items[i].Body)
			if m.applied {
				return v
			}
		}
	case *verilog.ForStmt:
		v.Body = m.stmt(v.Body)
	case *verilog.WhileStmt:
		v.Body = m.stmt(v.Body)
	case *verilog.AssignStmt:
		v.RHS = m.expr(v.RHS)
	}
	return s
}

func (m *mutator) expr(e verilog.Expr) verilog.Expr {
	if e == nil || m.applied {
		return e
	}
	// Any non-literal expression can collapse to 1'b0.
	if _, isNum := e.(*verilog.Number); !isNum && m.hit() {
		return &verilog.Number{Width: 1, Sized: true, Value: 0}
	}
	switch v := e.(type) {
	case *verilog.UnaryExpr:
		if m.hit() {
			return v.X
		}
		v.X = m.expr(v.X)
	case *verilog.BinaryExpr:
		if m.hit() {
			return v.X
		}
		if m.hit() {
			return v.Y
		}
		v.X = m.expr(v.X)
		v.Y = m.expr(v.Y)
	case *verilog.CondExpr:
		if m.hit() {
			return v.Then
		}
		if m.hit() {
			return v.Else
		}
		v.Cond = m.expr(v.Cond)
		v.Then = m.expr(v.Then)
		v.Else = m.expr(v.Else)
	case *verilog.ConcatExpr:
		for _, p := range v.Parts {
			if m.hit() {
				return p
			}
		}
		for i := range v.Parts {
			v.Parts[i] = m.expr(v.Parts[i])
			if m.applied {
				return v
			}
		}
	case *verilog.ReplExpr:
		if m.hit() {
			return v.X
		}
		v.X = m.expr(v.X)
	case *verilog.IndexExpr:
		if m.hit() {
			return v.X
		}
		v.X = m.expr(v.X)
	case *verilog.RangeExpr:
		if m.hit() {
			return v.X
		}
		v.X = m.expr(v.X)
	}
	return e
}
