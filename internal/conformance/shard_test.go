package conformance

import (
	"os"
	"testing"

	"factor/internal/shard"
)

// TestShardChildExecI7 is not a test: it is the body CheckShard's
// spawner re-execs the test binary into. shard.ChildMain only engages
// when FACTOR_SHARD_SPEC is set, and never returns when it does.
func TestShardChildExecI7(t *testing.T) {
	shard.ChildMain()
	t.Skip("shard-child body; spawned by TestShardIdentity")
}

// TestShardIdentity is invariant I7 over a pinned corpus: for each
// seed, the sharded multi-process run must render byte-identically to
// the in-process single-worker baseline for every topology in
// ShardTopologies. At least one seed must be non-vacuous so the sweep
// actually exercises the merge.
func TestShardIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("re-execs child processes; skipped in -short")
	}
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	spawn := shard.ExecSpawner(exe, "-test.run", "^TestShardChildExecI7$", "-test.count=1")
	nonVacuous := 0
	for seed := int64(0); seed < 4; seed++ {
		rep := CheckShard(seed, t.TempDir(), spawn)
		if !rep.OK() {
			t.Errorf("%s", rep.Line())
		}
		if !rep.Vacuous {
			nonVacuous++
		}
	}
	if nonVacuous == 0 {
		t.Error("every corpus seed was vacuous; the sweep never exercised sharding")
	}
}
