package conformance

// Invariant I8 (service identity): a report served by the factord HTTP
// API must be byte-identical to the report the CLI pipeline renders for
// the same job spec — for every worker count, after a resubmission
// served from the content-addressed store without re-running the
// pipeline, and across a mid-job interrupt + restart that resumes from
// the checkpoint journal. The service is a transport around the
// pipeline, never a second implementation of it.

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"time"

	"factor/internal/designgen"
	"factor/internal/failpoint"
	"factor/internal/service"
	"factor/internal/telemetry"
	"factor/internal/telemetry/metrics"
)

// CodeService classifies I8 violations.
const CodeService = "service"

// ServiceWorkerCounts is the per-job worker sweep I8 runs.
var ServiceWorkerCounts = []int{1, 3}

// ServiceReport is the outcome of checking one seed.
type ServiceReport struct {
	Seed   int64
	Faults int
	// Vacuous is set when the seed's design has no faults.
	Vacuous bool
	// CacheHit records that the resubmission leg was served from the
	// store without a pipeline run.
	CacheHit bool
	// Resumed records that the restart leg re-enqueued the interrupted
	// job on second boot.
	Resumed    bool
	Violations []Violation
}

// OK reports whether I8 held.
func (r *ServiceReport) OK() bool { return len(r.Violations) == 0 }

func (r *ServiceReport) violate(format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Invariant: 8,
		Code:      CodeService,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Line renders the report as one deterministic summary line.
func (r *ServiceReport) Line() string {
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d faults=%d vacuous=%v cache_hit=%v resumed=%v status=%s",
		r.Seed, r.Faults, r.Vacuous, r.CacheHit, r.Resumed, status)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, " [%s]", v)
	}
	return b.String()
}

// serviceSpec is the I8 job spec for a seed: the generated design run
// whole-top with the conformance stimulus budget.
func serviceSpec(seed int64, opts Options) service.JobSpec {
	opts = opts.withDefaults()
	return service.JobSpec{
		Design:          designgen.Generate(seed, opts.Gen).Text(),
		Seed:            mixSeed(seed, 0x53525643), // "SRVC"
		RandomSequences: opts.RandomSequences,
		RandomSeqLen:    opts.RandomSeqLen,
		BacktrackLimit:  opts.BacktrackLimit,
		MaxFrames:       4,
	}
}

// serviceClient wraps one httptest server for the polling legs.
type serviceClient struct {
	base string
}

func (c serviceClient) submit(spec service.JobSpec) (id, state string, cached bool, err error) {
	body, err := json.Marshal(spec)
	if err != nil {
		return "", "", false, err
	}
	resp, err := http.Post(c.base+"/api/v1/jobs", "application/json", strings.NewReader(string(body)))
	if err != nil {
		return "", "", false, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusAccepted {
		return "", "", false, fmt.Errorf("submit: %d %s", resp.StatusCode, data)
	}
	var st struct {
		ID     string `json:"id"`
		State  string `json:"state"`
		Cached bool   `json:"cached"`
	}
	if err := json.Unmarshal(data, &st); err != nil {
		return "", "", false, err
	}
	return st.ID, st.State, st.Cached, nil
}

func (c serviceClient) waitTerminal(id string, timeout time.Duration) (state, errMsg string, err error) {
	deadline := time.Now().Add(timeout)
	for {
		resp, err := http.Get(c.base + "/api/v1/jobs/" + id)
		if err != nil {
			return "", "", err
		}
		var st struct {
			State string `json:"state"`
			Error string `json:"error"`
		}
		derr := json.NewDecoder(resp.Body).Decode(&st)
		resp.Body.Close()
		if derr != nil {
			return "", "", derr
		}
		switch st.State {
		case "done", "failed", "canceled", "interrupted":
			return st.State, st.Error, nil
		}
		if time.Now().After(deadline) {
			return st.State, st.Error, fmt.Errorf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func (c serviceClient) report(id string) ([]byte, error) {
	resp, err := http.Get(c.base + "/api/v1/jobs/" + id + "/report")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("report: %d %s", resp.StatusCode, data)
	}
	return data, nil
}

// runServiceJob boots a server over dataDir, submits spec, waits for a
// terminal state, and returns (server, client, job id, terminal state).
func runServiceJob(dataDir string, cfg service.Config, spec service.JobSpec, timeout time.Duration) (srv *service.Server, ts *httptest.Server, id, state string, err error) {
	cfg.DataDir = dataDir
	srv, err = service.New(cfg)
	if err != nil {
		return nil, nil, "", "", err
	}
	srv.Start()
	ts = httptest.NewServer(srv.Handler())
	c := serviceClient{base: ts.URL}
	id, _, _, err = c.submit(spec)
	if err == nil {
		state, _, err = c.waitTerminal(id, timeout)
	}
	return srv, ts, id, state, err
}

// CheckService verifies I8 for one seed. dir holds the per-leg server
// data directories.
func CheckService(seed int64, dir string) *ServiceReport {
	rep := &ServiceReport{Seed: seed}
	spec := serviceSpec(seed, DefaultOptions())
	const legTimeout = 2 * time.Minute

	// Baseline: the CLI code path, rendered to canonical bytes.
	built, err := service.Build(context.Background(), spec)
	if err != nil {
		rep.violate("pipeline front failed: %v", err)
		return rep
	}
	rep.Faults = len(built.Faults)
	if rep.Faults == 0 {
		rep.Vacuous = true
		return rep
	}
	pipeRep, _, err := service.RunPipeline(context.Background(), spec, service.RunConfig{Tel: telemetry.New()})
	if err != nil {
		rep.violate("baseline pipeline failed: %v", err)
		return rep
	}
	baseline, err := pipeRep.Render()
	if err != nil {
		rep.violate("baseline render failed: %v", err)
		return rep
	}

	// Leg 1: one fresh server per worker count; served bytes must equal
	// the baseline for each.
	for _, workers := range ServiceWorkerCounts {
		wspec := spec
		wspec.Workers = workers
		cfg := service.Config{Runners: 1}
		if workers == ServiceWorkerCounts[0] {
			// The full observability plane rides on one leg: metrics,
			// per-job traces and structured logs enabled must leave the
			// served report bytes untouched — that IS invariant I8 for
			// the operational plane.
			cfg.Metrics = metrics.NewRegistry()
			cfg.TraceJobs = true
			cfg.Logger = slog.New(slog.NewJSONHandler(io.Discard, nil))
		}
		srv, ts, id, state, err := runServiceJob(
			filepath.Join(dir, fmt.Sprintf("w%d", workers)),
			cfg, wspec, legTimeout)
		if err != nil {
			rep.violate("workers=%d: %v", workers, err)
			if srv != nil {
				ts.Close()
				srv.Close()
			}
			continue
		}
		if state != "done" {
			rep.violate("workers=%d: job ended %s", workers, state)
		} else if got, err := (serviceClient{base: ts.URL}).report(id); err != nil {
			rep.violate("workers=%d: %v", workers, err)
		} else if string(got) != string(baseline) {
			rep.violate("workers=%d: HTTP report differs from CLI report:\n%s",
				workers, firstDiff(string(baseline), string(got)))
		}

		// Leg 2 (on the workers=1 server): resubmission must be a cache
		// hit — no second pipeline run — and serve the same bytes.
		if workers == ServiceWorkerCounts[0] && state == "done" {
			c := serviceClient{base: ts.URL}
			runsBefore := srv.Telemetry().Counters()["service.pipeline_runs"]
			id2, st2, cached, err := c.submit(spec)
			if err != nil {
				rep.violate("resubmit: %v", err)
			} else {
				rep.CacheHit = cached && st2 == "done"
				if !rep.CacheHit {
					rep.violate("resubmit not served from cache: state=%s cached=%v", st2, cached)
				}
				after := srv.Telemetry().Counters()
				if after["service.pipeline_runs"] != runsBefore {
					rep.violate("resubmit re-ran the pipeline (%d -> %d runs)",
						runsBefore, after["service.pipeline_runs"])
				}
				if after["service.cache_hits"] == 0 {
					rep.violate("resubmit did not count a cache hit")
				}
				if got, err := c.report(id2); err != nil {
					rep.violate("cached report: %v", err)
				} else if string(got) != string(baseline) {
					rep.violate("cached report differs from CLI report")
				}
			}
		}
		ts.Close()
		srv.Close()
	}

	// Leg 3: interrupt mid-job at the checkpoint-sync failpoint, boot a
	// fresh server over the same data dir, and require the resumed run
	// to serve the baseline bytes.
	restartDir := filepath.Join(dir, "restart")
	reg, err := failpoint.Parse("atpg.checkpoint.sync=cancel")
	if err != nil {
		rep.violate("failpoint parse: %v", err)
		return rep
	}
	srv1, err := service.New(service.Config{DataDir: restartDir, Runners: 1, CheckpointEvery: 1})
	if err != nil {
		rep.violate("restart leg boot: %v", err)
		return rep
	}
	failpoint.SetCanceler(srv1.Interrupt)
	failpoint.Activate(reg)
	srv1.Start()
	ts1 := httptest.NewServer(srv1.Handler())
	c1 := serviceClient{base: ts1.URL}
	id, _, _, err := c1.submit(spec)
	var state1 string
	if err == nil {
		state1, _, err = c1.waitTerminal(id, legTimeout)
	}
	failpoint.Deactivate()
	ts1.Close()
	srv1.Close()
	if err != nil {
		rep.violate("restart leg first boot: %v", err)
		return rep
	}
	if state1 != "interrupted" {
		rep.violate("restart leg: first boot ended %s, want interrupted", state1)
		return rep
	}

	srv2, err := service.New(service.Config{DataDir: restartDir, Runners: 1, CheckpointEvery: 1})
	if err != nil {
		rep.violate("restart leg reboot: %v", err)
		return rep
	}
	srv2.Start()
	ts2 := httptest.NewServer(srv2.Handler())
	defer srv2.Close()
	defer ts2.Close()
	rep.Resumed = srv2.Telemetry().Counters()["service.jobs_resumed"] == 1
	if !rep.Resumed {
		rep.violate("restart leg: rebooted server did not re-enqueue the interrupted job")
		return rep
	}
	c2 := serviceClient{base: ts2.URL}
	state2, errMsg, err := c2.waitTerminal(id, legTimeout)
	if err != nil {
		rep.violate("restart leg resume: %v", err)
		return rep
	}
	if state2 != "done" {
		rep.violate("restart leg: resumed job ended %s (%s)", state2, errMsg)
		return rep
	}
	if got, err := c2.report(id); err != nil {
		rep.violate("restart leg report: %v", err)
	} else if string(got) != string(baseline) {
		rep.violate("restart leg: resumed report differs from CLI report:\n%s",
			firstDiff(string(baseline), string(got)))
	}
	return rep
}
