package conformance

// Invariant I6 (crash recovery): an atpg run that journals to a
// checkpoint, is SIGKILLed at an arbitrary injected site, and is
// resumed from whatever the filesystem holds — possibly a torn head
// journal recovered from the previous-good backup — must finish
// bit-identical to the uninterrupted run.
//
// The hammer needs a real process death (SIGKILL runs no deferred
// cleanup, no atexit — exactly what checkpoint durability is for), so
// the ATPG leg runs in a child process: the test binary re-execs
// itself into CrashChild with the scenario passed through
// FACTOR_CRASH_* environment variables, and a failpoint kill action
// (internal/failpoint) murders the child at a seeded site. Each round
// resumes from the journal the previous round left behind; a final
// failpoint-free round guarantees completion; the child's rendered
// result is compared byte-for-byte against an in-process baseline.

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"factor/internal/atpg"
	"factor/internal/cli"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/designgen"
	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// CodeCrash classifies I6 violations.
const CodeCrash = "crash"

// KillSites are the failpoint sites the crash hammer murders children
// at. atpg.checkpoint.rename is the torn window — the instant between
// rotating the head to the backup and renaming the new frame into
// place, where no head journal exists at all.
var KillSites = []string{
	"atpg.search",
	"atpg.merge",
	"atpg.checkpoint.sync",
	"atpg.checkpoint.rename",
}

// maxKillRounds bounds the kill-and-resume loop; a failpoint-free
// round after it guarantees the hammer terminates even when every kill
// lands before the first flush.
const maxKillRounds = 6

// Environment variables carrying a crash scenario to the re-execed
// child (see CrashChild). The failpoint spec itself rides in the shared
// cli.EnvFailpoints variable so crash children use the same propagation
// path as every other re-exec'd subprocess.
const (
	EnvCrashChild   = "FACTOR_CRASH_CHILD"
	EnvCrashSeed    = "FACTOR_CRASH_SEED"
	EnvCrashCkpt    = "FACTOR_CRASH_CKPT"
	EnvCrashOut     = "FACTOR_CRASH_OUT"
	EnvCrashLog     = "FACTOR_CRASH_LOG"
	EnvCrashWorkers = "FACTOR_CRASH_WORKERS"
)

// CrashReport is the outcome of hammering one seed.
type CrashReport struct {
	Seed    int64
	Rounds  int // child processes spawned
	Crashes int // children that died before completing
	// FellBack reports whether any child's resume served the
	// previous-good backup instead of the head journal.
	FellBack bool
	// Vacuous is set when the seed's design has no MUT or no faults —
	// there is nothing to journal, so the invariant holds trivially.
	Vacuous bool

	Violations []Violation
}

// OK reports whether I6 held.
func (r *CrashReport) OK() bool { return len(r.Violations) == 0 }

func (r *CrashReport) violate(code, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Invariant: 6,
		Code:      code,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Line renders the report as one deterministic summary line.
func (r *CrashReport) Line() string {
	status := "ok"
	if !r.OK() {
		status = "FAIL"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d rounds=%d crashes=%d fellback=%v vacuous=%v status=%s",
		r.Seed, r.Rounds, r.Crashes, r.FellBack, r.Vacuous, status)
	for _, v := range r.Violations {
		fmt.Fprintf(&b, " [%s]", v)
	}
	return b.String()
}

// atpgLeg builds the ATPG leg of the conformance pipeline for a design
// text: the same top selection, MUT choice, extraction mode and ATPG
// options CheckSource derives from the seed, without the invariant
// checks. A nil netlist (with nil error) means the leg is vacuous for
// this seed — no instance to extract, or no faults to target.
func atpgLeg(text string, seed int64, opts Options) (*netlist.Netlist, []fault.Fault, atpg.Options, error) {
	opts = opts.withDefaults()
	var none atpg.Options

	src, err := verilog.Parse("conformance.v", text)
	if err != nil {
		return nil, nil, none, err
	}
	if len(src.Modules) == 0 {
		return nil, nil, none, errors.New("no modules")
	}
	top := "top"
	if src.Module(top) == nil {
		top = src.Modules[len(src.Modules)-1].Name
	}
	d, err := design.Analyze(src, top)
	if err != nil {
		return nil, nil, none, err
	}
	optRes, err := synth.Synthesize(src, top, synth.Options{})
	if err != nil {
		return nil, nil, none, err
	}

	var paths []string
	d.Root.Walk(func(n *design.InstanceNode) {
		if n.Path != "" {
			paths = append(paths, n.Path)
		}
	})
	if len(paths) == 0 {
		return nil, nil, none, nil
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, 0x4d5554))) // "MUT"
	mutPath := paths[rng.Intn(len(paths))]
	mode := core.ModeFlat
	if seed&1 == 1 {
		mode = core.ModeComposed
	}

	tr, err := core.Transform(core.NewExtractor(d, mode), mutPath, optRes.Netlist, core.TransformOptions{})
	if err != nil {
		return nil, nil, none, err
	}
	faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
	if len(faults) == 0 {
		faults = fault.Universe(tr.Netlist)
	}
	if len(faults) == 0 {
		return nil, nil, none, nil
	}

	aopts := atpg.Options{
		RandomSequences: opts.RandomSequences,
		RandomSeqLen:    opts.RandomSeqLen,
		BacktrackLimit:  opts.BacktrackLimit,
		Seed:            mixSeed(seed, 0x41545047), // "ATPG"
		CheckpointEvery: 2,
	}
	return tr.Netlist, faults, aopts, nil
}

// CrashChild is the body of the re-execed child: build the leg for
// $FACTOR_CRASH_SEED, resume from the journal at $FACTOR_CRASH_CKPT if
// one is loadable, activate $FACTOR_CRASH_FAILPOINTS, run to
// completion (or injected death) and write the canonical render to
// $FACTOR_CRASH_OUT. DefaultOptions only — the parent's CheckCrash
// uses the same.
func CrashChild() error {
	seed, err := strconv.ParseInt(os.Getenv(EnvCrashSeed), 10, 64)
	if err != nil {
		return fmt.Errorf("%s: %v", EnvCrashSeed, err)
	}
	workers, err := strconv.Atoi(os.Getenv(EnvCrashWorkers))
	if err != nil {
		return fmt.Errorf("%s: %v", EnvCrashWorkers, err)
	}
	ckptPath := os.Getenv(EnvCrashCkpt)
	outPath := os.Getenv(EnvCrashOut)
	if ckptPath == "" || outPath == "" {
		return fmt.Errorf("%s and %s are required", EnvCrashCkpt, EnvCrashOut)
	}

	opts := DefaultOptions()
	nl, faults, aopts, err := atpgLeg(designgen.Generate(seed, opts.Gen).Text(), seed, opts)
	if err != nil {
		return err
	}
	if nl == nil {
		return errors.New("vacuous leg in crash child; the parent should not have spawned one")
	}
	aopts.Workers = workers

	// Resume from whatever the previous round's death left behind —
	// LoadLatest is the recovery policy under test. A missing journal
	// pair means no flush survived yet; start from scratch.
	ck, fellBack, err := atpg.LoadLatest(ckptPath)
	switch {
	case err == nil:
		aopts.Resume = ck
	case errors.Is(err, os.ErrNotExist):
	default:
		return err
	}
	if fellBack {
		if logPath := os.Getenv(EnvCrashLog); logPath != "" {
			f, err := os.OpenFile(logPath, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
			if err != nil {
				return err
			}
			fmt.Fprintln(f, "fellback")
			f.Close()
		}
	}
	aopts.Checkpoint = atpg.NewJournal(ckptPath).Flush

	// Failpoints go live only now: the resume load itself must succeed
	// on whatever torn state the last kill produced.
	if _, err := cli.ActivateEnvFailpoints(); err != nil {
		return err
	}

	rr, err := atpg.New(nl, aopts).RunContext(context.Background(), faults)
	failpoint.Deactivate()
	if err != nil {
		return err
	}
	return os.WriteFile(outPath, []byte(renderRun(nl, rr)), 0o644)
}

// killSpec is the failpoint spec for one kill round. Search/merge
// sites see one draw per fault, so a low probability spreads kills
// across the run; checkpoint sites fire only once per flush and get a
// higher one. The round number reseeds the draw so successive rounds
// die at different places (a fixed seed would kill every resume at the
// same instruction forever).
func killSpec(site string, seed int64, round int) string {
	prob := "0.08"
	if strings.HasPrefix(site, "atpg.checkpoint.") {
		prob = "0.5"
	}
	return fmt.Sprintf("%s=kill:%s:%d", site, prob, mixSeed(seed, int64(0x4b494c4c+round))) // "KILL"+round
}

// CheckCrash hammers one seed: an in-process baseline run, then
// kill-and-resume child rounds via spawn (which must run CrashChild in
// a fresh process with the given environment and return a non-nil
// error if it did not exit cleanly), a failpoint-free final round if
// needed, and a deliberate head-journal corruption leg. dir holds the
// journal and render files. The kill site is pinned per seed so the
// corpus covers all of KillSites deterministically.
func CheckCrash(seed int64, dir string, spawn func(env map[string]string) error) *CrashReport {
	rep := &CrashReport{Seed: seed}
	opts := DefaultOptions()

	nl, faults, aopts, err := atpgLeg(designgen.Generate(seed, opts.Gen).Text(), seed, opts)
	if err != nil {
		rep.violate(CodeCrash, "pipeline front failed: %v", err)
		return rep
	}
	if nl == nil {
		rep.Vacuous = true
		return rep
	}

	// Baseline: uninterrupted single-worker run. Checkpointing is
	// enabled (no-op sink) so the journaled-tests counter matches the
	// children's journaled runs.
	baseOpts := aopts
	baseOpts.Workers = 1
	baseOpts.Checkpoint = func(*atpg.Checkpoint) error { return nil }
	base, err := atpg.New(nl, baseOpts).RunContext(context.Background(), faults)
	if err != nil {
		rep.violate(CodeCrash, "baseline run failed: %v", err)
		return rep
	}
	baseRender := renderRun(nl, base)

	ckptPath := filepath.Join(dir, "crash.ckpt")
	outPath := filepath.Join(dir, "render.txt")
	logPath := filepath.Join(dir, "child.log")
	env := map[string]string{
		EnvCrashChild:   "1",
		EnvCrashSeed:    strconv.FormatInt(seed, 10),
		EnvCrashCkpt:    ckptPath,
		EnvCrashOut:     outPath,
		EnvCrashLog:     logPath,
		EnvCrashWorkers: "1",
	}
	site := KillSites[int(uint64(seed)%uint64(len(KillSites)))]

	completed := false
	for round := 1; round <= maxKillRounds && !completed; round++ {
		env[cli.EnvFailpoints] = killSpec(site, seed, round)
		env[EnvCrashWorkers] = strconv.Itoa(1 + round%3)
		rep.Rounds++
		if err := spawn(env); err != nil {
			rep.Crashes++
		} else {
			completed = true
		}
	}
	if !completed {
		// Every kill round died (kills can land before the first
		// flush). One clean round finishes from the best surviving
		// journal state; an error here is a real recovery failure.
		env[cli.EnvFailpoints] = ""
		env[EnvCrashWorkers] = "2"
		rep.Rounds++
		if err := spawn(env); err != nil {
			rep.violate(CodeCrash, "failpoint-free resume round failed at site %s: %v", site, err)
			return rep
		}
	}

	render, err := os.ReadFile(outPath)
	if err != nil {
		rep.violate(CodeCrash, "completed child wrote no render: %v", err)
		return rep
	}
	if string(render) != baseRender {
		rep.violate(CodeCrash, "crash-resumed result differs from uninterrupted run (site %s, %d crashes):\n%s",
			site, rep.Crashes, firstDiff(baseRender, string(render)))
	}
	if log, err := os.ReadFile(logPath); err == nil && strings.Contains(string(log), "fellback") {
		rep.FellBack = true
	}

	rep.corruptionLeg(nl, faults, aopts, ckptPath, baseRender)
	return rep
}

// corruptionLeg truncates the head journal mid-frame and asserts the
// recovery contract: the head classifies as checkpoint-corrupt,
// LoadLatest serves the previous-good backup, and a run resumed from
// it still finishes bit-identical.
func (rep *CrashReport) corruptionLeg(nl *netlist.Netlist, faults []fault.Fault, aopts atpg.Options, ckptPath, baseRender string) {
	data, err := os.ReadFile(ckptPath)
	if err != nil || len(data) < 3 {
		return // no surviving head journal to corrupt
	}
	if _, err := os.Stat(ckptPath + atpg.BackupSuffix); err != nil {
		return // single flush: no previous generation to fall back to
	}
	if err := os.WriteFile(ckptPath, data[:len(data)*2/3], 0o644); err != nil {
		rep.violate(CodeCrash, "corrupting head journal: %v", err)
		return
	}
	if _, err := atpg.LoadCheckpoint(ckptPath); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeCheckpointCorrupt}) {
		rep.violate(CodeCrash, "truncated head classified %v, want checkpoint-corrupt", err)
	}
	ck, fellBack, err := atpg.LoadLatest(ckptPath)
	if err != nil {
		rep.violate(CodeCrash, "corrupted-head recovery failed: %v", err)
		return
	}
	if !fellBack {
		rep.violate(CodeCrash, "corrupted head did not fall back to the backup journal")
	}
	ropts := aopts
	ropts.Workers = 3
	ropts.Resume = ck
	ropts.Checkpoint = func(*atpg.Checkpoint) error { return nil }
	rr, err := atpg.New(nl, ropts).RunContext(context.Background(), faults)
	if err != nil {
		rep.violate(CodeCrash, "resume from backup generation %d failed: %v", ck.Generation, err)
		return
	}
	if got := renderRun(nl, rr); got != baseRender {
		rep.violate(CodeCrash, "resume from backup generation %d differs from uninterrupted run:\n%s",
			ck.Generation, firstDiff(baseRender, got))
	}
}
