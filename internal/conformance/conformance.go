// Package conformance is the metamorphic conformance harness for the
// FACTOR pipeline: it feeds randomly generated hierarchical designs
// (internal/designgen) through the full flow — parse, hierarchy
// analysis, synthesis, constraint extraction, ATPG, fault simulation —
// and asserts cross-layer invariants that must hold for ANY design:
//
//	I1 (synthesis soundness):   the optimized netlist agrees with the
//	    unoptimized netlist under random binary co-simulation.
//	I2 (extraction soundness):  the transformed module (extracted S' +
//	    MUT) agrees with the full design on every pin it exposes under
//	    shared stimulus, cycle by cycle including X.
//	I3 (pattern validity):      every fault ATPG reports detected is
//	    re-detected by replaying the exported test suite on both the
//	    packed-parallel and the event-driven fault-simulation engines,
//	    and the two engines agree fault by fault.
//	I4 (determinism):           ATPG results are bit-identical across
//	    worker counts and across checkpoint/resume.
//	I5 (guided soundness):      the SCOAP metrics over the compiled
//	    netlist are deterministic, and — whenever neither run aborts
//	    any search — SCOAP-guided ATPG classifies every fault exactly
//	    like the default guide (the guide reorders the complete
//	    search, it must not change its outcome).
//
// Invariant 0 is the pipeline front end itself: every generated design
// must parse, analyze and synthesize. A failing seed is minimized by
// the text-level shrinker in shrink.go.
package conformance

import (
	"fmt"
	"hash/fnv"
	"math/bits"
	"math/rand"
	"reflect"
	"strings"

	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/designgen"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/synth"
	"factor/internal/testability"
	"factor/internal/verilog"
)

// Options bounds the per-design work. The defaults keep a full check
// under ~50ms for corpus-scale designs.
type Options struct {
	// Gen shapes the generated designs.
	Gen designgen.Config
	// CosimCycles is the number of clocked cycles for the I1/I2
	// co-simulations; each cycle compares 64 packed random patterns.
	CosimCycles int
	// ATPG budgets (small: the harness cares about agreement, not
	// coverage).
	RandomSequences int
	RandomSeqLen    int
	BacktrackLimit  int
}

// DefaultOptions is the corpus configuration.
func DefaultOptions() Options {
	return Options{
		Gen:             designgen.DefaultConfig(),
		CosimCycles:     16,
		RandomSequences: 16,
		RandomSeqLen:    8,
		BacktrackLimit:  128,
	}
}

func (o Options) withDefaults() Options {
	if o.CosimCycles <= 0 {
		o.CosimCycles = 16
	}
	if o.RandomSequences <= 0 {
		o.RandomSequences = 16
	}
	if o.RandomSeqLen <= 0 {
		o.RandomSeqLen = 8
	}
	if o.BacktrackLimit <= 0 {
		o.BacktrackLimit = 128
	}
	return o
}

// Violation codes group failures of the same kind so the shrinker can
// require a candidate to fail the same way as the original.
const (
	CodeParse     = "parse"
	CodeAnalyze   = "analyze"
	CodeSynth     = "synth"
	CodeValidate  = "validate"
	CodeCosim     = "cosim"
	CodeTransform = "transform"
	CodeReplay    = "replay"
	CodeEngines   = "engines"
	CodeWorkers   = "workers"
	CodeResume    = "resume"
	CodeScoap     = "scoap"
	CodeGuide     = "guide"
)

// Violation is one invariant failure.
type Violation struct {
	// Invariant is 0 for pipeline-front failures, 1-4 for the
	// conformance invariants.
	Invariant int
	// Code classifies the failure (CodeParse, CodeCosim, ...).
	Code string
	// Detail is a human-readable description.
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("I%d/%s: %s", v.Invariant, v.Code, v.Detail)
}

// Report is the outcome of checking one design.
type Report struct {
	Seed    int64
	Top     string
	Gates   int
	DFFs    int
	MUTPath string
	Mode    string
	Faults  int
	// Detected and Tests summarize the baseline ATPG run.
	Detected int
	Tests    int

	Violations []Violation
}

// OK reports whether every invariant held.
func (r *Report) OK() bool { return len(r.Violations) == 0 }

// Fails reports whether the report contains a violation of the given
// invariant and code.
func (r *Report) Fails(invariant int, code string) bool {
	for _, v := range r.Violations {
		if v.Invariant == invariant && v.Code == code {
			return true
		}
	}
	return false
}

// Line renders the report as one deterministic summary line (no
// timing, no map iteration): the corpus report is the concatenation of
// these lines, so same seed => byte-identical report.
func (r *Report) Line() string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d top=%s gates=%d dffs=%d mut=%s mode=%s faults=%d detected=%d tests=%d",
		r.Seed, r.Top, r.Gates, r.DFFs, r.MUTPath, r.Mode, r.Faults, r.Detected, r.Tests)
	if r.OK() {
		b.WriteString(" status=ok")
	} else {
		b.WriteString(" status=FAIL")
		for _, v := range r.Violations {
			fmt.Fprintf(&b, " [%s]", v)
		}
	}
	return b.String()
}

func (r *Report) violate(invariant int, code, format string, args ...interface{}) {
	r.Violations = append(r.Violations, Violation{
		Invariant: invariant,
		Code:      code,
		Detail:    fmt.Sprintf(format, args...),
	})
}

// Check generates the design for seed and verifies every invariant.
func Check(seed int64, opts Options) *Report {
	g := designgen.Generate(seed, opts.Gen)
	return CheckSource(g.Text(), seed, opts)
}

// CheckSource verifies the invariants on explicit Verilog source (used
// by Check, by the shrinker, and by reproducer regression tests). The
// seed drives everything downstream of the text: stimulus, MUT choice,
// extraction mode, ATPG seeds. The top module is the one named "top",
// or the last module in the file.
func CheckSource(text string, seed int64, opts Options) *Report {
	opts = opts.withDefaults()
	rep := &Report{Seed: seed}

	src, err := verilog.Parse("conformance.v", text)
	if err != nil {
		rep.violate(0, CodeParse, "%v", err)
		return rep
	}
	if len(src.Modules) == 0 {
		rep.violate(0, CodeParse, "no modules")
		return rep
	}
	top := "top"
	if src.Module(top) == nil {
		top = src.Modules[len(src.Modules)-1].Name
	}
	rep.Top = top

	d, err := design.Analyze(src, top)
	if err != nil {
		rep.violate(0, CodeAnalyze, "%v", err)
		return rep
	}
	optRes, err := synth.Synthesize(src, top, synth.Options{})
	if err != nil {
		rep.violate(0, CodeSynth, "optimized: %v", err)
		return rep
	}
	refRes, err := synth.Synthesize(src, top, synth.Options{NoOptimize: true})
	if err != nil {
		rep.violate(0, CodeSynth, "unoptimized: %v", err)
		return rep
	}
	for _, nl := range []*netlist.Netlist{optRes.Netlist, refRes.Netlist} {
		if err := nl.Validate(); err != nil {
			rep.violate(0, CodeValidate, "%v", err)
			return rep
		}
	}
	rep.Gates = optRes.Netlist.NumGates()
	rep.DFFs = len(optRes.Netlist.DFFs)

	// I1: optimized vs unoptimized synthesis under binary stimulus.
	// The optimizer's rewrites are deliberately X-unsound (AND(x,~x)=0
	// and friends — see synth/opt.go), so the equivalence claim is over
	// binary values: flops reset to 0, inputs fully specified.
	if msg := cosimNetlists(optRes.Netlist, refRes.Netlist, opts.CosimCycles, seed, true); msg != "" {
		rep.violate(1, CodeCosim, "optimized vs unoptimized: %s", msg)
	}

	// Choose the MUT and extraction mode from the seed.
	var paths []string
	d.Root.Walk(func(n *design.InstanceNode) {
		if n.Path != "" {
			paths = append(paths, n.Path)
		}
	})
	if len(paths) == 0 {
		// Nothing to extract; the remaining invariants are vacuous.
		return rep
	}
	rng := rand.New(rand.NewSource(mixSeed(seed, 0x4d5554))) // "MUT"
	mutPath := paths[rng.Intn(len(paths))]
	mode := core.ModeFlat
	if seed&1 == 1 {
		mode = core.ModeComposed
	}
	rep.MUTPath, rep.Mode = mutPath, mode.String()

	ext := core.NewExtractor(d, mode)
	tr, err := core.Transform(ext, mutPath, optRes.Netlist, core.TransformOptions{})
	if err != nil {
		rep.violate(2, CodeTransform, "mut %s: %v", mutPath, err)
		return rep
	}
	if err := tr.Netlist.Validate(); err != nil {
		rep.violate(2, CodeValidate, "transformed netlist: %v", err)
		return rep
	}

	// I2: the transformed module vs the full design on the pins the
	// transformed module exposes, X power-up included — the extracted
	// environment must reproduce the chip-level behavior exactly.
	if msg := cosimTransformed(optRes.Netlist, tr.Netlist, opts.CosimCycles, seed); msg != "" {
		rep.violate(2, CodeCosim, "mut %s mode %s: %s", mutPath, mode, msg)
	}

	// I3 + I4 need an ATPG run over the MUT's faults.
	faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
	if len(faults) == 0 {
		faults = fault.Universe(tr.Netlist)
	}
	if len(faults) == 0 {
		return rep
	}
	rep.Faults = len(faults)

	aopts := atpg.Options{
		RandomSequences: opts.RandomSequences,
		RandomSeqLen:    opts.RandomSeqLen,
		BacktrackLimit:  opts.BacktrackLimit,
		Seed:            mixSeed(seed, 0x41545047), // "ATPG"
		Workers:         1,
		CheckpointEvery: 2,
	}

	// Baseline single-worker run; capture the first checkpoint the
	// journal emits so the resume leg can restart from mid-run state.
	var snap *atpg.Checkpoint
	baseOpts := aopts
	baseOpts.Checkpoint = func(ck *atpg.Checkpoint) error {
		if snap == nil {
			snap = ck
		}
		return nil
	}
	base := atpg.New(tr.Netlist, baseOpts).Run(faults)
	rep.Detected = base.Result.NumDetected()
	rep.Tests = len(base.Tests)

	// I3: replay the exported suite on both engines from scratch.
	replayP := fault.NewResult(faults)
	replayE := fault.NewResult(faults)
	ps := fault.NewParallel(tr.Netlist)
	es := fault.NewEvent(tr.Netlist)
	for _, seq := range base.Tests {
		ps.RunSequence(replayP, seq)
		es.RunSequence(replayE, seq)
	}
	for i := range faults {
		if replayP.Detected[i] != replayE.Detected[i] {
			rep.violate(3, CodeEngines, "fault %v: packed=%v event=%v on exported suite",
				faults[i], replayP.Detected[i], replayE.Detected[i])
			break
		}
	}
	for i := range faults {
		if base.Result.Detected[i] && !replayP.Detected[i] {
			rep.violate(3, CodeReplay, "fault %v: ATPG reports detected but the exported suite does not re-detect it", faults[i])
			break
		}
	}

	// I4a: multi-worker run must be bit-identical to the baseline —
	// including the telemetry work counters (stats line in renderRun).
	// The legs get a no-op checkpoint callback so checkpointing is
	// enabled on all of them and JournaledTests is comparable.
	baseRender := renderRun(tr.Netlist, base)
	multiOpts := aopts
	multiOpts.Workers = 3
	multiOpts.Checkpoint = func(*atpg.Checkpoint) error { return nil }
	multi := atpg.New(tr.Netlist, multiOpts).Run(faults)
	if mr := renderRun(tr.Netlist, multi); mr != baseRender {
		rep.violate(4, CodeWorkers, "workers=3 result differs from workers=1:\n%s", firstDiff(baseRender, mr))
	}

	// I4b: a run resumed from the captured checkpoint, with yet another
	// worker count, must finish bit-identical too — again including the
	// work counters, which the checkpoint journals and restores.
	if snap != nil {
		resOpts := aopts
		resOpts.Workers = 2
		resOpts.Resume = snap
		resOpts.Checkpoint = func(*atpg.Checkpoint) error { return nil }
		resumed, err := atpg.New(tr.Netlist, resOpts).RunContext(nil, faults)
		if err != nil {
			rep.violate(4, CodeResume, "resume failed: %v", err)
		} else if rr := renderRun(tr.Netlist, resumed); rr != baseRender {
			rep.violate(4, CodeResume, "resumed result differs from baseline:\n%s", firstDiff(baseRender, rr))
		}
	}

	// I5a: SCOAP metrics over the compiled netlist are a pure function
	// of the structure — two computations must agree exactly.
	compiled := tr.Netlist.Compile()
	m1 := testability.Compute(compiled)
	m2 := testability.Compute(compiled)
	if !reflect.DeepEqual(m1, m2) {
		rep.violate(5, CodeScoap, "SCOAP metrics differ between two computations on the same netlist")
	}

	// I5b: the SCOAP guide only reorders PODEM's complete search, so
	// when no search aborts under either guide the per-fault
	// classification must be identical (the generated sequences may
	// differ). Aborts void the premise — an incomplete search's outcome
	// legitimately depends on visit order — so the check is gated.
	guidedOpts := aopts
	guidedOpts.Guide = atpg.GuideSCOAP
	guided := atpg.New(tr.Netlist, guidedOpts).Run(faults)
	if base.AbortedNum == 0 && guided.AbortedNum == 0 {
		for i := range faults {
			if base.Result.Detected[i] != guided.Result.Detected[i] {
				rep.violate(5, CodeGuide, "fault %v: default detected=%v, scoap detected=%v with zero aborts",
					faults[i], base.Result.Detected[i], guided.Result.Detected[i])
				break
			}
		}
		if base.UntestableNum != guided.UntestableNum {
			rep.violate(5, CodeGuide, "untestable counts differ with zero aborts: default %d, scoap %d",
				base.UntestableNum, guided.UntestableNum)
		}
	}
	return rep
}

// mixSeed derives an independent stream seed (splitmix64 finalizer).
func mixSeed(seed, stream int64) int64 {
	z := uint64(seed) + uint64(stream)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	v := int64(z ^ (z >> 31))
	if v == 0 {
		v = 1 // atpg treats seed 0 as "use default"
	}
	return v
}

// stimulus derives the 64-lane packed value for (pin name, cycle):
// keying by name rather than netlist pin index guarantees two netlists
// receive identical stimulus on identically named pins regardless of
// pin order.
func stimulus(seed int64, cycle int, name string) sim.Word {
	h := fnv.New64a()
	h.Write([]byte(name))
	z := uint64(mixSeed(seed, int64(h.Sum64()))) + uint64(cycle)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return sim.Word{Ones: z ^ (z >> 31)}
}

// wordsDiffer compares two packed values canonically and returns the
// first differing lane, or -1.
func wordsDiffer(a, b sim.Word) int {
	diff := ((a.Ones &^ a.Xs) ^ (b.Ones &^ b.Xs)) | (a.Xs ^ b.Xs)
	if diff == 0 {
		return -1
	}
	return bits.TrailingZeros64(diff)
}

// cosimNetlists co-simulates two netlists with identical interfaces
// under shared random binary stimulus and compares every output word
// for cycles clock cycles. With zeroReset both start from all-zero flop
// state (the binary-domain contract the optimizer is sound over);
// otherwise both power up X. Returns "" on agreement or a description
// of the first mismatch.
func cosimNetlists(a, b *netlist.Netlist, cycles int, seed int64, zeroReset bool) string {
	if len(a.PONames) != len(b.PONames) {
		return fmt.Sprintf("output count differs: %d vs %d", len(a.PONames), len(b.PONames))
	}
	for _, name := range a.PONames {
		if b.PO(name) < 0 {
			return fmt.Sprintf("output %q missing from second netlist", name)
		}
	}
	sa, sb := sim.New(a), sim.New(b)
	if zeroReset {
		sa.ResetToZero()
		sb.ResetToZero()
	}
	for cycle := 0; cycle < cycles; cycle++ {
		for i, pi := range a.PIs {
			sa.SetInput(pi, stimulus(seed, cycle, a.PINames[i]))
		}
		for i, pi := range b.PIs {
			sb.SetInput(pi, stimulus(seed, cycle, b.PINames[i]))
		}
		sa.Eval()
		sb.Eval()
		for i, po := range a.POs {
			name := a.PONames[i]
			va, vb := sa.Value(po), sb.Value(b.PO(name))
			if lane := wordsDiffer(va, vb); lane >= 0 {
				return fmt.Sprintf("cycle %d output %s lane %d: %v vs %v",
					cycle, name, lane, va.Lane(lane), vb.Lane(lane))
			}
		}
		sa.Step()
		sb.Step()
	}
	return ""
}

// cosimTransformed drives the full design and the transformed module
// with identical stimulus on the shared pins and verifies every pin the
// transformed module exposes matches the full design cycle by cycle,
// X power-up included (the packed analogue of the flow's scalar
// co-simulation oracle).
func cosimTransformed(full, tr *netlist.Netlist, cycles int, seed int64) string {
	for _, name := range tr.PINames {
		if full.PI(name) < 0 {
			return fmt.Sprintf("transformed PI %q is not a chip pin", name)
		}
	}
	for _, name := range tr.PONames {
		if full.PO(name) < 0 {
			return fmt.Sprintf("transformed PO %q is not a chip pin", name)
		}
	}
	sFull, sTr := sim.New(full), sim.New(tr)
	for cycle := 0; cycle < cycles; cycle++ {
		for i, pi := range full.PIs {
			sFull.SetInput(pi, stimulus(seed, cycle, full.PINames[i]))
		}
		for i, pi := range tr.PIs {
			sTr.SetInput(pi, stimulus(seed, cycle, tr.PINames[i]))
		}
		sFull.Eval()
		sTr.Eval()
		for i, po := range tr.POs {
			name := tr.PONames[i]
			want, got := sFull.Value(full.PO(name)), sTr.Value(po)
			if lane := wordsDiffer(want, got); lane >= 0 {
				return fmt.Sprintf("cycle %d output %s lane %d: transformed %v, full design %v",
					cycle, name, lane, got.Lane(lane), want.Lane(lane))
			}
		}
		sFull.Step()
		sTr.Step()
	}
	return ""
}

// renderRun canonicalizes an ATPG result for bit-identity comparison:
// counts, the deterministic work counters, the detected bitmap, and
// every exported test rendered over the netlist's canonical PI order.
// Timing fields are excluded.
func renderRun(nl *netlist.Netlist, rr *atpg.RunResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "faults=%d detected=%d random=%d det=%d untestable=%d aborted=%d notattempted=%d quarantined=%d tests=%d\n",
		rr.TotalFaults, rr.Result.NumDetected(), rr.DetectedRandom, rr.DetectedDet,
		rr.UntestableNum, rr.AbortedNum, rr.NotAttempted, rr.QuarantinedNum, len(rr.Tests))
	s := rr.Stats
	fmt.Fprintf(&b, "stats searches=%d decisions=%d backtracks=%d randomseqs=%d journaled=%d sim.batches=%d sim.cycles=%d sim.events=%d sim.heals=%d sim.tracecycles=%d\n",
		s.Searches, s.Decisions, s.Backtracks, s.RandomSequences, s.JournaledTests,
		s.Sim.Batches, s.Sim.Cycles, s.Sim.Events, s.Sim.FlopHeals, s.Sim.TraceCycles)
	b.WriteString("detected=")
	for _, det := range rr.Result.Detected {
		if det {
			b.WriteByte('1')
		} else {
			b.WriteByte('0')
		}
	}
	b.WriteByte('\n')
	for ti, seq := range rr.Tests {
		fmt.Fprintf(&b, "test %d:", ti)
		for _, vec := range seq {
			b.WriteByte(' ')
			for _, name := range nl.PINames {
				if v, ok := vec[name]; ok {
					b.WriteString(v.String())
				} else {
					b.WriteByte('-')
				}
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// firstDiff returns the first line where two renders diverge.
func firstDiff(a, b string) string {
	la, lb := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(la) && i < len(lb); i++ {
		if la[i] != lb[i] {
			return fmt.Sprintf("line %d: %q vs %q", i+1, la[i], lb[i])
		}
	}
	return fmt.Sprintf("length %d vs %d lines", len(la), len(lb))
}
