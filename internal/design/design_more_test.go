package design

import (
	"testing"

	"factor/internal/verilog"
)

func TestRefKindStrings(t *testing.T) {
	kinds := []RefKind{
		DefAssign, DefProc, DefInstOut, DefGateOut, DefPortIn,
		UseAssignRHS, UseProcRHS, UseCond, UseInstIn, UseGateIn, UsePortOut,
	}
	for _, k := range kinds {
		if k.String() == "" {
			t.Errorf("RefKind %d has no name", k)
		}
	}
	for _, k := range kinds[:5] {
		if !k.IsDef() {
			t.Errorf("%v should be a def", k)
		}
	}
	for _, k := range kinds[5:] {
		if k.IsDef() {
			t.Errorf("%v should be a use", k)
		}
	}
}

func TestIsParam(t *testing.T) {
	d := analyze(t, `
module p #(parameter W = 4)(input [W-1:0] a, output [W-1:0] y);
  localparam HALF = W / 2;
  assign y = a + HALF;
endmodule`, "p")
	mi := d.Module("p")
	if !mi.IsParam("W") || !mi.IsParam("HALF") {
		t.Error("parameters not recognized")
	}
	if mi.IsParam("a") || mi.IsParam("nothing") {
		t.Error("non-parameters misclassified")
	}
}

func TestNormalizeConnsErrors(t *testing.T) {
	sf, err := verilog.Parse("t.v", `
module top(input a, output y);
  sub u1 (a, y, a);
  sub u2 (.ghost(a));
endmodule
module sub(input p, output q);
  assign q = p;
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	sub := sf.Module("sub")
	top := sf.Module("top")
	insts := top.Instances()
	if _, err := NormalizeConns(sub, insts[0]); err == nil {
		t.Error("too many positional connections accepted")
	}
	if _, err := NormalizeConns(sub, insts[1]); err == nil {
		t.Error("unknown named port accepted")
	}
}

func TestWidthOfVariants(t *testing.T) {
	d := analyze(t, `
module w #(parameter P = 4)(
  input scalar,
  input [7:0] byte_sig,
  input [P-1:0] parameterized,
  output y);
  assign y = scalar;
endmodule`, "w")
	mi := d.Module("w")
	if got := mi.Signal("scalar").DeclWidth; got != 1 {
		t.Errorf("scalar width %d", got)
	}
	if got := mi.Signal("byte_sig").DeclWidth; got != 8 {
		t.Errorf("byte width %d", got)
	}
	// Parameterized widths are unknown at analysis time (0).
	if got := mi.Signal("parameterized").DeclWidth; got != 0 {
		t.Errorf("parameterized width %d, want 0 (unknown)", got)
	}
}

func TestInoutRejected(t *testing.T) {
	sf, _ := verilog.Parse("t.v", "module io(inout x); endmodule")
	if _, err := Analyze(sf, "io"); err == nil {
		t.Error("inout accepted")
	}
}

func TestForLoopRefsInsideAlways(t *testing.T) {
	d := analyze(t, `
module f(input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 4; i = i + 1)
      y[i] = a[3 - i];
  end
endmodule`, "f")
	mi := d.Module("f")
	// The loop variable is both defined (init/step) and used (cond,
	// index) within the process.
	if len(mi.Signal("i").Defs) < 2 {
		t.Errorf("loop var defs: %d, want init and step", len(mi.Signal("i").Defs))
	}
	if len(mi.Signal("i").Uses) == 0 {
		t.Error("loop var never used?")
	}
	// y is assigned under the for, so the def carries the loop among
	// its enclosing statements.
	found := false
	for _, def := range mi.Signal("y").Defs {
		for _, enc := range def.Enclosing {
			if _, ok := enc.(*verilog.ForStmt); ok {
				found = true
			}
		}
	}
	if !found {
		t.Error("for statement missing from enclosing chain")
	}
}

func TestWhileRefs(t *testing.T) {
	d := analyze(t, `
module wl(input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    y = 4'd0;
    i = 0;
    while (i < 2) begin
      y = y + a;
      i = i + 1;
    end
  end
endmodule`, "wl")
	mi := d.Module("wl")
	hasCondUse := false
	for _, u := range mi.Signal("i").Uses {
		if u.Kind == UseCond {
			hasCondUse = true
		}
	}
	if !hasCondUse {
		t.Error("while condition not recorded as cond-use")
	}
}

func TestInstancesOfMultiple(t *testing.T) {
	d := analyze(t, `
module top(input a, output y);
  wire m;
  leaf u1 (.p(a), .q(m));
  leaf u2 (.p(m), .q(y));
endmodule
module leaf(input p, output q);
  assign q = ~p;
endmodule`, "top")
	nodes := d.InstancesOf("leaf")
	if len(nodes) != 2 {
		t.Fatalf("found %d instances, want 2", len(nodes))
	}
	if nodes[0].Path == nodes[1].Path {
		t.Error("instances share a path")
	}
}
