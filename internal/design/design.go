// Package design builds the analysis data structure of the FACTOR
// methodology (paper Fig. 2): for every module, per-signal def-use and
// use-def chains with their enclosing conditional/loop/concurrency
// constructs, plus the elaborated instance tree of the design
// hierarchy. The constraint extractor (internal/core) traverses these
// chains to implement find_source_logic and find_prop_paths.
package design

import (
	"fmt"
	"sort"
	"sync"

	"factor/internal/verilog"
)

// RefKind classifies one occurrence of a signal.
type RefKind int

// Reference kinds.
const (
	// DefAssign: signal driven by a continuous assign.
	DefAssign RefKind = iota
	// DefProc: signal assigned in an always block.
	DefProc
	// DefInstOut: signal driven by an instance output port.
	DefInstOut
	// DefGateOut: signal driven by a gate primitive output.
	DefGateOut
	// DefPortIn: signal is an input port of the module (defined by the
	// environment).
	DefPortIn
	// UseAssignRHS: signal read on the RHS of a continuous assign.
	UseAssignRHS
	// UseProcRHS: signal read inside an always block (RHS or index).
	UseProcRHS
	// UseCond: signal read in a governing condition (if/case/loop) of
	// an always block.
	UseCond
	// UseInstIn: signal feeds an instance input port.
	UseInstIn
	// UseGateIn: signal feeds a gate primitive input.
	UseGateIn
	// UsePortOut: signal is an output port of the module (used by the
	// environment).
	UsePortOut
)

var refKindNames = map[RefKind]string{
	DefAssign: "assign-def", DefProc: "proc-def", DefInstOut: "inst-out",
	DefGateOut: "gate-out", DefPortIn: "port-in",
	UseAssignRHS: "assign-use", UseProcRHS: "proc-use", UseCond: "cond-use",
	UseInstIn: "inst-in", UseGateIn: "gate-in", UsePortOut: "port-out",
}

func (k RefKind) String() string { return refKindNames[k] }

// IsDef reports whether the reference defines (drives) the signal.
func (k RefKind) IsDef() bool { return k <= DefPortIn }

// Ref is one occurrence of a signal in a module body: an element of a
// def-use or use-def chain.
type Ref struct {
	Kind RefKind
	// Item is the containing module item (assign, always, instance,
	// gate). Nil for port refs.
	Item verilog.Item
	// Stmt is the exact procedural statement for DefProc/UseProcRHS/
	// UseCond references.
	Stmt verilog.Stmt
	// Enclosing lists the control statements (innermost last) that
	// govern Stmt inside its always block.
	Enclosing []verilog.Stmt
	// CondSignals are the signals appearing in all governing
	// conditions of Stmt (the "enc_driving_signals" of the paper).
	CondSignals []string
	// Instance/Port identify the connection for inst-in/inst-out refs.
	Instance *verilog.Instance
	Port     string
}

// SignalInfo aggregates all references to a named signal in one module.
type SignalInfo struct {
	Name string
	// Defs is the use-def chain: where the signal gets its value.
	Defs []*Ref
	// Uses is the def-use chain: where the signal's value is consumed.
	Uses []*Ref
	// DeclWidth is the declared width (1 for scalars, 0 if undeclared).
	DeclWidth int
	IsPort    bool
	Dir       verilog.PortDir
}

// ModuleInfo is the analyzed form of one module.
type ModuleInfo struct {
	Mod     *verilog.Module
	Signals map[string]*SignalInfo
	// Functions by name (inlined by the extractor when slicing).
	Functions map[string]*verilog.FunctionDecl
	// Params holds parameter and localparam names: identifiers that
	// look like signal reads but are compile-time constants.
	Params map[string]bool

	// mu guards Signals: Signal lazily inserts a record for unknown
	// names, and concurrent extractions over the same design share
	// ModuleInfo instances.
	mu sync.Mutex
}

// IsParam reports whether name is a parameter of the module.
func (mi *ModuleInfo) IsParam(name string) bool { return mi.Params[name] }

// Signal returns the signal info, creating an empty record for unknown
// names (which then shows an empty def chain — a testability flag).
// Safe for concurrent use; the returned record's chains are read-only
// after Analyze.
func (mi *ModuleInfo) Signal(name string) *SignalInfo {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	if s, ok := mi.Signals[name]; ok {
		return s
	}
	s := &SignalInfo{Name: name}
	mi.Signals[name] = s
	return s
}

// SignalNames returns all signal names sorted (deterministic reports).
func (mi *ModuleInfo) SignalNames() []string {
	mi.mu.Lock()
	defer mi.mu.Unlock()
	names := make([]string, 0, len(mi.Signals))
	for n := range mi.Signals {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// InstanceNode is one node of the elaborated hierarchy tree.
type InstanceNode struct {
	// Path is the hierarchical instance path ("" for the root; child
	// paths are dot-joined: "u_core.u_dp.u_alu").
	Path string
	// InstName is the local instance name ("" for root).
	InstName string
	Module   string
	Inst     *verilog.Instance // nil for root
	Parent   *InstanceNode
	Children []*InstanceNode
	// Level is the hierarchy depth: 0 for the top module.
	Level int
}

// Find locates a descendant (or self) by hierarchical path.
func (n *InstanceNode) Find(path string) *InstanceNode {
	if n.Path == path {
		return n
	}
	for _, c := range n.Children {
		if got := c.Find(path); got != nil {
			return got
		}
	}
	return nil
}

// Walk visits the subtree in preorder.
func (n *InstanceNode) Walk(visit func(*InstanceNode)) {
	visit(n)
	for _, c := range n.Children {
		c.Walk(visit)
	}
}

// Design is the full analyzed design.
type Design struct {
	Source  *verilog.SourceFile
	Top     string
	Modules map[string]*ModuleInfo
	Root    *InstanceNode
}

// Module returns the analysis for a module name, or nil.
func (d *Design) Module(name string) *ModuleInfo { return d.Modules[name] }

// InstancesOf returns the hierarchy nodes instantiating the named
// module, in preorder.
func (d *Design) InstancesOf(module string) []*InstanceNode {
	var out []*InstanceNode
	d.Root.Walk(func(n *InstanceNode) {
		if n.Module == module {
			out = append(out, n)
		}
	})
	return out
}

// Analyze parses def-use/use-def chains for every module reachable from
// top and builds the instance tree.
func Analyze(src *verilog.SourceFile, top string) (*Design, error) {
	if src.Module(top) == nil {
		return nil, fmt.Errorf("design: top module %q not found", top)
	}
	d := &Design{Source: src, Top: top, Modules: map[string]*ModuleInfo{}}
	// Analyze every module (not only reachable ones: the extractor may
	// be pointed at any module as MUT).
	for _, m := range src.Modules {
		mi, err := analyzeModule(m)
		if err != nil {
			return nil, err
		}
		d.Modules[m.Name] = mi
	}
	if err := d.resolveInstanceConns(); err != nil {
		return nil, err
	}
	root, err := buildTree(src, top, nil, "", "", 0, map[string]int{})
	if err != nil {
		return nil, err
	}
	d.Root = root
	return d, nil
}

func buildTree(src *verilog.SourceFile, module string, parent *InstanceNode, path, instName string, level int, depth map[string]int) (*InstanceNode, error) {
	if depth[module] > 0 {
		return nil, fmt.Errorf("design: recursive instantiation of module %s", module)
	}
	depth[module]++
	defer func() { depth[module]-- }()

	n := &InstanceNode{Path: path, InstName: instName, Module: module, Parent: parent, Level: level}
	mod := src.Module(module)
	if mod == nil {
		return nil, fmt.Errorf("design: instance %s of unknown module %s", path, module)
	}
	for _, inst := range mod.Instances() {
		childPath := inst.Name
		if path != "" {
			childPath = path + "." + inst.Name
		}
		child, err := buildTree(src, inst.ModuleName, n, childPath, inst.Name, level+1, depth)
		if err != nil {
			return nil, err
		}
		child.Inst = inst
		n.Children = append(n.Children, child)
	}
	return n, nil
}

// analyzeModule builds the per-signal chains of one module.
func analyzeModule(m *verilog.Module) (*ModuleInfo, error) {
	mi := &ModuleInfo{
		Mod:       m,
		Signals:   map[string]*SignalInfo{},
		Functions: map[string]*verilog.FunctionDecl{},
		Params:    map[string]bool{},
	}
	for _, item := range m.Items {
		if pd, ok := item.(*verilog.ParamDecl); ok {
			for _, name := range pd.Names {
				mi.Params[name] = true
			}
		}
	}
	// Declarations first so widths and port directions are known.
	for _, p := range m.Ports {
		si := mi.Signal(p.Name)
		si.IsPort = true
		si.Dir = p.Dir
		si.DeclWidth = widthOf(p.Width)
		switch p.Dir {
		case verilog.PortInput:
			si.Defs = append(si.Defs, &Ref{Kind: DefPortIn})
		case verilog.PortOutput:
			si.Uses = append(si.Uses, &Ref{Kind: UsePortOut})
		case verilog.PortInout:
			return nil, fmt.Errorf("design: %s: inout port %s.%s not supported", p.Pos, m.Name, p.Name)
		}
	}
	for _, item := range m.Items {
		if nd, ok := item.(*verilog.NetDecl); ok {
			for _, name := range nd.Names {
				si := mi.Signal(name)
				if si.DeclWidth == 0 {
					si.DeclWidth = widthOf(nd.Width)
				}
			}
		}
	}
	for _, item := range m.Items {
		switch it := item.(type) {
		case *verilog.AssignItem:
			for _, name := range lvalueSignals(it.LHS) {
				mi.Signal(name).Defs = append(mi.Signal(name).Defs, &Ref{Kind: DefAssign, Item: it})
			}
			for _, name := range exprSignalsWithIndexOf(it.LHS) {
				// Index expressions on the LHS are uses.
				mi.Signal(name).Uses = append(mi.Signal(name).Uses, &Ref{Kind: UseAssignRHS, Item: it})
			}
			for _, name := range ExprSignals(it.RHS) {
				mi.Signal(name).Uses = append(mi.Signal(name).Uses, &Ref{Kind: UseAssignRHS, Item: it})
			}
		case *verilog.AlwaysBlock:
			walkProc(mi, it, it.Body, nil, nil)
		case *verilog.Instance:
			// Port-connection refs need the child module's port
			// directions; resolveInstanceConns records them once all
			// modules are analyzed.
		case *verilog.GateInst:
			for i, arg := range it.Args {
				isOut := i == 0
				if it.Kind == "buf" || it.Kind == "not" {
					isOut = i < len(it.Args)-1
				}
				if isOut {
					for _, name := range lvalueSignals(arg) {
						mi.Signal(name).Defs = append(mi.Signal(name).Defs, &Ref{Kind: DefGateOut, Item: it})
					}
				} else {
					for _, name := range ExprSignals(arg) {
						mi.Signal(name).Uses = append(mi.Signal(name).Uses, &Ref{Kind: UseGateIn, Item: it})
					}
				}
			}
		case *verilog.FunctionDecl:
			mi.Functions[it.Name] = it
		}
	}
	return mi, nil
}

// ResolveInstanceConns records instance port connections into the
// parent module's chains; it needs the child module definitions, so the
// Design calls it after all modules are known.
func (d *Design) resolveInstanceConns() error {
	for _, mi := range d.Modules {
		for _, inst := range mi.Mod.Instances() {
			child := d.Source.Module(inst.ModuleName)
			if child == nil {
				return fmt.Errorf("design: %s: instance %s of unknown module %s", inst.Pos, inst.Name, inst.ModuleName)
			}
			conns, err := NormalizeConns(child, inst)
			if err != nil {
				return err
			}
			for port, expr := range conns {
				if expr == nil {
					continue
				}
				p := child.Port(port)
				switch p.Dir {
				case verilog.PortInput:
					for _, name := range ExprSignals(expr) {
						mi.Signal(name).Uses = append(mi.Signal(name).Uses,
							&Ref{Kind: UseInstIn, Item: inst, Instance: inst, Port: port})
					}
				case verilog.PortOutput:
					for _, name := range lvalueSignals(expr) {
						mi.Signal(name).Defs = append(mi.Signal(name).Defs,
							&Ref{Kind: DefInstOut, Item: inst, Instance: inst, Port: port})
					}
				}
			}
		}
	}
	return nil
}

// NormalizeConns maps a (possibly positional) connection list to
// port-name keyed expressions.
func NormalizeConns(child *verilog.Module, inst *verilog.Instance) (map[string]verilog.Expr, error) {
	out := map[string]verilog.Expr{}
	positional := false
	for _, c := range inst.Conns {
		if c.Port == "" {
			positional = true
			break
		}
	}
	if positional {
		if len(inst.Conns) > len(child.Ports) {
			return nil, fmt.Errorf("design: %s: too many connections on instance %s", inst.Pos, inst.Name)
		}
		for i, c := range inst.Conns {
			out[child.Ports[i].Name] = c.Expr
		}
		return out, nil
	}
	for _, c := range inst.Conns {
		if child.Port(c.Port) == nil {
			return nil, fmt.Errorf("design: %s: module %s has no port %s", inst.Pos, child.Name, c.Port)
		}
		out[c.Port] = c.Expr
	}
	return out, nil
}

// walkProc records procedural defs/uses with their enclosing control
// statements and condition signal sets.
func walkProc(mi *ModuleInfo, blk *verilog.AlwaysBlock, s verilog.Stmt, enclosing []verilog.Stmt, condSignals []string) {
	switch v := s.(type) {
	case *verilog.Block:
		for _, st := range v.Stmts {
			walkProc(mi, blk, st, enclosing, condSignals)
		}
	case *verilog.IfStmt:
		conds := ExprSignals(v.Cond)
		for _, name := range conds {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseCond, Item: blk, Stmt: v, Enclosing: append([]verilog.Stmt(nil), enclosing...)})
		}
		inner := append(append([]verilog.Stmt(nil), enclosing...), v)
		innerConds := append(append([]string(nil), condSignals...), conds...)
		walkProc(mi, blk, v.Then, inner, innerConds)
		if v.Else != nil {
			walkProc(mi, blk, v.Else, inner, innerConds)
		}
	case *verilog.CaseStmt:
		conds := ExprSignals(v.Subject)
		for _, item := range v.Items {
			for _, le := range item.Exprs {
				conds = append(conds, ExprSignals(le)...)
			}
		}
		for _, name := range conds {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseCond, Item: blk, Stmt: v, Enclosing: append([]verilog.Stmt(nil), enclosing...)})
		}
		inner := append(append([]verilog.Stmt(nil), enclosing...), v)
		innerConds := append(append([]string(nil), condSignals...), conds...)
		for _, item := range v.Items {
			walkProc(mi, blk, item.Body, inner, innerConds)
		}
	case *verilog.ForStmt:
		conds := ExprSignals(v.Cond)
		for _, name := range conds {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseCond, Item: blk, Stmt: v, Enclosing: append([]verilog.Stmt(nil), enclosing...)})
		}
		inner := append(append([]verilog.Stmt(nil), enclosing...), v)
		innerConds := append(append([]string(nil), condSignals...), conds...)
		walkProc(mi, blk, v.Init, inner, innerConds)
		walkProc(mi, blk, v.Step, inner, innerConds)
		walkProc(mi, blk, v.Body, inner, innerConds)
	case *verilog.WhileStmt:
		conds := ExprSignals(v.Cond)
		for _, name := range conds {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseCond, Item: blk, Stmt: v, Enclosing: append([]verilog.Stmt(nil), enclosing...)})
		}
		inner := append(append([]verilog.Stmt(nil), enclosing...), v)
		innerConds := append(append([]string(nil), condSignals...), conds...)
		walkProc(mi, blk, v.Body, inner, innerConds)
	case *verilog.AssignStmt:
		ref := &Ref{
			Kind:        DefProc,
			Item:        blk,
			Stmt:        v,
			Enclosing:   append([]verilog.Stmt(nil), enclosing...),
			CondSignals: dedup(condSignals),
		}
		for _, name := range lvalueSignals(v.LHS) {
			mi.Signal(name).Defs = append(mi.Signal(name).Defs, ref)
		}
		for _, name := range exprSignalsWithIndexOf(v.LHS) {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseProcRHS, Item: blk, Stmt: v, Enclosing: ref.Enclosing})
		}
		for _, name := range ExprSignals(v.RHS) {
			mi.Signal(name).Uses = append(mi.Signal(name).Uses,
				&Ref{Kind: UseProcRHS, Item: blk, Stmt: v, Enclosing: ref.Enclosing})
		}
	}
}

// ExprSignals returns the distinct signal names read by an expression,
// in first-occurrence order.
func ExprSignals(e verilog.Expr) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case nil:
		case *verilog.Ident:
			if !seen[v.Name] {
				seen[v.Name] = true
				out = append(out, v.Name)
			}
		case *verilog.Number:
		case *verilog.UnaryExpr:
			walk(v.X)
		case *verilog.BinaryExpr:
			walk(v.X)
			walk(v.Y)
		case *verilog.CondExpr:
			walk(v.Cond)
			walk(v.Then)
			walk(v.Else)
		case *verilog.IndexExpr:
			walk(v.X)
			walk(v.Index)
		case *verilog.RangeExpr:
			walk(v.X)
			walk(v.MSB)
			walk(v.LSB)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		case *verilog.ReplExpr:
			walk(v.Count)
			walk(v.X)
		case *verilog.CallExpr:
			// The function body's own reads are resolved when the
			// extractor inlines it; arguments are direct reads.
			for _, a := range v.Args {
				walk(a)
			}
		}
	}
	walk(e)
	return out
}

// lvalueSignals returns the signals *driven* by an lvalue expression
// (the base identifiers, not index sub-expressions).
func lvalueSignals(e verilog.Expr) []string {
	var out []string
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case nil:
		case *verilog.Ident:
			out = append(out, v.Name)
		case *verilog.IndexExpr:
			walk(v.X)
		case *verilog.RangeExpr:
			walk(v.X)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return dedup(out)
}

// exprSignalsWithIndexOf returns the signals read by the index
// sub-expressions of an lvalue (a[i] = ... reads i).
func exprSignalsWithIndexOf(e verilog.Expr) []string {
	var out []string
	var walk func(x verilog.Expr)
	walk = func(x verilog.Expr) {
		switch v := x.(type) {
		case nil:
		case *verilog.IndexExpr:
			out = append(out, ExprSignals(v.Index)...)
			walk(v.X)
		case *verilog.RangeExpr:
			walk(v.X)
		case *verilog.ConcatExpr:
			for _, p := range v.Parts {
				walk(p)
			}
		}
	}
	walk(e)
	return dedup(out)
}

func dedup(in []string) []string {
	seen := map[string]bool{}
	var out []string
	for _, s := range in {
		if !seen[s] {
			seen[s] = true
			out = append(out, s)
		}
	}
	return out
}

func widthOf(r *verilog.Range) int {
	if r == nil {
		return 1
	}
	m, ok1 := constInt(r.MSB)
	l, ok2 := constInt(r.LSB)
	if !ok1 || !ok2 || l > m {
		return 0 // parameterized or unusual; width unknown at analysis time
	}
	return m - l + 1
}

func constInt(e verilog.Expr) (int, bool) {
	if n, ok := e.(*verilog.Number); ok && !n.HasXZ() {
		return int(n.Value), true
	}
	return 0, false
}
