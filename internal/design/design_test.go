package design

import (
	"testing"

	"factor/internal/verilog"
)

const hierSrc = `
module top(input clk, input [3:0] din, output [3:0] dout, output flag);
  wire [3:0] mid;
  core u_core (.clk(clk), .in(din), .out(mid));
  post u_post (.clk(clk), .in(mid), .out(dout));
  assign flag = |mid;
endmodule

module core(input clk, input [3:0] in, output reg [3:0] out);
  wire [3:0] t;
  leaf u_leaf (.a(in), .y(t));
  always @(posedge clk)
    if (t[0]) out <= t;
    else out <= 4'd0;
endmodule

module post(input clk, input [3:0] in, output [3:0] out);
  assign out = ~in;
endmodule

module leaf(input [3:0] a, output [3:0] y);
  assign y = a + 4'd1;
endmodule
`

func analyze(t *testing.T, src, top string) *Design {
	t.Helper()
	sf, err := verilog.Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Analyze(sf, top)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestInstanceTree(t *testing.T) {
	d := analyze(t, hierSrc, "top")
	if d.Root.Module != "top" || d.Root.Level != 0 {
		t.Fatalf("root: %+v", d.Root)
	}
	if len(d.Root.Children) != 2 {
		t.Fatalf("root children = %d, want 2", len(d.Root.Children))
	}
	leaf := d.Root.Find("u_core.u_leaf")
	if leaf == nil {
		t.Fatal("u_core.u_leaf not found")
	}
	if leaf.Module != "leaf" || leaf.Level != 2 || leaf.Parent.Module != "core" {
		t.Errorf("leaf node: %+v", leaf)
	}
	if got := d.InstancesOf("leaf"); len(got) != 1 || got[0].Path != "u_core.u_leaf" {
		t.Errorf("InstancesOf(leaf) = %v", got)
	}
	if d.Root.Find("missing.path") != nil {
		t.Error("Find on missing path should be nil")
	}
}

func TestDefUseChainsContinuousAssign(t *testing.T) {
	d := analyze(t, hierSrc, "top")
	top := d.Module("top")

	mid := top.Signal("mid")
	// mid: defined by u_core output conn, used by u_post input conn
	// and the reduction in flag's assign.
	var defKinds, useKinds []RefKind
	for _, r := range mid.Defs {
		defKinds = append(defKinds, r.Kind)
	}
	for _, r := range mid.Uses {
		useKinds = append(useKinds, r.Kind)
	}
	if len(mid.Defs) != 1 || mid.Defs[0].Kind != DefInstOut || mid.Defs[0].Port != "out" {
		t.Errorf("mid defs: %v", defKinds)
	}
	if len(mid.Uses) != 2 {
		t.Errorf("mid uses: %v", useKinds)
	}
	hasUse := func(k RefKind) bool {
		for _, r := range mid.Uses {
			if r.Kind == k {
				return true
			}
		}
		return false
	}
	if !hasUse(UseInstIn) || !hasUse(UseAssignRHS) {
		t.Errorf("mid uses missing kinds: %v", useKinds)
	}

	flag := top.Signal("flag")
	if len(flag.Defs) != 1 || flag.Defs[0].Kind != DefAssign {
		t.Errorf("flag defs: %+v", flag.Defs)
	}
	// flag is an output port: used by the environment.
	if len(flag.Uses) != 1 || flag.Uses[0].Kind != UsePortOut {
		t.Errorf("flag uses: %+v", flag.Uses)
	}
}

func TestProceduralDefsWithEnclosing(t *testing.T) {
	d := analyze(t, hierSrc, "top")
	core := d.Module("core")

	out := core.Signal("out")
	if len(out.Defs) != 2 {
		t.Fatalf("out defs = %d, want 2 (then and else branches)", len(out.Defs))
	}
	for _, def := range out.Defs {
		if def.Kind != DefProc {
			t.Errorf("def kind = %v", def.Kind)
		}
		if len(def.Enclosing) != 1 {
			t.Errorf("enclosing = %d, want 1 (the if)", len(def.Enclosing))
		}
		if len(def.CondSignals) != 1 || def.CondSignals[0] != "t" {
			t.Errorf("cond signals = %v, want [t]", def.CondSignals)
		}
	}

	// t: used in condition and in RHS.
	tsig := core.Signal("t")
	var kinds []RefKind
	for _, u := range tsig.Uses {
		kinds = append(kinds, u.Kind)
	}
	hasCond, hasRHS := false, false
	for _, k := range kinds {
		if k == UseCond {
			hasCond = true
		}
		if k == UseProcRHS {
			hasRHS = true
		}
	}
	if !hasCond || !hasRHS {
		t.Errorf("t uses: %v (want cond-use and proc-use)", kinds)
	}
}

func TestEmptyChains(t *testing.T) {
	d := analyze(t, `
module dangling(input a, output y);
  wire never_driven;
  wire never_used;
  assign never_used = a;
  assign y = a & never_driven;
endmodule`, "dangling")
	mi := d.Module("dangling")
	nd := mi.Signal("never_driven")
	if len(nd.Defs) != 0 {
		t.Errorf("never_driven defs: %+v", nd.Defs)
	}
	if len(nd.Uses) != 1 {
		t.Errorf("never_driven uses: %+v", nd.Uses)
	}
	nu := mi.Signal("never_used")
	if len(nu.Uses) != 0 {
		t.Errorf("never_used uses: %+v", nu.Uses)
	}
	if len(nu.Defs) != 1 {
		t.Errorf("never_used defs: %+v", nu.Defs)
	}
}

func TestGateRefs(t *testing.T) {
	d := analyze(t, `
module g(input a, b, output y);
  wire w;
  and g1 (w, a, b);
  not n1 (y, w);
endmodule`, "g")
	mi := d.Module("g")
	w := mi.Signal("w")
	if len(w.Defs) != 1 || w.Defs[0].Kind != DefGateOut {
		t.Errorf("w defs: %+v", w.Defs)
	}
	if len(w.Uses) != 1 || w.Uses[0].Kind != UseGateIn {
		t.Errorf("w uses: %+v", w.Uses)
	}
}

func TestPositionalConnectionsResolved(t *testing.T) {
	d := analyze(t, `
module top(input a, output y);
  sub u (a, y);
endmodule
module sub(input i, output o);
  assign o = ~i;
endmodule`, "top")
	top := d.Module("top")
	a := top.Signal("a")
	foundInstIn := false
	for _, u := range a.Uses {
		if u.Kind == UseInstIn && u.Port == "i" {
			foundInstIn = true
		}
	}
	if !foundInstIn {
		t.Errorf("positional input conn not resolved: %+v", a.Uses)
	}
	y := top.Signal("y")
	foundInstOut := false
	for _, u := range y.Defs {
		if u.Kind == DefInstOut && u.Port == "o" {
			foundInstOut = true
		}
	}
	if !foundInstOut {
		t.Errorf("positional output conn not resolved: %+v", y.Defs)
	}
}

func TestExprSignals(t *testing.T) {
	sf, err := verilog.Parse("t.v", `module m(input a, b, c, output y);
  assign y = (a & b) | c[a] | {b, ~c} | f(a, c);
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	var rhs verilog.Expr
	for _, it := range sf.Modules[0].Items {
		if as, ok := it.(*verilog.AssignItem); ok {
			rhs = as.RHS
		}
	}
	got := ExprSignals(rhs)
	want := []string{"a", "b", "c"}
	if len(got) != len(want) {
		t.Fatalf("ExprSignals = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("ExprSignals[%d] = %s, want %s", i, got[i], want[i])
		}
	}
}

func TestLValueSignals(t *testing.T) {
	sf, err := verilog.Parse("t.v", `module m(input [3:0] a, input i, output [7:0] y);
  wire [3:0] p, q;
  assign {p, q[i]} = a;
  assign y = {p, q};
endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	d, err := Analyze(sf, "m")
	if err != nil {
		t.Fatal(err)
	}
	mi := d.Module("m")
	if len(mi.Signal("p").Defs) != 1 || len(mi.Signal("q").Defs) != 1 {
		t.Errorf("concat lvalue defs: p=%d q=%d", len(mi.Signal("p").Defs), len(mi.Signal("q").Defs))
	}
	// i is used as an index on the LHS.
	usedAsIndex := false
	for _, u := range mi.Signal("i").Uses {
		if u.Kind == UseAssignRHS {
			usedAsIndex = true
		}
	}
	if !usedAsIndex {
		t.Errorf("index signal i not recorded as use: %+v", mi.Signal("i").Uses)
	}
}

func TestRecursiveInstantiationRejected(t *testing.T) {
	sf, err := verilog.Parse("t.v", `
module a(input x, output y); b u (.x(x), .y(y)); endmodule
module b(input x, output y); a u (.x(x), .y(y)); endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Analyze(sf, "a"); err == nil {
		t.Error("expected recursion error")
	}
}

func TestUnknownTopRejected(t *testing.T) {
	sf, _ := verilog.Parse("t.v", "module m; endmodule")
	if _, err := Analyze(sf, "ghost"); err == nil {
		t.Error("expected unknown-top error")
	}
}

func TestCaseConditionSignals(t *testing.T) {
	d := analyze(t, `
module c(input [1:0] sel, input a, b, output reg y);
  always @(*) begin
    case (sel)
      2'b00: y = a;
      default: y = b;
    endcase
  end
endmodule`, "c")
	mi := d.Module("c")
	sel := mi.Signal("sel")
	hasCond := false
	for _, u := range sel.Uses {
		if u.Kind == UseCond {
			hasCond = true
		}
	}
	if !hasCond {
		t.Errorf("case subject not a cond-use: %+v", sel.Uses)
	}
	// y's defs carry sel as a condition signal.
	for _, def := range mi.Signal("y").Defs {
		found := false
		for _, cs := range def.CondSignals {
			if cs == "sel" {
				found = true
			}
		}
		if !found {
			t.Errorf("y def missing sel in cond signals: %v", def.CondSignals)
		}
	}
}

func TestSignalNamesDeterministic(t *testing.T) {
	d := analyze(t, hierSrc, "top")
	names := d.Module("top").SignalNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("names not sorted: %v", names)
		}
	}
}

func TestWalkPreorder(t *testing.T) {
	d := analyze(t, hierSrc, "top")
	var paths []string
	d.Root.Walk(func(n *InstanceNode) { paths = append(paths, n.Path) })
	if len(paths) != 4 {
		t.Fatalf("walk visited %d nodes, want 4: %v", len(paths), paths)
	}
	if paths[0] != "" {
		t.Errorf("preorder should start at root, got %v", paths)
	}
}
