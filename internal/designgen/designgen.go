// Package designgen generates random hierarchical Verilog designs for
// metamorphic conformance testing of the FACTOR pipeline. Following the
// bottom-up random-design-generation approach used to stress EDA tools
// (Vieira et al., "Bottom-Up Generation of Verilog Designs for Testing
// EDA Tools"), every design is built from a (seed, Config) pair and is
// fully deterministic: the same seed always yields the same module
// tree, the same expressions and the same printed source.
//
// Generated designs stay inside the synthesizable subset the synth
// package documents: a single positive-edge clock domain, synchronous
// resets, no signed arithmetic, no division, no x/z literals. Designs
// are hierarchical (2-4 levels of module nesting) and mix three block
// styles — datapath (continuous assignments over word-level operators),
// control (combinational always with case/if and full default
// assignment), and FSM (state register plus combinational next-state
// logic) — with parameterized widths and both registered and
// combinational module boundaries.
package designgen

import (
	"fmt"
	"math/rand"

	"factor/internal/verilog"
)

// Config bounds the shape of generated designs.
type Config struct {
	// MaxDepth is the maximum module nesting depth below the top module
	// (1..3; the total hierarchy is 2..4 levels including top).
	MaxDepth int
	// MaxWidth is the maximum bus width (>= 2).
	MaxWidth int
	// MaxChildren is the maximum child instances per non-leaf module.
	MaxChildren int
	// MaxGlue is the maximum number of glue signals per module.
	MaxGlue int
}

// DefaultConfig returns the corpus configuration: small enough that the
// whole pipeline (synthesis, extraction, ATPG, two fault-simulation
// engines) runs in milliseconds per design, large enough to exercise
// hierarchy, parameterization and all three block styles.
func DefaultConfig() Config {
	return Config{MaxDepth: 3, MaxWidth: 8, MaxChildren: 3, MaxGlue: 4}
}

func (c Config) withDefaults() Config {
	if c.MaxDepth < 1 {
		c.MaxDepth = 3
	}
	if c.MaxDepth > 3 {
		c.MaxDepth = 3
	}
	if c.MaxWidth < 2 {
		c.MaxWidth = 8
	}
	if c.MaxChildren < 1 {
		c.MaxChildren = 3
	}
	if c.MaxGlue < 1 {
		c.MaxGlue = 4
	}
	return c
}

// Generated is one random design.
type Generated struct {
	Seed   int64
	Source *verilog.SourceFile
	Top    string
	// InstancePaths lists every hierarchical instance path of the
	// elaborated tree in creation order — the MUT candidates.
	InstancePaths []string
	// Levels is the hierarchy depth including the top module.
	Levels int
}

// Text renders the design as Verilog source through the same printer
// the FACTOR flow uses to write transformed modules.
func (g *Generated) Text() string { return verilog.PrintFile(g.Source) }

// portShape describes one port of a generated module shape.
type portShape struct {
	name   string
	dir    verilog.PortDir

	// paramW marks a port whose width is the module's W parameter;
	// width is the concrete width otherwise (1 = scalar).
	paramW bool
	width  int
	isReg  bool
}

// moduleShape is the reusable interface summary of a generated module.
type moduleShape struct {
	name     string
	hasParam bool // has "parameter W = ..."
	defaultW int
	ports    []portShape
	depth    int // levels of hierarchy below this module (0 = leaf)
}

// minWidth is the guaranteed width of a paramW port: instantiations
// override W with values >= minWidth only, so constant bit indices
// below minWidth are safe for every specialization.
const minWidth = 2

// signal is one readable value inside a module under construction.
type signal struct {
	name string
	// minw is the width lower bound (equals the width for concrete
	// signals; minWidth for parameterized ones).
	minw int
}

// gen is the generator state.
type gen struct {
	rng     *rand.Rand
	cfg     Config
	modules []*verilog.Module
	shapes  []*moduleShape // shapes available for reuse, any depth
	nameSeq int
	paths   []string
}

// Generate builds a random hierarchical design from the seed.
func Generate(seed int64, cfg Config) *Generated {
	cfg = cfg.withDefaults()
	g := &gen{rng: rand.New(rand.NewSource(seed)), cfg: cfg}
	depth := 1 + g.rng.Intn(cfg.MaxDepth) // 1..MaxDepth levels below top
	top := g.buildModule("top", depth, true)
	g.recordPaths("", top)
	src := &verilog.SourceFile{Modules: append([]*verilog.Module{}, g.modules...)}
	return &Generated{
		Seed:          seed,
		Source:        src,
		Top:           top.name,
		InstancePaths: g.paths,
		Levels:        depth + 1,
	}
}

// recordPaths walks the generated instance tree to enumerate MUT
// candidate paths.
func (g *gen) recordPaths(prefix string, shape *moduleShape) {
	mod := g.module(shape.name)
	for _, inst := range mod.Instances() {
		path := inst.Name
		if prefix != "" {
			path = prefix + "." + inst.Name
		}
		g.paths = append(g.paths, path)
		for _, s := range g.shapes {
			if s.name == inst.ModuleName {
				g.recordPaths(path, s)
				break
			}
		}
	}
}

func (g *gen) module(name string) *verilog.Module {
	for _, m := range g.modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// mctx is the per-module construction context.
type mctx struct {
	shape   *moduleShape
	decls   []verilog.Item
	body    []verilog.Item
	clocked []verilog.Item // clocked always blocks, appended last
	avail   []signal
	names   map[string]bool
	// hasParam mirrors shape.hasParam for width generation.
	hasParam bool
}

func (m *mctx) fresh(prefix string) string {
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s%d", prefix, i)
		if !m.names[name] {
			m.names[name] = true
			return name
		}
	}
}

// buildModule creates a new module with the given hierarchy depth below
// it and registers its shape. Top modules get a fixed name and always
// instantiate at least one child.
func (g *gen) buildModule(name string, depth int, isTop bool) *moduleShape {
	if name == "" {
		g.nameSeq++
		kind := "dp"
		if depth > 0 {
			kind = "mid"
		}
		name = fmt.Sprintf("m%d_%s", g.nameSeq, kind)
	}
	shape := &moduleShape{name: name, depth: depth, defaultW: minWidth + g.rng.Intn(g.cfg.MaxWidth-minWidth+1)}
	m := &mctx{shape: shape, names: map[string]bool{}}
	m.names["clk"], m.names["rst"], m.names["W"] = true, true, true

	// Leaf datapath modules are parameterized half the time.
	if depth == 0 && !isTop && g.rng.Intn(2) == 0 {
		shape.hasParam = true
		m.hasParam = true
	}

	// Ports: clk, rst, then 2-4 data inputs and (later) 1-3 outputs.
	shape.ports = append(shape.ports,
		portShape{name: "clk", dir: verilog.PortInput, width: 1},
		portShape{name: "rst", dir: verilog.PortInput, width: 1})
	nin := 2 + g.rng.Intn(3)
	for i := 0; i < nin; i++ {
		p := portShape{name: fmt.Sprintf("in%d", i), dir: verilog.PortInput}
		if shape.hasParam && g.rng.Intn(2) == 0 {
			p.paramW = true
			m.avail = append(m.avail, signal{p.name, minWidth})
		} else {
			p.width = g.width()
			m.avail = append(m.avail, signal{p.name, p.width})
		}
		m.names[p.name] = true
		shape.ports = append(shape.ports, p)
	}

	// Body: glue logic, then child instances (non-leaf), then control
	// and FSM blocks, then registered outputs.
	g.glue(m)
	if depth > 0 {
		nchild := 1 + g.rng.Intn(g.cfg.MaxChildren)
		for i := 0; i < nchild; i++ {
			g.instance(m, depth-1)
		}
		g.glue(m)
	}
	if g.rng.Intn(2) == 0 {
		g.combAlways(m)
	}
	switch g.rng.Intn(3) {
	case 0:
		g.fsm(m)
	case 1:
		g.clockedRegs(m)
	}
	if isTop && len(m.clocked) == 0 {
		// The conformance pipeline exercises sequential ATPG; make sure
		// every design has at least one flip-flop.
		g.clockedRegs(m)
	}

	// Outputs: 1-3, each either a combinational assign or a registered
	// output (a clocked "output reg").
	nout := 1 + g.rng.Intn(3)
	for i := 0; i < nout; i++ {
		p := portShape{name: fmt.Sprintf("out%d", i), dir: verilog.PortOutput}
		m.names[p.name] = true
		if shape.hasParam && g.rng.Intn(3) == 0 {
			p.paramW = true
		} else {
			p.width = g.width()
		}
		if g.rng.Intn(3) == 0 || (isTop && i == 0) {
			// Top's first output is always registered so every design
			// keeps at least one flip-flop through optimization.
			p.isReg = true
			g.registerOutput(m, p)
		} else {
			m.body = append(m.body, &verilog.AssignItem{LHS: id(p.name), RHS: g.expr(m, 2)})
		}
		shape.ports = append(shape.ports, p)
	}

	// Assemble the module AST.
	mod := &verilog.Module{Name: name}
	for _, p := range shape.ports {
		port := &verilog.Port{Name: p.name, Dir: p.dir, IsReg: p.isReg}
		if p.paramW {
			port.Width = &verilog.Range{MSB: sub(id("W"), 1), LSB: intNum(0)}
		} else if p.width > 1 {
			port.Width = &verilog.Range{MSB: intNum(p.width - 1), LSB: intNum(0)}
		}
		mod.Ports = append(mod.Ports, port)
	}
	if shape.hasParam {
		mod.Items = append(mod.Items, &verilog.ParamDecl{
			Names:  []string{"W"},
			Values: []verilog.Expr{intNum(shape.defaultW)},
		})
	}
	mod.Items = append(mod.Items, m.decls...)
	mod.Items = append(mod.Items, m.body...)
	mod.Items = append(mod.Items, m.clocked...)

	g.modules = append(g.modules, mod)
	g.shapes = append(g.shapes, shape)
	return shape
}

// width picks a concrete signal width in [1, MaxWidth].
func (g *gen) width() int {
	if g.rng.Intn(4) == 0 {
		return 1
	}
	return 2 + g.rng.Intn(g.cfg.MaxWidth-1)
}

// glue adds 1..MaxGlue combinational glue signals: wire assigns and
// occasional scalar gate primitives.
func (g *gen) glue(m *mctx) {
	n := 1 + g.rng.Intn(g.cfg.MaxGlue)
	for i := 0; i < n; i++ {
		if len(m.avail) >= 2 && g.rng.Intn(4) == 0 {
			// Scalar gate primitive over 1-bit operands.
			name := m.fresh("gw")
			m.decls = append(m.decls, &verilog.NetDecl{Kind: verilog.NetWire, Names: []string{name}})
			kinds := []string{"and", "or", "xor", "nand", "nor", "xnor"}
			kind := kinds[g.rng.Intn(len(kinds))]
			m.body = append(m.body, &verilog.GateInst{
				Kind: kind,
				Name: m.fresh("g"),
				Args: []verilog.Expr{id(name), g.scalarExpr(m), g.scalarExpr(m)},
			})
			m.avail = append(m.avail, signal{name, 1})
			continue
		}
		name := m.fresh("w")
		w := g.width()
		decl := &verilog.NetDecl{Kind: verilog.NetWire, Names: []string{name}}
		if w > 1 {
			decl.Width = &verilog.Range{MSB: intNum(w - 1), LSB: intNum(0)}
		}
		m.decls = append(m.decls, decl)
		m.body = append(m.body, &verilog.AssignItem{LHS: id(name), RHS: g.expr(m, 2)})
		m.avail = append(m.avail, signal{name, w})
	}
}

// instance adds a child module instance, reusing an existing shape of a
// suitable depth about a third of the time (so designs contain repeated
// instantiations of the same module, like real SoCs).
func (g *gen) instance(m *mctx, childDepth int) {
	var shape *moduleShape
	if g.rng.Intn(3) == 0 {
		var cands []*moduleShape
		for _, s := range g.shapes {
			if s.depth <= childDepth {
				cands = append(cands, s)
			}
		}
		if len(cands) > 0 {
			shape = cands[g.rng.Intn(len(cands))]
		}
	}
	if shape == nil {
		d := 0
		if childDepth > 0 {
			d = g.rng.Intn(childDepth + 1)
		}
		shape = g.buildModule("", d, false)
	}

	inst := &verilog.Instance{ModuleName: shape.name, Name: m.fresh("u_")}
	wOverride := 0
	if shape.hasParam {
		wOverride = minWidth + g.rng.Intn(g.cfg.MaxWidth-minWidth+1)
		inst.Params = append(inst.Params, verilog.ParamAssign{Name: "W", Value: intNum(wOverride)})
	}
	for _, p := range shape.ports {
		actual := p.width
		if p.paramW {
			actual = shape.defaultW
			if wOverride > 0 {
				actual = wOverride
			}
		}
		switch {
		case p.name == "clk":
			inst.Conns = append(inst.Conns, verilog.PortConn{Port: "clk", Expr: id("clk")})
		case p.name == "rst":
			inst.Conns = append(inst.Conns, verilog.PortConn{Port: "rst", Expr: id("rst")})
		case p.dir == verilog.PortInput:
			inst.Conns = append(inst.Conns, verilog.PortConn{Port: p.name, Expr: id(g.pick(m).name)})
		default:
			// Output: a fresh wire of the specialized width.
			name := m.fresh("c")
			decl := &verilog.NetDecl{Kind: verilog.NetWire, Names: []string{name}}
			if actual > 1 {
				decl.Width = &verilog.Range{MSB: intNum(actual - 1), LSB: intNum(0)}
			}
			m.decls = append(m.decls, decl)
			inst.Conns = append(inst.Conns, verilog.PortConn{Port: p.name, Expr: id(name)})
			m.avail = append(m.avail, signal{name, actual})
		}
	}
	m.body = append(m.body, inst)
}

// combAlways adds a combinational control block: 1-2 reg targets, each
// fully assigned (a default followed by optional if/case refinement) so
// no latch is inferred.
func (g *gen) combAlways(m *mctx) {
	ntargets := 1 + g.rng.Intn(2)
	var stmts []verilog.Stmt
	var newSigs []signal
	for i := 0; i < ntargets; i++ {
		name := m.fresh("c")
		w := g.width()
		decl := &verilog.NetDecl{Kind: verilog.NetReg, Names: []string{name}}
		if w > 1 {
			decl.Width = &verilog.Range{MSB: intNum(w - 1), LSB: intNum(0)}
		}
		m.decls = append(m.decls, decl)
		stmts = append(stmts, assign(id(name), g.expr(m, 1), true))
		switch g.rng.Intn(3) {
		case 0:
			stmts = append(stmts, &verilog.IfStmt{
				Cond: g.scalarExpr(m),
				Then: assign(id(name), g.expr(m, 1), true),
			})
		case 1:
			stmts = append(stmts, g.caseStmt(m, name))
		}
		newSigs = append(newSigs, signal{name, w})
	}
	m.body = append(m.body, &verilog.AlwaysBlock{
		Sens: verilog.SensList{Star: true},
		Body: &verilog.Block{Stmts: stmts},
	})
	m.avail = append(m.avail, newSigs...)
}

// caseStmt builds a full case over a small avail subject with a default
// arm, assigning the target in every arm.
func (g *gen) caseStmt(m *mctx, target string) verilog.Stmt {
	subj := g.pick(m)
	subjW := subj.minw
	if subjW > 3 {
		subjW = 3
	}
	var subjExpr verilog.Expr = id(subj.name)
	if subj.minw > subjW {
		subjExpr = &verilog.RangeExpr{X: id(subj.name), MSB: intNum(subjW - 1), LSB: intNum(0)}
	}
	cs := &verilog.CaseStmt{Kind: verilog.CaseExact, Subject: subjExpr}
	narms := 1 + g.rng.Intn(3)
	seen := map[uint64]bool{}
	for i := 0; i < narms; i++ {
		v := uint64(g.rng.Intn(1 << uint(subjW)))
		if seen[v] {
			continue
		}
		seen[v] = true
		cs.Items = append(cs.Items, verilog.CaseItem{
			Exprs: []verilog.Expr{num(subjW, v, true)},
			Body:  assign(id(target), g.expr(m, 1), true),
		})
	}
	cs.Items = append(cs.Items, verilog.CaseItem{
		Body: assign(id(target), g.expr(m, 1), true),
	})
	return cs
}

// clockedRegs adds a clocked always block with 1-2 registered signals,
// synchronous reset, nonblocking assignments.
func (g *gen) clockedRegs(m *mctx) {
	n := 1 + g.rng.Intn(2)
	var stmts []verilog.Stmt
	for i := 0; i < n; i++ {
		name := m.fresh("q")
		w := g.width()
		decl := &verilog.NetDecl{Kind: verilog.NetReg, Names: []string{name}}
		if w > 1 {
			decl.Width = &verilog.Range{MSB: intNum(w - 1), LSB: intNum(0)}
		}
		m.decls = append(m.decls, decl)
		// Registers may read anything, including themselves (counters).
		m.avail = append(m.avail, signal{name, w})
		var rhs verilog.Expr
		if g.rng.Intn(3) == 0 {
			rhs = add(id(name), 1) // counter
		} else {
			rhs = g.expr(m, 2)
		}
		stmts = append(stmts, &verilog.IfStmt{
			Cond: id("rst"),
			Then: assign(id(name), num(1, 0, true), false),
			Else: assign(id(name), rhs, false),
		})
	}
	m.clocked = append(m.clocked, &verilog.AlwaysBlock{
		Sens: verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: id("clk")}}},
		Body: &verilog.Block{Stmts: stmts},
	})
}

// fsm adds a small state machine: a 2-bit state register, combinational
// next-state logic via a full case, and the state made available to
// downstream logic.
func (g *gen) fsm(m *mctx) {
	state := m.fresh("state")
	next := m.fresh("next")
	for _, name := range []string{state, next} {
		m.decls = append(m.decls, &verilog.NetDecl{
			Kind:  verilog.NetReg,
			Width: &verilog.Range{MSB: intNum(1), LSB: intNum(0)},
			Names: []string{name},
		})
	}
	m.avail = append(m.avail, signal{state, 2})

	// Next-state: case over state; each arm branches on an input.
	cs := &verilog.CaseStmt{Kind: verilog.CaseExact, Subject: id(state)}
	for s := 0; s < 3; s++ {
		cs.Items = append(cs.Items, verilog.CaseItem{
			Exprs: []verilog.Expr{num(2, uint64(s), true)},
			Body: &verilog.IfStmt{
				Cond: g.scalarExpr(m),
				Then: assign(id(next), num(2, uint64((s+1)%4), true), true),
				Else: assign(id(next), num(2, uint64(s), true), true),
			},
		})
	}
	cs.Items = append(cs.Items, verilog.CaseItem{Body: assign(id(next), num(2, 0, true), true)})
	m.body = append(m.body, &verilog.AlwaysBlock{
		Sens: verilog.SensList{Star: true},
		Body: &verilog.Block{Stmts: []verilog.Stmt{assign(id(next), id(state), true), cs}},
	})
	m.clocked = append(m.clocked, &verilog.AlwaysBlock{
		Sens: verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: id("clk")}}},
		Body: &verilog.IfStmt{
			Cond: id("rst"),
			Then: assign(id(state), num(2, 0, true), false),
			Else: assign(id(state), id(next), false),
		},
	})
}

// registerOutput drives an "output reg" port from a clocked block.
func (g *gen) registerOutput(m *mctx, p portShape) {
	rhs := g.expr(m, 2)
	m.clocked = append(m.clocked, &verilog.AlwaysBlock{
		Sens: verilog.SensList{Items: []verilog.SensItem{{Edge: verilog.EdgePos, Signal: id("clk")}}},
		Body: &verilog.IfStmt{
			Cond: id("rst"),
			Then: assign(id(p.name), num(1, 0, true), false),
			Else: assign(id(p.name), rhs, false),
		},
	})
}

// pick returns a random available signal.
func (g *gen) pick(m *mctx) signal {
	return m.avail[g.rng.Intn(len(m.avail))]
}

// scalarExpr builds a 1-bit expression (for conditions and gate pins).
func (g *gen) scalarExpr(m *mctx) verilog.Expr {
	s := g.pick(m)
	switch g.rng.Intn(4) {
	case 0:
		if s.minw > 1 {
			return &verilog.IndexExpr{X: id(s.name), Index: intNum(g.rng.Intn(s.minw))}
		}
		return id(s.name)
	case 1:
		ops := []verilog.UnaryOp{verilog.UnaryAnd, verilog.UnaryOr, verilog.UnaryXor, verilog.UnaryNor}
		return &verilog.UnaryExpr{Op: ops[g.rng.Intn(len(ops))], X: id(s.name)}
	case 2:
		t := g.pick(m)
		if g.rng.Intn(2) == 0 {
			return &verilog.BinaryExpr{Op: verilog.BinEq, X: id(s.name), Y: id(t.name)}
		}
		return &verilog.BinaryExpr{Op: verilog.BinNeq, X: id(s.name), Y: num(s.minw, uint64(g.rng.Intn(1<<uint(min(s.minw, 6)))), true)}
	default:
		if s.minw > 1 {
			return &verilog.IndexExpr{X: id(s.name), Index: intNum(g.rng.Intn(s.minw))}
		}
		return id(s.name)
	}
}

// expr builds a random expression over the available signals, bounded
// by depth. Operators stay inside the synthesizable subset (no
// division, modulo or signed arithmetic; shifts by constants only).
func (g *gen) expr(m *mctx, depth int) verilog.Expr {
	if depth <= 0 || g.rng.Intn(4) == 0 {
		if g.rng.Intn(5) == 0 {
			w := 1 + g.rng.Intn(6)
			return num(w, uint64(g.rng.Int63())&((1<<uint(w))-1), true)
		}
		s := g.pick(m)
		if s.minw > 2 && g.rng.Intn(4) == 0 {
			hi := 1 + g.rng.Intn(s.minw-1)
			lo := g.rng.Intn(hi)
			return &verilog.RangeExpr{X: id(s.name), MSB: intNum(hi), LSB: intNum(lo)}
		}
		return id(s.name)
	}
	switch g.rng.Intn(10) {
	case 0:
		ops := []verilog.UnaryOp{verilog.UnaryBitNot, verilog.UnaryNot, verilog.UnaryAnd, verilog.UnaryOr, verilog.UnaryXor}
		return &verilog.UnaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.expr(m, depth-1)}
	case 1, 2, 3:
		ops := []verilog.BinaryOp{
			verilog.BinAdd, verilog.BinSub, verilog.BinAnd, verilog.BinOr,
			verilog.BinXor, verilog.BinAnd, verilog.BinOr, verilog.BinXor,
		}
		return &verilog.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], X: g.expr(m, depth-1), Y: g.expr(m, depth-1)}
	case 4:
		ops := []verilog.BinaryOp{verilog.BinEq, verilog.BinNeq, verilog.BinLt, verilog.BinLe, verilog.BinGt, verilog.BinGe}
		s, t := g.pick(m), g.pick(m)
		return &verilog.BinaryExpr{Op: ops[g.rng.Intn(len(ops))], X: id(s.name), Y: id(t.name)}
	case 5:
		s := g.pick(m)
		sh := intNum(g.rng.Intn(max(s.minw, 2)))
		op := verilog.BinShl
		if g.rng.Intn(2) == 0 {
			op = verilog.BinShr
		}
		return &verilog.BinaryExpr{Op: op, X: id(s.name), Y: sh}
	case 6:
		return &verilog.CondExpr{Cond: g.scalarExpr(m), Then: g.expr(m, depth-1), Else: g.expr(m, depth-1)}
	case 7:
		s, t := g.pick(m), g.pick(m)
		return &verilog.ConcatExpr{Parts: []verilog.Expr{id(s.name), id(t.name)}}
	case 8:
		if g.rng.Intn(4) == 0 {
			// Multiplication is supported but bit-blasts into many
			// gates; keep it rare and on narrow operands.
			s := g.pick(m)
			return &verilog.BinaryExpr{Op: verilog.BinMul, X: id(s.name), Y: num(2, uint64(1+g.rng.Intn(3)), true)}
		}
		return &verilog.ReplExpr{Count: intNum(2 + g.rng.Intn(2)), X: g.scalarExpr(m)}
	default:
		s := g.pick(m)
		if s.minw > 1 {
			return &verilog.IndexExpr{X: id(s.name), Index: intNum(g.rng.Intn(s.minw))}
		}
		return id(s.name)
	}
}

// AST construction helpers.

func id(name string) *verilog.Ident { return &verilog.Ident{Name: name} }

// num builds a sized literal (prints as w'dv).
func num(w int, v uint64, sized bool) *verilog.Number {
	if w < 1 {
		w = 1
	}
	if w > 63 {
		w = 63
	}
	return &verilog.Number{Width: w, Sized: sized, Value: v & ((1 << uint(w)) - 1)}
}

// intNum builds an unsized decimal literal (prints as the bare value).
func intNum(v int) *verilog.Number {
	return &verilog.Number{Width: 32, Value: uint64(v), Text: fmt.Sprintf("%d", v)}
}

func assign(lhs, rhs verilog.Expr, blocking bool) *verilog.AssignStmt {
	return &verilog.AssignStmt{LHS: lhs, RHS: rhs, Blocking: blocking}
}

func sub(x verilog.Expr, v int) verilog.Expr {
	return &verilog.BinaryExpr{Op: verilog.BinSub, X: x, Y: intNum(v)}
}

func add(x verilog.Expr, v int) verilog.Expr {
	return &verilog.BinaryExpr{Op: verilog.BinAdd, X: x, Y: intNum(v)}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
