package designgen

import (
	"strings"
	"testing"

	"factor/internal/design"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// TestDeterministic checks that the same seed yields byte-identical
// source and the same instance paths.
func TestDeterministic(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		a := Generate(seed, DefaultConfig())
		b := Generate(seed, DefaultConfig())
		if a.Text() != b.Text() {
			t.Fatalf("seed %d: non-deterministic source", seed)
		}
		if strings.Join(a.InstancePaths, "|") != strings.Join(b.InstancePaths, "|") {
			t.Fatalf("seed %d: non-deterministic instance paths", seed)
		}
	}
}

// TestCorpusSynthesizes runs a corpus of generated designs through the
// real front end: parse, hierarchy analysis, and synthesis must all
// succeed, and the netlist must validate.
func TestCorpusSynthesizes(t *testing.T) {
	for seed := int64(0); seed < 100; seed++ {
		g := Generate(seed, DefaultConfig())
		text := g.Text()
		src, err := verilog.Parse("gen.v", text)
		if err != nil {
			t.Fatalf("seed %d: generated source does not parse: %v\n%s", seed, err, text)
		}
		if _, err := design.Analyze(src, g.Top); err != nil {
			t.Fatalf("seed %d: hierarchy analysis failed: %v\n%s", seed, err, text)
		}
		res, err := synth.Synthesize(src, g.Top, synth.Options{})
		if err != nil {
			t.Fatalf("seed %d: synthesis failed: %v\n%s", seed, err, text)
		}
		if err := res.Netlist.Validate(); err != nil {
			t.Fatalf("seed %d: netlist invalid: %v", seed, err)
		}
		if len(res.Netlist.DFFs) == 0 {
			t.Errorf("seed %d: design has no flip-flops", seed)
		}
	}
}

// TestHierarchyDepth checks every design has 2-4 module levels and at
// least one instance (MUT candidate).
func TestHierarchyDepth(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		g := Generate(seed, DefaultConfig())
		if g.Levels < 2 || g.Levels > 4 {
			t.Fatalf("seed %d: hierarchy depth %d outside [2,4]", seed, g.Levels)
		}
		if len(g.InstancePaths) == 0 {
			t.Fatalf("seed %d: no instances", seed)
		}
	}
}
