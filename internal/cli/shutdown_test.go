package cli

// Satellite coverage for the graceful-shutdown helpers extracted from
// SignalContext: no goroutine leaks under repeated start/stop, and
// RunShutdown's step sequencing and error collection.

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"
)

// goroutineCount samples the goroutine count after giving exiting
// goroutines a moment to unwind.
func goroutineCount() int {
	runtime.Gosched()
	return runtime.NumGoroutine()
}

// TestSignalContextNoLeak: repeatedly creating and stopping signal
// contexts must not accrete goroutines (signal.NotifyContext spawns a
// watcher per call; stop must reap it).
func TestSignalContextNoLeak(t *testing.T) {
	before := goroutineCount()
	for i := 0; i < 100; i++ {
		ctx, stop := SignalContextFrom(context.Background(), time.Hour)
		if ctx.Err() != nil {
			t.Fatalf("iteration %d: fresh context already canceled: %v", i, ctx.Err())
		}
		stop()
		stop() // idempotent
		if ctx.Err() == nil {
			t.Fatalf("iteration %d: context not canceled by stop", i)
		}
	}
	// The watchers exit asynchronously after stop; poll briefly.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if n := goroutineCount(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines grew from %d to %d after 100 start/stop cycles",
				before, goroutineCount())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestSignalContextInheritsParent(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	ctx, stop := SignalContextFrom(parent, 0)
	defer stop()
	cancel()
	select {
	case <-ctx.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("parent cancellation did not propagate")
	}
}

func TestRunShutdownSequencesSteps(t *testing.T) {
	var order []string
	err := RunShutdown(time.Second,
		func(ctx context.Context) error {
			if ctx.Err() != nil {
				t.Fatal("step context pre-canceled")
			}
			order = append(order, "drain")
			return nil
		},
		func(ctx context.Context) error {
			order = append(order, "close")
			return nil
		},
	)
	if err != nil {
		t.Fatalf("RunShutdown: %v", err)
	}
	if len(order) != 2 || order[0] != "drain" || order[1] != "close" {
		t.Fatalf("step order = %v", order)
	}
}

// TestRunShutdownCollectsErrors: a failing step does not stop later
// steps, and every error is reported.
func TestRunShutdownCollectsErrors(t *testing.T) {
	e1, e2 := errors.New("listener"), errors.New("queue")
	ran := 0
	err := RunShutdown(time.Second,
		func(context.Context) error { ran++; return e1 },
		func(context.Context) error { ran++; return nil },
		func(context.Context) error { ran++; return e2 },
	)
	if ran != 3 {
		t.Fatalf("ran %d steps, want 3", ran)
	}
	if err == nil || !errors.Is(err, e1) || !errors.Is(err, e2) {
		t.Fatalf("collected error %v does not wrap both step errors", err)
	}
}

// TestRunShutdownDeadline: steps see the shared deadline context and a
// slow step is handed an expired one.
func TestRunShutdownDeadline(t *testing.T) {
	err := RunShutdown(20*time.Millisecond,
		func(ctx context.Context) error {
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(5 * time.Second):
				return errors.New("deadline never reached the step")
			}
		},
	)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("RunShutdown = %v, want deadline exceeded", err)
	}
}
