package cli

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"
	"time"

	"factor/internal/factorerr"
)

func TestNewReportStatus(t *testing.T) {
	cases := []struct {
		err    error
		status string
		exit   int
	}{
		{nil, "ok", factorerr.ExitOK},
		{factorerr.New(factorerr.StageParse, factorerr.CodeInput, "bad"), "error", factorerr.ExitError},
		{factorerr.New(factorerr.StageATPG, factorerr.CodeCanceled, "stop"), "partial", factorerr.ExitPartial},
		{factorerr.New(factorerr.StageExtract, factorerr.CodePartial, "1 of 2"), "partial", factorerr.ExitPartial},
	}
	for i, c := range cases {
		r := NewReport("tool", c.err)
		if r.Status != c.status || r.ExitCode != c.exit {
			t.Errorf("case %d: status=%s exit=%d, want %s/%d", i, r.Status, r.ExitCode, c.status, c.exit)
		}
	}
}

func TestReportErrorsKeepTags(t *testing.T) {
	agg := factorerr.New(factorerr.StageExtract, factorerr.CodePartial, "1 of 2 MUTs failed")
	agg.Err = factorerr.Collect([]error{
		factorerr.New(factorerr.StageExtract, factorerr.CodePanic, "boom").WithMUT("u_a"),
		factorerr.New(factorerr.StageATPG, factorerr.CodePanic, "bang").WithFault("g3/sa1"),
	})
	res := ReportErrors(agg)
	if len(res) != 2 {
		t.Fatalf("got %d entries, want 2 (aggregate header dissolved)", len(res))
	}
	if res[0].MUT != "u_a" || res[0].Code != "panic" || res[0].Stage != "extract" {
		t.Errorf("entry 0 = %+v", res[0])
	}
	if res[1].Fault != "g3/sa1" {
		t.Errorf("entry 1 = %+v", res[1])
	}
}

func TestReportWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	rep := NewReport("atpg", factorerr.New(factorerr.StageATPG, factorerr.CodeTimeout, "deadline"))
	rep.ATPG = &ATPGReport{TotalFaults: 10, Detected: 7, Coverage: 70, Interrupted: true}
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Status != "partial" || got.ExitCode != factorerr.ExitPartial {
		t.Errorf("round trip: %+v", got)
	}
	if got.ATPG == nil || !got.ATPG.Interrupted || got.ATPG.Detected != 7 {
		t.Errorf("ATPG section: %+v", got.ATPG)
	}
	if len(got.MUTs) != 0 {
		t.Errorf("empty MUT section should be omitted, got %v", got.MUTs)
	}
}

func TestSignalContextTimeout(t *testing.T) {
	ctx, stop := SignalContext(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout did not fire")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v, want deadline exceeded", ctx.Err())
	}
}

func TestSignalContextNoTimeout(t *testing.T) {
	ctx, stop := SignalContext(0)
	select {
	case <-ctx.Done():
		t.Fatal("context canceled without signal or timeout")
	default:
	}
	stop()
}
