package cli

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/telemetry"
)

func TestNewReportStatus(t *testing.T) {
	cases := []struct {
		err    error
		status string
		exit   int
	}{
		{nil, "ok", factorerr.ExitOK},
		{factorerr.New(factorerr.StageParse, factorerr.CodeInput, "bad"), "error", factorerr.ExitError},
		{factorerr.New(factorerr.StageATPG, factorerr.CodeCanceled, "stop"), "partial", factorerr.ExitPartial},
		{factorerr.New(factorerr.StageExtract, factorerr.CodePartial, "1 of 2"), "partial", factorerr.ExitPartial},
	}
	for i, c := range cases {
		r := NewReport("tool", c.err)
		if r.Status != c.status || r.ExitCode != c.exit {
			t.Errorf("case %d: status=%s exit=%d, want %s/%d", i, r.Status, r.ExitCode, c.status, c.exit)
		}
	}
}

func TestReportErrorsKeepTags(t *testing.T) {
	agg := factorerr.New(factorerr.StageExtract, factorerr.CodePartial, "1 of 2 MUTs failed")
	agg.Err = factorerr.Collect([]error{
		factorerr.New(factorerr.StageExtract, factorerr.CodePanic, "boom").WithMUT("u_a"),
		factorerr.New(factorerr.StageATPG, factorerr.CodePanic, "bang").WithFault("g3/sa1"),
	})
	res := ReportErrors(agg)
	if len(res) != 2 {
		t.Fatalf("got %d entries, want 2 (aggregate header dissolved)", len(res))
	}
	if res[0].MUT != "u_a" || res[0].Code != "panic" || res[0].Stage != "extract" {
		t.Errorf("entry 0 = %+v", res[0])
	}
	if res[1].Fault != "g3/sa1" {
		t.Errorf("entry 1 = %+v", res[1])
	}
}

func TestReportWriteRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "report.json")
	rep := NewReport("atpg", factorerr.New(factorerr.StageATPG, factorerr.CodeTimeout, "deadline"))
	rep.ATPG = &ATPGReport{TotalFaults: 10, Detected: 7, Coverage: 70, Interrupted: true}
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if got.Status != "partial" || got.ExitCode != factorerr.ExitPartial {
		t.Errorf("round trip: %+v", got)
	}
	if got.ATPG == nil || !got.ATPG.Interrupted || got.ATPG.Detected != 7 {
		t.Errorf("ATPG section: %+v", got.ATPG)
	}
	if len(got.MUTs) != 0 {
		t.Errorf("empty MUT section should be omitted, got %v", got.MUTs)
	}
}

func TestSignalContextTimeout(t *testing.T) {
	ctx, stop := SignalContext(10 * time.Millisecond)
	defer stop()
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("timeout did not fire")
	}
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Errorf("ctx.Err() = %v, want deadline exceeded", ctx.Err())
	}
}

func TestSignalContextNoTimeout(t *testing.T) {
	ctx, stop := SignalContext(0)
	select {
	case <-ctx.Done():
		t.Fatal("context canceled without signal or timeout")
	default:
	}
	stop()
}

// TestSignalContextStopReleases checks the composed stop func's
// guarantee: on both the timeout path and the signal path a single
// stop call (idempotent, here called twice) releases the timer and
// the signal registration, leaving the context canceled.
func TestSignalContextStopReleases(t *testing.T) {
	// Timeout path: stop before the deadline fires must cancel the
	// context (proving the WithTimeout cancel is part of stop, not
	// leaked until the timer pops).
	ctx, stop := SignalContext(time.Hour)
	stop()
	stop() // idempotent
	select {
	case <-ctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not cancel the timeout context")
	}
	if !errors.Is(ctx.Err(), context.Canceled) {
		t.Errorf("ctx.Err() = %v, want canceled (not deadline)", ctx.Err())
	}

	// Signal path: after stop, the handler must be unregistered — a
	// SIGTERM to our own process would otherwise cancel sctx; with the
	// registration released Go's default action would kill the
	// process, so instead verify release via signal.Ignored-free
	// re-registration: a fresh SignalContext must start un-canceled.
	sctx, sstop := SignalContext(0)
	sstop()
	sstop() // idempotent
	select {
	case <-sctx.Done():
	case <-time.After(2 * time.Second):
		t.Fatal("stop did not cancel the signal context")
	}
	ctx2, stop2 := SignalContext(0)
	defer stop2()
	select {
	case <-ctx2.Done():
		t.Fatal("fresh SignalContext canceled: prior stop leaked state")
	default:
	}
}

func TestAttachTelemetry(t *testing.T) {
	rep := NewReport("factor", nil)
	rep.AttachTelemetry(nil)
	if rep.Telemetry != nil {
		t.Fatal("nil handle must leave telemetry section absent")
	}
	tel := telemetry.New()
	rep.AttachTelemetry(tel)
	if rep.Telemetry != nil {
		t.Fatal("counter-less handle must leave telemetry section absent")
	}
	tel.AddCounter("parse.tokens", 42)
	rep.AttachTelemetry(tel)
	if rep.Telemetry == nil || rep.Telemetry.Counters["parse.tokens"] != 42 {
		t.Fatalf("telemetry section = %+v", rep.Telemetry)
	}
}

// TestReportTelemetryByteIdentical marshals two reports whose counters
// were accumulated in different orders and demands byte equality —
// the property the CI telemetry-smoke job checks end to end.
func TestReportTelemetryByteIdentical(t *testing.T) {
	mk := func(order []string) []byte {
		tel := telemetry.New()
		for _, name := range order {
			tel.AddCounter(name, uint64(len(name)))
		}
		rep := NewReport("factor", nil)
		rep.AttachTelemetry(tel)
		path := filepath.Join(t.TempDir(), "r.json")
		if err := rep.Write(path); err != nil {
			t.Fatal(err)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a := mk([]string{"atpg.backtracks", "parse.tokens", "sim.events"})
	b := mk([]string{"sim.events", "atpg.backtracks", "parse.tokens"})
	if string(a) != string(b) {
		t.Fatalf("reports differ:\n%s\n---\n%s", a, b)
	}
}

func TestRunFlagsProgressValidation(t *testing.T) {
	rf := &RunFlags{Progress: "sometimes"}
	if _, _, err := rf.Start("tool"); err == nil {
		t.Fatal("invalid -progress value must be rejected")
	}
	rf = &RunFlags{Progress: "off"}
	tel, finish, err := rf.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if tel == nil || tel.ProgressEnabled() {
		t.Fatalf("progress off: handle=%v enabled=%v", tel, tel.ProgressEnabled())
	}
	if err := finish(); err != nil {
		t.Fatal(err)
	}
}

func TestRunFlagsProfilesAndTrace(t *testing.T) {
	dir := t.TempDir()
	rf := &RunFlags{
		Progress:   "off",
		Trace:      filepath.Join(dir, "trace.json"),
		CPUProfile: filepath.Join(dir, "cpu.pprof"),
		MemProfile: filepath.Join(dir, "mem.pprof"),
	}
	tel, finish, err := rf.Start("tool")
	if err != nil {
		t.Fatal(err)
	}
	if !tel.TraceEnabled() {
		t.Fatal("-trace must enable span buffering")
	}
	sp := tel.StartSpan("stage")
	sp.End()
	if err := finish(); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{rf.Trace, rf.CPUProfile, rf.MemProfile} {
		st, err := os.Stat(f)
		if err != nil {
			t.Fatalf("%s not written: %v", f, err)
		}
		if st.Size() == 0 && f != rf.CPUProfile {
			t.Errorf("%s is empty", f)
		}
	}
	data, err := os.ReadFile(rf.Trace)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]json.RawMessage
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if _, ok := doc["traceEvents"]; !ok {
		t.Fatal("trace missing traceEvents wrapper")
	}
}

// TestAttachDegraded: the quarantine section appears only when a run
// actually degraded, and round-trips through JSON.
func TestAttachDegraded(t *testing.T) {
	rep := NewReport("atpg", nil)
	rep.AttachDegraded(0, 0)
	if rep.Degraded != nil {
		t.Fatal("all-zero counts must leave the degraded section absent")
	}
	rep.AttachDegraded(3, 1)
	path := filepath.Join(t.TempDir(), "report.json")
	if err := rep.Write(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var got Report
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Degraded == nil || got.Degraded.QuarantinedFaults != 3 || got.Degraded.DegradedMUTs != 1 {
		t.Fatalf("degraded section: %+v", got.Degraded)
	}
}

// TestRunFlagsFailpoints: -failpoints specs activate the registry at
// Start; a bad spec is a usage error before any work runs.
func TestRunFlagsFailpoints(t *testing.T) {
	defer failpoint.Deactivate()
	rf := &RunFlags{Progress: "off", Failpoints: "cli.report.write=error"}
	_, finish, err := rf.Start("test")
	if err != nil {
		t.Fatal(err)
	}
	defer finish()
	if !failpoint.Enabled() {
		t.Fatal("Start did not activate the failpoint registry")
	}
	rep := NewReport("test", nil)
	if err := rep.Write(filepath.Join(t.TempDir(), "r.json")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("report write under cli.report.write=error returned %v, want injected error", err)
	}
	failpoint.Deactivate()

	bad := &RunFlags{Progress: "off", Failpoints: "nosuchaction=frobnicate"}
	if _, _, err := bad.Start("test"); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeUsage}) {
		t.Fatalf("bad -failpoints spec returned %v, want usage error", err)
	}
}

func TestCanonicalJSONStripsShardTopology(t *testing.T) {
	mk := func(shards int) *Report {
		r := NewReport("corpus", nil)
		r.Corpus = []CorpusDesign{{Design: 0, Module: "top", Faults: 10, Detected: 7, FirstDigest: "abc"}}
		r.Shard = &ShardReport{
			Shards:          shards,
			WorkersPerShard: 2,
			Designs:         []ShardDesignTopology{{Module: "top", FaultRanges: Partition10(shards)}},
		}
		return r
	}
	a, err := mk(1).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	b, err := mk(4).CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatalf("canonical reports differ across shard counts:\n%s\nvs\n%s", a, b)
	}
	// The original report still carries the topology.
	if mk(4).Shard == nil {
		t.Fatal("CanonicalJSON mutated the receiver")
	}
	full, err := json.Marshal(mk(4))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(full, []byte(`"shard"`)) {
		t.Fatal("full report lost the shard section")
	}
}

// Partition10 fakes a partition of 10 faults without importing the
// shard package (cli must stay import-light; shard depends on cli).
func Partition10(shards int) [][2]int {
	out := make([][2]int, shards)
	for i := range out {
		out[i] = [2]int{0, 10}
	}
	return out
}

func TestChildEnvPropagation(t *testing.T) {
	rf := &RunFlags{Failpoints: "io.write=error:0.5:7"}
	env := ChildEnv(rf, map[string]string{"EXTRA_VAR": "x"})
	want := map[string]string{
		EnvFailpoints: "io.write=error:0.5:7",
		EnvProgress:   "off",
		"EXTRA_VAR":   "x",
	}
	got := map[string]string{}
	for _, kv := range env {
		k, v, _ := strings.Cut(kv, "=")
		got[k] = v
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %q, want %q", k, got[k], v)
		}
	}

	// Child side: activation from the environment.
	t.Setenv(EnvFailpoints, "cli.report.write=error:1:1")
	present, err := ActivateEnvFailpoints()
	if !present || err != nil {
		t.Fatalf("ActivateEnvFailpoints: present=%v err=%v", present, err)
	}
	defer failpoint.Deactivate()
	r := NewReport("t", nil)
	if err := r.Write(filepath.Join(t.TempDir(), "r.json")); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeIO}) {
		t.Fatalf("env-activated failpoint did not fire: %v", err)
	}

	t.Setenv(EnvFailpoints, "not a spec ===")
	if _, err := ActivateEnvFailpoints(); !errors.Is(err, &factorerr.Error{Code: factorerr.CodeUsage}) {
		t.Fatalf("malformed env spec: %v", err)
	}
}
