package cli

import (
	"os"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
)

// Environment variables carrying run settings into re-exec'd
// subprocesses. Any orchestrator that spawns worker processes (the
// shard orchestrator, the conformance crash hammer) builds the child
// environment with ChildEnv so chaos injection and telemetry behavior
// follow the run into every process it forks; the child side activates
// them with ActivateEnvFailpoints.
const (
	// EnvFailpoints is a failpoint spec (site=action[:prob[:seed]],...)
	// the child must activate before doing real work.
	EnvFailpoints = "FACTOR_FAILPOINTS"
	// EnvProgress overrides the child's -progress behavior. Subprocesses
	// default to "off": their stderr is usually a pipe multiplexed into
	// the parent's, where interleaved heartbeats are noise.
	EnvProgress = "FACTOR_PROGRESS"
)

// ChildEnv returns a copy of the current environment extended with the
// run settings of rf that subprocesses must inherit — the failpoint
// spec and the progress policy — plus any extra variables. A nil rf
// propagates no failpoints. Later entries win in os/exec, so extra and
// the rf-derived entries override inherited values of the same names.
func ChildEnv(rf *RunFlags, extra map[string]string) []string {
	env := os.Environ()
	if rf != nil && rf.Failpoints != "" {
		env = append(env, EnvFailpoints+"="+rf.Failpoints)
	}
	env = append(env, EnvProgress+"=off")
	for k, v := range extra {
		env = append(env, k+"="+v)
	}
	return env
}

// ActivateEnvFailpoints parses and activates the failpoint spec from
// $FACTOR_FAILPOINTS, reporting whether one was present. Child
// processes call it at the point injection should go live — after any
// recovery/resume loading that must succeed untouched (see the crash
// hammer) — rather than at process start.
func ActivateEnvFailpoints() (bool, error) {
	spec := os.Getenv(EnvFailpoints)
	if spec == "" {
		return false, nil
	}
	reg, err := failpoint.Parse(spec)
	if err != nil {
		return true, factorerr.New(factorerr.StageIO, factorerr.CodeUsage,
			"%s: %v", EnvFailpoints, err)
	}
	failpoint.Activate(reg)
	return true, nil
}
