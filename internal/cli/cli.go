// Package cli holds the runtime plumbing shared by the factor command
// suite (cmd/factor, cmd/atpg, cmd/testability, cmd/conformance,
// cmd/benchtables): signal-aware contexts with wall-clock budgets, the
// unified exit-code taxonomy, the machine-readable run report written
// by -report, and the shared observability flags (-trace, -progress,
// -cpuprofile, -memprofile) that bracket a run with telemetry.
//
// Exit codes (see DESIGN.md §9):
//
//	0  success
//	1  input or analysis error (nothing usable produced)
//	2  usage error
//	3  partial failure: some results were produced and flushed
//	   (a failed MUT among successes, a canceled or timed-out run,
//	   quarantined faults)
package cli

import (
	"context"
	"fmt"
	"os"
	"time"

	"factor/internal/factorerr"
)

// SignalContext is SignalContextFrom rooted at context.Background() —
// the one-shot CLI entry point (see shutdown.go for the server-side
// graceful-shutdown helpers built on the same wiring).
func SignalContext(timeout time.Duration) (ctx context.Context, stop context.CancelFunc) {
	return SignalContextFrom(context.Background(), timeout)
}

// Fatal prints the structured error chain to stderr and exits with the
// taxonomy code for err.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, factorerr.FormatChain(err))
	os.Exit(factorerr.ExitCode(err))
}

// Usagef prints a usage complaint and exits 2.
func Usagef(tool, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(factorerr.ExitUsage)
}

// Warn prints a non-fatal structured error (e.g. a quarantined fault
// or MUT) to stderr.
func Warn(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: warning: %s\n", tool, factorerr.FormatChain(err))
}
