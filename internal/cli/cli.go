// Package cli holds the runtime plumbing shared by the factor command
// suite (cmd/factor, cmd/atpg, cmd/testability, cmd/conformance,
// cmd/benchtables): signal-aware contexts with wall-clock budgets, the
// unified exit-code taxonomy, the machine-readable run report written
// by -report, and the shared observability flags (-trace, -progress,
// -cpuprofile, -memprofile) that bracket a run with telemetry.
//
// Exit codes (see DESIGN.md §9):
//
//	0  success
//	1  input or analysis error (nothing usable produced)
//	2  usage error
//	3  partial failure: some results were produced and flushed
//	   (a failed MUT among successes, a canceled or timed-out run,
//	   quarantined faults)
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"factor/internal/factorerr"
)

// SignalContext returns a context that is canceled on SIGINT or
// SIGTERM and, when timeout > 0, after the wall-clock budget expires.
//
// The returned stop func is the single release point for every
// resource the context holds: it unregisters the signal handler and
// cancels the timeout timer, on both the signal path and the timeout
// path (there is no separate cancel to leak). stop is idempotent and
// safe for concurrent use; callers should defer it immediately. After
// the first signal cancels the context, a second signal falls back to
// the default handler and kills the process (the standard
// double-Ctrl-C escape hatch).
func SignalContext(timeout time.Duration) (ctx context.Context, stop context.CancelFunc) {
	ctx = context.Background()
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	ctx, sstop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			sstop()
			cancel()
		})
	}
}

// Fatal prints the structured error chain to stderr and exits with the
// taxonomy code for err.
func Fatal(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", tool, factorerr.FormatChain(err))
	os.Exit(factorerr.ExitCode(err))
}

// Usagef prints a usage complaint and exits 2.
func Usagef(tool, format string, args ...interface{}) {
	fmt.Fprintf(os.Stderr, tool+": "+format+"\n", args...)
	os.Exit(factorerr.ExitUsage)
}

// Warn prints a non-fatal structured error (e.g. a quarantined fault
// or MUT) to stderr.
func Warn(tool string, err error) {
	fmt.Fprintf(os.Stderr, "%s: warning: %s\n", tool, factorerr.FormatChain(err))
}
