package cli

// Satellite regression: the three report emission paths — Write to a
// file, WriteTo an io.Writer, Render in memory — must produce the same
// byte string. The service's `cmp` between an HTTP-served report and
// the CLI's -report file is only sound if this holds.

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"factor/internal/factorerr"
	"factor/internal/telemetry"
)

// fullReport builds a report exercising every section.
func fullReport() *Report {
	partial := factorerr.New(factorerr.StageATPG, factorerr.CodePartial, "2 faults quarantined")
	r := NewReport("factor", partial)
	r.MUTs = []MUTReport{
		{Path: "u_core.u_alu", OK: true, Gates: 120, PIs: 33, POs: 17, PIERs: 3},
		{Path: "u_core.u_mul", OK: false},
	}
	r.ATPG = &ATPGReport{
		TotalFaults: 240, Detected: 200, DetectedRandom: 150, DetectedDet: 50,
		Untestable: 30, Aborted: 8, Quarantined: 2, Tests: 41,
		Coverage: 83.33, Efficiency: 95.83,
	}
	r.FaultSim = &FaultSimReport{
		Sequences: 41, Detected: 200, FirstDigest: "sha256:abcd", Batches: 4, Cycles: 512, Events: 9001,
	}
	r.Shard = &ShardReport{Shards: 2, WorkersPerShard: 3}
	r.AttachDegraded(2, 1)
	tel := telemetry.New()
	tel.AddCounter("atpg.backtracks", 17)
	tel.AddCounter("faultsim.events", 9001)
	r.AttachTelemetry(tel)
	return r
}

func TestReportWritePathsByteIdentical(t *testing.T) {
	r := fullReport()

	rendered, err := r.Render()
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if len(rendered) == 0 || rendered[len(rendered)-1] != '\n' {
		t.Fatal("rendered report does not end in a newline")
	}

	var buf bytes.Buffer
	n, err := r.WriteTo(&buf)
	if err != nil {
		t.Fatalf("WriteTo: %v", err)
	}
	if n != int64(buf.Len()) {
		t.Fatalf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	if !bytes.Equal(buf.Bytes(), rendered) {
		t.Fatal("WriteTo bytes differ from Render")
	}

	path := filepath.Join(t.TempDir(), "report.json")
	if err := r.Write(path); err != nil {
		t.Fatalf("Write: %v", err)
	}
	onDisk, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, rendered) {
		t.Fatal("file bytes differ from the in-memory render")
	}

	// Render is stable under repetition (no map-order or pointer
	// nondeterminism leaks into the bytes).
	again, err := fullReport().Render()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, rendered) {
		t.Fatal("two renders of equal reports differ")
	}
}

func TestReportCanonicalJSONStripsShard(t *testing.T) {
	r := fullReport()
	canon, err := r.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(canon, []byte(`"shard"`)) {
		t.Fatal("CanonicalJSON kept the shard section")
	}
	if r.Shard == nil {
		t.Fatal("CanonicalJSON mutated the receiver")
	}
	// A topology change must not affect the canonical bytes.
	r.Shard = &ShardReport{Shards: 9, WorkersPerShard: 1}
	again, err := r.CanonicalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, canon) {
		t.Fatal("canonical bytes changed with shard topology")
	}
}
