package cli

// Shared observability flags. Every command registers the same flag
// surface via RegisterRunFlags, then brackets its run between Start
// and the returned finish func:
//
//	rf := cli.RegisterRunFlags()
//	flag.Parse()
//	tel, finish, err := rf.Start("factor")
//	...
//	ctx = telemetry.NewContext(ctx, tel)
//	... run pipeline ...
//	finish() // stop CPU profile, write heap profile and trace
//
// Start wires -cpuprofile/-memprofile to runtime/pprof, -trace to the
// telemetry Chrome-trace buffer, and -progress to the stderr
// heartbeat (auto: only when stderr is a terminal).

import (
	"flag"
	"fmt"
	"log/slog"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/telemetry"
)

// RunFlags carries the observability flag values shared by the command
// suite.
type RunFlags struct {
	Trace      string
	Progress   string
	CPUProfile string
	MemProfile string
	Failpoints string
	// LogFormat is the -log value: "json", "text" or "off". Structured
	// logs go to stderr and are strictly operational — nothing logged
	// ever reaches a report, so report bytes are identical with logging
	// on or off.
	LogFormat string

	logger *slog.Logger // resolved by Start; nil until then
}

// RegisterRunFlags registers -trace, -progress, -cpuprofile,
// -memprofile, -failpoints and -log on the default flag set. Call
// before flag.Parse.
func RegisterRunFlags() *RunFlags {
	rf := &RunFlags{}
	flag.StringVar(&rf.Trace, "trace", "", "write a Chrome trace-event JSON `file` (load in Perfetto or chrome://tracing)")
	flag.StringVar(&rf.Progress, "progress", "auto", "live progress heartbeat on stderr: auto (TTY only), on, off")
	flag.StringVar(&rf.CPUProfile, "cpuprofile", "", "write a CPU profile to `file` bracketing the run")
	flag.StringVar(&rf.MemProfile, "memprofile", "", "write a heap profile to `file` at the end of the run")
	flag.StringVar(&rf.Failpoints, "failpoints", "", "inject deterministic faults at named `sites`: site=action[:prob[:seed]],... (actions: error, shortwrite, enospc, panic, delay, cancel, kill)")
	flag.StringVar(&rf.LogFormat, "log", "off", "structured request/job logs on stderr via log/slog: json, text, off")
	return rf
}

// Logger is the run's structured logger, resolved from -log by Start.
// It is never nil: before Start, or with -log off, it discards. The
// logger is an operational surface only — handlers must never derive
// report material from it.
func (rf *RunFlags) Logger() *slog.Logger {
	if rf == nil || rf.logger == nil {
		return slog.New(slog.DiscardHandler)
	}
	return rf.logger
}

// newLogger maps a -log value to a slog handler on stderr.
func newLogger(format, tool string) (*slog.Logger, error) {
	var h slog.Handler
	switch format {
	case "json":
		h = slog.NewJSONHandler(os.Stderr, nil)
	case "text":
		h = slog.NewTextHandler(os.Stderr, nil)
	case "off", "":
		h = slog.DiscardHandler
	default:
		return nil, factorerr.New(factorerr.StageIO, factorerr.CodeUsage,
			"-log must be json, text or off (got %q)", format)
	}
	return slog.New(h).With("tool", tool), nil
}

// Start validates the flags and opens the run's telemetry handle. It
// starts the CPU profile immediately; the returned finish func stops
// it and writes the heap profile and trace file. finish is safe to
// call exactly once, normally right before writing reports/output, and
// returns the first error it hit.
func (rf *RunFlags) Start(tool string) (*telemetry.Telemetry, func() error, error) {
	if rf.Failpoints != "" {
		reg, err := failpoint.Parse(rf.Failpoints)
		if err != nil {
			return nil, nil, factorerr.New(factorerr.StageIO, factorerr.CodeUsage,
				"-failpoints: %v", err)
		}
		failpoint.Activate(reg)
	}
	logger, err := newLogger(rf.LogFormat, tool)
	if err != nil {
		return nil, nil, err
	}
	rf.logger = logger
	tel := telemetry.New()
	tel.SetTool(tool)
	if rf.Trace != "" {
		tel.EnableTrace()
	}
	progress := rf.Progress
	if env := os.Getenv(EnvProgress); env != "" && (progress == "" || progress == "auto") {
		// A parent orchestrator's policy wins over the "auto" default,
		// but never over an explicit flag on this process.
		progress = env
	}
	switch progress {
	case "on":
		tel.EnableProgress(os.Stderr, 0)
	case "auto", "":
		if telemetry.StderrIsTerminal() {
			tel.EnableProgress(os.Stderr, 0)
		}
	case "off":
	default:
		return nil, nil, factorerr.New(factorerr.StageIO, factorerr.CodeUsage,
			"-progress must be auto, on or off (got %q)", progress)
	}

	var cpuFile *os.File
	if rf.CPUProfile != "" {
		f, err := os.Create(rf.CPUProfile)
		if err != nil {
			return nil, nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
		}
		cpuFile = f
	}

	finish := func() error {
		var first error
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil && first == nil {
				first = factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
			}
		}
		if rf.MemProfile != "" {
			if err := writeHeapProfile(rf.MemProfile); err != nil && first == nil {
				first = err
			}
		}
		if rf.Trace != "" {
			if err := tel.WriteTraceFile(rf.Trace); err != nil && first == nil {
				first = factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
			}
		}
		// Surface injection activity so a chaos run's log shows which
		// sites actually fired (stderr only — never the report).
		if s := failpoint.Active().Stats(); s != "" {
			for _, line := range strings.Split(strings.TrimSuffix(s, "\n"), "\n") {
				fmt.Fprintf(os.Stderr, "failpoint %s\n", line)
			}
		}
		return first
	}
	return tel, finish, nil
}

// writeHeapProfile snapshots the heap after a GC so the profile
// reflects live objects, matching go test -memprofile behavior.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	if err := f.Close(); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return nil
}

// ProgressInterval re-exports the default heartbeat rate limit for
// commands that print their own progress lines.
const ProgressInterval = telemetry.DefaultProgressInterval
