package cli

import (
	"encoding/json"
	"io"
	"os"

	"factor/internal/factorerr"
	"factor/internal/failpoint"
	"factor/internal/telemetry"
)

// Report is the machine-readable run summary written by -report. The
// schema is shared by all tools; tool-specific sections are omitted
// when empty.
type Report struct {
	Tool     string `json:"tool"`
	Status   string `json:"status"` // "ok", "partial", "error"
	ExitCode int    `json:"exit_code"`

	// Errors are the leaf failures of the run, one entry per
	// quarantined MUT/fault or interruption.
	Errors []ReportError `json:"errors,omitempty"`

	// MUTs reports per-MUT outcomes of a multi-MUT factor run.
	MUTs []MUTReport `json:"muts,omitempty"`

	// ATPG reports the test-generation outcome of an atpg run.
	ATPG *ATPGReport `json:"atpg,omitempty"`

	// FaultSim reports the first-detection replay of the generated
	// test suite (the full-pipeline runs of `factor -atpg` and the job
	// server). Every field is deterministic: bit-identical for any
	// worker count and across checkpoint/resume.
	FaultSim *FaultSimReport `json:"fault_sim,omitempty"`

	// Telemetry carries the run's deterministic work counters. Wall
	// times are deliberately excluded so the section is byte-identical
	// for any worker count and across a checkpoint/resume split
	// (encoding/json marshals map keys sorted).
	Telemetry *TelemetryReport `json:"telemetry,omitempty"`

	// Degraded summarizes quarantine activity — how much of the run
	// survived in degraded form rather than failing outright. Both
	// counts are deterministic across worker counts (quarantine
	// boundaries key off work-item identity, never scheduling).
	Degraded *DegradedReport `json:"degraded,omitempty"`

	// Corpus reports per-design outcomes of a corpus run. Every field
	// is topology-invariant: the same values for any shards × workers
	// combination and across checkpoint/resume.
	Corpus []CorpusDesign `json:"corpus,omitempty"`

	// Shard describes the process topology of a sharded run — the one
	// section that legitimately differs across shard counts. Comparing
	// reports across topologies means comparing CanonicalJSON (or
	// jq 'del(.shard)').
	Shard *ShardReport `json:"shard,omitempty"`
}

// ShardReport is the report's shard-topology section: self-describing
// (which process simulated which fault range), deliberately segregated
// from the result payload so the rest of the report stays
// byte-comparable across topologies.
type ShardReport struct {
	Shards          int                   `json:"shards"`
	WorkersPerShard int                   `json:"workers_per_shard"`
	Procs           int                   `json:"procs,omitempty"`
	Designs         []ShardDesignTopology `json:"designs,omitempty"`
}

// ShardDesignTopology is one design's fault-range partition.
type ShardDesignTopology struct {
	Module string `json:"module"`
	// FaultRanges holds one half-open [lo,hi) pair per shard.
	FaultRanges [][2]int `json:"fault_ranges"`
	// DiedShards lists shard indices that degraded (empty on health).
	DiedShards []int `json:"died_shards,omitempty"`
}

// CorpusDesign is one design's outcome in a corpus run.
type CorpusDesign struct {
	Design   int     `json:"design"`
	Seed     int64   `json:"seed"`
	Module   string  `json:"module"`
	Gates    int     `json:"gates"`
	Faults   int     `json:"faults"`
	Detected int     `json:"detected"`
	Coverage float64 `json:"fault_coverage"`
	// FirstDigest fingerprints the full per-fault first-detection
	// vector; equal digests mean byte-equal per-fault results.
	FirstDigest string `json:"first_digest"`
	Quarantined int    `json:"quarantined,omitempty"`
	Degraded    bool   `json:"degraded,omitempty"`
	Vacuous     bool   `json:"vacuous,omitempty"`
}

// CanonicalJSON marshals the report with the topology-descriptive
// Shard section stripped: the byte string that must be identical for
// any shards × workers combination of the same run.
func (r *Report) CanonicalJSON() ([]byte, error) {
	c := *r
	c.Shard = nil
	data, err := json.MarshalIndent(&c, "", "  ")
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return append(data, '\n'), nil
}

// DegradedReport is the report's quarantine section.
type DegradedReport struct {
	// QuarantinedFaults counts faults classified neither detected nor
	// untestable because their search or simulation batch was
	// quarantined (panic or injected failure).
	QuarantinedFaults int `json:"quarantined_faults"`
	// DegradedMUTs counts MUTs that failed extraction/transform and
	// were skipped while sibling MUTs continued.
	DegradedMUTs int `json:"degraded_muts"`
}

// AttachDegraded records quarantine counts; all-zero counts leave the
// section absent so healthy reports are unchanged.
func (r *Report) AttachDegraded(quarantinedFaults, degradedMUTs int) {
	if quarantinedFaults == 0 && degradedMUTs == 0 {
		return
	}
	r.Degraded = &DegradedReport{
		QuarantinedFaults: quarantinedFaults,
		DegradedMUTs:      degradedMUTs,
	}
}

// TelemetryReport is the report's deterministic-counter section.
type TelemetryReport struct {
	Counters map[string]uint64 `json:"counters"`
}

// AttachTelemetry snapshots t's counters into the report; a nil or
// counter-less handle leaves the section absent.
func (r *Report) AttachTelemetry(t *telemetry.Telemetry) {
	counters := t.Counters()
	if len(counters) == 0 {
		return
	}
	r.Telemetry = &TelemetryReport{Counters: counters}
}

// ReportError is one structured failure.
type ReportError struct {
	Stage   string `json:"stage,omitempty"`
	Code    string `json:"code,omitempty"`
	MUT     string `json:"mut,omitempty"`
	Fault   string `json:"fault,omitempty"`
	Message string `json:"message"`
}

// MUTReport is the per-MUT outcome of a factor run.
type MUTReport struct {
	Path  string `json:"path"`
	OK    bool   `json:"ok"`
	Gates int    `json:"gates,omitempty"`
	PIs   int    `json:"pis,omitempty"`
	POs   int    `json:"pos,omitempty"`
	PIERs int    `json:"piers,omitempty"`
}

// ATPGReport is the test-generation outcome of an atpg run.
type ATPGReport struct {
	TotalFaults    int     `json:"total_faults"`
	Detected       int     `json:"detected"`
	DetectedRandom int     `json:"detected_random"`
	DetectedDet    int     `json:"detected_deterministic"`
	Untestable     int     `json:"untestable"`
	Aborted        int     `json:"aborted"`
	NotAttempted   int     `json:"not_attempted"`
	Quarantined    int     `json:"quarantined"`
	Tests          int     `json:"tests"`
	Coverage       float64 `json:"fault_coverage"`
	Efficiency     float64 `json:"fault_efficiency"`
	Interrupted    bool    `json:"interrupted"`
	Resumed        bool    `json:"resumed"`
}

// FaultSimReport is the first-detection replay section of a
// full-pipeline run: the generated suite simulated once more as a
// fault grader would, summarized by the per-fault first-detection
// digest and the engine's invariant work counters.
type FaultSimReport struct {
	Sequences int `json:"sequences"`
	Detected  int `json:"detected"`
	// FirstDigest fingerprints the full per-fault first-detection
	// vector; equal digests mean byte-equal per-fault results.
	FirstDigest string `json:"first_digest"`
	Batches     uint64 `json:"batches"`
	Cycles      uint64 `json:"cycles"`
	Events      uint64 `json:"events"`
}

// NewReport seeds a report for a finished run: the exit code and status
// come from err via the unified taxonomy, the error list from its
// flattened leaves.
func NewReport(tool string, err error) *Report {
	r := &Report{Tool: tool, ExitCode: factorerr.ExitCode(err)}
	switch r.ExitCode {
	case factorerr.ExitOK:
		r.Status = "ok"
	case factorerr.ExitPartial:
		r.Status = "partial"
	default:
		r.Status = "error"
	}
	r.Errors = ReportErrors(err)
	return r
}

// ReportErrors flattens err into report entries, preserving structured
// tags where present.
func ReportErrors(err error) []ReportError {
	var out []ReportError
	for _, leaf := range factorerr.Flatten(err) {
		re := ReportError{Message: leaf.Error()}
		if fe, ok := leaf.(*factorerr.Error); ok {
			re.Stage = string(fe.Stage)
			re.Code = fe.Code.String()
			re.MUT = fe.MUT
			re.Fault = fe.Fault
		}
		out = append(out, re)
	}
	return out
}

// Render marshals the report to its canonical byte string
// (pretty-printed, trailing newline) — the exact bytes Write puts in a
// file and the job server serves over HTTP, so `cmp` between the two
// is meaningful.
func (r *Report) Render() ([]byte, error) {
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return append(data, '\n'), nil
}

// WriteTo renders the report into w; the in-memory path service
// handlers and tests use instead of a file.
func (r *Report) WriteTo(w io.Writer) (int64, error) {
	data, err := r.Render()
	if err != nil {
		return 0, err
	}
	n, err := w.Write(data)
	if err != nil {
		err = factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return int64(n), err
}

// Write marshals the report to path (pretty-printed, trailing newline).
func (r *Report) Write(path string) error {
	// Failpoint cli.report.write: the last write of a run — chaos runs
	// verify a failure here surfaces as a distinct exit, not a
	// silently missing report.
	if err := failpoint.Hit("cli.report.write"); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	data, err := r.Render()
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return nil
}
