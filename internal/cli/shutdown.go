package cli

import (
	"context"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"factor/internal/factorerr"
)

// SignalContextFrom derives a context from parent that is canceled on
// SIGINT or SIGTERM and, when timeout > 0, after the wall-clock budget
// expires.
//
// The returned stop func is the single release point for every
// resource the context holds: it unregisters the signal handler and
// cancels the timeout timer, on both the signal path and the timeout
// path (there is no separate cancel to leak). stop is idempotent and
// safe for concurrent use; callers should defer it immediately. After
// the first signal cancels the context, a second signal falls back to
// the default handler and kills the process (the standard
// double-Ctrl-C escape hatch).
func SignalContextFrom(parent context.Context, timeout time.Duration) (ctx context.Context, stop context.CancelFunc) {
	ctx = parent
	cancel := context.CancelFunc(func() {})
	if timeout > 0 {
		ctx, cancel = context.WithTimeout(ctx, timeout)
	}
	ctx, sstop := signal.NotifyContext(ctx, os.Interrupt, syscall.SIGTERM)
	var once sync.Once
	return ctx, func() {
		once.Do(func() {
			sstop()
			cancel()
		})
	}
}

// ShutdownOnSignal is the graceful-shutdown helper for long-running
// servers: it blocks until ctx is canceled (the first SIGINT/SIGTERM
// when ctx came from SignalContextFrom), then runs each step under a
// fresh deadline context — drain the listener, drain the job queue —
// and collects their errors. A step that outlives the deadline
// receives the expired context and is expected to force-stop.
//
// The deadline context is deliberately NOT derived from ctx: ctx is
// already canceled by the time the steps run, and the whole point of
// draining is to keep working briefly after the stop signal.
func ShutdownOnSignal(ctx context.Context, deadline time.Duration, steps ...func(context.Context) error) error {
	<-ctx.Done()
	return RunShutdown(deadline, steps...)
}

// RunShutdown runs the shutdown steps immediately (the body of
// ShutdownOnSignal, reusable when the trigger is not a signal).
func RunShutdown(deadline time.Duration, steps ...func(context.Context) error) error {
	dctx := context.Background()
	if deadline > 0 {
		var cancel context.CancelFunc
		dctx, cancel = context.WithTimeout(dctx, deadline)
		defer cancel()
	}
	var errs []error
	for _, step := range steps {
		if err := step(dctx); err != nil {
			errs = append(errs, err)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return factorerr.Collect(errs)
}
