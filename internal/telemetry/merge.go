package telemetry

// Cross-process trace assembly. A child process (a shard worker, a
// re-exec'd job) exports its completed spans as portable SpanRecords;
// the orchestrator imports each child's buffer under a distinct
// Perfetto pid and an optional timeline offset, so a sharded run loads
// as ONE trace with one process lane per shard instead of N unrelated
// files. The parent keeps pid 0; children get the pids the caller
// assigns (the shard orchestrator uses 1 + shard ordinal — see
// DESIGN.md §16 for the scheme).

import "sort"

// SpanRecord is one completed span in portable form: microsecond
// timestamps relative to the owning process's telemetry start. It is
// the JSON payload shard children embed in their result frames.
type SpanRecord struct {
	Name string            `json:"name"`
	TS   int64             `json:"ts"`            // µs since process telemetry start
	Dur  int64             `json:"dur"`           // µs
	TID  int64             `json:"tid,omitempty"` // worker lane
	Args map[string]string `json:"args,omitempty"`
}

// ExportSpans snapshots the buffered trace spans as portable records,
// in buffer order. Only complete ("X") span events are exported —
// metadata and counter events are reconstructed by the importer's
// WriteTrace. Returns nil when tracing is off or the handle is nil.
func (t *Telemetry) ExportSpans() []SpanRecord {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.tracing || len(t.events) == 0 {
		return nil
	}
	out := make([]SpanRecord, 0, len(t.events))
	for _, e := range t.events {
		if e.Ph != "X" {
			continue
		}
		rec := SpanRecord{Name: e.Name, TS: e.TS, Dur: e.Dur, TID: e.TID}
		if len(e.args) > 0 {
			rec.Args = make(map[string]string, len(e.args))
			for _, a := range e.args {
				rec.Args[a.k] = a.v
			}
		}
		out = append(out, rec)
	}
	return out
}

// MergeProcess imports a child process's exported spans under pid,
// labeling its process lane with label and shifting every timestamp by
// offsetUS onto this handle's timeline (pass the parent-side span
// begin of the child's lifetime to line the lanes up; 0 keeps the
// child's own zero). Imported spans join the trace buffer only — they
// never touch the span summary or the counter plane. No-op on a nil
// handle or when tracing is disabled.
func (t *Telemetry) MergeProcess(pid int64, label string, offsetUS int64, spans []SpanRecord) {
	if t == nil || len(spans) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.tracing {
		return
	}
	if t.procs == nil {
		t.procs = map[int64]string{}
	}
	if label != "" {
		t.procs[pid] = label
	}
	for _, rec := range spans {
		ev := traceEvent{
			Name: rec.Name,
			Ph:   "X",
			TS:   rec.TS + offsetUS,
			Dur:  rec.Dur,
			PID:  pid,
			TID:  rec.TID,
		}
		if len(rec.Args) > 0 {
			keys := make([]string, 0, len(rec.Args))
			for k := range rec.Args {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				ev.args = append(ev.args, spanArg{k, rec.Args[k]})
			}
		}
		t.events = append(t.events, ev)
	}
}
