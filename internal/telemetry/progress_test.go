package telemetry

// Concurrency contract of the Progressf CAS rate limiter: under N
// goroutines hammering the heartbeat with a frozen fake clock, at most
// one line is emitted per interval window, and every emitted line is a
// single whole line — no interleaved partial writes.

import (
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// recordingWriter captures each Write call as one unit, so a torn or
// interleaved line would show up as a record that is not exactly one
// "\n"-terminated line.
type recordingWriter struct {
	mu     sync.Mutex
	writes []string
}

func (w *recordingWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	w.writes = append(w.writes, string(p))
	w.mu.Unlock()
	return len(p), nil
}

func TestProgressfRateLimitUnderConcurrency(t *testing.T) {
	const (
		interval   = 100 * time.Millisecond
		goroutines = 16
		callsPer   = 200
		windows    = 5
	)
	// A settable clock: every goroutine reads the same frozen instant,
	// so within one window exactly one CAS can win.
	var nowNanos atomic.Int64
	base := time.Unix(2000, 0)
	nowNanos.Store(base.UnixNano())

	tel := New()
	tel.clock = func() time.Time { return time.Unix(0, nowNanos.Load()) }
	w := &recordingWriter{}
	tel.EnableProgress(w, interval)

	hammer := func(window int) {
		var wg sync.WaitGroup
		var barrier sync.WaitGroup
		barrier.Add(1)
		for g := 0; g < goroutines; g++ {
			wg.Add(1)
			go func(g int) {
				defer wg.Done()
				barrier.Wait()
				for i := 0; i < callsPer; i++ {
					tel.Progressf("window=%d worker=%d call=%d", window, g, i)
				}
			}(g)
		}
		barrier.Done()
		wg.Wait()
	}

	for win := 0; win < windows; win++ {
		// Advance exactly one interval: the next window admits exactly
		// one more emit.
		nowNanos.Store(base.Add(time.Duration(win) * interval).UnixNano())
		hammer(win)
	}

	w.mu.Lock()
	defer w.mu.Unlock()
	// last-emit starts at the epoch, so window 0 emits immediately and
	// each subsequent window (exactly one interval later) admits
	// exactly one more winner.
	if len(w.writes) != windows {
		t.Fatalf("emitted %d lines over %d windows, want exactly %d:\n%s",
			len(w.writes), windows, windows, strings.Join(w.writes, ""))
	}
	seen := map[string]bool{}
	for _, rec := range w.writes {
		if !strings.HasSuffix(rec, "\n") || strings.Count(rec, "\n") != 1 {
			t.Errorf("interleaved or partial heartbeat write: %q", rec)
		}
		if !strings.HasPrefix(rec, "window=") {
			t.Errorf("malformed heartbeat line: %q", rec)
		}
		win, _, _ := strings.Cut(strings.TrimPrefix(rec, "window="), " ")
		if seen[win] {
			t.Errorf("window %s emitted more than once:\n%s", win, strings.Join(w.writes, ""))
		}
		seen[win] = true
	}
}

func TestProgressfDisabledCostsOneAtomicLoad(t *testing.T) {
	tel := New() // progress never enabled
	if n := testing.AllocsPerRun(100, func() {
		tel.Progressf("ignored %d", 1)
	}); n != 0 {
		t.Errorf("disabled Progressf allocates %v/op", n)
	}
	var nilTel *Telemetry
	nilTel.Progressf("ignored")
}
