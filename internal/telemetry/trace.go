package telemetry

// Chrome trace-event export: completed spans become complete ("X")
// events and deterministic counters become a trailing instant event,
// wrapped in the {"traceEvents": [...]} object form that Perfetto and
// chrome://tracing load directly. Timestamps are microseconds relative
// to handle creation.

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"
)

// traceEvent is one entry of the trace-event JSON array. Only the
// fields the viewers need are emitted; args are marshaled from the
// span's ordered key/value list.
type traceEvent struct {
	Name string `json:"name"`
	Ph   string `json:"ph"`
	TS   int64  `json:"ts"`
	Dur  int64  `json:"dur,omitempty"`
	PID  int64  `json:"pid"`
	TID  int64  `json:"tid"`
	// Scope is set on instant events ("i"); "p" = process-scoped.
	Scope string `json:"s,omitempty"`
	args  []spanArg
	// rawArgs overrides args for events with non-string values.
	rawArgs map[string]uint64
}

// MarshalJSON flattens the span args into the "args" object expected by
// the trace viewers, preserving numeric counter values.
func (e traceEvent) MarshalJSON() ([]byte, error) {
	type alias traceEvent // strip methods to avoid recursion
	var buf []byte
	base, err := json.Marshal(alias(e))
	if err != nil {
		return nil, err
	}
	if len(e.args) == 0 && len(e.rawArgs) == 0 {
		return base, nil
	}
	var argsJSON []byte
	if len(e.rawArgs) > 0 {
		argsJSON, err = json.Marshal(e.rawArgs)
	} else {
		m := make(map[string]string, len(e.args))
		for _, a := range e.args {
			m[a.k] = a.v
		}
		argsJSON, err = json.Marshal(m)
	}
	if err != nil {
		return nil, err
	}
	buf = append(buf, base[:len(base)-1]...)
	buf = append(buf, `,"args":`...)
	buf = append(buf, argsJSON...)
	buf = append(buf, '}')
	return buf, nil
}

// EnableTrace turns on span buffering for later export via WriteTrace.
// Call it before the first span of interest ends; spans completed
// earlier contribute to the summary but not to the trace.
func (t *Telemetry) EnableTrace() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tracing = true
	t.mu.Unlock()
}

// TraceEnabled reports whether span buffering is on.
func (t *Telemetry) TraceEnabled() bool {
	if t == nil {
		return false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.tracing
}

// WriteTrace emits the buffered spans plus a final counters instant
// event as Chrome trace-event JSON. Events are sorted by begin time
// (ties broken longest-first so enclosing spans precede their children)
// to keep chrome://tracing's nesting inference happy.
func (t *Telemetry) WriteTrace(w io.Writer) error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	events := make([]traceEvent, len(t.events))
	copy(events, t.events)
	tool := t.tool
	procs := make([]traceEvent, 0, len(t.procs))
	for pid, name := range t.procs {
		procs = append(procs, traceEvent{
			Name: "process_name", Ph: "M", PID: pid,
			args: []spanArg{{"name", name}},
		})
	}
	counters := make(map[string]uint64, len(t.counters))
	for name, c := range t.counters {
		counters[name] = c.Value()
	}
	t.mu.Unlock()
	sort.Slice(procs, func(i, j int) bool { return procs[i].PID < procs[j].PID })

	sort.SliceStable(events, func(i, j int) bool {
		if events[i].TS != events[j].TS {
			return events[i].TS < events[j].TS
		}
		return events[i].Dur > events[j].Dur
	})

	all := make([]traceEvent, 0, len(events)+len(procs)+2)
	if tool != "" {
		// Process-name metadata event labels this process's pid 0 lane;
		// merged child processes follow with their own pids.
		all = append(all, traceEvent{
			Name: "process_name", Ph: "M",
			args: []spanArg{{"name", tool}},
		})
	}
	all = append(all, procs...)
	all = append(all, events...)
	if len(counters) > 0 {
		ts := t.Elapsed().Microseconds()
		all = append(all, traceEvent{
			Name: "counters", Ph: "i", TS: ts, Scope: "p",
			rawArgs: counters,
		})
	}

	if _, err := io.WriteString(w, `{"traceEvents":[`); err != nil {
		return err
	}
	enc, err := json.Marshal(all)
	if err != nil {
		return err
	}
	// json.Marshal of the slice includes the brackets; strip them so we
	// can keep the wrapper object literal above.
	if _, err := w.Write(enc[1 : len(enc)-1]); err != nil {
		return err
	}
	_, err = io.WriteString(w, "]}\n")
	return err
}

// WriteTraceFile writes the trace to path (0644), creating or
// truncating it.
func (t *Telemetry) WriteTraceFile(path string) error {
	if t == nil {
		return nil
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("telemetry: create trace: %w", err)
	}
	if err := t.WriteTrace(f); err != nil {
		f.Close()
		return fmt.Errorf("telemetry: write trace: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("telemetry: close trace: %w", err)
	}
	return nil
}
