// Package telemetry is the pipeline's observability layer. It keeps two
// strictly separated planes:
//
//   - Deterministic counters: monotonic work counters (tokens parsed,
//     gates synthesized, PODEM backtracks, fault-sim events, ...) whose
//     final values are bit-identical for any worker count and across a
//     checkpoint/resume split. Producers must only count work that is
//     part of the committed result (e.g. at ordered-merge time, never at
//     speculative-search time); the counters themselves are plain
//     atomics, so shard contributions may arrive in any order.
//
//   - Wall-clock spans: nested stage/MUT/worker timings aggregated into
//     a per-stage summary and, when tracing is enabled, buffered as
//     Chrome trace-event JSON loadable in Perfetto or chrome://tracing.
//     Spans are diagnostic only and are never part of the deterministic
//     contract.
//
// The nil *Telemetry is a valid, fully disabled handle: every method is
// a nil-safe no-op and allocation-free, so instrumented hot loops cost
// nothing when observability is off.
package telemetry

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a single monotonic work counter. The zero value is ready
// to use; a nil Counter ignores Add and reads as zero.
type Counter struct {
	n atomic.Uint64
}

// Add increments the counter by n. Safe for concurrent use; no-op on a
// nil receiver.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.n.Add(n)
}

// Value returns the current count (zero for a nil receiver).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.n.Load()
}

// spanStat aggregates completed spans that share a name.
type spanStat struct {
	count int
	total time.Duration
}

// Telemetry is the per-run observability handle. Create one with New,
// attach it to a context with NewContext, and recover it anywhere in
// the pipeline with FromContext. A nil handle disables everything.
type Telemetry struct {
	start time.Time
	clock func() time.Time // injectable for deterministic trace tests

	tool string

	mu       sync.Mutex
	counters map[string]*Counter
	stats    map[string]*spanStat
	events   []traceEvent
	tracing  bool
	// procs labels imported child-process trace lanes (pid → name);
	// pid 0 is this process, labeled by tool. See merge.go.
	procs map[int64]string

	prog progress
}

// New returns an enabled telemetry handle. Tracing and progress start
// disabled; counters and span aggregation are always on for a non-nil
// handle.
func New() *Telemetry {
	t := &Telemetry{
		clock:    time.Now,
		counters: make(map[string]*Counter),
		stats:    make(map[string]*spanStat),
	}
	t.start = t.clock()
	return t
}

// SetTool records the command name; it labels the trace process and the
// summary header.
func (t *Telemetry) SetTool(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.tool = name
	t.mu.Unlock()
}

// Counter returns the named counter, registering it on first use.
// Returns nil (a valid no-op counter) on a nil handle. Counter names
// are dotted stage-qualified identifiers, e.g. "atpg.backtracks".
func (t *Telemetry) Counter(name string) *Counter {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	c, ok := t.counters[name]
	if !ok {
		c = new(Counter)
		t.counters[name] = c
	}
	t.mu.Unlock()
	return c
}

// AddCounter is shorthand for Counter(name).Add(n).
func (t *Telemetry) AddCounter(name string, n uint64) {
	if t == nil {
		return
	}
	t.Counter(name).Add(n)
}

// Counters returns a name-sorted snapshot of all registered counters.
func (t *Telemetry) Counters() map[string]uint64 {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := make(map[string]uint64, len(t.counters))
	for name, c := range t.counters {
		out[name] = c.Value()
	}
	t.mu.Unlock()
	return out
}

// Span is an in-flight wall-clock interval. End completes it. A nil
// Span (from a nil Telemetry) ignores all calls.
type Span struct {
	t     *Telemetry
	name  string
	tid   int64
	args  []spanArg
	begin time.Time
}

type spanArg struct{ k, v string }

// StartSpan opens a named span at the current clock reading. Spans may
// nest freely; nesting in the trace view is derived from containment of
// [begin, end) intervals on the same tid.
func (t *Telemetry) StartSpan(name string) *Span {
	if t == nil {
		return nil
	}
	return &Span{t: t, name: name, begin: t.clock()}
}

// WithTID places the span on a numbered trace thread lane (workers use
// their worker index + 1; lane 0 is the coordinating goroutine).
// Returns the span for chaining.
func (s *Span) WithTID(tid int) *Span {
	if s == nil {
		return nil
	}
	s.tid = int64(tid)
	return s
}

// WithArg attaches a key/value argument shown in the trace viewer's
// detail pane. Returns the span for chaining.
func (s *Span) WithArg(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.args = append(s.args, spanArg{key, value})
	return s
}

// End completes the span: its duration is folded into the per-stage
// summary and, when tracing is enabled, a complete ("X") trace event is
// buffered.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.t
	end := t.clock()
	dur := end.Sub(s.begin)
	t.mu.Lock()
	st, ok := t.stats[s.name]
	if !ok {
		st = new(spanStat)
		t.stats[s.name] = st
	}
	st.count++
	st.total += dur
	if t.tracing {
		t.events = append(t.events, traceEvent{
			Name: s.name,
			Ph:   "X",
			TS:   s.begin.Sub(t.start).Microseconds(),
			Dur:  dur.Microseconds(),
			TID:  s.tid,
			args: s.args,
		})
	}
	t.mu.Unlock()
}

// SpanStat is one row of the aggregated span summary.
type SpanStat struct {
	Count int
	Total time.Duration
}

// SpanStats snapshots the per-name span aggregates — the operational
// metrics plane folds these into latency histograms after a run. Nil
// handles return nil.
func (t *Telemetry) SpanStats() map[string]SpanStat {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make(map[string]SpanStat, len(t.stats))
	for name, st := range t.stats {
		out[name] = SpanStat{Count: st.count, Total: st.total}
	}
	return out
}

// Elapsed is the wall time since the handle was created.
func (t *Telemetry) Elapsed() time.Duration {
	if t == nil {
		return 0
	}
	return t.clock().Sub(t.start)
}

// Summary renders the per-stage wall-clock table and the deterministic
// counter values as human-readable text (the -stats output). Rows are
// name-sorted so the layout is stable.
func (t *Telemetry) Summary() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	tool := t.tool
	names := make([]string, 0, len(t.stats))
	for name := range t.stats {
		names = append(names, name)
	}
	sort.Strings(names)
	type row struct {
		name  string
		count int
		total time.Duration
	}
	rows := make([]row, 0, len(names))
	for _, name := range names {
		st := t.stats[name]
		rows = append(rows, row{name, st.count, st.total})
	}
	cnames := make([]string, 0, len(t.counters))
	for name := range t.counters {
		cnames = append(cnames, name)
	}
	sort.Strings(cnames)
	type crow struct {
		name string
		val  uint64
	}
	crows := make([]crow, 0, len(cnames))
	for _, name := range cnames {
		crows = append(crows, crow{name, t.counters[name].Value()})
	}
	t.mu.Unlock()

	var b strings.Builder
	if tool == "" {
		tool = "run"
	}
	fmt.Fprintf(&b, "%s: wall %v\n", tool, t.Elapsed().Round(time.Millisecond))
	if len(rows) > 0 {
		fmt.Fprintf(&b, "  %-28s %8s %12s\n", "stage", "spans", "total")
		for _, r := range rows {
			fmt.Fprintf(&b, "  %-28s %8d %12v\n", r.name, r.count, r.total.Round(time.Microsecond))
		}
	}
	if len(crows) > 0 {
		b.WriteString("  counters:\n")
		for _, r := range crows {
			fmt.Fprintf(&b, "    %-30s %12d\n", r.name, r.val)
		}
	}
	return b.String()
}

// contextKey is the private context key type for telemetry handles.
type contextKey struct{}

// NewContext returns a context carrying t. Attaching a nil handle is
// allowed and equivalent to not attaching one.
func NewContext(ctx context.Context, t *Telemetry) context.Context {
	if t == nil {
		return ctx
	}
	return context.WithValue(ctx, contextKey{}, t)
}

// FromContext returns the telemetry handle carried by ctx, or nil if
// none is attached. The nil result is itself a valid disabled handle,
// so callers never need to branch.
func FromContext(ctx context.Context) *Telemetry {
	if ctx == nil {
		return nil
	}
	t, _ := ctx.Value(contextKey{}).(*Telemetry)
	return t
}

// workerIDKey is the private context key for a worker pool lane number.
type workerIDKey struct{}

// WithWorkerID returns a context carrying a worker lane number. Spans
// recorded under it (by instrumentation that calls WorkerIDFromContext)
// land on that trace thread row, so concurrent per-item work renders as
// parallel lanes in chrome://tracing instead of one stacked row.
func WithWorkerID(ctx context.Context, id int) context.Context {
	return context.WithValue(ctx, workerIDKey{}, id)
}

// WorkerIDFromContext returns the worker lane carried by ctx, or 0 (the
// main thread row) if none is attached.
func WorkerIDFromContext(ctx context.Context) int {
	if ctx == nil {
		return 0
	}
	id, _ := ctx.Value(workerIDKey{}).(int)
	return id
}
