package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
	"time"
)

var update = flag.Bool("update", false, "rewrite golden files")

// buildTrace replays a fixed nested span scenario on a fake clock:
// a run span containing parse, then two worker-lane MUT spans whose
// intervals nest atpg children, plus counters. Every clock reading
// advances exactly 1ms, so the trace output is byte-deterministic.
func buildTrace() *Telemetry {
	tel := newTestTelemetry(time.Millisecond)
	tel.SetTool("factor")
	tel.EnableTrace()

	run := tel.StartSpan("run") // t=1ms
	parse := tel.StartSpan("parse").WithArg("file", "examples/arm2.v")
	parse.End() // 2ms..3ms

	mut0 := tel.StartSpan("transform").WithTID(1).WithArg("mut", "u_core.u_alu")
	atpg0 := tel.StartSpan("atpg").WithTID(1)
	atpg0.End() // 5ms..6ms
	mut0.End()  // 4ms..7ms

	mut1 := tel.StartSpan("transform").WithTID(2).WithArg("mut", "u_core.u_shift")
	mut1.End() // 8ms..9ms

	run.End() // 1ms..10ms

	tel.AddCounter("parse.tokens", 4096)
	tel.AddCounter("atpg.backtracks", 123)
	return tel
}

// TestTraceGolden locks the Chrome trace output format: nesting order,
// sorted event stream, metadata and counter events. Regenerate with
// go test ./internal/telemetry -run TraceGolden -update.
func TestTraceGolden(t *testing.T) {
	tel := buildTrace()
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "trace_golden.json")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("trace output differs from golden:\n got: %s\nwant: %s", buf.Bytes(), want)
	}
}

// TestTraceParsesAndNests decodes the emitted JSON the way a viewer
// would and checks the structural invariants: the wrapper object form,
// begin-time-sorted events with parents before children, and children
// contained in their parent's [ts, ts+dur) interval on the same tid.
func TestTraceParsesAndNests(t *testing.T) {
	tel := buildTrace()
	var buf bytes.Buffer
	if err := tel.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string                     `json:"name"`
			Ph   string                     `json:"ph"`
			TS   int64                      `json:"ts"`
			Dur  int64                      `json:"dur"`
			TID  int64                      `json:"tid"`
			Args map[string]json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, buf.String())
	}
	byName := map[string]int{}
	var lastTS int64 = -1
	for i, ev := range doc.TraceEvents {
		byName[ev.Name] = i
		if ev.Ph == "X" {
			if ev.TS < lastTS {
				t.Errorf("event %q at ts=%d out of order (prev %d)", ev.Name, ev.TS, lastTS)
			}
			lastTS = ev.TS
		}
	}
	for _, name := range []string{"process_name", "run", "parse", "transform", "atpg", "counters"} {
		if _, ok := byName[name]; !ok {
			t.Fatalf("trace missing event %q:\n%s", name, buf.String())
		}
	}
	// run must precede and contain parse; transform (tid 1) must
	// contain atpg (tid 1).
	run := doc.TraceEvents[byName["run"]]
	parse := doc.TraceEvents[byName["parse"]]
	atpg := doc.TraceEvents[byName["atpg"]]
	if byName["run"] > byName["parse"] {
		t.Errorf("run event must precede its child parse")
	}
	if parse.TS < run.TS || parse.TS+parse.Dur > run.TS+run.Dur {
		t.Errorf("parse [%d,%d) not contained in run [%d,%d)",
			parse.TS, parse.TS+parse.Dur, run.TS, run.TS+run.Dur)
	}
	// Two transform spans exist (one per worker lane); the one sharing
	// atpg's tid must contain it.
	found := false
	for _, ev := range doc.TraceEvents {
		if ev.Name != "transform" || ev.TID != atpg.TID {
			continue
		}
		found = true
		if atpg.TS < ev.TS || atpg.TS+atpg.Dur > ev.TS+ev.Dur {
			t.Errorf("atpg [%d,%d) not contained in transform [%d,%d)",
				atpg.TS, atpg.TS+atpg.Dur, ev.TS, ev.TS+ev.Dur)
		}
	}
	if !found {
		t.Errorf("no transform span on atpg's tid %d", atpg.TID)
	}
	// Counter instant event carries the deterministic plane's values.
	cnt := doc.TraceEvents[byName["counters"]]
	if string(cnt.Args["parse.tokens"]) != "4096" {
		t.Errorf("counters args = %v, want parse.tokens 4096", cnt.Args)
	}
}

func TestWriteTraceFile(t *testing.T) {
	tel := buildTrace()
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := tel.WriteTraceFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !json.Valid(data) {
		t.Fatalf("trace file is not valid JSON: %s", data)
	}
}
