package telemetry

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeClock returns a clock function stepping stepUS microseconds per
// reading, starting at a fixed epoch.
func fakeClock(stepUS int64) func() time.Time {
	base := time.Unix(1000, 0)
	n := int64(0)
	return func() time.Time {
		t := base.Add(time.Duration(n*stepUS) * time.Microsecond)
		n++
		return t
	}
}

func tracedHandle(stepUS int64) *Telemetry {
	tel := New()
	tel.clock = fakeClock(stepUS)
	tel.start = tel.clock()
	tel.EnableTrace()
	return tel
}

func TestExportSpansRoundTrip(t *testing.T) {
	child := tracedHandle(100)
	sp := child.StartSpan("faultsim.range").WithTID(2).WithArg("shard", "1")
	sp.End()

	recs := child.ExportSpans()
	if len(recs) != 1 {
		t.Fatalf("exported %d spans, want 1", len(recs))
	}
	r := recs[0]
	if r.Name != "faultsim.range" || r.TID != 2 || r.Args["shard"] != "1" {
		t.Errorf("bad record: %+v", r)
	}
	if r.TS != 100 || r.Dur != 100 {
		t.Errorf("fake-clock timing: ts=%d dur=%d, want 100/100", r.TS, r.Dur)
	}

	// The records survive a JSON hop (the shard result frame).
	data, err := json.Marshal(recs)
	if err != nil {
		t.Fatal(err)
	}
	var back []SpanRecord
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back[0].Name != r.Name || back[0].TS != r.TS || back[0].Dur != r.Dur ||
		back[0].TID != r.TID || back[0].Args["shard"] != "1" {
		t.Errorf("round trip lost data: %+v", back[0])
	}
}

func TestExportSpansDisabledOrNil(t *testing.T) {
	var nilTel *Telemetry
	if nilTel.ExportSpans() != nil {
		t.Error("nil handle exported spans")
	}
	tel := New() // tracing off
	tel.StartSpan("x").End()
	if tel.ExportSpans() != nil {
		t.Error("untraced handle exported spans")
	}
}

func TestMergeProcessAssemblesOneTrace(t *testing.T) {
	parent := tracedHandle(50)
	parent.SetTool("corpus")
	parent.StartSpan("corpus.simulate").End()

	child := tracedHandle(100)
	child.StartSpan("faultsim.range").WithArg("range", "[0,63)").End()

	parent.MergeProcess(1, "shard 0 top@1", 500, child.ExportSpans())
	parent.MergeProcess(2, "shard 1 top@1", 500, nil) // no spans: no lane

	var b strings.Builder
	if err := parent.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string            `json:"name"`
			Ph   string            `json:"ph"`
			PID  int64             `json:"pid"`
			TS   int64             `json:"ts"`
			Args map[string]string `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v\n%s", err, b.String())
	}

	var parentLane, childLane, childMeta bool
	for _, ev := range doc.TraceEvents {
		switch {
		case ev.Name == "process_name" && ev.PID == 1:
			childMeta = ev.Args["name"] == "shard 0 top@1"
		case ev.Name == "corpus.simulate" && ev.PID == 0:
			parentLane = true
		case ev.Name == "faultsim.range" && ev.PID == 1:
			childLane = true
			// offset 500 rebases the child's ts=100 onto the parent
			// timeline.
			if ev.TS != 600 {
				t.Errorf("rebased ts = %d, want 600", ev.TS)
			}
		}
	}
	if !parentLane || !childLane || !childMeta {
		t.Errorf("merged trace incomplete (parent=%v child=%v meta=%v):\n%s",
			parentLane, childLane, childMeta, b.String())
	}
}

func TestMergeProcessIgnoredWhenTracingOff(t *testing.T) {
	parent := New() // tracing off
	parent.MergeProcess(1, "shard", 0, []SpanRecord{{Name: "x"}})
	var b strings.Builder
	if err := parent.WriteTrace(&b); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(b.String(), `"x"`) {
		t.Errorf("untraced parent buffered imported spans:\n%s", b.String())
	}
	var nilTel *Telemetry
	nilTel.MergeProcess(1, "shard", 0, []SpanRecord{{Name: "x"}})
}

func TestSpanStats(t *testing.T) {
	tel := tracedHandle(1000)
	tel.StartSpan("atpg.random").End()
	tel.StartSpan("atpg.random").End()
	st := tel.SpanStats()
	if st["atpg.random"].Count != 2 {
		t.Errorf("count = %d, want 2", st["atpg.random"].Count)
	}
	if st["atpg.random"].Total != 2*time.Millisecond {
		t.Errorf("total = %v, want 2ms", st["atpg.random"].Total)
	}
	var nilTel *Telemetry
	if nilTel.SpanStats() != nil {
		t.Error("nil handle returned span stats")
	}
}
