package telemetry

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"
)

// TestCounterMergeDeterminism drives the same per-shard contributions
// at the counters from many goroutines in scrambled orders and checks
// the totals are bit-identical: atomic adds are commutative, so any
// interleaving must produce the same final value. Run with -race.
func TestCounterMergeDeterminism(t *testing.T) {
	const shards = 16
	const perShard = 1000
	want := uint64(0)
	for s := 0; s < shards; s++ {
		for i := 0; i < perShard; i++ {
			want += uint64(s*perShard + i)
		}
	}
	for trial := 0; trial < 4; trial++ {
		tel := New()
		var wg sync.WaitGroup
		for s := 0; s < shards; s++ {
			wg.Add(1)
			go func(s int) {
				defer wg.Done()
				// Half the shards resolve the counter once, half per
				// add, exercising lazy registration under contention.
				if s%2 == 0 {
					c := tel.Counter("work.items")
					for i := 0; i < perShard; i++ {
						c.Add(uint64(s*perShard + i))
					}
					return
				}
				for i := 0; i < perShard; i++ {
					tel.AddCounter("work.items", uint64(s*perShard+i))
				}
			}(s)
		}
		wg.Wait()
		got := tel.Counter("work.items").Value()
		if got != want {
			t.Fatalf("trial %d: counter = %d, want %d", trial, got, want)
		}
	}
}

// TestNilHandleZeroAlloc is the zero-cost-when-disabled guard: every
// operation an instrumented hot loop can reach through a nil handle
// must be allocation-free.
func TestNilHandleZeroAlloc(t *testing.T) {
	var tel *Telemetry
	ctx := context.Background()
	if got := testing.AllocsPerRun(100, func() {
		h := FromContext(ctx)
		h.AddCounter("x", 1)
		h.Counter("x").Add(1)
		sp := h.StartSpan("stage").WithTID(3).WithArg("k", "v")
		sp.End()
		h.Progressf("tick")
		tel.AddCounter("y", 2)
		_ = tel.Counters()
		_ = tel.Summary()
		_ = tel.Elapsed()
	}); got != 0 {
		t.Fatalf("nil-handle operations allocated %v times per run, want 0", got)
	}
}

func TestContextRoundTrip(t *testing.T) {
	ctx := context.Background()
	if got := FromContext(ctx); got != nil {
		t.Fatalf("FromContext(empty) = %v, want nil", got)
	}
	if got := NewContext(ctx, nil); got != ctx {
		t.Fatalf("NewContext(ctx, nil) should return ctx unchanged")
	}
	tel := New()
	ctx = NewContext(ctx, tel)
	if got := FromContext(ctx); got != tel {
		t.Fatalf("FromContext = %p, want %p", got, tel)
	}
}

func TestSummaryLayout(t *testing.T) {
	tel := newTestTelemetry(time.Millisecond)
	tel.SetTool("factor")
	sp := tel.StartSpan("parse")
	sp.End()
	sp = tel.StartSpan("synth")
	sp.End()
	tel.AddCounter("parse.tokens", 1234)
	tel.AddCounter("atpg.backtracks", 7)
	out := tel.Summary()
	for _, want := range []string{"factor: wall", "parse", "synth", "counters:", "parse.tokens", "1234", "atpg.backtracks"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q:\n%s", want, out)
		}
	}
	// Counters must render name-sorted for a stable layout.
	if strings.Index(out, "atpg.backtracks") > strings.Index(out, "parse.tokens") {
		t.Errorf("counters not name-sorted:\n%s", out)
	}
}

func TestCountersSnapshot(t *testing.T) {
	tel := New()
	tel.AddCounter("a", 1)
	tel.AddCounter("b", 2)
	snap := tel.Counters()
	if len(snap) != 2 || snap["a"] != 1 || snap["b"] != 2 {
		t.Fatalf("snapshot = %v", snap)
	}
	tel.AddCounter("a", 10)
	if snap["a"] != 1 {
		t.Fatalf("snapshot aliases live counter")
	}
}

func TestProgressRateLimit(t *testing.T) {
	var buf syncBuffer
	tel := newTestTelemetry(time.Millisecond)
	tel.EnableProgress(&buf, 10*time.Millisecond)
	// Fake clock advances 1ms per reading: 30 calls span ~30ms, so at a
	// 10ms interval only ~3 lines may appear.
	for i := 0; i < 30; i++ {
		tel.Progressf("tick %d", i)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines == 0 || lines > 4 {
		t.Fatalf("rate limiter emitted %d lines, want 1..4:\n%s", lines, buf.String())
	}
}

func TestProgressDisabledByDefault(t *testing.T) {
	var buf syncBuffer
	tel := New()
	tel.Progressf("should not appear")
	if tel.ProgressEnabled() {
		t.Fatal("progress enabled before EnableProgress")
	}
	if buf.String() != "" {
		t.Fatalf("output before enable: %q", buf.String())
	}
}

// syncBuffer is a mutex-guarded strings.Builder for concurrent tests.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// newTestTelemetry returns a handle on a deterministic fake clock that
// advances step per reading, starting from a fixed epoch.
func newTestTelemetry(step time.Duration) *Telemetry {
	tel := New()
	base := time.Unix(1000, 0)
	n := 0
	tel.clock = func() time.Time {
		n++
		return base.Add(time.Duration(n) * step)
	}
	tel.start = base
	return tel
}
