package telemetry

// Live progress heartbeat: rate-limited single-line messages on a
// writer (normally stderr) so long ATPG runs report MUT/fault/coverage
// progress and cancellation decisions are informed. The limiter is a
// single atomic compare-and-swap on the last-emit timestamp, so losing
// the race (or progress being disabled) costs one atomic load.

import (
	"fmt"
	"io"
	"os"
	"sync/atomic"
	"time"
)

type progress struct {
	w        io.Writer
	interval time.Duration
	last     atomic.Int64 // unix nanos of the last emitted heartbeat
	enabled  atomic.Bool
}

// DefaultProgressInterval is the heartbeat rate limit used by the CLIs.
const DefaultProgressInterval = 500 * time.Millisecond

// EnableProgress turns on the heartbeat, writing at most one line per
// interval to w. An interval of 0 uses DefaultProgressInterval.
func (t *Telemetry) EnableProgress(w io.Writer, interval time.Duration) {
	if t == nil {
		return
	}
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	t.prog.w = w
	t.prog.interval = interval
	t.prog.enabled.Store(true)
}

// ProgressEnabled reports whether the heartbeat is on.
func (t *Telemetry) ProgressEnabled() bool {
	if t == nil {
		return false
	}
	return t.prog.enabled.Load()
}

// Progressf emits a heartbeat line unless one was emitted within the
// configured interval. Callers may invoke it per unit of work; almost
// all calls return after a single atomic load. No-op on a nil handle
// or when progress is disabled.
func (t *Telemetry) Progressf(format string, args ...any) {
	if t == nil || !t.prog.enabled.Load() {
		return
	}
	now := t.clock().UnixNano()
	last := t.prog.last.Load()
	if now-last < int64(t.prog.interval) {
		return
	}
	if !t.prog.last.CompareAndSwap(last, now) {
		return // another goroutine just emitted
	}
	fmt.Fprintf(t.prog.w, format+"\n", args...)
}

// StderrIsTerminal reports whether stderr is attached to a character
// device; the CLIs use it for -progress auto so redirected runs stay
// quiet by default.
func StderrIsTerminal() bool {
	info, err := os.Stderr.Stat()
	if err != nil {
		return false
	}
	return info.Mode()&os.ModeCharDevice != 0
}
