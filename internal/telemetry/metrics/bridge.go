package metrics

// Bridge from the deterministic counter plane (package telemetry) to
// the operational metrics plane: at gather time the bridge snapshots
// every telemetry.Counter into one labeled gauge family, so a scrape
// sees the live work counters without the deterministic plane ever
// knowing metrics exist — report bytes cannot fork, because the flow
// of information is strictly one-way and read-only.

import "factor/internal/telemetry"

// Bridge mirrors t's deterministic counters into r as
//
//	<name>{counter="<dotted counter name>"} <value>
//
// refreshed on every gather. The family is a gauge, not a counter:
// exposition-wise the values are monotone, but a server swaps per-job
// telemetry handles, so a scrape may legally observe a smaller value
// after a handle reset. Nil r or t is a no-op.
func Bridge(r *Registry, name, help string, t *telemetry.Telemetry) {
	if r == nil || t == nil {
		return
	}
	vec := r.GaugeVec(name, help, "counter")
	r.OnGather(func() {
		for cname, v := range t.Counters() {
			vec.With(cname).Set(float64(v))
		}
	})
}
