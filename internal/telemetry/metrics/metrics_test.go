package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"

	"factor/internal/telemetry"
)

func expose(t *testing.T, r *Registry) string {
	t.Helper()
	var b strings.Builder
	if err := r.WriteText(&b); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	return b.String()
}

func TestCounterGaugeExposition(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs_total", "jobs ever submitted").Add(3)
	g := r.Gauge("queue_depth", "queued jobs")
	g.Set(7)
	g.Dec()
	v := r.CounterVec("hits_total", "hits by kind", "kind")
	v.With("cas").Add(2)
	v.With("miss").Inc()

	got := expose(t, r)
	want := `# HELP hits_total hits by kind
# TYPE hits_total counter
hits_total{kind="cas"} 2
hits_total{kind="miss"} 1
# HELP jobs_total jobs ever submitted
# TYPE jobs_total counter
jobs_total 3
# HELP queue_depth queued jobs
# TYPE queue_depth gauge
queue_depth 6
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	got := expose(t, r)
	want := `# HELP lat_seconds latency
# TYPE lat_seconds histogram
lat_seconds_bucket{le="0.1"} 1
lat_seconds_bucket{le="1"} 3
lat_seconds_bucket{le="10"} 4
lat_seconds_bucket{le="+Inf"} 5
lat_seconds_sum 56.05
lat_seconds_count 5
`
	if got != want {
		t.Errorf("exposition:\n%s\nwant:\n%s", got, want)
	}
}

func TestHistogramVecLELabelSplice(t *testing.T) {
	r := NewRegistry()
	v := r.HistogramVec("req_seconds", "", []float64{1}, "route", "code")
	v.With("/jobs", "200").Observe(0.5)
	got := expose(t, r)
	if !strings.Contains(got, `req_seconds_bucket{route="/jobs",code="200",le="1"} 1`) {
		t.Errorf("le splice wrong:\n%s", got)
	}
	if !strings.Contains(got, `req_seconds_count{route="/jobs",code="200"} 1`) {
		t.Errorf("count selector wrong:\n%s", got)
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.CounterVec("errs_total", "", "msg").With("a\"b\\c\nd").Inc()
	got := expose(t, r)
	if !strings.Contains(got, `errs_total{msg="a\"b\\c\nd"} 1`) {
		t.Errorf("escaping wrong:\n%s", got)
	}
}

func TestNilRegistryIsDisabled(t *testing.T) {
	var r *Registry
	r.Counter("a", "").Inc()
	r.Gauge("b", "").Set(1)
	r.Histogram("c", "", nil).Observe(1)
	r.CounterVec("d", "", "x").With("y").Add(2)
	r.GaugeVec("e", "", "x").With("y").Dec()
	r.HistogramVec("f", "", nil, "x").With("y").Observe(3)
	r.OnGather(func() { t.Fatal("gather hook ran on nil registry") })
	if err := r.WriteText(&strings.Builder{}); err != nil {
		t.Fatalf("nil WriteText: %v", err)
	}
}

func TestDisabledAndHotPathsAreAllocFree(t *testing.T) {
	var off *Registry
	offV := off.CounterVec("x_total", "", "k")
	offH := off.HistogramVec("y_seconds", "", nil, "k")
	if n := testing.AllocsPerRun(100, func() {
		off.Counter("x", "").Inc()
		offV.With("v").Add(1)
		offH.With("v").Observe(0.1)
	}); n != 0 {
		t.Errorf("disabled plane allocates %v/op", n)
	}

	on := NewRegistry()
	c := on.CounterVec("hits_total", "", "kind").With("cas")
	g := on.Gauge("depth", "")
	h := on.Histogram("lat_seconds", "", nil)
	hv := on.HistogramVec("stage_seconds", "", nil, "stage")
	hv.With("atpg") // pre-create: hot paths hold children or re-resolve one label
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		g.Set(3)
		h.Observe(0.01)
		hv.With("atpg").Observe(0.5)
	}); n != 0 {
		t.Errorf("enabled hot path allocates %v/op", n)
	}
}

func TestConcurrentInstrumentation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "")
	h := r.Histogram("v_seconds", "", []float64{0.5})
	vec := r.CounterVec("by_total", "", "k")
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i%2) * 0.75)
				vec.With([]string{"a", "b"}[w%2]).Inc()
			}
		}(w)
	}
	wg.Wait()
	got := expose(t, r)
	for _, want := range []string{
		"n_total 8000\n",
		`v_seconds_count 8000`,
		`v_seconds_bucket{le="0.5"} 4000`,
		`by_total{k="a"} 4000`,
		`by_total{k="b"} 4000`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in:\n%s", want, got)
		}
	}
}

func TestFloatFormatting(t *testing.T) {
	if got := formatValue(0.25); got != "0.25" {
		t.Errorf("formatValue(0.25) = %q", got)
	}
	if got := formatValue(1e15); got == "1000000000000000" {
		t.Errorf("huge integral float should use float form, got %q", got)
	}
	if got := formatValue(math.Inf(1)); got != "+Inf" {
		t.Errorf("formatValue(+Inf) = %q", got)
	}
}

func TestRegistrationConflictsPanic(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "")
	for name, f := range map[string]func(){
		"type":   func() { r.Gauge("a_total", "") },
		"labels": func() { r.CounterVec("a_total", "", "k") },
		"name":   func() { r.Counter("0bad", "") },
		"label":  func() { r.CounterVec("b_total", "", "bad-label") },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s conflict did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestIdempotentReRegistration(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "").Add(1)
	r.Counter("a_total", "").Add(2)
	if got := expose(t, r); !strings.Contains(got, "a_total 3\n") {
		t.Errorf("re-registration did not share the child:\n%s", got)
	}
}

func TestBridgeSnapshotsDeterministicCounters(t *testing.T) {
	tel := telemetry.New()
	tel.AddCounter("atpg.backtracks", 42)
	r := NewRegistry()
	Bridge(r, "factor_pipeline_counter", "deterministic work counters", tel)

	got := expose(t, r)
	if !strings.Contains(got, `factor_pipeline_counter{counter="atpg.backtracks"} 42`) {
		t.Errorf("bridge missing counter:\n%s", got)
	}
	// Refreshes on every gather, never caches stale values.
	tel.AddCounter("atpg.backtracks", 1)
	if got := expose(t, r); !strings.Contains(got, `{counter="atpg.backtracks"} 43`) {
		t.Errorf("bridge did not refresh:\n%s", got)
	}
	// Nil handles are inert.
	Bridge(nil, "x", "", tel)
	Bridge(r, "y", "", nil)
}
