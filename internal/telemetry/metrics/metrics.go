// Package metrics is the third observability plane: an operational
// metrics registry with Prometheus text exposition (format 0.0.4),
// hand-rolled on the stdlib so the serving stack can be scraped
// without any dependency.
//
// It is strictly separated from the two existing planes (see package
// telemetry): deterministic work counters stay bit-identical report
// material and wall-clock spans stay trace material, while these
// metrics are scrape-time operational state — queue depths, cache hit
// rates, latency histograms — that may legally differ run to run. The
// Bridge (bridge.go) projects the deterministic counter plane into the
// exposition read-only, so nothing here ever forks report bytes.
//
// The nil *Registry is a valid disabled registry: every constructor
// returns a nil instrument and every instrument method is a nil-safe,
// allocation-free no-op, so instrumented hot paths cost nothing when
// metrics are off (guarded by testing.AllocsPerRun). Instruments are
// cheap atomics; callers on hot paths should hold on to the child
// returned by With rather than re-resolving labels per event.
package metrics

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them as Prometheus text
// exposition. A nil Registry disables everything.
type Registry struct {
	mu     sync.Mutex
	fams   map[string]*family
	gather []func()
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// family is one named metric with a fixed label schema and a child
// time series per label-value tuple.
type family struct {
	name   string
	help   string
	typ    string // "counter" | "gauge" | "histogram"
	labels []string
	bounds []float64 // histogram upper bounds (nil otherwise)

	mu       sync.RWMutex
	children map[string]*child
}

// child is one time series: a scalar (counter/gauge) or a
// fixed-bucket histogram. Scalars live in float64 bits so Add can CAS
// without locks; histogram bucket counts are plain integer atomics.
type child struct {
	labels string // pre-rendered {k="v",...} or ""

	bits atomic.Uint64 // scalar value, math.Float64bits

	bounds  []float64       // histogram upper bounds (shared with family)
	counts  []atomic.Uint64 // per-bucket (≤ bound) increments, +Inf last
	sumBits atomic.Uint64
}

// nameOK enforces the Prometheus metric/label name charset.
func nameOK(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// register finds or creates a family, panicking on a schema conflict —
// metric registration happens at wiring time, so a conflict is a
// programming error, not an operational condition.
func (r *Registry) register(name, help, typ string, labels []string, bounds []float64) *family {
	if r == nil {
		return nil
	}
	if !nameOK(name) {
		panic("metrics: bad metric name " + strconv.Quote(name))
	}
	for _, l := range labels {
		if !nameOK(l) || strings.HasPrefix(l, "__") {
			panic("metrics: bad label name " + strconv.Quote(l))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.typ != typ || len(f.labels) != len(labels) {
			panic("metrics: conflicting re-registration of " + name)
		}
		for i := range labels {
			if f.labels[i] != labels[i] {
				panic("metrics: conflicting label schema for " + name)
			}
		}
		return f
	}
	f := &family{name: name, help: help, typ: typ, labels: labels,
		bounds: bounds, children: map[string]*child{}}
	r.fams[name] = f
	return f
}

// OnGather registers a callback the exposition runs immediately before
// rendering — the hook gauges and bridges use to snapshot live state
// at scrape time. No-op on a nil registry.
func (r *Registry) OnGather(f func()) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gather = append(r.gather, f)
	r.mu.Unlock()
}

// child resolves the time series for one label-value tuple, creating
// it on first use. The single-value key avoids any allocation on the
// repeat-lookup path; multi-label keys join with 0xFF (illegal in
// UTF-8 label text after escaping, so the key is unambiguous).
func (f *family) child(values []string) *child {
	if f == nil {
		return nil
	}
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	var key string
	switch len(values) {
	case 0:
	case 1:
		key = values[0]
	default:
		key = strings.Join(values, "\xff")
	}
	f.mu.RLock()
	c, ok := f.children[key]
	f.mu.RUnlock()
	if ok {
		return c
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok = f.children[key]; ok {
		return c
	}
	c = &child{labels: renderLabels(f.labels, values)}
	if f.bounds != nil {
		c.bounds = f.bounds
		c.counts = make([]atomic.Uint64, len(f.bounds)+1)
	}
	f.children[key] = c
	return c
}

// renderLabels pre-formats the {k="v",...} selector once per child.
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel applies the exposition-format label escapes.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// addFloat folds v into a float64-bits cell with a CAS loop.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		new := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, new) {
			return
		}
	}
}

// Counter is a monotonically increasing scalar. Nil is a no-op.
type Counter struct{ c *child }

// Inc adds 1.
func (c Counter) Inc() { c.Add(1) }

// Add increments by v (v < 0 is ignored — counters are monotone).
func (c Counter) Add(v float64) {
	if c.c == nil || v < 0 {
		return
	}
	addFloat(&c.c.bits, v)
}

// Gauge is a scalar that can go up and down. Nil is a no-op.
type Gauge struct{ c *child }

// Set stores v.
func (g Gauge) Set(v float64) {
	if g.c == nil {
		return
	}
	g.c.bits.Store(math.Float64bits(v))
}

// Add increments by v (negative to decrement).
func (g Gauge) Add(v float64) {
	if g.c == nil {
		return
	}
	addFloat(&g.c.bits, v)
}

// Inc adds 1.
func (g Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g Gauge) Dec() { g.Add(-1) }

// Histogram is a fixed-bucket distribution. Nil is a no-op.
type Histogram struct{ c *child }

// Observe records v: the first bucket whose upper bound is ≥ v is
// incremented (buckets store per-bucket increments; exposition
// renders the cumulative form), plus the +Inf count and the sum.
func (h Histogram) Observe(v float64) {
	c := h.c
	if c == nil {
		return
	}
	i := len(c.counts) - 1 // +Inf
	bounds := c.bounds
	for k, b := range bounds {
		if v <= b {
			i = k
			break
		}
	}
	c.counts[i].Add(1)
	addFloat(&c.sumBits, v)
}

// CounterVec is a counter family with labels.
type CounterVec struct{ f *family }

// With resolves the child counter for the label values.
func (v *CounterVec) With(values ...string) Counter {
	if v == nil {
		return Counter{}
	}
	return Counter{v.f.child(values)}
}

// GaugeVec is a gauge family with labels.
type GaugeVec struct{ f *family }

// With resolves the child gauge for the label values.
func (v *GaugeVec) With(values ...string) Gauge {
	if v == nil {
		return Gauge{}
	}
	return Gauge{v.f.child(values)}
}

// HistogramVec is a histogram family with labels.
type HistogramVec struct{ f *family }

// With resolves the child histogram for the label values.
func (v *HistogramVec) With(values ...string) Histogram {
	if v == nil {
		return Histogram{}
	}
	return Histogram{v.f.child(values)}
}

// Counter registers (or finds) an unlabeled counter.
func (r *Registry) Counter(name, help string) Counter {
	if r == nil {
		return Counter{}
	}
	return Counter{r.register(name, help, "counter", nil, nil).child(nil)}
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	if r == nil {
		return nil
	}
	return &CounterVec{r.register(name, help, "counter", labels, nil)}
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) Gauge {
	if r == nil {
		return Gauge{}
	}
	return Gauge{r.register(name, help, "gauge", nil, nil).child(nil)}
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	if r == nil {
		return nil
	}
	return &GaugeVec{r.register(name, help, "gauge", labels, nil)}
}

// DefBuckets is the default latency bucket ladder (seconds), tuned for
// HTTP handlers and pipeline stages that range µs → minutes.
var DefBuckets = []float64{
	0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1,
	0.25, 0.5, 1, 2.5, 5, 10, 30, 60,
}

// Histogram registers an unlabeled fixed-bucket histogram. Bounds must
// be strictly increasing; nil selects DefBuckets.
func (r *Registry) Histogram(name, help string, bounds []float64) Histogram {
	if r == nil {
		return Histogram{}
	}
	return r.HistogramVec(name, help, bounds).With()
}

// HistogramVec registers a labeled fixed-bucket histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	if r == nil {
		return nil
	}
	if bounds == nil {
		bounds = DefBuckets
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			panic("metrics: histogram bounds for " + name + " not strictly increasing")
		}
	}
	f := r.register(name, help, "histogram", labels, bounds)
	return &HistogramVec{f}
}

// formatValue renders a sample value: integral floats print without a
// fraction so counters read naturally.
func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the full exposition in Prometheus text format
// 0.0.4: families sorted by name, children sorted by label tuple,
// histogram buckets cumulative with a trailing +Inf, _sum and _count.
// Gather hooks run first so snapshot gauges are fresh.
func (r *Registry) WriteText(w io.Writer) error {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	hooks := append([]func(){}, r.gather...)
	r.mu.Unlock()
	for _, h := range hooks {
		h()
	}

	r.mu.Lock()
	fams := make([]*family, 0, len(r.fams))
	for _, f := range r.fams {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })

	var b strings.Builder
	for _, f := range fams {
		f.writeText(&b)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

func (f *family) writeText(b *strings.Builder) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.children))
	for k := range f.children {
		keys = append(keys, k)
	}
	kids := make([]*child, 0, len(keys))
	sort.Strings(keys)
	for _, k := range keys {
		kids = append(kids, f.children[k])
	}
	f.mu.RUnlock()
	if len(kids) == 0 {
		return
	}

	if f.help != "" {
		fmt.Fprintf(b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	}
	fmt.Fprintf(b, "# TYPE %s %s\n", f.name, f.typ)
	for _, c := range kids {
		if f.typ != "histogram" {
			fmt.Fprintf(b, "%s%s %s\n", f.name, c.labels,
				formatValue(math.Float64frombits(c.bits.Load())))
			continue
		}
		cum := uint64(0)
		for i, bound := range f.bounds {
			cum += c.counts[i].Load()
			fmt.Fprintf(b, "%s_bucket%s %d\n", f.name,
				withLE(c.labels, formatValue(bound)), cum)
		}
		cum += c.counts[len(f.bounds)].Load()
		fmt.Fprintf(b, "%s_bucket%s %d\n", f.name, withLE(c.labels, "+Inf"), cum)
		fmt.Fprintf(b, "%s_sum%s %s\n", f.name, c.labels,
			formatValue(math.Float64frombits(c.sumBits.Load())))
		fmt.Fprintf(b, "%s_count%s %d\n", f.name, c.labels, cum)
	}
}

// withLE splices the le label into a pre-rendered selector.
func withLE(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

// escapeHelp applies the HELP-line escapes (backslash and newline).
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
