package service

// Tentpole durability coverage: interrupt a server mid-job at the
// existing atpg checkpoint failpoint sites, boot a fresh Server over
// the same data dir, and require the resumed job's report to be
// byte-identical to an uninterrupted CLI-path run. The in-process
// stand-in for kill -9 is failpoint ActCancel wired to
// Server.Interrupt; the CI smoke job runs the real-kill leg.

import (
	"bytes"
	"net/http"
	"testing"
	"time"

	"factor/internal/failpoint"
)

// interruptAt arms a cancel failpoint at site, wired to srv.Interrupt.
func interruptAt(t *testing.T, srv *Server, site string) {
	t.Helper()
	reg, err := failpoint.Parse(site + "=cancel")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.SetCanceler(srv.Interrupt)
	failpoint.Activate(reg)
	t.Cleanup(failpoint.Deactivate)
}

func TestRestartResumeByteIdentity(t *testing.T) {
	for _, site := range []string{"atpg.checkpoint.sync", "atpg.checkpoint.rename"} {
		t.Run(site, func(t *testing.T) {
			spec := testSpec(pickFaultySeed(t))
			want := renderPipeline(t, spec)
			dataDir := t.TempDir()

			// First boot: the first checkpoint flush trips the site and
			// interrupts the whole server mid-job.
			srv1, ts1 := newTestServer(t, Config{
				DataDir:         dataDir,
				Runners:         1,
				CheckpointEvery: 1,
			})
			interruptAt(t, srv1, site)
			st, code := postJob(t, ts1, JobRequest{JobSpec: spec})
			if code != http.StatusAccepted {
				t.Fatalf("submit = %d", code)
			}
			interrupted := waitTerminal(t, ts1, st.ID, 30*time.Second)
			if JobState(interrupted.State) != JobInterrupted {
				t.Fatalf("first-boot state = %s (%s), want interrupted",
					interrupted.State, interrupted.Error)
			}
			failpoint.Deactivate()
			srv1.Close()
			ts1.Close()

			// Second boot over the same data dir: the ledger replays,
			// the job re-enqueues, and the run resumes from whatever the
			// journal captured before the interrupt.
			srv2, ts2 := newTestServer(t, Config{
				DataDir:         dataDir,
				Runners:         1,
				CheckpointEvery: 1,
			})
			if got := srv2.Telemetry().Counters()["service.jobs_resumed"]; got != 1 {
				t.Fatalf("jobs_resumed = %d, want 1", got)
			}
			final := waitTerminal(t, ts2, st.ID, 60*time.Second)
			if JobState(final.State) != JobDone {
				t.Fatalf("resumed job state = %s (%s)", final.State, final.Error)
			}
			if got := getReport(t, ts2, st.ID); !bytes.Equal(got, want) {
				t.Fatalf("resumed report differs from the uninterrupted baseline")
			}
		})
	}
}

// TestRestartWithoutJournal: an interrupt that lands before any flush
// leaves no journal; the rebooted server restarts the job from scratch
// and still reproduces the baseline bytes.
func TestRestartWithoutJournal(t *testing.T) {
	spec := testSpec(pickFaultySeed(t))
	want := renderPipeline(t, spec)
	dataDir := t.TempDir()

	srv1, ts1 := newTestServer(t, Config{
		DataDir: dataDir,
		Runners: 1,
		// Cadence far beyond the fault count: no flush ever happens.
		CheckpointEvery: 1 << 30,
	})
	// atpg.search trips on the first deterministic-phase fault, before
	// any checkpoint exists.
	interruptAt(t, srv1, "atpg.search")
	st, code := postJob(t, ts1, JobRequest{JobSpec: spec})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	interrupted := waitTerminal(t, ts1, st.ID, 30*time.Second)
	if JobState(interrupted.State) != JobInterrupted {
		t.Fatalf("first-boot state = %s (%s)", interrupted.State, interrupted.Error)
	}
	failpoint.Deactivate()
	srv1.Close()
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{DataDir: dataDir, Runners: 1})
	final := waitTerminal(t, ts2, st.ID, 60*time.Second)
	if JobState(final.State) != JobDone {
		t.Fatalf("restarted job state = %s (%s)", final.State, final.Error)
	}
	if got := getReport(t, ts2, st.ID); !bytes.Equal(got, want) {
		t.Fatal("fresh-restart report differs from the baseline")
	}
	_ = srv2
}

// TestRestartPreservesHistory: terminal jobs reload as queryable
// history and their reports stay served from the CAS.
func TestRestartPreservesHistory(t *testing.T) {
	spec := testSpec(pickFaultySeed(t))
	dataDir := t.TempDir()

	srv1, ts1 := newTestServer(t, Config{DataDir: dataDir, Runners: 1})
	st, _ := postJob(t, ts1, JobRequest{JobSpec: spec})
	waitTerminal(t, ts1, st.ID, 30*time.Second)
	want := getReport(t, ts1, st.ID)
	srv1.Close()
	ts1.Close()

	srv2, ts2 := newTestServer(t, Config{DataDir: dataDir, Runners: 1})
	if got := srv2.Telemetry().Counters()["service.jobs_resumed"]; got != 0 {
		t.Fatalf("terminal job was re-enqueued (jobs_resumed = %d)", got)
	}
	reloaded := getStatus(t, ts2, st.ID)
	if JobState(reloaded.State) != JobDone {
		t.Fatalf("reloaded state = %s", reloaded.State)
	}
	if got := getReport(t, ts2, st.ID); !bytes.Equal(got, want) {
		t.Fatal("reloaded report differs")
	}
	// And a resubmission on the rebooted server is a cache hit.
	re, code := postJob(t, ts2, JobRequest{JobSpec: spec})
	if code != http.StatusOK || !re.Cached {
		t.Fatalf("post-restart resubmit = %d %+v, want cached", code, re)
	}
}
