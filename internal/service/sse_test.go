package service

// Satellite coverage for the SSE layer: wire framing, the hub's
// non-blocking fan-out, the telemetry line-to-event adapter, heartbeat
// gating by the progress flag, and clean stream termination on client
// disconnect (including cancel_on_disconnect job cancellation).

import (
	"context"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestEventWriteTo(t *testing.T) {
	cases := []struct {
		name string
		ev   Event
		want string
	}{
		{
			"full frame",
			Event{ID: 3, Event: "state", Data: "running"},
			"id: 3\nevent: state\ndata: running\n\n",
		},
		{
			"zero id omitted",
			Event{Event: "done", Data: "ok"},
			"event: done\ndata: ok\n\n",
		},
		{
			"bare message",
			Event{Data: "hello"},
			"data: hello\n\n",
		},
		{
			"multi-line data",
			Event{ID: 1, Event: "progress", Data: "line one\nline two"},
			"id: 1\nevent: progress\ndata: line one\ndata: line two\n\n",
		},
		{
			"trailing newline trimmed",
			Event{Event: "progress", Data: "tick\n"},
			"event: progress\ndata: tick\n\n",
		},
		{
			"empty data still framed",
			Event{Event: "ping"},
			"event: ping\ndata: \n\n",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var b strings.Builder
			n, err := tc.ev.WriteTo(&b)
			if err != nil {
				t.Fatal(err)
			}
			if b.String() != tc.want {
				t.Fatalf("framed %q, want %q", b.String(), tc.want)
			}
			if n != int64(len(tc.want)) {
				t.Fatalf("reported %d bytes, wrote %d", n, len(tc.want))
			}
		})
	}
}

func TestHubFanoutAndDrop(t *testing.T) {
	h := newHub()
	ch1, cancel1 := h.subscribe()
	ch2, cancel2 := h.subscribe()

	h.publish("state", "running")
	for i, ch := range []chan Event{ch1, ch2} {
		ev := <-ch
		if ev.ID != 1 || ev.Event != "state" || ev.Data != "running" {
			t.Fatalf("subscriber %d got %+v", i, ev)
		}
	}

	// A slow subscriber's buffer overflows: events drop, IDs gap.
	for i := 0; i < 70; i++ {
		h.publish("progress", "tick")
	}
	if h.Dropped() == 0 {
		t.Fatal("no drops recorded after overflowing a 64-slot buffer")
	}
	if left := cancel1(); left != 1 {
		t.Fatalf("watchers left after first cancel = %d, want 1", left)
	}
	if left := cancel2(); left != 0 {
		t.Fatalf("watchers left after last cancel = %d, want 0", left)
	}
	// cancel is idempotent and publish-after-cancel must not block.
	cancel2()
	h.publish("state", "done")
}

func TestLineWriterSplitsProgressLines(t *testing.T) {
	h := newHub()
	ch, cancel := h.subscribe()
	defer cancel()

	lw := lineWriter{h: h}
	// telemetry.Progressf writes whole lines; a burst may carry several.
	if _, err := lw.Write([]byte("atpg: 10/100 faults\natpg: 20/100 faults\n")); err != nil {
		t.Fatal(err)
	}
	want := []string{"atpg: 10/100 faults", "atpg: 20/100 faults"}
	for _, w := range want {
		ev := <-ch
		if ev.Event != "progress" || ev.Data != w {
			t.Fatalf("got %+v, want progress %q", ev, w)
		}
	}
	select {
	case ev := <-ch:
		t.Fatalf("unexpected extra event %+v", ev)
	default:
	}
}

// TestSSEStreamLifecycle: a live job's stream carries the initial
// state, progress lines, and a final done event, then terminates.
func TestSSEStreamLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{
		Runners:       1,
		Progress:      true,
		ProgressEvery: time.Millisecond,
		Heartbeat:     time.Hour, // not under test here
	})
	st, code := postJob(t, ts, JobRequest{JobSpec: testSpec(pickFaultySeed(t))})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	raw := drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 30*time.Second)
	events := sseEvents(raw)
	if len(events) == 0 {
		t.Fatal("empty event stream")
	}
	if !strings.HasPrefix(events[0], "|") && !strings.HasPrefix(events[0], "state|") {
		t.Fatalf("first frame %q is not the state snapshot", events[0])
	}
	last := events[len(events)-1]
	if !strings.HasPrefix(last, "done|") || !strings.Contains(last, "done") {
		t.Fatalf("stream did not end with a done event: %q", last)
	}
}

// TestSSETerminalJobShortCircuits: subscribing to a finished job gets
// state + done immediately with no hanging stream.
func TestSSETerminalJobShortCircuits(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1})
	st, _ := postJob(t, ts, JobRequest{JobSpec: testSpec(pickFaultySeed(t))})
	waitTerminal(t, ts, st.ID, 30*time.Second)

	start := time.Now()
	raw := drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 10*time.Second)
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("terminal-job stream took %v to close", elapsed)
	}
	events := sseEvents(raw)
	if len(events) != 2 || !strings.HasPrefix(events[0], "state|") || !strings.HasPrefix(events[1], "done|") {
		t.Fatalf("terminal stream = %v, want [state, done]", events)
	}
}

// TestSSEHeartbeatGating: heartbeat comments appear only when progress
// streaming is enabled.
func TestSSEHeartbeatGating(t *testing.T) {
	design := testDesign(1)
	run := func(progress bool) string {
		cfg := Config{
			Runners:   -1, // never dequeue: the job stays queued, stream stays open
			Progress:  progress,
			Heartbeat: 20 * time.Millisecond,
		}
		_, ts := newTestServer(t, cfg)
		st, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: design}})
		if code != http.StatusAccepted {
			t.Fatalf("submit = %d", code)
		}
		// The client deadline ends the stream; the job never runs.
		return drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 150*time.Millisecond)
	}

	if raw := run(true); !strings.Contains(raw, ": heartbeat\n\n") {
		t.Fatalf("progress-enabled stream carried no heartbeat:\n%q", raw)
	}
	if raw := run(false); strings.Contains(raw, ": heartbeat") {
		t.Fatalf("progress-disabled stream carried a heartbeat:\n%q", raw)
	}
}

// TestSSECancelOnDisconnect: when the submitter opted in, the last
// watcher disconnecting cancels a still-queued job.
func TestSSECancelOnDisconnect(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1})
	st, _ := postJob(t, ts, JobRequest{
		JobSpec:            JobSpec{Design: testDesign(1)},
		CancelOnDisconnect: true,
	})
	// Connect, then disconnect via the context deadline.
	drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 100*time.Millisecond)

	final := waitTerminal(t, ts, st.ID, 5*time.Second)
	if JobState(final.State) != JobCanceled {
		t.Fatalf("job state after disconnect = %s, want canceled", final.State)
	}
}

// TestSSEDisconnectWithoutOptIn: without cancel_on_disconnect the job
// survives its watchers.
func TestSSEDisconnectWithoutOptIn(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1})
	st, _ := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}})
	drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 100*time.Millisecond)
	time.Sleep(50 * time.Millisecond)
	if got := getStatus(t, ts, st.ID); JobState(got.State) != JobQueued {
		t.Fatalf("job state after disconnect = %s, want still queued", got.State)
	}
}
