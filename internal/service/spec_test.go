package service

import (
	"strings"
	"testing"
)

func TestSpecValidate(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
		ok   bool
	}{
		{"zero value", JobSpec{}, true},
		{"explicit defaults", JobSpec{Mode: "composed", Guide: "default"}, true},
		{"flat scoap", JobSpec{Mode: "flat", Guide: "scoap"}, true},
		{"bad mode", JobSpec{Mode: "vertical"}, false},
		{"bad guide", JobSpec{Guide: "vibes"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.spec.Validate()
			if (err == nil) != tc.ok {
				t.Fatalf("Validate() = %v, want ok=%v", err, tc.ok)
			}
		})
	}
}

func TestHashExcludesWorkers(t *testing.T) {
	snap := []byte("fake snapshot bytes")
	spec := JobSpec{Seed: 7, RandomSequences: 4}
	h1 := Hash(snap, spec)
	spec.Workers = 8
	if h2 := Hash(snap, spec); h2 != h1 {
		t.Fatalf("hash changed with worker count: %s vs %s", h1, h2)
	}
}

func TestHashNormalizesDefaults(t *testing.T) {
	snap := []byte("fake snapshot bytes")
	// A zero spec and a spec spelling out the defaults must collide:
	// cache hits should not depend on how the client spelled the
	// defaults.
	h1 := Hash(snap, JobSpec{})
	h2 := Hash(snap, JobSpec{Seed: 1, Mode: "composed", Guide: "default", Width: 16})
	if h1 != h2 {
		t.Fatalf("defaulted and spelled-out specs hash differently: %s vs %s", h1, h2)
	}
}

func TestHashSeparatesOptions(t *testing.T) {
	snap := []byte("fake snapshot bytes")
	base := Hash(snap, JobSpec{})
	if h := Hash(snap, JobSpec{Seed: 2}); h == base {
		t.Fatal("seed change did not change the hash")
	}
	if h := Hash(snap, JobSpec{BacktrackLimit: 7}); h == base {
		t.Fatal("backtrack-limit change did not change the hash")
	}
	if h := Hash([]byte("other snapshot"), JobSpec{}); h == base {
		t.Fatal("snapshot change did not change the hash")
	}
	if !strings.EqualFold(base, strings.ToLower(base)) || len(base) != 64 {
		t.Fatalf("hash is not lowercase hex sha256: %q", base)
	}
}
