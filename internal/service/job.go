package service

import (
	"context"
	"sync"
	"time"
)

// JobState is the lifecycle of a job. queued → running → one of
// done/failed/canceled; "interrupted" is the restart-survivable state
// a server shutdown leaves behind (re-enqueued as queued on boot).
type JobState string

const (
	JobQueued      JobState = "queued"
	JobRunning     JobState = "running"
	JobDone        JobState = "done"
	JobFailed      JobState = "failed"
	JobCanceled    JobState = "canceled"
	JobInterrupted JobState = "interrupted"
)

// terminal reports whether a state is final for this process
// lifetime. Interrupted is terminal in-memory (the job will be
// re-enqueued by the NEXT boot's rescan, not this one's runners).
func (s JobState) terminal() bool {
	switch s {
	case JobDone, JobFailed, JobCanceled, JobInterrupted:
		return true
	}
	return false
}

// resumable reports whether a persisted state should be re-enqueued
// by the restart rescan.
func (s JobState) resumable() bool {
	return s == JobQueued || s == JobRunning || s == JobInterrupted
}

// Job is one submitted pipeline run.
type Job struct {
	ID     string
	Seq    int
	Tenant string
	// Hash is the content address of the job's result (see Hash).
	Hash string
	Spec JobSpec
	// CancelOnDisconnect maps "last SSE watcher went away" to job
	// cancellation — the serving analogue of Ctrl-C.
	CancelOnDisconnect bool
	// Cached marks a submission served from the store without running.
	Cached bool

	hub  *hub
	done chan struct{}

	// enqueuedAt stamps the Push into the queue, for the queue-wait
	// histogram. Written before Push, read after Pop; the queue mutex
	// orders the accesses.
	enqueuedAt time.Time

	// persistMu serializes ledger writes for this job (a cancel racing
	// the runner may both win non-terminal transitions).
	persistMu sync.Mutex

	mu       sync.Mutex
	state    JobState
	errMsg   string
	cancel   context.CancelFunc
	canceled bool // an API/disconnect cancel was requested
}

func newJob(id string, seq int, tenant, hash string, spec JobSpec, cancelOnDisconnect bool) *Job {
	return &Job{
		ID:                 id,
		Seq:                seq,
		Tenant:             tenant,
		Hash:               hash,
		Spec:               spec,
		CancelOnDisconnect: cancelOnDisconnect,
		hub:                newHub(),
		done:               make(chan struct{}),
		state:              JobQueued,
	}
}

// State returns the current lifecycle state and error message.
func (j *Job) State() (JobState, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.state, j.errMsg
}

// Terminal reports whether the job reached a final state.
func (j *Job) Terminal() bool {
	s, _ := j.State()
	return s.terminal()
}

// setState transitions the job, closing done on the first terminal
// transition. Returns false if the job was already terminal (e.g. a
// cancel raced completion).
func (j *Job) setState(s JobState, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.terminal() {
		return false
	}
	j.state = s
	j.errMsg = errMsg
	if s.terminal() {
		close(j.done)
	}
	return true
}

// bindCancel installs the running job's context cancel; if a cancel
// request already arrived while queued, it fires immediately.
func (j *Job) bindCancel(cancel context.CancelFunc) {
	j.mu.Lock()
	fire := j.canceled
	j.cancel = cancel
	j.mu.Unlock()
	if fire {
		cancel()
	}
}

// RequestCancel marks the job canceled-by-client and interrupts it if
// running. Returns false when the job is already terminal.
func (j *Job) RequestCancel() bool {
	j.mu.Lock()
	if j.state.terminal() {
		j.mu.Unlock()
		return false
	}
	j.canceled = true
	cancel := j.cancel
	j.mu.Unlock()
	if cancel != nil {
		cancel()
	}
	return true
}

// cancelRequested reports whether a client cancel was asked for (used
// by the runner to distinguish client cancels from server shutdown).
func (j *Job) cancelRequested() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.canceled
}

// record snapshots the job as its persisted ledger form.
func (j *Job) record() *JobRecord {
	j.mu.Lock()
	defer j.mu.Unlock()
	return &JobRecord{
		ID:                 j.ID,
		Seq:                j.Seq,
		Tenant:             j.Tenant,
		Hash:               j.Hash,
		Spec:               j.Spec,
		CancelOnDisconnect: j.CancelOnDisconnect,
		State:              string(j.state),
		Cached:             j.Cached,
		Error:              j.errMsg,
	}
}
