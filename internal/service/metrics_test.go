package service

// Coverage for the operational metrics plane: the /metrics exposition
// and its instruments, the /stats schema contract, the per-job trace
// endpoint, and the SSE subscriber gauge's teardown (goroutine-leak
// guard for a client that disconnects mid-heartbeat).

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strings"
	"testing"
	"time"

	"factor/internal/telemetry/metrics"
)

// scrape fetches the Prometheus exposition.
func scrape(t *testing.T, ts *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/plain; version=0.0.4; charset=utf-8" {
		t.Fatalf("metrics content-type = %q", ct)
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestMetricsEndpoint runs one job to completion and then a cache-hit
// resubmission, asserting the scrape reflects both plus the bridged
// deterministic counters.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1, Metrics: metrics.NewRegistry()})
	spec := testSpec(pickFaultySeed(t))

	st, code := postJob(t, ts, JobRequest{JobSpec: spec})
	if code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}
	waitTerminal(t, ts, st.ID, 30*time.Second)
	if st2, code := postJob(t, ts, JobRequest{JobSpec: spec}); code != http.StatusOK || !st2.Cached {
		t.Fatalf("resubmit = %d cached=%v", code, st2.Cached)
	}

	body := scrape(t, ts)
	for _, want := range []string{
		"# TYPE factord_job_transitions_total counter",
		`factord_job_transitions_total{state="running"} 1`,
		// 2: the pipeline run plus the cache-hit job, which goes
		// straight to done without ever running.
		`factord_job_transitions_total{state="done"} 2`,
		"factord_cas_misses_total 1",
		"factord_cas_hits_total 1",
		`factord_queue_wait_seconds_count{tenant="default"} 1`,
		`factord_job_seconds_count{outcome="done"} 1`,
		// Stage latency from the span plane: the pipeline spans land as
		// one observation each.
		`stage="pipeline.build"`,
		`stage="pipeline.replay"`,
		// HTTP middleware: the submit route saw both submissions.
		`route="submit"`,
		// The one-way bridge snapshots server-plane deterministic
		// counters as labeled gauges at scrape time.
		`factord_counter{counter="service.pipeline_runs"} 1`,
		`factord_counter{counter="service.cache_hits"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("scrape missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("scrape:\n%s", body)
	}
}

// TestMetricsDisabledServesEmpty: a nil registry serves an empty (but
// valid) exposition and the instrumented paths still work.
func TestMetricsDisabledServesEmpty(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1})
	if body := scrape(t, ts); body != "" {
		t.Fatalf("disabled scrape = %q, want empty", body)
	}
	if _, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}}); code != http.StatusAccepted {
		t.Fatalf("submit with metrics disabled = %d", code)
	}
}

// TestStatsSchemaStability pins the /stats JSON contract: exactly the
// documented top-level fields, with their documented shapes. CI smoke
// jobs jq-grep this endpoint blind; adding a field requires updating
// the docs, removing or renaming one breaks consumers.
func TestStatsSchemaStability(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1})
	if _, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}}); code != http.StatusAccepted {
		t.Fatalf("submit = %d", code)
	}

	resp, err := http.Get(ts.URL + "/api/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got map[string]json.RawMessage
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}

	want := []string{"counters", "jobs", "queue_len"}
	if len(got) != len(want) {
		t.Fatalf("stats has %d top-level fields %v, want exactly %v", len(got), keys(got), want)
	}
	for _, k := range want {
		if _, ok := got[k]; !ok {
			t.Fatalf("stats missing field %q (have %v)", k, keys(got))
		}
	}
	var queueLen int
	if err := json.Unmarshal(got["queue_len"], &queueLen); err != nil || queueLen != 1 {
		t.Fatalf("queue_len = %s (%v), want 1", got["queue_len"], err)
	}
	var jobs map[string]int
	if err := json.Unmarshal(got["jobs"], &jobs); err != nil || jobs["queued"] != 1 {
		t.Fatalf("jobs = %s (%v), want {queued: 1}", got["jobs"], err)
	}
	var counters map[string]uint64
	if err := json.Unmarshal(got["counters"], &counters); err != nil {
		t.Fatalf("counters = %s (%v)", got["counters"], err)
	}
}

func keys(m map[string]json.RawMessage) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

// TestJobTraceEndpoint: with TraceJobs on, a completed job serves a
// valid Chrome-trace JSON containing the pipeline stage spans; the
// error paths return the documented statuses.
func TestJobTraceEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1, TraceJobs: true})
	st, _ := postJob(t, ts, JobRequest{JobSpec: testSpec(pickFaultySeed(t))})
	if final := waitTerminal(t, ts, st.ID, 30*time.Second); JobState(final.State) != JobDone {
		t.Fatalf("job ended %s", final.State)
	}

	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET trace = %d %s", resp.StatusCode, data)
	}
	var trace struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&trace); err != nil {
		t.Fatalf("trace is not valid Chrome-trace JSON: %v", err)
	}
	seen := map[string]bool{}
	for _, ev := range trace.TraceEvents {
		seen[ev.Name] = true
	}
	for _, want := range []string{"pipeline.build", "pipeline.replay"} {
		if !seen[want] {
			t.Errorf("trace has no %q span (events: %v)", want, seen)
		}
	}

	if resp, _ := http.Get(ts.URL + "/api/v1/jobs/j999999/trace"); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown-job trace = %d, want 404", resp.StatusCode)
	}
}

func TestJobTraceQueuedConflicts(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1, TraceJobs: true})
	st, _ := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}})
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("queued-job trace = %d, want 409", resp.StatusCode)
	}
}

func TestJobTraceDisabledIs404(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 1}) // TraceJobs off
	st, _ := postJob(t, ts, JobRequest{JobSpec: testSpec(pickFaultySeed(t))})
	waitTerminal(t, ts, st.ID, 30*time.Second)
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusNotFound || !strings.Contains(string(data), "no trace captured") {
		t.Fatalf("trace with TraceJobs off = %d %s, want 404", resp.StatusCode, data)
	}
}

// TestSSEDisconnectTeardownNoLeak is the goroutine-leak guard for the
// subscriber gauge: a client that vanishes mid-heartbeat must unwind
// its handler goroutine and return the gauge to zero.
func TestSSEDisconnectTeardownNoLeak(t *testing.T) {
	reg := metrics.NewRegistry()
	_, ts := newTestServer(t, Config{
		Runners:   -1, // job stays queued; only heartbeats flow
		Progress:  true,
		Heartbeat: 10 * time.Millisecond,
		Metrics:   reg,
	})
	st, _ := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}})

	runtime.Gosched()
	before := runtime.NumGoroutine()

	// Hold several streams open long enough to ride a few heartbeats,
	// then cut every client mid-stream via its context deadline.
	const streams = 4
	done := make(chan struct{}, streams)
	for i := 0; i < streams; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			raw := drainSSE(t, context.Background(), ts.URL+"/api/v1/jobs/"+st.ID+"/events", 120*time.Millisecond)
			if !strings.Contains(raw, ": heartbeat") {
				t.Error("stream saw no heartbeat before disconnect")
			}
		}()
	}

	// While connected, the gauge counts the subscribers.
	waitFor(t, 2*time.Second, func() bool {
		return strings.Contains(scrape(t, ts), "factord_sse_subscribers 4")
	}, "gauge never reached 4 subscribers")

	for i := 0; i < streams; i++ {
		<-done
	}

	// Teardown: gauge back to zero, handler goroutines unwound.
	waitFor(t, 5*time.Second, func() bool {
		return strings.Contains(scrape(t, ts), "factord_sse_subscribers 0")
	}, "gauge never returned to 0 after disconnects")
	waitFor(t, 5*time.Second, func() bool {
		runtime.Gosched()
		return runtime.NumGoroutine() <= before+1
	}, "handler goroutines leaked after client disconnects")
}

// waitFor polls cond until it holds or the deadline expires.
func waitFor(t *testing.T, limit time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(limit)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("%s (goroutines now %d)", msg, runtime.NumGoroutine())
		}
		time.Sleep(5 * time.Millisecond)
	}
}
