package service

import (
	"fmt"
	"io"
	"strings"
	"sync"
)

// Event is one server-sent event. WriteTo emits the wire framing:
//
//	id: <id>
//	event: <event>
//	data: <line>          (one data: field per newline in Data)
//	<blank line>
//
// An Event with only Data is a bare message event; a zero ID is
// omitted (heartbeat comments are written directly, not as Events).
type Event struct {
	ID    int
	Event string
	Data  string
}

// WriteTo frames e onto w per the SSE wire format. Multi-line data
// becomes one data: field per line, which the browser EventSource API
// rejoins with newlines.
func (e Event) WriteTo(w io.Writer) (int64, error) {
	var b strings.Builder
	if e.ID != 0 {
		fmt.Fprintf(&b, "id: %d\n", e.ID)
	}
	if e.Event != "" {
		fmt.Fprintf(&b, "event: %s\n", e.Event)
	}
	for _, line := range strings.Split(strings.TrimRight(e.Data, "\n"), "\n") {
		fmt.Fprintf(&b, "data: %s\n", line)
	}
	b.WriteString("\n")
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// heartbeatComment is the keep-alive frame: an SSE comment line, which
// consumers ignore but which defeats idle-connection timeouts. Emitted
// only when progress streaming is enabled (the cadence gate).
const heartbeatComment = ": heartbeat\n\n"

// hub fans job lifecycle events out to SSE subscribers. Publishing
// never blocks the job runner: slow subscribers drop events (each
// event also carries a monotonically increasing ID, so a consumer can
// detect the gap), and the terminal state is always re-delivered from
// the job record rather than the stream.
type hub struct {
	mu       sync.Mutex
	nextID   int
	subs     map[chan Event]struct{}
	watchers int
	dropped  uint64
}

func newHub() *hub {
	return &hub{subs: map[chan Event]struct{}{}}
}

// publish fans an event out to all subscribers, assigning its ID.
func (h *hub) publish(event, data string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.nextID++
	ev := Event{ID: h.nextID, Event: event, Data: data}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default:
			h.dropped++
		}
	}
}

// subscribe registers a new consumer; the returned cancel must be
// called exactly once. The remaining watcher count after cancel is
// reported through the callback so the server can map "last client
// disconnected" to job cancellation.
func (h *hub) subscribe() (ch chan Event, cancel func() (watchersLeft int)) {
	ch = make(chan Event, 64)
	h.mu.Lock()
	h.subs[ch] = struct{}{}
	h.watchers++
	h.mu.Unlock()
	var once sync.Once
	return ch, func() int {
		h.mu.Lock()
		defer h.mu.Unlock()
		once.Do(func() {
			delete(h.subs, ch)
			h.watchers--
		})
		return h.watchers
	}
}

// Dropped is the number of events discarded on slow subscribers.
func (h *hub) Dropped() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.dropped
}

// lineWriter adapts the hub to telemetry.EnableProgress: the
// rate-limited heartbeat lines the ATPG engine emits become "progress"
// SSE events. Progressf writes whole lines, so splitting on newlines
// is frame-accurate.
type lineWriter struct {
	h *hub
}

func (lw lineWriter) Write(p []byte) (int, error) {
	for _, line := range strings.Split(strings.TrimRight(string(p), "\n"), "\n") {
		if line != "" {
			lw.h.publish("progress", line)
		}
	}
	return len(p), nil
}
