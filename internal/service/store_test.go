package service

// Satellite coverage: netlist.Snapshot as the CAS storage format —
// round-trip a store entry through write/load, and assert the
// design-hash key is stable across worker counts and across a
// shards-topology change (the serving analogue of the corpus
// journal's topology-free fingerprint).

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"testing"

	"factor/internal/netlist"
)

func TestStoreResultRoundTrip(t *testing.T) {
	s, err := NewStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	spec := testSpec(1)
	b, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	snap := b.Snapshot()
	hash := Hash(snap, spec)
	report := []byte(`{"tool":"factor"}` + "\n")

	if s.HasResult(hash) {
		t.Fatal("fresh store claims a result")
	}
	if _, err := s.Report(hash); !os.IsNotExist(err) {
		t.Fatalf("missing report read: %v, want not-exist", err)
	}
	if err := s.PutResult(hash, snap, []byte("{}\n"), report); err != nil {
		t.Fatal(err)
	}
	if !s.HasResult(hash) {
		t.Fatal("stored result not found")
	}
	got, err := s.Report(hash)
	if err != nil || !bytes.Equal(got, report) {
		t.Fatalf("report round-trip: %q, %v", got, err)
	}

	// The stored snapshot must load back into a usable netlist whose
	// re-snapshot is byte-identical (the codec is canonical).
	stored, err := s.Snapshot(hash)
	if err != nil {
		t.Fatal(err)
	}
	nl, err := netlist.LoadSnapshot(stored)
	if err != nil {
		t.Fatalf("loading stored snapshot: %v", err)
	}
	if !bytes.Equal(nl.Snapshot(), snap) {
		t.Fatal("snapshot round-trip not byte-identical")
	}

	// Idempotent republish (a job re-run after a crash mid-publish).
	if err := s.PutResult(hash, snap, []byte("{}\n"), report); err != nil {
		t.Fatalf("republish: %v", err)
	}
}

// TestHashStableAcrossTopology: the content address must not depend on
// how the pipeline will be parallelized — the same design hashes
// identically whatever Workers says, and rebuilding the netlist from
// scratch (a different process topology entirely) reproduces the
// exact snapshot bytes and therefore the same key.
func TestHashStableAcrossTopology(t *testing.T) {
	spec := testSpec(2)

	b1, err := Build(context.Background(), spec)
	if err != nil {
		t.Fatal(err)
	}
	key := Hash(b1.Snapshot(), spec)

	for _, workers := range []int{1, 4, 9} {
		w := spec
		w.Workers = workers
		bw, err := Build(context.Background(), w)
		if err != nil {
			t.Fatal(err)
		}
		if got := Hash(bw.Snapshot(), w); got != key {
			t.Fatalf("workers=%d changed the design hash", workers)
		}
	}

	// Fresh builds (new parse + synth, as a restarted or differently
	// sharded server would do) must reproduce identical snapshot
	// bytes — the property the corpus journal's topology-free
	// fingerprint relies on.
	for i := 0; i < 3; i++ {
		bi, err := Build(context.Background(), spec)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bi.Snapshot(), b1.Snapshot()) {
			t.Fatalf("rebuild %d produced different snapshot bytes", i)
		}
	}
}

func TestStoreJobLedger(t *testing.T) {
	dir := t.TempDir()
	s, err := NewStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	recs := []*JobRecord{
		{ID: "j000002", Seq: 2, Tenant: "b", Hash: "h2", State: "queued"},
		{ID: "j000000", Seq: 0, Tenant: "a", Hash: "h0", State: "done"},
		{ID: "j000001", Seq: 1, Tenant: "a", Hash: "h1", State: "running"},
	}
	for _, r := range recs {
		if err := s.PutJob(r); err != nil {
			t.Fatal(err)
		}
	}
	// A torn record (crash mid-rewrite before the atomic rename
	// existed) must be skipped, not fail the boot.
	if err := os.WriteFile(filepath.Join(dir, "jobs", "j000003.json"), []byte(`{"id": "j0000`), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := s.LoadJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Fatalf("loaded %d records, want 3", len(got))
	}
	for i, want := range []string{"j000000", "j000001", "j000002"} {
		if got[i].ID != want {
			t.Fatalf("record %d = %s, want %s (sequence order)", i, got[i].ID, want)
		}
	}
}
