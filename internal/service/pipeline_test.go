package service

import (
	"bytes"
	"context"
	"testing"

	"factor/internal/telemetry"
)

// TestPipelineDeterministic: the canonical report bytes are a pure
// function of the spec — identical across repeated runs and across
// worker counts (the property that makes content-addressed caching
// and CLI/HTTP byte comparison sound).
func TestPipelineDeterministic(t *testing.T) {
	seed := pickFaultySeed(t)
	spec := testSpec(seed)

	base := renderPipeline(t, spec)
	if got := renderPipeline(t, spec); !bytes.Equal(got, base) {
		t.Fatal("two identical runs rendered different reports")
	}
	for _, workers := range []int{2, 3} {
		w := spec
		w.Workers = workers
		if got := renderPipeline(t, w); !bytes.Equal(got, base) {
			t.Fatalf("workers=%d rendered a different report", workers)
		}
	}
}

// TestPipelineCheckpointCadenceInvariant: flush cadence and journal
// presence change durability, never report bytes.
func TestPipelineCadenceInvariant(t *testing.T) {
	spec := testSpec(pickFaultySeed(t))
	base := renderPipeline(t, spec)

	rep, _, err := RunPipeline(context.Background(), spec, RunConfig{
		Tel:             telemetry.New(),
		CheckpointEvery: 1,
	})
	if err != nil {
		t.Fatalf("RunPipeline(every=1): %v", err)
	}
	got, err := rep.Render()
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	if !bytes.Equal(got, base) {
		t.Fatal("checkpoint cadence changed report bytes")
	}
}

// TestPipelineMUTExtraction: a spec naming a MUT runs extraction
// first and reports the MUT row.
func TestPipelineMUTExtraction(t *testing.T) {
	spec := JobSpec{
		MUT:             "u_core.u_alu",
		RandomSequences: 2,
		RandomSeqLen:    4,
		BacktrackLimit:  8,
		MaxFrames:       2,
	}
	rep, b, err := RunPipeline(context.Background(), spec, RunConfig{Tel: telemetry.New()})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	if len(rep.MUTs) != 1 || rep.MUTs[0].Path != "u_core.u_alu" || !rep.MUTs[0].OK {
		t.Fatalf("MUT section = %+v", rep.MUTs)
	}
	if len(b.Faults) == 0 || rep.ATPG == nil || rep.ATPG.TotalFaults != len(b.Faults) {
		t.Fatalf("fault accounting: built %d, report %+v", len(b.Faults), rep.ATPG)
	}
	if rep.FaultSim == nil || rep.FaultSim.Sequences != rep.ATPG.Tests {
		t.Fatalf("fault_sim section = %+v, want %d sequences", rep.FaultSim, rep.ATPG.Tests)
	}
}

// TestPipelineCancellation: a canceled context interrupts the run with
// an error and no report.
func TestPipelineCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, _, err := RunPipeline(ctx, testSpec(1), RunConfig{})
	if err == nil {
		t.Fatalf("canceled run returned report %v", rep)
	}
}

// TestBuildRejectsGarbage: admission-time build surfaces parse errors.
func TestBuildRejectsGarbage(t *testing.T) {
	if _, err := Build(context.Background(), JobSpec{Design: "modool oops("}); err == nil {
		t.Fatal("garbage design built successfully")
	}
	if _, err := Build(context.Background(), JobSpec{MUT: "no.such.instance"}); err == nil {
		t.Fatal("unknown MUT built successfully")
	}
}
