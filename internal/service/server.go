package service

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"factor/internal/atpg"
	"factor/internal/telemetry"
	"factor/internal/telemetry/metrics"
)

// Config shapes a Server.
type Config struct {
	// DataDir roots the content-addressed store and job ledger.
	DataDir string
	// QueueCap bounds the job queue (default 64).
	QueueCap int
	// Runners is the number of concurrent job runner goroutines
	// (default 2; negative = none, for queue-only inspection in tests
	// and tooling). Each job additionally parallelizes internally per
	// its spec's Workers.
	Runners int
	// JobBudget is the soft per-job time budget (0 = none). See
	// RunConfig.Budget for the determinism caveat.
	JobBudget time.Duration
	// CheckpointEvery is the journal flush cadence in merged
	// deterministic-phase faults (default 64; never changes results).
	CheckpointEvery int
	// Progress enables SSE progress events and heartbeats (the
	// telemetry ProgressEnabled gate).
	Progress bool
	// ProgressEvery rate-limits progress events (default 250ms).
	ProgressEvery time.Duration
	// Heartbeat is the SSE keep-alive cadence (default 15s), active
	// only when Progress is on.
	Heartbeat time.Duration
	// Tel is the server-plane telemetry handle (cache hits, queue
	// rejects, ...). Nil allocates one. Per-job pipeline counters go
	// to a fresh per-job handle instead, so job reports carry exactly
	// the counters a CLI run would.
	Tel *telemetry.Telemetry
	// Metrics is the operational metrics registry behind GET /metrics.
	// Nil disables the plane: every instrument degrades to a nil-safe
	// no-op and the exposition is empty. Enabling it never changes
	// report bytes (invariant I8 covers this).
	Metrics *metrics.Registry
	// TraceJobs buffers each job's wall-clock spans and publishes the
	// assembled Chrome trace at GET /api/v1/jobs/{id}/trace once the
	// job completes. Diagnostic plane only; never report material.
	TraceJobs bool
	// Logger receives structured request/job logs (slog). Nil
	// discards.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.Runners == 0 {
		c.Runners = 2
	} else if c.Runners < 0 {
		c.Runners = 0
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 64
	}
	if c.ProgressEvery <= 0 {
		c.ProgressEvery = 250 * time.Millisecond
	}
	if c.Heartbeat <= 0 {
		c.Heartbeat = 15 * time.Second
	}
	if c.Tel == nil {
		c.Tel = telemetry.New()
	}
	if c.Logger == nil {
		c.Logger = slog.New(slog.DiscardHandler)
	}
	return c
}

// Server is the FACTOR job server: HTTP handlers feeding a bounded
// tenant-fair queue drained by runner goroutines, backed by the
// content-addressed store.
type Server struct {
	cfg   Config
	store *Store
	q     *queue
	tel   *telemetry.Telemetry
	met   *serverMetrics
	log   *slog.Logger
	mux   *http.ServeMux

	baseCtx   context.Context
	interrupt context.CancelFunc
	// stopCh closes when shutdown begins: SSE streams end, submits 503.
	stopCh    chan struct{}
	stopOnce  sync.Once
	accepting atomic.Bool

	mu      sync.Mutex
	jobs    map[string]*Job
	nextSeq int

	runWG sync.WaitGroup
}

// New opens the store, replays the job ledger (re-enqueueing every
// non-terminal job, to be resumed from its checkpoint journal), and
// builds the handler. Runners start with Start.
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	store, err := NewStore(cfg.DataDir)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:       cfg,
		store:     store,
		q:         newQueue(cfg.QueueCap),
		tel:       cfg.Tel,
		met:       newServerMetrics(cfg.Metrics),
		log:       cfg.Logger,
		baseCtx:   ctx,
		interrupt: cancel,
		stopCh:    make(chan struct{}),
		jobs:      map[string]*Job{},
	}
	// The deterministic server-plane counters show up in the scrape
	// read-only; the flow is one-way, so reports cannot fork.
	metrics.Bridge(cfg.Metrics, "factord_counter",
		"server-plane deterministic telemetry counters", cfg.Tel)
	s.accepting.Store(true)
	if err := s.rescan(); err != nil {
		cancel()
		return nil, err
	}
	s.buildMux()
	return s, nil
}

// rescan replays the persisted ledger: terminal jobs become queryable
// history, non-terminal jobs are re-enqueued in submission order.
func (s *Server) rescan() error {
	recs, err := s.store.LoadJobs()
	if err != nil {
		return err
	}
	for _, rec := range recs {
		j := newJob(rec.ID, rec.Seq, rec.Tenant, rec.Hash, rec.Spec, rec.CancelOnDisconnect)
		j.Cached = rec.Cached
		if rec.Seq >= s.nextSeq {
			s.nextSeq = rec.Seq + 1
		}
		state := JobState(rec.State)
		if state.resumable() {
			// Interrupted or mid-run at crash: back to the queue; the
			// runner resumes from the journal.
			s.tel.AddCounter("service.jobs_resumed", 1)
			s.jobs[j.ID] = j
			j.enqueuedAt = time.Now()
			if err := s.q.Push(j); err != nil {
				// Over-capacity ledger (cap shrank across restart):
				// leave the job visible but unqueued; a resubmission
				// of the same design will still be served via CAS.
				j.setState(JobFailed, "restart rescan: "+err.Error())
				s.persist(j)
			}
			continue
		}
		j.setState(state, rec.Error)
		s.jobs[j.ID] = j
	}
	return nil
}

// Start launches the runner pool.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Runners; i++ {
		s.runWG.Add(1)
		go func() {
			defer s.runWG.Done()
			for {
				j, ok := s.q.Pop()
				if !ok {
					return
				}
				s.met.queueDepth.With(j.Tenant).Set(float64(s.q.TenantLen(j.Tenant)))
				if !j.enqueuedAt.IsZero() {
					s.met.queueWait.With(j.Tenant).Observe(time.Since(j.enqueuedAt).Seconds())
				}
				if s.baseCtx.Err() != nil {
					// Hard stop: leave the job resumable for the next
					// boot.
					s.transition(j, JobInterrupted, "server shutting down")
					continue
				}
				s.runJob(j)
			}
		}()
	}
}

// Handler is the HTTP API.
func (s *Server) Handler() http.Handler { return s.mux }

// Telemetry is the server-plane counter handle (cache hits, rejects).
func (s *Server) Telemetry() *telemetry.Telemetry { return s.tel }

// QueueLen is the number of queued jobs.
func (s *Server) QueueLen() int { return s.q.Len() }

// Interrupt cancels every running job. Jobs flush their checkpoint
// journals and persist as interrupted — resumable on next boot. Used
// by the SIGTERM hard-deadline path and by crash tests as an
// in-process stand-in for kill -9.
func (s *Server) Interrupt() {
	s.beginStop()
	s.interrupt()
}

func (s *Server) beginStop() {
	s.stopOnce.Do(func() {
		s.accepting.Store(false)
		close(s.stopCh)
		s.q.Close()
	})
}

// Shutdown drains gracefully: stop accepting, let the runners finish
// every queued job, and — if ctx expires first — interrupt what is
// left (interrupted jobs resume on next boot). Always returns after
// the runner pool exits.
func (s *Server) Shutdown(ctx context.Context) error {
	s.beginStop()
	done := make(chan struct{})
	go func() {
		s.runWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.interrupt()
		<-done
		return ctx.Err()
	}
}

// Close is an immediate Shutdown: interrupt running jobs and wait.
func (s *Server) Close() error {
	s.Interrupt()
	s.runWG.Wait()
	return nil
}

// persist writes the job's current ledger record.
func (s *Server) persist(j *Job) {
	j.persistMu.Lock()
	defer j.persistMu.Unlock()
	if err := s.store.PutJob(j.record()); err != nil {
		fmt.Fprintf(os.Stderr, "factord: persisting job %s: %v\n", j.ID, err)
	}
}

// stateData renders the canonical SSE data payload for a state event.
func stateData(j *Job) string {
	st, errMsg := j.State()
	payload := map[string]any{"id": j.ID, "state": string(st)}
	if j.Cached {
		payload["cached"] = true
	}
	if errMsg != "" {
		payload["error"] = errMsg
	}
	data, _ := json.Marshal(payload)
	return string(data)
}

// transition moves a job to state, persists it, and publishes the SSE
// state event.
func (s *Server) transition(j *Job, state JobState, errMsg string) {
	if !j.setState(state, errMsg) {
		return
	}
	s.met.transitions.With(string(state)).Inc()
	s.persist(j)
	event := "state"
	if state.terminal() {
		event = "done"
	}
	j.hub.publish(event, stateData(j))
}

// runJob executes one job end to end.
func (s *Server) runJob(j *Job) {
	start := time.Now()
	ctx, cancel := context.WithCancel(s.baseCtx)
	defer cancel()
	j.bindCancel(cancel)
	if j.cancelRequested() {
		s.transition(j, JobCanceled, "canceled before start")
		s.tel.AddCounter("service.jobs_canceled", 1)
		return
	}
	s.transition(j, JobRunning, "")
	s.log.Info("job started", "job", j.ID, "tenant", j.Tenant, "hash", j.Hash)

	// Per-job telemetry: a fresh handle so the report carries exactly
	// the pipeline counters a CLI run of the same spec would. Spans
	// buffered here become the job's /trace artifact; they live on the
	// wall-clock plane and never touch the report.
	jtel := telemetry.New()
	jtel.SetTool("factor")
	if s.cfg.TraceJobs {
		jtel.EnableTrace()
	}
	if s.cfg.Progress {
		jtel.EnableProgress(lineWriter{j.hub}, s.cfg.ProgressEvery)
	}
	defer func() {
		state, _ := j.State()
		s.met.observeStages(jtel)
		s.met.jobSecs.With(string(state)).Observe(time.Since(start).Seconds())
		s.log.Info("job finished",
			"job", j.ID, "tenant", j.Tenant, "outcome", string(state),
			"duration_ms", time.Since(start).Milliseconds(), "cached", false)
	}()

	ckptPath := s.store.CheckpointPath(j.ID)
	journal := atpg.NewJournal(ckptPath)
	sink := func(ck *atpg.Checkpoint) error {
		if err := journal.Flush(ck); err != nil {
			return err
		}
		s.tel.AddCounter("service.checkpoint_flushes", 1)
		j.hub.publish("checkpoint", fmt.Sprintf(`{"id":%q,"generation":%d}`, j.ID, ck.Generation))
		return nil
	}
	var resume *atpg.Checkpoint
	if ck, fellBack, err := atpg.LoadLatest(ckptPath); err == nil {
		resume = ck
		if fellBack {
			s.tel.AddCounter("service.resume_fallbacks", 1)
		}
	} else if !errors.Is(err, os.ErrNotExist) {
		s.transition(j, JobFailed, "loading checkpoint journal: "+err.Error())
		s.tel.AddCounter("service.jobs_failed", 1)
		return
	}

	s.tel.AddCounter("service.pipeline_runs", 1)
	rep, b, runErr := RunPipeline(ctx, j.Spec, RunConfig{
		Tel:             jtel,
		Checkpoint:      sink,
		CheckpointEvery: s.cfg.CheckpointEvery,
		Resume:          resume,
		Budget:          s.cfg.JobBudget,
	})

	switch {
	case runErr == nil:
		report, err := rep.Render()
		if err == nil {
			spec, _ := json.Marshal(j.Spec.withDefaults())
			err = s.store.PutResult(j.Hash, b.Snapshot(), append(spec, '\n'), report)
		}
		if err != nil {
			s.transition(j, JobFailed, "publishing result: "+err.Error())
			s.tel.AddCounter("service.jobs_failed", 1)
			return
		}
		if s.cfg.TraceJobs {
			// Best effort: the trace is a diagnostic artifact, so a
			// publish failure degrades to "no trace", never the job.
			var buf bytes.Buffer
			if err := jtel.WriteTrace(&buf); err == nil {
				if err := s.store.PutTrace(j.ID, buf.Bytes()); err != nil {
					s.log.Warn("publishing job trace", "job", j.ID, "error", err.Error())
				}
			}
		}
		s.store.RemoveCheckpoint(j.ID)
		s.transition(j, JobDone, "")
		s.tel.AddCounter("service.jobs_completed", 1)
	case s.baseCtx.Err() != nil && !j.cancelRequested():
		// Server shutdown, not a client cancel: the journal holds the
		// progress; next boot re-enqueues and resumes.
		s.transition(j, JobInterrupted, "server shutting down")
		s.tel.AddCounter("service.jobs_interrupted", 1)
	case j.cancelRequested():
		s.transition(j, JobCanceled, "canceled")
		s.tel.AddCounter("service.jobs_canceled", 1)
	default:
		s.transition(j, JobFailed, runErr.Error())
		s.tel.AddCounter("service.jobs_failed", 1)
	}
}

// submit admits a spec: build (validating the design and computing the
// content address), serve from the store when the result exists, else
// enqueue. The *Job is returned in both cases.
func (s *Server) submit(tenant string, spec JobSpec, cancelOnDisconnect bool) (*Job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Admission build: cheap (parse+synth), no telemetry — the job's
	// own run rebuilds under its per-job handle.
	b, err := Build(s.baseCtx, spec)
	if err != nil {
		return nil, err
	}
	hash := Hash(b.Snapshot(), spec)

	s.mu.Lock()
	seq := s.nextSeq
	s.nextSeq++
	id := fmt.Sprintf("j%06d", seq)
	j := newJob(id, seq, tenant, hash, spec, cancelOnDisconnect)
	s.jobs[id] = j
	s.mu.Unlock()
	s.tel.AddCounter("service.jobs_submitted", 1)

	if s.store.HasResult(hash) {
		// Content-addressed cache hit: done without running.
		j.Cached = true
		s.tel.AddCounter("service.cache_hits", 1)
		s.met.casHits.Inc()
		s.transition(j, JobDone, "")
		s.log.Info("job served from cache", "job", j.ID, "tenant", tenant,
			"hash", hash, "cached", true)
		return j, nil
	}
	s.tel.AddCounter("service.cache_misses", 1)
	s.met.casMisses.Inc()
	j.enqueuedAt = time.Now()
	if err := s.q.Push(j); err != nil {
		s.tel.AddCounter("service.queue_rejects", 1)
		s.log.Warn("job rejected", "tenant", tenant, "error", err.Error())
		s.mu.Lock()
		delete(s.jobs, j.ID)
		s.mu.Unlock()
		return nil, err
	}
	s.met.queueDepth.With(tenant).Set(float64(s.q.TenantLen(tenant)))
	s.persist(j)
	return j, nil
}

// job looks up a job by ID.
func (s *Server) job(id string) *Job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.jobs[id]
}
