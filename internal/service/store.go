package service

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sort"

	"factor/internal/atpg"
	"factor/internal/factorerr"
)

// Store is the server's durable state: a content-addressed result
// store plus the job ledger that makes in-flight jobs resumable across
// a restart.
//
// Layout under the data dir:
//
//	cas/<hh>/<hash>/spec.json     canonical result-shaping options
//	cas/<hh>/<hash>/design.snap   compiled-netlist snapshot (FCSN codec)
//	cas/<hh>/<hash>/report.json   the canonical report bytes
//	jobs/<id>.json                job ledger record
//	jobs/<id>.ckpt                ATPG checkpoint journal (v3, + .prev)
//
// report.json is written last via rename, so its presence is the
// completion marker: a crash mid-publish leaves a partial entry that
// the next run of the same job simply overwrites with identical bytes.
type Store struct {
	root string
}

// NewStore opens (creating if needed) a store rooted at dir.
func NewStore(dir string) (*Store, error) {
	s := &Store{root: dir}
	for _, d := range []string{s.casRoot(), s.jobsRoot()} {
		if err := os.MkdirAll(d, 0o755); err != nil {
			return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
		}
	}
	return s, nil
}

func (s *Store) casRoot() string  { return filepath.Join(s.root, "cas") }
func (s *Store) jobsRoot() string { return filepath.Join(s.root, "jobs") }

func (s *Store) entryDir(hash string) string {
	shard := "00"
	if len(hash) >= 2 {
		shard = hash[:2]
	}
	return filepath.Join(s.casRoot(), shard, hash)
}

// CheckpointPath is where a job's ATPG journal lives.
func (s *Store) CheckpointPath(id string) string {
	return filepath.Join(s.jobsRoot(), id+".ckpt")
}

func (s *Store) jobPath(id string) string {
	return filepath.Join(s.jobsRoot(), id+".json")
}

// writeFileAtomic writes data via a temp file + rename so readers
// never observe a torn file.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return nil
}

// PutResult publishes a completed job's artifacts under its content
// address. Idempotent: re-running the same hash writes byte-identical
// files.
func (s *Store) PutResult(hash string, snapshot, spec, report []byte) error {
	dir := s.entryDir(hash)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	if err := writeFileAtomic(filepath.Join(dir, "spec.json"), spec); err != nil {
		return err
	}
	if err := writeFileAtomic(filepath.Join(dir, "design.snap"), snapshot); err != nil {
		return err
	}
	// The completion marker goes last.
	return writeFileAtomic(filepath.Join(dir, "report.json"), report)
}

// Report returns the stored report bytes for hash, or os.ErrNotExist.
func (s *Store) Report(hash string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.entryDir(hash), "report.json"))
}

// Snapshot returns the stored compiled-netlist snapshot for hash.
func (s *Store) Snapshot(hash string) ([]byte, error) {
	return os.ReadFile(filepath.Join(s.entryDir(hash), "design.snap"))
}

// HasResult reports whether a completed entry exists for hash.
func (s *Store) HasResult(hash string) bool {
	_, err := os.Stat(filepath.Join(s.entryDir(hash), "report.json"))
	return err == nil
}

// JobRecord is the persisted form of a job: enough to re-enqueue and
// resume it after a server restart.
type JobRecord struct {
	ID                 string  `json:"id"`
	Seq                int     `json:"seq"`
	Tenant             string  `json:"tenant"`
	Hash               string  `json:"hash"`
	Spec               JobSpec `json:"spec"`
	CancelOnDisconnect bool    `json:"cancel_on_disconnect,omitempty"`
	State              string  `json:"state"`
	Cached             bool    `json:"cached,omitempty"`
	Error              string  `json:"error,omitempty"`
}

// PutJob persists a job ledger record (atomic replace).
func (s *Store) PutJob(rec *JobRecord) error {
	data, err := json.MarshalIndent(rec, "", "  ")
	if err != nil {
		return factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	return writeFileAtomic(s.jobPath(rec.ID), append(data, '\n'))
}

// LoadJobs reads every ledger record, ordered by submission sequence —
// the restart rescan that turns non-terminal records back into queued
// work.
func (s *Store) LoadJobs() ([]*JobRecord, error) {
	entries, err := os.ReadDir(s.jobsRoot())
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			return nil, nil
		}
		return nil, factorerr.Wrap(factorerr.StageIO, factorerr.CodeIO, err)
	}
	var recs []*JobRecord
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".json" {
			continue
		}
		data, err := os.ReadFile(filepath.Join(s.jobsRoot(), e.Name()))
		if err != nil {
			continue
		}
		rec := &JobRecord{}
		if err := json.Unmarshal(data, rec); err != nil {
			continue // torn record from a crash mid-rewrite; drop it
		}
		recs = append(recs, rec)
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].Seq < recs[j].Seq })
	return recs, nil
}

// TracePath is where a job's Chrome-trace artifact lives.
func (s *Store) TracePath(id string) string {
	return filepath.Join(s.jobsRoot(), id+".trace.json")
}

// PutTrace publishes a completed job's Chrome-trace JSON (atomic
// replace). The trace is diagnostic: it is keyed by job, not content
// address, because wall-clock spans legitimately differ between runs
// of the same design.
func (s *Store) PutTrace(id string, data []byte) error {
	return writeFileAtomic(s.TracePath(id), data)
}

// Trace returns a job's stored trace bytes, or os.ErrNotExist.
func (s *Store) Trace(id string) ([]byte, error) {
	return os.ReadFile(s.TracePath(id))
}

// RemoveCheckpoint discards a finished job's journal (best effort).
func (s *Store) RemoveCheckpoint(id string) {
	os.Remove(s.CheckpointPath(id))
	os.Remove(s.CheckpointPath(id) + atpg.BackupSuffix)
}
