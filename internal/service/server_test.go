package service

// Handler table tests over httptest: status codes, error shapes, the
// cache-hit fast path, cancellation, and admission control.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"factor/internal/failpoint"
)

// TestHandlerTable drives each endpoint's error paths against one
// runnerless server (jobs stay queued, so states are predictable).
func TestHandlerTable(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1, QueueCap: 2})
	design := testDesign(1)

	queued, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: design}})
	if code != http.StatusAccepted || queued.State != string(JobQueued) {
		t.Fatalf("seed submit = %d %+v", code, queued)
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
		substr string
	}{
		{"healthz", "GET", "/api/v1/healthz", "", http.StatusOK, `"ok"`},
		{"stats", "GET", "/api/v1/stats", "", http.StatusOK, `"queue_len"`},
		{"list", "GET", "/api/v1/jobs", "", http.StatusOK, queued.ID},
		{"status", "GET", "/api/v1/jobs/" + queued.ID, "", http.StatusOK, `"queued"`},
		{"bad json", "POST", "/api/v1/jobs", `{"design": 12`, http.StatusBadRequest, "decoding job request"},
		{"garbage design", "POST", "/api/v1/jobs", `{"design": "modool oops("}`, http.StatusUnprocessableEntity, "error"},
		{"bad mode", "POST", "/api/v1/jobs", `{"mode": "vertical"}`, http.StatusUnprocessableEntity, "mode"},
		{"unknown job status", "GET", "/api/v1/jobs/j999999", "", http.StatusNotFound, "unknown job"},
		{"unknown job report", "GET", "/api/v1/jobs/j999999/report", "", http.StatusNotFound, "unknown job"},
		{"unknown job events", "GET", "/api/v1/jobs/j999999/events", "", http.StatusNotFound, "unknown job"},
		{"unknown job cancel", "DELETE", "/api/v1/jobs/j999999", "", http.StatusNotFound, "unknown job"},
		{"report before done", "GET", "/api/v1/jobs/" + queued.ID + "/report", "", http.StatusConflict, "no report yet"},
		{"unknown design report", "GET", "/api/v1/designs/deadbeef/report", "", http.StatusNotFound, "no stored result"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req, err := http.NewRequest(tc.method, ts.URL+tc.path, strings.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			data, _ := io.ReadAll(resp.Body)
			if resp.StatusCode != tc.code {
				t.Fatalf("%s %s = %d %s, want %d", tc.method, tc.path, resp.StatusCode, data, tc.code)
			}
			if !strings.Contains(string(data), tc.substr) {
				t.Fatalf("%s %s body %q missing %q", tc.method, tc.path, data, tc.substr)
			}
		})
	}
}

func TestQueueFullRejects(t *testing.T) {
	srv, ts := newTestServer(t, Config{Runners: -1, QueueCap: 1})
	if _, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}}); code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	if _, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(2)}}); code != http.StatusTooManyRequests {
		t.Fatalf("over-capacity submit = %d, want 429", code)
	}
	if srv.Telemetry().Counters()["service.queue_rejects"] != 1 {
		t.Fatalf("queue_rejects = %v", srv.Telemetry().Counters())
	}
	// The rejected job must not linger in the listing.
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list struct {
		Jobs []JobStatus `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Jobs) != 1 {
		t.Fatalf("job list after reject = %+v", list.Jobs)
	}
}

func TestCancelQueuedJob(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: -1})
	st, _ := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}})

	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel = %d", resp.StatusCode)
	}
	if got := getStatus(t, ts, st.ID); JobState(got.State) != JobCanceled {
		t.Fatalf("state after cancel = %s", got.State)
	}
	// Second cancel conflicts: the job is already terminal.
	req2, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+st.ID, nil)
	resp2, err := http.DefaultClient.Do(req2)
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	if resp2.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel = %d, want 409", resp2.StatusCode)
	}
}

func TestCancelRunningJob(t *testing.T) {
	// Delay every deterministic-phase search step so the tiny test
	// design stays mid-run long enough for the cancel to land.
	reg, err := failpoint.Parse("atpg.search=delay")
	if err != nil {
		t.Fatal(err)
	}
	failpoint.Activate(reg)
	defer failpoint.Deactivate()

	_, ts := newTestServer(t, Config{Runners: 1})
	st, _ := postJob(t, ts, JobRequest{JobSpec: testSpec(pickFaultySeed(t))})

	deadline := time.Now().Add(10 * time.Second)
	for {
		cur := getStatus(t, ts, st.ID)
		if JobState(cur.State) == JobRunning {
			break
		}
		if JobState(cur.State) != JobQueued || time.Now().After(deadline) {
			t.Fatalf("job reached %s before the cancel could land", cur.State)
		}
		time.Sleep(time.Millisecond)
	}
	req, _ := http.NewRequest(http.MethodDelete, ts.URL+"/api/v1/jobs/"+st.ID, nil)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	final := waitTerminal(t, ts, st.ID, 30*time.Second)
	// The run may complete before the context cancel is observed; both
	// canceled and done are legal, anything else is not.
	if s := JobState(final.State); s != JobCanceled && s != JobDone {
		t.Fatalf("state after mid-run cancel = %s", final.State)
	}
}

// TestCacheHitServesStoredReport: resubmitting the same spec is served
// from the content-addressed store without re-running the pipeline, and
// the stored bytes equal a direct CLI-path render.
func TestCacheHitServesStoredReport(t *testing.T) {
	srv, ts := newTestServer(t, Config{Runners: 1})
	spec := testSpec(pickFaultySeed(t))

	first, code := postJob(t, ts, JobRequest{JobSpec: spec})
	if code != http.StatusAccepted {
		t.Fatalf("first submit = %d", code)
	}
	waitTerminal(t, ts, first.ID, 30*time.Second)
	runs := srv.Telemetry().Counters()["service.pipeline_runs"]

	second, code := postJob(t, ts, JobRequest{JobSpec: spec})
	if code != http.StatusOK || !second.Cached || second.State != string(JobDone) {
		t.Fatalf("resubmit = %d %+v, want cached done", code, second)
	}
	// Different worker count, same content address: still a hit.
	reparallel := spec
	reparallel.Workers = 7
	third, code := postJob(t, ts, JobRequest{JobSpec: reparallel})
	if code != http.StatusOK || !third.Cached {
		t.Fatalf("worker-count resubmit = %d %+v, want cached", code, third)
	}

	c := srv.Telemetry().Counters()
	if c["service.cache_hits"] != 2 || c["service.pipeline_runs"] != runs {
		t.Fatalf("cache counters after resubmits: %v", c)
	}

	want := renderPipeline(t, spec)
	for _, id := range []string{first.ID, second.ID, third.ID} {
		if got := getReport(t, ts, id); !bytes.Equal(got, want) {
			t.Fatalf("job %s report differs from the CLI-path render", id)
		}
	}
	// The design-addressed endpoint serves the same bytes.
	resp, err := http.Get(ts.URL + "/api/v1/designs/" + first.Hash + "/report")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK || !bytes.Equal(data, want) {
		t.Fatalf("design report endpoint = %d, bytes equal = %v", resp.StatusCode, bytes.Equal(data, want))
	}
}

// TestSubmitAfterShutdown: a draining server refuses new work.
func TestSubmitAfterShutdown(t *testing.T) {
	srv, ts := newTestServer(t, Config{Runners: 1})
	srv.beginStop()
	if _, code := postJob(t, ts, JobRequest{JobSpec: JobSpec{Design: testDesign(1)}}); code != http.StatusServiceUnavailable {
		t.Fatalf("submit while draining = %d, want 503", code)
	}
}
