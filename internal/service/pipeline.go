package service

import (
	"context"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/cli"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/factorerr"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/shard"
	"factor/internal/synth"
	"factor/internal/telemetry"
	"factor/internal/verilog"
)

// Built is the front half of a job: the netlist ATPG will target, its
// fault universe, and the extraction outcome for the report.
type Built struct {
	Netlist *netlist.Netlist
	Faults  []fault.Fault
	// MUTs carries the per-MUT report rows when the spec asked for
	// extraction (at most one row — the service runs one MUT per job).
	MUTs []cli.MUTReport
}

// Snapshot is the compiled-netlist snapshot used as the content
// address of the job (see Hash).
func (b *Built) Snapshot() []byte { return b.Netlist.Snapshot() }

// Build runs the pipeline front for a spec: parse → (analyze →
// transform when a MUT is named) → synthesize. It is cheap relative to
// ATPG, so the server runs it twice per job — once at admission to
// compute the content address, once in the runner under the job's own
// telemetry handle so the job report carries the same counters a CLI
// run would.
func Build(ctx context.Context, spec JobSpec) (*Built, error) {
	spec = spec.withDefaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}

	var src *verilog.SourceFile
	var err error
	params := map[string]int64{}
	top := spec.Top
	if spec.Design == "" {
		src, err = arm.ParseContext(ctx)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if top == "" {
			top = arm.Top
		}
	} else {
		src, err = verilog.ParseContext(ctx, "design.v", spec.Design)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
		}
		if len(src.Modules) == 0 {
			return nil, factorerr.New(factorerr.StageParse, factorerr.CodeInput, "design has no modules")
		}
		if top == "" {
			top = "top"
			if src.Module(top) == nil {
				top = src.Modules[0].Name
			}
		}
	}
	if hasWidthParam(src, top) {
		params["W"] = int64(spec.Width)
	}

	if spec.MUT != "" {
		d, err := design.Analyze(src, top)
		if err != nil {
			return nil, factorerr.Wrap(factorerr.StageAnalyze, factorerr.CodeAnalysis, err)
		}
		tr, err := core.TransformContext(ctx, core.NewExtractor(d, spec.mode()), spec.MUT, nil, core.TransformOptions{
			TopParams: params,
		})
		if err != nil {
			return nil, err
		}
		faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
		if len(faults) == 0 {
			faults = fault.Universe(tr.Netlist)
		}
		return &Built{
			Netlist: tr.Netlist,
			Faults:  faults,
			MUTs: []cli.MUTReport{{
				Path:  spec.MUT,
				OK:    true,
				Gates: tr.MUTGates + tr.EnvGates,
				PIs:   tr.PIs,
				POs:   tr.POs,
				PIERs: len(tr.PIERs),
			}},
		}, nil
	}

	res, err := synth.SynthesizeContext(ctx, src, top, synth.Options{TopParams: params})
	if err != nil {
		return nil, factorerr.Wrap(factorerr.StageSynth, factorerr.CodeAnalysis, err)
	}
	return &Built{Netlist: res.Netlist, Faults: fault.Universe(res.Netlist)}, nil
}

// RunConfig is the transport-side configuration of a pipeline run —
// everything that must NOT change report bytes: the telemetry handle
// the report snapshots, the checkpoint sink and cadence, a journal to
// resume from, and the soft wall-clock budget.
type RunConfig struct {
	// Tel receives the run's deterministic counters and is snapshotted
	// into the report. Nil runs without a telemetry section.
	Tel *telemetry.Telemetry
	// Checkpoint receives the ATPG journal. Nil substitutes a no-op
	// sink — checkpoint accounting stays ON either way, so journaled
	// and journal-less runs render identical reports.
	Checkpoint func(*atpg.Checkpoint) error
	// CheckpointEvery is the flush cadence (0 = the atpg default).
	// The cadence never changes report bytes.
	CheckpointEvery int
	// Resume continues an interrupted run from its journal.
	Resume *atpg.Checkpoint
	// Budget is the soft per-job time budget (0 = none). Under budget
	// pressure which faults get attempted is timing-dependent — byte
	// identity across worker counts only holds for completed runs.
	Budget time.Duration
}

// RunPipeline runs one job end to end and assembles the canonical
// report: Build, checkpointed ATPG, then a first-detection replay of
// the generated tests. It is the single code path behind both
// `factor -atpg` and the job server, which is what makes the HTTP
// report byte-identical to the CLI report (invariant I8).
//
// A non-nil error means the run was interrupted (context cancellation
// or a checkpoint-sink failure) and no report exists; quarantined
// faults degrade the report to status "partial" instead of erroring.
func RunPipeline(ctx context.Context, spec JobSpec, rc RunConfig) (*cli.Report, *Built, error) {
	spec = spec.withDefaults()
	ctx = telemetry.NewContext(ctx, rc.Tel)

	// Stage spans bracket the two legs the engines do not already
	// cover; they are wall-clock diagnostics (trace + stage-latency
	// histograms), never report material.
	bsp := rc.Tel.StartSpan("pipeline.build")
	b, err := Build(ctx, spec)
	bsp.End()
	if err != nil {
		return nil, nil, err
	}

	guide, err := atpg.ParseGuide(spec.Guide)
	if err != nil {
		return nil, nil, err
	}
	sink := rc.Checkpoint
	if sink == nil {
		sink = func(*atpg.Checkpoint) error { return nil }
	}
	aopts := atpg.Options{
		RandomSequences: spec.RandomSequences,
		RandomSeqLen:    spec.RandomSeqLen,
		BacktrackLimit:  spec.BacktrackLimit,
		MaxFrames:       spec.MaxFrames,
		Seed:            spec.Seed,
		Guide:           guide,
		Workers:         spec.Workers,
		TimeBudget:      rc.Budget,
		Checkpoint:      sink,
		CheckpointEvery: rc.CheckpointEvery,
		Resume:          rc.Resume,
	}

	res, runErr := atpg.New(b.Netlist, aopts).RunContext(ctx, b.Faults)
	if runErr != nil {
		return nil, b, runErr
	}

	// Replay leg: first-detection fault simulation of the generated
	// suite — the coverage cross-check the FACTOR flow hands to the
	// fault grader. Stats are bit-identical for any worker count on a
	// completed run, so they are safe report material.
	rsp := rc.Tel.StartSpan("pipeline.replay")
	first, simStats, simErrs := fault.FirstDetections(ctx, b.Netlist, b.Faults, res.Tests, spec.Workers, time.Time{})
	rsp.End()
	if ctx.Err() != nil {
		return nil, b, factorerr.Wrap(factorerr.StageFaultSim, factorerr.CodeCanceled, ctx.Err())
	}
	detected := 0
	for _, f := range first {
		if f >= 0 {
			detected++
		}
	}
	if tel := rc.Tel; tel != nil {
		tel.AddCounter("replay.batches", simStats.Batches)
		tel.AddCounter("replay.cycles", simStats.Cycles)
		tel.AddCounter("replay.events", simStats.Events)
		tel.AddCounter("replay.flop_heals", simStats.FlopHeals)
		tel.AddCounter("replay.trace_cycles", simStats.TraceCycles)
	}

	// Exit shaping matches cmd/atpg's completed-run path: quarantined
	// searches or replay batches degrade the run to partial.
	var exitErr error
	quarantined := append(append([]error{}, res.Errors...), simErrs...)
	if len(quarantined) > 0 {
		pe := factorerr.New(factorerr.StageATPG, factorerr.CodePartial,
			"%d fault(s) quarantined after worker panics", res.QuarantinedNum)
		pe.Err = factorerr.Collect(quarantined)
		exitErr = pe
	}

	rep := cli.NewReport("factor", exitErr)
	rep.MUTs = b.MUTs
	rep.ATPG = &cli.ATPGReport{
		TotalFaults:    len(b.Faults),
		Detected:       res.Result.NumDetected(),
		DetectedRandom: res.DetectedRandom,
		DetectedDet:    res.DetectedDet,
		Untestable:     res.UntestableNum,
		Aborted:        res.AbortedNum,
		NotAttempted:   res.NotAttempted,
		Quarantined:    res.QuarantinedNum,
		Tests:          len(res.Tests),
		Coverage:       res.Coverage(),
		Efficiency:     res.Efficiency(),
		// Interrupted/Resumed are pinned false: a resumed run's final
		// report is bit-identical to the uninterrupted run's, and the
		// report must not betray which path produced it.
	}
	rep.FaultSim = &cli.FaultSimReport{
		Sequences:   len(res.Tests),
		Detected:    detected,
		FirstDigest: shard.DigestFirst(first),
		Batches:     simStats.Batches,
		Cycles:      simStats.Cycles,
		Events:      simStats.Events,
	}
	rep.AttachDegraded(res.QuarantinedNum, 0)
	rep.AttachTelemetry(rc.Tel)
	return rep, b, nil
}

func hasWidthParam(src *verilog.SourceFile, top string) bool {
	m := src.Module(top)
	if m == nil {
		return false
	}
	for _, pd := range m.Params() {
		for _, n := range pd.Names {
			if n == "W" {
				return true
			}
		}
	}
	return false
}
