package service

// Tentpole concurrency coverage: many tenants hammering one server,
// run under -race in CI. Every job's report must equal the CLI-path
// baseline for its spec, duplicate specs must collapse onto the same
// content address, and the accounting counters must balance.

import (
	"bytes"
	"net/http"
	"sync"
	"testing"
	"time"
)

func TestConcurrentMultiTenant(t *testing.T) {
	if testing.Short() {
		t.Skip("full-pipeline concurrency test")
	}
	const tenants = 4
	const jobsPerTenant = 3

	// Three distinct specs, reused across tenants: cross-tenant
	// duplicate submissions exercise the CAS under contention.
	specs := make([]JobSpec, jobsPerTenant)
	baselines := make([][]byte, jobsPerTenant)
	for i := range specs {
		specs[i] = testSpec(int64(i + 1))
		baselines[i] = renderPipeline(t, specs[i])
	}

	srv, ts := newTestServer(t, Config{Runners: 3, QueueCap: 64})

	type result struct {
		tenant string
		spec   int
		id     string
		err    string
	}
	results := make(chan result, tenants*jobsPerTenant)
	var wg sync.WaitGroup
	for ti := 0; ti < tenants; ti++ {
		tenant := string(rune('a' + ti))
		for si := 0; si < jobsPerTenant; si++ {
			wg.Add(1)
			go func(tenant string, si int) {
				defer wg.Done()
				st, code := postJob(t, ts, JobRequest{JobSpec: specs[si], Tenant: tenant})
				r := result{tenant: tenant, spec: si, id: st.ID}
				if code != http.StatusAccepted && code != http.StatusOK {
					r.err = http.StatusText(code)
				}
				results <- r
			}(tenant, si)
		}
	}
	wg.Wait()
	close(results)

	for r := range results {
		if r.err != "" {
			t.Fatalf("tenant %s spec %d: submit rejected: %s", r.tenant, r.spec, r.err)
		}
		final := waitTerminal(t, ts, r.id, 60*time.Second)
		if JobState(final.State) != JobDone {
			t.Fatalf("tenant %s spec %d job %s: %s (%s)", r.tenant, r.spec, r.id, final.State, final.Error)
		}
		if got := getReport(t, ts, r.id); !bytes.Equal(got, baselines[r.spec]) {
			t.Errorf("tenant %s spec %d job %s: report differs from CLI baseline", r.tenant, r.spec, r.id)
		}
	}

	c := srv.Telemetry().Counters()
	total := uint64(tenants * jobsPerTenant)
	if c["service.jobs_submitted"] != total {
		t.Fatalf("jobs_submitted = %d, want %d", c["service.jobs_submitted"], total)
	}
	if c["service.cache_hits"]+c["service.cache_misses"] != total {
		t.Fatalf("cache accounting %d hits + %d misses != %d submissions",
			c["service.cache_hits"], c["service.cache_misses"], total)
	}
	// Every spec ran at least once and at most once per... no: a spec
	// submitted concurrently before its first completion runs more than
	// once (admission races are resolved at the store, not the queue) —
	// but never more than the number of submissions, and completions
	// plus cache hits must cover every job.
	if c["service.pipeline_runs"] < uint64(jobsPerTenant) || c["service.pipeline_runs"] > total {
		t.Fatalf("pipeline_runs = %d, want between %d and %d", c["service.pipeline_runs"], jobsPerTenant, total)
	}
	if c["service.jobs_completed"]+c["service.cache_hits"] != total {
		t.Fatalf("completions %d + cache hits %d != %d", c["service.jobs_completed"], c["service.cache_hits"], total)
	}
}

// TestConcurrentStatusDuringRun hammers the read endpoints while jobs
// execute — pure race coverage for the status/list/stats paths.
func TestConcurrentStatusDuringRun(t *testing.T) {
	_, ts := newTestServer(t, Config{Runners: 2})
	var ids []string
	for i := 1; i <= 3; i++ {
		st, code := postJob(t, ts, JobRequest{JobSpec: testSpec(int64(i))})
		if code != http.StatusAccepted && code != http.StatusOK {
			t.Fatalf("submit %d = %d", i, code)
		}
		ids = append(ids, st.ID)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch i % 3 {
				case 0:
					getStatus(t, ts, ids[i%len(ids)])
				case 1:
					resp, err := http.Get(ts.URL + "/api/v1/jobs")
					if err == nil {
						resp.Body.Close()
					}
				case 2:
					resp, err := http.Get(ts.URL + "/api/v1/stats")
					if err == nil {
						resp.Body.Close()
					}
				}
			}
		}(i)
	}
	for _, id := range ids {
		waitTerminal(t, ts, id, 60*time.Second)
	}
	close(stop)
	wg.Wait()
}
