package service

import (
	"encoding/json"
	"errors"
	"net/http"
	"os"
	"time"

	"factor/internal/factorerr"
)

// JobRequest is the POST /api/v1/jobs body: a JobSpec plus transport
// options that never affect results.
type JobRequest struct {
	JobSpec
	// Tenant buckets the job for fair scheduling (default "default").
	Tenant string `json:"tenant,omitempty"`
	// CancelOnDisconnect cancels the job when its last SSE watcher
	// disconnects.
	CancelOnDisconnect bool `json:"cancel_on_disconnect,omitempty"`
}

// JobStatus is the JSON view of a job returned by submit/status/list.
type JobStatus struct {
	ID     string `json:"id"`
	Tenant string `json:"tenant"`
	State  string `json:"state"`
	Hash   string `json:"hash"`
	Cached bool   `json:"cached,omitempty"`
	Error  string `json:"error,omitempty"`
	// ReportURL is where the result bytes live once State is "done".
	ReportURL string `json:"report_url,omitempty"`
}

func (s *Server) status(j *Job) JobStatus {
	state, errMsg := j.State()
	st := JobStatus{
		ID:     j.ID,
		Tenant: j.Tenant,
		State:  string(state),
		Hash:   j.Hash,
		Cached: j.Cached,
		Error:  errMsg,
	}
	if state == JobDone {
		st.ReportURL = "/api/v1/jobs/" + j.ID + "/report"
	}
	return st
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	data, _ := json.MarshalIndent(v, "", "  ")
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) buildMux() {
	// Every route goes through wrap: the first argument is the stable
	// route label on the HTTP metrics and request logs.
	mux := http.NewServeMux()
	mux.HandleFunc("POST /api/v1/jobs", s.wrap("submit", s.handleSubmit))
	mux.HandleFunc("GET /api/v1/jobs", s.wrap("list", s.handleList))
	mux.HandleFunc("GET /api/v1/jobs/{id}", s.wrap("status", s.handleStatus))
	mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.wrap("cancel", s.handleCancel))
	mux.HandleFunc("GET /api/v1/jobs/{id}/report", s.wrap("report", s.handleReport))
	mux.HandleFunc("GET /api/v1/jobs/{id}/trace", s.wrap("trace", s.handleTrace))
	mux.HandleFunc("GET /api/v1/jobs/{id}/events", s.wrap("events", s.handleEvents))
	mux.HandleFunc("GET /api/v1/designs/{hash}/report", s.wrap("design_report", s.handleDesignReport))
	mux.HandleFunc("GET /api/v1/healthz", s.wrap("healthz", s.handleHealthz))
	mux.HandleFunc("GET /api/v1/stats", s.wrap("stats", s.handleStats))
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	s.mux = mux
}

// handleTrace serves a completed job's assembled Chrome-trace JSON
// (see DESIGN.md §16). 409 while the job is still running, 404 when
// no trace was captured (tracing disabled, cache hit, failed job).
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if state, _ := j.State(); !state.terminal() {
		writeError(w, http.StatusConflict, "job is "+string(state)+", no trace yet")
		return
	}
	data, err := s.store.Trace(j.ID)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no trace captured for "+j.ID)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if !s.accepting.Load() {
		writeError(w, http.StatusServiceUnavailable, "server is shutting down")
		return
	}
	var req JobRequest
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 16<<20))
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "decoding job request: "+err.Error())
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "default"
	}
	j, err := s.submit(tenant, req.JobSpec, req.CancelOnDisconnect)
	if err != nil {
		switch {
		case errors.Is(err, ErrQueueFull):
			writeError(w, http.StatusTooManyRequests, err.Error())
		case errors.Is(err, ErrQueueClosed):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			// Build/validation failure: the design is unusable.
			writeError(w, http.StatusUnprocessableEntity, factorerr.FormatChain(err))
		}
		return
	}
	code := http.StatusAccepted
	if j.Cached {
		code = http.StatusOK
	}
	writeJSON(w, code, s.status(j))
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	jobs := make([]*Job, 0, len(s.jobs))
	for _, j := range s.jobs {
		jobs = append(jobs, j)
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, s.status(j))
	}
	// Stable order for consumers: by ID (= submission order).
	for i := 1; i < len(out); i++ {
		for k := i; k > 0 && out[k].ID < out[k-1].ID; k-- {
			out[k], out[k-1] = out[k-1], out[k]
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": out})
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if !j.RequestCancel() {
		writeJSON(w, http.StatusConflict, s.status(j))
		return
	}
	// A queued job has no running context to interrupt; finalize it
	// here (the queue skips terminal jobs on Pop).
	if state, _ := j.State(); state == JobQueued {
		s.transition(j, JobCanceled, "canceled")
		s.tel.AddCounter("service.jobs_canceled", 1)
	}
	writeJSON(w, http.StatusOK, s.status(j))
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	if state, _ := j.State(); state != JobDone {
		writeError(w, http.StatusConflict, "job is "+string(state)+", no report yet")
		return
	}
	s.serveReport(w, j.Hash)
}

func (s *Server) handleDesignReport(w http.ResponseWriter, r *http.Request) {
	s.serveReport(w, r.PathValue("hash"))
}

// serveReport writes the stored report bytes verbatim — the byte
// string `cmp` compares against the CLI's -report file.
func (s *Server) serveReport(w http.ResponseWriter, hash string) {
	data, err := s.store.Report(hash)
	if err != nil {
		if errors.Is(err, os.ErrNotExist) {
			writeError(w, http.StatusNotFound, "no stored result for "+hash)
		} else {
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// handleStats serves the server-plane snapshot. The JSON schema is a
// compatibility surface (documented in DESIGN.md §16 and README):
// exactly three top-level fields — "queue_len" (number), "counters"
// (object of server-plane telemetry counters), "jobs" (object of
// state → count) — asserted stable by TestStatsSchemaStability, since
// CI smoke jobs grep it blind.
func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	byState := map[string]int{}
	s.mu.Lock()
	for _, j := range s.jobs {
		state, _ := j.State()
		byState[string(state)]++
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"queue_len": s.q.Len(),
		"counters":  s.tel.Counters(),
		"jobs":      byState,
	})
}

// handleEvents is the SSE stream: an initial state event, then live
// state/progress/checkpoint events, heartbeat comments while progress
// streaming is enabled, and a final done event. The stream ends on
// job completion, client disconnect, or server shutdown.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j := s.job(r.PathValue("id"))
	if j == nil {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("Connection", "keep-alive")
	w.WriteHeader(http.StatusOK)

	ch, unsub := j.hub.subscribe()
	s.tel.AddCounter("service.sse_streams", 1)
	s.met.sseSubs.Inc()
	defer func() {
		s.met.sseSubs.Dec()
		left := unsub()
		s.tel.AddCounter("service.sse_events_dropped", j.hub.Dropped())
		// Client-disconnect cancellation: last watcher gone, job still
		// alive, the submitter asked for it.
		if j.CancelOnDisconnect && left == 0 && !j.Terminal() && r.Context().Err() != nil {
			if j.RequestCancel() {
				if state, _ := j.State(); state == JobQueued {
					s.transition(j, JobCanceled, "canceled: client disconnected")
					s.tel.AddCounter("service.jobs_canceled", 1)
				}
			}
		}
	}()

	writeEvent := func(ev Event) bool {
		if _, err := ev.WriteTo(w); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	// Initial snapshot so a late subscriber still learns the state.
	if !writeEvent(Event{Event: "state", Data: stateData(j)}) {
		return
	}
	if j.Terminal() {
		writeEvent(Event{Event: "done", Data: stateData(j)})
		return
	}

	var heartbeat <-chan time.Time
	if s.cfg.Progress {
		t := time.NewTicker(s.cfg.Heartbeat)
		defer t.Stop()
		heartbeat = t.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-s.stopCh:
			return
		case <-heartbeat:
			if _, err := w.Write([]byte(heartbeatComment)); err != nil {
				return
			}
			flusher.Flush()
		case ev := <-ch:
			if !writeEvent(ev) {
				return
			}
			if ev.Event == "done" {
				return
			}
		case <-j.done:
			// Drain whatever was published before the terminal event,
			// then close with the final state.
			for {
				select {
				case ev := <-ch:
					if !writeEvent(ev) {
						return
					}
					if ev.Event == "done" {
						return
					}
				default:
					writeEvent(Event{Event: "done", Data: stateData(j)})
					return
				}
			}
		}
	}
}
