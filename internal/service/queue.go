package service

import (
	"sync"

	"factor/internal/factorerr"
)

// ErrQueueFull is returned by Push when the bounded queue is at
// capacity; the HTTP layer maps it to 429.
var ErrQueueFull = factorerr.New(factorerr.StageIO, factorerr.CodeInput, "job queue full")

// ErrQueueClosed is returned by Push after Close; mapped to 503.
var ErrQueueClosed = factorerr.New(factorerr.StageIO, factorerr.CodeCanceled, "job queue closed")

// queue is the bounded, tenant-fair job queue: one FIFO per tenant and
// a round-robin ring across tenants with pending work, so a tenant
// bulk-submitting a corpus cannot starve an interactive tenant — the
// next job always comes from the least recently served tenant.
type queue struct {
	mu     sync.Mutex
	cond   *sync.Cond
	cap    int
	size   int
	closed bool

	fifos map[string][]*Job
	// ring is the round-robin order of tenants that have pending work;
	// next indexes the tenant to serve next.
	ring []string
	next int
}

func newQueue(capacity int) *queue {
	q := &queue{cap: capacity, fifos: map[string][]*Job{}}
	q.cond = sync.NewCond(&q.mu)
	return q
}

// Push enqueues j under its tenant. ErrQueueFull when at capacity,
// ErrQueueClosed after Close.
func (q *queue) Push(j *Job) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.closed {
		return ErrQueueClosed
	}
	if q.size >= q.cap {
		return ErrQueueFull
	}
	if _, ok := q.fifos[j.Tenant]; !ok {
		q.ring = append(q.ring, j.Tenant)
	}
	q.fifos[j.Tenant] = append(q.fifos[j.Tenant], j)
	q.size++
	q.cond.Signal()
	return nil
}

// Pop blocks until a job is available and returns it, serving tenants
// round-robin. ok is false once the queue is closed and drained. Jobs
// that went terminal while queued (canceled via the API) are skipped.
func (q *queue) Pop() (*Job, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	for {
		for q.size == 0 && !q.closed {
			q.cond.Wait()
		}
		if q.size == 0 {
			return nil, false
		}
		j := q.popLocked()
		if j.Terminal() {
			continue
		}
		return j, true
	}
}

func (q *queue) popLocked() *Job {
	if q.next >= len(q.ring) {
		q.next = 0
	}
	tenant := q.ring[q.next]
	fifo := q.fifos[tenant]
	j := fifo[0]
	if len(fifo) == 1 {
		delete(q.fifos, tenant)
		q.ring = append(q.ring[:q.next], q.ring[q.next+1:]...)
		// next now indexes the following tenant; no advance needed.
	} else {
		q.fifos[tenant] = fifo[1:]
		q.next++
	}
	q.size--
	return j
}

// Close stops intake and wakes all poppers; Pop drains what remains.
func (q *queue) Close() {
	q.mu.Lock()
	q.closed = true
	q.cond.Broadcast()
	q.mu.Unlock()
}

// Len is the number of queued jobs (including not-yet-skipped
// canceled ones).
func (q *queue) Len() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.size
}

// TenantLen is the number of jobs queued for one tenant — the
// per-tenant queue-depth gauge reads it after every push and pop.
func (q *queue) TenantLen(tenant string) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.fifos[tenant])
}
