package service

// Operational metrics + HTTP instrumentation for the job server (the
// third observability plane — see DESIGN.md §16). Everything here is
// scrape-time state: queue depths, wait/latency distributions, cache
// hit rates, SSE fan-out. None of it feeds the report path, and all
// instruments are nil-safe no-ops when Config.Metrics is nil, so the
// deterministic plane cannot fork and the disabled server pays only
// dead branches.

import (
	"net/http"
	"strconv"
	"time"

	"factor/internal/telemetry"
	"factor/internal/telemetry/metrics"
)

// serverMetrics is the job server's instrument set. The zero value
// (from a nil registry) is fully disabled.
type serverMetrics struct {
	queueDepth  *metrics.GaugeVec     // tenant
	queueWait   *metrics.HistogramVec // tenant
	transitions *metrics.CounterVec   // state
	casHits     metrics.Counter
	casMisses   metrics.Counter
	sseSubs     metrics.Gauge
	stageSecs   *metrics.HistogramVec // stage (span name)
	jobSecs     *metrics.HistogramVec // outcome
	httpSecs    *metrics.HistogramVec // route, method, code
	httpReqB    *metrics.CounterVec   // route
	httpRespB   *metrics.CounterVec   // route
}

func newServerMetrics(r *metrics.Registry) *serverMetrics {
	return &serverMetrics{
		queueDepth: r.GaugeVec("factord_queue_depth",
			"jobs currently queued, by tenant", "tenant"),
		queueWait: r.HistogramVec("factord_queue_wait_seconds",
			"time jobs spent queued before a runner picked them up", nil, "tenant"),
		transitions: r.CounterVec("factord_job_transitions_total",
			"job state transitions, by entered state", "state"),
		casHits: r.Counter("factord_cas_hits_total",
			"submissions served from the content-addressed store without running"),
		casMisses: r.Counter("factord_cas_misses_total",
			"submissions that had to run the pipeline"),
		sseSubs: r.Gauge("factord_sse_subscribers",
			"currently connected SSE event streams"),
		stageSecs: r.HistogramVec("factord_stage_seconds",
			"per-job wall time by pipeline stage (from the span plane)", nil, "stage"),
		jobSecs: r.HistogramVec("factord_job_seconds",
			"end-to-end job runner wall time, by outcome", nil, "outcome"),
		httpSecs: r.HistogramVec("factord_http_request_seconds",
			"HTTP request duration", nil, "route", "method", "code"),
		httpReqB: r.CounterVec("factord_http_request_bytes_total",
			"HTTP request body bytes, by route", "route"),
		httpRespB: r.CounterVec("factord_http_response_bytes_total",
			"HTTP response body bytes, by route", "route"),
	}
}

// observeStages folds a finished job's span aggregates into the stage
// latency histograms — one observation per stage per job.
func (m *serverMetrics) observeStages(t *telemetry.Telemetry) {
	if m.stageSecs == nil {
		return
	}
	for name, st := range t.SpanStats() {
		m.stageSecs.With(name).Observe(st.Total.Seconds())
	}
}

// statusWriter captures the response status and body size for the
// instrumentation wrapper. Flush passes through so SSE streaming keeps
// working behind it.
type statusWriter struct {
	http.ResponseWriter
	code  int
	bytes int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.code == 0 {
		w.code = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// wrap instruments one route: request duration/size by (route, method,
// status) plus a structured request log line. The route label is the
// handler's registration name, never the raw URL, so label cardinality
// stays bounded.
func (s *Server) wrap(route string, h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w}
		h(sw, r)
		if sw.code == 0 {
			// Handler never wrote: net/http sends 200 on return.
			sw.code = http.StatusOK
		}
		dur := time.Since(start)
		s.met.httpSecs.With(route, r.Method, strconv.Itoa(sw.code)).Observe(dur.Seconds())
		if r.ContentLength > 0 {
			s.met.httpReqB.With(route).Add(float64(r.ContentLength))
		}
		s.met.httpRespB.With(route).Add(float64(sw.bytes))
		s.log.Info("http request",
			"route", route,
			"method", r.Method,
			"status", sw.code,
			"duration_ms", dur.Milliseconds(),
			"bytes", sw.bytes,
		)
	}
}

// handleMetrics serves the Prometheus text exposition. With metrics
// disabled the body is legally empty.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.cfg.Metrics.WriteText(w)
}
