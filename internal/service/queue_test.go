package service

import (
	"errors"
	"testing"
	"time"
)

func qjob(id, tenant string) *Job {
	return newJob(id, 0, tenant, "h", JobSpec{}, false)
}

// TestQueueFairRoundRobin: a bulk tenant cannot starve others — pops
// interleave tenants round-robin regardless of push order.
func TestQueueFairRoundRobin(t *testing.T) {
	q := newQueue(16)
	// Tenant a floods first; b and c each submit one job afterwards.
	for _, id := range []string{"a1", "a2", "a3", "a4"} {
		if err := q.Push(qjob(id, "a")); err != nil {
			t.Fatal(err)
		}
	}
	q.Push(qjob("b1", "b"))
	q.Push(qjob("c1", "c"))

	var got []string
	for i := 0; i < 6; i++ {
		j, ok := q.Pop()
		if !ok {
			t.Fatal("queue closed early")
		}
		got = append(got, j.ID)
	}
	want := []string{"a1", "b1", "c1", "a2", "a3", "a4"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("pop order %v, want %v", got, want)
		}
	}
}

func TestQueueBounded(t *testing.T) {
	q := newQueue(2)
	q.Push(qjob("1", "t"))
	q.Push(qjob("2", "t"))
	if err := q.Push(qjob("3", "t")); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-capacity push: %v, want ErrQueueFull", err)
	}
	q.Pop()
	if err := q.Push(qjob("3", "t")); err != nil {
		t.Fatalf("push after pop: %v", err)
	}
}

func TestQueueCloseDrains(t *testing.T) {
	q := newQueue(4)
	q.Push(qjob("1", "t"))
	q.Close()
	if err := q.Push(qjob("2", "t")); !errors.Is(err, ErrQueueClosed) {
		t.Fatalf("push after close: %v, want ErrQueueClosed", err)
	}
	if j, ok := q.Pop(); !ok || j.ID != "1" {
		t.Fatalf("Pop after close = %v,%v; want queued job", j, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop returned ok on a closed empty queue")
	}
}

// TestQueuePopBlocksUntilPush: a blocked Pop wakes on Push.
func TestQueuePopBlocksUntilPush(t *testing.T) {
	q := newQueue(4)
	got := make(chan string, 1)
	go func() {
		j, ok := q.Pop()
		if ok {
			got <- j.ID
		}
	}()
	time.Sleep(10 * time.Millisecond)
	q.Push(qjob("late", "t"))
	select {
	case id := <-got:
		if id != "late" {
			t.Fatalf("popped %q", id)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Pop did not wake on Push")
	}
}

// TestQueueSkipsTerminalJobs: a job canceled while queued is never
// handed to a runner.
func TestQueueSkipsTerminalJobs(t *testing.T) {
	q := newQueue(4)
	dead := qjob("dead", "t")
	q.Push(dead)
	q.Push(qjob("live", "t"))
	dead.setState(JobCanceled, "canceled")
	if j, ok := q.Pop(); !ok || j.ID != "live" {
		t.Fatalf("Pop = %v; want the live job", j)
	}
}
