package service

// Shared fixtures for the service tests: small generated designs and
// fast ATPG options so the full pipeline stays sub-second per run.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"factor/internal/designgen"
	"factor/internal/telemetry"
)

// testDesign is a seeded hierarchical designgen design; the same
// generator conformance and corpus use.
func testDesign(seed int64) string {
	return designgen.Generate(seed, designgen.DefaultConfig()).Text()
}

// testSpec is a fast full-pipeline spec over testDesign(seed).
func testSpec(seed int64) JobSpec {
	return JobSpec{
		Design:          testDesign(seed),
		Seed:            seed*7 + 1,
		RandomSequences: 4,
		RandomSeqLen:    6,
		BacktrackLimit:  32,
		MaxFrames:       4,
	}
}

// renderPipeline runs RunPipeline directly (the CLI code path) and
// returns the canonical report bytes.
func renderPipeline(t *testing.T, spec JobSpec) []byte {
	t.Helper()
	rep, _, err := RunPipeline(context.Background(), spec, RunConfig{Tel: telemetry.New()})
	if err != nil {
		t.Fatalf("RunPipeline: %v", err)
	}
	data, err := rep.Render()
	if err != nil {
		t.Fatalf("Render: %v", err)
	}
	return data
}

// newTestServer builds, starts, and tears down a server over a fresh
// temp data dir (unless cfg.DataDir is set).
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	if cfg.DataDir == "" {
		cfg.DataDir = t.TempDir()
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

func postJob(t *testing.T, ts *httptest.Server, req JobRequest) (JobStatus, int) {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(ts.URL+"/api/v1/jobs", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST /jobs: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode == http.StatusOK || resp.StatusCode == http.StatusAccepted {
		if err := json.Unmarshal(data, &st); err != nil {
			t.Fatalf("decoding submit response %q: %v", data, err)
		}
	}
	return st, resp.StatusCode
}

func getStatus(t *testing.T, ts *httptest.Server, id string) JobStatus {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id)
	if err != nil {
		t.Fatalf("GET status: %v", err)
	}
	defer resp.Body.Close()
	var st JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// waitTerminal polls until the job reaches a terminal state.
func waitTerminal(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) JobStatus {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		st := getStatus(t, ts, id)
		switch JobState(st.State) {
		case JobDone, JobFailed, JobCanceled, JobInterrupted:
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s still %s after %v", id, st.State, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func getReport(t *testing.T, ts *httptest.Server, id string) []byte {
	t.Helper()
	resp, err := http.Get(ts.URL + "/api/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("GET report: %v", err)
	}
	defer resp.Body.Close()
	data, _ := io.ReadAll(resp.Body)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET report: %d %s", resp.StatusCode, data)
	}
	return data
}

// pickFaultySeed returns a generator seed whose design has faults, so
// tests exercise a real ATPG run rather than the vacuous path.
func pickFaultySeed(t *testing.T) int64 {
	t.Helper()
	for seed := int64(1); seed <= 16; seed++ {
		b, err := Build(context.Background(), testSpec(seed))
		if err != nil {
			continue
		}
		if len(b.Faults) > 0 {
			return seed
		}
	}
	t.Fatal("no designgen seed in 1..16 produced a faulty design")
	return 0
}

// drainSSE reads the event stream until the body closes or limit
// elapses, returning the raw frames.
func drainSSE(t *testing.T, ctx context.Context, url string, limit time.Duration) string {
	t.Helper()
	ctx, cancel := context.WithTimeout(ctx, limit)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		t.Fatalf("building SSE request: %v", err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("GET events: %v", err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events content-type = %q", ct)
	}
	data, _ := io.ReadAll(resp.Body) // read error = deadline/disconnect, fine
	return string(data)
}

// sseEvents parses a raw SSE stream into "event\ndata" frames,
// ignoring comment lines.
func sseEvents(raw string) []string {
	var out []string
	for _, frame := range strings.Split(raw, "\n\n") {
		var event, data []string
		for _, line := range strings.Split(frame, "\n") {
			switch {
			case strings.HasPrefix(line, "event: "):
				event = append(event, strings.TrimPrefix(line, "event: "))
			case strings.HasPrefix(line, "data: "):
				data = append(data, strings.TrimPrefix(line, "data: "))
			}
		}
		if len(event) > 0 || len(data) > 0 {
			out = append(out, fmt.Sprintf("%s|%s", strings.Join(event, ","), strings.Join(data, "\n")))
		}
	}
	return out
}
