// Package service turns the one-shot FACTOR CLIs into a long-running
// job server: an HTTP/JSON API that accepts Verilog design uploads,
// runs extract→synth→ATPG→fault-sim jobs through a bounded,
// tenant-fair job queue, streams progress over SSE, and persists
// results in a content-addressed store keyed by the structural design
// hash so repeat submissions are cache hits.
//
// The serving layer is a thin shell around the same deterministic
// pipeline the CLIs run: RunPipeline is shared verbatim by
// `factor -atpg` and by the job runner, so a report fetched over HTTP
// is byte-identical to the CLI's -report output for the same spec
// (conformance invariant I8 asserts exactly this).
package service

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"io"

	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/factorerr"
)

// JobSpec is one test-generation job: a design plus the
// result-shaping ATPG options. The zero value of every field selects
// the same default the CLIs use, so a minimal submission is just a
// design (or nothing at all for the built-in ARM benchmark).
type JobSpec struct {
	// Design is the Verilog source text. Empty selects the built-in
	// ARM benchmark SoC.
	Design string `json:"design,omitempty"`
	// Top names the module to elaborate. Empty prefers a module named
	// "top", then the first module of the file (arm for the builtin).
	Top string `json:"top,omitempty"`
	// Width is the datapath width parameter W of the built-in design
	// (default 16); ignored when the top has no W parameter.
	Width int `json:"width,omitempty"`

	// MUT, when set, runs FACTOR extraction first: the hierarchical
	// instance path whose transformed module (MUT + virtual
	// environment) is the ATPG target. Empty targets the whole top.
	MUT string `json:"mut,omitempty"`
	// Mode is the extraction mode, "flat" or "composed" (default).
	Mode string `json:"mode,omitempty"`

	Seed            int64  `json:"seed,omitempty"`
	RandomSequences int    `json:"random_sequences,omitempty"`
	RandomSeqLen    int    `json:"random_seq_len,omitempty"`
	BacktrackLimit  int    `json:"backtrack_limit,omitempty"`
	MaxFrames       int    `json:"max_frames,omitempty"`
	Guide           string `json:"guide,omitempty"` // "default" | "scoap"

	// Workers is the per-job worker count (0 = all CPU cores). It is
	// deliberately excluded from the design hash: results are
	// bit-identical for every worker count, so a resubmission with a
	// different -j is still a cache hit.
	Workers int `json:"workers,omitempty"`
}

// withDefaults normalizes the enumerated fields the way the CLIs do.
func (s JobSpec) withDefaults() JobSpec {
	if s.Mode == "" {
		s.Mode = "composed"
	}
	if s.Guide == "" {
		s.Guide = atpg.GuideDefault.String()
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	if s.Width <= 0 {
		s.Width = 16
	}
	return s
}

// Validate rejects specs whose enumerated fields name unknown values;
// everything else is defaulted, not rejected.
func (s JobSpec) Validate() error {
	s = s.withDefaults()
	if s.Mode != "flat" && s.Mode != "composed" {
		return factorerr.New(factorerr.StageParse, factorerr.CodeInput, "unknown extraction mode %q", s.Mode)
	}
	if _, err := atpg.ParseGuide(s.Guide); err != nil {
		return factorerr.Wrap(factorerr.StageParse, factorerr.CodeInput, err)
	}
	return nil
}

func (s JobSpec) mode() core.Mode {
	if s.Mode == "flat" {
		return core.ModeFlat
	}
	return core.ModeComposed
}

// hashView is the canonical result-shaping view of a spec: exactly the
// options that change report bytes. Workers is absent (results are
// worker-count invariant) and so is everything the netlist snapshot
// already captures (design text, top, width, MUT, mode — two designs
// that synthesize to the same transformed netlist share cache
// entries by construction).
type hashView struct {
	Seed            int64  `json:"seed"`
	RandomSequences int    `json:"random_sequences"`
	RandomSeqLen    int    `json:"random_seq_len"`
	BacktrackLimit  int    `json:"backtrack_limit"`
	MaxFrames       int    `json:"max_frames"`
	Guide           string `json:"guide"`
}

// specHashPrefix versions the key derivation; bump it whenever the
// hashed view or the snapshot codec changes meaning.
const specHashPrefix = "factor/job/v1\n"

// Hash is the content address of a job's result: a hex SHA-256 over
// the compiled-netlist snapshot (a pure function of the structure ATPG
// sees) and the canonical result-shaping options. Equal hashes mean
// byte-identical reports.
func Hash(snapshot []byte, spec JobSpec) string {
	spec = spec.withDefaults()
	h := sha256.New()
	io.WriteString(h, specHashPrefix)
	h.Write(snapshot)
	io.WriteString(h, "\n")
	view, _ := json.Marshal(hashView{
		Seed:            spec.Seed,
		RandomSequences: spec.RandomSequences,
		RandomSeqLen:    spec.RandomSeqLen,
		BacktrackLimit:  spec.BacktrackLimit,
		MaxFrames:       spec.MaxFrames,
		Guide:           spec.Guide,
	})
	h.Write(view)
	return hex.EncodeToString(h.Sum(nil))
}
