package translate

import (
	"fmt"
	"testing"

	"factor/internal/arm"
	"factor/internal/fault"
	"factor/internal/sim"
)

// edgeTranslator builds a synthetic translator (no ARM build needed):
// register 2 on PIER indices 0-7 (bits 0-7), register 9 (banked) on
// indices 8-9, the instruction register on indices 10-13 (bits 0-3),
// and one unclassified PIER on index 14.
func edgeTranslator() *Translator {
	t := &Translator{Width: 16}
	for bit := 0; bit < 8; bit++ {
		t.Bindings = append(t.Bindings, PIERBinding{Index: bit, Class: ClassRegfile, Reg: 2, Bit: bit})
	}
	t.Bindings = append(t.Bindings,
		PIERBinding{Index: 8, Class: ClassRegfile, Reg: 9, Bit: 0},
		PIERBinding{Index: 9, Class: ClassRegfile, Reg: 9, Bit: 1},
	)
	for bit := 0; bit < 4; bit++ {
		t.Bindings = append(t.Bindings, PIERBinding{Index: 10 + bit, Class: ClassInstrReg, Bit: bit})
	}
	t.Bindings = append(t.Bindings, PIERBinding{Index: 14, Class: ClassOther})
	return t
}

// pierFrame builds a module-test frame requesting register 2 = value
// via PIERs. Bits listed in xBits are driven X instead.
func pierFrame(value uint64, xBits ...int) fault.Vector {
	vec := fault.Vector{"pier_load": sim.L1}
	for bit := 0; bit < 8; bit++ {
		v := sim.L0
		if (value>>uint(bit))&1 == 1 {
			v = sim.L1
		}
		vec[fmt.Sprintf("pier_in_%d", bit)] = v
	}
	for _, bit := range xBits {
		vec[fmt.Sprintf("pier_in_%d", bit)] = sim.LX
	}
	return vec
}

// busValue reads the mem_rdata word a translated frame drives;
// ok=false when the frame leaves the bus undriven.
func busValue(vec fault.Vector, width int) (uint64, bool) {
	if _, ok := vec["mem_rdata[0]"]; !ok {
		return 0, false
	}
	var v uint64
	for i := 0; i < width; i++ {
		if vec[fmt.Sprintf("mem_rdata[%d]", i)] == sim.L1 {
			v |= 1 << uint(i)
		}
	}
	return v, true
}

// countLoads counts four-cycle LOAD expansions for register reg in a
// translated chip sequence by matching fetch frames carrying the LOAD
// encoding.
func countLoads(seq fault.Sequence, width, reg int) int {
	want := uint64(arm.EncLoad(reg&7, 0, 0))
	n := 0
	for _, vec := range seq {
		if v, ok := busValue(vec, width); ok && v == want {
			n++
		}
	}
	return n
}

// TestTranslateEdgeCases covers the PIER-expansion corner cases:
// re-issued loads at frame boundaries, first frames with no register
// state, and X-valued PIER requests.
func TestTranslateEdgeCases(t *testing.T) {
	const resetLen = 2 // resetPrefix
	const loadLen = 4  // loadRegister
	cases := []struct {
		name string
		test fault.Sequence
		// wantLen is the expected translated length; wantLoadsR2 the
		// number of LOAD-r2 expansions.
		wantLen     int
		wantLoadsR2 int
		check       func(t *testing.T, chip fault.Sequence)
	}{
		{
			// A first frame with no register state must translate to
			// reset plus the replayed frame only — no load traffic, bus
			// left undriven.
			name:    "first frame without register state",
			test:    fault.Sequence{fault.Vector{"irq": sim.L1}},
			wantLen: resetLen + 1,
			check: func(t *testing.T, chip fault.Sequence) {
				if _, driven := busValue(chip[resetLen], 16); driven {
					t.Error("bus driven although no IR value was ever requested")
				}
			},
		},
		{
			// pier_load low means the pier_in values are don't-cares:
			// no expansion even though the frame carries pier bits.
			name: "pier_load low ignores pier bits",
			test: func() fault.Sequence {
				vec := pierFrame(0xFF)
				vec["pier_load"] = sim.L0
				return fault.Sequence{vec}
			}(),
			wantLen:     resetLen + 1,
			wantLoadsR2: 0,
		},
		{
			// An X-valued pier_load is not a load request.
			name: "x-valued pier_load",
			test: func() fault.Sequence {
				vec := pierFrame(0xFF)
				vec["pier_load"] = sim.LX
				return fault.Sequence{vec}
			}(),
			wantLen:     resetLen + 1,
			wantLoadsR2: 0,
		},
		{
			// A load re-issued at the next frame boundary with the SAME
			// value must not be expanded again.
			name: "re-issued load with unchanged value",
			test: fault.Sequence{
				pierFrame(0xA5),
				fault.Vector{"irq": sim.L1},
				pierFrame(0xA5),
			},
			wantLen:     resetLen + loadLen + 3,
			wantLoadsR2: 1,
		},
		{
			// The same boundary re-issue with a CHANGED value must
			// reload the register.
			name: "re-issued load with changed value",
			test: fault.Sequence{
				pierFrame(0xA5),
				fault.Vector{"irq": sim.L1},
				pierFrame(0x5A),
			},
			wantLen:     resetLen + loadLen + 2 + loadLen + 1,
			wantLoadsR2: 2,
			check: func(t *testing.T, chip fault.Sequence) {
				// The second load's MEM frame carries the new value.
				memFrame := resetLen + loadLen + 2 + 2
				if v, ok := busValue(chip[memFrame], 16); !ok || v != 0x5A {
					t.Errorf("reload data = %#x (driven=%v), want 0x5a", v, ok)
				}
			},
		},
		{
			// X-valued pier_in bits contribute nothing: the requested
			// value is formed from the binary bits alone.
			name:        "x-valued pier bits masked out",
			test:        fault.Sequence{pierFrame(0xFF, 1, 3, 5, 7)},
			wantLen:     resetLen + loadLen + 1,
			wantLoadsR2: 1,
			check: func(t *testing.T, chip fault.Sequence) {
				if v, ok := busValue(chip[resetLen+2], 16); !ok || v != 0x55 {
					t.Errorf("load data = %#x (driven=%v), want 0x55 (X bits dropped)", v, ok)
				}
			},
		},
		{
			// An all-X request is no request: every bit is a don't-care,
			// so the register never enters the write set and no load is
			// emitted at all.
			name:        "all-x pier request is dropped",
			test:        fault.Sequence{pierFrame(0, 0, 1, 2, 3, 4, 5, 6, 7)},
			wantLen:     resetLen + 1,
			wantLoadsR2: 0,
		},
		{
			// Banked registers (physical number >= 8) have no user-mode
			// load procedure and are dropped.
			name: "banked register dropped",
			test: fault.Sequence{fault.Vector{
				"pier_load": sim.L1,
				"pier_in_8": sim.L1,
				"pier_in_9": sim.L1,
			}},
			wantLen:     resetLen + 1,
			wantLoadsR2: 0,
		},
		{
			// An IR request forces the fetch bus on subsequent frames.
			name: "instruction-register request drives later fetches",
			test: fault.Sequence{
				fault.Vector{
					"pier_load":  sim.L1,
					"pier_in_10": sim.L1, // IR bit 0
					"pier_in_12": sim.L1, // IR bit 2
				},
				fault.Vector{"irq": sim.L1},
			},
			wantLen: resetLen + 2,
			check: func(t *testing.T, chip fault.Sequence) {
				for i := resetLen; i < resetLen+2; i++ {
					if v, ok := busValue(chip[i], 16); !ok || v != 0b101 {
						t.Errorf("frame %d bus = %#x (driven=%v), want 0b101", i, v, ok)
					}
				}
			},
		},
		{
			// A frame that drives the bus itself wins over the IR value.
			name: "explicit bus drive overrides ir",
			test: fault.Sequence{
				fault.Vector{"pier_load": sim.L1, "pier_in_10": sim.L1},
				fault.Vector{"mem_rdata[0]": sim.L0, "mem_rdata[1]": sim.L1},
			},
			wantLen: resetLen + 2,
			check: func(t *testing.T, chip fault.Sequence) {
				if v, ok := busValue(chip[resetLen+1], 16); !ok || v != 0b10 {
					t.Errorf("explicit bus frame = %#x (driven=%v), want 0b10", v, ok)
				}
			},
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tl := edgeTranslator()
			chip := tl.Translate(tc.test)
			if len(chip) != tc.wantLen {
				t.Fatalf("translated length = %d, want %d", len(chip), tc.wantLen)
			}
			if got := countLoads(chip, 16, 2); got != tc.wantLoadsR2 {
				t.Errorf("LOAD-r2 expansions = %d, want %d", got, tc.wantLoadsR2)
			}
			if chip[0]["rst"] != sim.L1 || chip[1]["rst"] != sim.L1 {
				t.Error("reset prefix missing")
			}
			for i := resetLen; i < len(chip); i++ {
				if chip[i]["rst"] != sim.L0 {
					t.Errorf("frame %d: rst not deasserted", i)
				}
			}
			if tc.check != nil {
				tc.check(t, chip)
			}
		})
	}
}
