package translate

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"factor/internal/arm"
	"factor/internal/atpg"
	"factor/internal/core"
	"factor/internal/design"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
)

func buildTransformed(t *testing.T) (*core.Transformed, *netlist.Netlist) {
	t.Helper()
	sf, err := arm.Parse()
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, arm.Top)
	if err != nil {
		t.Fatal(err)
	}
	full, err := arm.SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	ext := core.NewExtractor(d, core.ModeComposed)
	tr, err := core.Transform(ext, "u_core.u_regbank.u_rf", full.Netlist, core.TransformOptions{
		TopParams:   map[string]int64{"W": 16},
		EnablePIERs: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return tr, full.Netlist
}

func TestBindPIERsClassification(t *testing.T) {
	tr, _ := buildTransformed(t)
	bindings := BindPIERs(tr.Netlist, tr.PIERs)
	counts := map[PIERClass]int{}
	regSeen := map[int]int{}
	for _, b := range bindings {
		counts[b.Class]++
		if b.Class == ClassRegfile {
			regSeen[b.Reg]++
			if b.Bit < 0 || b.Bit > 15 {
				t.Errorf("regfile PIER with bad bit %d", b.Bit)
			}
		}
	}
	if counts[ClassRegfile] != 256 {
		t.Errorf("regfile PIER bits = %d, want 256", counts[ClassRegfile])
	}
	// The environment slice keeps only the instruction bits the regfile
	// cone needs, so not all 16 IR flops survive.
	if counts[ClassInstrReg] < 8 || counts[ClassInstrReg] > 16 {
		t.Errorf("instruction-register PIER bits = %d, want 8..16", counts[ClassInstrReg])
	}
	if len(regSeen) != 16 {
		t.Errorf("distinct physical registers = %d, want 16", len(regSeen))
	}
	for r, n := range regSeen {
		if n != 16 {
			t.Errorf("register %d has %d PIER bits, want 16", r, n)
		}
	}
}

func TestLoadRegisterSequenceWorks(t *testing.T) {
	// Apply the translator's load sequence to the real chip and verify
	// the register receives the value (observed via a store).
	tr, _ := buildTransformed(t)
	tl := NewTranslator(16, tr)
	_ = tl

	s, err := arm.NewSystem(16, nil)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	// Cycle-accurate replay of the load sequence: drive mem_rdata
	// directly (the System memory would otherwise override it), so
	// instead run the equivalent program through the System.
	s.Mem[0] = uint64(arm.EncLoad(3, 0, 0)) // r3 <- mem[r0+0]
	s.Mem[1] = uint64(arm.EncALUImm(arm.OpMov, 1, 0, 5))
	s.Mem[2] = uint64(arm.EncStore(3, 1, 0)) // mem[5] = r3
	// r0 is X at power-up; the load address is X but the System serves
	// Mem[X]=0... drive r0 first instead.
	s = mustSystem(t, []uint16{
		arm.EncALUImm(arm.OpMov, 0, 0, 2), // r0 = 2
		arm.EncLoad(3, 0, 5),              // r3 <- mem[7] = 42
		arm.EncALUImm(arm.OpMov, 1, 0, 5), // r1 = 5
		arm.EncStore(3, 1, 0),             // mem[5] = r3
	})
	s.Mem[7] = 42
	s.Reset()
	s.Run(24)
	if got := s.Mem[5]; got != 42 {
		t.Errorf("load-store roundtrip: mem[5] = %d, want 42", got)
	}
}

func mustSystem(t *testing.T, prog []uint16) *arm.System {
	t.Helper()
	s, err := arm.NewSystem(16, prog)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestTranslateExpandsPIERLoads(t *testing.T) {
	tr, _ := buildTransformed(t)
	tl := NewTranslator(16, tr)

	// A synthetic module test: one frame loading register 2 with 0xA5
	// via PIERs, then one functional frame.
	vec := fault.Vector{"pier_load": sim.L1}
	for _, b := range tl.Bindings {
		if b.Class == ClassRegfile && b.Reg == 2 {
			v := sim.L0
			if (0xA5>>uint(b.Bit))&1 == 1 {
				v = sim.L1
			}
			vec[fmt.Sprintf("pier_in_%d", b.Index)] = v
		}
	}
	test := fault.Sequence{vec, fault.Vector{"irq": sim.L1}}
	chip := tl.Translate(test)

	// Expect: 2 reset + 4 load + 2 replayed frames.
	if len(chip) != 8 {
		t.Fatalf("translated length = %d, want 8", len(chip))
	}
	if chip[0]["rst"] != sim.L1 || chip[2]["rst"] != sim.L0 {
		t.Error("reset prefix malformed")
	}
	// The fetch frame of the load must carry the LOAD encoding for r2.
	want := uint64(arm.EncLoad(2, 0, 0))
	var got uint64
	for i := 0; i < 16; i++ {
		if chip[2][fmt.Sprintf("mem_rdata[%d]", i)] == sim.L1 {
			got |= 1 << uint(i)
		}
	}
	if got != want {
		t.Errorf("load fetch = %#x, want %#x", got, want)
	}
	// The MEM frame must carry the value 0xA5.
	var data uint64
	for i := 0; i < 16; i++ {
		if chip[4][fmt.Sprintf("mem_rdata[%d]", i)] == sim.L1 {
			data |= 1 << uint(i)
		}
	}
	if data != 0xA5 {
		t.Errorf("load data = %#x, want 0xA5", data)
	}
	// pier_* signals never appear at chip level.
	for _, v := range chip {
		for name := range v {
			if strings.HasPrefix(name, "pier_") {
				t.Fatalf("pier input %s leaked into chip sequence", name)
			}
		}
	}
}

func TestTranslateAndValidateRetainsCoverage(t *testing.T) {
	if testing.Short() {
		t.Skip("chip-level validation is slow")
	}
	tr, full := buildTransformed(t)
	faults := fault.UniverseRestrictedTo(tr.Netlist, tr.MUTFaultFilter())
	eng := atpg.New(tr.Netlist, atpg.Options{
		Seed: 1, TimeBudget: 2 * time.Second, MaxFrames: 6,
		BacktrackLimit: 60, RandomSequences: 6, RandomSeqLen: 16,
	})
	res := eng.Run(faults)
	if res.Result.NumDetected() == 0 {
		t.Fatal("no module-level detections to translate")
	}

	prefix := "u_core.u_regbank.u_rf."
	chipFaults := fault.UniverseRestrictedTo(full, func(g *netlist.Gate) bool {
		return strings.HasPrefix(g.Scope, prefix)
	})
	tl := NewTranslator(16, tr)
	v := tl.TranslateAndValidate(full, chipFaults, res.Result.NumDetected(), res.Tests)
	if v.ChipDetected == 0 {
		t.Errorf("translated suite detects nothing at chip level (module detected %d)", v.ModuleDetected)
	}
	t.Logf("translation: module-level %d detected, chip-level %d/%d confirmed (%.1f%% retention, %d sequences, %d cycles)",
		v.ModuleDetected, v.ChipDetected, v.TotalFaults, v.RetentionPct(), v.Sequences, v.TotalCycles)
}

func TestBitIndexParsing(t *testing.T) {
	cases := map[string]int{
		"u_fetch.instr_r[7]$dff": 7,
		"x.r[15]$dff":            15,
		"noindex":                -1,
		"bad[x]":                 -1,
	}
	for in, want := range cases {
		if got := bitIndex(in); got != want {
			t.Errorf("bitIndex(%q) = %d, want %d", in, got, want)
		}
	}
	if parseTrailingInt("u_core.u_regbank.u_rf.u_r12", "u_r") != 12 {
		t.Error("parseTrailingInt broken")
	}
}
