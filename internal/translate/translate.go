// Package translate maps test sequences generated for a transformed
// module back to the chip level (paper §2.1: "The patterns obtained are
// later translated back to the chip level").
//
// A transformed-module test drives two kinds of inputs: real chip pins
// (which the extracted environment exposed one-to-one) and PIER
// pseudo-inputs (pier_load / pier_in_k), which justify internal
// register state directly. Translation keeps the chip-pin frames and
// expands each PIER load into the instruction sequence that a program
// would use:
//
//   - a register-file PIER value becomes a LOAD instruction whose
//     memory data is the desired value (the memory bus is a chip input,
//     so the tester supplies the data directly);
//   - an instruction-register PIER value becomes the fetch of that
//     value (again via the memory bus).
//
// Translation is approximate by nature: the chip's fetch/execute state
// machine advances while registers are being loaded, so not every
// module-level detection survives. TranslateAndValidate therefore
// fault-simulates the translated suite at the chip level and reports
// how much of the module-level coverage is retained — the paper's flow
// relies on exactly this kind of re-simulation to confirm translated
// patterns.
package translate

import (
	"fmt"
	"sort"
	"strings"

	"factor/internal/arm"
	"factor/internal/core"
	"factor/internal/fault"
	"factor/internal/netlist"
	"factor/internal/sim"
)

// PIERClass identifies how a PIER register is accessed at chip level.
type PIERClass int

// PIER classes for the ARM benchmark SoC.
const (
	// ClassRegfile is a register-file bit, loaded by a LOAD instruction.
	ClassRegfile PIERClass = iota
	// ClassInstrReg is an instruction-register bit, loaded by a fetch.
	ClassInstrReg
	// ClassOther has no chip-level load procedure; its pier assignments
	// are dropped during translation.
	ClassOther
)

// PIERBinding describes one PIER pseudo-input of a transformed module.
type PIERBinding struct {
	Index int // k in pier_in_k
	Class PIERClass
	// Reg and Bit locate a regfile PIER (physical register number and
	// bit position); Bit alone locates an instruction-register bit.
	Reg int
	Bit int
}

// BindPIERs classifies the PIER list of a transformed ARM netlist by
// gate scope and name. The netlist must be the PIERified one.
func BindPIERs(n *netlist.Netlist, piers []int) []PIERBinding {
	out := make([]PIERBinding, 0, len(piers))
	for k, dff := range piers {
		g := n.Gates[dff]
		b := PIERBinding{Index: k, Class: ClassOther}
		switch {
		case strings.Contains(g.Scope, ".u_rf.u_r"):
			// Scope like "u_core.u_regbank.u_rf.u_r5."; name like
			// ".r[3]$dff".
			b.Class = ClassRegfile
			b.Reg = parseTrailingInt(strings.TrimSuffix(g.Scope, "."), "u_r")
			b.Bit = bitIndex(g.Name)
		case strings.Contains(g.Scope, "u_fetch.") && strings.Contains(g.Name, "instr_r"):
			b.Class = ClassInstrReg
			b.Bit = bitIndex(g.Name)
		}
		out = append(out, b)
	}
	return out
}

func parseTrailingInt(s, marker string) int {
	i := strings.LastIndex(s, marker)
	if i < 0 {
		return -1
	}
	v := 0
	for _, c := range s[i+len(marker):] {
		if c < '0' || c > '9' {
			break
		}
		v = v*10 + int(c-'0')
	}
	return v
}

func bitIndex(name string) int {
	open := strings.LastIndexByte(name, '[')
	close := strings.LastIndexByte(name, ']')
	if open < 0 || close < open {
		return -1
	}
	v := 0
	for _, c := range name[open+1 : close] {
		if c < '0' || c > '9' {
			return -1
		}
		v = v*10 + int(c-'0')
	}
	return v
}

// Translator converts transformed-module tests to chip-level sequences
// for the ARM benchmark SoC.
type Translator struct {
	Width    int
	Bindings []PIERBinding
}

// NewTranslator builds a translator for a PIERified transformed module.
func NewTranslator(width int, tr *core.Transformed) *Translator {
	return &Translator{Width: width, Bindings: BindPIERs(tr.Netlist, tr.PIERs)}
}

// pierWrites extracts, from one module-level vector, the register and
// IR values the PIER inputs request.
type pierWrites struct {
	regs  map[int]uint64 // physical regfile register -> value
	irVal uint64
	irSet bool
}

func (t *Translator) collect(vec fault.Vector) pierWrites {
	w := pierWrites{regs: map[int]uint64{}}
	if load, ok := vec["pier_load"]; !ok || load != sim.L1 {
		return w
	}
	for _, b := range t.Bindings {
		v, ok := vec[fmt.Sprintf("pier_in_%d", b.Index)]
		if !ok || v == sim.LX {
			continue
		}
		bit := uint64(0)
		if v == sim.L1 {
			bit = 1
		}
		switch b.Class {
		case ClassRegfile:
			if b.Reg >= 0 && b.Bit >= 0 {
				w.regs[b.Reg] |= bit << uint(b.Bit)
			}
		case ClassInstrReg:
			if b.Bit >= 0 {
				w.irVal |= bit << uint(b.Bit)
				w.irSet = true
			}
		}
	}
	return w
}

// chipVector builds one chip-level vector: the chip-pin part of the
// module vector (pier_* inputs dropped) with the memory bus forced to
// data.
func (t *Translator) chipVector(base fault.Vector, memData uint64, haveMem bool) fault.Vector {
	out := fault.Vector{}
	for name, v := range base {
		if strings.HasPrefix(name, "pier_") {
			continue
		}
		out[name] = v
	}
	out["rst"] = sim.L0
	if haveMem {
		for i := 0; i < t.Width; i++ {
			out[fmt.Sprintf("mem_rdata[%d]", i)] = sim.Logic((memData >> uint(i)) & 1)
		}
	}
	return out
}

func (t *Translator) memVector(data uint64) fault.Vector {
	return t.chipVector(fault.Vector{}, data, true)
}

// loadRegister emits the four-cycle LOAD instruction sequence writing
// value into architectural register reg (user mode: physical register
// numbers 0-7 map one-to-one).
func (t *Translator) loadRegister(reg int, value uint64) fault.Sequence {
	instr := uint64(arm.EncLoad(reg&7, 0, 0))
	return fault.Sequence{
		t.memVector(instr), // FETCH: the load instruction
		t.memVector(0),     // EXEC
		t.memVector(value), // MEM: bus supplies the data
		t.memVector(value), // WB: bus holds the data through write-back
	}
}

// resetPrefix synchronizes the chip state machine.
func (t *Translator) resetPrefix() fault.Sequence {
	rst := fault.Vector{"rst": sim.L1, "irq": sim.L0, "fiq": sim.L0}
	return fault.Sequence{rst, rst}
}

// Translate converts one transformed-module test into a chip-level
// sequence: reset, then for each test frame the PIER state *changes*
// expanded into LOAD instruction sequences, followed by the frame's
// chip-pin values. Registers whose pier value is unchanged since the
// previous frame are not reloaded, so deterministic tests (which
// justify state once, in their earliest frames) translate compactly.
func (t *Translator) Translate(moduleTest fault.Sequence) fault.Sequence {
	out := append(fault.Sequence{}, t.resetPrefix()...)
	current := map[int]uint64{} // register values already loaded
	irLoaded := false
	var irVal uint64

	for _, vec := range moduleTest {
		w := t.collect(vec)
		// Load registers whose requested value changed.
		var regs []int
		for r, v := range w.regs {
			if r >= 8 {
				continue // banked copies need a mode switch; dropped
			}
			if cur, ok := current[r]; !ok || cur != v {
				regs = append(regs, r)
			}
		}
		sort.Ints(regs)
		for _, r := range regs {
			out = append(out, t.loadRegister(r, w.regs[r])...)
			current[r] = w.regs[r]
		}
		if w.irSet {
			irVal, irLoaded = w.irVal, true
		}

		haveMem := false
		memData := uint64(0)
		if irLoaded {
			// Feed the requested instruction encoding on the bus so the
			// next fetch latches it.
			haveMem = true
			memData = irVal
		}
		if v, ok := vec["mem_rdata[0]"]; ok && v != sim.LX {
			// The test drives the bus itself; keep its values.
			haveMem = false
		}
		out = append(out, t.chipVector(vec, memData, haveMem))
	}
	return out
}

// ValidationResult reports how much module-level coverage the
// translated suite retains at the chip level.
type ValidationResult struct {
	ModuleDetected int
	ChipDetected   int
	TotalFaults    int
	Sequences      int
	TotalCycles    int
}

// RetentionPct is the fraction of module-level detections confirmed at
// chip level.
func (v ValidationResult) RetentionPct() float64 {
	if v.ModuleDetected == 0 {
		return 0
	}
	return 100 * float64(v.ChipDetected) / float64(v.ModuleDetected)
}

// TranslateAndValidate translates every test and fault-simulates the
// resulting suite on the full chip netlist against the MUT fault list
// (expressed in full-chip gate IDs).
func (t *Translator) TranslateAndValidate(full *netlist.Netlist, chipFaults []fault.Fault,
	moduleDetected int, tests []fault.Sequence) ValidationResult {

	res := fault.NewResult(chipFaults)
	ps := fault.NewParallel(full)
	v := ValidationResult{ModuleDetected: moduleDetected, TotalFaults: len(chipFaults), Sequences: len(tests)}
	for _, mt := range tests {
		seq := t.Translate(mt)
		v.TotalCycles += len(seq)
		ps.RunSequence(res, seq)
	}
	v.ChipDetected = res.NumDetected()
	return v
}
