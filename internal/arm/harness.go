package arm

import (
	"context"
	"fmt"

	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/synth"
	"factor/internal/verilog"
)

// Parse returns the parsed AST of the benchmark RTL.
func Parse() (*verilog.SourceFile, error) {
	return verilog.Parse("arm.v", Source())
}

// ParseContext is Parse under a context carrying an optional telemetry
// handle (the parse stage records its span and token/module counters).
func ParseContext(ctx context.Context) (*verilog.SourceFile, error) {
	return verilog.ParseContext(ctx, "arm.v", Source())
}

// MinWidth is the smallest legal datapath width: instructions are 16
// bits and arrive on the memory bus.
const MinWidth = 16

// SynthesizeTop elaborates the full processor at the given width.
func SynthesizeTop(width int) (*synth.Result, error) {
	if width < MinWidth || width > 64 {
		return nil, fmt.Errorf("arm: width %d out of range (%d..64): instructions are 16 bits wide and ride the data bus", width, MinWidth)
	}
	sf, err := Parse()
	if err != nil {
		return nil, err
	}
	return synth.Synthesize(sf, Top, synth.Options{TopParams: map[string]int64{"W": int64(width)}})
}

// SynthesizeModule elaborates one module stand-alone.
func SynthesizeModule(name string, width int) (*synth.Result, error) {
	sf, err := Parse()
	if err != nil {
		return nil, err
	}
	params := map[string]int64{}
	if moduleHasWidthParam(name) {
		params["W"] = int64(width)
	}
	return synth.Synthesize(sf, name, synth.Options{TopParams: params})
}

func moduleHasWidthParam(name string) bool {
	switch name {
	case "exc", "forward", "regdec":
		return false
	}
	return true
}

// System wraps the synthesized processor with a word-addressed memory
// so programs can run on the gate-level model.
type System struct {
	Netlist *netlist.Netlist
	Sim     *sim.Simulator
	Mem     map[uint64]uint64
	Width   int

	// Writes records every memory store as (addr, data), in order.
	Writes [][2]uint64

	irq, fiq bool
}

// NewSystem synthesizes the processor and loads the program at address
// 0 (one instruction per word).
func NewSystem(width int, program []uint16) (*System, error) {
	res, err := SynthesizeTop(width)
	if err != nil {
		return nil, err
	}
	s := &System{
		Netlist: res.Netlist,
		Sim:     sim.New(res.Netlist),
		Mem:     map[uint64]uint64{},
		Width:   width,
	}
	for i, ins := range program {
		s.Mem[uint64(i)] = uint64(ins)
	}
	return s, nil
}

// SetIRQ and SetFIQ control the interrupt pins.
func (s *System) SetIRQ(v bool) { s.irq = v }

// SetFIQ controls the fast-interrupt pin.
func (s *System) SetFIQ(v bool) { s.fiq = v }

// setPort drives a multi-bit input port.
func (s *System) setPort(name string, value uint64, width int) {
	for i := 0; i < width; i++ {
		pi := s.Netlist.PI(fmt.Sprintf("%s[%d]", name, i))
		if pi < 0 {
			if width == 1 {
				pi = s.Netlist.PI(name)
			}
			if pi < 0 {
				panic(fmt.Sprintf("arm: no input %s[%d]", name, i))
			}
		}
		s.Sim.SetInputScalar(pi, sim.Logic((value>>uint(i))&1))
	}
}

func (s *System) setBit(name string, v bool) {
	pi := s.Netlist.PI(name)
	if pi < 0 {
		panic("arm: no input " + name)
	}
	val := sim.L0
	if v {
		val = sim.L1
	}
	s.Sim.SetInputScalar(pi, val)
}

// readPort reads a multi-bit output port; ok is false if any bit is X.
func (s *System) readPort(name string, width int) (uint64, bool) {
	var out uint64
	for i := 0; i < width; i++ {
		po := s.Netlist.PO(fmt.Sprintf("%s[%d]", name, i))
		if po < 0 && width == 1 {
			po = s.Netlist.PO(name)
		}
		if po < 0 {
			panic(fmt.Sprintf("arm: no output %s[%d]", name, i))
		}
		v := s.Sim.Value(po).Lane(0)
		if v == sim.LX {
			return 0, false
		}
		out |= uint64(v) << uint(i)
	}
	return out, true
}

func (s *System) readBit(name string) (bool, bool) {
	po := s.Netlist.PO(name)
	if po < 0 {
		panic("arm: no output " + name)
	}
	v := s.Sim.Value(po).Lane(0)
	return v == sim.L1, v != sim.LX
}

// Reset holds rst high for two cycles.
func (s *System) Reset() {
	for i := 0; i < 2; i++ {
		s.cycle(true)
	}
}

// Step runs one clock cycle (memory handshake included).
func (s *System) Step() { s.cycle(false) }

func (s *System) cycle(rst bool) {
	s.setBit("rst", rst)
	s.setBit("irq", s.irq)
	s.setBit("fiq", s.fiq)
	s.setPort("mem_rdata", 0, s.Width)
	s.Sim.Eval()

	// Memory handshake: if the core reads, supply the word; re-evaluate
	// so combinational consumers (instruction register D, write-back
	// mux) see it before the clock edge.
	rd, rdKnown := s.readBit("mem_rd")
	addr, addrKnown := s.readPort("mem_addr", s.Width)
	if rdKnown && rd && addrKnown {
		s.setPort("mem_rdata", s.Mem[addr], s.Width)
		s.Sim.Eval()
	}
	wr, wrKnown := s.readBit("mem_wr")
	if wrKnown && wr && addrKnown {
		data, dataKnown := s.readPort("mem_wdata", s.Width)
		if dataKnown {
			s.Mem[addr] = data
			s.Writes = append(s.Writes, [2]uint64{addr, data})
		}
	}
	s.Sim.Step()
}

// Run executes n cycles.
func (s *System) Run(n int) {
	for i := 0; i < n; i++ {
		s.Step()
	}
}

// Flags returns the NZCV debug output (X bits reported via ok=false).
func (s *System) Flags() (uint64, bool) { return s.readPort("dbg_flags", 4) }

// Mode returns the processor mode debug output.
func (s *System) Mode() (uint64, bool) { return s.readPort("dbg_mode", 2) }
