package arm

// Golden is an instruction-level reference model of the benchmark ISA,
// used to cross-check the gate-level processor by co-simulation: both
// models execute the same program and must agree on every memory write
// and on the architectural state the chip exposes.
//
// The model mirrors the RTL's architectural behavior, including the
// quirks: registers power up unknown (modeled as "known" bitmask),
// flags update on every ALU-class instruction except shifts and
// sei/cli, exceptions vector at the end of EXEC, and the register bank
// switches by mode (FIQ banks r4-r7, SVC/IRQ bank r6-r7).
type Golden struct {
	W    int // datapath width
	mask uint64

	Regs       [16]uint64 // physical registers
	RegKnown   [16]bool
	PC         uint64
	N, Z, C, V bool
	IE         bool
	FlagsKnown bool

	Mode      uint64 // 0 user, 1 svc, 2 irq, 3 fiq
	SavedMode uint64
	Cause     uint64
	Busy      bool // in-service flag
	MaskIRQ   bool
	MaskFIQ   bool
	irqPend   bool
	fiqPend   bool

	Mem map[uint64]uint64
	// Writes records stores in order, as (addr, data).
	Writes [][2]uint64
}

// NewGolden builds a reset-state reference model with the program
// loaded at address zero.
func NewGolden(width int, program []uint16) *Golden {
	g := &Golden{
		W:          width,
		mask:       (uint64(1) << uint(width)) - 1,
		IE:         true,
		FlagsKnown: true,
		MaskIRQ:    true,
		MaskFIQ:    true,
		Mem:        map[uint64]uint64{},
	}
	for i, ins := range program {
		g.Mem[uint64(i)] = uint64(ins)
	}
	return g
}

// phys maps an architectural register to the banked physical register
// under the current mode (mirrors regbank).
func (g *Golden) phys(arch int) int {
	fiq := g.Mode == 3
	priv := g.Mode == 1 || g.Mode == 2
	if fiq && arch >= 4 {
		return 8 + arch
	}
	if priv && arch >= 6 {
		return 8 + arch
	}
	return arch
}

func (g *Golden) readReg(arch int) (uint64, bool) {
	p := g.phys(arch)
	return g.Regs[p], g.RegKnown[p]
}

func (g *Golden) writeReg(arch int, v uint64, known bool) {
	p := g.phys(arch)
	g.Regs[p] = v & g.mask
	g.RegKnown[p] = known
}

// StepInstr executes one instruction. irq/fiq model the interrupt pins
// sampled during the instruction (the RTL latches them every cycle;
// holding a level across an instruction matches holding the pin).
func (g *Golden) StepInstr(irq, fiq bool) {
	// Pending flops sample the (masked) pins.
	takeFIQ := g.fiqPend
	takeIRQ := g.irqPend
	g.fiqPend = fiq && g.IE && g.MaskFIQ
	g.irqPend = irq && g.IE && g.MaskIRQ

	instr := uint16(g.Mem[g.PC&g.mask])
	cls := int(instr >> 13)
	aluop := int(instr>>9) & 0xF
	rd := int(instr>>6) & 7
	rn := int(instr>>3) & 7
	rm := int(instr) & 7
	imm := uint64(instr) & 7
	broff := int64(instr & 0x1FF)
	if instr&0x100 != 0 {
		broff -= 0x200
	}
	cond := aluop

	isLoad := cls == ClsLoad
	isStore := cls == ClsStore
	isBranch := cls == ClsBranch
	isSWI := cls == ClsSWI
	isUndef := cls >= ClsUndef
	aluClass := cls == ClsALUReg || cls == ClsALUImm
	usesImm := cls == ClsALUImm || isLoad || isStore
	isShift := aluClass && aluop >= 10 && aluop <= 13

	// Exception arbitration (exc unit).
	swi := isSWI
	undef := isUndef
	take := takeFIQ || ((takeIRQ || swi || undef) && !g.Busy)
	var vector uint64
	var nextMode uint64
	switch {
	case takeFIQ:
		vector, nextMode = 1, 3
	case takeIRQ:
		vector, nextMode = 2, 2
	case swi:
		vector, nextMode = 3, 1
	case undef:
		vector, nextMode = 4, 1
	}

	// Operand fetch.
	a, aKnown := g.readReg(rn)
	storeSrc := rm
	if isStore {
		storeSrc = rd
	}
	bReg, bRegKnown := g.readReg(storeSrc)
	b, bKnown := bReg, bRegKnown
	if usesImm {
		b, bKnown = imm, true
	}

	// ALU / shifter.
	var result uint64
	resKnown := aKnown && bKnown
	var fc, fv bool
	switch {
	case isShift:
		amt := imm & 0xF
		switch aluop {
		case 10:
			result = a << amt
		case 11:
			result = a >> amt
		case 12: // asr
			sign := a >> uint(g.W-1) & 1
			result = a >> amt
			if sign == 1 {
				for i := 0; i < int(amt); i++ {
					result |= 1 << uint(g.W-1-i)
				}
			}
		case 13: // ror
			amt %= uint64(g.W)
			result = (a >> amt) | (a << (uint64(g.W) - amt))
		}
		resKnown = aKnown
	case aluClass:
		switch aluop {
		case OpAdd:
			carry := uint64(0)
			if g.C {
				carry = 1
			}
			full := a + b + carry
			result = full
			fc = full>>uint(g.W) != 0
			fv = signBit(a, g.W) == signBit(b, g.W) && signBit(full, g.W) != signBit(a, g.W)
			resKnown = resKnown && g.FlagsKnown
		case OpSub, OpCmp:
			full := a + (^b & g.mask) + 1
			result = full
			fc = full>>uint(g.W) != 0
			fv = signBit(a, g.W) != signBit(b, g.W) && signBit(full, g.W) != signBit(a, g.W)
		case OpRsb:
			full := b + (^a & g.mask) + 1
			result = full
			fc = full>>uint(g.W) != 0
			fv = signBit(b, g.W) != signBit(a, g.W) && signBit(full, g.W) != signBit(b, g.W)
		case OpAnd:
			result = a & b
		case OpOr:
			result = a | b
		case OpXor:
			result = a ^ b
		case OpBic:
			result = a & ^b
		case OpMov:
			result = b
			resKnown = bKnown
		case OpMvn:
			result = ^b
			resKnown = bKnown
		}
	}
	result &= g.mask

	// Memory access.
	addr := (a + imm) & g.mask
	memKnown := aKnown
	var loadVal uint64
	loadKnown := false
	if isLoad && memKnown {
		loadVal = g.Mem[addr] & g.mask
		loadKnown = true
	}
	// The RTL's state machine always completes a store's MEM cycle —
	// an exception taken in EXEC redirects the PC but does not squash
	// the bus write.
	if isStore && memKnown && bRegKnown {
		g.Mem[addr] = bReg
		g.Writes = append(g.Writes, [2]uint64{addr, bReg})
	}

	// Condition evaluation for branches.
	condOK := false
	switch cond {
	case CondAlways:
		condOK = true
	case CondEQ:
		condOK = g.Z
	case CondNE:
		condOK = !g.Z
	case CondCS:
		condOK = g.C
	case CondCC:
		condOK = !g.C
	case CondMI:
		condOK = g.N
	case CondPL:
		condOK = !g.N
	case CondVS:
		condOK = g.V
	case CondVC:
		condOK = !g.V
	}

	// Next PC.
	switch {
	case take:
		g.PC = vector
	case isBranch && condOK:
		g.PC = (g.PC + uint64(broff)) & g.mask
	default:
		g.PC = (g.PC + 1) & g.mask
	}

	// Exception unit state.
	if take {
		g.SavedMode = g.Mode
		g.Mode = nextMode
		g.Cause = vector
		g.Busy = true
	} else if aluClass && aluop == OpSei && rd == 2 {
		g.Mode = g.SavedMode
		g.Busy = false
	}
	// The exc unit applies mask writes independently of take.
	if aluClass && (aluop == OpSei || aluop == OpCli) && rd == 1 {
		set := aluop == OpSei
		if imm&1 != 0 {
			g.MaskIRQ = set
		}
		if imm&2 != 0 {
			g.MaskFIQ = set
		}
	}

	// PSR update (EXEC stage).
	if take {
		g.IE = false
	} else if aluClass {
		setFlags := !isShift && aluop != OpSei && aluop != OpCli
		if setFlags && aluop <= OpCmp {
			g.N = signBit(result, g.W) == 1
			g.Z = result == 0
			g.C = fc
			g.V = fv
			g.FlagsKnown = resKnown
		}
		if aluop == OpSei && rd == 0 {
			g.IE = true
		}
		if aluop == OpCli && rd == 0 {
			g.IE = false
		}
	}

	// Write-back (squashed on exceptions).
	wbEn := aluClass && aluop != OpCmp && aluop != OpSei && aluop != OpCli
	if !take {
		if isLoad && loadKnown {
			g.writeReg(rd, loadVal, true)
		} else if isLoad {
			g.writeReg(rd, 0, false)
		} else if wbEn {
			g.writeReg(rd, result, resKnown)
		}
	}
}

func signBit(v uint64, w int) uint64 { return (v >> uint(w-1)) & 1 }
