package arm

import (
	"fmt"
	"strconv"
	"strings"
)

// Assemble translates a small assembly dialect for the benchmark ISA
// into machine words. One instruction per line; ';' or '//' start a
// comment; labels end with ':' and may be referenced by branches.
//
//	start:
//	    mov  r1, #5        ; ALU-imm
//	    add  r2, r1, r3    ; ALU-reg
//	    lsl  r4, r1, #2    ; shift
//	    ldr  r5, [r1, #3]
//	    str  r5, [r1, #4]
//	    beq  start
//	    b    start
//	    swi
//	    sei  r0            ; interrupt control (rd selects the form)
//	    undef
func Assemble(src string) ([]uint16, error) {
	type pending struct {
		pc    int
		cond  int
		label string
		line  int
	}
	var words []uint16
	labels := map[string]int{}
	var fixups []pending

	aluOps := map[string]int{
		"add": OpAdd, "sub": OpSub, "rsb": OpRsb, "and": OpAnd,
		"or": OpOr, "orr": OpOr, "xor": OpXor, "eor": OpXor,
		"bic": OpBic, "cmp": OpCmp,
		"lsl": OpLsl, "lsr": OpLsr, "asr": OpAsr, "ror": OpRor,
	}
	conds := map[string]int{
		"b": CondAlways, "beq": CondEQ, "bne": CondNE, "bcs": CondCS,
		"bcc": CondCC, "bmi": CondMI, "bpl": CondPL, "bvs": CondVS,
		"bvc": CondVC,
	}

	for lineNo, raw := range strings.Split(src, "\n") {
		line := raw
		if i := strings.IndexAny(line, ";"); i >= 0 {
			line = line[:i]
		}
		if i := strings.Index(line, "//"); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 {
				label := strings.TrimSpace(line[:i])
				if label == "" || strings.ContainsAny(label, " \t") {
					return nil, fmt.Errorf("line %d: malformed label %q", lineNo+1, label)
				}
				if _, dup := labels[label]; dup {
					return nil, fmt.Errorf("line %d: duplicate label %q", lineNo+1, label)
				}
				labels[label] = len(words)
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}

		fields := strings.FieldsFunc(line, func(r rune) bool { return r == ' ' || r == '\t' || r == ',' })
		op := strings.ToLower(fields[0])
		args := fields[1:]
		bad := func(format string, a ...interface{}) error {
			return fmt.Errorf("line %d: %s: %s", lineNo+1, op, fmt.Sprintf(format, a...))
		}

		switch {
		case op == "mov" || op == "mvn":
			code := OpMov
			if op == "mvn" {
				code = OpMvn
			}
			if len(args) != 2 {
				return nil, bad("want rd, (rm|#imm)")
			}
			rd, err := reg(args[0])
			if err != nil {
				return nil, bad("%v", err)
			}
			if imm, ok, err := immediate(args[1]); err != nil {
				return nil, bad("%v", err)
			} else if ok {
				words = append(words, EncALUImm(code, rd, 0, imm))
			} else {
				rm, err := reg(args[1])
				if err != nil {
					return nil, bad("%v", err)
				}
				words = append(words, EncALUReg(code, rd, 0, rm))
			}
		case op == "cmp":
			if len(args) != 2 {
				return nil, bad("want rn, (rm|#imm)")
			}
			rn, err := reg(args[0])
			if err != nil {
				return nil, bad("%v", err)
			}
			if imm, ok, err := immediate(args[1]); err != nil {
				return nil, bad("%v", err)
			} else if ok {
				words = append(words, EncALUImm(OpCmp, 0, rn, imm))
			} else {
				rm, err := reg(args[1])
				if err != nil {
					return nil, bad("%v", err)
				}
				words = append(words, EncALUReg(OpCmp, 0, rn, rm))
			}
		case aluOps[op] != 0 || op == "add":
			code := aluOps[op]
			if len(args) != 3 {
				return nil, bad("want rd, rn, (rm|#imm)")
			}
			rd, err := reg(args[0])
			if err != nil {
				return nil, bad("%v", err)
			}
			rn, err := reg(args[1])
			if err != nil {
				return nil, bad("%v", err)
			}
			if imm, ok, err := immediate(args[2]); err != nil {
				return nil, bad("%v", err)
			} else if ok {
				words = append(words, EncALUImm(code, rd, rn, imm))
			} else {
				rm, err := reg(args[2])
				if err != nil {
					return nil, bad("%v", err)
				}
				words = append(words, EncALUReg(code, rd, rn, rm))
			}
		case op == "ldr" || op == "str":
			if len(args) != 3 || !strings.HasPrefix(args[1], "[") || !strings.HasSuffix(args[2], "]") {
				return nil, bad("want rd, [rn, #imm]")
			}
			rd, err := reg(args[0])
			if err != nil {
				return nil, bad("%v", err)
			}
			rn, err := reg(strings.TrimPrefix(args[1], "["))
			if err != nil {
				return nil, bad("%v", err)
			}
			imm, ok, err := immediate(strings.TrimSuffix(args[2], "]"))
			if err != nil || !ok {
				return nil, bad("offset must be #imm")
			}
			if op == "ldr" {
				words = append(words, EncLoad(rd, rn, imm))
			} else {
				words = append(words, EncStore(rd, rn, imm))
			}
		case conds[op] != 0 || op == "b":
			if len(args) != 1 {
				return nil, bad("want label or #offset")
			}
			cond := conds[op]
			if imm, ok, err := immediate(args[0]); err == nil && ok {
				words = append(words, EncBranch(cond, imm))
			} else {
				fixups = append(fixups, pending{pc: len(words), cond: cond, label: args[0], line: lineNo + 1})
				words = append(words, 0)
			}
		case op == "swi":
			words = append(words, EncSWI())
		case op == "undef":
			words = append(words, EncUndef())
		case op == "sei" || op == "cli":
			code := OpSei
			if op == "cli" {
				code = OpCli
			}
			rd := 0
			imm := 0
			if len(args) >= 1 {
				r, err := reg(args[0])
				if err != nil {
					return nil, bad("%v", err)
				}
				rd = r
			}
			if len(args) >= 2 {
				v, ok, err := immediate(args[1])
				if err != nil || !ok {
					return nil, bad("second operand must be #imm")
				}
				imm = v
			}
			words = append(words, EncALUImm(code, rd, 0, imm))
		case op == "rfe":
			// Return from exception: the sei form with rd=2.
			words = append(words, EncALUImm(OpSei, 2, 0, 0))
		case op == "nop":
			words = append(words, EncALUReg(OpAnd, 0, 0, 0))
		case op == ".word":
			if len(args) != 1 {
				return nil, bad("want a value")
			}
			v, err := strconv.ParseUint(strings.TrimPrefix(args[0], "#"), 0, 16)
			if err != nil {
				return nil, bad("%v", err)
			}
			words = append(words, uint16(v))
		default:
			return nil, fmt.Errorf("line %d: unknown mnemonic %q", lineNo+1, op)
		}
	}

	for _, f := range fixups {
		target, ok := labels[f.label]
		if !ok {
			return nil, fmt.Errorf("line %d: undefined label %q", f.line, f.label)
		}
		words[f.pc] = EncBranch(f.cond, target-f.pc)
	}
	return words, nil
}

func reg(s string) (int, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if !strings.HasPrefix(s, "r") {
		return 0, fmt.Errorf("expected register, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil || n < 0 || n > 7 {
		return 0, fmt.Errorf("bad register %q (r0..r7)", s)
	}
	return n, nil
}

func immediate(s string) (int, bool, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "#") {
		return 0, false, nil
	}
	v, err := strconv.ParseInt(s[1:], 0, 32)
	if err != nil {
		return 0, false, fmt.Errorf("bad immediate %q", s)
	}
	return int(v), true, nil
}

// MustAssemble panics on error (tests and examples).
func MustAssemble(src string) []uint16 {
	w, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return w
}
