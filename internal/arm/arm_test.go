package arm

import (
	"testing"

	"factor/internal/design"
)

func TestRTLParses(t *testing.T) {
	sf, err := Parse()
	if err != nil {
		t.Fatal(err)
	}
	wantModules := []string{
		"arm", "fetch", "decode", "core", "arm_alu", "shifter",
		"regbank", "regfile_struct", "regdec", "regcell", "exc",
		"forward", "buscontrol",
	}
	for _, m := range wantModules {
		if sf.Module(m) == nil {
			t.Errorf("module %s missing", m)
		}
	}
}

func TestHierarchyLevels(t *testing.T) {
	sf, err := Parse()
	if err != nil {
		t.Fatal(err)
	}
	d, err := design.Analyze(sf, Top)
	if err != nil {
		t.Fatal(err)
	}
	for _, mut := range MUTs() {
		node := d.Root.Find(mut.Path)
		if node == nil {
			t.Errorf("MUT path %s not found in hierarchy", mut.Path)
			continue
		}
		if node.Module != mut.Module {
			t.Errorf("path %s is module %s, want %s", mut.Path, node.Module, mut.Module)
		}
		if node.Level != mut.Level {
			t.Errorf("MUT %s level = %d, want %d", mut.Module, node.Level, mut.Level)
		}
	}
	// regfile_struct must be the deepest MUT.
	deepest := 0
	for _, mut := range MUTs() {
		if mut.Level > deepest {
			deepest = mut.Level
		}
	}
	for _, mut := range MUTs() {
		if mut.Module == "regfile_struct" && mut.Level != deepest {
			t.Error("regfile_struct is not the deepest MUT")
		}
	}
}

func TestSynthesizesCleanly(t *testing.T) {
	res, err := SynthesizeTop(16)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Warnings {
		t.Errorf("unexpected synthesis warning: %s", w)
	}
	stats := res.Netlist.ComputeStats()
	if stats.Gates < 1500 {
		t.Errorf("full processor has only %d gates; expected a substantial design", stats.Gates)
	}
	if stats.DFFs < 128 {
		t.Errorf("DFFs = %d, want >= 128 (the register file alone)", stats.DFFs)
	}
	t.Logf("arm W=16: %d gates, %d DFFs, %d PIs, %d POs, depth %d, seq depth %d",
		stats.Gates, stats.DFFs, stats.PIs, stats.POs, stats.Levels, stats.SeqDeep)
}

func TestModulesSynthesizeStandalone(t *testing.T) {
	for _, mut := range MUTs() {
		res, err := SynthesizeModule(mut.Module, 16)
		if err != nil {
			t.Errorf("%s: %v", mut.Module, err)
			continue
		}
		g := res.Netlist.NumGates()
		if g == 0 {
			t.Errorf("%s: empty netlist", mut.Module)
		}
		t.Logf("%s standalone: %d gates", mut.Module, g)
	}
	// regfile_struct must be the biggest MUT (paper Table 1).
	sizes := map[string]int{}
	for _, mut := range MUTs() {
		res, err := SynthesizeModule(mut.Module, 16)
		if err != nil {
			t.Fatal(err)
		}
		sizes[mut.Module] = res.Netlist.NumGates()
	}
	for name, g := range sizes {
		if name != "regfile_struct" && g >= sizes["regfile_struct"] {
			t.Errorf("%s (%d gates) >= regfile_struct (%d gates)", name, g, sizes["regfile_struct"])
		}
	}
}

func TestALUControlCount(t *testing.T) {
	sf, err := Parse()
	if err != nil {
		t.Fatal(err)
	}
	alu := sf.Module("arm_alu")
	controls := 0
	for _, p := range alu.Ports {
		if p.Dir == 0 /* input */ && p.Width == nil && p.Name != "carry_in" {
			controls++
		}
		if p.Name == "carry_in" {
			controls++
		}
	}
	// 13 scalar control inputs (a and b are vectors).
	if controls != 13 {
		t.Errorf("arm_alu has %d scalar control inputs, want 13", controls)
	}
}

// runProgram builds a system, resets it and runs it for n cycles.
func runProgram(t *testing.T, prog []uint16, cycles int) *System {
	t.Helper()
	s, err := NewSystem(16, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	s.Run(cycles)
	return s
}

func TestProgramArithmetic(t *testing.T) {
	// r1 = 5; r2 = r1 + 3; mem[r0+1] = r2  (r0 never written: use store
	// base r1 to avoid X; mem[5+1] = 8)
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 5), // r1 = 5
		EncALUImm(OpAdd, 2, 1, 3), // r2 = r1 + 3 = 8
		EncStore(2, 1, 1),         // mem[r1+1] = r2 -> mem[6] = 8
	}
	s := runProgram(t, prog, 16)
	if len(s.Writes) == 0 {
		t.Fatal("no memory writes observed")
	}
	w := s.Writes[0]
	if w[0] != 6 || w[1] != 8 {
		t.Errorf("store: mem[%d] = %d, want mem[6] = 8", w[0], w[1])
	}
}

func TestProgramLogicOps(t *testing.T) {
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 6), // r1 = 6
		EncALUImm(OpMov, 2, 0, 3), // r2 = 3
		EncALUReg(OpAnd, 3, 1, 2), // r3 = 6 & 3 = 2
		EncALUReg(OpXor, 4, 1, 2), // r4 = 6 ^ 3 = 5
		EncALUReg(OpOr, 5, 1, 2),  // r5 = 6 | 3 = 7
		EncALUReg(OpBic, 6, 1, 2), // r6 = 6 & ~3 = 4
		EncStore(3, 1, 0),         // mem[6] = 2
		EncStore(4, 1, 1),         // mem[7] = 5
		EncStore(5, 1, 2),         // mem[8] = 7
		EncStore(6, 1, 3),         // mem[9] = 4
	}
	s := runProgram(t, prog, 50)
	want := map[uint64]uint64{6: 2, 7: 5, 8: 7, 9: 4}
	for addr, val := range want {
		if got := s.Mem[addr]; got != val {
			t.Errorf("mem[%d] = %d, want %d", addr, got, val)
		}
	}
}

func TestProgramLoad(t *testing.T) {
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 7), // r1 = 7
		EncLoad(2, 1, 3),          // r2 = mem[10] = 42
		EncStore(2, 1, 4),         // mem[11] = r2
	}
	s, err := NewSystem(16, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.Mem[10] = 42
	s.Reset()
	s.Run(20)
	if got := s.Mem[11]; got != 42 {
		t.Errorf("mem[11] = %d, want 42 (load-store roundtrip)", got)
	}
}

func TestProgramBranchAndFlags(t *testing.T) {
	// r1 = 3; cmp r1, 3 (Z set); beq +2 skips the poison store.
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 3), // 0: r1 = 3
		EncALUImm(OpCmp, 0, 1, 3), // 1: cmp r1, 3 -> Z
		EncBranch(CondEQ, 2),      // 2: beq to 4
		EncStore(1, 1, 0),         // 3: (skipped) mem[3] = 3
		EncALUImm(OpMov, 2, 0, 1), // 4: r2 = 1
		EncStore(2, 1, 1),         // 5: mem[4] = 1
	}
	s := runProgram(t, prog, 40)
	for _, w := range s.Writes {
		if w[0] == 3 {
			t.Error("branch not taken: poison store executed")
		}
	}
	if got := s.Mem[4]; got != 1 {
		t.Errorf("mem[4] = %d, want 1", got)
	}
	// Z flag was set by the cmp.
	prog2 := []uint16{
		EncALUImm(OpMov, 1, 0, 3),
		EncALUImm(OpCmp, 0, 1, 3),
	}
	s2 := runProgram(t, prog2, 8)
	flags, known := s2.Flags()
	if !known {
		t.Fatal("flags unknown after cmp")
	}
	// dbg_flags = {N,Z,C,V}: Z set (bit 2), C set (no borrow, bit 1).
	if flags&0b0100 == 0 {
		t.Errorf("Z not set after cmp equal: flags=%04b", flags)
	}
}

func TestProgramShift(t *testing.T) {
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 5), // r1 = 5
		EncALUImm(OpLsl, 2, 1, 2), // r2 = r1 << 2 = 20
		EncALUImm(OpLsr, 3, 1, 1), // r3 = r1 >> 1 = 2
		EncStore(2, 1, 0),         // mem[5] = 20
		EncStore(3, 1, 1),         // mem[6] = 2
	}
	s := runProgram(t, prog, 40)
	if s.Mem[5] != 20 || s.Mem[6] != 2 {
		t.Errorf("shifts: mem[5]=%d mem[6]=%d, want 20 and 2", s.Mem[5], s.Mem[6])
	}
}

func TestSWIVectorsToHandler(t *testing.T) {
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 1), // 0: r1 = 1
		EncSWI(),                  // 1: swi -> vector 3
		EncStore(1, 1, 0),         // 2: (skipped) mem[1] = 1
		EncALUImm(OpMov, 2, 0, 7), // 3: handler: r2 = 7
		EncStore(2, 1, 2),         // 4: mem[3] = 7
	}
	s := runProgram(t, prog, 40)
	if got := s.Mem[3]; got != 7 {
		t.Errorf("mem[3] = %d, want 7 (SWI handler ran)", got)
	}
	mode, known := s.Mode()
	if !known || mode != 1 {
		t.Errorf("mode = %d (known=%v), want 1 (svc)", mode, known)
	}
}

func TestIRQVectorsWhenEnabled(t *testing.T) {
	prog := []uint16{
		EncALUImm(OpMov, 1, 0, 1), // 0
		EncALUImm(OpMov, 1, 0, 2), // 1 (loop filler)
		EncALUImm(OpMov, 1, 0, 3), // 2: irq vector target for vector=2
		EncALUImm(OpMov, 2, 0, 5), // 3
		EncStore(2, 1, 0),         // 4: mem[r1+0]
	}
	s, err := NewSystem(16, prog)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	s.Run(3)
	s.SetIRQ(true)
	s.Run(8)
	s.SetIRQ(false)
	s.Run(20)
	mode, known := s.Mode()
	if !known || mode != 2 {
		t.Errorf("mode = %d (known=%v), want 2 (irq) after interrupt", mode, known)
	}
}

func TestUndefinedInstructionRaisesException(t *testing.T) {
	prog := []uint16{
		EncUndef(),                // 0: undefined -> vector 4
		EncALUImm(OpMov, 1, 0, 1), // 1
		EncALUImm(OpMov, 1, 0, 1), // 2
		EncALUImm(OpMov, 1, 0, 1), // 3
		EncALUImm(OpMov, 2, 0, 6), // 4: handler
		EncStore(2, 2, 0),         // 5: mem[6] = 6
	}
	s := runProgram(t, prog, 40)
	if got := s.Mem[6]; got != 6 {
		t.Errorf("mem[6] = %d, want 6 (undef handler ran)", got)
	}
}

func TestEncodingHelpers(t *testing.T) {
	if EncALUReg(OpAdd, 1, 2, 3) != 0b000_0000_001_010_011 {
		t.Errorf("EncALUReg = %016b", EncALUReg(OpAdd, 1, 2, 3))
	}
	if EncBranch(CondEQ, -1)&0x1FF != 0x1FF {
		t.Error("negative branch offset not masked")
	}
	if EncSWI()>>13 != 5 || EncUndef()>>13 != 6 {
		t.Error("class encodings wrong")
	}
}

func TestWidthParameterization(t *testing.T) {
	for _, w := range []int{16, 24, 32} {
		res, err := SynthesizeTop(w)
		if err != nil {
			t.Errorf("W=%d: %v", w, err)
			continue
		}
		// Wider datapath, more gates.
		if w > 16 {
			res16, _ := SynthesizeTop(16)
			if res.Netlist.NumGates() <= res16.Netlist.NumGates() {
				t.Errorf("W=%d gates (%d) <= W=16 gates (%d)", w, res.Netlist.NumGates(), res16.Netlist.NumGates())
			}
		}
	}
}
