package arm

import (
	"math/rand"
	"testing"
)

// cosim runs a program on both the gate-level processor and the golden
// instruction-level model and compares the memory write streams and
// final flags. The gate-level model is stepped 3 cycles per
// ALU/branch/swi instruction and 4 per load/store, matching the
// multicycle state machine.
func cosim(t *testing.T, prog []uint16, instrs int) {
	t.Helper()
	sys, err := NewSystem(16, prog)
	if err != nil {
		t.Fatal(err)
	}
	sys.Reset()
	g := NewGolden(16, prog)

	for i := 0; i < instrs; i++ {
		instr := uint16(g.Mem[g.PC])
		cls := int(instr >> 13)
		cycles := 3
		if cls == ClsLoad || cls == ClsStore {
			cycles = 4
		}
		g.StepInstr(false, false)
		sys.Run(cycles)
	}

	if len(sys.Writes) != len(g.Writes) {
		t.Fatalf("write streams diverge: gate-level %d writes %v, golden %d writes %v",
			len(sys.Writes), sys.Writes, len(g.Writes), g.Writes)
	}
	for i := range g.Writes {
		if sys.Writes[i] != g.Writes[i] {
			t.Fatalf("write %d: gate-level %v, golden %v", i, sys.Writes[i], g.Writes[i])
		}
	}
	if g.FlagsKnown {
		flags, known := sys.Flags()
		if !known {
			t.Fatalf("gate-level flags unknown, golden knows %v%v%v%v", g.N, g.Z, g.C, g.V)
		}
		want := b2u(g.N)<<3 | b2u(g.Z)<<2 | b2u(g.C)<<1 | b2u(g.V)
		if flags != want {
			t.Fatalf("flags: gate-level %04b, golden %04b", flags, want)
		}
	}
	mode, known := sys.Mode()
	if known && mode != g.Mode {
		t.Fatalf("mode: gate-level %d, golden %d", mode, g.Mode)
	}
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

func TestCosimHandwrittenPrograms(t *testing.T) {
	programs := [][]uint16{
		MustAssemble(`
			mov r1, #5
			mov r2, #3
			add r3, r1, r2
			str r3, [r1, #2]
			sub r4, r1, r2
			str r4, [r1, #3]`),
		MustAssemble(`
			mov r1, #7
			lsl r2, r1, #3
			str r2, [r1, #0]
			lsr r3, r2, #2
			str r3, [r1, #1]
			ror r4, r1, #1
			str r4, [r1, #2]`),
		MustAssemble(`
			mov r1, #4
			cmp r1, #4
			beq skip
			str r1, [r1, #0]
		skip:
			mov r2, #1
			str r2, [r1, #1]`),
		MustAssemble(`
			mov r1, #6
			mvn r2, r1
			bic r3, r2, r1
			xor r4, r3, r2
			str r4, [r1, #1]
			cmp r4, r3
			bne out
			str r1, [r1, #2]
		out:
			nop`),
		MustAssemble(`
			mov r1, #2
			swi            ; vectors to 3
			str r1, [r1, #5]
			mov r2, #1     ; swi handler lands here (vector 3)
			str r2, [r1, #4]
			rfe
			nop`),
	}
	for i, prog := range programs {
		prog := prog
		t.Run(string(rune('a'+i)), func(t *testing.T) {
			cosim(t, prog, 24)
		})
	}
}

// TestCosimRandomPrograms generates random straight-line programs over
// the safe subset (registers written before read, flags set before
// conditional branches, forward branches only) and co-simulates them.
func TestCosimRandomPrograms(t *testing.T) {
	rng := rand.New(rand.NewSource(20260704))
	for trial := 0; trial < 25; trial++ {
		prog, n := randomProgram(rng)
		t.Logf("trial %d: %d instructions", trial, len(prog))
		cosim(t, prog, n)
	}
}

// randomProgram builds a random program and returns it with the number
// of instruction steps to co-simulate.
func randomProgram(rng *rand.Rand) ([]uint16, int) {
	var prog []uint16
	known := []int{} // registers with known values
	flagsSet := false

	pick := func() int { return known[rng.Intn(len(known))] }

	// r7 is the data base register (7 << 5 = 224), far above the
	// program so stores never modify instruction memory (self-modifying
	// code would make instruction fetch, and then the flags, unknown).
	prog = append(prog,
		EncALUImm(OpMov, 7, 0, 7),
		EncALUImm(OpLsl, 7, 7, 5),
	)

	// Seed a few registers (r1..r6; r7 stays the data base).
	seeds := 2 + rng.Intn(3)
	for i := 0; i < seeds; i++ {
		rd := rng.Intn(6) + 1
		prog = append(prog, EncALUImm(OpMov, rd, 0, rng.Intn(8)))
		known = appendUnique(known, rd)
	}

	steps := 12 + rng.Intn(16)
	for len(prog) < steps {
		switch rng.Intn(10) {
		case 0, 1: // ALU reg-reg
			rd := rng.Intn(6) + 1
			prog = append(prog, EncALUReg(rng.Intn(9), rd, pick(), pick()))
			known = appendUnique(known, rd)
			flagsSet = true
		case 2, 3: // ALU imm
			rd := rng.Intn(6) + 1
			prog = append(prog, EncALUImm(rng.Intn(9), rd, pick(), rng.Intn(8)))
			known = appendUnique(known, rd)
			flagsSet = true
		case 4: // shift
			rd := rng.Intn(6) + 1
			op := OpLsl + rng.Intn(4)
			prog = append(prog, EncALUImm(op, rd, pick(), rng.Intn(8)))
			known = appendUnique(known, rd)
		case 5: // store (also the observation mechanism)
			prog = append(prog, EncStore(pick(), 7, rng.Intn(8)))
		case 6: // load
			rd := rng.Intn(6) + 1
			prog = append(prog, EncLoad(rd, 7, rng.Intn(8)))
			known = appendUnique(known, rd)
		case 7: // cmp
			prog = append(prog, EncALUImm(OpCmp, 0, pick(), rng.Intn(8)))
			flagsSet = true
		case 8: // forward conditional branch
			if !flagsSet {
				continue
			}
			off := 1 + rng.Intn(2)
			cond := 1 + rng.Intn(8)
			prog = append(prog, EncBranch(cond, off))
			// Fill the potentially skipped slots with stores so a
			// wrong branch decision is visible.
			for i := 0; i < off-1; i++ {
				prog = append(prog, EncStore(pick(), 7, rng.Intn(8)))
			}
		case 9: // interrupt mask play (no interrupts are raised)
			if rng.Intn(2) == 0 {
				prog = append(prog, EncALUImm(OpSei, 1, 0, rng.Intn(4)))
			} else {
				prog = append(prog, EncALUImm(OpCli, 1, 0, rng.Intn(4)))
			}
		}
	}
	// Terminate with stores of every known register (full observation).
	for _, r := range known {
		prog = append(prog, EncStore(r, 7, rng.Intn(8)))
	}
	return prog, len(prog)
}

func appendUnique(s []int, v int) []int {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

func TestAssembler(t *testing.T) {
	prog, err := Assemble(`
	start:
		mov  r1, #5
		add  r2, r1, r3
		ldr  r4, [r1, #3]
		str  r4, [r2, #0]
		cmp  r1, #5
		beq  start
		b    end
		swi
	end:
		nop`)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint16{
		EncALUImm(OpMov, 1, 0, 5),
		EncALUReg(OpAdd, 2, 1, 3),
		EncLoad(4, 1, 3),
		EncStore(4, 2, 0),
		EncALUImm(OpCmp, 0, 1, 5),
		EncBranch(CondEQ, -5),
		EncBranch(CondAlways, 2),
		EncSWI(),
		EncALUReg(OpAnd, 0, 0, 0),
	}
	if len(prog) != len(want) {
		t.Fatalf("assembled %d words, want %d", len(prog), len(want))
	}
	for i := range want {
		if prog[i] != want[i] {
			t.Errorf("word %d: %#x, want %#x", i, prog[i], want[i])
		}
	}
}

func TestAssemblerErrors(t *testing.T) {
	bad := []string{
		"frob r1, r2",
		"mov r9, #1",
		"mov r1",
		"ldr r1, r2, #3",
		"b nowhere",
		"dup: nop\ndup: nop",
		"mov r1, #xyz",
	}
	for _, src := range bad {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestGoldenBankedRegisters(t *testing.T) {
	// Enter FIQ-like mode via swi (svc banks r6-r7): write r6 in svc
	// mode, return, and verify user r6 is untouched.
	prog := MustAssemble(`
		mov r6, #5
		swi            ; -> vector 3 (svc mode)
		str r6, [r6, #0]   ; after return: mem[5] = 5
		mov r1, #1
		mov r6, #7     ; svc r6 (banked)
		rfe
		nop`)
	// Layout check: vector 3 must land on "mov r1, #1"? Assemble
	// sequentially: 0 mov, 1 swi, 2 str, 3 mov r1, 4 mov r6, 5 rfe.
	g := NewGolden(16, prog)
	for i := 0; i < 8; i++ {
		g.StepInstr(false, false)
	}
	if v, known := g.readReg(6); !known || v != 5 {
		t.Errorf("user r6 = %d (known=%v), want 5 (banked write leaked)", v, known)
	}
	if g.Mode != 0 {
		t.Errorf("mode = %d, want 0 after rfe", g.Mode)
	}
}
