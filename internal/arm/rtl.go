// Package arm provides the benchmark design of the reproduction: a
// from-scratch Verilog RTL model of an ARM2-class multicycle processor
// with the same module roster, hierarchy depths and testability quirks
// as the ARM model used in the FACTOR paper (Campenhout's class-project
// CPU): an `arm_alu` whose 10-of-13 control inputs are hard-coded
// decodes of a single alu_op field, a deeply embedded structural
// register file `regfile_struct` (the biggest module), an exception
// unit `exc` and a forwarding/bypass unit `forward`.
//
// The data width W is parameterizable (16 by default) so experiments
// can trade fidelity against runtime; instructions are fixed at 16
// bits.
//
// Instruction set (16-bit):
//
//	[15:13] class: 0 ALU-reg, 1 ALU-imm, 2 LOAD, 3 STORE, 4 BRANCH,
//	               5 SWI, 6/7 undefined (raise exception)
//	ALU:    [12:9] alu_op, [8:6] rd, [5:3] rn, [2:0] rm/imm3
//	        alu_op 0..9: add sub rsb and or xor bic mov mvn cmp
//	        alu_op 10..13: lsl lsr asr ror (barrel shifter path)
//	        alu_op 14: sei (enable interrupts), 15: cli (disable)
//	LOAD:   rd <- mem[Rn + imm3]
//	STORE:  mem[Rn + imm3] <- Rd
//	BRANCH: [12:9] condition, [8:0] signed word offset
//	SWI:    software interrupt
package arm

import "fmt"

// DefaultWidth is the default datapath width.
const DefaultWidth = 16

// Source returns the complete Verilog source of the processor.
func Source() string { return rtl }

// Top is the name of the top-level module.
const Top = "arm"

// MUT describes one module-under-test of the paper's evaluation.
type MUT struct {
	Module string // module name
	Path   string // hierarchical instance path from the top
	Level  int    // hierarchy depth (top = 0)
}

// MUTs lists the four modules the paper evaluates, with their instance
// paths and hierarchy levels (Table 1's "Hierarchy Level" column).
func MUTs() []MUT {
	return []MUT{
		{Module: "arm_alu", Path: "u_core.u_alu", Level: 2},
		{Module: "regfile_struct", Path: "u_core.u_regbank.u_rf", Level: 3},
		{Module: "exc", Path: "u_core.u_exc", Level: 2},
		{Module: "forward", Path: "u_core.u_fwd", Level: 2},
	}
}

// Opcode helpers for building test programs.
const (
	ClsALUReg = 0
	ClsALUImm = 1
	ClsLoad   = 2
	ClsStore  = 3
	ClsBranch = 4
	ClsSWI    = 5
	ClsUndef  = 6
)

// ALU operations.
const (
	OpAdd = iota
	OpSub
	OpRsb
	OpAnd
	OpOr
	OpXor
	OpBic
	OpMov
	OpMvn
	OpCmp
	OpLsl
	OpLsr
	OpAsr
	OpRor
	OpSei
	OpCli
)

// Branch conditions.
const (
	CondAlways = 0
	CondEQ     = 1
	CondNE     = 2
	CondCS     = 3
	CondCC     = 4
	CondMI     = 5
	CondPL     = 6
	CondVS     = 7
	CondVC     = 8
)

// EncALUReg encodes an ALU register-register instruction.
func EncALUReg(op, rd, rn, rm int) uint16 {
	return uint16(ClsALUReg<<13 | op<<9 | rd<<6 | rn<<3 | rm)
}

// EncALUImm encodes an ALU register-immediate instruction (imm 0..7).
func EncALUImm(op, rd, rn, imm int) uint16 {
	return uint16(ClsALUImm<<13 | op<<9 | rd<<6 | rn<<3 | imm&7)
}

// EncLoad encodes rd <- mem[rn + imm].
func EncLoad(rd, rn, imm int) uint16 {
	return uint16(ClsLoad<<13 | rd<<6 | rn<<3 | imm&7)
}

// EncStore encodes mem[rn + imm] <- rd.
func EncStore(rd, rn, imm int) uint16 {
	return uint16(ClsStore<<13 | rd<<6 | rn<<3 | imm&7)
}

// EncBranch encodes a conditional branch with a signed 9-bit offset
// relative to the branch's own address.
func EncBranch(cond, offset int) uint16 {
	return uint16(ClsBranch<<13 | cond<<9 | offset&0x1FF)
}

// EncSWI encodes a software interrupt.
func EncSWI() uint16 { return uint16(ClsSWI << 13) }

// EncUndef encodes an undefined instruction.
func EncUndef() uint16 { return uint16(ClsUndef << 13) }

// String renders a MUT for reports.
func (m MUT) String() string { return fmt.Sprintf("%s (%s, level %d)", m.Module, m.Path, m.Level) }

const rtl = `
// ARM2-class multicycle processor, FACTOR reproduction benchmark.

module arm #(parameter W = 16) (
  input clk,
  input rst,
  input irq,
  input fiq,
  input [W-1:0] mem_rdata,
  output [W-1:0] mem_addr,
  output [W-1:0] mem_wdata,
  output mem_rd,
  output mem_wr,
  output [3:0] dbg_flags,
  output [1:0] dbg_mode,
  output [3:0] dbg_cause,
  output dbg_stall,
  // Peripheral subsystems with their own pins (the rest of the chip
  // around the processor core).
  input [W-1:0] mac_a,
  input [W-1:0] mac_b,
  input mac_en,
  input mac_clr,
  output [W-1:0] mac_out,
  output mac_ovf,
  input [W-1:0] tmr_reload,
  input tmr_en,
  output tmr_irq,
  output [W-1:0] tmr_count,
  input crc_bit,
  input crc_en,
  input crc_clr,
  output [15:0] crc_out,
  input [7:0] gpio_in,
  input [7:0] gpio_dirsel,
  input gpio_we,
  output [7:0] gpio_out
);
  wire [W-1:0] pc;
  wire [15:0] instr;
  wire branch_en;
  wire [W-1:0] branch_target;
  wire fetch_en;

  wire [2:0] dec_cls;
  wire [3:0] dec_aluop;
  wire [2:0] dec_rd, dec_rn, dec_rm;
  wire [W-1:0] dec_imm;
  wire [W-1:0] dec_broff;
  wire [3:0] dec_cond;
  wire dec_is_load, dec_is_store, dec_is_branch, dec_is_swi, dec_is_undef;
  wire dec_uses_imm, dec_wb_en, dec_set_flags;

  wire [W-1:0] core_addr, core_wdata;
  wire core_mem_rd, core_mem_wr;
  wire [1:0] core_state;

  fetch #(.W(W)) u_fetch (
    .clk(clk), .rst(rst),
    .fetch_en(fetch_en),
    .mem_rdata(mem_rdata),
    .branch_en(branch_en), .branch_target(branch_target),
    .pc(pc), .instr(instr)
  );

  decode #(.W(W)) u_decode (
    .instr(instr),
    .cls(dec_cls), .aluop(dec_aluop),
    .rd(dec_rd), .rn(dec_rn), .rm(dec_rm),
    .imm(dec_imm), .broff(dec_broff), .cond(dec_cond),
    .is_load(dec_is_load), .is_store(dec_is_store),
    .is_branch(dec_is_branch), .is_swi(dec_is_swi), .is_undef(dec_is_undef),
    .uses_imm(dec_uses_imm), .wb_en(dec_wb_en), .set_flags(dec_set_flags)
  );

  core #(.W(W)) u_core (
    .clk(clk), .rst(rst),
    .irq(irq), .fiq(fiq),
    .pc(pc),
    .aluop(dec_aluop), .rd(dec_rd), .rn(dec_rn), .rm(dec_rm),
    .imm(dec_imm), .broff(dec_broff), .cond(dec_cond),
    .is_load(dec_is_load), .is_store(dec_is_store),
    .is_branch(dec_is_branch), .is_swi(dec_is_swi), .is_undef(dec_is_undef),
    .uses_imm(dec_uses_imm), .wb_en_in(dec_wb_en), .set_flags(dec_set_flags),
    .mem_rdata(mem_rdata),
    .addr_out(core_addr), .wdata_out(core_wdata),
    .mem_rd(core_mem_rd), .mem_wr(core_mem_wr),
    .state_out(core_state),
    .branch_en(branch_en), .branch_target(branch_target),
    .fetch_en(fetch_en),
    .dbg_flags(dbg_flags), .dbg_mode(dbg_mode), .dbg_cause(dbg_cause),
    .dbg_stall(dbg_stall)
  );

  buscontrol #(.W(W)) u_bus (
    .state(core_state),
    .pc(pc),
    .core_addr(core_addr), .core_wdata(core_wdata),
    .core_rd(core_mem_rd), .core_wr(core_mem_wr),
    .mem_addr(mem_addr), .mem_wdata(mem_wdata),
    .mem_rd(mem_rd), .mem_wr(mem_wr)
  );

  mac #(.W(W)) u_mac (
    .clk(clk), .rst(rst),
    .a(mac_a), .b(mac_b), .en(mac_en), .clr(mac_clr),
    .acc(mac_out), .ovf(mac_ovf)
  );

  timer #(.W(W)) u_timer (
    .clk(clk), .rst(rst),
    .reload(tmr_reload), .en(tmr_en),
    .irq(tmr_irq), .count(tmr_count)
  );

  crc16 u_crc (
    .clk(clk), .rst(rst),
    .bitin(crc_bit), .en(crc_en), .clr(crc_clr),
    .crc(crc_out)
  );

  gpio u_gpio (
    .clk(clk), .rst(rst),
    .din(gpio_in), .dirsel(gpio_dirsel), .we(gpio_we),
    .dout(gpio_out)
  );
endmodule

// mac: multiply-accumulate engine (a peripheral subsystem sharing only
// clock and reset with the processor).
module mac #(parameter W = 16) (
  input clk,
  input rst,
  input [W-1:0] a,
  input [W-1:0] b,
  input en,
  input clr,
  output [W-1:0] acc,
  output ovf
);
  reg [W-1:0] acc_r;
  reg ovf_r;
  wire [2*W-1:0] prod;
  assign prod = a * b;
  wire [W:0] sum;
  assign sum = {1'b0, acc_r} + {1'b0, prod[W-1:0]};
  always @(posedge clk) begin
    if (rst | clr) begin
      acc_r <= {W{1'b0}};
      ovf_r <= 1'b0;
    end
    else if (en) begin
      acc_r <= sum[W-1:0];
      ovf_r <= ovf_r | sum[W] | (|prod[2*W-1:W]);
    end
  end
  assign acc = acc_r;
  assign ovf = ovf_r;
endmodule

// timer: free-running down-counter with reload and interrupt.
module timer #(parameter W = 16) (
  input clk,
  input rst,
  input [W-1:0] reload,
  input en,
  output reg irq,
  output [W-1:0] count
);
  reg [W-1:0] cnt;
  wire zero;
  assign zero = cnt == {W{1'b0}};
  always @(posedge clk) begin
    if (rst) begin
      cnt <= {W{1'b1}};
      irq <= 1'b0;
    end
    else if (en) begin
      if (zero) begin
        cnt <= reload;
        irq <= 1'b1;
      end
      else begin
        cnt <= cnt - {{W-1{1'b0}}, 1'b1};
        irq <= 1'b0;
      end
    end
  end
  assign count = cnt;
endmodule

// crc16: serial CRC-16/CCITT engine.
module crc16 (
  input clk,
  input rst,
  input bitin,
  input en,
  input clr,
  output [15:0] crc
);
  reg [15:0] r;
  wire fb;
  assign fb = r[15] ^ bitin;
  always @(posedge clk) begin
    if (rst | clr)
      r <= 16'hFFFF;
    else if (en) begin
      r <= {r[14:0], 1'b0} ^ {3'b000, fb, 6'b000000, fb, 4'b0000, fb};
    end
  end
  assign crc = r;
endmodule

// gpio: 8-bit general-purpose I/O with direction select.
module gpio (
  input clk,
  input rst,
  input [7:0] din,
  input [7:0] dirsel,
  input we,
  output [7:0] dout
);
  reg [7:0] out_r, dir_r;
  always @(posedge clk) begin
    if (rst) begin
      out_r <= 8'd0;
      dir_r <= 8'd0;
    end
    else if (we) begin
      out_r <= din;
      dir_r <= dirsel;
    end
  end
  assign dout = (out_r & dir_r) | (din & ~dir_r);
endmodule

// fetch: program counter and instruction register.
module fetch #(parameter W = 16) (
  input clk,
  input rst,
  input fetch_en,
  input [W-1:0] mem_rdata,
  input branch_en,
  input [W-1:0] branch_target,
  output [W-1:0] pc,
  output [15:0] instr
);
  reg [W-1:0] pc_r;
  reg [15:0] instr_r;
  always @(posedge clk) begin
    if (rst) begin
      pc_r <= {W{1'b0}};
      instr_r <= 16'd0;
    end
    else begin
      if (fetch_en)
        instr_r <= mem_rdata[15:0];
      if (branch_en)
        pc_r <= branch_target;
    end
  end
  assign pc = pc_r;
  assign instr = instr_r;
endmodule

// decode: combinational instruction decoder.
module decode #(parameter W = 16) (
  input [15:0] instr,
  output [2:0] cls,
  output [3:0] aluop,
  output [2:0] rd,
  output [2:0] rn,
  output [2:0] rm,
  output [W-1:0] imm,
  output [W-1:0] broff,
  output [3:0] cond,
  output is_load,
  output is_store,
  output is_branch,
  output is_swi,
  output is_undef,
  output uses_imm,
  output wb_en,
  output set_flags
);
  assign cls = instr[15:13];
  assign aluop = instr[12:9];
  assign rd = instr[8:6];
  assign rn = instr[5:3];
  assign rm = instr[2:0];
  assign imm = {{W-3{1'b0}}, instr[2:0]};
  assign broff = {{W-9{instr[8]}}, instr[8:0]};
  assign cond = instr[12:9];
  assign is_load = cls == 3'd2;
  assign is_store = cls == 3'd3;
  assign is_branch = cls == 3'd4;
  assign is_swi = cls == 3'd5;
  assign is_undef = (cls == 3'd6) | (cls == 3'd7);
  assign uses_imm = (cls == 3'd1) | is_load | is_store;
  // cmp (9), sei (14) and cli (15) do not write a register.
  assign wb_en = ((cls == 3'd0) | (cls == 3'd1))
                 & (aluop != 4'd9) & (aluop != 4'd14) & (aluop != 4'd15);
  assign set_flags = (cls == 3'd0) | (cls == 3'd1);
endmodule

// core: execute engine. Contains the ALU, barrel shifter, register
// bank, exception unit, forwarding unit, the PSR and the multicycle
// state machine.
module core #(parameter W = 16) (
  input clk,
  input rst,
  input irq,
  input fiq,
  input [W-1:0] pc,
  input [3:0] aluop,
  input [2:0] rd,
  input [2:0] rn,
  input [2:0] rm,
  input [W-1:0] imm,
  input [W-1:0] broff,
  input [3:0] cond,
  input is_load,
  input is_store,
  input is_branch,
  input is_swi,
  input is_undef,
  input uses_imm,
  input wb_en_in,
  input set_flags,
  input [W-1:0] mem_rdata,
  output [W-1:0] addr_out,
  output [W-1:0] wdata_out,
  output mem_rd,
  output mem_wr,
  output [1:0] state_out,
  output branch_en,
  output [W-1:0] branch_target,
  output fetch_en,
  output [3:0] dbg_flags,
  output [1:0] dbg_mode,
  output [3:0] dbg_cause,
  output dbg_stall
);
  // State machine: FETCH=0, EXEC=1, MEM=2, WB=3.
  reg [1:0] state;
  always @(posedge clk) begin
    if (rst)
      state <= 2'd0;
    else begin
      case (state)
        2'd0: state <= 2'd1;
        2'd1: begin
          if (is_load | is_store)
            state <= 2'd2;
          else
            state <= 2'd3;
        end
        2'd2: state <= 2'd3;
        default: state <= 2'd0;
      endcase
    end
  end
  assign state_out = state;
  assign fetch_en = state == 2'd0;

  // Program status register: N Z C V and the interrupt-enable bit.
  reg flag_n_r, flag_z_r, flag_c_r, flag_v_r, ie_r;

  // Register bank read/write.
  wire [W-1:0] rf_rdata_a, rf_rdata_b;
  wire [W-1:0] wb_data;
  wire rf_we;

  // Forwarding (write-through bypass) unit.
  wire fwd_a_en, fwd_b_en, fwd_stall;
  forward u_fwd (
    .clk(clk), .rst(rst),
    .raddr_a(rn), .raddr_b(store_src),
    .waddr(rd), .we(rf_we), .we_is_load(is_load),
    .issue(in_exec & is_load), .issue_rd(rd),
    .fwd_a_en(fwd_a_en), .fwd_b_en(fwd_b_en),
    .stall(fwd_stall)
  );
  assign dbg_stall = fwd_stall;

  // Register sources: operand A is Rn; operand B is Rm or the
  // immediate. Stores read the store data through port B using rd.
  wire [2:0] store_src;
  assign store_src = is_store ? rd : rm;

  regbank #(.W(W)) u_regbank (
    .clk(clk),
    .mode(exc_mode),
    .we(rf_we), .waddr(rd), .wdata(wb_data),
    .raddr_a(rn), .raddr_b(store_src),
    .rdata_a(rf_rdata_a), .rdata_b(rf_rdata_b)
  );

  wire [W-1:0] op_a, op_b_reg, op_b;
  assign op_a = fwd_a_en ? wb_data : rf_rdata_a;
  assign op_b_reg = fwd_b_en ? wb_data : rf_rdata_b;
  assign op_b = uses_imm ? imm : op_b_reg;

  // ALU control decode: ten one-hot operation selects hard-coded from
  // the single alu_op field (the testability case the paper reports),
  // plus three controls derived elsewhere (carry_in from the PSR,
  // invert_b for BIC, pass_zero tied by reset mode).
  reg alu_add, alu_sub, alu_rsb, alu_and, alu_or;
  reg alu_xor, alu_bic, alu_mov, alu_mvn, alu_cmp;
  always @(*) begin
    alu_add = 1'b0; alu_sub = 1'b0; alu_rsb = 1'b0; alu_and = 1'b0;
    alu_or = 1'b0; alu_xor = 1'b0; alu_bic = 1'b0; alu_mov = 1'b0;
    alu_mvn = 1'b0; alu_cmp = 1'b0;
    case (aluop)
      4'd0: alu_add = 1'b1;
      4'd1: alu_sub = 1'b1;
      4'd2: alu_rsb = 1'b1;
      4'd3: alu_and = 1'b1;
      4'd4: alu_or = 1'b1;
      4'd5: alu_xor = 1'b1;
      4'd6: alu_bic = 1'b1;
      4'd7: alu_mov = 1'b1;
      4'd8: alu_mvn = 1'b1;
      4'd9: alu_cmp = 1'b1;
      default: alu_add = 1'b0;
    endcase
  end

  wire alu_invert_b;
  assign alu_invert_b = alu_bic;
  wire alu_pass_zero;
  assign alu_pass_zero = 1'b0;

  wire [W-1:0] alu_result;
  wire alu_fn, alu_fz, alu_fc, alu_fv;
  arm_alu #(.W(W)) u_alu (
    .a(op_a), .b(op_b),
    .op_add(alu_add), .op_sub(alu_sub), .op_rsb(alu_rsb),
    .op_and(alu_and), .op_or(alu_or), .op_xor(alu_xor),
    .op_bic(alu_bic), .op_mov(alu_mov), .op_mvn(alu_mvn),
    .op_cmp(alu_cmp),
    .carry_in(flag_c_r), .invert_b(alu_invert_b), .pass_zero(alu_pass_zero),
    .result(alu_result),
    .flag_n(alu_fn), .flag_z(alu_fz), .flag_c(alu_fc), .flag_v(alu_fv)
  );

  // Barrel shifter path for alu_op 10..13.
  wire is_shift;
  assign is_shift = (aluop == 4'd10) | (aluop == 4'd11)
                  | (aluop == 4'd12) | (aluop == 4'd13);
  wire [1:0] shift_mode;
  assign shift_mode = (aluop == 4'd10) ? 2'd0
                    : ((aluop == 4'd11) ? 2'd1
                    : ((aluop == 4'd12) ? 2'd2 : 2'd3));
  wire [W-1:0] shift_result;
  shifter #(.W(W)) u_shift (
    .v(op_a), .amt(imm[3:0]), .mode(shift_mode),
    .result(shift_result)
  );

  // Memory address for load/store.
  wire [W-1:0] ls_addr;
  assign ls_addr = op_a + imm;
  assign addr_out = ls_addr;
  assign wdata_out = op_b_reg;
  // Loads keep the bus driven through WB so the write-back mux reads
  // the memory data combinationally (this direct path from the data
  // pins to the register file is what makes its registers PIERs).
  assign mem_rd = ((state == 2'd2) | (state == 2'd3)) & is_load;
  assign mem_wr = (state == 2'd2) & is_store;

  // Exception unit.
  wire exc_take;
  wire [2:0] exc_vector;
  wire [1:0] exc_mode;
  wire in_exec;
  assign in_exec = state == 2'd1;
  wire [2:0] exc_cause;
  wire exc_busy;
  wire exc_mask_we, exc_mask_op, exc_ret;
  assign exc_mask_we = in_exec & set_flags
                     & ((aluop == 4'd14) | (aluop == 4'd15)) & (rd == 3'd1);
  assign exc_mask_op = aluop == 4'd14;
  assign exc_ret = in_exec & set_flags & (aluop == 4'd14) & (rd == 3'd2);
  exc u_exc (
    .clk(clk), .rst(rst),
    .irq(irq), .fiq(fiq),
    .swi(is_swi & in_exec), .undef(is_undef & in_exec),
    .ie(ie_r),
    .mask_we(exc_mask_we), .mask_op(exc_mask_op), .mask_data(imm[1:0]),
    .ret(exc_ret),
    .take(exc_take), .vector(exc_vector), .mode(exc_mode),
    .cause(exc_cause), .in_service(exc_busy)
  );
  assign dbg_mode = exc_mode;
  assign dbg_cause = {exc_busy, exc_cause};

  // Condition evaluation for branches.
  reg cond_ok;
  always @(*) begin
    case (cond)
      4'd0: cond_ok = 1'b1;
      4'd1: cond_ok = flag_z_r;
      4'd2: cond_ok = !flag_z_r;
      4'd3: cond_ok = flag_c_r;
      4'd4: cond_ok = !flag_c_r;
      4'd5: cond_ok = flag_n_r;
      4'd6: cond_ok = !flag_n_r;
      4'd7: cond_ok = flag_v_r;
      4'd8: cond_ok = !flag_v_r;
      default: cond_ok = 1'b0;
    endcase
  end

  // Next PC: exceptions vector; taken branches add the offset; all
  // other instructions fall through. PC updates at the end of EXEC.
  wire take_branch;
  assign take_branch = is_branch & cond_ok;
  assign branch_en = in_exec;
  assign branch_target = exc_take ? {{W-3{1'b0}}, exc_vector}
                       : (take_branch ? pc + broff : pc + {{W-1{1'b0}}, 1'b1});

  // Write-back: loads write memory data, everything else writes the
  // execute result registered at the end of EXEC (registering breaks
  // the combinational loop the bypass mux would otherwise create).
  // Exceptions squash the write.
  reg wb_pending;
  reg [2:0] wb_rd_r;
  reg [W-1:0] res_r;
  always @(posedge clk) begin
    if (rst)
      wb_pending <= 1'b0;
    else if (in_exec) begin
      wb_pending <= (wb_en_in | is_load) & !exc_take;
      if (is_shift)
        res_r <= shift_result;
      else
        res_r <= alu_result;
    end
    else if (state == 2'd3)
      wb_pending <= 1'b0;
  end
  assign rf_we = (state == 2'd3) & wb_pending;
  assign wb_data = is_load ? mem_rdata : res_r;

  // PSR update in EXEC.
  always @(posedge clk) begin
    if (rst) begin
      flag_n_r <= 1'b0;
      flag_z_r <= 1'b0;
      flag_c_r <= 1'b0;
      flag_v_r <= 1'b0;
      ie_r <= 1'b1;
    end
    else if (in_exec) begin
      if (exc_take)
        ie_r <= 1'b0;
      else begin
        if (set_flags & !is_shift & (aluop != 4'd14) & (aluop != 4'd15)) begin
          flag_n_r <= alu_fn;
          flag_z_r <= alu_fz;
          flag_c_r <= alu_fc;
          flag_v_r <= alu_fv;
        end
        if (set_flags & (aluop == 4'd14) & (rd == 3'd0))
          ie_r <= 1'b1;
        if (set_flags & (aluop == 4'd15) & (rd == 3'd0))
          ie_r <= 1'b0;
      end
    end
  end
  assign dbg_flags = {flag_n_r, flag_z_r, flag_c_r, flag_v_r};

  // wb_rd_r keeps the destination stable through MEM/WB (decode holds
  // it anyway in this multicycle design; registered for the forwarding
  // history).
  always @(posedge clk) begin
    if (rst)
      wb_rd_r <= 3'd0;
    else if (in_exec)
      wb_rd_r <= rd;
  end
endmodule

// arm_alu: the arithmetic/logic unit. Thirteen control inputs: ten
// one-hot operation selects plus carry_in, invert_b and pass_zero.
module arm_alu #(parameter W = 16) (
  input [W-1:0] a,
  input [W-1:0] b,
  input op_add,
  input op_sub,
  input op_rsb,
  input op_and,
  input op_or,
  input op_xor,
  input op_bic,
  input op_mov,
  input op_mvn,
  input op_cmp,
  input carry_in,
  input invert_b,
  input pass_zero,
  output reg [W-1:0] result,
  output flag_n,
  output flag_z,
  output reg flag_c,
  output reg flag_v
);
  wire [W-1:0] beff;
  assign beff = invert_b ? ~b : b;

  wire [W:0] sum_add;
  wire [W:0] sum_sub;
  wire [W:0] sum_rsb;
  assign sum_add = {1'b0, a} + {1'b0, beff} + {{W{1'b0}}, carry_in};
  assign sum_sub = {1'b0, a} + {1'b0, ~b} + {{W{1'b0}}, 1'b1};
  assign sum_rsb = {1'b0, b} + {1'b0, ~a} + {{W{1'b0}}, 1'b1};

  wire ovf_add, ovf_sub, ovf_rsb;
  assign ovf_add = (a[W-1] == beff[W-1]) & (sum_add[W-1] != a[W-1]);
  assign ovf_sub = (a[W-1] != b[W-1]) & (sum_sub[W-1] != a[W-1]);
  assign ovf_rsb = (b[W-1] != a[W-1]) & (sum_rsb[W-1] != b[W-1]);

  always @(*) begin
    result = {W{1'b0}};
    flag_c = 1'b0;
    flag_v = 1'b0;
    if (op_add) begin
      result = sum_add[W-1:0];
      flag_c = sum_add[W];
      flag_v = ovf_add;
    end
    else if (op_sub | op_cmp) begin
      result = sum_sub[W-1:0];
      flag_c = sum_sub[W];
      flag_v = ovf_sub;
    end
    else if (op_rsb) begin
      result = sum_rsb[W-1:0];
      flag_c = sum_rsb[W];
      flag_v = ovf_rsb;
    end
    else if (op_and | op_bic)
      result = a & beff;
    else if (op_or)
      result = a | beff;
    else if (op_xor)
      result = a ^ beff;
    else if (op_mov) begin
      if (pass_zero)
        result = {W{1'b0}};
      else
        result = beff;
    end
    else if (op_mvn)
      result = ~beff;
  end

  assign flag_n = result[W-1];
  assign flag_z = result == {W{1'b0}};
endmodule

// shifter: barrel shifter (lsl, lsr, asr, ror).
module shifter #(parameter W = 16) (
  input [W-1:0] v,
  input [3:0] amt,
  input [1:0] mode,
  output reg [W-1:0] result
);
  // Rotate via double-width shift.
  wire [2*W-1:0] dbl;
  assign dbl = {v, v} >> amt;
  wire [W-1:0] rorv;
  assign rorv = dbl[W-1:0];
  always @(*) begin
    case (mode)
      2'd0: result = v << amt;
      2'd1: result = v >> amt;
      2'd2: result = v >>> amt;
      default: result = rorv;
    endcase
  end
endmodule

// regbank: maps architectural register numbers to the banked physical
// register file (ARM-style banking: FIQ banks r4-r7, SVC/IRQ bank
// r6-r7) and wraps the structural register file.
module regbank #(parameter W = 16) (
  input clk,
  input [1:0] mode,
  input we,
  input [2:0] waddr,
  input [W-1:0] wdata,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  output [W-1:0] rdata_a,
  output [W-1:0] rdata_b
);
  wire fiq_mode, priv_mode;
  assign fiq_mode = mode == 2'd3;
  assign priv_mode = (mode == 2'd1) | (mode == 2'd2);

  function [3:0] phys;
    input [2:0] arch;
    input fiq;
    input priv;
    begin
      if (fiq & arch[2])
        phys = {1'b1, arch};
      else if (priv & arch[2] & arch[1])
        phys = {1'b1, arch};
      else
        phys = {1'b0, arch};
    end
  endfunction

  wire [3:0] pw, pa, pb;
  assign pw = phys(waddr, fiq_mode, priv_mode);
  assign pa = phys(raddr_a, fiq_mode, priv_mode);
  assign pb = phys(raddr_b, fiq_mode, priv_mode);

  regfile_struct #(.W(W)) u_rf (
    .clk(clk),
    .we(we), .waddr(pw), .wdata(wdata),
    .raddr_a(pa), .raddr_b(pb),
    .rdata_a(rdata_a), .rdata_b(rdata_b)
  );
endmodule

// regfile_struct: structural 16 x W banked register file — the biggest
// and most deeply embedded module under test.
module regfile_struct #(parameter W = 16) (
  input clk,
  input we,
  input [3:0] waddr,
  input [W-1:0] wdata,
  input [3:0] raddr_a,
  input [3:0] raddr_b,
  output reg [W-1:0] rdata_a,
  output reg [W-1:0] rdata_b
);
  wire [15:0] wen;
  regdec u_dec (.we(we), .waddr(waddr), .wen(wen));

  wire [W-1:0] q0, q1, q2, q3, q4, q5, q6, q7;
  wire [W-1:0] q8, q9, q10, q11, q12, q13, q14, q15;
  regcell #(.W(W)) u_r0 (.clk(clk), .en(wen[0]), .d(wdata), .q(q0));
  regcell #(.W(W)) u_r1 (.clk(clk), .en(wen[1]), .d(wdata), .q(q1));
  regcell #(.W(W)) u_r2 (.clk(clk), .en(wen[2]), .d(wdata), .q(q2));
  regcell #(.W(W)) u_r3 (.clk(clk), .en(wen[3]), .d(wdata), .q(q3));
  regcell #(.W(W)) u_r4 (.clk(clk), .en(wen[4]), .d(wdata), .q(q4));
  regcell #(.W(W)) u_r5 (.clk(clk), .en(wen[5]), .d(wdata), .q(q5));
  regcell #(.W(W)) u_r6 (.clk(clk), .en(wen[6]), .d(wdata), .q(q6));
  regcell #(.W(W)) u_r7 (.clk(clk), .en(wen[7]), .d(wdata), .q(q7));
  regcell #(.W(W)) u_r8 (.clk(clk), .en(wen[8]), .d(wdata), .q(q8));
  regcell #(.W(W)) u_r9 (.clk(clk), .en(wen[9]), .d(wdata), .q(q9));
  regcell #(.W(W)) u_r10 (.clk(clk), .en(wen[10]), .d(wdata), .q(q10));
  regcell #(.W(W)) u_r11 (.clk(clk), .en(wen[11]), .d(wdata), .q(q11));
  regcell #(.W(W)) u_r12 (.clk(clk), .en(wen[12]), .d(wdata), .q(q12));
  regcell #(.W(W)) u_r13 (.clk(clk), .en(wen[13]), .d(wdata), .q(q13));
  regcell #(.W(W)) u_r14 (.clk(clk), .en(wen[14]), .d(wdata), .q(q14));
  regcell #(.W(W)) u_r15 (.clk(clk), .en(wen[15]), .d(wdata), .q(q15));

  always @(*) begin
    case (raddr_a)
      4'd0: rdata_a = q0;
      4'd1: rdata_a = q1;
      4'd2: rdata_a = q2;
      4'd3: rdata_a = q3;
      4'd4: rdata_a = q4;
      4'd5: rdata_a = q5;
      4'd6: rdata_a = q6;
      4'd7: rdata_a = q7;
      4'd8: rdata_a = q8;
      4'd9: rdata_a = q9;
      4'd10: rdata_a = q10;
      4'd11: rdata_a = q11;
      4'd12: rdata_a = q12;
      4'd13: rdata_a = q13;
      4'd14: rdata_a = q14;
      default: rdata_a = q15;
    endcase
  end
  always @(*) begin
    case (raddr_b)
      4'd0: rdata_b = q0;
      4'd1: rdata_b = q1;
      4'd2: rdata_b = q2;
      4'd3: rdata_b = q3;
      4'd4: rdata_b = q4;
      4'd5: rdata_b = q5;
      4'd6: rdata_b = q6;
      4'd7: rdata_b = q7;
      4'd8: rdata_b = q8;
      4'd9: rdata_b = q9;
      4'd10: rdata_b = q10;
      4'd11: rdata_b = q11;
      4'd12: rdata_b = q12;
      4'd13: rdata_b = q13;
      4'd14: rdata_b = q14;
      default: rdata_b = q15;
    endcase
  end
endmodule

// regdec: write-enable decoder.
module regdec (
  input we,
  input [3:0] waddr,
  output reg [15:0] wen
);
  always @(*) begin
    wen = 16'd0;
    if (we) begin
      case (waddr)
        4'd0: wen[0] = 1'b1;
        4'd1: wen[1] = 1'b1;
        4'd2: wen[2] = 1'b1;
        4'd3: wen[3] = 1'b1;
        4'd4: wen[4] = 1'b1;
        4'd5: wen[5] = 1'b1;
        4'd6: wen[6] = 1'b1;
        4'd7: wen[7] = 1'b1;
        4'd8: wen[8] = 1'b1;
        4'd9: wen[9] = 1'b1;
        4'd10: wen[10] = 1'b1;
        4'd11: wen[11] = 1'b1;
        4'd12: wen[12] = 1'b1;
        4'd13: wen[13] = 1'b1;
        4'd14: wen[14] = 1'b1;
        default: wen[15] = 1'b1;
      endcase
    end
  end
endmodule

// regcell: one W-bit register with load enable.
module regcell #(parameter W = 16) (
  input clk,
  input en,
  input [W-1:0] d,
  output [W-1:0] q
);
  reg [W-1:0] r;
  always @(posedge clk) begin
    if (en)
      r <= d;
  end
  assign q = r;
endmodule

// exc: exception and interrupt unit. Latches pending interrupts,
// applies per-source mask bits, prioritizes fiq > irq > swi > undef,
// produces the vector, the processor mode, the latched cause, and
// supports return-from-exception (mode restore from a one-deep saved
// stack). The mask and return interface is driven from the sei/cli
// instruction forms, so most of this state is reachable only through
// instruction sequences.
module exc (
  input clk,
  input rst,
  input irq,
  input fiq,
  input swi,
  input undef,
  input ie,
  input mask_we,
  input mask_op,
  input [1:0] mask_data,
  input ret,
  output take,
  output reg [2:0] vector,
  output [1:0] mode,
  output [2:0] cause,
  output in_service
);
  // mask[0] enables irq, mask[1] enables fiq; both set at reset.
  reg [1:0] mask;
  reg irq_pend, fiq_pend;
  reg [1:0] mode_r, saved_mode;
  reg [2:0] cause_r;
  reg busy;

  wire irq_live, fiq_live;
  assign irq_live = irq & ie & mask[0];
  assign fiq_live = fiq & ie & mask[1];

  always @(posedge clk) begin
    if (rst) begin
      mask <= 2'b11;
      irq_pend <= 1'b0;
      fiq_pend <= 1'b0;
      mode_r <= 2'd0;
      saved_mode <= 2'd0;
      cause_r <= 3'd0;
      busy <= 1'b0;
    end
    else begin
      fiq_pend <= fiq_live;
      irq_pend <= irq_live;
      if (mask_we) begin
        if (mask_op)
          mask <= mask | mask_data;
        else
          mask <= mask & ~mask_data;
      end
      if (take) begin
        saved_mode <= mode_r;
        mode_r <= next_mode;
        cause_r <= vector;
        busy <= 1'b1;
      end
      else if (ret) begin
        mode_r <= saved_mode;
        busy <= 1'b0;
      end
    end
  end

  reg [1:0] next_mode;
  always @(*) begin
    vector = 3'd0;
    next_mode = 2'd0;
    if (fiq_pend) begin
      vector = 3'd1;
      next_mode = 2'd3;
    end
    else if (irq_pend) begin
      vector = 3'd2;
      next_mode = 2'd2;
    end
    else if (swi) begin
      vector = 3'd3;
      next_mode = 2'd1;
    end
    else if (undef) begin
      vector = 3'd4;
      next_mode = 2'd1;
    end
  end
  // Nested entries are blocked while servicing, except the fast
  // interrupt which preempts everything.
  assign take = (fiq_pend | ((irq_pend | swi | undef) & !busy));
  assign mode = mode_r;
  assign cause = cause_r;
  assign in_service = busy;
endmodule

// forward: write-through bypass, load scoreboard and load-use
// tracking. The bypass selects the write data when the register file
// is written in the same cycle a source is read; the scoreboard tracks
// which registers have a load in flight (set at issue, cleared at
// write-back) and raises the stall hint on a read-after-load hazard.
module forward (
  input clk,
  input rst,
  input [2:0] raddr_a,
  input [2:0] raddr_b,
  input [2:0] waddr,
  input we,
  input we_is_load,
  input issue,
  input [2:0] issue_rd,
  output fwd_a_en,
  output fwd_b_en,
  output stall
);
  assign fwd_a_en = we & (waddr == raddr_a);
  assign fwd_b_en = we & (waddr == raddr_b);

  // One busy bit per architectural register.
  reg [7:0] busy;
  reg [7:0] issue_dec, retire_dec;
  always @(*) begin
    issue_dec = 8'd0;
    if (issue) begin
      case (issue_rd)
        3'd0: issue_dec[0] = 1'b1;
        3'd1: issue_dec[1] = 1'b1;
        3'd2: issue_dec[2] = 1'b1;
        3'd3: issue_dec[3] = 1'b1;
        3'd4: issue_dec[4] = 1'b1;
        3'd5: issue_dec[5] = 1'b1;
        3'd6: issue_dec[6] = 1'b1;
        default: issue_dec[7] = 1'b1;
      endcase
    end
  end
  always @(*) begin
    retire_dec = 8'd0;
    if (we) begin
      case (waddr)
        3'd0: retire_dec[0] = 1'b1;
        3'd1: retire_dec[1] = 1'b1;
        3'd2: retire_dec[2] = 1'b1;
        3'd3: retire_dec[3] = 1'b1;
        3'd4: retire_dec[4] = 1'b1;
        3'd5: retire_dec[5] = 1'b1;
        3'd6: retire_dec[6] = 1'b1;
        default: retire_dec[7] = 1'b1;
      endcase
    end
  end
  always @(posedge clk) begin
    if (rst)
      busy <= 8'd0;
    else
      busy <= (busy & ~retire_dec) | issue_dec;
  end

  reg [2:0] last_load_rd;
  reg last_was_load;
  always @(posedge clk) begin
    if (rst) begin
      last_load_rd <= 3'd0;
      last_was_load <= 1'b0;
    end
    else begin
      last_was_load <= we & we_is_load;
      if (we & we_is_load)
        last_load_rd <= waddr;
    end
  end
  assign stall = busy[raddr_a] | busy[raddr_b]
               | (last_was_load
                  & ((last_load_rd == raddr_a) | (last_load_rd == raddr_b)));
endmodule

// buscontrol: multiplexes the memory interface between instruction
// fetch and data access.
module buscontrol #(parameter W = 16) (
  input [1:0] state,
  input [W-1:0] pc,
  input [W-1:0] core_addr,
  input [W-1:0] core_wdata,
  input core_rd,
  input core_wr,
  output [W-1:0] mem_addr,
  output [W-1:0] mem_wdata,
  output mem_rd,
  output mem_wr
);
  wire fetching;
  assign fetching = state == 2'd0;
  assign mem_addr = fetching ? pc : core_addr;
  assign mem_wdata = core_wdata;
  assign mem_rd = fetching | core_rd;
  assign mem_wr = core_wr;
endmodule
`
