package verilog

import (
	"strings"
	"testing"
)

func parseOne(t *testing.T, src string) *Module {
	t.Helper()
	sf, err := Parse("test.v", src)
	if err != nil {
		t.Fatalf("parse error: %v", err)
	}
	if len(sf.Modules) != 1 {
		t.Fatalf("got %d modules, want 1", len(sf.Modules))
	}
	return sf.Modules[0]
}

func TestParseEmptyModule(t *testing.T) {
	m := parseOne(t, "module m; endmodule")
	if m.Name != "m" || len(m.Ports) != 0 || len(m.Items) != 0 {
		t.Errorf("unexpected module: %+v", m)
	}
}

func TestParseANSIPorts(t *testing.T) {
	m := parseOne(t, `module m(input clk, input [7:0] a, b, output reg [3:0] y, inout io);
endmodule`)
	if len(m.Ports) != 5 {
		t.Fatalf("got %d ports, want 5", len(m.Ports))
	}
	checks := []struct {
		name  string
		dir   PortDir
		wide  bool
		isReg bool
	}{
		{"clk", PortInput, false, false},
		{"a", PortInput, true, false},
		{"b", PortInput, true, false},
		{"y", PortOutput, true, true},
		{"io", PortInout, false, false},
	}
	for i, c := range checks {
		p := m.Ports[i]
		if p.Name != c.name || p.Dir != c.dir || (p.Width != nil) != c.wide || p.IsReg != c.isReg {
			t.Errorf("port %d: got %+v, want %+v", i, p, c)
		}
	}
}

func TestParseNonANSIPorts(t *testing.T) {
	m := parseOne(t, `module m(a, y);
  input [7:0] a;
  output reg y;
  wire internal;
endmodule`)
	if len(m.Ports) != 2 {
		t.Fatalf("got %d ports, want 2", len(m.Ports))
	}
	if m.Ports[0].Width == nil || m.Ports[0].Dir != PortInput {
		t.Errorf("port a: %+v", m.Ports[0])
	}
	if !m.Ports[1].IsReg || m.Ports[1].Dir != PortOutput {
		t.Errorf("port y: %+v", m.Ports[1])
	}
}

func TestParseParameters(t *testing.T) {
	m := parseOne(t, `module m #(parameter W = 8, parameter D = W*2)(input [W-1:0] a);
  localparam HALF = W / 2;
endmodule`)
	params := m.Params()
	if len(params) != 3 {
		t.Fatalf("got %d param decls, want 3", len(params))
	}
	if params[0].Names[0] != "W" || params[2].Names[0] != "HALF" || !params[2].Local {
		t.Errorf("params: %+v %+v %+v", params[0], params[1], params[2])
	}
}

func TestParseContinuousAssign(t *testing.T) {
	m := parseOne(t, `module m(input a, b, output y);
  assign y = a & b | ~a;
endmodule`)
	var assigns []*AssignItem
	for _, it := range m.Items {
		if a, ok := it.(*AssignItem); ok {
			assigns = append(assigns, a)
		}
	}
	if len(assigns) != 1 {
		t.Fatalf("got %d assigns, want 1", len(assigns))
	}
	// Check precedence: & binds tighter than |.
	rhs, ok := assigns[0].RHS.(*BinaryExpr)
	if !ok || rhs.Op != BinOr {
		t.Fatalf("rhs = %s, want top-level |", DescribeExpr(assigns[0].RHS))
	}
	if l, ok := rhs.X.(*BinaryExpr); !ok || l.Op != BinAnd {
		t.Errorf("lhs of | = %s, want a & b", DescribeExpr(rhs.X))
	}
}

func TestParseAlwaysComb(t *testing.T) {
	m := parseOne(t, `module m(input [1:0] s, input a, b, c, d, output reg y);
  always @(*) begin
    case (s)
      2'b00: y = a;
      2'b01: y = b;
      2'b10: y = c;
      default: y = d;
    endcase
  end
endmodule`)
	var always *AlwaysBlock
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			always = a
		}
	}
	if always == nil {
		t.Fatal("no always block parsed")
	}
	if !always.Sens.Star || always.Clocked() {
		t.Errorf("sensitivity: %+v", always.Sens)
	}
	blk := always.Body.(*Block)
	cs := blk.Stmts[0].(*CaseStmt)
	if len(cs.Items) != 4 {
		t.Fatalf("case items: %d, want 4", len(cs.Items))
	}
	if len(cs.Items[3].Exprs) != 0 {
		t.Errorf("last case item should be default")
	}
}

func TestParseAlwaysClocked(t *testing.T) {
	m := parseOne(t, `module m(input clk, rst_n, d, output reg q);
  always @(posedge clk or negedge rst_n)
    if (!rst_n) q <= 1'b0;
    else q <= d;
endmodule`)
	var always *AlwaysBlock
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			always = a
		}
	}
	if !always.Clocked() {
		t.Fatal("expected clocked always")
	}
	if len(always.Sens.Items) != 2 ||
		always.Sens.Items[0].Edge != EdgePos ||
		always.Sens.Items[1].Edge != EdgeNeg {
		t.Errorf("sensitivity: %+v", always.Sens)
	}
	ifs := always.Body.(*IfStmt)
	as := ifs.Then.(*AssignStmt)
	if as.Blocking {
		t.Errorf("expected nonblocking assignment")
	}
}

func TestParseInstance(t *testing.T) {
	src := `module top(input clk, output [7:0] y);
  wire [7:0] t;
  sub #(.W(8)) u_sub (.clk(clk), .out(t), .unused());
  sub2 u2 (clk, t, y);
endmodule
module sub #(parameter W=4)(input clk, output [W-1:0] out, input unused); endmodule
module sub2(input clk, input [7:0] a, output [7:0] y); endmodule`
	sf, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	top := sf.Module("top")
	insts := top.Instances()
	if len(insts) != 2 {
		t.Fatalf("got %d instances, want 2", len(insts))
	}
	u := insts[0]
	if u.ModuleName != "sub" || u.Name != "u_sub" {
		t.Errorf("instance: %+v", u)
	}
	if len(u.Params) != 1 || u.Params[0].Name != "W" {
		t.Errorf("param overrides: %+v", u.Params)
	}
	if u.Conn("clk") == nil {
		t.Error("missing .clk connection")
	}
	if u.Conns[2].Port != "unused" || u.Conns[2].Expr != nil {
		t.Errorf("unconnected port: %+v", u.Conns[2])
	}
	if insts[1].Conns[0].Port != "" {
		t.Errorf("positional connection should have empty port name")
	}
}

func TestParseGatePrimitives(t *testing.T) {
	m := parseOne(t, `module m(input a, b, output y, z);
  and g1 (y, a, b);
  nor (z, a, b);
  not n1 (w1, a), n2 (w2, b);
  wire w1, w2;
endmodule`)
	var gates []*GateInst
	for _, it := range m.Items {
		if g, ok := it.(*GateInst); ok {
			gates = append(gates, g)
		}
	}
	if len(gates) != 4 {
		t.Fatalf("got %d gates, want 4", len(gates))
	}
	if gates[0].Kind != "and" || gates[0].Name != "g1" || len(gates[0].Args) != 3 {
		t.Errorf("gate 0: %+v", gates[0])
	}
	if gates[1].Name != "" {
		t.Errorf("gate 1 should be anonymous: %+v", gates[1])
	}
	if gates[3].Name != "n2" {
		t.Errorf("comma-separated gate list: %+v", gates[3])
	}
}

func TestParseForLoop(t *testing.T) {
	m := parseOne(t, `module m(input [7:0] a, output reg [7:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 8; i = i + 1)
      y[i] = a[7 - i];
  end
endmodule`)
	var always *AlwaysBlock
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			always = a
		}
	}
	blk := always.Body.(*Block)
	fs, ok := blk.Stmts[0].(*ForStmt)
	if !ok {
		t.Fatalf("expected for, got %T", blk.Stmts[0])
	}
	if !fs.Init.Blocking || DescribeExpr(fs.Cond) != "(i < 8)" {
		t.Errorf("for: init=%+v cond=%s", fs.Init, DescribeExpr(fs.Cond))
	}
}

func TestParseExpressions(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{"a + b * c", "(a + (b * c))"},
		{"(a + b) * c", "((a + b) * c)"},
		{"a ? b : c ? d : e", "(a ? b : (c ? d : e))"},
		{"{a, b[3:0], 2'b01}", "{a, b[3:0], 2'b01}"},
		{"{4{x}}", "{4{x}}"},
		{"a[i+1]", "a[(i + 1)]"},
		{"&bus", "&(bus)"},
		{"~|bus", "~|(bus)"},
		{"a == b && c != d", "((a == b) && (c != d))"},
		{"a << 2 | b >> 1", "((a << 2) | (b >> 1))"},
		{"f(x, y)", "f(x, y)"},
		{"-a + b", "(-(a) + b)"},
		{"a < b == c", "((a < b) == c)"},
		{"x & y ^ z", "((x & y) ^ z)"},
		{"x ^ y | z", "((x ^ y) | z)"},
	}
	for _, c := range cases {
		src := "module m(input a, output y); assign y = " + c.src + "; endmodule"
		m := parseOne(t, src)
		var assign *AssignItem
		for _, it := range m.Items {
			if a, ok := it.(*AssignItem); ok {
				assign = a
			}
		}
		got := DescribeExpr(assign.RHS)
		if got != c.want {
			t.Errorf("%q: got %s, want %s", c.src, got, c.want)
		}
	}
}

func TestParseFunction(t *testing.T) {
	m := parseOne(t, `module m(input [3:0] a, output [3:0] y);
  function [3:0] twice;
    input [3:0] v;
    begin
      twice = v << 1;
    end
  endfunction
  assign y = twice(a);
endmodule`)
	var fn *FunctionDecl
	for _, it := range m.Items {
		if f, ok := it.(*FunctionDecl); ok {
			fn = f
		}
	}
	if fn == nil || fn.Name != "twice" || len(fn.Inputs) != 1 {
		t.Fatalf("function: %+v", fn)
	}
	var assign *AssignItem
	for _, it := range m.Items {
		if a, ok := it.(*AssignItem); ok {
			assign = a
		}
	}
	if _, ok := assign.RHS.(*CallExpr); !ok {
		t.Errorf("rhs should be a call, got %T", assign.RHS)
	}
}

func TestParseWireWithInit(t *testing.T) {
	m := parseOne(t, `module m(input a, b, output y);
  wire t = a ^ b;
  assign y = t;
endmodule`)
	var decls int
	var assigns int
	for _, it := range m.Items {
		switch it.(type) {
		case *NetDecl:
			decls++
		case *AssignItem:
			assigns++
		}
	}
	if decls != 1 || assigns != 2 {
		t.Errorf("decls=%d assigns=%d, want 1 and 2", decls, assigns)
	}
}

func TestParseMultipleModules(t *testing.T) {
	sf, err := Parse("t.v", `module a; endmodule
module b; endmodule
module c; endmodule`)
	if err != nil {
		t.Fatal(err)
	}
	if len(sf.Modules) != 3 {
		t.Fatalf("got %d modules, want 3", len(sf.Modules))
	}
	if sf.Module("b") == nil || sf.Module("missing") != nil {
		t.Error("Module() lookup broken")
	}
}

func TestParseFilesDuplicateModule(t *testing.T) {
	_, err := ParseFiles(map[string]string{
		"a.v": "module m; endmodule",
		"b.v": "module m; endmodule",
	})
	if err == nil || !strings.Contains(err.Error(), "defined in both") {
		t.Errorf("expected duplicate module error, got %v", err)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"module",
		"module m",
		"module m(input); endmodule",
		"module m; assign = 1; endmodule",
		"module m; always @(posedge) x = 1; endmodule",
		"module m; if (a) x = 1; endmodule", // if outside always
		"module m; wire [7:0] mem [0:3]; endmodule",
		"module m; case endmodule",
		"module m; assign y = (a; endmodule",
	}
	for _, src := range bad {
		if _, err := Parse("t.v", src); err == nil {
			t.Errorf("%q: expected parse error", src)
		}
	}
}

func TestParseInitialBlockAndSysCalls(t *testing.T) {
	m := parseOne(t, `module m;
  reg clk;
  initial begin
    clk = 0;
    $display("hello %d", clk);
    $finish;
  end
endmodule`)
	var init *InitialBlock
	for _, it := range m.Items {
		if b, ok := it.(*InitialBlock); ok {
			init = b
		}
	}
	if init == nil {
		t.Fatal("no initial block")
	}
	blk := init.Body.(*Block)
	if len(blk.Stmts) != 3 {
		t.Fatalf("got %d stmts, want 3", len(blk.Stmts))
	}
	if _, ok := blk.Stmts[1].(*SysCallStmt); !ok {
		t.Errorf("stmt 1 should be a system call, got %T", blk.Stmts[1])
	}
}

// TestPrintRoundTrip checks that printed modules re-parse to the same
// printed form (print → parse → print is a fixed point).
func TestPrintRoundTrip(t *testing.T) {
	srcs := []string{
		`module m(input clk, input [7:0] a, output reg [7:0] q);
  wire [7:0] nxt;
  assign nxt = a + 8'd1;
  always @(posedge clk) q <= nxt;
endmodule`,
		`module mux(input [1:0] s, input a, b, c, d, output reg y);
  always @(*) begin
    casez (s)
      2'b0?: y = a;
      2'b10: y = c;
      default: y = d;
    endcase
  end
endmodule`,
		`module g(input a, b, output y);
  and g1 (y, a, b);
endmodule`,
		`module h(input [3:0] v, output [3:0] o);
  sub #(.W(4)) u (.in(v), .out(o));
endmodule
module sub #(parameter W = 2)(input [W-1:0] in, output [W-1:0] out);
  assign out = ~in;
endmodule`,
	}
	for i, src := range srcs {
		sf1, err := Parse("a.v", src)
		if err != nil {
			t.Fatalf("case %d parse 1: %v", i, err)
		}
		p1 := PrintFile(sf1)
		sf2, err := Parse("b.v", p1)
		if err != nil {
			t.Fatalf("case %d parse of printed form: %v\n%s", i, err, p1)
		}
		p2 := PrintFile(sf2)
		if p1 != p2 {
			t.Errorf("case %d: print not a fixed point:\n--- first ---\n%s\n--- second ---\n%s", i, p1, p2)
		}
	}
}

func TestParseWhileLoop(t *testing.T) {
	m := parseOne(t, `module m(input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    y = 0;
    i = 0;
    while (i < 4) begin
      y = y + a;
      i = i + 1;
    end
  end
endmodule`)
	var always *AlwaysBlock
	for _, it := range m.Items {
		if a, ok := it.(*AlwaysBlock); ok {
			always = a
		}
	}
	blk := always.Body.(*Block)
	if _, ok := blk.Stmts[2].(*WhileStmt); !ok {
		t.Errorf("expected while, got %T", blk.Stmts[2])
	}
}
