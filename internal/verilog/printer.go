package verilog

import (
	"fmt"
	"strings"
)

// Print renders a module back to Verilog source. FACTOR uses this to
// write extracted constraints out as synthesizable netlists.
func Print(m *Module) string {
	var sb strings.Builder
	pr := &printer{sb: &sb}
	pr.module(m)
	return sb.String()
}

// PrintFile renders all modules of a source file.
func PrintFile(f *SourceFile) string {
	var sb strings.Builder
	for i, m := range f.Modules {
		if i > 0 {
			sb.WriteString("\n")
		}
		pr := &printer{sb: &sb}
		pr.module(m)
	}
	return sb.String()
}

type printer struct {
	sb     *strings.Builder
	indent int
}

func (p *printer) nl() {
	p.sb.WriteByte('\n')
	for i := 0; i < p.indent; i++ {
		p.sb.WriteString("  ")
	}
}

func (p *printer) printf(format string, args ...interface{}) {
	fmt.Fprintf(p.sb, format, args...)
}

func (p *printer) module(m *Module) {
	p.printf("module %s (", m.Name)
	for i, port := range m.Ports {
		if i > 0 {
			p.printf(", ")
		}
		p.printf("%s", port.Name)
	}
	p.printf(");")
	p.indent++
	for _, port := range m.Ports {
		p.nl()
		p.printf("%s", port.Dir)
		if port.IsReg {
			p.printf(" reg")
		}
		if port.Width != nil {
			p.printf(" [%s:%s]", DescribeExpr(port.Width.MSB), DescribeExpr(port.Width.LSB))
		}
		p.printf(" %s;", port.Name)
	}
	for _, it := range m.Items {
		// Port directions are printed with the port list above; a
		// NetDecl that only re-declares ports (as produced when
		// parsing non-ANSI direction declarations) would duplicate
		// them on re-parse.
		if nd, ok := it.(*NetDecl); ok {
			var names []string
			for _, n := range nd.Names {
				if m.Port(n) == nil {
					names = append(names, n)
				}
			}
			if len(names) == 0 {
				continue
			}
			it = &NetDecl{Kind: nd.Kind, Width: nd.Width, Names: names, Pos: nd.Pos}
		}
		p.item(it)
	}
	p.indent--
	p.nl()
	p.printf("endmodule")
	p.nl()
}

func (p *printer) item(it Item) {
	switch v := it.(type) {
	case *ParamDecl:
		for i, name := range v.Names {
			p.nl()
			kw := "parameter"
			if v.Local {
				kw = "localparam"
			}
			p.printf("%s %s = %s;", kw, name, DescribeExpr(v.Values[i]))
		}
	case *NetDecl:
		p.nl()
		p.printf("%s", v.Kind)
		if v.Width != nil {
			p.printf(" [%s:%s]", DescribeExpr(v.Width.MSB), DescribeExpr(v.Width.LSB))
		}
		p.printf(" %s;", strings.Join(v.Names, ", "))
	case *AssignItem:
		p.nl()
		p.printf("assign %s = %s;", DescribeExpr(v.LHS), DescribeExpr(v.RHS))
	case *AlwaysBlock:
		p.nl()
		p.printf("always @(%s)", sensString(v.Sens))
		p.stmtInline(v.Body)
	case *InitialBlock:
		p.nl()
		p.printf("initial")
		p.stmtInline(v.Body)
	case *Instance:
		p.nl()
		p.printf("%s", v.ModuleName)
		if len(v.Params) > 0 {
			p.printf(" #(")
			for i, pa := range v.Params {
				if i > 0 {
					p.printf(", ")
				}
				if pa.Name != "" {
					p.printf(".%s(%s)", pa.Name, DescribeExpr(pa.Value))
				} else {
					p.printf("%s", DescribeExpr(pa.Value))
				}
			}
			p.printf(")")
		}
		p.printf(" %s (", v.Name)
		for i, c := range v.Conns {
			if i > 0 {
				p.printf(", ")
			}
			if c.Port != "" {
				if c.Expr != nil {
					p.printf(".%s(%s)", c.Port, DescribeExpr(c.Expr))
				} else {
					p.printf(".%s()", c.Port)
				}
			} else {
				p.printf("%s", DescribeExpr(c.Expr))
			}
		}
		p.printf(");")
	case *GateInst:
		p.nl()
		p.printf("%s", v.Kind)
		if v.Name != "" {
			p.printf(" %s", v.Name)
		}
		p.printf(" (")
		for i, a := range v.Args {
			if i > 0 {
				p.printf(", ")
			}
			p.printf("%s", DescribeExpr(a))
		}
		p.printf(");")
	case *FunctionDecl:
		p.nl()
		p.printf("function")
		if v.Width != nil {
			p.printf(" [%s:%s]", DescribeExpr(v.Width.MSB), DescribeExpr(v.Width.LSB))
		}
		p.printf(" %s;", v.Name)
		p.indent++
		for _, in := range v.Inputs {
			p.nl()
			p.printf("input")
			if in.Width != nil {
				p.printf(" [%s:%s]", DescribeExpr(in.Width.MSB), DescribeExpr(in.Width.LSB))
			}
			p.printf(" %s;", in.Name)
		}
		for _, loc := range v.Locals {
			p.nl()
			p.printf("%s", loc.Kind)
			if loc.Width != nil {
				p.printf(" [%s:%s]", DescribeExpr(loc.Width.MSB), DescribeExpr(loc.Width.LSB))
			}
			p.printf(" %s;", strings.Join(loc.Names, ", "))
		}
		p.stmt(v.Body)
		p.indent--
		p.nl()
		p.printf("endfunction")
	}
}

func sensString(s SensList) string {
	if s.Star {
		return "*"
	}
	parts := make([]string, len(s.Items))
	for i, it := range s.Items {
		prefix := ""
		switch it.Edge {
		case EdgePos:
			prefix = "posedge "
		case EdgeNeg:
			prefix = "negedge "
		}
		parts[i] = prefix + DescribeExpr(it.Signal)
	}
	return strings.Join(parts, " or ")
}

// stmtInline prints a statement after a header on the same logical
// construct (always/initial/if/else headers).
func (p *printer) stmtInline(s Stmt) {
	if b, ok := s.(*Block); ok {
		p.printf(" begin")
		p.indent++
		for _, st := range b.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.nl()
		p.printf("end")
		return
	}
	p.indent++
	p.stmt(s)
	p.indent--
}

func (p *printer) stmt(s Stmt) {
	switch v := s.(type) {
	case *Block:
		p.nl()
		p.printf("begin")
		p.indent++
		for _, st := range v.Stmts {
			p.stmt(st)
		}
		p.indent--
		p.nl()
		p.printf("end")
	case *IfStmt:
		p.nl()
		p.printf("if (%s)", DescribeExpr(v.Cond))
		p.stmtInline(v.Then)
		if v.Else != nil {
			p.nl()
			p.printf("else")
			p.stmtInline(v.Else)
		}
	case *CaseStmt:
		p.nl()
		p.printf("%s (%s)", v.Kind, DescribeExpr(v.Subject))
		p.indent++
		for _, item := range v.Items {
			p.nl()
			if len(item.Exprs) == 0 {
				p.printf("default:")
			} else {
				labels := make([]string, len(item.Exprs))
				for i, e := range item.Exprs {
					labels[i] = DescribeExpr(e)
				}
				p.printf("%s:", strings.Join(labels, ", "))
			}
			p.stmtInline(item.Body)
		}
		p.indent--
		p.nl()
		p.printf("endcase")
	case *ForStmt:
		p.nl()
		p.printf("for (%s; %s; %s)", assignString(v.Init), DescribeExpr(v.Cond), assignString(v.Step))
		p.stmtInline(v.Body)
	case *WhileStmt:
		p.nl()
		p.printf("while (%s)", DescribeExpr(v.Cond))
		p.stmtInline(v.Body)
	case *AssignStmt:
		p.nl()
		p.printf("%s;", assignString(v))
	case *NullStmt:
		p.nl()
		p.printf(";")
	case *SysCallStmt:
		p.nl()
		args := make([]string, len(v.Args))
		for i, a := range v.Args {
			args[i] = DescribeExpr(a)
		}
		p.printf("%s(%s);", v.Name, strings.Join(args, ", "))
	}
}

func assignString(a *AssignStmt) string {
	op := "="
	if !a.Blocking {
		op = "<="
	}
	return fmt.Sprintf("%s %s %s", DescribeExpr(a.LHS), op, DescribeExpr(a.RHS))
}

// writeExpr renders an expression with minimal but safe parentheses.
func writeExpr(sb *strings.Builder, e Expr) {
	switch v := e.(type) {
	case *Ident:
		sb.WriteString(v.Name)
	case *Number:
		if v.Text != "" {
			sb.WriteString(v.Text)
		} else {
			fmt.Fprintf(sb, "%d'd%d", v.Width, v.Value)
		}
	case *UnaryExpr:
		sb.WriteString(v.Op.String())
		sb.WriteByte('(')
		writeExpr(sb, v.X)
		sb.WriteByte(')')
	case *BinaryExpr:
		sb.WriteByte('(')
		writeExpr(sb, v.X)
		sb.WriteByte(' ')
		sb.WriteString(v.Op.String())
		sb.WriteByte(' ')
		writeExpr(sb, v.Y)
		sb.WriteByte(')')
	case *CondExpr:
		sb.WriteByte('(')
		writeExpr(sb, v.Cond)
		sb.WriteString(" ? ")
		writeExpr(sb, v.Then)
		sb.WriteString(" : ")
		writeExpr(sb, v.Else)
		sb.WriteByte(')')
	case *IndexExpr:
		writeExpr(sb, v.X)
		sb.WriteByte('[')
		writeExpr(sb, v.Index)
		sb.WriteByte(']')
	case *RangeExpr:
		writeExpr(sb, v.X)
		sb.WriteByte('[')
		writeExpr(sb, v.MSB)
		sb.WriteByte(':')
		writeExpr(sb, v.LSB)
		sb.WriteByte(']')
	case *ConcatExpr:
		sb.WriteByte('{')
		for i, part := range v.Parts {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, part)
		}
		sb.WriteByte('}')
	case *ReplExpr:
		sb.WriteByte('{')
		writeExpr(sb, v.Count)
		sb.WriteByte('{')
		writeExpr(sb, v.X)
		sb.WriteString("}}")
	case *CallExpr:
		sb.WriteString(v.Name)
		sb.WriteByte('(')
		for i, a := range v.Args {
			if i > 0 {
				sb.WriteString(", ")
			}
			writeExpr(sb, a)
		}
		sb.WriteByte(')')
	default:
		sb.WriteString("/*?*/")
	}
}
