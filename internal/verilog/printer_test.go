package verilog

import (
	"math/rand"
	"strings"
	"testing"
)

// randExpr builds a random expression tree over a fixed signal set.
func randExpr(rng *rand.Rand, depth int) Expr {
	if depth <= 0 || rng.Intn(4) == 0 {
		switch rng.Intn(3) {
		case 0:
			return &Ident{Name: string(rune('a' + rng.Intn(4)))}
		case 1:
			return &Number{Width: 4, Sized: true, Value: uint64(rng.Intn(16)), Text: ""}
		default:
			return &Ident{Name: "bus"}
		}
	}
	switch rng.Intn(8) {
	case 0:
		ops := []UnaryOp{UnaryMinus, UnaryNot, UnaryBitNot, UnaryAnd, UnaryOr, UnaryXor, UnaryNand, UnaryNor, UnaryXnor}
		return &UnaryExpr{Op: ops[rng.Intn(len(ops))], X: randExpr(rng, depth-1)}
	case 1, 2, 3:
		ops := []BinaryOp{BinAdd, BinSub, BinMul, BinAnd, BinOr, BinXor, BinXnor, BinLogAnd, BinLogOr,
			BinEq, BinNeq, BinLt, BinLe, BinGt, BinGe, BinShl, BinShr}
		return &BinaryExpr{Op: ops[rng.Intn(len(ops))], X: randExpr(rng, depth-1), Y: randExpr(rng, depth-1)}
	case 4:
		return &CondExpr{Cond: randExpr(rng, depth-1), Then: randExpr(rng, depth-1), Else: randExpr(rng, depth-1)}
	case 5:
		return &IndexExpr{X: &Ident{Name: "bus"}, Index: randExpr(rng, depth-1)}
	case 6:
		parts := make([]Expr, 1+rng.Intn(3))
		for i := range parts {
			parts[i] = randExpr(rng, depth-1)
		}
		return &ConcatExpr{Parts: parts}
	default:
		return &ReplExpr{Count: &Number{Width: 3, Value: uint64(1 + rng.Intn(4)), Text: ""}, X: randExpr(rng, depth-1)}
	}
}

// TestExprPrintParseFixpoint: printing a random expression, parsing it
// back and printing again yields the same text (the printed form is
// canonical).
func TestExprPrintParseFixpoint(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		e := randExpr(rng, 4)
		text1 := DescribeExpr(e)
		src := "module m(input a, b, c, d, input [7:0] bus, output y); assign y = " + text1 + "; endmodule"
		sf, err := Parse("t.v", src)
		if err != nil {
			t.Fatalf("trial %d: printed expression does not parse: %v\n%s", trial, err, text1)
		}
		var rhs Expr
		for _, it := range sf.Modules[0].Items {
			if a, ok := it.(*AssignItem); ok {
				rhs = a.RHS
			}
		}
		if text2 := DescribeExpr(rhs); text2 != text1 {
			t.Fatalf("trial %d: not a fixpoint:\n  %s\n  %s", trial, text1, text2)
		}
	}
}

func TestPrintModuleFixpointOnARMStyleConstructs(t *testing.T) {
	src := `
module m #(parameter W = 8)(input clk, input [W-1:0] a, output reg [W-1:0] q, output w);
  localparam HALF = W / 2;
  wire [W-1:0] t;
  supply0 gnd;
  assign t = a ^ {W{1'b1}};
  function [1:0] enc;
    input [3:0] v;
    begin
      if (v[0]) enc = 2'd0;
      else if (v[1]) enc = 2'd1;
      else enc = 2'd3;
    end
  endfunction
  assign w = enc(a[3:0]) == 2'd1;
  always @(posedge clk) begin
    if (a[0])
      q <= t;
  end
  sub u_s (.x(t[0]), .y());
endmodule
module sub(input x, output y);
  not (y, x);
endmodule`
	sf1, err := Parse("a.v", src)
	if err != nil {
		t.Fatal(err)
	}
	p1 := PrintFile(sf1)
	sf2, err := Parse("b.v", p1)
	if err != nil {
		t.Fatalf("printed form does not re-parse: %v\n%s", err, p1)
	}
	if p2 := PrintFile(sf2); p2 != p1 {
		t.Errorf("print not a fixpoint:\n--- 1 ---\n%s\n--- 2 ---\n%s", p1, p2)
	}
}

func TestPrintCaseKinds(t *testing.T) {
	src := `
module m(input [1:0] s, output reg y);
  always @(*) begin
    casex (s)
      2'b1x: y = 1'b1;
      default: y = 1'b0;
    endcase
  end
endmodule`
	sf, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(sf.Modules[0])
	if !strings.Contains(out, "casex") {
		t.Errorf("casex lost: %s", out)
	}
}

func TestPrintSysCallAndWhile(t *testing.T) {
	src := `
module m;
  reg [3:0] i;
  initial begin
    i = 0;
    while (i < 4) begin
      $display("i=%d", i);
      i = i + 1;
    end
  end
endmodule`
	sf, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	out := Print(sf.Modules[0])
	for _, want := range []string{"while", "$display", "initial"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Printed form re-parses.
	if _, err := Parse("t2.v", out); err != nil {
		t.Errorf("printed form does not re-parse: %v\n%s", err, out)
	}
}

func TestDescribeExprNumberWithoutText(t *testing.T) {
	n := &Number{Width: 8, Value: 42}
	if got := DescribeExpr(n); got != "8'd42" {
		t.Errorf("got %q", got)
	}
}

func TestPrintForLoop(t *testing.T) {
	src := `
module m(input [3:0] a, output reg [3:0] y);
  integer i;
  always @(*) begin
    for (i = 0; i < 4; i = i + 1)
      y[i] = a[3 - i];
  end
endmodule`
	sf, err := Parse("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	p1 := PrintFile(sf)
	sf2, err := Parse("t2.v", p1)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, p1)
	}
	if p2 := PrintFile(sf2); p2 != p1 {
		t.Errorf("for-loop print not a fixpoint")
	}
}
