package verilog

import (
	"strings"
	"testing"
	"time"
)

// fuzzSeeds are hand-picked inputs that exercise every parser
// production plus past crashers found by the fuzzer (kept inline so the
// corpus travels with the repository).
var fuzzSeeds = []string{
	"module m(input a, output y); assign y = a; endmodule",
	"module m(input [7:0] a, b, output [7:0] y); assign y = a + b; endmodule",
	"module m(input clk, d, output reg q); always @(posedge clk) q <= d; endmodule",
	`module m(input [3:0] s, output reg [1:0] y);
	  always @(*) case (s) 4'b0001: y = 0; 4'b001x: y = 1; default: y = 2; endcase
	endmodule`,
	"module m; wire w; and g(w, 1'b1, 1'b0); endmodule",
	"module top(input a); sub u(.x(a)); endmodule module sub(input x); endmodule",
	`module m(input a, output y);
	  function f; input x; f = ~x; endfunction
	  assign y = f(a);
	endmodule`,
	"module m #(parameter W = 4) (input [W-1:0] a, output [W-1:0] y); assign y = ~a; endmodule",
	"module m(output y); assign y = 1'b1 ? 1'b0 : 1'bx; endmodule",
	`module m(input clk, output reg [3:0] c);
	  integer i;
	  always @(posedge clk) begin for (i = 0; i < 4; i = i + 1) c[i] <= ~c[i]; end
	endmodule`,
	// Degenerate shapes the fuzzer is good at mutating toward.
	"module",
	"module m(",
	"module m; endmodule extra",
	"module m; assign = ; endmodule",
	"module m; wire [;:] w; endmodule",
	"module m; always @(posedge) ; endmodule",
	"'",
	"1'b",
	"/* unterminated",
	"\"unterminated string",
	"module m; wire w = 8'hzz; endmodule",
	"module \xff\xfe; endmodule",
}

// FuzzParse feeds arbitrary bytes to the Verilog frontend. The parser
// must either return an AST or a descriptive error — never panic and
// never hang (hand-written EDA frontends are notorious for crashing on
// generated inputs; see Vieira et al., "Bottom-Up Generation of Verilog
// Designs for Testing EDA Tools").
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, src string) {
		done := make(chan struct{})
		go func() {
			defer close(done)
			sf, err := Parse("fuzz.v", src)
			if err == nil && sf != nil {
				// A parsed AST must survive printing (the printer walks
				// every node the parser can produce).
				for _, m := range sf.Modules {
					_ = Print(m)
				}
			}
		}()
		select {
		case <-done:
		case <-time.After(10 * time.Second):
			t.Fatalf("parser hang on %d-byte input: %.80q", len(src), src)
		}
	})
}

// TestParseSeedsDoNotCrash replays the fuzz seed corpus as a plain test
// so the regressions are covered even when fuzzing is not enabled.
func TestParseSeedsDoNotCrash(t *testing.T) {
	for i, seed := range fuzzSeeds {
		sf, err := Parse("seed.v", seed)
		if err != nil {
			continue
		}
		for _, m := range sf.Modules {
			if out := Print(m); !strings.Contains(out, "module") {
				t.Errorf("seed %d: printed module lost its header", i)
			}
		}
	}
}
