package verilog

import (
	"context"
	"fmt"
	"strings"

	"factor/internal/telemetry"
)

// Parser parses Verilog source into an AST. It is a hand-written
// recursive-descent parser over the token stream produced by Lexer.
type Parser struct {
	toks []Token
	pos  int
	file string
}

// ParseError is a syntax error with source position.
type ParseError struct {
	Pos Pos
	Msg string
}

func (e *ParseError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

// Parse parses a whole source file.
func Parse(file, src string) (*SourceFile, error) {
	return ParseContext(context.Background(), file, src)
}

// ParseContext is Parse with observability: when ctx carries a
// telemetry handle it records a "parse" span for the file and the
// deterministic parse.tokens / parse.modules counters.
func ParseContext(ctx context.Context, file, src string) (*SourceFile, error) {
	tel := telemetry.FromContext(ctx)
	sp := tel.StartSpan("parse").WithArg("file", file)
	defer sp.End()
	toks, err := Tokenize(file, src)
	if err != nil {
		return nil, err
	}
	tel.AddCounter("parse.tokens", uint64(len(toks)))
	p := &Parser{toks: toks, file: file}
	sf := &SourceFile{}
	for !p.atEOF() {
		m, err := p.parseModule()
		if err != nil {
			return nil, err
		}
		sf.Modules = append(sf.Modules, m)
	}
	tel.AddCounter("parse.modules", uint64(len(sf.Modules)))
	return sf, nil
}

// ParseFiles parses several sources into a single SourceFile, checking
// for duplicate module names.
func ParseFiles(sources map[string]string) (*SourceFile, error) {
	return ParseFilesContext(context.Background(), sources)
}

// ParseFilesContext is ParseFiles threading the context's telemetry
// handle into every per-file parse.
func ParseFilesContext(ctx context.Context, sources map[string]string) (*SourceFile, error) {
	merged := &SourceFile{}
	seen := map[string]string{}
	// Deterministic order.
	var names []string
	for name := range sources {
		names = append(names, name)
	}
	sortStrings(names)
	for _, name := range names {
		sf, err := ParseContext(ctx, name, sources[name])
		if err != nil {
			return nil, err
		}
		for _, m := range sf.Modules {
			if prev, dup := seen[m.Name]; dup {
				return nil, fmt.Errorf("module %s defined in both %s and %s", m.Name, prev, name)
			}
			seen[m.Name] = name
			merged.Modules = append(merged.Modules, m)
		}
	}
	return merged, nil
}

func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (p *Parser) atEOF() bool { return p.pos >= len(p.toks) }

func (p *Parser) cur() Token {
	if p.atEOF() {
		last := Pos{File: p.file}
		if len(p.toks) > 0 {
			last = p.toks[len(p.toks)-1].Pos
		}
		return Token{Kind: TokEOF, Pos: last}
	}
	return p.toks[p.pos]
}

func (p *Parser) peekTok(n int) Token {
	if p.pos+n >= len(p.toks) {
		return Token{Kind: TokEOF}
	}
	return p.toks[p.pos+n]
}

func (p *Parser) next() Token {
	t := p.cur()
	p.pos++
	return t
}

func (p *Parser) errf(format string, args ...interface{}) error {
	return &ParseError{Pos: p.cur().Pos, Msg: fmt.Sprintf(format, args...)}
}

func (p *Parser) expect(k TokenKind) (Token, error) {
	t := p.cur()
	if t.Kind != k {
		return t, p.errf("expected %s, found %s", k, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) expectKeyword(kw string) (Token, error) {
	t := p.cur()
	if t.Kind != TokKeyword || t.Text != kw {
		return t, p.errf("expected %q, found %s", kw, t)
	}
	p.pos++
	return t, nil
}

func (p *Parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.Kind == TokKeyword && t.Text == kw
}

func (p *Parser) accept(k TokenKind) bool {
	if p.cur().Kind == k {
		p.pos++
		return true
	}
	return false
}

func (p *Parser) acceptKeyword(kw string) bool {
	if p.atKeyword(kw) {
		p.pos++
		return true
	}
	return false
}

// ---------------------------------------------------------------------------
// Module

func (p *Parser) parseModule() (*Module, error) {
	start, err := p.expectKeyword("module")
	if err != nil {
		return nil, err
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	m := &Module{Name: nameTok.Text, Pos: start.Pos}

	// Optional parameter port list: #(parameter N = 8, ...)
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			pd, err := p.parseParamDecl(false, false)
			if err != nil {
				return nil, err
			}
			m.Items = append(m.Items, pd)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}

	// Port list. Two styles: ANSI (directions in header) and non-ANSI
	// (names only, directions declared in body).
	if p.accept(TokLParen) {
		if !p.accept(TokRParen) {
			if err := p.parsePortList(m); err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}

	for !p.atKeyword("endmodule") {
		if p.atEOF() {
			return nil, p.errf("unexpected EOF inside module %s", m.Name)
		}
		items, err := p.parseModuleItem(m)
		if err != nil {
			return nil, err
		}
		m.Items = append(m.Items, items...)
	}
	p.next() // endmodule
	return m, nil
}

func (p *Parser) parsePortList(m *Module) error {
	// Detect ANSI style: first token is a direction keyword.
	ansi := p.atKeyword("input") || p.atKeyword("output") || p.atKeyword("inout")
	if !ansi {
		for {
			t, err := p.expect(TokIdent)
			if err != nil {
				return err
			}
			m.Ports = append(m.Ports, &Port{Name: t.Text, Pos: t.Pos, Dir: PortInput})
			if !p.accept(TokComma) {
				return nil
			}
		}
	}
	// ANSI: direction [reg] [range] name (, name)* (, direction ...)*
	dir := PortInput
	isReg := false
	var width *Range
	first := true
	for {
		switch {
		case p.atKeyword("input"):
			p.next()
			dir, isReg, width = PortInput, false, nil
		case p.atKeyword("output"):
			p.next()
			dir, isReg, width = PortOutput, false, nil
		case p.atKeyword("inout"):
			p.next()
			dir, isReg, width = PortInout, false, nil
		default:
			if first {
				return p.errf("expected port direction")
			}
		}
		first = false
		if p.acceptKeyword("reg") {
			isReg = true
		}
		p.acceptKeyword("wire")
		p.acceptKeyword("signed")
		if p.cur().Kind == TokLBracket {
			r, err := p.parseRange()
			if err != nil {
				return err
			}
			width = r
		}
		t, err := p.expect(TokIdent)
		if err != nil {
			return err
		}
		m.Ports = append(m.Ports, &Port{Name: t.Text, Dir: dir, Width: width, IsReg: isReg, Pos: t.Pos})
		if !p.accept(TokComma) {
			return nil
		}
	}
}

func (p *Parser) parseRange() (*Range, error) {
	if _, err := p.expect(TokLBracket); err != nil {
		return nil, err
	}
	msb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokColon); err != nil {
		return nil, err
	}
	lsb, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRBracket); err != nil {
		return nil, err
	}
	return &Range{MSB: msb, LSB: lsb}, nil
}

// parseModuleItem parses one body item; it may expand to several AST
// items (e.g. a non-ANSI port direction declaration updates ports and
// yields a NetDecl, a decl with initializer yields decl+assign).
func (p *Parser) parseModuleItem(m *Module) ([]Item, error) {
	t := p.cur()
	switch {
	case t.Kind == TokKeyword:
		switch t.Text {
		case "parameter", "localparam":
			pd, err := p.parseParamDecl(t.Text == "localparam", true)
			if err != nil {
				return nil, err
			}
			return []Item{pd}, nil
		case "input", "output", "inout":
			return p.parseDirectionDecl(m)
		case "wire", "reg", "integer", "supply0", "supply1":
			return p.parseNetDecl()
		case "assign":
			return p.parseContinuousAssign()
		case "always":
			a, err := p.parseAlways()
			if err != nil {
				return nil, err
			}
			return []Item{a}, nil
		case "initial":
			p.next()
			body, err := p.parseStmt()
			if err != nil {
				return nil, err
			}
			return []Item{&InitialBlock{Body: body, Pos: t.Pos}}, nil
		case "function":
			f, err := p.parseFunction()
			if err != nil {
				return nil, err
			}
			return []Item{f}, nil
		case "genvar":
			// genvar declarations: skip to semicolon.
			for p.cur().Kind != TokSemi && !p.atEOF() {
				p.next()
			}
			p.next()
			return nil, nil
		default:
			if IsGatePrimitive(t.Text) {
				return p.parseGateInsts()
			}
			return nil, p.errf("unsupported module item keyword %q", t.Text)
		}
	case t.Kind == TokIdent:
		inst, err := p.parseInstance()
		if err != nil {
			return nil, err
		}
		return inst, nil
	case t.Kind == TokSemi:
		p.next()
		return nil, nil
	}
	return nil, p.errf("unexpected token %s in module body", t)
}

func (p *Parser) parseParamDecl(local, allowMulti bool) (*ParamDecl, error) {
	t := p.cur()
	pd := &ParamDecl{Local: local, Pos: t.Pos}
	if t.Kind == TokKeyword && (t.Text == "parameter" || t.Text == "localparam") {
		p.next()
	}
	p.acceptKeyword("signed")
	p.acceptKeyword("integer")
	if p.cur().Kind == TokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		pd.Width = r
	}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokEquals); err != nil {
			return nil, err
		}
		val, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		pd.Names = append(pd.Names, name.Text)
		pd.Values = append(pd.Values, val)
		if !allowMulti {
			return pd, nil
		}
		if p.accept(TokComma) {
			continue
		}
		break
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return pd, nil
}

// parseDirectionDecl handles non-ANSI "input [7:0] a, b;" items. It
// updates the module's port table and also emits a NetDecl so the
// signal exists as a net.
func (p *Parser) parseDirectionDecl(m *Module) ([]Item, error) {
	t := p.next()
	dir := PortInput
	switch t.Text {
	case "output":
		dir = PortOutput
	case "inout":
		dir = PortInout
	}
	kind := NetWire
	isReg := false
	if p.acceptKeyword("reg") {
		kind = NetReg
		isReg = true
	}
	p.acceptKeyword("wire")
	p.acceptKeyword("signed")
	var width *Range
	if p.cur().Kind == TokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		width = r
	}
	nd := &NetDecl{Kind: kind, Width: width, Pos: t.Pos}
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		nd.Names = append(nd.Names, name.Text)
		if port := m.Port(name.Text); port != nil {
			port.Dir = dir
			port.Width = width
			port.IsReg = isReg
		} else {
			m.Ports = append(m.Ports, &Port{Name: name.Text, Dir: dir, Width: width, IsReg: isReg, Pos: name.Pos})
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return []Item{nd}, nil
}

func (p *Parser) parseNetDecl() ([]Item, error) {
	t := p.next()
	var kind NetKind
	switch t.Text {
	case "wire":
		kind = NetWire
	case "reg":
		kind = NetReg
	case "integer":
		kind = NetInteger
	case "supply0":
		kind = NetSupply0
	case "supply1":
		kind = NetSupply1
	}
	p.acceptKeyword("signed")
	var width *Range
	if p.cur().Kind == TokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		width = r
	}
	nd := &NetDecl{Kind: kind, Width: width, Pos: t.Pos}
	var items []Item
	for {
		name, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		// Memory declarations (reg [7:0] mem [0:15]) are rejected:
		// the FACTOR subset models register files structurally.
		if p.cur().Kind == TokLBracket {
			return nil, p.errf("memory (array) declarations are not supported; model %s structurally", name.Text)
		}
		nd.Names = append(nd.Names, name.Text)
		if p.accept(TokEquals) {
			rhs, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			items = append(items, &AssignItem{LHS: &Ident{Name: name.Text, Pos: name.Pos}, RHS: rhs, Pos: name.Pos})
		}
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return append([]Item{nd}, items...), nil
}

func (p *Parser) parseContinuousAssign() ([]Item, error) {
	p.next() // assign
	// Optional drive strength / delay are not supported; a # delay is
	// skipped.
	if p.accept(TokHash) {
		if _, err := p.expect(TokNumber); err != nil {
			return nil, err
		}
	}
	var items []Item
	for {
		lhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		eq, err := p.expect(TokEquals)
		if err != nil {
			return nil, err
		}
		rhs, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		items = append(items, &AssignItem{LHS: lhs, RHS: rhs, Pos: eq.Pos})
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *Parser) parseAlways() (*AlwaysBlock, error) {
	t := p.next() // always
	a := &AlwaysBlock{Pos: t.Pos}
	if _, err := p.expect(TokAt); err != nil {
		return nil, err
	}
	if p.accept(TokStar) { // always @* form
		a.Sens.Star = true
	} else {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		if p.accept(TokStar) {
			a.Sens.Star = true
		} else {
			for {
				item := SensItem{}
				if p.acceptKeyword("posedge") {
					item.Edge = EdgePos
				} else if p.acceptKeyword("negedge") {
					item.Edge = EdgeNeg
				}
				sig, err := p.parsePrimary()
				if err != nil {
					return nil, err
				}
				item.Signal = sig
				a.Sens.Items = append(a.Sens.Items, item)
				if p.acceptKeyword("or") || p.accept(TokComma) {
					continue
				}
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	a.Body = body
	return a, nil
}

func (p *Parser) parseFunction() (*FunctionDecl, error) {
	t := p.next() // function
	f := &FunctionDecl{Pos: t.Pos}
	p.acceptKeyword("signed")
	if p.cur().Kind == TokLBracket {
		r, err := p.parseRange()
		if err != nil {
			return nil, err
		}
		f.Width = r
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	f.Name = name.Text
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	// Input declarations, then a single statement (commonly a block).
	for {
		if p.atKeyword("input") {
			p.next()
			var width *Range
			p.acceptKeyword("signed")
			if p.cur().Kind == TokLBracket {
				r, err := p.parseRange()
				if err != nil {
					return nil, err
				}
				width = r
			}
			for {
				n, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				f.Inputs = append(f.Inputs, &Port{Name: n.Text, Dir: PortInput, Width: width, Pos: n.Pos})
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokSemi); err != nil {
				return nil, err
			}
			continue
		}
		if p.atKeyword("reg") || p.atKeyword("integer") {
			items, err := p.parseNetDecl()
			if err != nil {
				return nil, err
			}
			for _, it := range items {
				if nd, ok := it.(*NetDecl); ok {
					f.Locals = append(f.Locals, nd)
				}
			}
			continue
		}
		break
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	f.Body = body
	if _, err := p.expectKeyword("endfunction"); err != nil {
		return nil, err
	}
	return f, nil
}

// parseGateInsts parses one or more gate primitive instances sharing a
// gate type: and g1(y, a, b), g2(z, c, d);
func (p *Parser) parseGateInsts() ([]Item, error) {
	t := p.next()
	kind := t.Text
	var items []Item
	for {
		g := &GateInst{Kind: kind, Pos: t.Pos}
		if p.cur().Kind == TokIdent {
			g.Name = p.next().Text
		}
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			g.Args = append(g.Args, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		if len(g.Args) < 2 {
			return nil, p.errf("gate %s needs at least an output and one input", kind)
		}
		items = append(items, g)
		if !p.accept(TokComma) {
			break
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return items, nil
}

func (p *Parser) parseInstance() ([]Item, error) {
	modTok := p.next()
	inst := &Instance{ModuleName: modTok.Text, Pos: modTok.Pos}
	if p.accept(TokHash) {
		if _, err := p.expect(TokLParen); err != nil {
			return nil, err
		}
		for {
			pa := ParamAssign{}
			if p.accept(TokDot) {
				n, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				pa.Name = n.Text
				if _, err := p.expect(TokLParen); err != nil {
					return nil, err
				}
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				pa.Value = v
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			} else {
				v, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				pa.Value = v
			}
			inst.Params = append(inst.Params, pa)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	inst.Name = nameTok.Text
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	if !p.accept(TokRParen) {
		for {
			pc := PortConn{}
			if p.accept(TokDot) {
				n, err := p.expect(TokIdent)
				if err != nil {
					return nil, err
				}
				pc.Port = n.Text
				if _, err := p.expect(TokLParen); err != nil {
					return nil, err
				}
				if p.cur().Kind != TokRParen {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					pc.Expr = e
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			} else {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				pc.Expr = e
			}
			inst.Conns = append(inst.Conns, pc)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return []Item{inst}, nil
}

// ---------------------------------------------------------------------------
// Statements

func (p *Parser) parseStmt() (Stmt, error) {
	t := p.cur()
	switch {
	case t.Kind == TokSemi:
		p.next()
		return &NullStmt{Pos: t.Pos}, nil
	case t.Kind == TokKeyword:
		switch t.Text {
		case "begin":
			return p.parseBlock()
		case "if":
			return p.parseIf()
		case "case", "casez", "casex":
			return p.parseCase()
		case "for":
			return p.parseFor()
		case "while":
			return p.parseWhile()
		}
		return nil, p.errf("unsupported statement keyword %q", t.Text)
	case t.Kind == TokSystemIdent:
		return p.parseSysCall()
	case t.Kind == TokIdent || t.Kind == TokLBrace:
		return p.parseAssignStmt(true)
	case t.Kind == TokAt:
		return nil, p.errf("intra-statement event controls are not supported")
	case t.Kind == TokHash:
		// #delay stmt — skip the delay.
		p.next()
		if _, err := p.expect(TokNumber); err != nil {
			return nil, err
		}
		return p.parseStmt()
	}
	return nil, p.errf("unexpected token %s at start of statement", t)
}

func (p *Parser) parseBlock() (Stmt, error) {
	t := p.next() // begin
	b := &Block{Pos: t.Pos}
	if p.accept(TokColon) {
		n, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		b.Label = n.Text
	}
	for !p.atKeyword("end") {
		if p.atEOF() {
			return nil, p.errf("unexpected EOF inside begin/end block")
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	p.next() // end
	return b, nil
}

func (p *Parser) parseIf() (Stmt, error) {
	t := p.next() // if
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	then, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	s := &IfStmt{Cond: cond, Then: then, Pos: t.Pos}
	if p.acceptKeyword("else") {
		els, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		s.Else = els
	}
	return s, nil
}

func (p *Parser) parseCase() (Stmt, error) {
	t := p.next()
	kind := CaseExact
	switch t.Text {
	case "casez":
		kind = CaseZ
	case "casex":
		kind = CaseX
	}
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	subj, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	cs := &CaseStmt{Kind: kind, Subject: subj, Pos: t.Pos}
	for !p.atKeyword("endcase") {
		if p.atEOF() {
			return nil, p.errf("unexpected EOF inside case statement")
		}
		item := CaseItem{}
		if p.acceptKeyword("default") {
			p.accept(TokColon)
		} else {
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				item.Exprs = append(item.Exprs, e)
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokColon); err != nil {
				return nil, err
			}
		}
		body, err := p.parseStmt()
		if err != nil {
			return nil, err
		}
		item.Body = body
		cs.Items = append(cs.Items, item)
	}
	p.next() // endcase
	return cs, nil
}

func (p *Parser) parseFor() (Stmt, error) {
	t := p.next() // for
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	initStmt, err := p.parseAssignNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	step, err := p.parseAssignNoSemi()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &ForStmt{Init: initStmt, Cond: cond, Step: step, Body: body, Pos: t.Pos}, nil
}

func (p *Parser) parseWhile() (Stmt, error) {
	t := p.next() // while
	if _, err := p.expect(TokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	body, err := p.parseStmt()
	if err != nil {
		return nil, err
	}
	return &WhileStmt{Cond: cond, Body: body, Pos: t.Pos}, nil
}

// parseLValue parses an assignment target: an identifier with optional
// bit/part selects, or a concatenation of lvalues. Using the general
// expression parser here would mis-read "q <= d" as a comparison.
func (p *Parser) parseLValue() (Expr, error) {
	if p.cur().Kind == TokLBrace {
		lb := p.next()
		c := &ConcatExpr{Pos: lb.Pos}
		for {
			e, err := p.parseLValue()
			if err != nil {
				return nil, err
			}
			c.Parts = append(c.Parts, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		return c, nil
	}
	t, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	var e Expr = &Ident{Name: t.Text, Pos: t.Pos}
	for p.cur().Kind == TokLBracket {
		lb := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokColon) {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &RangeExpr{X: e, MSB: first, LSB: lsb, Pos: lb.Pos}
		} else {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{X: e, Index: first, Pos: lb.Pos}
		}
	}
	return e, nil
}

func (p *Parser) parseAssignNoSemi() (*AssignStmt, error) {
	lhs, err := p.parseLValue()
	if err != nil {
		return nil, err
	}
	blocking := true
	switch p.cur().Kind {
	case TokEquals:
		p.next()
	case TokLessEq:
		blocking = false
		p.next()
	default:
		return nil, p.errf("expected = or <= in assignment, found %s", p.cur())
	}
	rhs, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &AssignStmt{LHS: lhs, RHS: rhs, Blocking: blocking, Pos: lhs.ExprPos()}, nil
}

func (p *Parser) parseAssignStmt(withSemi bool) (Stmt, error) {
	s, err := p.parseAssignNoSemi()
	if err != nil {
		return nil, err
	}
	if withSemi {
		if _, err := p.expect(TokSemi); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (p *Parser) parseSysCall() (Stmt, error) {
	t := p.next()
	s := &SysCallStmt{Name: t.Text, Pos: t.Pos}
	if p.accept(TokLParen) {
		if !p.accept(TokRParen) {
			for {
				if p.cur().Kind == TokString {
					str := p.next()
					s.Args = append(s.Args, &Ident{Name: "\"" + str.Text + "\"", Pos: str.Pos})
				} else {
					e, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					s.Args = append(s.Args, e)
				}
				if !p.accept(TokComma) {
					break
				}
			}
			if _, err := p.expect(TokRParen); err != nil {
				return nil, err
			}
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return nil, err
	}
	return s, nil
}

// ---------------------------------------------------------------------------
// Expressions (precedence climbing)

// binPrec maps binary operator tokens to (precedence, op). Higher
// precedence binds tighter.
func binPrec(t Token) (int, BinaryOp, bool) {
	switch t.Kind {
	case TokStar:
		return 11, BinMul, true
	case TokSlash:
		return 11, BinDiv, true
	case TokPercent:
		return 11, BinMod, true
	case TokPlus:
		return 10, BinAdd, true
	case TokMinus:
		return 10, BinSub, true
	case TokShiftLeft:
		return 9, BinShl, true
	case TokShiftRight:
		return 9, BinShr, true
	case TokShiftRight3:
		return 9, BinAShr, true
	case TokShiftLeft3:
		return 9, BinShl, true
	case TokLess:
		return 8, BinLt, true
	case TokLessEq:
		return 8, BinLe, true
	case TokGreater:
		return 8, BinGt, true
	case TokGreaterEq:
		return 8, BinGe, true
	case TokEqEq:
		return 7, BinEq, true
	case TokBangEq:
		return 7, BinNeq, true
	case TokEqEqEq:
		return 7, BinCaseEq, true
	case TokBangEqEq:
		return 7, BinCaseNe, true
	case TokAmp:
		return 6, BinAnd, true
	case TokCaret:
		return 5, BinXor, true
	case TokTildeCaret:
		return 5, BinXnor, true
	case TokPipe:
		return 4, BinOr, true
	case TokAmpAmp:
		return 3, BinLogAnd, true
	case TokPipeBar:
		return 2, BinLogOr, true
	}
	return 0, 0, false
}

func (p *Parser) parseExpr() (Expr, error) {
	return p.parseTernary()
}

func (p *Parser) parseTernary() (Expr, error) {
	cond, err := p.parseBinary(1)
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokQuestion {
		q := p.next()
		thenE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokColon); err != nil {
			return nil, err
		}
		elseE, err := p.parseTernary()
		if err != nil {
			return nil, err
		}
		return &CondExpr{Cond: cond, Then: thenE, Else: elseE, Pos: q.Pos}, nil
	}
	return cond, nil
}

func (p *Parser) parseBinary(minPrec int) (Expr, error) {
	lhs, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		prec, op, ok := binPrec(p.cur())
		if !ok || prec < minPrec {
			return lhs, nil
		}
		opTok := p.next()
		rhs, err := p.parseBinary(prec + 1)
		if err != nil {
			return nil, err
		}
		lhs = &BinaryExpr{Op: op, X: lhs, Y: rhs, Pos: opTok.Pos}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	t := p.cur()
	var op UnaryOp
	switch t.Kind {
	case TokPlus:
		op = UnaryPlus
	case TokMinus:
		op = UnaryMinus
	case TokBang:
		op = UnaryNot
	case TokTilde:
		op = UnaryBitNot
	case TokAmp:
		op = UnaryAnd
	case TokTildeAmp:
		op = UnaryNand
	case TokPipe:
		op = UnaryOr
	case TokTildePipe:
		op = UnaryNor
	case TokCaret:
		op = UnaryXor
	case TokTildeCaret:
		op = UnaryXnor
	default:
		return p.parsePostfix()
	}
	p.next()
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	return &UnaryExpr{Op: op, X: x, Pos: t.Pos}, nil
}

func (p *Parser) parsePostfix() (Expr, error) {
	e, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().Kind == TokLBracket {
		lb := p.next()
		first, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if p.accept(TokColon) {
			lsb, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &RangeExpr{X: e, MSB: first, LSB: lsb, Pos: lb.Pos}
		} else {
			if _, err := p.expect(TokRBracket); err != nil {
				return nil, err
			}
			e = &IndexExpr{X: e, Index: first, Pos: lb.Pos}
		}
	}
	return e, nil
}

func (p *Parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch t.Kind {
	case TokIdent:
		p.next()
		if p.cur().Kind == TokLParen {
			// Function call.
			p.next()
			call := &CallExpr{Name: t.Text, Pos: t.Pos}
			if !p.accept(TokRParen) {
				for {
					a, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					call.Args = append(call.Args, a)
					if !p.accept(TokComma) {
						break
					}
				}
				if _, err := p.expect(TokRParen); err != nil {
					return nil, err
				}
			}
			return call, nil
		}
		return &Ident{Name: t.Text, Pos: t.Pos}, nil
	case TokNumber:
		p.next()
		return ParseNumber(t.Text, t.Pos)
	case TokLParen:
		p.next()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokLBrace:
		return p.parseConcat()
	}
	return nil, p.errf("unexpected token %s in expression", t)
}

// parseConcat parses {a, b} and replication {n{a}}.
func (p *Parser) parseConcat() (Expr, error) {
	lb := p.next() // {
	first, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.cur().Kind == TokLBrace {
		// Replication: {count{expr, ...}}
		p.next()
		inner := &ConcatExpr{Pos: lb.Pos}
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			inner.Parts = append(inner.Parts, e)
			if !p.accept(TokComma) {
				break
			}
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRBrace); err != nil {
			return nil, err
		}
		var body Expr = inner
		if len(inner.Parts) == 1 {
			body = inner.Parts[0]
		}
		return &ReplExpr{Count: first, X: body, Pos: lb.Pos}, nil
	}
	c := &ConcatExpr{Parts: []Expr{first}, Pos: lb.Pos}
	for p.accept(TokComma) {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Parts = append(c.Parts, e)
	}
	if _, err := p.expect(TokRBrace); err != nil {
		return nil, err
	}
	return c, nil
}

// MustParse parses src and panics on error; intended for tests and
// embedded benchmark sources that are known-good.
func MustParse(file, src string) *SourceFile {
	sf, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("verilog.MustParse(%s): %v", file, err))
	}
	return sf
}

// DescribeExpr renders a compact single-line description of an
// expression, used in testability traces.
func DescribeExpr(e Expr) string {
	var sb strings.Builder
	writeExpr(&sb, e)
	return sb.String()
}
