package verilog

import (
	"fmt"
	"strconv"
	"strings"
)

// SourceFile is a parsed Verilog source unit: a list of module
// definitions.
type SourceFile struct {
	Modules []*Module
}

// Module finds the module with the given name, or nil.
func (f *SourceFile) Module(name string) *Module {
	for _, m := range f.Modules {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Module is one Verilog module definition.
type Module struct {
	Name  string
	Pos   Pos
	Ports []*Port // in header order
	Items []Item  // body items in source order
}

// Port looks up a port by name, or returns nil.
func (m *Module) Port(name string) *Port {
	for _, p := range m.Ports {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Params returns the parameter declarations of the module in order.
func (m *Module) Params() []*ParamDecl {
	var out []*ParamDecl
	for _, it := range m.Items {
		if p, ok := it.(*ParamDecl); ok {
			out = append(out, p)
		}
	}
	return out
}

// Instances returns the module instantiations in the body, in order.
func (m *Module) Instances() []*Instance {
	var out []*Instance
	for _, it := range m.Items {
		if inst, ok := it.(*Instance); ok {
			out = append(out, inst)
		}
	}
	return out
}

// PortDir is the direction of a module port.
type PortDir int

// Port directions.
const (
	PortInput PortDir = iota
	PortOutput
	PortInout
)

func (d PortDir) String() string {
	switch d {
	case PortInput:
		return "input"
	case PortOutput:
		return "output"
	case PortInout:
		return "inout"
	}
	return fmt.Sprintf("PortDir(%d)", int(d))
}

// Port is a module port. Width nil means a scalar port.
type Port struct {
	Name  string
	Dir   PortDir
	Width *Range
	IsReg bool // "output reg"
	Pos   Pos
}

// Range is a bit range [MSB:LSB]; both bounds are constant expressions.
type Range struct {
	MSB Expr
	LSB Expr
}

// Item is a module body item.
type Item interface {
	itemNode()
	ItemPos() Pos
}

// ParamDecl declares one or more parameters or localparams.
type ParamDecl struct {
	Local  bool
	Width  *Range
	Names  []string
	Values []Expr
	Pos    Pos
}

// NetKind is the kind of declared signal.
type NetKind int

// Net kinds.
const (
	NetWire NetKind = iota
	NetReg
	NetInteger
	NetSupply0
	NetSupply1
)

func (k NetKind) String() string {
	switch k {
	case NetWire:
		return "wire"
	case NetReg:
		return "reg"
	case NetInteger:
		return "integer"
	case NetSupply0:
		return "supply0"
	case NetSupply1:
		return "supply1"
	}
	return fmt.Sprintf("NetKind(%d)", int(k))
}

// NetDecl declares one or more wires/regs. If a declared name carries
// an initializer in source ("wire x = a & b;") the parser splits it
// into a NetDecl plus an AssignItem.
type NetDecl struct {
	Kind  NetKind
	Width *Range
	Names []string
	Pos   Pos
}

// AssignItem is a continuous assignment: assign LHS = RHS;
type AssignItem struct {
	LHS Expr
	RHS Expr
	Pos Pos
}

// AlwaysBlock is an always process with its sensitivity list.
type AlwaysBlock struct {
	Sens SensList
	Body Stmt
	Pos  Pos
}

// Clocked reports whether the block has an edge-triggered sensitivity.
func (a *AlwaysBlock) Clocked() bool {
	for _, it := range a.Sens.Items {
		if it.Edge != EdgeNone {
			return true
		}
	}
	return false
}

// InitialBlock is an initial process (accepted, ignored by synthesis).
type InitialBlock struct {
	Body Stmt
	Pos  Pos
}

// SensList is a sensitivity list: @(*) or @(a or posedge clk or ...).
type SensList struct {
	Star  bool
	Items []SensItem
}

// Edge is the edge qualifier on a sensitivity item.
type Edge int

// Edge kinds.
const (
	EdgeNone Edge = iota
	EdgePos
	EdgeNeg
)

// SensItem is one entry of a sensitivity list.
type SensItem struct {
	Edge   Edge
	Signal Expr
}

// Instance is a module instantiation.
type Instance struct {
	ModuleName string
	Name       string
	Params     []ParamAssign // #(...) overrides
	Conns      []PortConn
	Pos        Pos
}

// Conn returns the expression connected to the named port, or nil.
func (i *Instance) Conn(port string) Expr {
	for _, c := range i.Conns {
		if c.Port == port {
			return c.Expr
		}
	}
	return nil
}

// ParamAssign is a parameter override in an instantiation.
type ParamAssign struct {
	Name  string // empty for positional
	Value Expr
}

// PortConn is one port connection of an instance. Port is empty for
// positional connections; Expr is nil for explicitly unconnected ports
// (.p()).
type PortConn struct {
	Port string
	Expr Expr
}

// GateInst is a built-in gate primitive instance: and g1(y, a, b);
// The first argument is the output.
type GateInst struct {
	Kind string // and, or, nand, nor, xor, xnor, not, buf
	Name string // optional instance name
	Args []Expr
	Pos  Pos
}

// FunctionDecl is a function definition. Functions are supported in
// their common synthesizable form: a single return value assigned to
// the function name, input arguments, and a statement body.
type FunctionDecl struct {
	Name   string
	Width  *Range // return width, nil = 1 bit
	Inputs []*Port
	Locals []*NetDecl
	Body   Stmt
	Pos    Pos
}

func (*ParamDecl) itemNode()    {}
func (*NetDecl) itemNode()      {}
func (*AssignItem) itemNode()   {}
func (*AlwaysBlock) itemNode()  {}
func (*InitialBlock) itemNode() {}
func (*Instance) itemNode()     {}
func (*GateInst) itemNode()     {}
func (*FunctionDecl) itemNode() {}

// ItemPos implements Item.
func (p *ParamDecl) ItemPos() Pos    { return p.Pos }
func (n *NetDecl) ItemPos() Pos      { return n.Pos }
func (a *AssignItem) ItemPos() Pos   { return a.Pos }
func (a *AlwaysBlock) ItemPos() Pos  { return a.Pos }
func (i *InitialBlock) ItemPos() Pos { return i.Pos }
func (i *Instance) ItemPos() Pos     { return i.Pos }
func (g *GateInst) ItemPos() Pos     { return g.Pos }
func (f *FunctionDecl) ItemPos() Pos { return f.Pos }

// Stmt is a behavioral statement.
type Stmt interface {
	stmtNode()
	StmtPos() Pos
}

// Block is a begin/end statement group.
type Block struct {
	Label string
	Stmts []Stmt
	Pos   Pos
}

// IfStmt is if (Cond) Then else Else; Else may be nil.
type IfStmt struct {
	Cond Expr
	Then Stmt
	Else Stmt
	Pos  Pos
}

// CaseKind distinguishes case/casez/casex.
type CaseKind int

// Case kinds.
const (
	CaseExact CaseKind = iota // case
	CaseZ                     // casez
	CaseX                     // casex
)

func (k CaseKind) String() string {
	switch k {
	case CaseExact:
		return "case"
	case CaseZ:
		return "casez"
	case CaseX:
		return "casex"
	}
	return fmt.Sprintf("CaseKind(%d)", int(k))
}

// CaseStmt is a case statement.
type CaseStmt struct {
	Kind    CaseKind
	Subject Expr
	Items   []CaseItem
	Pos     Pos
}

// CaseItem is one arm of a case statement. A default arm has no
// match expressions.
type CaseItem struct {
	Exprs []Expr // empty => default
	Body  Stmt
}

// ForStmt is a for loop: for (Init; Cond; Step) Body. Init and Step
// are blocking assignments.
type ForStmt struct {
	Init *AssignStmt
	Cond Expr
	Step *AssignStmt
	Body Stmt
	Pos  Pos
}

// WhileStmt is a while loop.
type WhileStmt struct {
	Cond Expr
	Body Stmt
	Pos  Pos
}

// AssignStmt is a procedural assignment, blocking (=) or
// nonblocking (<=).
type AssignStmt struct {
	LHS      Expr
	RHS      Expr
	Blocking bool
	Pos      Pos
}

// NullStmt is a lone semicolon.
type NullStmt struct {
	Pos Pos
}

// SysCallStmt is a system task call such as $display(...). Parsed and
// ignored by synthesis.
type SysCallStmt struct {
	Name string
	Args []Expr
	Pos  Pos
}

func (*Block) stmtNode()       {}
func (*IfStmt) stmtNode()      {}
func (*CaseStmt) stmtNode()    {}
func (*ForStmt) stmtNode()     {}
func (*WhileStmt) stmtNode()   {}
func (*AssignStmt) stmtNode()  {}
func (*NullStmt) stmtNode()    {}
func (*SysCallStmt) stmtNode() {}

// StmtPos implements Stmt.
func (b *Block) StmtPos() Pos       { return b.Pos }
func (s *IfStmt) StmtPos() Pos      { return s.Pos }
func (s *CaseStmt) StmtPos() Pos    { return s.Pos }
func (s *ForStmt) StmtPos() Pos     { return s.Pos }
func (s *WhileStmt) StmtPos() Pos   { return s.Pos }
func (s *AssignStmt) StmtPos() Pos  { return s.Pos }
func (s *NullStmt) StmtPos() Pos    { return s.Pos }
func (s *SysCallStmt) StmtPos() Pos { return s.Pos }

// Expr is an expression.
type Expr interface {
	exprNode()
	ExprPos() Pos
}

// Ident is a reference to a named signal, parameter or genvar.
type Ident struct {
	Name string
	Pos  Pos
}

// Number is a literal. Width 0 means unsized. XMask/ZMask mark bits
// that are x or z in the literal; Value holds the 0/1 bits.
type Number struct {
	Width  int
	Sized  bool
	Value  uint64
	XMask  uint64
	ZMask  uint64
	Signed bool
	Text   string // original text for printing
	Pos    Pos
}

// HasXZ reports whether the literal contains x or z bits.
func (n *Number) HasXZ() bool { return n.XMask != 0 || n.ZMask != 0 }

// UnaryOp is the operator of a unary expression.
type UnaryOp int

// Unary operators.
const (
	UnaryPlus UnaryOp = iota
	UnaryMinus
	UnaryNot    // !
	UnaryBitNot // ~
	UnaryAnd    // & (reduction)
	UnaryNand   // ~&
	UnaryOr     // |
	UnaryNor    // ~|
	UnaryXor    // ^
	UnaryXnor   // ~^
)

var unaryOpNames = map[UnaryOp]string{
	UnaryPlus: "+", UnaryMinus: "-", UnaryNot: "!", UnaryBitNot: "~",
	UnaryAnd: "&", UnaryNand: "~&", UnaryOr: "|", UnaryNor: "~|",
	UnaryXor: "^", UnaryXnor: "~^",
}

func (op UnaryOp) String() string { return unaryOpNames[op] }

// UnaryExpr is op X.
type UnaryExpr struct {
	Op UnaryOp
	X  Expr
	Pos
}

// BinaryOp is the operator of a binary expression.
type BinaryOp int

// Binary operators.
const (
	BinAdd BinaryOp = iota
	BinSub
	BinMul
	BinDiv
	BinMod
	BinAnd    // &
	BinOr     // |
	BinXor    // ^
	BinXnor   // ~^
	BinLogAnd // &&
	BinLogOr  // ||
	BinEq     // ==
	BinNeq    // !=
	BinCaseEq // ===
	BinCaseNe // !==
	BinLt
	BinLe
	BinGt
	BinGe
	BinShl
	BinShr
	BinAShr // >>>
)

var binaryOpNames = map[BinaryOp]string{
	BinAdd: "+", BinSub: "-", BinMul: "*", BinDiv: "/", BinMod: "%",
	BinAnd: "&", BinOr: "|", BinXor: "^", BinXnor: "~^",
	BinLogAnd: "&&", BinLogOr: "||",
	BinEq: "==", BinNeq: "!=", BinCaseEq: "===", BinCaseNe: "!==",
	BinLt: "<", BinLe: "<=", BinGt: ">", BinGe: ">=",
	BinShl: "<<", BinShr: ">>", BinAShr: ">>>",
}

func (op BinaryOp) String() string { return binaryOpNames[op] }

// BinaryExpr is X op Y.
type BinaryExpr struct {
	Op BinaryOp
	X  Expr
	Y  Expr
	Pos
}

// CondExpr is Cond ? Then : Else.
type CondExpr struct {
	Cond Expr
	Then Expr
	Else Expr
	Pos
}

// IndexExpr is a bit select X[Index].
type IndexExpr struct {
	X     Expr
	Index Expr
	Pos
}

// RangeExpr is a part select X[MSB:LSB] with constant bounds.
type RangeExpr struct {
	X   Expr
	MSB Expr
	LSB Expr
	Pos
}

// ConcatExpr is {A, B, C}.
type ConcatExpr struct {
	Parts []Expr
	Pos
}

// ReplExpr is a replication {N{X}}.
type ReplExpr struct {
	Count Expr
	X     Expr
	Pos
}

// CallExpr is a function call f(args).
type CallExpr struct {
	Name string
	Args []Expr
	Pos
}

func (*Ident) exprNode()      {}
func (*Number) exprNode()     {}
func (*UnaryExpr) exprNode()  {}
func (*BinaryExpr) exprNode() {}
func (*CondExpr) exprNode()   {}
func (*IndexExpr) exprNode()  {}
func (*RangeExpr) exprNode()  {}
func (*ConcatExpr) exprNode() {}
func (*ReplExpr) exprNode()   {}
func (*CallExpr) exprNode()   {}

// ExprPos implements Expr.
func (e *Ident) ExprPos() Pos      { return e.Pos }
func (e *Number) ExprPos() Pos     { return e.Pos }
func (e *UnaryExpr) ExprPos() Pos  { return e.Pos }
func (e *BinaryExpr) ExprPos() Pos { return e.Pos }
func (e *CondExpr) ExprPos() Pos   { return e.Pos }
func (e *IndexExpr) ExprPos() Pos  { return e.Pos }
func (e *RangeExpr) ExprPos() Pos  { return e.Pos }
func (e *ConcatExpr) ExprPos() Pos { return e.Pos }
func (e *ReplExpr) ExprPos() Pos   { return e.Pos }
func (e *CallExpr) ExprPos() Pos   { return e.Pos }

// ParseNumber converts the raw text of a numeric literal to a Number.
func ParseNumber(text string, pos Pos) (*Number, error) {
	n := &Number{Text: text, Pos: pos}
	clean := strings.ReplaceAll(text, "_", "")
	tick := strings.IndexByte(clean, '\'')
	if tick < 0 {
		v, err := strconv.ParseUint(clean, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: invalid decimal literal %q", pos, text)
		}
		n.Value = v
		n.Width = 32
		return n, nil
	}
	if tick > 0 {
		w, err := strconv.Atoi(clean[:tick])
		if err != nil || w <= 0 || w > 64 {
			return nil, fmt.Errorf("%s: invalid literal width in %q (must be 1..64)", pos, text)
		}
		n.Width = w
		n.Sized = true
	} else {
		n.Width = 32
	}
	rest := clean[tick+1:]
	if rest == "" {
		return nil, fmt.Errorf("%s: malformed literal %q", pos, text)
	}
	if rest[0] == 's' || rest[0] == 'S' {
		n.Signed = true
		rest = rest[1:]
	}
	if rest == "" {
		return nil, fmt.Errorf("%s: malformed literal %q", pos, text)
	}
	base := rest[0]
	digits := rest[1:]
	var bitsPer int
	switch base {
	case 'b', 'B':
		bitsPer = 1
	case 'o', 'O':
		bitsPer = 3
	case 'h', 'H':
		bitsPer = 4
	case 'd', 'D':
		v, err := strconv.ParseUint(digits, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("%s: invalid decimal digits in %q", pos, text)
		}
		n.Value = v & widthMask(n.Width)
		return n, nil
	default:
		return nil, fmt.Errorf("%s: unsupported base %q in %q", pos, base, text)
	}
	var value, xm, zm uint64
	for i := 0; i < len(digits); i++ {
		c := digits[i]
		var dv uint64
		var dx, dz uint64
		switch {
		case c == 'x' || c == 'X':
			dx = (1 << bitsPer) - 1
		case c == 'z' || c == 'Z' || c == '?':
			dz = (1 << bitsPer) - 1
		case c >= '0' && c <= '9':
			dv = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			dv = uint64(c-'a') + 10
		case c >= 'A' && c <= 'F':
			dv = uint64(c-'A') + 10
		default:
			return nil, fmt.Errorf("%s: invalid digit %q in %q", pos, c, text)
		}
		if dv >= 1<<bitsPer {
			return nil, fmt.Errorf("%s: digit %q out of range for base in %q", pos, c, text)
		}
		value = value<<bitsPer | dv
		xm = xm<<bitsPer | dx
		zm = zm<<bitsPer | dz
	}
	mask := widthMask(n.Width)
	n.Value = value & mask
	n.XMask = xm & mask
	n.ZMask = zm & mask
	return n, nil
}

func widthMask(w int) uint64 {
	if w >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << uint(w)) - 1
}
