package verilog

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokenKind {
	out := make([]TokenKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeBasic(t *testing.T) {
	toks, err := Tokenize("t.v", "module m; endmodule")
	if err != nil {
		t.Fatal(err)
	}
	want := []TokenKind{TokKeyword, TokIdent, TokSemi, TokKeyword}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d: got %s, want %s", i, got[i], want[i])
		}
	}
}

func TestTokenizeOperators(t *testing.T) {
	cases := []struct {
		src  string
		want TokenKind
	}{
		{"&&", TokAmpAmp},
		{"||", TokPipeBar},
		{"==", TokEqEq},
		{"!=", TokBangEq},
		{"===", TokEqEqEq},
		{"!==", TokBangEqEq},
		{"<=", TokLessEq},
		{">=", TokGreaterEq},
		{"<<", TokShiftLeft},
		{">>", TokShiftRight},
		{">>>", TokShiftRight3},
		{"~&", TokTildeAmp},
		{"~|", TokTildePipe},
		{"~^", TokTildeCaret},
		{"^~", TokTildeCaret},
		{"?", TokQuestion},
		{"@", TokAt},
		{"#", TokHash},
	}
	for _, c := range cases {
		toks, err := Tokenize("t.v", c.src)
		if err != nil {
			t.Fatalf("%q: %v", c.src, err)
		}
		if len(toks) != 1 || toks[0].Kind != c.want {
			t.Errorf("%q: got %v, want single %s", c.src, toks, c.want)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment
module /* block
comment */ m;
endmodule // trailing
`
	toks, err := Tokenize("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
}

func TestTokenizeDirectivesSkipped(t *testing.T) {
	src := "`timescale 1ns/1ps\n`define FOO 1\nmodule m; endmodule\n"
	toks, err := Tokenize("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens %v, want 4", len(toks), toks)
	}
}

func TestTokenizeAttributesSkipped(t *testing.T) {
	src := "(* keep = 1 *) module m; endmodule"
	toks, err := Tokenize("t.v", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 4 {
		t.Fatalf("got %d tokens, want 4: %v", len(toks), toks)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	srcs := []string{"42", "8'hFF", "4'b1010", "'b1", "16'd255", "12'o777", "4'b1x0z", "8'b???1_0000"}
	for _, s := range srcs {
		toks, err := Tokenize("t.v", s)
		if err != nil {
			t.Fatalf("%q: %v", s, err)
		}
		if len(toks) != 1 || toks[0].Kind != TokNumber {
			t.Errorf("%q: got %v, want single number token", s, toks)
		}
	}
}

func TestTokenizePositions(t *testing.T) {
	toks, err := Tokenize("f.v", "module\n  m;")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("module pos = %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("m pos = %v, want 2:3", toks[1].Pos)
	}
	if toks[0].Pos.File != "f.v" {
		t.Errorf("file = %q, want f.v", toks[0].Pos.File)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		"/* unterminated",
		"\"unterminated string",
	}
	for _, src := range cases {
		if _, err := Tokenize("t.v", src); err == nil {
			t.Errorf("%q: expected error", src)
		}
	}
}

func TestTokenizeEscapedIdent(t *testing.T) {
	toks, err := Tokenize("t.v", `\bus[3] x`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokIdent || toks[0].Text != "bus[3]" {
		t.Errorf("escaped ident: got %v", toks[0])
	}
}

func TestTokenizeSystemIdent(t *testing.T) {
	toks, err := Tokenize("t.v", "$display")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokSystemIdent || toks[0].Text != "$display" {
		t.Errorf("got %v", toks[0])
	}
}

func TestParseNumberValues(t *testing.T) {
	cases := []struct {
		text  string
		width int
		value uint64
		xmask uint64
		zmask uint64
	}{
		{"42", 32, 42, 0, 0},
		{"8'hFF", 8, 0xFF, 0, 0},
		{"8'hff", 8, 0xFF, 0, 0},
		{"4'b1010", 4, 0b1010, 0, 0},
		{"16'd255", 16, 255, 0, 0},
		{"6'o77", 6, 0o77, 0, 0},
		{"4'b1x0z", 4, 0b1000, 0b0100, 0b0001},
		{"4'b??11", 4, 0b0011, 0, 0b1100},
		{"3'b101", 3, 5, 0, 0},
		{"1'b1", 1, 1, 0, 0},
		{"32'hDEAD_BEEF", 32, 0xDEADBEEF, 0, 0},
	}
	for _, c := range cases {
		n, err := ParseNumber(c.text, Pos{})
		if err != nil {
			t.Fatalf("%q: %v", c.text, err)
		}
		if n.Width != c.width || n.Value != c.value || n.XMask != c.xmask || n.ZMask != c.zmask {
			t.Errorf("%q: got width=%d value=%#x x=%#b z=%#b, want width=%d value=%#x x=%#b z=%#b",
				c.text, n.Width, n.Value, n.XMask, n.ZMask, c.width, c.value, c.xmask, c.zmask)
		}
	}
}

func TestParseNumberErrors(t *testing.T) {
	bad := []string{"8'", "'q1", "0'h1", "65'h0", "4'b2", "8'hG"}
	for _, s := range bad {
		if _, err := ParseNumber(s, Pos{}); err == nil {
			t.Errorf("%q: expected error", s)
		}
	}
}

func TestParseNumberTruncatesToWidth(t *testing.T) {
	n, err := ParseNumber("4'hFF", Pos{})
	if err != nil {
		t.Fatal(err)
	}
	if n.Value != 0xF {
		t.Errorf("4'hFF: value=%#x, want 0xF (truncated)", n.Value)
	}
}

func TestTokenizeLongSource(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 200; i++ {
		sb.WriteString("assign w = a + b;\n")
	}
	toks, err := Tokenize("t.v", sb.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 200*7 {
		t.Errorf("got %d tokens, want %d", len(toks), 200*7)
	}
}
