// Package verilog implements a lexer, parser and AST for the subset of
// Verilog-2001 needed by the FACTOR methodology: register-transfer level
// constructs (module/port/parameter declarations, continuous assigns,
// always blocks with if/case/for/while, blocking and nonblocking
// assignments) and structural constructs (module instances and gate
// primitives).
//
// This plays the role of the "Rough Verilog Parser" that the original
// PERL implementation of FACTOR was built on.
package verilog

import "fmt"

// TokenKind classifies a lexical token.
type TokenKind int

// Token kinds. Operators that are also part of larger operators (for
// example < and <=) are disambiguated by the lexer, which always emits
// the longest match.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokSystemIdent // $display, $time, ...
	TokNumber
	TokString
	TokKeyword

	// Punctuation.
	TokLParen   // (
	TokRParen   // )
	TokLBracket // [
	TokRBracket // ]
	TokLBrace   // {
	TokRBrace   // }
	TokComma    // ,
	TokSemi     // ;
	TokColon    // :
	TokDot      // .
	TokHash     // #
	TokAt       // @
	TokQuestion // ?
	TokEquals   // =

	// Operators.
	TokPlus    // +
	TokMinus   // -
	TokStar    // *
	TokSlash   // /
	TokPercent // %
	TokAmp     // &
	TokAmpAmp  // &&
	TokPipe    // |
	TokPipeBar // ||
	TokCaret   // ^
	TokTildeCaret
	TokTilde       // ~
	TokTildeAmp    // ~&
	TokTildePipe   // ~|
	TokBang        // !
	TokEqEq        // ==
	TokBangEq      // !=
	TokEqEqEq      // ===
	TokBangEqEq    // !==
	TokLess        // <
	TokLessEq      // <=  (also nonblocking assign)
	TokGreater     // >
	TokGreaterEq   // >=
	TokShiftLeft   // <<
	TokShiftRight  // >>
	TokShiftRight3 // >>> (arithmetic)
	TokShiftLeft3  // <<<
)

var tokenNames = map[TokenKind]string{
	TokEOF:         "EOF",
	TokIdent:       "identifier",
	TokSystemIdent: "system identifier",
	TokNumber:      "number",
	TokString:      "string",
	TokKeyword:     "keyword",
	TokLParen:      "(",
	TokRParen:      ")",
	TokLBracket:    "[",
	TokRBracket:    "]",
	TokLBrace:      "{",
	TokRBrace:      "}",
	TokComma:       ",",
	TokSemi:        ";",
	TokColon:       ":",
	TokDot:         ".",
	TokHash:        "#",
	TokAt:          "@",
	TokQuestion:    "?",
	TokEquals:      "=",
	TokPlus:        "+",
	TokMinus:       "-",
	TokStar:        "*",
	TokSlash:       "/",
	TokPercent:     "%",
	TokAmp:         "&",
	TokAmpAmp:      "&&",
	TokPipe:        "|",
	TokPipeBar:     "||",
	TokCaret:       "^",
	TokTildeCaret:  "~^",
	TokTilde:       "~",
	TokTildeAmp:    "~&",
	TokTildePipe:   "~|",
	TokBang:        "!",
	TokEqEq:        "==",
	TokBangEq:      "!=",
	TokEqEqEq:      "===",
	TokBangEqEq:    "!==",
	TokLess:        "<",
	TokLessEq:      "<=",
	TokGreater:     ">",
	TokGreaterEq:   ">=",
	TokShiftLeft:   "<<",
	TokShiftRight:  ">>",
	TokShiftRight3: ">>>",
	TokShiftLeft3:  "<<<",
}

func (k TokenKind) String() string {
	if s, ok := tokenNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokenKind(%d)", int(k))
}

// Token is a single lexical token with its source position.
type Token struct {
	Kind TokenKind
	Text string // raw text (identifier name, keyword, number literal...)
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokKeyword, TokNumber, TokSystemIdent, TokString:
		return fmt.Sprintf("%s %q", t.Kind, t.Text)
	}
	return t.Kind.String()
}

// Pos is a position in a source file, 1-based.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	if p.File == "" {
		return fmt.Sprintf("%d:%d", p.Line, p.Col)
	}
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// keywords is the set of Verilog keywords recognized by the parser.
// Keywords outside the supported subset are still lexed as keywords so
// the parser can produce a precise error.
var keywords = map[string]bool{
	"module": true, "endmodule": true,
	"input": true, "output": true, "inout": true,
	"wire": true, "reg": true, "integer": true,
	"parameter": true, "localparam": true,
	"assign": true,
	"always": true, "initial": true,
	"begin": true, "end": true,
	"if": true, "else": true,
	"case": true, "casez": true, "casex": true, "endcase": true,
	"default": true,
	"for":     true, "while": true,
	"posedge": true, "negedge": true, "or": true,
	"and": true, "nand": true, "nor": true, "xor": true,
	"xnor": true, "not": true, "buf": true,
	"supply0": true, "supply1": true,
	"signed":   true,
	"function": true, "endfunction": true,
	"task": true, "endtask": true,
	"generate": true, "endgenerate": true, "genvar": true,
}

// IsKeyword reports whether s is a recognized Verilog keyword.
func IsKeyword(s string) bool { return keywords[s] }

// gatePrimitives is the set of built-in gate primitive keywords.
var gatePrimitives = map[string]bool{
	"and": true, "nand": true, "or": true, "nor": true,
	"xor": true, "xnor": true, "not": true, "buf": true,
}

// IsGatePrimitive reports whether s names a built-in gate primitive.
func IsGatePrimitive(s string) bool { return gatePrimitives[s] }
