package verilog

import (
	"fmt"
	"strings"
)

// Lexer turns Verilog source text into a stream of tokens. Line ("//")
// and block ("/* */") comments are skipped, as are compiler directives
// (lines starting with `) and attribute instances ((* ... *)).
type Lexer struct {
	src  string
	file string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src. The file name is used only for
// positions in diagnostics.
func NewLexer(file, src string) *Lexer {
	return &Lexer{src: src, file: file, line: 1, col: 1}
}

// LexError is an error produced during tokenization.
type LexError struct {
	Pos Pos
	Msg string
}

func (e *LexError) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func (l *Lexer) pos() Pos { return Pos{File: l.file, Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peekAt(n int) byte {
	if l.off+n >= len(l.src) {
		return 0
	}
	return l.src[l.off+n]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func isIdentStart(c byte) bool {
	return c == '_' || c == '\\' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '$' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

func isSpace(c byte) bool { return c == ' ' || c == '\t' || c == '\r' || c == '\n' }

// skipTrivia consumes whitespace, comments, compiler directives and
// attribute instances.
func (l *Lexer) skipTrivia() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case isSpace(c):
			l.advance()
		case c == '/' && l.peekAt(1) == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peekAt(1) == '*':
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == '/' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated block comment"}
			}
		case c == '`':
			// Compiler directive: skip to end of line. `timescale,
			// `define bodies with continuations are not supported; the
			// benchmark sources do not use them.
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '(' && l.peekAt(1) == '*':
			// Attribute instance (* ... *). Distinguish from "(*" used
			// in event control "@(*)" — that case has ')' right after.
			if l.peekAt(2) == ')' {
				return nil
			}
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for l.off < len(l.src) {
				if l.peek() == '*' && l.peekAt(1) == ')' {
					l.advance()
					l.advance()
					closed = true
					break
				}
				l.advance()
			}
			if !closed {
				return &LexError{Pos: start, Msg: "unterminated attribute instance"}
			}
		default:
			return nil
		}
	}
	return nil
}

// Next returns the next token. At end of input it returns a TokEOF
// token and a nil error forever after.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipTrivia(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()

	switch {
	case isIdentStart(c):
		return l.lexIdent(pos)
	case isDigit(c) || (c == '\'' && l.isBaseChar(l.peekAt(1))):
		return l.lexNumber(pos)
	case c == '$':
		l.advance()
		var sb strings.Builder
		sb.WriteByte('$')
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			sb.WriteByte(l.advance())
		}
		return Token{Kind: TokSystemIdent, Text: sb.String(), Pos: pos}, nil
	case c == '"':
		return l.lexString(pos)
	}

	// Operators and punctuation: longest match first.
	two := ""
	if l.off+1 < len(l.src) {
		two = l.src[l.off : l.off+2]
	}
	three := ""
	if l.off+2 < len(l.src) {
		three = l.src[l.off : l.off+3]
	}
	switch three {
	case "===":
		return l.emit(TokEqEqEq, 3, pos), nil
	case "!==":
		return l.emit(TokBangEqEq, 3, pos), nil
	case ">>>":
		return l.emit(TokShiftRight3, 3, pos), nil
	case "<<<":
		return l.emit(TokShiftLeft3, 3, pos), nil
	}
	switch two {
	case "&&":
		return l.emit(TokAmpAmp, 2, pos), nil
	case "||":
		return l.emit(TokPipeBar, 2, pos), nil
	case "==":
		return l.emit(TokEqEq, 2, pos), nil
	case "!=":
		return l.emit(TokBangEq, 2, pos), nil
	case "<=":
		return l.emit(TokLessEq, 2, pos), nil
	case ">=":
		return l.emit(TokGreaterEq, 2, pos), nil
	case "<<":
		return l.emit(TokShiftLeft, 2, pos), nil
	case ">>":
		return l.emit(TokShiftRight, 2, pos), nil
	case "~&":
		return l.emit(TokTildeAmp, 2, pos), nil
	case "~|":
		return l.emit(TokTildePipe, 2, pos), nil
	case "~^", "^~":
		return l.emit(TokTildeCaret, 2, pos), nil
	}
	single := map[byte]TokenKind{
		'(': TokLParen, ')': TokRParen,
		'[': TokLBracket, ']': TokRBracket,
		'{': TokLBrace, '}': TokRBrace,
		',': TokComma, ';': TokSemi, ':': TokColon, '.': TokDot,
		'#': TokHash, '@': TokAt, '?': TokQuestion, '=': TokEquals,
		'+': TokPlus, '-': TokMinus, '*': TokStar, '/': TokSlash,
		'%': TokPercent, '&': TokAmp, '|': TokPipe, '^': TokCaret,
		'~': TokTilde, '!': TokBang, '<': TokLess, '>': TokGreater,
	}
	if k, ok := single[c]; ok {
		return l.emit(k, 1, pos), nil
	}
	return Token{}, &LexError{Pos: pos, Msg: fmt.Sprintf("unexpected character %q", c)}
}

func (l *Lexer) emit(k TokenKind, n int, pos Pos) Token {
	text := l.src[l.off : l.off+n]
	for i := 0; i < n; i++ {
		l.advance()
	}
	return Token{Kind: k, Text: text, Pos: pos}
}

func (l *Lexer) isBaseChar(c byte) bool {
	switch c {
	case 'b', 'B', 'o', 'O', 'd', 'D', 'h', 'H', 's', 'S':
		return true
	}
	return false
}

func (l *Lexer) lexIdent(pos Pos) (Token, error) {
	var sb strings.Builder
	if l.peek() == '\\' {
		// Escaped identifier: backslash to next whitespace.
		l.advance()
		for l.off < len(l.src) && !isSpace(l.peek()) {
			sb.WriteByte(l.advance())
		}
		return Token{Kind: TokIdent, Text: sb.String(), Pos: pos}, nil
	}
	for l.off < len(l.src) && isIdentPart(l.peek()) {
		sb.WriteByte(l.advance())
	}
	text := sb.String()
	if IsKeyword(text) {
		return Token{Kind: TokKeyword, Text: text, Pos: pos}, nil
	}
	return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
}

// lexNumber scans decimal literals and based literals of the forms
// 42, 8'hFF, 'b1010, 4'b1x0z, 16'd255. The raw text is preserved; the
// parser converts it to a value via ParseNumber.
func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	var sb strings.Builder
	// Optional size (decimal digits, possibly with _).
	for l.off < len(l.src) && (isDigit(l.peek()) || l.peek() == '_') {
		sb.WriteByte(l.advance())
	}
	if l.peek() == '\'' {
		sb.WriteByte(l.advance())
		if l.peek() == 's' || l.peek() == 'S' {
			sb.WriteByte(l.advance())
		}
		if !l.isBaseChar(l.peek()) {
			return Token{}, &LexError{Pos: pos, Msg: "malformed based literal: missing base"}
		}
		sb.WriteByte(l.advance())
		n := 0
		for l.off < len(l.src) {
			c := l.peek()
			if isIdentPart(c) || c == '?' {
				sb.WriteByte(l.advance())
				n++
			} else {
				break
			}
		}
		if n == 0 {
			return Token{}, &LexError{Pos: pos, Msg: "malformed based literal: missing digits"}
		}
	}
	return Token{Kind: TokNumber, Text: sb.String(), Pos: pos}, nil
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	l.advance() // opening quote
	var sb strings.Builder
	for l.off < len(l.src) {
		c := l.advance()
		if c == '"' {
			return Token{Kind: TokString, Text: sb.String(), Pos: pos}, nil
		}
		if c == '\\' && l.off < len(l.src) {
			sb.WriteByte(l.advance())
			continue
		}
		if c == '\n' {
			break
		}
		sb.WriteByte(c)
	}
	return Token{}, &LexError{Pos: pos, Msg: "unterminated string literal"}
}

// Tokenize lexes the entire input, returning all tokens up to and
// excluding EOF.
func Tokenize(file, src string) ([]Token, error) {
	l := NewLexer(file, src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		if t.Kind == TokEOF {
			return toks, nil
		}
		toks = append(toks, t)
	}
}
