// Package failpoint is a seeded, deterministic fault-injection
// registry for exercising the pipeline's recovery paths in tests and
// CI instead of waiting for production crashes. Named sites threaded
// through the hot paths of internal/atpg (checkpoint encode/write/
// load, speculative merge), internal/fault (pool workers, event-engine
// batches), internal/core (multi-MUT extraction) and internal/cli can
// inject I/O errors (generic, short write, ENOSPC), worker panics,
// delays, context cancellations and hard process kills, selected by
// the shared -failpoints flag:
//
//	-failpoints site=action[:prob[:seed]][,site=action:prob:seed...]
//
// Determinism contract. Every configured site draws from its own
// seeded splitmix64 stream, never from global randomness:
//
//   - Hit(site) draws on the site's occurrence counter: the K-th call
//     at the site triggers iff draw(seed, K) < prob. The triggering
//     occurrence set is a pure function of (seed, prob), so serial
//     call paths (the ATPG merger, checkpoint writes) inject
//     reproducibly run over run.
//   - HitKey(site, key) draws on the caller-supplied key instead: the
//     trigger decision is a pure function of (seed, key) alone, so
//     parallel work items (PODEM searches keyed by fault, simulation
//     batches keyed by their first fault) inject identically for any
//     worker count and any scheduling.
//
// Zero-cost-when-disabled discipline, as internal/telemetry: with no
// registry activated, Hit and HitKey are a single atomic load plus a
// nil check — no allocation, no map lookup (AllocsPerRun-guarded).
// The nil *Registry is a valid, fully disabled handle.
package failpoint

import (
	"errors"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"syscall"
	"time"
)

// Action is an injected failure kind.
type Action int

// Injectable actions. Error-class actions return a structured injected
// error from Hit/HitKey for the site to propagate; the others act
// directly (panic, sleep, cancel the run's context, kill the process).
const (
	// ActError injects a generic I/O error.
	ActError Action = iota
	// ActShortWrite injects io.ErrShortWrite (a torn write).
	ActShortWrite
	// ActENOSPC injects syscall.ENOSPC (disk full).
	ActENOSPC
	// ActPanic panics with a recognizable value; the surrounding
	// worker pool's isolation boundary must quarantine it.
	ActPanic
	// ActDelay sleeps for DelayDuration and reports no error,
	// widening race windows around the site.
	ActDelay
	// ActCancel invokes the canceler registered with SetCanceler
	// (the CLI wires the run context's stop func) and reports no
	// error; cancellation then propagates through the normal context
	// checks downstream of the site.
	ActCancel
	// ActKill raises SIGKILL on the current process: an unclean death
	// with no deferred cleanup, as a crashed worker or OOM kill would
	// produce. The crash-hammer harness uses it to exercise
	// checkpoint recovery.
	ActKill
)

var actionNames = map[string]Action{
	"error":      ActError,
	"shortwrite": ActShortWrite,
	"enospc":     ActENOSPC,
	"panic":      ActPanic,
	"delay":      ActDelay,
	"cancel":     ActCancel,
	"kill":       ActKill,
}

func (a Action) String() string {
	for name, act := range actionNames {
		if act == a {
			return name
		}
	}
	return fmt.Sprintf("Action(%d)", int(a))
}

// DelayDuration is how long ActDelay sleeps per triggered hit.
const DelayDuration = time.Millisecond

// ErrInjected is the sentinel every injected error wraps:
// errors.Is(err, failpoint.ErrInjected) identifies a failure as
// injected (checkpoint retry treats these as transient, like real
// EINTR-class errors).
var ErrInjected = errors.New("injected fault")

// Error is an injected failure returned by Hit/HitKey at a site
// configured with an error-class action.
type Error struct {
	Site  string
	Cause error // io.ErrShortWrite, syscall.ENOSPC, or nil (generic)
}

func (e *Error) Error() string {
	if e.Cause != nil {
		return fmt.Sprintf("failpoint %s: injected %v", e.Site, e.Cause)
	}
	return fmt.Sprintf("failpoint %s: injected error", e.Site)
}

// Is reports ErrInjected for any injected error, so callers can
// classify without caring about the concrete cause.
func (e *Error) Is(target error) bool { return target == ErrInjected }

// Unwrap exposes the concrete cause (short write, ENOSPC).
func (e *Error) Unwrap() error { return e.Cause }

// site is one configured failpoint.
type site struct {
	name   string
	action Action
	// thresh is prob scaled to the uint64 draw space: a hit triggers
	// iff its draw is below thresh (prob 1 => ^uint64(0), always).
	thresh uint64
	seed   int64

	hits     atomic.Uint64 // occurrence counter (also the Hit draw key)
	triggers atomic.Uint64
}

// Registry is a parsed -failpoints plan. The zero/nil registry is
// fully disabled.
type Registry struct {
	sites map[string]*site
}

// active is the process-wide registry consulted by Hit/HitKey. A nil
// pointer — the default — disables every site at the cost of one
// atomic load.
var active atomic.Pointer[Registry]

// canceler is the run-cancellation hook ActCancel invokes (the CLI
// registers its signal context's stop func).
var canceler atomic.Pointer[func()]

// Parse builds a registry from a -failpoints spec: comma-separated
// site=action[:prob[:seed]] clauses. prob defaults to 1 (every hit
// triggers) and must be in (0, 1]; seed defaults to 1. Duplicate sites
// are rejected.
func Parse(spec string) (*Registry, error) {
	r := &Registry{sites: make(map[string]*site)}
	for _, clause := range strings.Split(spec, ",") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		name, rest, ok := strings.Cut(clause, "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("failpoint: clause %q is not site=action[:prob[:seed]]", clause)
		}
		if _, dup := r.sites[name]; dup {
			return nil, fmt.Errorf("failpoint: site %q configured twice", name)
		}
		parts := strings.Split(rest, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("failpoint: clause %q has more than action:prob:seed", clause)
		}
		action, ok := actionNames[parts[0]]
		if !ok {
			return nil, fmt.Errorf("failpoint: unknown action %q in clause %q", parts[0], clause)
		}
		prob := 1.0
		if len(parts) >= 2 {
			p, err := strconv.ParseFloat(parts[1], 64)
			if err != nil || p <= 0 || p > 1 {
				return nil, fmt.Errorf("failpoint: probability %q in clause %q must be in (0, 1]", parts[1], clause)
			}
			prob = p
		}
		seed := int64(1)
		if len(parts) == 3 {
			s, err := strconv.ParseInt(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("failpoint: seed %q in clause %q is not an integer", parts[2], clause)
			}
			seed = s
		}
		thresh := ^uint64(0)
		if prob < 1 {
			thresh = uint64(math.Round(prob * float64(1<<63) * 2))
		}
		r.sites[name] = &site{name: name, action: action, thresh: thresh, seed: seed}
	}
	if len(r.sites) == 0 {
		return nil, fmt.Errorf("failpoint: empty spec")
	}
	return r, nil
}

// Activate installs r as the process-wide registry (nil deactivates).
// Call once at startup, or around a test body paired with a deferred
// Deactivate; the registry is not designed for mid-run swaps.
func Activate(r *Registry) {
	if r != nil && len(r.sites) == 0 {
		r = nil
	}
	active.Store(r)
}

// Deactivate removes the active registry; Hit/HitKey return to the
// disabled fast path.
func Deactivate() { active.Store(nil) }

// Enabled reports whether a registry is active.
func Enabled() bool { return active.Load() != nil }

// SetCanceler registers the function ActCancel invokes (typically the
// CLI run context's stop func). A nil fn clears it.
func SetCanceler(fn func()) {
	if fn == nil {
		canceler.Store(nil)
		return
	}
	canceler.Store(&fn)
}

// Hit checks the named site on its occurrence counter. With no active
// registry, or the site unconfigured, it returns nil at effectively
// zero cost. A triggered error-class action returns the injected
// error; panic/delay/cancel/kill act directly (see Action).
func Hit(name string) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	s := r.sites[name]
	if s == nil {
		return nil
	}
	return s.check(s.hits.Add(1))
}

// HitKey checks the named site with an explicit draw key. The trigger
// decision is a pure function of (site seed, key), independent of call
// order — use it from parallel work items with a scheduling-invariant
// key (fault index, batch start, MUT path hash) so injection is
// bit-identical for every worker count.
func HitKey(name string, key uint64) error {
	r := active.Load()
	if r == nil {
		return nil
	}
	s := r.sites[name]
	if s == nil {
		return nil
	}
	s.hits.Add(1)
	return s.check(key)
}

// StringKey folds a string work-item identity (a MUT instance path, a
// file name) into a HitKey draw key: FNV-1a, inlined so the disabled
// path stays allocation-free.
func StringKey(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// check draws for one occurrence and performs the action on trigger.
func (s *site) check(key uint64) error {
	if draw(s.seed, key) >= s.thresh {
		return nil
	}
	s.triggers.Add(1)
	switch s.action {
	case ActError:
		return &Error{Site: s.name}
	case ActShortWrite:
		return &Error{Site: s.name, Cause: io.ErrShortWrite}
	case ActENOSPC:
		return &Error{Site: s.name, Cause: syscall.ENOSPC}
	case ActPanic:
		panic(fmt.Sprintf("failpoint %s: injected panic", s.name))
	case ActDelay:
		time.Sleep(DelayDuration)
		return nil
	case ActCancel:
		if fn := canceler.Load(); fn != nil {
			(*fn)()
		}
		return nil
	case ActKill:
		kill()
		return nil
	}
	return nil
}

// draw maps (seed, key) to a uniform uint64 with the splitmix64
// finalizer — the same mixing discipline the ATPG engine uses for its
// per-fault RNG streams.
func draw(seed int64, key uint64) uint64 {
	z := uint64(seed) + (key+1)*0x9e3779b97f4a7c15
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Stats renders per-site hit/trigger counts, name-sorted ("" when
// nothing was hit) — diagnostic only, printed to stderr by the CLIs.
func (r *Registry) Stats() string {
	if r == nil {
		return ""
	}
	names := make([]string, 0, len(r.sites))
	for name := range r.sites {
		names = append(names, name)
	}
	sort.Strings(names)
	var b strings.Builder
	for _, name := range names {
		s := r.sites[name]
		if hits := s.hits.Load(); hits > 0 {
			fmt.Fprintf(&b, "%s: %d/%d hits triggered %s\n", name, s.triggers.Load(), hits, s.action)
		}
	}
	return b.String()
}

// Active returns the installed registry (nil when disabled), so the
// CLI can report its stats after a run.
func Active() *Registry { return active.Load() }
