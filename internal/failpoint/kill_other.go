//go:build !unix

package failpoint

import "os"

// kill approximates an unclean death on platforms without SIGKILL
// semantics: exit code 137 (128+9) without running deferred cleanup.
func kill() {
	os.Exit(137)
}
