//go:build unix

package failpoint

import "syscall"

// kill raises SIGKILL on the current process: no signal handler, no
// deferred cleanup, no atexit — the same unclean death an OOM kill or
// a crashed host delivers. Checkpoint recovery must cope with a
// process dying at exactly this instruction.
func kill() {
	syscall.Kill(syscall.Getpid(), syscall.SIGKILL)
	// SIGKILL is not deliverable to a stopped self synchronously in
	// every environment; never fall through to normal control flow.
	select {}
}
