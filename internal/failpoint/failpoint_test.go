package failpoint

import (
	"errors"
	"io"
	"strings"
	"syscall"
	"testing"
)

func TestParseGrammar(t *testing.T) {
	good := []string{
		"a=error",
		"a=panic:0.5",
		"a=kill:0.25:42",
		"a=error, b=delay:1:7 ,c=enospc",
		"x.y.z=shortwrite:0.001:9",
		"a=cancel",
	}
	for _, spec := range good {
		if _, err := Parse(spec); err != nil {
			t.Errorf("Parse(%q) = %v, want ok", spec, err)
		}
	}
	bad := []string{
		"",
		"noequals",
		"=error",
		"a=frobnicate",
		"a=error:2",
		"a=error:0",
		"a=error:-0.5",
		"a=error:0.5:notanint",
		"a=error:0.5:1:extra",
		"a=error,a=panic", // duplicate site
	}
	for _, spec := range bad {
		if _, err := Parse(spec); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", spec)
		}
	}
}

func TestHitDisabledIsNil(t *testing.T) {
	Deactivate()
	if err := Hit("anything"); err != nil {
		t.Fatalf("disabled Hit returned %v", err)
	}
	if err := HitKey("anything", 7); err != nil {
		t.Fatalf("disabled HitKey returned %v", err)
	}
}

// TestDisabledZeroAlloc is the zero-cost-when-disabled guard: with no
// registry active, and with a registry active but the site
// unconfigured, the hot-path check must not allocate.
func TestDisabledZeroAlloc(t *testing.T) {
	Deactivate()
	if allocs := testing.AllocsPerRun(100, func() {
		Hit("atpg.merge")
		HitKey("fault.pool.batch", 3)
	}); allocs != 0 {
		t.Fatalf("disabled Hit/HitKey allocate %.1f objects per run, want 0", allocs)
	}

	r, err := Parse("other.site=error")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()
	if allocs := testing.AllocsPerRun(100, func() {
		Hit("atpg.merge")
		HitKey("fault.pool.batch", 3)
	}); allocs != 0 {
		t.Fatalf("unconfigured-site Hit/HitKey allocate %.1f objects per run, want 0", allocs)
	}
	// A configured site that does not trigger on this draw is also
	// allocation-free (the draw itself is pure arithmetic).
	low, err := Parse("quiet=error:0.000001:1")
	if err != nil {
		t.Fatal(err)
	}
	Activate(low)
	if allocs := testing.AllocsPerRun(100, func() {
		HitKey("quiet", 12345)
	}); allocs != 0 {
		t.Fatalf("non-triggering HitKey allocates %.1f objects per run, want 0", allocs)
	}
}

func TestErrorActions(t *testing.T) {
	r, err := Parse("g=error,s=shortwrite,n=enospc")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()

	gerr := Hit("g")
	if gerr == nil || !errors.Is(gerr, ErrInjected) {
		t.Fatalf("generic error = %v, want ErrInjected", gerr)
	}
	if serr := Hit("s"); !errors.Is(serr, io.ErrShortWrite) || !errors.Is(serr, ErrInjected) {
		t.Fatalf("shortwrite error = %v, want io.ErrShortWrite + ErrInjected", serr)
	}
	if nerr := Hit("n"); !errors.Is(nerr, syscall.ENOSPC) || !errors.Is(nerr, ErrInjected) {
		t.Fatalf("enospc error = %v, want syscall.ENOSPC + ErrInjected", nerr)
	}
	if !strings.Contains(gerr.Error(), "failpoint g") {
		t.Fatalf("injected error %q does not name its site", gerr)
	}
}

func TestPanicAction(t *testing.T) {
	r, err := Parse("boom=panic")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("panic action did not panic")
		}
		if s, ok := rec.(string); !ok || !strings.Contains(s, "boom") {
			t.Fatalf("panic value %v does not name the site", rec)
		}
	}()
	Hit("boom")
}

func TestCancelAction(t *testing.T) {
	r, err := Parse("c=cancel")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()
	called := 0
	SetCanceler(func() { called++ })
	defer SetCanceler(nil)
	if err := Hit("c"); err != nil {
		t.Fatalf("cancel action returned %v, want nil", err)
	}
	if called != 1 {
		t.Fatalf("canceler called %d times, want 1", called)
	}
}

// TestHitKeyDeterministic: the keyed trigger decision is a pure
// function of (seed, key) — same registry config, any call order, same
// outcome per key — which is what makes parallel injection
// worker-count-invariant.
func TestHitKeyDeterministic(t *testing.T) {
	decide := func(order []uint64) map[uint64]bool {
		r, err := Parse("k=error:0.5:99")
		if err != nil {
			t.Fatal(err)
		}
		Activate(r)
		defer Deactivate()
		out := make(map[uint64]bool)
		for _, key := range order {
			out[key] = HitKey("k", key) != nil
		}
		return out
	}
	fwd := decide([]uint64{0, 1, 2, 3, 4, 5, 6, 7, 8, 9})
	rev := decide([]uint64{9, 8, 7, 6, 5, 4, 3, 2, 1, 0})
	trig := 0
	for k, v := range fwd {
		if rev[k] != v {
			t.Fatalf("key %d decision differs with call order: %v vs %v", k, v, rev[k])
		}
		if v {
			trig++
		}
	}
	if trig == 0 || trig == len(fwd) {
		t.Fatalf("prob 0.5 over 10 keys triggered %d times; draw looks degenerate", trig)
	}
}

// TestHitOccurrenceDeterministic: counter-based draws replay the same
// triggering occurrence set run over run.
func TestHitOccurrenceDeterministic(t *testing.T) {
	run := func() []bool {
		r, err := Parse("o=error:0.3:7")
		if err != nil {
			t.Fatal(err)
		}
		Activate(r)
		defer Deactivate()
		var out []bool
		for i := 0; i < 50; i++ {
			out = append(out, Hit("o") != nil)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("occurrence %d differs across identical runs", i)
		}
	}
}

func TestProbabilityRoughlyHonored(t *testing.T) {
	r, err := Parse("p=error:0.25:5")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()
	trig := 0
	const n = 4000
	for i := 0; i < n; i++ {
		if HitKey("p", uint64(i)) != nil {
			trig++
		}
	}
	frac := float64(trig) / n
	if frac < 0.2 || frac > 0.3 {
		t.Fatalf("prob 0.25 triggered %.3f of draws", frac)
	}
}

func TestStats(t *testing.T) {
	r, err := Parse("a=error:0.5:3,b=delay")
	if err != nil {
		t.Fatal(err)
	}
	Activate(r)
	defer Deactivate()
	for i := 0; i < 10; i++ {
		HitKey("a", uint64(i))
	}
	s := Active().Stats()
	if !strings.Contains(s, "a: ") || strings.Contains(s, "b: ") {
		t.Fatalf("stats %q should report hit site a only", s)
	}
}
