package synth

import (
	"math/rand"
	"strings"
	"testing"

	"factor/internal/netlist"
	"factor/internal/sim"
	"factor/internal/verilog"
)

// TestEmitVerilogRoundTripEquivalence is a cross-layer integration
// check: synthesize RTL, emit the gate-level netlist back as structural
// Verilog (the form FACTOR writes transformed modules in), re-parse and
// re-synthesize it, and verify the two netlists agree on random input
// vectors — including sequential behavior.
func TestEmitVerilogRoundTripEquivalence(t *testing.T) {
	src := `
module duv(input clk, input rst, input [3:0] a, b, output reg [4:0] acc, output flag);
  wire [4:0] sum;
  assign sum = {1'b0, a} + {1'b0, b};
  always @(posedge clk) begin
    if (rst) acc <= 5'd0;
    else acc <= acc + sum;
  end
  assign flag = acc[4] ^ (a < b);
endmodule`
	sf, err := verilog.Parse("duv.v", src)
	if err != nil {
		t.Fatal(err)
	}
	first, err := Synthesize(sf, "duv", Options{})
	if err != nil {
		t.Fatal(err)
	}

	emitted := first.Netlist.EmitVerilog()
	sf2, err := verilog.Parse("emitted.v", emitted)
	if err != nil {
		t.Fatalf("emitted Verilog does not parse: %v\n%s", err, emitted)
	}
	second, err := Synthesize(sf2, sanitized(first.Netlist.Name), Options{})
	if err != nil {
		t.Fatalf("emitted Verilog does not synthesize: %v\n%s", err, emitted)
	}

	// The emitted module's ports are the netlist's bit-level PIs/POs
	// (e.g. "a[0]" became "a_0_"). Build the name mapping.
	mapName := func(bitName string) string { return sanitized(bitName) }

	rng := rand.New(rand.NewSource(99))
	s1 := sim.New(first.Netlist)
	s2 := sim.New(second.Netlist)
	for cycle := 0; cycle < 40; cycle++ {
		for i, pi := range first.Netlist.PIs {
			v := sim.Logic(rng.Intn(2))
			s1.SetInputScalar(pi, v)
			pi2 := second.Netlist.PI(mapName(first.Netlist.PINames[i]))
			if pi2 < 0 {
				t.Fatalf("re-synthesized netlist lacks input %q (have %v)",
					mapName(first.Netlist.PINames[i]), second.Netlist.PINames)
			}
			s2.SetInputScalar(pi2, v)
		}
		s1.Eval()
		s2.Eval()
		for i, po := range first.Netlist.POs {
			po2 := second.Netlist.PO(mapName(first.Netlist.PONames[i]))
			if po2 < 0 {
				t.Fatalf("re-synthesized netlist lacks output %q", mapName(first.Netlist.PONames[i]))
			}
			v1 := s1.Value(po).Lane(0)
			v2 := s2.Value(po2).Lane(0)
			if v1 != v2 {
				t.Fatalf("cycle %d: output %s differs: %v vs %v", cycle, first.Netlist.PONames[i], v1, v2)
			}
		}
		s1.Step()
		s2.Step()
	}
}

func sanitized(s string) string {
	var sb strings.Builder
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '_':
			sb.WriteByte(c)
		default:
			sb.WriteByte('_')
		}
	}
	out := sb.String()
	if out != "" && out[0] >= '0' && out[0] <= '9' {
		out = "_" + out
	}
	return out
}

// TestEmitDotSmoke checks the Graphviz emitter produces a well-formed
// graph with highlighted scope.
func TestEmitDotSmoke(t *testing.T) {
	src := `
module d(input a, b, output y);
  sub u_s (.p(a), .q(b), .r(y));
endmodule
module sub(input p, q, output r);
  assign r = p & q;
endmodule`
	sf, err := verilog.Parse("d.v", src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Synthesize(sf, "d", Options{})
	if err != nil {
		t.Fatal(err)
	}
	dot := res.Netlist.EmitDot(netlist.DotOptions{HighlightScope: "u_s."})
	for _, want := range []string{"digraph d", "->", "lightblue", "invtriangle", "}"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q:\n%s", want, dot)
		}
	}
	trunc := res.Netlist.EmitDot(netlist.DotOptions{MaxGates: 2})
	if !strings.Contains(trunc, "truncated") {
		t.Errorf("truncation marker missing")
	}
}
